package malleable

import (
	"fmt"
	"sort"

	"github.com/malleable-sched/malleable/internal/cluster"
	"github.com/malleable-sched/malleable/internal/engine"
)

// RunSpec describes one online run for Run — the single entry point that
// replaced the Run* function family (see the migration table in the package
// documentation). A spec names the platform and policy, exactly one arrival
// source, and an optional topology: no topology runs one engine, a Router
// runs a routed cluster, a Source runs independent shards. Everything else —
// speedup model, sinks, probes, worker count — is orthogonal configuration,
// the same fields whatever the topology.
type RunSpec struct {
	// P is the platform capacity (per shard, when there are shards).
	P float64
	// Policy is the online allocation policy (OnlinePolicyByName or custom).
	Policy OnlinePolicy

	// Exactly one of Arrivals, Stream and Source supplies the workload.
	//
	// Arrivals is a materialized workload (GenerateArrivals or hand-built).
	// It is the only source that retains per-task rows: the result's
	// Shards[0].Result carries the full task table and exact flow quantiles.
	// Arrivals may be unsorted on the single-engine path; a Router requires
	// them sorted by release (the cluster dispatches in release order).
	Arrivals []Arrival
	// Stream is a pulled workload (StreamArrivals, a trace reader, or any
	// ArrivalStream) consumed in O(alive tasks) memory: per-task rows go to
	// Sink instead of being retained and flow quantiles come from a merged
	// sketch (RunResult.FlowApprox).
	Stream ArrivalStream
	// Source gives every shard its own independent stream — the decoupled
	// scaling topology, with no routing question. Shards engines run
	// concurrently, one goroutine each, seeded from Seed. Source runs cannot
	// take Sink or probes: the shards share no timeline, so no global
	// observation order exists.
	Source func(shard int, seed int64) (ArrivalStream, error)

	// Shards is the number of scheduler shards; 0 means 1. More than one
	// shard needs a Router (one global stream, routed) or a Source
	// (independent streams).
	Shards int
	// Router switches the run to cluster mode: ONE global timeline, each
	// arrival dispatched at its release time to the shard the router picks
	// from exact live backlog snapshots. Works with Arrivals or Stream.
	Router ClusterRouter
	// Workers >= 2 advances cluster shards concurrently on that many pool
	// workers between routing decisions (conservative lookahead windows).
	// Every byte of output is identical to the sequential coordinator's —
	// the knob trades goroutines for wall-clock time only. 0 or 1 stays
	// sequential; Workers without a Router is an error, because only the
	// cluster coordinator has independent shards to advance.
	Workers int
	// Speculate switches a parallel cluster run (Workers >= 2) to the
	// optimistic coordinator: shards advance past upcoming dispatch times on
	// engine checkpoints and the one mispredicted shard per dispatch is
	// rolled back, removing the per-dispatch fleet barrier of state-reading
	// routers. Output stays byte-identical to the sequential coordinator;
	// the result's Rollbacks/WastedEvents report the misprediction cost.
	// Ignored without a Router or with Workers < 2; TraceDecisions falls
	// back to the conservative modes.
	Speculate bool
	// StaleRouting switches a cluster run (Router set) to the stale-batched
	// coordinator: the router observes fleet state as of the last dispatch
	// window boundary — an epoch-published view, refreshed once per window —
	// instead of exact dispatch-time snapshots, which removes the
	// per-dispatch fleet barrier entirely. Output is deterministic and
	// byte-identical at every Workers setting, but it is a different
	// (window-stale) schedule than the exact-view coordinator's. Requires a
	// router with the window-stale capability (least-backlog, po2); state-
	// free routers ignore the flag. Takes precedence over Speculate and is
	// incompatible with Probe. The result's StaleViews/StaleWindow report
	// the view cadence.
	StaleRouting bool
	// Prefetch overlaps arrival generation or trace decoding with cluster
	// execution on a single producer goroutine, handing off fixed windows
	// of arrivals (see the workload prefetcher). Pure pipelining: every
	// byte of output is unchanged. Cluster mode only.
	Prefetch bool
	// Seed derives per-shard seeds in Source mode and is recorded in the
	// result's shard metadata otherwise.
	Seed int64

	// Model is the speedup model; nil means the paper's linear model.
	Model SpeedupModel
	// Sink observes every completed task. On a Stream run rows arrive as
	// tasks retire; on a cluster run they arrive in the fleet's global
	// completion order (ties by shard); on an Arrivals run they are replayed
	// after the run in completion order (ties by task ID).
	Sink MetricSink
	// Probe observes the engine's rest states (OnlineOptions.Probe). On a
	// cluster run it sees every shard's rest states interleaved on the
	// global timeline, which forces the sequential coordinator regardless
	// of Workers (the output bytes do not change, only the wall clock).
	Probe RunProbe
	// ProbeEveryEvents and ProbeInterval thin Probe exactly as in
	// OnlineOptions.
	ProbeEveryEvents int
	ProbeInterval    float64
	// FleetProbe observes a cluster run at dispatch time with the same
	// per-shard snapshots the router saw; ProbeEveryDispatches thins it.
	// Cluster mode only.
	FleetProbe ClusterProbe
	// ProbeEveryDispatches fires FleetProbe every k-th dispatch; 0 observes
	// every dispatch.
	ProbeEveryDispatches int
	// TraceDecisions and MaxEvents forward to OnlineOptions.
	TraceDecisions bool
	// MaxEvents bounds policy invocations per engine; 0 keeps the default
	// safety bound.
	MaxEvents int
}

// RunResult is the outcome of Run, whatever the topology: per-shard results
// plus the deterministically merged fleet metrics. Single-engine runs report
// as a one-shard fleet, so every spec reads back through one schema.
type RunResult = OnlineLoadResult

// options assembles the engine options shared by every topology.
func (spec RunSpec) options() OnlineOptions {
	return OnlineOptions{
		Model:            spec.Model,
		TraceDecisions:   spec.TraceDecisions,
		MaxEvents:        spec.MaxEvents,
		Probe:            spec.Probe,
		ProbeEveryEvents: spec.ProbeEveryEvents,
		ProbeInterval:    spec.ProbeInterval,
	}
}

// Run executes one online run described by spec: a single engine, a routed
// cluster (Router set; Workers parallelizes it without changing a byte of
// output) or independent shards (Source set). It is the only non-deprecated
// run entry point of the package; the migration table in the package
// documentation maps each legacy Run* function to its spec.
func Run(spec RunSpec) (*RunResult, error) {
	sources := 0
	if spec.Arrivals != nil {
		sources++
	}
	if spec.Stream != nil {
		sources++
	}
	if spec.Source != nil {
		sources++
	}
	if sources != 1 {
		return nil, fmt.Errorf("malleable: RunSpec needs exactly one of Arrivals, Stream and Source, got %d", sources)
	}
	shards := spec.Shards
	if shards == 0 {
		shards = 1
	}
	if shards < 0 {
		return nil, fmt.Errorf("malleable: RunSpec.Shards = %d, want >= 0", shards)
	}
	if spec.Router != nil {
		return spec.runCluster(shards)
	}
	if spec.Workers != 0 {
		return nil, fmt.Errorf("malleable: RunSpec.Workers needs a Router: only the cluster coordinator has independent shards to advance in parallel")
	}
	if spec.StaleRouting {
		return nil, fmt.Errorf("malleable: RunSpec.StaleRouting stales a router's fleet view; set a Router")
	}
	if spec.Prefetch {
		return nil, fmt.Errorf("malleable: RunSpec.Prefetch pipelines the cluster coordinator's stream; set a Router")
	}
	if spec.FleetProbe != nil || spec.ProbeEveryDispatches != 0 {
		return nil, fmt.Errorf("malleable: RunSpec.FleetProbe observes a routed fleet; set a Router")
	}
	if spec.Source != nil {
		return spec.runShards(shards)
	}
	if shards != 1 {
		return nil, fmt.Errorf("malleable: %d shards need a Router (one routed stream) or a Source (independent streams)", shards)
	}
	if spec.Stream != nil {
		return spec.runStream()
	}
	return spec.runSlice()
}

// runCluster dispatches the spec's single global stream across a routed
// fleet. Arrivals adapt positionally — the cluster consumes them in release
// order, so unlike the single-engine slice path they must already be sorted.
func (spec RunSpec) runCluster(shards int) (*RunResult, error) {
	if spec.Source != nil {
		return nil, fmt.Errorf("malleable: a Router dispatches ONE global stream; use Arrivals or Stream, not Source")
	}
	stream := spec.Stream
	if stream == nil {
		stream = engine.NewSliceStream(spec.Arrivals)
	}
	return cluster.Run(cluster.Config{
		Shards:               shards,
		P:                    spec.P,
		Policy:               spec.Policy,
		Router:               spec.Router,
		Workers:              spec.Workers,
		Speculate:            spec.Speculate,
		StaleRouting:         spec.StaleRouting,
		Prefetch:             spec.Prefetch,
		Opts:                 spec.options(),
		Sink:                 spec.Sink,
		Probe:                spec.FleetProbe,
		ProbeEveryDispatches: spec.ProbeEveryDispatches,
	}, stream)
}

// runShards runs the independent-streams topology: no shared timeline, so
// sinks and probes have no deterministic order to observe and are rejected.
func (spec RunSpec) runShards(shards int) (*RunResult, error) {
	if spec.Sink != nil || spec.Probe != nil {
		return nil, fmt.Errorf("malleable: Source shards run concurrently with no shared timeline; Sink and Probe need a single-engine or cluster run")
	}
	return engine.RunShardsStreamWithOptions(spec.P, spec.Policy, spec.Source, shards, spec.Seed, spec.options())
}

// runStream runs one engine over the pulled stream, summarizing through
// aggregate and sketch sinks — the O(alive tasks) path.
func (spec RunSpec) runStream() (*RunResult, error) {
	agg := engine.NewAggregateSink()
	sk := engine.NewSketchSink(0)
	res := &engine.Result{}
	sink := engine.MultiSink(agg, sk, spec.Sink)
	if err := engine.NewRunner().RunStreamInto(res, spec.P, spec.Policy, spec.Stream, sink, spec.options()); err != nil {
		return nil, err
	}
	runs := []engine.ShardRun{{Shard: 0, Seed: spec.Seed, Result: res}}
	return engine.MergeShards(spec.P, spec.Policy.Name(), runs, []*engine.AggregateSink{agg}, []*engine.SketchSink{sk})
}

// runSlice runs one engine over the materialized workload with full row
// retention — exact quantiles, and the task table in Shards[0].Result.
func (spec RunSpec) runSlice() (*RunResult, error) {
	res := &engine.Result{}
	if err := engine.NewRunner().RunInto(res, spec.P, spec.Policy, spec.Arrivals, spec.options()); err != nil {
		return nil, err
	}
	if spec.Sink != nil {
		// The engine retained the rows instead of streaming them; replay
		// them in completion order (ties by task ID — the retained table is
		// ID-indexed, so this is the deterministic order it can offer).
		order := make([]int, len(res.Tasks))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ta, tb := res.Tasks[order[a]], res.Tasks[order[b]]
			if ta.Completion != tb.Completion {
				return ta.Completion < tb.Completion
			}
			return ta.ID < tb.ID
		})
		for _, i := range order {
			spec.Sink.Observe(res.Tasks[i])
		}
	}
	agg := engine.NewAggregateSink()
	agg.ObserveResult(res)
	runs := []engine.ShardRun{{Shard: 0, Seed: spec.Seed, Result: res}}
	return engine.MergeShards(spec.P, spec.Policy.Name(), runs, []*engine.AggregateSink{agg}, []*engine.SketchSink{nil})
}
