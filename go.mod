module github.com/malleable-sched/malleable

go 1.23
