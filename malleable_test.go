//lint:file-ignore SA1019 This file deliberately exercises the deprecated
// Run* wrappers: they must keep working (and keep matching Run) until they
// are removed.

package malleable_test

import (
	"bytes"
	"math/rand"
	"testing"

	malleable "github.com/malleable-sched/malleable"
	"github.com/malleable-sched/malleable/internal/numeric"
)

// exampleInstance is the small running example used by the facade tests:
// three tasks on two processors.
func exampleInstance(t *testing.T) *malleable.Instance {
	t.Helper()
	inst, err := malleable.NewInstance(2, []malleable.Task{
		{Name: "render", Weight: 3, Volume: 2, Delta: 2, Due: 2},
		{Name: "encode", Weight: 1, Volume: 2, Delta: 1, Due: 3},
		{Name: "upload", Weight: 2, Volume: 1, Delta: 2, Due: 1},
	})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

func TestFacadeAlgorithmsProduceValidSchedules(t *testing.T) {
	inst := exampleInstance(t)

	wdeq, err := malleable.WDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	deq, err := malleable.DEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	smith, err := malleable.GreedySmith(inst)
	if err != nil {
		t.Fatal(err)
	}
	best, err := malleable.BestGreedy(inst, rand.New(rand.NewSource(1)), 4)
	if err != nil {
		t.Fatal(err)
	}
	cmax, err := malleable.CmaxOptimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*malleable.Schedule{
		"WDEQ": wdeq, "DEQ": deq, "GreedySmith": smith.Schedule, "BestGreedy": best.Schedule, "CmaxOptimal": cmax,
	} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s schedule invalid: %v", name, err)
		}
	}
}

func TestFacadeOptimalAndBounds(t *testing.T) {
	inst := exampleInstance(t)
	opt, err := malleable.Optimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Schedule.Validate(); err != nil {
		t.Fatalf("optimal schedule invalid: %v", err)
	}
	obj, err := malleable.OptimalObjective(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqualTol(obj, opt.Objective, 1e-9) {
		t.Errorf("OptimalObjective = %g, Optimal().Objective = %g", obj, opt.Objective)
	}
	lb := malleable.LowerBound(inst)
	if lb > opt.Objective+1e-6 {
		t.Errorf("lower bound %g exceeds the optimum %g", lb, opt.Objective)
	}
	if malleable.SquashedAreaBound(inst) > lb+1e-9 || malleable.HeightBound(inst) > lb+1e-9 {
		t.Errorf("LowerBound is not the max of A and H")
	}

	wdeq, err := malleable.WDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	if wdeq.WeightedCompletionTime() > 2*opt.Objective+1e-6 {
		t.Errorf("WDEQ breaks its 2-approximation guarantee")
	}

	best, err := malleable.BestGreedy(inst, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqualTol(best.Objective, opt.Objective, 1e-5) {
		t.Errorf("best greedy %g differs from the optimum %g (Conjecture 12)", best.Objective, opt.Objective)
	}
}

func TestFacadeNormalFormAndConversion(t *testing.T) {
	inst := exampleInstance(t)
	wdeq, err := malleable.WDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !malleable.Feasible(inst, wdeq.CompletionTimes()) {
		t.Errorf("completion times of a valid schedule reported infeasible")
	}
	norm, err := malleable.Normalize(wdeq)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqualTol(norm.WeightedCompletionTime(), wdeq.WeightedCompletionTime(), 1e-6) {
		t.Errorf("normalization changed the objective")
	}
	wf, err := malleable.WaterFill(inst, wdeq.CompletionTimes())
	if err != nil {
		t.Fatal(err)
	}
	pa, err := malleable.ToProcessorSchedule(wf)
	if err != nil {
		t.Fatal(err)
	}
	if err := pa.Validate(); err != nil {
		t.Errorf("processor schedule invalid: %v", err)
	}
	// Infeasible targets are rejected.
	tight := make([]float64, inst.N())
	for i := range tight {
		tight[i] = 0.01
	}
	if malleable.Feasible(inst, tight) {
		t.Errorf("absurdly tight completion times reported feasible")
	}
}

func TestFacadeGreedyAndLateness(t *testing.T) {
	inst := exampleInstance(t)
	g, err := malleable.Greedy(inst, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("greedy schedule invalid: %v", err)
	}
	s, lmax, err := malleable.MinimizeMaxLateness(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("lateness schedule invalid: %v", err)
	}
	if s.MaxLateness() > lmax+1e-6 {
		t.Errorf("schedule lateness %g exceeds reported optimum %g", s.MaxLateness(), lmax)
	}
	// No schedule can beat the reported optimal lateness.
	if g.MaxLateness() < lmax-1e-6 {
		t.Errorf("a greedy schedule beats the reported optimal lateness (%g < %g)", g.MaxLateness(), lmax)
	}
}

func TestRunOnlineFacade(t *testing.T) {
	policy, err := malleable.OnlinePolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	arrivals := []malleable.Arrival{
		{Task: malleable.Task{Name: "boot", Weight: 2, Volume: 1, Delta: 1}, Release: 0},
		{Task: malleable.Task{Name: "serve", Weight: 1, Volume: 1, Delta: 1}, Release: 0.5},
	}
	res, err := malleable.RunOnline(1, policy, arrivals)
	if err != nil {
		t.Fatalf("RunOnline: %v", err)
	}
	if res.Policy != "WDEQ" || len(res.Tasks) != 2 {
		t.Fatalf("result = %+v", res)
	}
	for i, tm := range res.Tasks {
		if tm.Completion < arrivals[i].Release || tm.Flow <= 0 {
			t.Errorf("task %d: completion %g flow %g", i, tm.Completion, tm.Flow)
		}
	}
	if res.WeightedFlow <= 0 || res.Throughput() <= 0 {
		t.Errorf("weighted flow %g, throughput %g", res.WeightedFlow, res.Throughput())
	}
	if _, err := malleable.OnlinePolicyByName("bogus"); err == nil {
		t.Error("unknown online policy accepted")
	}
}

func TestRunOnlineShardsFacade(t *testing.T) {
	policy, err := malleable.OnlinePolicyByName("deq")
	if err != nil {
		t.Fatal(err)
	}
	source := func(shard int, seed int64) ([]malleable.Arrival, error) {
		rng := rand.New(rand.NewSource(seed))
		arrivals := make([]malleable.Arrival, 30)
		now := 0.0
		for i := range arrivals {
			now += rng.ExpFloat64() / 4
			arrivals[i] = malleable.Arrival{
				Task:    malleable.Task{Weight: 1, Volume: 0.2 + rng.Float64(), Delta: 1},
				Release: now,
			}
		}
		return arrivals, nil
	}
	res, err := malleable.RunOnlineShards(2, policy, source, 3, 7)
	if err != nil {
		t.Fatalf("RunOnlineShards: %v", err)
	}
	if res.TotalTasks != 90 || len(res.Shards) != 3 || res.Throughput <= 0 {
		t.Errorf("load result = tasks %d, shards %d, throughput %g", res.TotalTasks, len(res.Shards), res.Throughput)
	}
}

func TestGenerateArrivalsFacade(t *testing.T) {
	arrivals, err := malleable.GenerateArrivals(malleable.OnlineWorkload{
		P:    2,
		Rate: 4,
		Tenants: []malleable.TenantSpec{
			{Name: "gold", Weight: 4, Share: 0.5},
			{Name: "bronze", Weight: 1, Share: 0.5},
		},
	}, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 50 {
		t.Fatalf("got %d arrivals, want 50", len(arrivals))
	}
	policy, err := malleable.OnlinePolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := malleable.RunOnline(2, policy, arrivals); err != nil {
		t.Fatalf("generated stream not runnable: %v", err)
	}
	if _, err := malleable.GenerateArrivals(malleable.OnlineWorkload{Class: "nope", P: 2, Rate: 1}, 5, 1); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := malleable.GenerateArrivals(malleable.OnlineWorkload{Process: "nope", P: 2, Rate: 1}, 5, 1); err == nil {
		t.Error("unknown process accepted")
	}
}

// The speedup-model surface of the facade: model parsing, model-threaded
// online runs, per-task curve generation, and the static replay on the
// online kernel.
func TestSpeedupModelFacade(t *testing.T) {
	inst := exampleInstance(t)

	// Static replay under the default linear model reproduces WDEQ exactly.
	static, err := malleable.RunStatic(inst, mustPolicy(t, "wdeq"), malleable.OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if static.Schedule == nil {
		t.Fatal("linear static run built no schedule")
	}
	direct, err := malleable.WDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqualTol(static.Schedule.WeightedCompletionTime(), direct.WeightedCompletionTime(), 1e-6) {
		t.Errorf("static replay %g vs WDEQ %g", static.Schedule.WeightedCompletionTime(), direct.WeightedCompletionTime())
	}

	// Non-linear models slow the same workload down and skip the schedule.
	model, err := malleable.ParseSpeedupModel("powerlaw:0.5")
	if err != nil {
		t.Fatal(err)
	}
	concave, err := malleable.RunStatic(inst, mustPolicy(t, "wdeq"), malleable.OnlineOptions{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if concave.Schedule != nil {
		t.Errorf("concave static run built a schedule")
	}
	if concave.Makespan <= static.Makespan {
		t.Errorf("concave makespan %g not slower than linear %g", concave.Makespan, static.Makespan)
	}

	// Online runs accept the model through RunOnlineWithOptions, and per-task
	// curves flow from the generator into the kernel.
	arrivals, err := malleable.GenerateArrivals(malleable.OnlineWorkload{
		Class: "uniform", P: 4, Process: "poisson", Rate: 4,
		CurveMin: 0.5, CurveMax: 0.9,
	}, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range arrivals {
		if a.Task.Curve < 0.5 || a.Task.Curve > 0.9 {
			t.Fatalf("arrival %d curve %g outside [0.5, 0.9]", i, a.Task.Curve)
		}
	}
	linear, err := malleable.RunOnline(4, mustPolicy(t, "wdeq"), arrivals)
	if err != nil {
		t.Fatal(err)
	}
	curved, err := malleable.RunOnlineWithOptions(4, mustPolicy(t, "wdeq"), arrivals, malleable.OnlineOptions{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if !(curved.WeightedFlow > linear.WeightedFlow) {
		t.Errorf("concave weighted flow %g not worse than linear %g", curved.WeightedFlow, linear.WeightedFlow)
	}

	// The sharded form threads the same options through every shard.
	source := func(shard int, seed int64) ([]malleable.Arrival, error) { return arrivals, nil }
	load, err := malleable.RunOnlineShardsWithOptions(4, mustPolicy(t, "wdeq"), source, 2, 1, malleable.OnlineOptions{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if load.TotalTasks != 2*len(arrivals) {
		t.Errorf("sharded run completed %d tasks, want %d", load.TotalTasks, 2*len(arrivals))
	}

	if len(malleable.SpeedupModelNames()) == 0 {
		t.Errorf("no speedup model names exported")
	}
	if _, err := malleable.ParseSpeedupModel("bogus"); err == nil {
		t.Errorf("bogus model spec accepted")
	}
}

func mustPolicy(t *testing.T, name string) malleable.OnlinePolicy {
	t.Helper()
	p, err := malleable.OnlinePolicyByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The streaming facade: StreamArrivals must match GenerateArrivals,
// RunOnlineStream must match RunOnline on aggregates, sinks must see every
// task, and a JSONL trace must round-trip into an identical replay.
func TestRunOnlineStreamFacade(t *testing.T) {
	w := malleable.OnlineWorkload{
		Class: "uniform", P: 4, Process: "bursty", Rate: 6, MeanBurst: 3,
		Tenants: []malleable.TenantSpec{
			{Name: "gold", Weight: 4, Share: 0.25},
			{Name: "bronze", Weight: 1, Share: 0.75},
		},
	}
	const n = 400
	arrivals, err := malleable.GenerateArrivals(w, n, 11)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := malleable.RunOnline(4, mustPolicy(t, "wdeq"), arrivals)
	if err != nil {
		t.Fatal(err)
	}

	stream, err := malleable.StreamArrivals(w, n, 11)
	if err != nil {
		t.Fatal(err)
	}
	agg := malleable.NewAggregateSink()
	quant := malleable.NewQuantileSink(0)
	full := malleable.NewFullSink(n)
	res, err := malleable.RunOnlineStream(4, mustPolicy(t, "wdeq"), stream, malleable.CombineSinks(agg, quant, full))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n || res.WeightedFlow != batch.WeightedFlow || res.Makespan != batch.Makespan {
		t.Fatalf("streaming aggregates differ: %+v vs %+v", res, batch)
	}
	if len(res.Tasks) != 0 {
		t.Errorf("streaming facade retained %d rows", len(res.Tasks))
	}
	if agg.Tasks() != n || quant.Sketch.Count() != n || len(full.Tasks) != n {
		t.Fatalf("sinks saw %d/%d/%d tasks, want %d", agg.Tasks(), quant.Sketch.Count(), len(full.Tasks), n)
	}
	for i := range full.Tasks {
		if full.Tasks[i] != batch.Tasks[i] {
			t.Fatalf("task %d differs via full sink: %+v vs %+v", i, full.Tasks[i], batch.Tasks[i])
		}
	}

	// Record the workload as JSONL, replay it, and get the same run.
	var trace bytes.Buffer
	tw := malleable.NewArrivalTraceWriter(&trace)
	for _, a := range arrivals {
		if err := tw.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	replayed, err := malleable.RunOnlineStream(4, mustPolicy(t, "wdeq"), malleable.NewArrivalTraceReader(&trace), nil)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.WeightedFlow != batch.WeightedFlow || replayed.Completed != n || replayed.Events != batch.Events {
		t.Errorf("trace replay diverged: %+v vs %+v", replayed, batch)
	}

	// The sharded streaming driver merges without retaining rows.
	source := func(shard int, seed int64) (malleable.ArrivalStream, error) {
		return malleable.StreamArrivals(w, n, seed)
	}
	load, err := malleable.RunOnlineShardsStream(4, mustPolicy(t, "wdeq"), source, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if load.TotalTasks != 3*n || !load.FlowApprox || load.Flow.Count != 3*n {
		t.Errorf("sharded stream load = %+v", load)
	}
	for _, run := range load.Shards {
		if len(run.Result.Tasks) != 0 {
			t.Errorf("shard %d retained rows", run.Shard)
		}
	}
}

// The cluster facade: one global Zipf-skewed stream routed across a fleet,
// deterministic under a fixed seed, with the imbalance fields populated and
// the resumable stepper surfaced.
func TestRunClusterFacade(t *testing.T) {
	w := malleable.OnlineWorkload{
		P: 4, Rate: 24,
		Tenants: []malleable.TenantSpec{
			{Name: "a", Weight: 2, Share: 1}, {Name: "b", Weight: 1, Share: 1},
			{Name: "c", Weight: 1, Share: 1}, {Name: "d", Weight: 1, Share: 1},
		},
		TenantSkew: 1.5,
	}
	const n = 1200
	run := func(routerName string) *malleable.OnlineLoadResult {
		t.Helper()
		stream, err := malleable.StreamArrivals(w, n, 77)
		if err != nil {
			t.Fatal(err)
		}
		router, err := malleable.RouterByName(routerName, 5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := malleable.RunCluster(malleable.ClusterConfig{
			Shards: 3, P: 4, Policy: mustPolicy(t, "wdeq"), Router: router,
		}, stream)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, name := range malleable.RouterNames() {
		res := run(name)
		if res.TotalTasks != n {
			t.Errorf("%s: completed %d tasks, want %d", name, res.TotalTasks, n)
		}
		if res.MaxShardCompleted < res.MinShardCompleted || res.PeakBacklog <= 0 {
			t.Errorf("%s: imbalance fields min=%d max=%d peak=%d", name, res.MinShardCompleted, res.MaxShardCompleted, res.PeakBacklog)
		}
	}
	a, b := run("po2"), run("po2")
	if a.WeightedFlow != b.WeightedFlow || a.Makespan != b.Makespan || a.PeakBacklog != b.PeakBacklog {
		t.Errorf("po2 cluster not deterministic: %+v vs %+v", a, b)
	}

	// The resumable stepper through the facade: drive a few events by hand.
	stream, err := malleable.StreamArrivals(w, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	var res malleable.OnlineResult
	runner := malleable.NewOnlineRunner()
	st, err := runner.StartStream(&res, 4, mustPolicy(t, "wdeq"), stream, nil, malleable.OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for {
		ok, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if err := st.Finish(); err != nil {
		t.Fatal(err)
	}
	if res.Completed != 64 {
		t.Errorf("stepper completed %d of 64", res.Completed)
	}
}

// The observability plane through the facade: a registry-backed engine
// collector and a timeline observe a streaming run without changing its
// result, and the registry renders a parseable Prometheus exposition.
func TestObservabilityFacade(t *testing.T) {
	w := malleable.OnlineWorkload{Class: "uniform", P: 4, Process: "poisson", Rate: 6}
	const n = 500

	stream, err := malleable.StreamArrivals(w, n, 21)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := malleable.RunOnlineStream(4, mustPolicy(t, "wdeq"), stream, nil)
	if err != nil {
		t.Fatal(err)
	}

	reg := malleable.NewMetricsRegistry()
	collector := malleable.NewEngineCollector(reg)
	flows := malleable.NewFlowCollector(reg)
	var timelineBuf bytes.Buffer
	timeline := malleable.NewRunTimeline(&timelineBuf, 1)

	stream, err = malleable.StreamArrivals(w, n, 21)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := malleable.RunOnlineStreamWithOptions(4, mustPolicy(t, "wdeq"), stream,
		malleable.CombineSinks(flows, timeline),
		malleable.OnlineOptions{Probe: malleable.CombineProbes(collector, timeline)})
	if err != nil {
		t.Fatal(err)
	}
	if err := timeline.Close(); err != nil {
		t.Fatal(err)
	}
	if observed.WeightedFlow != plain.WeightedFlow || observed.Makespan != plain.Makespan {
		t.Fatalf("observation perturbed the run: %+v vs %+v", observed, plain)
	}

	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	fams, err := malleable.ParsePrometheusExposition(&prom)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	done := fams["mwct_engine_completed_total"]
	if done == nil || done.Samples[0].Value != n {
		t.Fatalf("mwct_engine_completed_total = %+v, want %d", done, n)
	}
	if flow := fams["mwct_flow"]; flow == nil || flow.Type != "summary" {
		t.Fatalf("mwct_flow family = %+v", flow)
	}

	recs, err := malleable.ReadRunTimeline(&timelineBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || !recs[len(recs)-1].Done || recs[len(recs)-1].Completed != n {
		t.Fatalf("timeline records = %d, terminal %+v", len(recs), recs[len(recs)-1])
	}
}
