package malleable_test

import (
	"math/rand"
	"testing"

	malleable "github.com/malleable-sched/malleable"
	"github.com/malleable-sched/malleable/internal/numeric"
)

// exampleInstance is the small running example used by the facade tests:
// three tasks on two processors.
func exampleInstance(t *testing.T) *malleable.Instance {
	t.Helper()
	inst, err := malleable.NewInstance(2, []malleable.Task{
		{Name: "render", Weight: 3, Volume: 2, Delta: 2, Due: 2},
		{Name: "encode", Weight: 1, Volume: 2, Delta: 1, Due: 3},
		{Name: "upload", Weight: 2, Volume: 1, Delta: 2, Due: 1},
	})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

func TestFacadeAlgorithmsProduceValidSchedules(t *testing.T) {
	inst := exampleInstance(t)

	wdeq, err := malleable.WDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	deq, err := malleable.DEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	smith, err := malleable.GreedySmith(inst)
	if err != nil {
		t.Fatal(err)
	}
	best, err := malleable.BestGreedy(inst, rand.New(rand.NewSource(1)), 4)
	if err != nil {
		t.Fatal(err)
	}
	cmax, err := malleable.CmaxOptimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*malleable.Schedule{
		"WDEQ": wdeq, "DEQ": deq, "GreedySmith": smith.Schedule, "BestGreedy": best.Schedule, "CmaxOptimal": cmax,
	} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s schedule invalid: %v", name, err)
		}
	}
}

func TestFacadeOptimalAndBounds(t *testing.T) {
	inst := exampleInstance(t)
	opt, err := malleable.Optimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Schedule.Validate(); err != nil {
		t.Fatalf("optimal schedule invalid: %v", err)
	}
	obj, err := malleable.OptimalObjective(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqualTol(obj, opt.Objective, 1e-9) {
		t.Errorf("OptimalObjective = %g, Optimal().Objective = %g", obj, opt.Objective)
	}
	lb := malleable.LowerBound(inst)
	if lb > opt.Objective+1e-6 {
		t.Errorf("lower bound %g exceeds the optimum %g", lb, opt.Objective)
	}
	if malleable.SquashedAreaBound(inst) > lb+1e-9 || malleable.HeightBound(inst) > lb+1e-9 {
		t.Errorf("LowerBound is not the max of A and H")
	}

	wdeq, err := malleable.WDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	if wdeq.WeightedCompletionTime() > 2*opt.Objective+1e-6 {
		t.Errorf("WDEQ breaks its 2-approximation guarantee")
	}

	best, err := malleable.BestGreedy(inst, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqualTol(best.Objective, opt.Objective, 1e-5) {
		t.Errorf("best greedy %g differs from the optimum %g (Conjecture 12)", best.Objective, opt.Objective)
	}
}

func TestFacadeNormalFormAndConversion(t *testing.T) {
	inst := exampleInstance(t)
	wdeq, err := malleable.WDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !malleable.Feasible(inst, wdeq.CompletionTimes()) {
		t.Errorf("completion times of a valid schedule reported infeasible")
	}
	norm, err := malleable.Normalize(wdeq)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqualTol(norm.WeightedCompletionTime(), wdeq.WeightedCompletionTime(), 1e-6) {
		t.Errorf("normalization changed the objective")
	}
	wf, err := malleable.WaterFill(inst, wdeq.CompletionTimes())
	if err != nil {
		t.Fatal(err)
	}
	pa, err := malleable.ToProcessorSchedule(wf)
	if err != nil {
		t.Fatal(err)
	}
	if err := pa.Validate(); err != nil {
		t.Errorf("processor schedule invalid: %v", err)
	}
	// Infeasible targets are rejected.
	tight := make([]float64, inst.N())
	for i := range tight {
		tight[i] = 0.01
	}
	if malleable.Feasible(inst, tight) {
		t.Errorf("absurdly tight completion times reported feasible")
	}
}

func TestFacadeGreedyAndLateness(t *testing.T) {
	inst := exampleInstance(t)
	g, err := malleable.Greedy(inst, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("greedy schedule invalid: %v", err)
	}
	s, lmax, err := malleable.MinimizeMaxLateness(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("lateness schedule invalid: %v", err)
	}
	if s.MaxLateness() > lmax+1e-6 {
		t.Errorf("schedule lateness %g exceeds reported optimum %g", s.MaxLateness(), lmax)
	}
	// No schedule can beat the reported optimal lateness.
	if g.MaxLateness() < lmax-1e-6 {
		t.Errorf("a greedy schedule beats the reported optimal lateness (%g < %g)", g.MaxLateness(), lmax)
	}
}
