// Package malleable schedules work-preserving malleable tasks on identical
// processors to minimize the weighted sum of completion times, implementing
// the algorithms and analyses of:
//
//	Olivier Beaumont, Nicolas Bonichon, Lionel Eyraud-Dubois, Loris Marchal.
//	"Minimizing Weighted Mean Completion Time for Malleable Tasks Scheduling."
//	IPDPS 2012.
//
// A malleable task i is described by its total work V_i (its sequential
// processing time), a weight w_i, and a degree bound δ_i — the maximum number
// of processors it can use at any instant. The task may be preempted and the
// number of processors allocated to it may change freely over time; because
// the tasks are work-preserving, running on q processors for a duration d
// always processes q·d units of work.
//
// The package exposes:
//
//   - WDEQ, the non-clairvoyant weighted dynamic equipartition algorithm
//     (a 2-approximation for Σ w_i·C_i, Theorem 4 of the paper), and DEQ,
//     its unweighted ancestor;
//   - WaterFill, the normal-form construction: given only per-task completion
//     times it rebuilds a valid schedule whenever one exists (Theorem 8) and
//     bounds the number of allocation changes and preemptions (Theorems 9
//     and 10);
//   - Greedy, BestGreedy and GreedySmith, the greedy schedules of Section V,
//     which the paper conjectures always contain an optimal schedule;
//   - Optimal, the exact solver for small instances (order enumeration plus
//     the linear program of Corollary 1, solved by a built-in simplex);
//   - the lower bounds A(I) (squashed area), H(I) (height) and their mixed
//     combination, plus makespan- and lateness-oriented helpers;
//   - Run, the single entry point to the arrival-driven scheduling kernel:
//     a RunSpec names the platform, an OnlinePolicy (OnlinePolicyByName:
//     wdeq, deq, weight-greedy, smith-ratio), exactly one arrival source and
//     an optional topology, and every combination reports through one
//     RunResult schema. Materialized Arrivals retain per-task rows with
//     exact flow quantiles; a pulled ArrivalStream runs in O(alive tasks)
//     memory with per-task outcomes flowing into pluggable MetricSinks (a
//     per-tenant AggregateSink, a mergeable QuantileSink, a FullSink, or any
//     custom TaskMetrics consumer); a Source fans out to independent
//     concurrent shards; a ClusterRouter (RouterByName: round-robin,
//     hash-tenant, least-backlog, po2) dispatches ONE global stream across a
//     routed fleet on a single deterministic virtual timeline, where
//     RunSpec.Workers >= 2 advances shards concurrently between routing
//     decisions without changing a single output byte — same dispatch
//     sequence, same sink order, same merged result at any worker count —
//     and RunSpec.Speculate additionally runs the coordinator
//     optimistically on stepper checkpoint/rollback (speculate past
//     pending dispatches, roll back only the mispredicted shard), still
//     byte-identical, with misprediction totals reported out of band.
//     RunSpec.StaleRouting trades exactness for pipelining instead: a
//     window-stale router (least-backlog, po2) reads fleet views published
//     once per 512-dispatch window, which removes the per-dispatch barrier
//     entirely — a different but fully deterministic schedule, byte-identical
//     at every worker count, with the view cadence reported on the result
//     (StaleViews, StaleWindow) — and RunSpec.Prefetch overlaps arrival
//     generation or trace decode with shard execution on a producer
//     goroutine without changing any output byte;
//   - SpeedupModel, the kernel's pluggable processing-rate model: the
//     paper's linear-cap speedup is the default, and ParseSpeedupModel
//     resolves concave power-law and Amdahl models (with optional per-task
//     Task.Curve parameters) and step-function time-varying platform
//     capacities — the same policies and workloads run unchanged under any
//     of them (RunSpec.Model). RunStatic replays a static instance on
//     the kernel and, under linear models, reconstructs the column-based
//     schedule from the decision trace. The kernel itself is exposed in
//     resumable form as OnlineStepper (StartStream/StartFeed on an
//     OnlineRunner), advancing one event at a time and suspendable between
//     events;
//   - the observability plane: a RunProbe observes any run at its rest state
//     at configurable intervals (RunSpec.Probe) without perturbing it,
//     MetricsRegistry + NewEngineCollector/NewClusterCollector/NewFlowCollector
//     mirror live runs into Prometheus-rendered metrics (`mwct serve` answers
//     GET /metrics; `-pprof` adds net/http/pprof), and NewRunTimeline records
//     sampled backlog/throughput/flow-quantile trajectories as JSONL
//     (`mwct loadtest -timeline out.jsonl`) that ReadRunTimeline loads back —
//     all of it allocation-free in steady state.
//
// # Migrating from the Run* function family
//
// The nine Run* variants that accreted around the kernel (RunOnline,
// RunOnlineStream, RunCluster, their *Shards* and *WithOptions forms) are
// deprecated thin wrappers over Run; each one is a RunSpec spelling:
//
//	RunOnline(p, pol, arrs)                          Run(RunSpec{P: p, Policy: pol, Arrivals: arrs})
//	RunOnlineWithOptions(p, pol, arrs, o)            Run(RunSpec{P: p, Policy: pol, Arrivals: arrs, Model: o.Model, ...})
//	RunOnlineStream(p, pol, st, sink)                Run(RunSpec{P: p, Policy: pol, Stream: st, Sink: sink})
//	RunOnlineStreamWithOptions(p, pol, st, sink, o)  Run(RunSpec{P: p, Policy: pol, Stream: st, Sink: sink, Model: o.Model, ...})
//	RunOnlineShards(p, pol, src, n, seed)            Run(RunSpec{P: p, Policy: pol, Source: streams(src), Shards: n, Seed: seed})
//	RunOnlineShardsWithOptions(...)                  ... plus the option fields
//	RunOnlineShardsStream(p, pol, src, n, seed)      Run(RunSpec{P: p, Policy: pol, Source: src, Shards: n, Seed: seed})
//	RunOnlineShardsStreamWithOptions(...)            ... plus the option fields
//	RunCluster(cfg, st)                              Run(RunSpec{P: cfg.P, Policy: cfg.Policy, Stream: st, Shards: cfg.Shards, Router: cfg.Router, Workers: cfg.Workers, Sink: cfg.Sink, FleetProbe: cfg.Probe, ...})
//
// The OnlineOptions fields flatten into the spec (Model, TraceDecisions,
// MaxEvents, Probe, ProbeEveryEvents, ProbeInterval). Cluster knobs added
// after the migration (RunSpec.Speculate, RunSpec.StaleRouting,
// RunSpec.Prefetch) have no legacy spelling: they exist only on the spec,
// and a spec that sets them without a Router is rejected rather than
// silently ignored. Two intentional
// differences: Run always returns the merged *RunResult (single-engine runs
// read back as a one-shard fleet, with the legacy OnlineResult available as
// Shards[0].Result), and the slice-shard topology of RunOnlineShards is
// subsumed by the stream Source — wrap a slice with a StreamArrivals-style
// source, or keep exact per-shard retention by running shards yourself.
//
// The heavy lifting lives in internal packages (internal/core,
// internal/schedule, internal/engine, internal/lp, ...); this package is the
// stable facade a downstream user imports. The cmd/mwct command exposes the
// same functionality on the command line (including `mwct loadtest`, the
// multi-tenant load generator over the engine, and `mwct serve`, its HTTP
// front end), the examples/ directory contains runnable scenarios, and
// bench_test.go regenerates every quantitative result of the paper (see
// DESIGN.md and EXPERIMENTS.md).
package malleable
