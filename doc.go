// Package malleable schedules work-preserving malleable tasks on identical
// processors to minimize the weighted sum of completion times, implementing
// the algorithms and analyses of:
//
//	Olivier Beaumont, Nicolas Bonichon, Lionel Eyraud-Dubois, Loris Marchal.
//	"Minimizing Weighted Mean Completion Time for Malleable Tasks Scheduling."
//	IPDPS 2012.
//
// A malleable task i is described by its total work V_i (its sequential
// processing time), a weight w_i, and a degree bound δ_i — the maximum number
// of processors it can use at any instant. The task may be preempted and the
// number of processors allocated to it may change freely over time; because
// the tasks are work-preserving, running on q processors for a duration d
// always processes q·d units of work.
//
// The package exposes:
//
//   - WDEQ, the non-clairvoyant weighted dynamic equipartition algorithm
//     (a 2-approximation for Σ w_i·C_i, Theorem 4 of the paper), and DEQ,
//     its unweighted ancestor;
//   - WaterFill, the normal-form construction: given only per-task completion
//     times it rebuilds a valid schedule whenever one exists (Theorem 8) and
//     bounds the number of allocation changes and preemptions (Theorems 9
//     and 10);
//   - Greedy, BestGreedy and GreedySmith, the greedy schedules of Section V,
//     which the paper conjectures always contain an optimal schedule;
//   - Optimal, the exact solver for small instances (order enumeration plus
//     the linear program of Corollary 1, solved by a built-in simplex);
//   - the lower bounds A(I) (squashed area), H(I) (height) and their mixed
//     combination, plus makespan- and lateness-oriented helpers;
//   - RunOnline and RunOnlineShards, the arrival-driven scheduling kernel:
//     tasks carry release dates (Arrival), a discrete-event loop re-invokes
//     an OnlinePolicy at every arrival, completion and capacity change, and
//     per-task flow-time metrics are reported. OnlinePolicyByName resolves
//     the bundled policies (wdeq, deq, weight-greedy and the clairvoyant
//     smith-ratio baseline), and the sharded variant runs many independent
//     engines concurrently with reproducible per-shard seeds — the
//     sustained-load, weighted flow-time setting the paper's non-clairvoyant
//     algorithms were designed for;
//   - RunOnlineStream and RunOnlineShardsStream, the constant-memory form of
//     the same kernel: arrivals are pulled lazily from an ArrivalStream
//     (StreamArrivals generates one; NewArrivalTraceReader replays a recorded
//     JSONL trace) and per-task outcomes flow into pluggable MetricSinks —
//     a per-tenant AggregateSink, a fixed-size mergeable QuantileSink for
//     flow p50/p99, or a FullSink when retention is wanted — so a run's
//     memory is O(alive tasks + sink size), independent of how many tasks
//     stream through;
//   - SpeedupModel, the kernel's pluggable processing-rate model: the
//     paper's linear-cap speedup is the default, and ParseSpeedupModel
//     resolves concave power-law and Amdahl models (with optional per-task
//     Task.Curve parameters) and step-function time-varying platform
//     capacities — the same policies and workloads run unchanged under any
//     of them (OnlineOptions.Model). RunStatic replays a static instance on
//     the kernel and, under linear models, reconstructs the column-based
//     schedule from the decision trace;
//   - RunCluster, the virtual-time fleet layer: ONE global arrival stream is
//     dispatched across many engine shards by a pluggable ClusterRouter
//     (RouterByName: round-robin, hash-tenant, least-backlog, po2), which
//     observes exact live backlog snapshots because the coordinator
//     interleaves shard events in global order — shard count becomes a
//     scheduling variable, and a fixed seed replays the whole fleet byte for
//     byte. The kernel itself is exposed in resumable form as OnlineStepper
//     (StartStream/StartFeed on an OnlineRunner), advancing one event at a
//     time and suspendable between events;
//   - the observability plane: a RunProbe observes any run at its rest state
//     at configurable intervals (OnlineOptions.Probe) without perturbing it,
//     MetricsRegistry + NewEngineCollector/NewClusterCollector/NewFlowCollector
//     mirror live runs into Prometheus-rendered metrics (`mwct serve` answers
//     GET /metrics; `-pprof` adds net/http/pprof), and NewRunTimeline records
//     sampled backlog/throughput/flow-quantile trajectories as JSONL
//     (`mwct loadtest -timeline out.jsonl`) that ReadRunTimeline loads back —
//     all of it allocation-free in steady state.
//
// The heavy lifting lives in internal packages (internal/core,
// internal/schedule, internal/engine, internal/lp, ...); this package is the
// stable facade a downstream user imports. The cmd/mwct command exposes the
// same functionality on the command line (including `mwct loadtest`, the
// multi-tenant load generator over the engine, and `mwct serve`, its HTTP
// front end), the examples/ directory contains runnable scenarios, and
// bench_test.go regenerates every quantitative result of the paper (see
// DESIGN.md and EXPERIMENTS.md).
package malleable
