// Online load: weighted flow time under sustained Poisson arrivals.
//
// The example drives the arrival-driven engine with the same multi-tenant
// Poisson workload under four policies — the paper's non-clairvoyant WDEQ,
// its unweighted ancestor DEQ, the non-clairvoyant weight-greedy priority
// policy, and the clairvoyant Smith-ratio baseline — and compares their
// weighted flow times. WDEQ's weight awareness is exactly what protects the
// heavy (gold) tenant once the platform is contended: DEQ treats every alive
// task the same and lets the gold tenant's flow times drift toward the
// fleet average.
//
// Run with:
//
//	go run ./examples/onlineload
//
// The same scenario at scale is available as `mwct loadtest`.
package main

import (
	"fmt"
	"log"
	"sort"

	malleable "github.com/malleable-sched/malleable"
)

func main() {
	const (
		processors = 4
		tasks      = 4000
		rate       = 6 // ~75% offered load on the uniform class
		seed       = 2024
	)
	arrivals, err := malleable.GenerateArrivals(malleable.OnlineWorkload{
		Class:   "uniform",
		P:       processors,
		Process: "poisson",
		Rate:    rate,
		Tenants: []malleable.TenantSpec{
			{Name: "gold", Weight: 4, Share: 0.2},
			{Name: "bronze", Weight: 1, Share: 0.8},
		},
	}, tasks, seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("online load: %d tasks, Poisson rate %g, P=%d, tenants gold(w=4, 20%%) bronze(w=1, 80%%)\n\n",
		tasks, float64(rate), processors)
	fmt.Printf("%-14s %14s %12s %12s %14s %14s\n",
		"policy", "Σw·flow", "mean flow", "p99 flow", "gold mean", "bronze mean")
	for _, name := range []string{"wdeq", "deq", "weight-greedy", "smith-ratio"} {
		policy, err := malleable.OnlinePolicyByName(name)
		if err != nil {
			log.Fatal(err)
		}
		load, err := malleable.Run(malleable.RunSpec{P: processors, Policy: policy, Arrivals: arrivals})
		if err != nil {
			log.Fatal(err)
		}
		// Arrivals runs retain every per-task row: the single shard's result
		// carries the table, flow samples and exact quantiles.
		res := load.Shards[0].Result
		tenants := res.PerTenant()
		fmt.Printf("%-14s %14.6g %12.4g %12.4g %14.4g %14.4g\n",
			res.Policy, res.WeightedFlow, res.MeanFlow(), p99(res.FlowTimes()),
			tenants[0].MeanFlow, tenants[1].MeanFlow)
	}
	fmt.Println("\nWDEQ needs no volume information yet keeps the weighted flow within a few")
	fmt.Println("percent of the clairvoyant Smith-ratio baseline, and serves the gold tenant")
	fmt.Println("noticeably better than the weight-blind DEQ.")
}

func p99(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[int(0.99*float64(len(sorted)-1))]
}
