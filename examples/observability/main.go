// Observability: watch a run from the outside without touching its result.
//
// The example attaches the full observability plane to one streamed online
// run: an EngineCollector mirrors the engine's rest-state snapshots into a
// metrics registry, a FlowCollector summarizes per-task flow times into a
// quantile summary, and a RunTimeline records the run's trajectory as
// sampled JSONL. Afterwards it prints the timeline (backlog and throughput
// over virtual time — the data behind a soak-test plot) and the registry's
// Prometheus text exposition — byte for byte what `mwct serve` returns from
// GET /metrics.
//
// Observation is free where it matters: probes fire at the engine's rest
// state, never inject events, and the bundled observers are
// allocation-free, so the observed run completes with exactly the same
// schedule, flow times and makespan as an unobserved one (the perf suite
// pins this as the online-probe scenario).
//
// Run with:
//
//	go run ./examples/observability
//
// The same wiring at scale: `mwct loadtest -timeline run.jsonl` and
// `mwct serve` + GET /metrics.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	malleable "github.com/malleable-sched/malleable"
)

func main() {
	const (
		processors = 4
		tasks      = 3000
		seed       = 7
	)
	workload := malleable.OnlineWorkload{
		Class: "uniform", P: processors, Process: "poisson", Rate: 5,
		Tenants: []malleable.TenantSpec{
			{Name: "gold", Weight: 4, Share: 0.25},
			{Name: "bronze", Weight: 1, Share: 0.75},
		},
	}
	policy, err := malleable.OnlinePolicyByName("wdeq")
	if err != nil {
		log.Fatal(err)
	}

	// The observers: one registry holds every metric family; the timeline
	// samples the run every 25 units of virtual time.
	registry := malleable.NewMetricsRegistry()
	engineStats := malleable.NewEngineCollector(registry)
	flowStats := malleable.NewFlowCollector(registry)
	var timelineBuf bytes.Buffer
	timeline := malleable.NewRunTimeline(&timelineBuf, 25)

	stream, err := malleable.StreamArrivals(workload, tasks, seed)
	if err != nil {
		log.Fatal(err)
	}
	res, err := malleable.Run(malleable.RunSpec{
		P:      processors,
		Policy: policy,
		Stream: stream,
		Sink:   malleable.CombineSinks(flowStats, timeline),
		Probe:  malleable.CombineProbes(engineStats, timeline),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := timeline.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run: %d tasks on P=%d, makespan %.1f, weighted flow %.1f\n\n",
		res.TotalTasks, processors, res.Makespan, res.WeightedFlow)

	// The timeline is the run's trajectory: queue depth and throughput per
	// sampled instant — what a dashboard would plot during a soak.
	records, err := malleable.ReadRunTimeline(&timelineBuf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("timeline (every 25 units of virtual time):")
	fmt.Println("      t  backlog  completed  tasks/t  p99 flow")
	for _, rec := range records {
		marker := ""
		if rec.Done {
			marker = "  (end of run)"
		}
		fmt.Printf("  %5.0f  %7d  %9d  %7.2f  %8.2f%s\n",
			rec.T, rec.Backlog, rec.Completed, rec.Throughput, rec.P99Flow, marker)
	}

	// The registry renders the scrape `mwct serve` would answer.
	fmt.Println("\nprometheus exposition (what GET /metrics serves):")
	if err := registry.WritePrometheus(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
