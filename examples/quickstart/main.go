// Quickstart: build a small malleable-task instance, schedule it with the
// library's main algorithms, and print the resulting schedules.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	malleable "github.com/malleable-sched/malleable"
)

func main() {
	// Four jobs on a 4-processor node. Volumes are in core-hours; a job's
	// delta is how many cores it can exploit at once; weights encode
	// priority (the objective is the weighted sum of completion times).
	inst, err := malleable.NewInstance(4, []malleable.Task{
		{Name: "train", Weight: 4, Volume: 8, Delta: 4},
		{Name: "etl", Weight: 2, Volume: 6, Delta: 2},
		{Name: "report", Weight: 1, Volume: 1, Delta: 1},
		{Name: "backup", Weight: 1, Volume: 4, Delta: 2},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== lower bounds ==")
	fmt.Printf("squashed area A(I) = %.4g\n", malleable.SquashedAreaBound(inst))
	fmt.Printf("height        H(I) = %.4g\n\n", malleable.HeightBound(inst))

	// Non-clairvoyant: WDEQ does not need to know the volumes in advance.
	wdeq, err := malleable.WDEQ(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== WDEQ (non-clairvoyant, 2-approximation) ==")
	fmt.Print(wdeq.FormatCompletionTable())
	fmt.Println()

	// Clairvoyant: the best greedy schedule (conjectured optimal, provably
	// optimal on several instance classes).
	best, err := malleable.BestGreedy(inst, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== best greedy schedule ==")
	fmt.Printf("order: %v\n", best.Order)
	fmt.Print(best.Schedule.FormatCompletionTable())
	if err := best.Schedule.RenderGantt(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Exact optimum for this small instance.
	opt, err := malleable.Optimal(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== exact optimum (order enumeration + LP) ==")
	fmt.Printf("optimal objective: %.6g (best greedy: %.6g, WDEQ: %.6g)\n",
		opt.Objective, best.Objective, wdeq.WeightedCompletionTime())

	// Convert the optimal fractional schedule to a concrete per-processor
	// schedule (Theorem 3) and show it.
	pa, err := malleable.ToProcessorSchedule(opt.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== per-processor schedule of the optimum ==")
	if err := pa.RenderGantt(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println(pa.Summary())
}
