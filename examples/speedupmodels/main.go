// Pluggable speedup models: one kernel, many worlds.
//
// The example drives the online engine with the same multi-tenant Poisson
// workload and the same WDEQ policy under four processing-rate models —
// the paper's work-preserving linear speedup, a concave power law with
// per-task exponents, Amdahl's law, and a platform whose capacity drops on a
// square wave — and compares weighted flow times. The policy and the
// workload never change: the rate model is an engine option, which is the
// point of the SpeedupModel abstraction.
//
// Run with:
//
//	go run ./examples/speedupmodels
//
// The same selection is available as `mwct loadtest -speedup ...`.
package main

import (
	"fmt"
	"log"
	"strings"

	malleable "github.com/malleable-sched/malleable"
)

func main() {
	const (
		processors = 4
		tasks      = 3000
		rate       = 5
		seed       = 2026
	)
	base := malleable.OnlineWorkload{
		Class:   "uniform",
		P:       processors,
		Process: "poisson",
		Rate:    rate,
		Tenants: []malleable.TenantSpec{
			{Name: "gold", Weight: 4, Share: 0.2},
			{Name: "bronze", Weight: 1, Share: 0.8},
		},
	}
	// The plain stream carries no per-task curves: Task.Curve is a
	// model-interpreted parameter (power-law exponent OR Amdahl serial
	// fraction), so a curve drawn for one model would silently reparameterize
	// another. Only the dedicated per-task-curve row uses the curved stream.
	plain, err := malleable.GenerateArrivals(base, tasks, seed)
	if err != nil {
		log.Fatal(err)
	}
	curvedSpec := base
	curvedSpec.CurveMin, curvedSpec.CurveMax = 0.6, 0.95 // power-law exponents
	curved, err := malleable.GenerateArrivals(curvedSpec, tasks, seed)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := malleable.OnlinePolicyByName("wdeq")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("speedup models: %d tasks, Poisson rate %g, P=%d, policy WDEQ\n\n", tasks, float64(rate), processors)
	fmt.Printf("%-32s %14s %12s %12s %12s\n", "model", "Σw·flow", "mean flow", "makespan", "events")
	rows := []struct {
		spec     string
		arrivals []malleable.Arrival
	}{
		{"linear", plain},
		{"powerlaw:0.75", plain},
		{"powerlaw:0.75 (per-task α)", curved}, // per-task Curve overrides the exponent
		{"amdahl:0.1", plain},
		{"platform:4@0,2@100,4@200,2@300,4@400", plain}, // half the fleet gone on a square wave
	}
	for _, row := range rows {
		spec, _, _ := strings.Cut(row.spec, " ")
		model, err := malleable.ParseSpeedupModel(spec)
		if err != nil {
			log.Fatal(err)
		}
		load, err := malleable.Run(malleable.RunSpec{
			P: processors, Policy: policy, Arrivals: row.arrivals, Model: model,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := load.Shards[0].Result
		fmt.Printf("%-32s %14.6g %12.4g %12.4g %12d\n",
			row.spec, res.WeightedFlow, res.MeanFlow(), res.Makespan, res.Events)
	}
	fmt.Println("\nThe linear row is the paper's model; the concave rows pay a parallelization")
	fmt.Println("overhead on every multi-processor allocation (the per-task-α row draws a")
	fmt.Println("different exponent for every task), and the platform row shows the same")
	fmt.Println("workload riding out capacity outages — all on the identical event kernel.")
}
