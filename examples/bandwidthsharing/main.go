// Bandwidth sharing: the motivating scenario of Figure 1 of the paper.
//
// A server with limited outgoing bandwidth must send application codes to a
// set of workers; worker i has incoming bandwidth δ_i, needs V_i bytes of
// code, and once it has the code it processes tasks at rate w_i until the
// horizon T. Maximizing the number of tasks processed by T is equivalent to
// minimizing Σ w_i·C_i, so the code-distribution problem is exactly a
// malleable-task scheduling problem where the "processors" are units of
// server bandwidth.
//
// Run with:
//
//	go run ./examples/bandwidthsharing
package main

import (
	"fmt"
	"log"

	malleable "github.com/malleable-sched/malleable"
)

// worker describes one worker of the scenario.
type worker struct {
	name      string
	codeSize  float64 // V_i
	bandwidth float64 // δ_i
	rate      float64 // w_i, tasks per time unit once the code is local
}

func main() {
	const serverBandwidth = 3.0 // the paper's P
	const horizon = 6.0         // the paper's T

	workers := []worker{
		{"edge-paris", 2.0, 1.0, 1.2},
		{"edge-tokyo", 1.5, 2.0, 0.8},
		{"edge-lima", 3.0, 1.5, 0.5},
		{"edge-oslo", 1.0, 0.8, 1.0},
		{"edge-cairo", 2.5, 2.0, 0.6},
	}

	// Build the equivalent malleable-task instance: weight = processing
	// rate, volume = code size, degree bound = worker bandwidth.
	tasks := make([]malleable.Task, len(workers))
	for i, w := range workers {
		tasks[i] = malleable.Task{Name: w.name, Weight: w.rate, Volume: w.codeSize, Delta: w.bandwidth}
	}
	inst, err := malleable.NewInstance(serverBandwidth, tasks)
	if err != nil {
		log.Fatal(err)
	}

	throughput := func(completions []float64) float64 {
		total := 0.0
		for i, w := range workers {
			if slack := horizon - completions[i]; slack > 0 {
				total += w.rate * slack
			}
		}
		return total
	}

	strategies := map[string]*malleable.Schedule{}

	// Naive fair strategy: every worker downloads at the same stretched rate
	// and finishes at the same time (the makespan-optimal schedule).
	fair, err := malleable.CmaxOptimal(inst)
	if err != nil {
		log.Fatal(err)
	}
	strategies["fair stretch (everyone finishes together)"] = fair

	// Non-clairvoyant bandwidth sharing: WDEQ splits the server bandwidth in
	// proportion to the processing rates, capped by each worker's bandwidth.
	wdeq, err := malleable.WDEQ(inst)
	if err != nil {
		log.Fatal(err)
	}
	strategies["WDEQ (rate-proportional sharing)"] = wdeq

	// Clairvoyant: the best greedy schedule minimizes Σ rate·C and therefore
	// maximizes the tasks processed by the horizon.
	best, err := malleable.BestGreedy(inst, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	strategies["best greedy (min Σ rate·C)"] = best.Schedule

	fmt.Printf("server bandwidth %.1f, horizon T = %.1f, %d workers\n\n", serverBandwidth, horizon, len(workers))
	fmt.Printf("%-45s %16s %14s\n", "distribution strategy", "tasks by T", "Σ rate·C")
	for name, s := range strategies {
		fmt.Printf("%-45s %16.3f %14.3f\n", name, throughput(s.CompletionTimes()), s.WeightedCompletionTime())
	}

	fmt.Println("\ncode arrival times (best greedy):")
	for i, w := range workers {
		fmt.Printf("  %-12s receives its %.1f units of code at t = %.3f\n",
			w.name, w.codeSize, best.Schedule.CompletionTime(i))
	}

	fmt.Println("\nThe strategy with the smallest Σ rate·C always processes the most tasks")
	fmt.Println("by the horizon: maximizing Σ rate·(T − C) is the same objective.")
}
