// Normal form: rebuild a schedule from nothing but its completion times.
//
// Theorem 8 of the paper states that the water-filling algorithm, given only
// the completion times of any valid schedule, reconstructs a valid schedule
// with exactly those completion times — the "normal form". The normal form
// is economical: the number of allocation changes is at most n (Theorem 9)
// and its per-processor version needs few preemptions (Theorem 10).
//
// The example produces a deliberately wasteful valid schedule, extracts its
// completion times, rebuilds the normal form, and compares the two.
//
// Run with:
//
//	go run ./examples/normalform
package main

import (
	"fmt"
	"log"
	"os"

	malleable "github.com/malleable-sched/malleable"
)

func main() {
	inst, err := malleable.NewInstance(3, []malleable.Task{
		{Name: "A", Weight: 1, Volume: 3, Delta: 2, Due: 2},
		{Name: "B", Weight: 2, Volume: 2, Delta: 1, Due: 3},
		{Name: "C", Weight: 1, Volume: 4, Delta: 3, Due: 4},
		{Name: "D", Weight: 3, Volume: 1, Delta: 2, Due: 2},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A valid but arbitrary schedule: greedy with a deliberately poor order.
	messy, err := malleable.Greedy(inst, []int{2, 0, 3, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== original schedule (greedy with an arbitrary order) ==")
	if err := messy.RenderGantt(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Keep only the completion times and rebuild the normal form.
	completions := messy.CompletionTimes()
	fmt.Printf("\ncompletion times kept: %v\n", rounded(completions))
	if !malleable.Feasible(inst, completions) {
		log.Fatal("completion times of a valid schedule must be feasible")
	}
	normal, err := malleable.WaterFill(inst, completions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== water-filling normal form (same completion times) ==")
	if err := normal.RenderGantt(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nobjective unchanged: %.6g vs %.6g\n",
		messy.WeightedCompletionTime(), normal.WeightedCompletionTime())

	// Convert both to per-processor schedules and compare preemptions.
	for name, s := range map[string]*malleable.Schedule{"original": messy, "normal form": normal} {
		pa, err := malleable.ToProcessorSchedule(s)
		if err != nil {
			log.Fatal(err)
		}
		_, preemptions := pa.PreemptionCount()
		_, changes := pa.AllocationChangeCount()
		fmt.Printf("%-12s: %2d preemptions, %2d integer allocation changes\n", name, preemptions, changes)
	}

	// The same machinery minimizes the maximum lateness (the due dates above).
	s, lmax, err := malleable.MinimizeMaxLateness(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminimum achievable maximum lateness: %.4g\n", lmax)
	fmt.Print(s.FormatCompletionTable())
}

func rounded(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*1000+0.5)) / 1000
	}
	return out
}
