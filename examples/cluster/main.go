// Cluster routing: what task placement costs when shard count is a
// scheduling variable.
//
// The example dispatches ONE Zipf-skewed multi-tenant arrival stream across
// a four-shard fleet under each bundled router and compares the tail flow
// time and the per-shard imbalance:
//
//   - round-robin spreads counts perfectly but is blind to backlog, so
//     unlucky volume draws pile onto one queue near saturation;
//   - hash-tenant pins tenants to shards (affinity), which a Zipf-skewed
//     mix punishes — the head tenant's whole load lands on one shard;
//   - least-backlog reads every shard's live backlog at dispatch time (the
//     coordinator interleaves shard events in one virtual timeline, so the
//     snapshots are exact) and always picks the shortest queue;
//   - po2 samples just two shards per dispatch with a seeded deterministic
//     RNG and takes the shorter queue — nearly least-backlog's tail at a
//     fraction of the information.
//
// Every run is byte-deterministic: same seed, same dispatch sequence, same
// report, at any GOMAXPROCS.
//
// Run with:
//
//	go run ./examples/cluster
//
// The same scenario at scale is available as
// `mwct loadtest -router po2 -tenant-skew 1.5`.
package main

import (
	"fmt"
	"log"

	malleable "github.com/malleable-sched/malleable"
)

func main() {
	const (
		shards   = 4
		perShard = 8 // processors per shard
		tasks    = 40000
		rate     = 57.6 // fleet-wide: ~90% offered load on the uniform class
		seed     = 7
	)
	workload := malleable.OnlineWorkload{
		Class:   "uniform",
		P:       perShard,
		Process: "poisson",
		Rate:    rate,
		Tenants: []malleable.TenantSpec{
			{Name: "t0", Weight: 4, Share: 1}, {Name: "t1", Weight: 2, Share: 1},
			{Name: "t2", Weight: 1, Share: 1}, {Name: "t3", Weight: 1, Share: 1},
			{Name: "t4", Weight: 1, Share: 1}, {Name: "t5", Weight: 1, Share: 1},
			{Name: "t6", Weight: 1, Share: 1}, {Name: "t7", Weight: 1, Share: 1},
		},
		TenantSkew: 1.5, // head tenant absorbs ~58% of the traffic
	}
	policy, err := malleable.OnlinePolicyByName("wdeq")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cluster: %d shards x p=%g, %d tasks, fleet rate %g, Zipf skew 1.5\n\n",
		shards, float64(perShard), tasks, float64(rate))
	fmt.Printf("%-14s %10s %10s %12s %14s\n", "router", "p50 flow", "p99 flow", "peak backlog", "completed min/max")
	for _, name := range malleable.RouterNames() {
		// A fresh stream per router: identical workload, different placement.
		stream, err := malleable.StreamArrivals(workload, tasks, seed)
		if err != nil {
			log.Fatal(err)
		}
		router, err := malleable.RouterByName(name, seed)
		if err != nil {
			log.Fatal(err)
		}
		// Workers > 1 advances the shards on a worker pool between routing
		// decisions; the report is byte-identical to a sequential run — the
		// knob only changes wall-clock time.
		res, err := malleable.Run(malleable.RunSpec{
			P:       perShard,
			Policy:  policy,
			Stream:  stream,
			Shards:  shards,
			Router:  router,
			Workers: shards,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.3f %10.3f %12d %8d/%d\n",
			name, res.Flow.P50, res.Flow.P99, res.PeakBacklog,
			res.MinShardCompleted, res.MaxShardCompleted)
	}
	fmt.Println("\nround-robin's tail comes from backlog-blind placement; hash-tenant's")
	fmt.Println("from affinity under skew. po2 buys almost all of least-backlog's tail")
	fmt.Println("with two sampled queues per dispatch instead of a full scan.")
}
