// Non-clairvoyant scheduling: how much does it cost not to know the task
// volumes in advance?
//
// The example draws random workloads, schedules them online with WDEQ (which
// never looks at the volumes) and offline with the best greedy schedule and
// the exact optimum, and reports the empirical approximation ratios. The
// paper's Theorem 4 guarantees that WDEQ never exceeds twice the optimum; in
// practice the gap is far smaller.
//
// Run with:
//
//	go run ./examples/nonclairvoyant
package main

import (
	"fmt"
	"log"
	"math/rand"

	malleable "github.com/malleable-sched/malleable"
)

func main() {
	const (
		processors = 3
		tasks      = 5
		samples    = 200
		seed       = 2024
	)
	rng := rand.New(rand.NewSource(seed))

	var worstWDEQ, sumWDEQ float64
	var worstGreedy, sumGreedy float64
	for s := 0; s < samples; s++ {
		inst := randomInstance(rng, tasks, processors)

		opt, err := malleable.Optimal(inst)
		if err != nil {
			log.Fatal(err)
		}
		wdeq, err := malleable.WDEQ(inst)
		if err != nil {
			log.Fatal(err)
		}
		best, err := malleable.BestGreedy(inst, rng, 0)
		if err != nil {
			log.Fatal(err)
		}

		rw := wdeq.WeightedCompletionTime() / opt.Objective
		rg := best.Objective / opt.Objective
		sumWDEQ += rw
		sumGreedy += rg
		if rw > worstWDEQ {
			worstWDEQ = rw
		}
		if rg > worstGreedy {
			worstGreedy = rg
		}
	}

	fmt.Printf("%d random instances, %d tasks on %d processors\n\n", samples, tasks, processors)
	fmt.Printf("%-38s %12s %12s\n", "scheduler", "mean ratio", "worst ratio")
	fmt.Printf("%-38s %12.4f %12.4f\n", "WDEQ (online, volumes unknown)", sumWDEQ/samples, worstWDEQ)
	fmt.Printf("%-38s %12.4f %12.4f\n", "best greedy (offline)", sumGreedy/samples, worstGreedy)
	fmt.Println("\nTheorem 4 guarantees the WDEQ worst ratio never exceeds 2;")
	fmt.Println("Conjecture 12 predicts the best greedy ratio is exactly 1.")

	// A single illustrated run.
	inst := randomInstance(rng, tasks, processors)
	wdeq, err := malleable.WDEQ(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOne concrete WDEQ run (volumes were hidden from the scheduler):")
	fmt.Print(wdeq.FormatCompletionTable())
}

// randomInstance draws the paper's Section V-A distribution: uniform weights,
// volumes and degree bounds.
func randomInstance(rng *rand.Rand, n int, p float64) *malleable.Instance {
	ts := make([]malleable.Task, n)
	for i := range ts {
		ts[i] = malleable.Task{
			Name:   fmt.Sprintf("job-%d", i+1),
			Weight: 0.05 + 0.95*rng.Float64(),
			Volume: 0.05 + 0.95*rng.Float64(),
			Delta:  0.05 + (p-0.05)*rng.Float64(),
		}
	}
	inst, err := malleable.NewInstance(p, ts)
	if err != nil {
		log.Fatal(err)
	}
	return inst
}
