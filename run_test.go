//lint:file-ignore SA1019 The equivalence tests here pin Run against the
// deprecated Run* wrappers bit for bit; they exist precisely to call both.

package malleable_test

import (
	"encoding/json"
	"fmt"
	"testing"

	malleable "github.com/malleable-sched/malleable"
)

// runWorkload is the shared multi-tenant load of the Run equivalence tests.
func runWorkload() malleable.OnlineWorkload {
	return malleable.OnlineWorkload{
		P:    8,
		Rate: 12,
		Tenants: []malleable.TenantSpec{
			{Name: "gold", Weight: 3, Share: 0.3},
			{Name: "bronze", Weight: 1, Share: 0.7},
		},
		TenantSkew: 1.2,
	}
}

func runArrivals(t *testing.T, n int, seed int64) []malleable.Arrival {
	t.Helper()
	arrivals, err := malleable.GenerateArrivals(runWorkload(), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return arrivals
}

func runStream(t *testing.T, n int, seed int64) malleable.ArrivalStream {
	t.Helper()
	stream, err := malleable.StreamArrivals(runWorkload(), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return stream
}

func runPolicy(t *testing.T) malleable.OnlinePolicy {
	t.Helper()
	policy, err := malleable.OnlinePolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	return policy
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// metricRows retains every observed row for order-sensitive comparisons.
type metricRows struct {
	rows []malleable.TaskMetrics
}

func (c *metricRows) Observe(m malleable.TaskMetrics) { c.rows = append(c.rows, m) }

// Run with Arrivals must reproduce RunOnlineWithOptions exactly: same
// retained task table, same metrics — the legacy result is the new result's
// first (only) shard.
func TestRunMatchesRunOnline(t *testing.T) {
	const n, seed = 600, 11
	policy := runPolicy(t)
	model, err := malleable.ParseSpeedupModel("powerlaw:0.8")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		model malleable.SpeedupModel
	}{
		{"linear", nil},
		{"powerlaw", model},
	} {
		t.Run(tc.name, func(t *testing.T) {
			old, err := malleable.RunOnlineWithOptions(8, policy, runArrivals(t, n, seed), malleable.OnlineOptions{Model: tc.model})
			if err != nil {
				t.Fatal(err)
			}
			got, err := malleable.Run(malleable.RunSpec{
				P: 8, Policy: policy, Arrivals: runArrivals(t, n, seed), Model: tc.model,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Shards) != 1 || got.Shards[0].Result == nil {
				t.Fatalf("single-engine Run reported %d shards", len(got.Shards))
			}
			if want, have := mustJSON(t, old), mustJSON(t, got.Shards[0].Result); want != have {
				t.Errorf("Run's shard result diverged from RunOnlineWithOptions:\n%s\nvs\n%s", have, want)
			}
			if got.TotalTasks != old.Completed || got.Makespan != old.Makespan {
				t.Errorf("merged metrics diverged: %d/%g vs %d/%g", got.TotalTasks, got.Makespan, old.Completed, old.Makespan)
			}
			if got.FlowApprox {
				t.Error("Arrivals run reported sketch quantiles; retention promises exact ones")
			}
		})
	}
}

// Run with a Stream must reproduce RunOnlineStreamWithOptions: same
// aggregate result, and the caller's sink sees the identical row sequence.
func TestRunMatchesRunOnlineStream(t *testing.T) {
	const n, seed = 2000, 23
	policy := runPolicy(t)

	oldRows := &metricRows{}
	old, err := malleable.RunOnlineStreamWithOptions(8, policy, runStream(t, n, seed), oldRows, malleable.OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	newRows := &metricRows{}
	got, err := malleable.Run(malleable.RunSpec{
		P: 8, Policy: policy, Stream: runStream(t, n, seed), Sink: newRows,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want, have := mustJSON(t, old), mustJSON(t, got.Shards[0].Result); want != have {
		t.Errorf("Run's shard result diverged from RunOnlineStreamWithOptions:\n%s\nvs\n%s", have, want)
	}
	if !got.FlowApprox {
		t.Error("stream run must flag sketch-backed quantiles")
	}
	if len(oldRows.rows) != len(newRows.rows) {
		t.Fatalf("sink rows: %d vs %d", len(newRows.rows), len(oldRows.rows))
	}
	for i := range oldRows.rows {
		if oldRows.rows[i] != newRows.rows[i] {
			t.Fatalf("sink row %d: %+v vs %+v", i, newRows.rows[i], oldRows.rows[i])
		}
	}
}

// Run with a Source must reproduce RunOnlineShardsStreamWithOptions — the
// independent-shards topology, merged report and all.
func TestRunMatchesRunOnlineShardsStream(t *testing.T) {
	const shards, baseSeed = 4, 77
	policy := runPolicy(t)
	source := func(shard int, seed int64) (malleable.ArrivalStream, error) {
		return malleable.StreamArrivals(runWorkload(), 500, seed)
	}
	old, err := malleable.RunOnlineShardsStreamWithOptions(8, policy, source, shards, baseSeed, malleable.OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := malleable.Run(malleable.RunSpec{
		P: 8, Policy: policy, Source: source, Shards: shards, Seed: baseSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want, have := mustJSON(t, old), mustJSON(t, got); want != have {
		t.Errorf("Run diverged from RunOnlineShardsStreamWithOptions:\n%s\nvs\n%s", have, want)
	}
}

// Run with a Router must reproduce RunCluster, and Workers must not change a
// byte of the output — the facade-level face of the parallel coordinator's
// determinism contract.
func TestRunMatchesRunClusterAndWorkersAreByteInvariant(t *testing.T) {
	const n, shards, seed = 2500, 4, 5
	policy := runPolicy(t)
	newRouter := func() malleable.ClusterRouter {
		router, err := malleable.RouterByName("least-backlog", seed)
		if err != nil {
			t.Fatal(err)
		}
		return router
	}
	oldRows := &metricRows{}
	old, err := malleable.RunCluster(malleable.ClusterConfig{
		Shards: shards, P: 8, Policy: policy, Router: newRouter(), Sink: oldRows,
	}, runStream(t, n, seed))
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, old)
	for _, tc := range []struct {
		workers   int
		speculate bool
	}{
		{0, false}, {1, false}, {4, false},
		// The optimistic coordinator honors the same contract: rollbacks are
		// invisible in every output byte.
		{4, true}, {8, true},
	} {
		rows := &metricRows{}
		got, err := malleable.Run(malleable.RunSpec{
			P: 8, Policy: policy, Stream: runStream(t, n, seed),
			Shards: shards, Router: newRouter(), Workers: tc.workers,
			Speculate: tc.speculate, Sink: rows,
		})
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("Workers=%d Speculate=%v", tc.workers, tc.speculate)
		if have := mustJSON(t, got); have != want {
			t.Errorf("%s: Run diverged from RunCluster:\n%s\nvs\n%s", label, have, want)
		}
		if len(rows.rows) != len(oldRows.rows) {
			t.Fatalf("%s: sink rows %d vs %d", label, len(rows.rows), len(oldRows.rows))
		}
		for i := range oldRows.rows {
			if rows.rows[i] != oldRows.rows[i] {
				t.Fatalf("%s: sink row %d: %+v vs %+v", label, i, rows.rows[i], oldRows.rows[i])
			}
		}
	}
}

// The sink/probe parity the cluster config owes the single-engine paths: a
// one-shard cluster run with an engine probe and a shared sink must observe
// exactly what the plain single-engine stream run observes — same rows, same
// probe trace. This is the audit for the historical gap where ClusterConfig
// options and OnlineOptions diverged.
func TestRunClusterSinkProbeParityWithSingleEngine(t *testing.T) {
	const n, seed = 1200, 43
	policy := runPolicy(t)
	type snap struct {
		Now       float64
		Completed int
		Backlog   int
		Done      bool
	}
	run := func(router malleable.ClusterRouter) ([]snap, string, *metricRows) {
		var snaps []snap
		rows := &metricRows{}
		probe := malleable.RunProbeFunc(func(s malleable.RunSnapshot) {
			snaps = append(snaps, snap{s.Now, s.Completed, s.Backlog, s.Done})
		})
		res, err := malleable.Run(malleable.RunSpec{
			P: 8, Policy: policy, Stream: runStream(t, n, seed),
			Router: router, Sink: rows,
			Probe: probe, ProbeEveryEvents: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Shard bookkeeping legitimately differs between the two paths (the
		// cluster records dispatch counts); the engine-visible outcome — the
		// merged aggregate metrics — must not.
		type visible struct {
			TotalTasks   int
			Events       int
			Makespan     float64
			WeightedFlow float64
			Flow         any
			PerTenant    any
		}
		return snaps, mustJSON(t, visible{res.TotalTasks, res.Events, res.Makespan, res.WeightedFlow, res.Flow, res.PerTenant}), rows
	}
	router, err := malleable.RouterByName("round-robin", 0)
	if err != nil {
		t.Fatal(err)
	}
	engineSnaps, engineBlob, engineRows := run(nil)
	clusterSnaps, clusterBlob, clusterRows := run(router)
	if len(engineSnaps) == 0 {
		t.Fatal("engine probe never fired")
	}
	if engineBlob != clusterBlob {
		t.Errorf("one-shard cluster metrics diverge from the single-engine run:\n%s\nvs\n%s", clusterBlob, engineBlob)
	}
	if len(engineSnaps) != len(clusterSnaps) {
		t.Fatalf("probe fired %d times on the cluster path, %d on the engine path", len(clusterSnaps), len(engineSnaps))
	}
	for i := range engineSnaps {
		if engineSnaps[i] != clusterSnaps[i] {
			t.Fatalf("probe observation %d: %+v cluster vs %+v engine", i, clusterSnaps[i], engineSnaps[i])
		}
	}
	if len(engineRows.rows) != len(clusterRows.rows) {
		t.Fatalf("sink rows: %d cluster vs %d engine", len(clusterRows.rows), len(engineRows.rows))
	}
	for i := range engineRows.rows {
		if engineRows.rows[i] != clusterRows.rows[i] {
			t.Fatalf("sink row %d: %+v cluster vs %+v engine", i, clusterRows.rows[i], engineRows.rows[i])
		}
	}
}

// An Arrivals run with a Sink replays the retained rows in completion order;
// the row set must match the stream path's exactly (the order may differ only
// within completion-time ties).
func TestRunArrivalsSinkReplaysCompletions(t *testing.T) {
	const n, seed = 800, 3
	policy := runPolicy(t)
	rows := &metricRows{}
	res, err := malleable.Run(malleable.RunSpec{
		P: 8, Policy: policy, Arrivals: runArrivals(t, n, seed), Sink: rows,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.rows) != res.TotalTasks {
		t.Fatalf("sink saw %d rows for %d completed tasks", len(rows.rows), res.TotalTasks)
	}
	for i := 1; i < len(rows.rows); i++ {
		if rows.rows[i].Completion < rows.rows[i-1].Completion {
			t.Fatalf("row %d completes at %g after a row at %g", i, rows.rows[i].Completion, rows.rows[i-1].Completion)
		}
	}
}

// The spec validation: every ambiguous or unsupported combination is a
// descriptive error, not a silent pick.
func TestRunSpecValidation(t *testing.T) {
	policy := runPolicy(t)
	router, err := malleable.RouterByName("round-robin", 0)
	if err != nil {
		t.Fatal(err)
	}
	source := func(shard int, seed int64) (malleable.ArrivalStream, error) {
		return malleable.StreamArrivals(runWorkload(), 10, seed)
	}
	cases := []struct {
		name string
		spec malleable.RunSpec
	}{
		{"no source", malleable.RunSpec{P: 8, Policy: policy}},
		{"two sources", malleable.RunSpec{P: 8, Policy: policy, Arrivals: runArrivals(t, 4, 1), Stream: runStream(t, 4, 1)}},
		{"workers without router", malleable.RunSpec{P: 8, Policy: policy, Arrivals: runArrivals(t, 4, 1), Workers: 4}},
		{"fleet probe without router", malleable.RunSpec{P: 8, Policy: policy, Arrivals: runArrivals(t, 4, 1), FleetProbe: fleetProbeFunc(func(float64, []malleable.ClusterShardState) {})}},
		{"shards without topology", malleable.RunSpec{P: 8, Policy: policy, Arrivals: runArrivals(t, 4, 1), Shards: 4}},
		{"router with source", malleable.RunSpec{P: 8, Policy: policy, Source: source, Router: router}},
		{"source with sink", malleable.RunSpec{P: 8, Policy: policy, Source: source, Shards: 2, Sink: &metricRows{}}},
		{"negative shards", malleable.RunSpec{P: 8, Policy: policy, Arrivals: runArrivals(t, 4, 1), Shards: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := malleable.Run(tc.spec); err == nil {
				t.Errorf("spec accepted: %+v", tc.spec)
			}
		})
	}
}

// fleetProbeFunc adapts a function to the ClusterProbe interface.
type fleetProbeFunc func(now float64, shards []malleable.ClusterShardState)

func (f fleetProbeFunc) ObserveFleet(now float64, shards []malleable.ClusterShardState) {
	f(now, shards)
}
