package malleable_test

import (
	"math/rand"
	"testing"

	malleable "github.com/malleable-sched/malleable"
	"github.com/malleable-sched/malleable/internal/baselines"
	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/exact"
	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/workload"
)

// TestIntegrationCrossValidation runs every scheduling path of the library on
// a batch of random instances and checks the relationships the paper
// establishes between them:
//
//	lower bounds <= optimum <= best greedy = optimum (Conjecture 12)
//	optimum <= WDEQ <= 2 * optimum (Theorem 4)
//	completion times of any produced schedule are WF-feasible (Theorem 8)
//	normal forms preserve objectives and respect the change bound (Theorem 9)
//	integral conversions are valid and preserve objectives (Theorem 3)
func TestIntegrationCrossValidation(t *testing.T) {
	for _, class := range []workload.Class{workload.Uniform, workload.ConstantWeight, workload.LargeDelta} {
		gen, err := workload.NewGenerator(class, 4, 3, 99)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			inst := gen.Next()

			opt, err := malleable.Optimal(inst)
			if err != nil {
				t.Fatalf("%v/%d: optimal: %v", class, trial, err)
			}
			if lb := malleable.LowerBound(inst); opt.Objective < lb-1e-6 {
				t.Fatalf("%v/%d: optimum %g below the lower bound %g", class, trial, opt.Objective, lb)
			}

			best, err := malleable.BestGreedy(inst, rand.New(rand.NewSource(int64(trial))), 0)
			if err != nil {
				t.Fatal(err)
			}
			if !numeric.ApproxEqualTol(best.Objective, opt.Objective, 1e-5) {
				t.Fatalf("%v/%d: best greedy %g differs from the optimum %g", class, trial, best.Objective, opt.Objective)
			}

			wdeq, err := malleable.WDEQ(inst)
			if err != nil {
				t.Fatal(err)
			}
			if wdeq.WeightedCompletionTime() > 2*opt.Objective+1e-6 {
				t.Fatalf("%v/%d: WDEQ breaks the factor-2 guarantee", class, trial)
			}

			for name, s := range map[string]*malleable.Schedule{
				"wdeq": wdeq, "best-greedy": best.Schedule, "optimal": opt.Schedule,
			} {
				if err := s.Validate(); err != nil {
					t.Fatalf("%v/%d: %s schedule invalid: %v", class, trial, name, err)
				}
				if !malleable.Feasible(inst, s.CompletionTimes()) {
					t.Fatalf("%v/%d: %s completion times not WF-feasible", class, trial, name)
				}
				normal, err := malleable.Normalize(s)
				if err != nil {
					t.Fatalf("%v/%d: normalize %s: %v", class, trial, name, err)
				}
				if !numeric.ApproxEqualTol(normal.WeightedCompletionTime(), s.WeightedCompletionTime(), 1e-6) {
					t.Fatalf("%v/%d: normalization changed the %s objective", class, trial, name)
				}
				if _, changes := core.Lemma5ChangeCount(normal); changes > inst.N() {
					t.Fatalf("%v/%d: normal form of %s has %d changes > n", class, trial, name, changes)
				}
				pa, err := malleable.ToProcessorSchedule(normal)
				if err != nil {
					t.Fatalf("%v/%d: integral conversion of %s: %v", class, trial, name, err)
				}
				if err := pa.Validate(); err != nil {
					t.Fatalf("%v/%d: integral %s schedule invalid: %v", class, trial, name, err)
				}
				if !numeric.ApproxEqualTol(pa.WeightedCompletionTime(), s.WeightedCompletionTime(), 1e-6) {
					t.Fatalf("%v/%d: integral conversion changed the %s objective", class, trial, name)
				}
			}
		}
	}
}

// TestIntegrationBaselinesAgainstOptimal checks that the baselines stay on
// the right side of the exact optimum and of their own guarantees on the
// instance classes where they apply.
func TestIntegrationBaselinesAgainstOptimal(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Uniform, 4, 2, 123)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		inst := gen.Next().Clone()
		for i := range inst.Tasks {
			inst.Tasks[i].Delta = 1 // the δ=1 class of Table I
		}
		opt, err := exact.Optimal(inst, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		lrf, err := baselines.LRF(inst)
		if err != nil {
			t.Fatal(err)
		}
		if lrf.WeightedCompletionTime() < opt.Objective-1e-6 {
			t.Fatalf("trial %d: LRF beats the optimum", trial)
		}
		if lrf.WeightedCompletionTime() > 1.2072*opt.Objective+1e-6 {
			t.Fatalf("trial %d: LRF exceeds the Kawaguchi–Kyan bound: %g vs %g",
				trial, lrf.WeightedCompletionTime(), opt.Objective)
		}
		// SPT optimizes the unweighted objective; only validity is asserted.
		spt, err := baselines.SPT(inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := spt.Validate(); err != nil {
			t.Fatalf("trial %d: SPT invalid: %v", trial, err)
		}
	}
}
