package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/malleable-sched/malleable/internal/perf"
)

// runBench implements `mwct bench`: execute the pinned performance scenarios
// (or a named subset), write the JSON report, and — when a baseline is given
// — fail with a non-zero exit if CompareRuns flags a regression beyond the
// threshold. CI runs this on every push with the checked-in
// BENCH_baseline.json.
func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	jsonPath := fs.String("json", "-", "write the report JSON to this file (- = stdout)")
	budget := fs.Duration("budget", 200*time.Millisecond, "wall budget per scenario")
	scenarios := fs.String("scenarios", "", "comma-separated scenario names (empty = all: "+strings.Join(perf.ScenarioNames(), ",")+")")
	baseline := fs.String("baseline", "", "baseline report JSON to compare against (empty = no gate)")
	maxRegress := fs.Float64("max-regress", 0.25, "regression threshold as a fraction (0.25 = 25%)")
	speedupSpec := fs.String("speedup", "", "override the speedup model of every selected scenario (ad-hoc exploration; do not combine with -baseline)")
	workers := fs.Int("workers", -1, "override the coordinator worker count of every selected cluster scenario (ad-hoc scaling sweeps; -1 keeps the pinned counts; do not combine with -baseline)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile covering the measured runs to this file")
	memprofile := fs.String("memprofile", "", "write a pprof allocation profile (allocs, cumulative since process start) taken after the measured runs to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var names []string
	if strings.TrimSpace(*scenarios) != "" {
		for _, name := range strings.Split(*scenarios, ",") {
			names = append(names, strings.TrimSpace(name))
		}
	}
	if *speedupSpec != "" && *baseline != "" {
		return fmt.Errorf("bench: -speedup overrides the measured scenarios, which makes a -baseline comparison meaningless; drop one of the two")
	}
	if *workers >= 0 && *baseline != "" {
		return fmt.Errorf("bench: -workers overrides the measured scenarios, which makes a -baseline comparison meaningless; drop one of the two")
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("bench: start cpu profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer func() {
			// A GC before the write settles the heap samples so the profile
			// reflects the runs, not whatever happened to be in flight.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "bench: write mem profile: %v\n", err)
			}
			f.Close()
		}()
	}
	return benchReport(os.Stderr, *jsonPath, names, *budget, *baseline, *maxRegress, perf.Overrides{Speedup: *speedupSpec, Workers: *workers})
}

// benchReport is the testable core of `mwct bench`. Progress and comparison
// verdicts go to log (stderr in production); only the report JSON goes to the
// -json destination, so `mwct bench -json -` pipes cleanly.
func benchReport(log io.Writer, jsonPath string, names []string, budget time.Duration, baselinePath string, maxRegress float64, overrides perf.Overrides) error {
	report, err := perf.RunAllWithOverrides(names, budget, overrides)
	if err != nil {
		return err
	}
	for _, res := range report.Results {
		fmt.Fprintf(log, "bench %-20s %10.0f ns/op %12.1f allocs/op %12.0f tasks/sec  flow p50=%.4g p99=%.4g (%d runs)\n",
			res.Scenario, res.NsPerOp, res.AllocsPerOp, res.TasksPerSec, res.FlowP50, res.FlowP99, res.Runs)
	}
	if err := perf.WriteFile(jsonPath, report); err != nil {
		return err
	}
	if baselinePath == "" {
		return nil
	}
	base, err := perf.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	regressions, err := perf.CompareRuns(base, report, maxRegress)
	if err != nil {
		return err
	}
	if len(regressions) == 0 {
		fmt.Fprintf(log, "bench: no regression beyond %.0f%% against %s\n", 100*maxRegress, baselinePath)
		return nil
	}
	for _, reg := range regressions {
		fmt.Fprintf(log, "bench: REGRESSION %s\n", reg)
	}
	return fmt.Errorf("bench: %d regression(s) beyond %.0f%% against %s", len(regressions), 100*maxRegress, baselinePath)
}
