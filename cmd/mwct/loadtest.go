package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"github.com/malleable-sched/malleable/internal/cluster"
	"github.com/malleable-sched/malleable/internal/engine"
	"github.com/malleable-sched/malleable/internal/obs"
	"github.com/malleable-sched/malleable/internal/speedup"
	"github.com/malleable-sched/malleable/internal/workload"
)

// loadtestSpec is the full parameterization of a sharded online load test.
// It is shared by `mwct loadtest` and the POST /v1/loadtest endpoint of
// `mwct serve`.
type loadtestSpec struct {
	// Policy is one of engine.PolicyNames.
	Policy string `json:"policy"`
	// Class is a workload instance-class name (see `mwct gen -class`).
	Class string `json:"class"`
	// Process is the arrival process: poisson or bursty.
	Process string `json:"process"`
	// Rate is the per-shard arrival rate (tasks per unit time).
	Rate float64 `json:"rate"`
	// Burst is the mean burst size of the bursty process.
	Burst float64 `json:"burst,omitempty"`
	// Tasks is the total number of tasks across all shards.
	Tasks int `json:"tasks"`
	// Shards is the number of concurrent engine instances.
	Shards int `json:"shards"`
	// P is the per-shard platform capacity.
	P float64 `json:"p"`
	// Seed is the base seed; per-shard seeds are derived from it (and it
	// seeds the router's RNG in cluster mode).
	Seed int64 `json:"seed"`
	// Tenants is a name:weight:share list, e.g. "gold:4:0.2,bronze:1:0.8".
	Tenants string `json:"tenants,omitempty"`
	// TenantSkew is a Zipf exponent reshaping the tenant shares: tenant i's
	// effective share is divided by (i+1)^skew, turning equal shares into a
	// skewed multi-tenant mix. 0 leaves the shares as configured.
	TenantSkew float64 `json:"tenantSkew,omitempty"`
	// Router switches the test into cluster mode: instead of every shard
	// drawing its own independent arrival stream, ONE global stream (Rate is
	// then the fleet-wide arrival rate) is dispatched across the shards by
	// the named router (round-robin, hash-tenant, least-backlog, po2) in a
	// single deterministic virtual timeline. Empty keeps the independent
	// per-shard streams. Cluster mode always runs the streaming path.
	Router string `json:"router,omitempty"`
	// Workers >= 2 advances the cluster's shards concurrently on that many
	// pool workers between routing decisions. The report is byte-identical
	// at any worker count — the knob trades goroutines for wall-clock time
	// only. Requires Router; 0 or 1 keeps the sequential coordinator.
	Workers int `json:"workers,omitempty"`
	// Speculate runs the parallel coordinator optimistically: shards advance
	// past upcoming dispatch times on engine checkpoints and a mispredicted
	// shard is rolled back instead of the whole fleet barriering per
	// dispatch. The report stays byte-identical; the misprediction cost
	// (rollbacks, discarded events) lands in the stderr perf footer.
	// Requires Router and Workers >= 2 to have any effect.
	Speculate bool `json:"speculate,omitempty"`
	// Stale runs the cluster coordinator in stale-batched mode: the router
	// reads fleet views published once per dispatch window instead of exact
	// per-dispatch snapshots, removing the per-dispatch barrier entirely.
	// The report is deterministic and byte-identical at any Workers count,
	// but it is a different (window-stale) schedule than exact routing.
	// Requires Router with the window-stale capability (least-backlog, po2);
	// the view cadence lands in the stderr perf footer.
	Stale bool `json:"stale,omitempty"`
	// Prefetch overlaps arrival generation (or trace decode) with cluster
	// execution on a producer goroutine. Pure pipelining — the report is
	// byte-identical with and without it. Requires Router.
	Prefetch bool `json:"prefetch,omitempty"`
	// Speedup is the speedup-model spec (linear, powerlaw[:alpha],
	// amdahl[:sigma], platform:cap@t,...); empty means the paper's linear
	// model.
	Speedup string `json:"speedup,omitempty"`
	// CurveMin and CurveMax draw per-task speedup-curve parameters; both zero
	// disables them.
	CurveMin float64 `json:"curveMin,omitempty"`
	CurveMax float64 `json:"curveMax,omitempty"`
	// Stream runs the test through the streaming path: arrivals are pulled
	// lazily from the generator and per-task metrics are summarized in
	// constant-memory sinks, so memory stays O(alive tasks) regardless of
	// Tasks — this is what makes `-n 10000000` feasible. Flow quantiles come
	// from the mergeable sketch instead of retained samples.
	Stream bool `json:"stream,omitempty"`
}

// parse resolves and validates every named component of the spec.
func (spec loadtestSpec) parse() (engine.Policy, workload.ArrivalConfig, []workload.TenantSpec, engine.Options, error) {
	fail := func(err error) (engine.Policy, workload.ArrivalConfig, []workload.TenantSpec, engine.Options, error) {
		return nil, workload.ArrivalConfig{}, nil, engine.Options{}, err
	}
	policy, err := engine.PolicyByName(spec.Policy)
	if err != nil {
		return fail(err)
	}
	class, err := workload.ParseClass(spec.Class)
	if err != nil {
		return fail(err)
	}
	process, err := workload.ParseProcess(spec.Process)
	if err != nil {
		return fail(err)
	}
	tenants, err := workload.ParseTenants(spec.Tenants)
	if err != nil {
		return fail(err)
	}
	model, err := speedup.ParseModel(spec.Speedup)
	if err != nil {
		return fail(err)
	}
	if err := speedup.ValidateCurves(model, spec.CurveMin, spec.CurveMax); err != nil {
		return fail(err)
	}
	cfg := workload.ArrivalConfig{
		Class:      class,
		P:          spec.P,
		Process:    process,
		Rate:       spec.Rate,
		MeanBurst:  spec.Burst,
		Tenants:    tenants,
		CurveMin:   spec.CurveMin,
		CurveMax:   spec.CurveMax,
		TenantSkew: spec.TenantSkew,
	}
	if err := cfg.Validate(); err != nil {
		return fail(err)
	}
	return policy, cfg, tenants, engine.Options{Model: model}, nil
}

// loadtestObservers carries the optional observability attachments of a
// load test — the hooks `-timeline` uses to watch the run without touching
// the deterministic report. All fields are optional; the zero value
// observes nothing.
type loadtestObservers struct {
	// probe observes the single-shard streaming run at its rest state,
	// thinned to probeInterval on the virtual-time grid (0 = every event).
	probe         engine.Probe
	probeInterval float64
	// sink additionally observes every completed task (flow statistics).
	sink engine.MetricSink
	// fleetProbe observes cluster-mode dispatches.
	fleetProbe cluster.Probe
}

// observed reports whether any attachment is set.
func (o loadtestObservers) observed() bool {
	return o.probe != nil || o.sink != nil || o.fleetProbe != nil
}

// runLoadtestSpec generates the per-shard arrival streams, runs the sharded
// engine and returns the merged result plus the parsed tenant mix (so the
// report prints the same tenants the workload actually ran with).
func runLoadtestSpec(spec loadtestSpec) (*engine.LoadResult, []workload.TenantSpec, error) {
	return runLoadtestSpecWrapped(spec, nil, loadtestObservers{})
}

// runLoadtestSpecWrapped is runLoadtestSpec with an optional per-shard
// stream wrapper (streaming mode only) — the hook `-trace-out` uses to tee
// the generated arrivals into a trace file — plus optional observers.
// Observers require a single observable timeline: cluster mode (any shard
// count; the coordinator is sequential) or a one-shard streaming run.
func runLoadtestSpecWrapped(spec loadtestSpec, wrap func(shard int, s engine.ArrivalStream) engine.ArrivalStream, obsv loadtestObservers) (*engine.LoadResult, []workload.TenantSpec, error) {
	if spec.Tasks <= 0 {
		return nil, nil, fmt.Errorf("loadtest: need a positive task count, got %d", spec.Tasks)
	}
	if spec.Shards <= 0 {
		return nil, nil, fmt.Errorf("loadtest: need a positive shard count, got %d", spec.Shards)
	}
	if spec.Router == "" && spec.Tasks < spec.Shards {
		// Only the independent-streams path splits the task budget per
		// shard; a routed cluster dispatches one global stream and is fine
		// with fewer tasks than shards (unused shards simply drain empty).
		return nil, nil, fmt.Errorf("loadtest: need at least one task per shard, got %d tasks over %d shards", spec.Tasks, spec.Shards)
	}
	if spec.Workers != 0 && spec.Router == "" {
		return nil, nil, fmt.Errorf("loadtest: -workers parallelizes the cluster coordinator and needs -router")
	}
	if spec.Speculate && spec.Router == "" {
		return nil, nil, fmt.Errorf("loadtest: -speculate runs the cluster coordinator optimistically and needs -router (and -workers >= 2)")
	}
	if spec.Stale && spec.Router == "" {
		return nil, nil, fmt.Errorf("loadtest: -stale stales the cluster router's fleet view and needs -router (least-backlog or po2)")
	}
	if spec.Prefetch && spec.Router == "" {
		return nil, nil, fmt.Errorf("loadtest: -prefetch pipelines the cluster coordinator's arrival stream and needs -router")
	}
	policy, cfg, tenants, opts, err := spec.parse()
	if err != nil {
		return nil, nil, err
	}
	if spec.Router != "" {
		// Cluster mode: one global stream, dispatched across the fleet by
		// the router. The coordinator is inherently streaming, so the wrap
		// hook (trace recording) applies to the single global stream.
		router, err := cluster.RouterByName(spec.Router, spec.Seed)
		if err != nil {
			return nil, nil, err
		}
		stream, err := workload.NewStream(cfg, spec.Tasks, spec.Seed)
		if err != nil {
			return nil, nil, err
		}
		var global engine.ArrivalStream = stream
		if wrap != nil {
			global = wrap(0, global)
		}
		res, err := cluster.Run(cluster.Config{
			Shards:       spec.Shards,
			P:            spec.P,
			Policy:       policy,
			Router:       router,
			Workers:      spec.Workers,
			Speculate:    spec.Speculate,
			StaleRouting: spec.Stale,
			Prefetch:     spec.Prefetch,
			Opts:         opts,
			Sink:         obsv.sink,
			Probe:        obsv.fleetProbe,
		}, global)
		if err != nil {
			return nil, nil, err
		}
		return res, tenants, nil
	}
	if obsv.observed() {
		// Observed single-engine path: the same seed derivation, sinks and
		// merge as RunShardsStream with one shard, plus the probe and the
		// extra sink. Multi-shard independent streams have no single
		// observable timeline, so the flag layer rejects them before here.
		if !spec.Stream || spec.Shards != 1 {
			return nil, nil, fmt.Errorf("loadtest: observers need -stream with one shard, or a -router cluster")
		}
		seed := engine.ShardSeed(spec.Seed, 0)
		stream, err := workload.NewStream(cfg, spec.Tasks, seed)
		if err != nil {
			return nil, nil, err
		}
		var arrivals engine.ArrivalStream = stream
		if wrap != nil {
			arrivals = wrap(0, arrivals)
		}
		agg := engine.NewAggregateSink()
		sk := engine.NewSketchSink(0)
		opts.Probe = obsv.probe
		opts.ProbeInterval = obsv.probeInterval
		res, err := engine.RunStreamWithOptions(spec.P, policy, arrivals, engine.MultiSink(agg, sk, obsv.sink), opts)
		if err != nil {
			return nil, nil, err
		}
		runs := []engine.ShardRun{{Shard: 0, Seed: seed, Result: res}}
		merged, err := engine.MergeShards(spec.P, policy.Name(), runs, []*engine.AggregateSink{agg}, []*engine.SketchSink{sk})
		if err != nil {
			return nil, nil, err
		}
		return merged, tenants, nil
	}
	// Spread the task budget over the shards; the first Tasks%Shards shards
	// absorb the remainder.
	perShard := func(shard int) int {
		n := spec.Tasks / spec.Shards
		if shard < spec.Tasks%spec.Shards {
			n++
		}
		return n
	}
	var res *engine.LoadResult
	if spec.Stream {
		source := func(shard int, seed int64) (engine.ArrivalStream, error) {
			stream, err := workload.NewStream(cfg, perShard(shard), seed)
			if err != nil {
				return nil, err
			}
			if wrap != nil {
				return wrap(shard, stream), nil
			}
			return stream, nil
		}
		res, err = engine.RunShardsStreamWithOptions(spec.P, policy, source, spec.Shards, spec.Seed, opts)
	} else {
		source := func(shard int, seed int64) ([]engine.Arrival, error) {
			return workload.GenerateArrivals(cfg, perShard(shard), seed)
		}
		res, err = engine.RunShardsWithOptions(spec.P, policy, source, spec.Shards, spec.Seed, opts)
	}
	if err != nil {
		return nil, nil, err
	}
	return res, tenants, nil
}

// loadtestReport runs the spec and renders the deterministic text report:
// the same spec always produces byte-identical output.
func loadtestReport(w io.Writer, spec loadtestSpec) error {
	res, tenants, err := runLoadtestSpec(spec)
	if err != nil {
		return err
	}
	renderLoadResult(w, spec, res, tenants)
	return nil
}

// renderLoadResult prints the merged result. Everything it reads is computed
// in shard order, so the report is byte-deterministic for a given spec.
func renderLoadResult(w io.Writer, spec loadtestSpec, res *engine.LoadResult, tenants []workload.TenantSpec) {
	model := spec.Speedup
	if model == "" {
		model = "linear"
	}
	stream := spec.Stream
	routed := ""
	if spec.Router != "" {
		// Cluster mode streams by construction and names its router. The
		// worker count is part of the header on request only: the body below
		// it is byte-identical at every worker count, which is the contract.
		stream = true
		routed = fmt.Sprintf(" router=%s", spec.Router)
		if spec.Workers > 0 {
			routed += fmt.Sprintf(" workers=%d", spec.Workers)
		}
		if spec.Speculate {
			routed += " speculate=true"
		}
		if spec.Stale {
			// Stale routing IS part of the deterministic schedule (unlike
			// -workers), so it belongs in the header unconditionally.
			routed += " stale=true"
		}
	}
	if spec.TenantSkew > 0 {
		routed += fmt.Sprintf(" tenant-skew=%g", spec.TenantSkew)
	}
	fmt.Fprintf(w, "loadtest: policy=%s class=%s process=%s rate=%g tasks=%d shards=%d p=%g seed=%d speedup=%s stream=%v%s\n",
		res.Policy, spec.Class, spec.Process, spec.Rate, spec.Tasks, spec.Shards, spec.P, spec.Seed, model, stream, routed)
	renderLoadBody(w, res, tenants)
}

// renderLoadBody prints the report body shared by the generated-workload and
// fleet-replay reports: per-shard lines, aggregate, imbalance, flow summary
// and per-tenant rows. A nil tenants list falls back to tenant-N names.
func renderLoadBody(w io.Writer, res *engine.LoadResult, tenants []workload.TenantSpec) {
	for _, run := range res.Shards {
		r := run.Result
		fmt.Fprintf(w, "shard %d: tasks=%d events=%d max-alive=%d makespan=%.6g weighted-flow=%.6g mean-flow=%.6g throughput=%.6g\n",
			run.Shard, r.Completed, r.Events, r.MaxAlive, r.Makespan, r.WeightedFlow, r.MeanFlow(), r.Throughput())
	}
	fmt.Fprintf(w, "aggregate: tasks=%d events=%d makespan=%.6g weighted-flow=%.6g throughput=%.6g\n",
		res.TotalTasks, res.Events, res.Makespan, res.WeightedFlow, res.Throughput)
	fmt.Fprintf(w, "imbalance: completed-min=%d completed-max=%d peak-backlog=%d\n",
		res.MinShardCompleted, res.MaxShardCompleted, res.PeakBacklog)
	if res.FlowApprox {
		fmt.Fprintf(w, "flow: %s (quantiles from sketch)\n", res.Flow)
	} else {
		fmt.Fprintf(w, "flow: %s\n", res.Flow)
	}
	for _, tm := range res.PerTenant {
		name := fmt.Sprintf("tenant-%d", tm.Tenant)
		if tm.Tenant < len(tenants) {
			name = tenants[tm.Tenant].Name
		}
		fmt.Fprintf(w, "tenant %s: tasks=%d mean-flow=%.6g std-flow=%.3g max-flow=%.6g weighted-flow=%.6g\n",
			name, tm.Tasks, tm.MeanFlow, tm.StdFlow, tm.MaxFlow, tm.WeightedFlow)
	}
}

// traceReplayReport replays a recorded JSONL trace, returning the number of
// replayed tasks. Policy, capacity and speedup model come from the spec; the
// workload fields are ignored (the trace is the workload). With one shard
// and no router the trace drives a single streaming engine; with more
// shards (or an explicit -router) the one recorded stream is dispatched
// across the fleet by the cluster coordinator — the same trace replays at
// any shard count, with the router deciding placement.
func traceReplayReport(w io.Writer, spec loadtestSpec, trace io.Reader) (int, error) {
	policy, err := engine.PolicyByName(spec.Policy)
	if err != nil {
		return 0, err
	}
	model, err := speedup.ParseModel(spec.Speedup)
	if err != nil {
		return 0, err
	}
	if spec.Shards > 1 || spec.Router != "" {
		routerName := spec.Router
		if routerName == "" {
			routerName = "round-robin"
		}
		router, err := cluster.RouterByName(routerName, spec.Seed)
		if err != nil {
			return 0, err
		}
		res, err := cluster.Run(cluster.Config{
			Shards: spec.Shards,
			P:      spec.P,
			Policy: policy,
			Router: router,
			Opts:   engine.Options{Model: model},
		}, workload.NewTraceReader(trace))
		if err != nil {
			return 0, err
		}
		modelName := spec.Speedup
		if modelName == "" {
			modelName = "linear"
		}
		fmt.Fprintf(w, "loadtest: policy=%s trace-replay tasks=%d shards=%d p=%g seed=%d speedup=%s stream=true router=%s\n",
			res.Policy, res.TotalTasks, spec.Shards, spec.P, spec.Seed, modelName, routerName)
		renderLoadBody(w, res, nil)
		return res.TotalTasks, nil
	}
	agg := engine.NewAggregateSink()
	sk := engine.NewSketchSink(0)
	res, err := engine.RunStreamWithOptions(spec.P, policy, workload.NewTraceReader(trace), engine.MultiSink(agg, sk), engine.Options{Model: model})
	if err != nil {
		return 0, err
	}
	modelName := spec.Speedup
	if modelName == "" {
		modelName = "linear"
	}
	fmt.Fprintf(w, "loadtest: policy=%s trace-replay tasks=%d p=%g speedup=%s stream=true\n",
		res.Policy, res.Completed, spec.P, modelName)
	fmt.Fprintf(w, "aggregate: tasks=%d events=%d max-alive=%d makespan=%.6g weighted-flow=%.6g mean-flow=%.6g throughput=%.6g\n",
		res.Completed, res.Events, res.MaxAlive, res.Makespan, res.WeightedFlow, res.MeanFlow(), res.Throughput())
	fmt.Fprintf(w, "flow: %s (quantiles from sketch)\n", engine.FlowSummary(agg, sk))
	for _, tm := range agg.PerTenant() {
		fmt.Fprintf(w, "tenant tenant-%d: tasks=%d mean-flow=%.6g std-flow=%.3g max-flow=%.6g weighted-flow=%.6g\n",
			tm.Tenant, tm.Tasks, tm.MeanFlow, tm.StdFlow, tm.MaxFlow, tm.WeightedFlow)
	}
	return res.Completed, nil
}

// teeStream forwards a stream while recording every arrival to a trace
// writer.
type teeStream struct {
	inner engine.ArrivalStream
	tw    *workload.TraceWriter
}

func (t *teeStream) Next() (engine.Arrival, bool, error) {
	a, ok, err := t.inner.Next()
	if err != nil || !ok {
		return a, ok, err
	}
	if err := t.tw.Write(a); err != nil {
		return engine.Arrival{}, false, fmt.Errorf("recording trace: %w", err)
	}
	return a, true, nil
}

// memReport instruments one load-test run: wall time, tasks/sec of wall
// clock, allocation counters per task, the live-heap delta, the peak heap
// sampled during the run (at the given sampling interval; <= 0 disables
// mid-run sampling), and the GC cycles the run itself triggered. run
// returns the number of tasks it pushed through. memReport prints to its
// own writer (stderr in production) so the deterministic report on stdout
// stays byte-stable.
func memReport(perfW io.Writer, heapSample time.Duration, run func() (int, error)) error {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	sampler := startHeapSampler(heapSample)
	start := time.Now()
	tasks, err := run()
	elapsed := time.Since(start)
	peak := sampler.stop()
	if err != nil {
		return err
	}
	if tasks <= 0 {
		tasks = 1
	}
	// GC cycles are read before the explicit collection below, so the count
	// reflects what the run's own allocation pressure triggered.
	var atEnd runtime.MemStats
	runtime.ReadMemStats(&atEnd)
	gcCycles := atEnd.NumGC - before.NumGC
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if peak < after.HeapAlloc {
		peak = after.HeapAlloc
	}
	perTask := func(v uint64) float64 { return float64(v) / float64(tasks) }
	fmt.Fprintf(perfW, "perf: wall=%.3gs tasks/sec=%.4g allocs/task=%.4g bytes/task=%.4g peak-heap=%.1fMiB live-heap-delta=%+.2fMiB gc-cycles=%d\n",
		elapsed.Seconds(),
		float64(tasks)/elapsed.Seconds(),
		perTask(after.Mallocs-before.Mallocs),
		perTask(after.TotalAlloc-before.TotalAlloc),
		float64(peak)/(1<<20),
		(float64(after.HeapAlloc)-float64(before.HeapAlloc))/(1<<20),
		gcCycles)
	return nil
}

// heapSampler polls runtime.MemStats.HeapAlloc while a run is in flight so
// the report can show the peak heap, the number the O(alive tasks) claim is
// about. A non-positive interval disables mid-run sampling (the reported
// peak then falls back to the end-of-run live heap).
type heapSampler struct {
	stopCh chan struct{}
	doneCh chan struct{}
	peak   uint64
}

func startHeapSampler(interval time.Duration) *heapSampler {
	h := &heapSampler{stopCh: make(chan struct{}), doneCh: make(chan struct{})}
	if interval <= 0 {
		close(h.doneCh)
		return h
	}
	go func() {
		defer close(h.doneCh)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-h.stopCh:
				return
			case <-ticker.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > h.peak {
					h.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return h
}

func (h *heapSampler) stop() uint64 {
	close(h.stopCh)
	<-h.doneCh
	return h.peak
}

// runLoadtest implements `mwct loadtest`. The workload/topology flags are
// the shared specFlags set (the same defaults back POST /v1/loadtest); only
// the observation and I/O flags below are loadtest-specific.
func runLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	buildSpec := specFlags(fs, defaultLoadtestSpec())
	traceOut := fs.String("trace-out", "", "record the generated arrival stream to this JSONL file (requires -stream and -shards 1, or -router, whose global stream is the one recorded)")
	traceIn := fs.String("trace-in", "", "replay a recorded JSONL arrival trace instead of generating a workload (implies -stream; with -shards > 1 or -router the one trace is dispatched across the fleet by the cluster coordinator)")
	timelineOut := fs.String("timeline", "", "record a JSONL run timeline (backlog, throughput, p99 flow over virtual time) to this file (requires -stream and -shards 1, or -router)")
	timelineInterval := fs.Float64("timeline-interval", 1, "virtual-time spacing of timeline samples; 0 samples every observation")
	heapSample := fs.Duration("heap-sample", 10*time.Millisecond, "sampling interval of the peak-heap figure in the perf footer; 0 disables mid-run sampling")
	mem := fs.Bool("mem", true, "print wall-clock throughput and memory statistics to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := buildSpec()
	perfW := io.Discard
	if *mem {
		perfW = os.Stderr
	}

	if *traceIn != "" {
		if *traceOut != "" {
			return fmt.Errorf("loadtest: -trace-in and -trace-out are mutually exclusive")
		}
		if *timelineOut != "" {
			return fmt.Errorf("loadtest: -timeline is not supported with -trace-in")
		}
		// A bare -trace-in keeps its historical meaning — one trace, one
		// streaming engine — even though the -shards flag defaults to 4.
		// Only an explicit -shards or -router opts the replay into the
		// cluster coordinator.
		explicit := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["shards"] && !explicit["router"] {
			spec.Shards = 1
		}
		f, err := os.Open(*traceIn)
		if err != nil {
			return err
		}
		defer f.Close()
		return memReport(perfW, *heapSample, func() (int, error) {
			return traceReplayReport(os.Stdout, spec, f)
		})
	}

	var wrap func(shard int, s engine.ArrivalStream) engine.ArrivalStream
	var traceFile *os.File
	var tee *teeStream
	if *traceOut != "" {
		if spec.Router == "" {
			if !spec.Stream {
				return fmt.Errorf("loadtest: -trace-out records the streamed arrivals; add -stream (or -router)")
			}
			if spec.Shards != 1 {
				return fmt.Errorf("loadtest: -trace-out records one stream; use -shards 1 or a -router cluster (whose global stream is recorded)")
			}
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		traceFile = f
		wrap = func(shard int, s engine.ArrivalStream) engine.ArrivalStream {
			tee = &teeStream{inner: s, tw: workload.NewTraceWriter(f)}
			return tee
		}
	}

	var obsv loadtestObservers
	var timeline *obs.Timeline
	var timelineFile *os.File
	var timelineBuf *bufio.Writer
	if *timelineOut != "" {
		if spec.Router == "" {
			if !spec.Stream {
				return fmt.Errorf("loadtest: -timeline records the streamed run; add -stream (or -router)")
			}
			if spec.Shards != 1 {
				return fmt.Errorf("loadtest: -timeline records one timeline; use -shards 1 or a -router cluster")
			}
		}
		if *timelineInterval < 0 {
			return fmt.Errorf("loadtest: -timeline-interval must be >= 0, got %g", *timelineInterval)
		}
		f, err := os.Create(*timelineOut)
		if err != nil {
			return err
		}
		timelineFile = f
		timelineBuf = bufio.NewWriter(f)
		timeline = obs.NewTimeline(timelineBuf, *timelineInterval)
		obsv = loadtestObservers{
			probe:         timeline,
			probeInterval: *timelineInterval,
			sink:          timeline,
			fleetProbe:    timeline,
		}
	}

	rollbacks, wasted := 0, 0
	batchLo, batchHi, batchLast := 0, 0, 0
	staleViews, staleWindow, staleTasks := 0, 0, 0
	err := memReport(perfW, *heapSample, func() (int, error) {
		res, tenantSpecs, err := runLoadtestSpecWrapped(spec, wrap, obsv)
		if err != nil {
			return 0, err
		}
		renderLoadResult(os.Stdout, spec, res, tenantSpecs)
		rollbacks, wasted = res.Rollbacks, res.WastedEvents
		batchLo, batchHi, batchLast = res.SpecBatchMin, res.SpecBatchMax, res.SpecBatchLast
		staleViews, staleWindow, staleTasks = res.StaleViews, res.StaleWindow, res.TotalTasks
		return res.TotalTasks, nil
	})
	if err == nil && spec.Speculate {
		// The speculation win/loss footer goes to stderr with the perf line:
		// rollback counts and the adaptive window trajectory are cost
		// figures, and stdout must stay byte-identical across coordinator
		// modes.
		fmt.Fprintf(perfW, "speculate: rollbacks=%d wasted-events=%d batch=%d..%d final=%d\n",
			rollbacks, wasted, batchLo, batchHi, batchLast)
	}
	if err == nil && spec.Stale {
		// Same split for the stale footer: the view cadence is a perf figure
		// (how much dispatch the fleet amortized per published view), not
		// part of the deterministic report.
		perView := 0.0
		if staleViews > 0 {
			perView = float64(staleTasks) / float64(staleViews)
		}
		fmt.Fprintf(perfW, "stale: views=%d window=%d dispatches-per-view=%.1f\n",
			staleViews, staleWindow, perView)
	}
	if traceFile != nil {
		if err == nil && tee != nil {
			err = tee.tw.Flush()
		}
		if cerr := traceFile.Close(); err == nil {
			err = cerr
		}
	}
	if timelineFile != nil {
		if err == nil {
			err = timeline.Close()
		}
		if err == nil {
			err = timelineBuf.Flush()
		}
		if cerr := timelineFile.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			fmt.Fprintf(perfW, "timeline: %d samples -> %s\n", timeline.Records(), *timelineOut)
		}
	}
	return err
}
