package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/malleable-sched/malleable/internal/engine"
	"github.com/malleable-sched/malleable/internal/speedup"
	"github.com/malleable-sched/malleable/internal/workload"
)

// loadtestSpec is the full parameterization of a sharded online load test.
// It is shared by `mwct loadtest` and the POST /v1/loadtest endpoint of
// `mwct serve`.
type loadtestSpec struct {
	// Policy is one of engine.PolicyNames.
	Policy string `json:"policy"`
	// Class is a workload instance-class name (see `mwct gen -class`).
	Class string `json:"class"`
	// Process is the arrival process: poisson or bursty.
	Process string `json:"process"`
	// Rate is the per-shard arrival rate (tasks per unit time).
	Rate float64 `json:"rate"`
	// Burst is the mean burst size of the bursty process.
	Burst float64 `json:"burst,omitempty"`
	// Tasks is the total number of tasks across all shards.
	Tasks int `json:"tasks"`
	// Shards is the number of concurrent engine instances.
	Shards int `json:"shards"`
	// P is the per-shard platform capacity.
	P float64 `json:"p"`
	// Seed is the base seed; per-shard seeds are derived from it.
	Seed int64 `json:"seed"`
	// Tenants is a name:weight:share list, e.g. "gold:4:0.2,bronze:1:0.8".
	Tenants string `json:"tenants,omitempty"`
	// Speedup is the speedup-model spec (linear, powerlaw[:alpha],
	// amdahl[:sigma], platform:cap@t,...); empty means the paper's linear
	// model.
	Speedup string `json:"speedup,omitempty"`
	// CurveMin and CurveMax draw per-task speedup-curve parameters; both zero
	// disables them.
	CurveMin float64 `json:"curveMin,omitempty"`
	CurveMax float64 `json:"curveMax,omitempty"`
}

// runLoadtestSpec generates the per-shard arrival streams, runs the sharded
// engine and returns the merged result plus the parsed tenant mix (so the
// report prints the same tenants the workload actually ran with).
func runLoadtestSpec(spec loadtestSpec) (*engine.LoadResult, []workload.TenantSpec, error) {
	if spec.Tasks <= 0 {
		return nil, nil, fmt.Errorf("loadtest: need a positive task count, got %d", spec.Tasks)
	}
	if spec.Shards <= 0 {
		return nil, nil, fmt.Errorf("loadtest: need a positive shard count, got %d", spec.Shards)
	}
	if spec.Tasks < spec.Shards {
		return nil, nil, fmt.Errorf("loadtest: need at least one task per shard, got %d tasks over %d shards", spec.Tasks, spec.Shards)
	}
	policy, err := engine.PolicyByName(spec.Policy)
	if err != nil {
		return nil, nil, err
	}
	class, err := workload.ParseClass(spec.Class)
	if err != nil {
		return nil, nil, err
	}
	process, err := workload.ParseProcess(spec.Process)
	if err != nil {
		return nil, nil, err
	}
	tenants, err := workload.ParseTenants(spec.Tenants)
	if err != nil {
		return nil, nil, err
	}
	model, err := speedup.ParseModel(spec.Speedup)
	if err != nil {
		return nil, nil, err
	}
	if err := speedup.ValidateCurves(model, spec.CurveMin, spec.CurveMax); err != nil {
		return nil, nil, err
	}
	cfg := workload.ArrivalConfig{
		Class:     class,
		P:         spec.P,
		Process:   process,
		Rate:      spec.Rate,
		MeanBurst: spec.Burst,
		Tenants:   tenants,
		CurveMin:  spec.CurveMin,
		CurveMax:  spec.CurveMax,
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	// Spread the task budget over the shards; the first Tasks%Shards shards
	// absorb the remainder.
	perShard := func(shard int) int {
		n := spec.Tasks / spec.Shards
		if shard < spec.Tasks%spec.Shards {
			n++
		}
		return n
	}
	source := func(shard int, seed int64) ([]engine.Arrival, error) {
		return workload.GenerateArrivals(cfg, perShard(shard), seed)
	}
	res, err := engine.RunShardsWithOptions(spec.P, policy, source, spec.Shards, spec.Seed, engine.Options{Model: model})
	if err != nil {
		return nil, nil, err
	}
	return res, tenants, nil
}

// loadtestReport runs the spec and renders the deterministic text report:
// the same spec always produces byte-identical output.
func loadtestReport(w io.Writer, spec loadtestSpec) error {
	res, tenants, err := runLoadtestSpec(spec)
	if err != nil {
		return err
	}
	model := spec.Speedup
	if model == "" {
		model = "linear"
	}
	fmt.Fprintf(w, "loadtest: policy=%s class=%s process=%s rate=%g tasks=%d shards=%d p=%g seed=%d speedup=%s\n",
		res.Policy, spec.Class, spec.Process, spec.Rate, spec.Tasks, spec.Shards, spec.P, spec.Seed, model)
	for _, run := range res.Shards {
		r := run.Result
		fmt.Fprintf(w, "shard %d: tasks=%d events=%d max-alive=%d makespan=%.6g weighted-flow=%.6g mean-flow=%.6g throughput=%.6g\n",
			run.Shard, len(r.Tasks), r.Events, r.MaxAlive, r.Makespan, r.WeightedFlow, r.MeanFlow(), r.Throughput())
	}
	fmt.Fprintf(w, "aggregate: tasks=%d events=%d makespan=%.6g weighted-flow=%.6g throughput=%.6g\n",
		res.TotalTasks, res.Events, res.Makespan, res.WeightedFlow, res.Throughput)
	fmt.Fprintf(w, "flow: %s\n", res.Flow)
	for _, tm := range res.PerTenant {
		name := fmt.Sprintf("tenant-%d", tm.Tenant)
		if tm.Tenant < len(tenants) {
			name = tenants[tm.Tenant].Name
		}
		fmt.Fprintf(w, "tenant %s: tasks=%d mean-flow=%.6g std-flow=%.3g max-flow=%.6g weighted-flow=%.6g\n",
			name, tm.Tasks, tm.MeanFlow, tm.StdFlow, tm.MaxFlow, tm.WeightedFlow)
	}
	return nil
}

// runLoadtest implements `mwct loadtest`.
func runLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	policy := fs.String("policy", "wdeq", "policy: wdeq, deq, weight-greedy, smith-ratio")
	class := fs.String("class", "uniform", "instance class for the task shapes (see `mwct gen`)")
	process := fs.String("process", "poisson", "arrival process: poisson or bursty")
	rate := fs.Float64("rate", 8, "per-shard arrival rate (tasks per unit time)")
	burst := fs.Float64("burst", 4, "mean burst size of the bursty process")
	tasks := fs.Int("n", 10000, "total number of tasks across all shards")
	shards := fs.Int("shards", 4, "number of concurrent engine shards")
	p := fs.Float64("p", 8, "per-shard platform capacity (processors)")
	seed := fs.Int64("seed", 1, "base random seed (per-shard seeds are derived)")
	tenants := fs.String("tenants", "", "tenant mix as name:weight:share,... (empty = single tenant)")
	speedupSpec := fs.String("speedup", "", "speedup model: linear, powerlaw[:alpha], amdahl[:sigma], platform:cap@t,... (empty = linear)")
	curveMin := fs.Float64("curve-min", 0, "lower bound of per-task speedup-curve draws (0 with -curve-max 0 disables)")
	curveMax := fs.Float64("curve-max", 0, "upper bound of per-task speedup-curve draws")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return loadtestReport(os.Stdout, loadtestSpec{
		Policy:   *policy,
		Class:    *class,
		Process:  *process,
		Rate:     *rate,
		Burst:    *burst,
		Tasks:    *tasks,
		Shards:   *shards,
		P:        *p,
		Seed:     *seed,
		Tenants:  *tenants,
		Speedup:  *speedupSpec,
		CurveMin: *curveMin,
		CurveMax: *curveMax,
	})
}
