package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/malleable-sched/malleable/internal/obs"
)

// GET /metrics serves a valid Prometheus text exposition with the declared
// content type, and the loadtest counters advance after a served run.
func TestServePrometheusMetrics(t *testing.T) {
	srv := httptest.NewServer(newServeMux(false))
	defer srv.Close()

	spec, _ := json.Marshal(testSpec())
	post, err := http.Post(srv.URL+"/v1/loadtest", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("loadtest status = %d", post.StatusCode)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("metrics content type = %q, want %q", ct, obs.PrometheusContentType)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	runs := fams["mwct_loadtest_runs_total"]
	if runs == nil || len(runs.Samples) != 1 || runs.Samples[0].Value != 1 {
		t.Fatalf("mwct_loadtest_runs_total: %+v", runs)
	}
	tasks := fams["mwct_loadtest_tasks_total"]
	if tasks == nil || tasks.Samples[0].Value <= 0 {
		t.Fatalf("mwct_loadtest_tasks_total: %+v", tasks)
	}
	reqs := fams["mwct_http_requests_total"]
	if reqs == nil || reqs.Type != "counter" {
		t.Fatalf("mwct_http_requests_total: %+v", reqs)
	}
	seen := map[string]bool{}
	for _, s := range reqs.Samples {
		seen[s.Labels["path"]] = true
	}
	if !seen["/v1/loadtest"] || !seen["/metrics"] {
		t.Fatalf("request counter paths = %v", seen)
	}
}

// The pprof endpoints exist only behind the flag.
func TestServePprofGated(t *testing.T) {
	off := httptest.NewServer(newServeMux(false))
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof served without -pprof")
	}

	on := httptest.NewServer(newServeMux(true))
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status with -pprof = %d", resp.StatusCode)
	}
}

// /v1/metrics declares its JSON content type explicitly.
func TestServeMetricsContentType(t *testing.T) {
	srv := httptest.NewServer(newServeMux(false))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q, want application/json", ct)
	}
}

// Concurrent load tests and metrics reads (JSON and Prometheus) are safe:
// the JSON handler snapshots under the lock and writes after releasing it,
// the Prometheus handler reads atomics only. Run under -race this covers
// the record/read interleaving; functionally, the final counters account
// for every run.
func TestServeMetricsConcurrent(t *testing.T) {
	srv := httptest.NewServer(newServeMux(false))
	defer srv.Close()
	spec, _ := json.Marshal(testSpec())

	const loadtests, readers = 4, 8
	var wg sync.WaitGroup
	errs := make(chan error, loadtests+readers)
	for i := 0; i < loadtests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/loadtest", "application/json", bytes.NewReader(spec))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("loadtest status %d", resp.StatusCode)
			}
		}()
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := "/v1/metrics"
			if i%2 == 1 {
				path = "/metrics"
			}
			for j := 0; j < 5; j++ {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					errs <- err
					return
				}
				if path == "/metrics" {
					if _, err := obs.ParseExposition(resp.Body); err != nil {
						errs <- fmt.Errorf("mid-run exposition invalid: %w", err)
					}
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s status %d", path, resp.StatusCode)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Runs  int `json:"runs"`
		Tasks int `json:"tasks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Runs != loadtests || out.Tasks <= 0 {
		t.Fatalf("final counters runs=%d tasks=%d, want runs=%d", out.Runs, out.Tasks, loadtests)
	}
	prom, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer prom.Body.Close()
	fams, err := obs.ParseExposition(prom.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := fams["mwct_loadtest_runs_total"].Samples[0].Value; got != loadtests {
		t.Fatalf("prometheus runs counter = %g, want %d", got, loadtests)
	}
}
