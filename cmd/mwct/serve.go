package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"

	malleable "github.com/malleable-sched/malleable"
	"github.com/malleable-sched/malleable/internal/engine"
	"github.com/malleable-sched/malleable/internal/obs"
	"github.com/malleable-sched/malleable/internal/schedule"
)

// newServeMux builds the HTTP API of `mwct serve`:
//
//	GET  /healthz              liveness probe
//	GET  /metrics              Prometheus text exposition of the server registry
//	GET  /v1/metrics           cumulative counters over every load test served (JSON)
//	POST /v1/solve?algo=NAME   schedule a JSON instance, return completions
//	POST /v1/loadtest          run a sharded online load test (loadtestSpec)
//
// enablePprof additionally mounts the net/http/pprof handlers under
// /debug/pprof/ — off by default because the profiling endpoints expose
// internals (and a symbol-resolution CPU cost) operators may not want on an
// open port.
//
// Each mux owns its own metrics state (nothing global), so tests drive
// independent instances through net/http/httptest.
func newServeMux(enablePprof bool) *http.ServeMux {
	return newServeMuxWorkers(enablePprof, 0)
}

// newServeMuxWorkers is newServeMux with a server-side default worker count
// for cluster load tests: a routed spec that leaves "workers" unset runs the
// coordinator with defaultWorkers pool workers. Because parallel and
// sequential coordinators produce byte-identical results, the default changes
// how fast the server answers, never what it answers — which is why it is an
// operator flag and not part of the request schema's meaning.
func newServeMuxWorkers(enablePprof bool, defaultWorkers int) *http.ServeMux {
	metrics := newServeMetrics()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		metrics.requests.With("/healthz").Inc()
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", metrics.handleProm)
	mux.HandleFunc("GET /v1/metrics", metrics.handle)
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		metrics.requests.With("/v1/solve").Inc()
		handleSolve(w, r)
	})
	mux.HandleFunc("POST /v1/loadtest", func(w http.ResponseWriter, r *http.Request) {
		metrics.requests.With("/v1/loadtest").Inc()
		handleLoadtest(w, r, metrics, defaultWorkers)
	})
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// serveMetrics accumulates every served load test into one AggregateSink —
// the process-lifetime counters behind GET /v1/metrics — and mirrors the
// same totals into an obs.Registry for the Prometheus exposition at
// GET /metrics. The sink itself is mergeable, so folding each run's merged
// shard aggregate in keeps the cumulative mean flow exact without retaining
// anything per task or per run.
type serveMetrics struct {
	mu   sync.Mutex
	runs int
	agg  *engine.AggregateSink

	reg          *obs.Registry
	requests     *obs.CounterVec
	runsTotal    *obs.Counter
	tasksTotal   *obs.Counter
	weightedFlow *obs.Counter
	meanFlow     *obs.Gauge
	rollbacks    *obs.Counter
	wastedEvents *obs.Counter
	specBatch    *obs.Gauge
	staleViews   *obs.Counter
	staleWindow  *obs.Gauge
}

func newServeMetrics() *serveMetrics {
	reg := obs.NewRegistry()
	return &serveMetrics{
		agg:          engine.NewAggregateSink(),
		reg:          reg,
		requests:     reg.CounterVec("mwct_http_requests_total", "HTTP requests served, by path.", "path"),
		runsTotal:    reg.Counter("mwct_loadtest_runs_total", "Load tests completed by this server."),
		tasksTotal:   reg.Counter("mwct_loadtest_tasks_total", "Tasks scheduled across every served load test."),
		weightedFlow: reg.Counter("mwct_loadtest_weighted_flow_total", "Cumulative weighted flow over every served load test."),
		meanFlow:     reg.Gauge("mwct_loadtest_mean_flow", "Mean flow time over every served load test."),
		rollbacks:    reg.Counter("mwct_cluster_rollbacks_total", "Shard rollbacks performed by speculative cluster load tests."),
		wastedEvents: reg.Counter("mwct_cluster_wasted_events_total", "Policy invocations discarded by speculative rollbacks."),
		specBatch:    reg.Gauge("mwct_cluster_spec_batch", "Speculation window depth the adaptive controller settled on in the last speculative run."),
		staleViews:   reg.Counter("mwct_cluster_stale_views_total", "Window-boundary fleet views published by stale-batched cluster load tests."),
		staleWindow:  reg.Gauge("mwct_cluster_stale_window", "Dispatch window size of the last stale-batched run."),
	}
}

// record folds one completed load test into the counters.
func (m *serveMetrics) record(res *engine.LoadResult) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runs++
	m.agg.Merge(res.Aggregate)
	m.runsTotal.Inc()
	m.tasksTotal.Set(float64(m.agg.Tasks()))
	m.weightedFlow.Set(m.agg.WeightedFlow())
	m.meanFlow.Set(m.agg.MeanFlow())
	// Zero outside speculative cluster runs, so conservative load tests
	// leave the misprediction counters untouched.
	m.rollbacks.Add(float64(res.Rollbacks))
	m.wastedEvents.Add(float64(res.WastedEvents))
	if res.SpecBatchLast > 0 {
		m.specBatch.Set(float64(res.SpecBatchLast))
	}
	// Likewise zero outside stale-batched runs.
	m.staleViews.Add(float64(res.StaleViews))
	if res.StaleWindow > 0 {
		m.staleWindow.Set(float64(res.StaleWindow))
	}
}

// handleProm implements GET /metrics: the Prometheus text exposition of the
// server's registry. Metric reads are atomic, so rendering does not take
// the serveMetrics lock and cannot stall load tests.
func (m *serveMetrics) handleProm(w http.ResponseWriter, r *http.Request) {
	m.requests.With("/metrics").Inc()
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	_ = m.reg.WritePrometheus(w)
}

// handle implements GET /v1/metrics. The counters are snapshotted under the
// lock but written after releasing it, so a slow-reading metrics client
// cannot stall load tests trying to record their results.
func (m *serveMetrics) handle(w http.ResponseWriter, r *http.Request) {
	m.requests.With("/v1/metrics").Inc()
	m.mu.Lock()
	snapshot := map[string]any{
		"runs":         m.runs,
		"tasks":        m.agg.Tasks(),
		"meanFlow":     m.agg.MeanFlow(),
		"weightedFlow": m.agg.WeightedFlow(),
		"perTenant":    m.agg.PerTenant(),
	}
	m.mu.Unlock()
	writeJSON(w, http.StatusOK, snapshot)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// handleSolve schedules a posted instance with one of the offline algorithms
// and returns the completion times and objective.
func handleSolve(w http.ResponseWriter, r *http.Request) {
	algo := r.URL.Query().Get("algo")
	if algo == "" {
		algo = "wdeq"
	}
	var inst schedule.Instance
	if err := json.NewDecoder(r.Body).Decode(&inst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding instance: %w", err))
		return
	}
	var (
		s   *schedule.ColumnSchedule
		err error
	)
	switch algo {
	case "wdeq":
		s, err = malleable.WDEQ(&inst)
	case "deq":
		s, err = malleable.DEQ(&inst)
	case "smith-greedy":
		var g *malleable.GreedyResult
		g, err = malleable.GreedySmith(&inst)
		if err == nil {
			s = g.Schedule
		}
	case "cmax":
		s, err = malleable.CmaxOptimal(&inst)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown algorithm %q (want wdeq, deq, smith-greedy or cmax)", algo))
		return
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	// Report both metrics: "objective" is ΣwC (what wdeq/deq/smith-greedy
	// optimize); cmax optimizes the makespan, so clients comparing algorithms
	// must read the field their algorithm actually targets.
	writeJSON(w, http.StatusOK, map[string]any{
		"algorithm":   algo,
		"objective":   s.WeightedCompletionTime(),
		"makespan":    s.Makespan(),
		"completions": s.CompletionTimes(),
	})
}

// Limits on network-submitted load tests: a local `mwct loadtest` may be as
// large as the operator likes, but an HTTP client must not be able to pin
// every core or exhaust memory with a single request.
const (
	maxServeLoadtestTasks  = 1_000_000
	maxServeLoadtestShards = 256
	maxServeBodyBytes      = 1 << 20
)

// handleLoadtest runs a sharded online load test described by a JSON
// loadtestSpec body and returns the merged engine.LoadResult (without the
// per-task rows, which would dwarf the response). A spec with "stream":true
// runs the O(alive)-memory streaming path — the recommended mode for large
// network-submitted tests. Every successful run is folded into the server's
// /v1/metrics counters.
func handleLoadtest(w http.ResponseWriter, r *http.Request, metrics *serveMetrics, defaultWorkers int) {
	r.Body = http.MaxBytesReader(w, r.Body, maxServeBodyBytes)
	// The CLI's defaults, with the task budget trimmed to probe size: an
	// empty body should answer fast, not benchmark the server.
	spec := defaultLoadtestSpec()
	spec.Tasks = 1000
	// An empty body runs the defaults above.
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding loadtest spec: %w", err))
		return
	}
	if spec.Router != "" && spec.Workers == 0 {
		// The operator's -workers default applies only where it is legal:
		// routed specs that did not choose a worker count themselves.
		spec.Workers = defaultWorkers
	}
	if spec.Tasks > maxServeLoadtestTasks {
		writeError(w, http.StatusBadRequest, fmt.Errorf("tasks %d exceeds the server limit %d", spec.Tasks, maxServeLoadtestTasks))
		return
	}
	if spec.Shards > maxServeLoadtestShards {
		writeError(w, http.StatusBadRequest, fmt.Errorf("shards %d exceeds the server limit %d", spec.Shards, maxServeLoadtestShards))
		return
	}
	res, _, err := runLoadtestSpec(spec)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	metrics.record(res)
	// Strip the per-task metrics before serializing; keep the aggregates.
	shards := make([]map[string]any, len(res.Shards))
	for i, run := range res.Shards {
		shards[i] = map[string]any{
			"shard":        run.Shard,
			"seed":         run.Seed,
			"tasks":        run.Result.Completed,
			"events":       run.Result.Events,
			"maxAlive":     run.Result.MaxAlive,
			"makespan":     run.Result.Makespan,
			"weightedFlow": run.Result.WeightedFlow,
			"meanFlow":     run.Result.MeanFlow(),
			"throughput":   run.Result.Throughput(),
		}
	}
	out := map[string]any{
		"policy":            res.Policy,
		"p":                 res.P,
		"totalTasks":        res.TotalTasks,
		"events":            res.Events,
		"makespan":          res.Makespan,
		"weightedFlow":      res.WeightedFlow,
		"throughput":        res.Throughput,
		"flow":              res.Flow,
		"flowApprox":        res.FlowApprox,
		"perTenant":         res.PerTenant,
		"shards":            shards,
		"minShardCompleted": res.MinShardCompleted,
		"maxShardCompleted": res.MaxShardCompleted,
		"peakBacklog":       res.PeakBacklog,
	}
	if spec.Router != "" {
		// Cluster runs name their router so a client can tell a routed
		// fleet from independent per-shard streams.
		out["router"] = spec.Router
		if spec.Speculate {
			// Speculation changes cost, never results; report that cost.
			out["speculate"] = true
			out["rollbacks"] = res.Rollbacks
			out["wastedEvents"] = res.WastedEvents
		}
		if spec.Stale {
			// Stale routing changes the schedule AND amortizes dispatch;
			// report both the mode and its view cadence.
			out["stale"] = true
			out["staleViews"] = res.StaleViews
			out["staleWindow"] = res.StaleWindow
			perView := 0.0
			if res.StaleViews > 0 {
				perView = float64(res.TotalTasks) / float64(res.StaleViews)
			}
			out["dispatchesPerView"] = perView
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// runServe implements `mwct serve`.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	workers := fs.Int("workers", 0, "default coordinator worker count for routed load tests whose spec leaves \"workers\" unset (results are byte-identical at any count; this only changes response latency)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("serve: -workers must be >= 0, got %d", *workers)
	}
	fmt.Fprintf(os.Stderr, "mwct: serving on %s\n", *addr)
	// Explicit timeouts so slow clients cannot hold connections (and their
	// goroutines) open indefinitely.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServeMuxWorkers(*enablePprof, *workers),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute, // large load tests take a while to run
	}
	return srv.ListenAndServe()
}
