package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	malleable "github.com/malleable-sched/malleable"
	"github.com/malleable-sched/malleable/internal/schedule"
)

// newServeMux builds the HTTP API of `mwct serve`:
//
//	GET  /healthz              liveness probe
//	POST /v1/solve?algo=NAME   schedule a JSON instance, return completions
//	POST /v1/loadtest          run a sharded online load test (loadtestSpec)
//
// The handler is pure (no global state), so tests drive it through
// net/http/httptest.
func newServeMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/solve", handleSolve)
	mux.HandleFunc("POST /v1/loadtest", handleLoadtest)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// handleSolve schedules a posted instance with one of the offline algorithms
// and returns the completion times and objective.
func handleSolve(w http.ResponseWriter, r *http.Request) {
	algo := r.URL.Query().Get("algo")
	if algo == "" {
		algo = "wdeq"
	}
	var inst schedule.Instance
	if err := json.NewDecoder(r.Body).Decode(&inst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding instance: %w", err))
		return
	}
	var (
		s   *schedule.ColumnSchedule
		err error
	)
	switch algo {
	case "wdeq":
		s, err = malleable.WDEQ(&inst)
	case "deq":
		s, err = malleable.DEQ(&inst)
	case "smith-greedy":
		var g *malleable.GreedyResult
		g, err = malleable.GreedySmith(&inst)
		if err == nil {
			s = g.Schedule
		}
	case "cmax":
		s, err = malleable.CmaxOptimal(&inst)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown algorithm %q (want wdeq, deq, smith-greedy or cmax)", algo))
		return
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	// Report both metrics: "objective" is ΣwC (what wdeq/deq/smith-greedy
	// optimize); cmax optimizes the makespan, so clients comparing algorithms
	// must read the field their algorithm actually targets.
	writeJSON(w, http.StatusOK, map[string]any{
		"algorithm":   algo,
		"objective":   s.WeightedCompletionTime(),
		"makespan":    s.Makespan(),
		"completions": s.CompletionTimes(),
	})
}

// Limits on network-submitted load tests: a local `mwct loadtest` may be as
// large as the operator likes, but an HTTP client must not be able to pin
// every core or exhaust memory with a single request.
const (
	maxServeLoadtestTasks  = 1_000_000
	maxServeLoadtestShards = 256
	maxServeBodyBytes      = 1 << 20
)

// handleLoadtest runs a sharded online load test described by a JSON
// loadtestSpec body and returns the merged engine.LoadResult (without the
// per-task rows, which would dwarf the response).
func handleLoadtest(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxServeBodyBytes)
	spec := loadtestSpec{
		Policy:  "wdeq",
		Class:   "uniform",
		Process: "poisson",
		Rate:    8,
		Burst:   4,
		Tasks:   1000,
		Shards:  4,
		P:       8,
		Seed:    1,
	}
	// An empty body runs the defaults above.
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding loadtest spec: %w", err))
		return
	}
	if spec.Tasks > maxServeLoadtestTasks {
		writeError(w, http.StatusBadRequest, fmt.Errorf("tasks %d exceeds the server limit %d", spec.Tasks, maxServeLoadtestTasks))
		return
	}
	if spec.Shards > maxServeLoadtestShards {
		writeError(w, http.StatusBadRequest, fmt.Errorf("shards %d exceeds the server limit %d", spec.Shards, maxServeLoadtestShards))
		return
	}
	res, _, err := runLoadtestSpec(spec)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	// Strip the per-task metrics before serializing; keep the aggregates.
	shards := make([]map[string]any, len(res.Shards))
	for i, run := range res.Shards {
		shards[i] = map[string]any{
			"shard":        run.Shard,
			"seed":         run.Seed,
			"tasks":        len(run.Result.Tasks),
			"events":       run.Result.Events,
			"maxAlive":     run.Result.MaxAlive,
			"makespan":     run.Result.Makespan,
			"weightedFlow": run.Result.WeightedFlow,
			"meanFlow":     run.Result.MeanFlow(),
			"throughput":   run.Result.Throughput(),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"policy":       res.Policy,
		"p":            res.P,
		"totalTasks":   res.TotalTasks,
		"events":       res.Events,
		"makespan":     res.Makespan,
		"weightedFlow": res.WeightedFlow,
		"throughput":   res.Throughput,
		"flow":         res.Flow,
		"perTenant":    res.PerTenant,
		"shards":       shards,
	})
}

// runServe implements `mwct serve`.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mwct: serving on %s\n", *addr)
	// Explicit timeouts so slow clients cannot hold connections (and their
	// goroutines) open indefinitely.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServeMux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute, // large load tests take a while to run
	}
	return srv.ListenAndServe()
}
