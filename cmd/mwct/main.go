// Command mwct is the command-line front end of the malleable-task
// scheduling library. It generates problem instances, runs the scheduling
// algorithms of the paper on them, compares algorithms, and reproduces the
// paper's experiments.
//
// Usage:
//
//	mwct gen        -class uniform -n 5 -p 2 -count 3 -seed 1
//	mwct solve      -algo best-greedy -input instance.json -gantt
//	mwct compare    -input instance.json
//	mwct experiment -name e1 [-full]
//	mwct bandwidth  -workers 8 -seed 7
//	mwct loadtest   -policy wdeq -n 10000 -shards 4 -rate 8 -seed 1
//	mwct loadtest   -router po2 -shards 8 -n 100000 -rate 120 -tenant-skew 1.5
//	mwct bench      -json BENCH_2026-07-30.json -baseline BENCH_baseline.json
//	mwct serve      -addr :8080 [-pprof]
//	mwct promcheck  -input exposition.txt -require mwct_loadtest_runs_total
//
// Instances are read and written as JSON (see `mwct gen` for the format).
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "solve":
		err = runSolve(os.Args[2:])
	case "compare":
		err = runCompare(os.Args[2:])
	case "experiment":
		err = runExperiment(os.Args[2:])
	case "bandwidth":
		err = runBandwidth(os.Args[2:])
	case "loadtest":
		err = runLoadtest(os.Args[2:])
	case "bench":
		err = runBench(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "promcheck":
		err = runPromcheck(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mwct: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mwct: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `mwct — malleable task scheduling for weighted mean completion time

Commands:
  gen         generate random problem instances (JSON on stdout)
  solve       run one algorithm on an instance and print its schedule
  compare     run all applicable algorithms on an instance and compare them
  experiment  reproduce one of the paper's experiments (e1..e9, f1, all)
  bandwidth   run the Figure-1 master-worker bandwidth-sharing scenario
  loadtest    drive the online arrival-driven engine under sustained
              multi-tenant load across concurrent shards (WDEQ, DEQ,
              weight-greedy, smith-ratio; see examples/onlineload for a
              runnable WDEQ-vs-DEQ comparison). -stream runs in O(alive)
              memory (use it for -n in the millions), -trace-out/-trace-in
              record and replay JSONL arrival traces (a recorded trace
              replays at any -shards count), and a perf footer on stderr
              reports wall tasks/sec, allocs/task and peak heap. -router
              switches to cluster mode: ONE global arrival stream dispatched
              across the shards by round-robin, hash-tenant, least-backlog
              or po2 routing in a deterministic virtual timeline (see
              examples/cluster); -tenant-skew Zipf-skews the tenant mix;
              -timeline records sampled backlog/throughput/p99-flow
              trajectories as JSONL (see examples/observability)
  bench       run the pinned performance scenarios, write the JSON report,
              and optionally gate on a baseline (-baseline BENCH_baseline.json
              -max-regress 0.25); CI runs this on every push
  serve       expose solve and loadtest over an HTTP API, with cumulative
              run counters on GET /v1/metrics, a Prometheus text exposition
              on GET /metrics, and net/http/pprof behind -pprof
  promcheck   strictly validate a Prometheus text exposition (stdin or
              -input), optionally requiring named families; CI pipes a
              scrape of a live serve through it

Run "mwct <command> -h" for the flags of each command.
`)
}
