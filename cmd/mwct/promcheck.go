package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/malleable-sched/malleable/internal/obs"
)

// runPromcheck implements `mwct promcheck`: strictly validate a Prometheus
// text exposition (format 0.0.4) from a file or stdin against the same
// parser the test suite uses, optionally requiring named families to be
// present. CI scrapes a live `mwct serve` and pipes the body through here,
// so a malformed exposition fails the build without a Prometheus server in
// the loop.
func runPromcheck(args []string) error {
	fs := flag.NewFlagSet("promcheck", flag.ExitOnError)
	input := fs.String("input", "-", "exposition file to validate (- = stdin)")
	var require stringList
	fs.Var(&require, "require", "metric family that must be present (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	fams, err := obs.ParseExposition(r)
	if err != nil {
		return fmt.Errorf("promcheck: %w", err)
	}
	for _, name := range require {
		fam := fams[name]
		if fam == nil {
			return fmt.Errorf("promcheck: required family %q missing", name)
		}
		if len(fam.Samples) == 0 {
			return fmt.Errorf("promcheck: required family %q has no samples", name)
		}
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("promcheck: valid exposition, %d families\n", len(names))
	for _, name := range names {
		fmt.Printf("  %-40s %s (%d samples)\n", name, fams[name].Type, len(fams[name].Samples))
	}
	return nil
}

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}
