package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/malleable-sched/malleable/internal/perf"
)

// noOverrides is the identity Overrides value the flag layer produces when
// neither -speedup nor -workers is given.
var noOverrides = perf.Overrides{Workers: -1}

func TestBenchReportWritesJSON(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var log bytes.Buffer
	if err := benchReport(&log, out, []string{"online-poisson"}, time.Millisecond, "", 0.25, noOverrides); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "online-poisson") {
		t.Errorf("log missing scenario line: %q", log.String())
	}
	rep, err := perf.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Scenario != "online-poisson" {
		t.Errorf("report = %+v", rep.Results)
	}
}

func TestBenchReportBaselineGate(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	baseline := filepath.Join(dir, "baseline.json")
	var log bytes.Buffer
	// First run becomes the baseline. Comparing a second run against it
	// exercises the gate plumbing; the threshold is deliberately huge (10 =
	// 1000%) because two tiny-budget timed runs can differ a lot on a noisy
	// machine (CI, race detector) and this test is about the wiring, not
	// about machine stability.
	if err := benchReport(&log, baseline, []string{"online-poisson"}, 5*time.Millisecond, "", 0.25, noOverrides); err != nil {
		t.Fatal(err)
	}
	if err := benchReport(&log, out, []string{"online-poisson"}, 5*time.Millisecond, baseline, 10, noOverrides); err != nil {
		t.Fatalf("self-comparison failed the gate: %v", err)
	}
	if !strings.Contains(log.String(), "no regression") {
		t.Errorf("log missing verdict: %q", log.String())
	}

	// A doctored baseline that claims far higher throughput must trip the
	// gate with a non-nil error naming the regression.
	base, err := perf.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Results {
		base.Results[i].TasksPerSec *= 100
	}
	doctored := filepath.Join(dir, "doctored.json")
	if err := perf.WriteFile(doctored, base); err != nil {
		t.Fatal(err)
	}
	log.Reset()
	err = benchReport(&log, out, []string{"online-poisson"}, time.Millisecond, doctored, 0.25, noOverrides)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("err = %v, want regression failure", err)
	}
	if !strings.Contains(log.String(), "REGRESSION") {
		t.Errorf("log missing REGRESSION line: %q", log.String())
	}
}

func TestBenchReportUnknownScenario(t *testing.T) {
	var log bytes.Buffer
	if err := benchReport(&log, os.DevNull, []string{"nope"}, time.Millisecond, "", 0.25, noOverrides); err == nil {
		t.Errorf("unknown scenario accepted")
	}
}

func TestBenchReportSpeedupOverride(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var log bytes.Buffer
	if err := benchReport(&log, out, []string{"online-poisson"}, time.Millisecond, "", 0.25, perf.Overrides{Speedup: "powerlaw:0.7", Workers: -1}); err != nil {
		t.Fatal(err)
	}
	rep, err := perf.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("report = %+v", rep.Results)
	}
	if err := benchReport(&log, out, nil, time.Millisecond, "", 0.25, perf.Overrides{Speedup: "bogus", Workers: -1}); err == nil {
		t.Errorf("bogus speedup override accepted")
	}
}

func TestBenchReportWorkersOverride(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var log bytes.Buffer
	// The override only applies to cluster scenarios; running one under a
	// forced worker count exercises the parallel coordinator through the
	// bench path end to end.
	if err := benchReport(&log, out, []string{"cluster-po2"}, time.Millisecond, "", 0.25, perf.Overrides{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	rep, err := perf.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Scenario != "cluster-po2" {
		t.Errorf("report = %+v", rep.Results)
	}
}
