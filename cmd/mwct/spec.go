package main

import "flag"

// defaultLoadtestSpec is the single source of the default load-test
// parameterization. `mwct loadtest`'s flag defaults and the spec an empty
// POST /v1/loadtest body implies are both built from it, so the CLI and the
// HTTP API cannot drift apart field by field. (The server trims Tasks down —
// a network default should be a probe, not a benchmark.)
func defaultLoadtestSpec() loadtestSpec {
	return loadtestSpec{
		Policy:  "wdeq",
		Class:   "uniform",
		Process: "poisson",
		Rate:    8,
		Burst:   4,
		Tasks:   10000,
		Shards:  4,
		P:       8,
		Seed:    1,
	}
}

// specFlags registers the workload/topology flags shared by every spec-driven
// subcommand on fs, with defaults drawn from def, and returns a builder that
// assembles the parsed values into a loadtestSpec. Subcommand-specific flags
// (-trace-out, -timeline, ...) stay with their subcommand; this is only the
// part that parameterizes the run itself.
func specFlags(fs *flag.FlagSet, def loadtestSpec) func() loadtestSpec {
	policy := fs.String("policy", def.Policy, "policy: wdeq, deq, weight-greedy, smith-ratio")
	class := fs.String("class", def.Class, "instance class for the task shapes (see `mwct gen`)")
	process := fs.String("process", def.Process, "arrival process: poisson or bursty")
	rate := fs.Float64("rate", def.Rate, "per-shard arrival rate (tasks per unit time)")
	burst := fs.Float64("burst", def.Burst, "mean burst size of the bursty process")
	tasks := fs.Int("n", def.Tasks, "total number of tasks across all shards")
	shards := fs.Int("shards", def.Shards, "number of concurrent engine shards")
	p := fs.Float64("p", def.P, "per-shard platform capacity (processors)")
	seed := fs.Int64("seed", def.Seed, "base random seed (per-shard seeds are derived; seeds the router RNG in cluster mode)")
	tenants := fs.String("tenants", def.Tenants, "tenant mix as name:weight:share,... (empty = single tenant)")
	tenantSkew := fs.Float64("tenant-skew", def.TenantSkew, "Zipf exponent reshaping the tenant shares (tenant i's share is divided by (i+1)^skew); 0 keeps them as configured")
	router := fs.String("router", def.Router, "cluster mode: dispatch ONE global arrival stream (rate is then fleet-wide) across the shards with this router: round-robin, hash-tenant, least-backlog, po2; empty keeps independent per-shard streams")
	workers := fs.Int("workers", def.Workers, "cluster coordinator worker count: >= 2 advances shards concurrently between dispatches with a byte-identical report (requires -router); 0 or 1 stays sequential")
	speculate := fs.Bool("speculate", def.Speculate, "run the parallel cluster coordinator optimistically: shards advance past dispatch times on checkpoints and mispredictions roll back, with a byte-identical report (requires -router and -workers >= 2; rollback counts go to the stderr perf footer)")
	stale := fs.Bool("stale", def.Stale, "run the cluster coordinator in stale-batched mode: the router reads fleet views published once per dispatch window instead of per dispatch, removing the per-dispatch barrier; deterministic at any -workers but a different schedule than exact routing (requires -router least-backlog or po2; view counts go to the stderr perf footer)")
	prefetch := fs.Bool("prefetch", def.Prefetch, "overlap arrival generation/trace decode with cluster execution on a producer goroutine; pure pipelining, byte-identical output (requires -router)")
	speedupSpec := fs.String("speedup", def.Speedup, "speedup model: linear, powerlaw[:alpha], amdahl[:sigma], platform:cap@t,... (empty = linear)")
	curveMin := fs.Float64("curve-min", def.CurveMin, "lower bound of per-task speedup-curve draws (0 with -curve-max 0 disables)")
	curveMax := fs.Float64("curve-max", def.CurveMax, "upper bound of per-task speedup-curve draws")
	stream := fs.Bool("stream", def.Stream, "stream arrivals through the engine (O(alive) memory; flow quantiles from a sketch) — required for very large -n")
	return func() loadtestSpec {
		return loadtestSpec{
			Policy:     *policy,
			Class:      *class,
			Process:    *process,
			Rate:       *rate,
			Burst:      *burst,
			Tasks:      *tasks,
			Shards:     *shards,
			P:          *p,
			Seed:       *seed,
			Tenants:    *tenants,
			TenantSkew: *tenantSkew,
			Router:     *router,
			Workers:    *workers,
			Speculate:  *speculate,
			Stale:      *stale,
			Prefetch:   *prefetch,
			Speedup:    *speedupSpec,
			CurveMin:   *curveMin,
			CurveMax:   *curveMax,
			Stream:     *stream,
		}
	}
}
