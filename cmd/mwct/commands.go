package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	malleable "github.com/malleable-sched/malleable"
	"github.com/malleable-sched/malleable/internal/baselines"
	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/exact"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/workload"
)

// runGen implements `mwct gen`.
func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	className := fs.String("class", "uniform", "instance class: uniform, constant-weight, constant-weight-volume, large-delta, unit-class, heterogeneous")
	n := fs.Int("n", 5, "number of tasks")
	p := fs.Float64("p", 2, "number of processors")
	count := fs.Int("count", 1, "number of instances to generate")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	class, err := workload.ParseClass(*className)
	if err != nil {
		return err
	}
	gen, err := workload.NewGenerator(class, *n, *p, *seed)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for i := 0; i < *count; i++ {
		if err := enc.Encode(gen.Next()); err != nil {
			return err
		}
	}
	return nil
}

// loadInstance reads a JSON instance from a file, or from stdin when the
// path is "-" or empty.
func loadInstance(path string) (*schedule.Instance, error) {
	var r io.Reader = os.Stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var inst schedule.Instance
	if err := json.NewDecoder(r).Decode(&inst); err != nil {
		return nil, fmt.Errorf("decoding instance: %w", err)
	}
	return &inst, nil
}

// runSolve implements `mwct solve`.
func runSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	algo := fs.String("algo", "best-greedy", "algorithm: wdeq, deq, smith-greedy, best-greedy, optimal, cmax, lateness, smith-sequential")
	input := fs.String("input", "-", "instance file (JSON), '-' for stdin")
	gantt := fs.Bool("gantt", false, "print an ASCII Gantt chart")
	integral := fs.Bool("integral", false, "also print the per-processor (integral) schedule")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := loadInstance(*input)
	if err != nil {
		return err
	}

	var s *schedule.ColumnSchedule
	switch *algo {
	case "wdeq":
		s, err = malleable.WDEQ(inst)
	case "deq":
		s, err = malleable.DEQ(inst)
	case "smith-greedy":
		var r *core.GreedyResult
		r, err = malleable.GreedySmith(inst)
		if err == nil {
			s = r.Schedule
		}
	case "best-greedy":
		var r *core.GreedyResult
		r, err = malleable.BestGreedy(inst, rand.New(rand.NewSource(1)), 64)
		if err == nil {
			s = r.Schedule
			fmt.Printf("best greedy order: %v\n", r.Order)
		}
	case "optimal":
		var r *exact.OrderSolution
		r, err = malleable.Optimal(inst)
		if err == nil {
			s = r.Schedule
			fmt.Printf("optimal completion order: %v\n", r.Order)
		}
	case "cmax":
		s, err = malleable.CmaxOptimal(inst)
	case "lateness":
		var lmax float64
		s, lmax, err = malleable.MinimizeMaxLateness(inst)
		if err == nil {
			fmt.Printf("optimal maximum lateness: %.6g\n", lmax)
		}
	case "smith-sequential":
		s, err = baselines.SmithSequential(inst)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}

	fmt.Print(s.FormatCompletionTable())
	fmt.Printf("lower bounds: A(I)=%.6g H(I)=%.6g\n", malleable.SquashedAreaBound(inst), malleable.HeightBound(inst))
	if *gantt {
		if err := s.RenderGantt(os.Stdout); err != nil {
			return err
		}
	}
	if *integral {
		pa, err := malleable.ToProcessorSchedule(s)
		if err != nil {
			return err
		}
		fmt.Println(pa.Summary())
		if *gantt {
			if err := pa.RenderGantt(os.Stdout); err != nil {
				return err
			}
		}
	}
	return nil
}

// runCompare implements `mwct compare`.
func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	input := fs.String("input", "-", "instance file (JSON), '-' for stdin")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := loadInstance(*input)
	if err != nil {
		return err
	}
	reference := malleable.LowerBound(inst)
	refName := "max(A, H) lower bound"
	if inst.N() <= exact.EnumerationLimit {
		if obj, err := malleable.OptimalObjective(inst); err == nil {
			reference = obj
			refName = "exact optimum"
		}
	}
	rows, err := baselines.CompareOnInstance(inst, reference)
	if err != nil {
		return err
	}
	fmt.Printf("reference (%s): %.6g\n", refName, reference)
	fmt.Printf("%-40s %14s %10s\n", "algorithm", "ΣwC", "ratio")
	for _, r := range rows {
		fmt.Printf("%-40s %14.6g %10.4f\n", r.Name, r.Objective, r.Ratio)
	}
	return nil
}

// runBandwidth implements `mwct bandwidth`.
func runBandwidth(args []string) error {
	fs := flag.NewFlagSet("bandwidth", flag.ExitOnError)
	workers := fs.Int("workers", 8, "number of workers")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return bandwidthScenarioReport(os.Stdout, *workers, *seed)
}

// runExperiment implements `mwct experiment`.
func runExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	name := fs.String("name", "all", "experiment to run: e1..e10, f1, or all")
	full := fs.Bool("full", false, "use the paper-scale sample counts (10,000 instances per size; slow)")
	instances := fs.Int("instances", 0, "override the number of instances per size")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return runExperimentByName(os.Stdout, strings.ToLower(*name), *full, *instances, *seed)
}
