package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPromcheck(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.txt")
	if err := os.WriteFile(good, []byte(
		"# HELP mwct_x_total A counter.\n# TYPE mwct_x_total counter\nmwct_x_total 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runPromcheck([]string{"-input", good, "-require", "mwct_x_total"}); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
	if err := runPromcheck([]string{"-input", good, "-require", "mwct_missing"}); err == nil {
		t.Error("missing required family accepted")
	}

	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("mwct_x_total not-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runPromcheck([]string{"-input", bad}); err == nil {
		t.Error("malformed exposition accepted")
	}
	if err := runPromcheck([]string{"-input", filepath.Join(dir, "absent.txt")}); err == nil {
		t.Error("unreadable input accepted")
	}
}
