package main

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/experiments"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/sim"
	"github.com/malleable-sched/malleable/internal/workload"
)

// renderable is the common surface of every experiment result.
type renderable interface {
	Render(w io.Writer) error
}

// runExperimentByName dispatches one (or all) of the paper's experiments.
func runExperimentByName(w io.Writer, name string, full bool, instances int, seed int64) error {
	cfg := experiments.DefaultConfig()
	if full {
		cfg = experiments.PaperConfig()
	}
	if instances > 0 {
		cfg.Instances = instances
	}
	cfg.Seed = seed

	type entry struct {
		id    string
		title string
		run   func() (renderable, error)
	}
	catalog := []entry{
		{"e1", "E1 — best greedy vs optimum, uniform instances (Section V-A)", func() (renderable, error) {
			return experiments.GreedyVsOptimal(cfg, workload.Uniform)
		}},
		{"e2", "E2 — best greedy vs optimum, constant weights (Section V-A)", func() (renderable, error) {
			return experiments.GreedyVsOptimal(cfg, workload.ConstantWeight)
		}},
		{"e3", "E3 — best greedy vs optimum, constant weights and volumes (Section V-A)", func() (renderable, error) {
			return experiments.GreedyVsOptimal(cfg, workload.ConstantWeightVolume)
		}},
		{"e4", "E4 — Conjecture 13: order-reversal invariance (exact rationals)", func() (renderable, error) {
			c := cfg
			c.Sizes = []int{3, 5, 8, 12, 15}
			if !full {
				c.Instances = min(cfg.Instances, 20)
			}
			return experiments.Conjecture13(c)
		}},
		{"e5", "E5 — optimal-order catalogue of Section V-B", func() (renderable, error) {
			c := cfg
			if !full {
				c.Instances = min(cfg.Instances, 20)
			}
			return experiments.OrderCatalogue(c)
		}},
		{"e6", "E6 — allocation changes and preemptions of the normal form (Theorems 9 & 10)", func() (renderable, error) {
			c := cfg
			c.Processors = 4
			c.Sizes = []int{4, 8, 16, 32}
			return experiments.Preemptions(c)
		}},
		{"e7", "E7 — WDEQ approximation ratio (Theorem 4)", func() (renderable, error) {
			return experiments.WDEQRatio(cfg)
		}},
		{"e8", "E8 — greedy dominance on the δ>P/2 class (Theorem 11)", func() (renderable, error) {
			c := cfg
			c.Processors = 2
			return experiments.GreedyDominance(c)
		}},
		{"e9", "E9 — Table I reproduction", func() (renderable, error) {
			c := cfg
			if !full {
				c.Instances = min(cfg.Instances, 10)
				c.Sizes = []int{2, 3, 4}
			}
			return experiments.TableI(c)
		}},
		{"e10", "E10 — Smith-order greedy vs optimum (open question of the conclusion)", func() (renderable, error) {
			return experiments.SmithRatio(cfg)
		}},
		{"f1", "F1 — bandwidth-sharing scenario (Figure 1)", func() (renderable, error) {
			c := cfg
			if !full {
				c.Instances = min(cfg.Instances, 20)
			}
			return experiments.Bandwidth(c, 8)
		}},
	}

	ran := false
	for _, e := range catalog {
		if name != "all" && name != e.id {
			continue
		}
		ran = true
		fmt.Fprintf(w, "=== %s ===\n", e.title)
		res, err := e.run()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.id, err)
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (expected e1..e10, f1 or all)", name)
	}
	return nil
}

// bandwidthScenarioReport runs one concrete Figure-1 scenario and prints the
// schedules and throughputs of the competing strategies.
func bandwidthScenarioReport(w io.Writer, workers int, seed int64) error {
	scenario, err := workload.NewBandwidthScenario(workers, seed)
	if err != nil {
		return err
	}
	inst, err := scenario.Instance()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "server bandwidth %.3g, horizon %.3g, %d workers\n",
		scenario.ServerBandwidth, scenario.Horizon, len(scenario.Workers))

	schedules := map[string]*schedule.ColumnSchedule{}
	wdeq, err := core.RunWDEQ(inst)
	if err != nil {
		return err
	}
	schedules["WDEQ (non-clairvoyant)"] = wdeq
	best, err := core.BestGreedy(inst, rand.New(rand.NewSource(seed)), 64)
	if err != nil {
		return err
	}
	schedules["best greedy (clairvoyant)"] = best.Schedule
	cmax, err := core.CmaxOptimal(inst)
	if err != nil {
		return err
	}
	schedules["fair stretch (Cmax-optimal)"] = cmax

	results, err := sim.CompareBandwidthStrategies(scenario, schedules)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-32s %18s %18s\n", "distribution strategy", "tasks by horizon", "Σ rate·C")
	for _, r := range results {
		fmt.Fprintf(w, "%-32s %18.4f %18.4f\n", r.Strategy, r.TasksProcessed, r.WeightedCompletionTime)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
