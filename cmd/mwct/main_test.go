package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExperimentByNameSingle(t *testing.T) {
	var buf bytes.Buffer
	if err := runExperimentByName(&buf, "e5", false, 2, 1); err != nil {
		t.Fatalf("e5: %v", err)
	}
	if !strings.Contains(buf.String(), "Optimal-order catalogue") {
		t.Errorf("missing E5 output: %q", buf.String())
	}
}

func TestRunExperimentByNameUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := runExperimentByName(&buf, "e99", false, 1, 1); err == nil {
		t.Errorf("unknown experiment accepted")
	}
}

func TestRunExperimentByNameSelection(t *testing.T) {
	// Each id must be reachable; use a tiny sample so the test stays fast.
	for _, id := range []string{"e4", "e6", "e10"} {
		var buf bytes.Buffer
		if err := runExperimentByName(&buf, id, false, 1, 3); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

func TestBandwidthScenarioReport(t *testing.T) {
	var buf bytes.Buffer
	if err := bandwidthScenarioReport(&buf, 5, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "best greedy") || !strings.Contains(out, "tasks by horizon") {
		t.Errorf("unexpected report: %q", out)
	}
}

func TestLoadInstanceFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inst.json")
	payload := `{"processors": 2, "tasks": [{"weight": 1, "volume": 2, "delta": 1}]}`
	if err := os.WriteFile(path, []byte(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	inst, err := loadInstance(path)
	if err != nil {
		t.Fatal(err)
	}
	if inst.N() != 1 || inst.P != 2 {
		t.Errorf("instance = %+v", inst)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"processors": 0, "tasks": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadInstance(bad); err == nil {
		t.Errorf("invalid instance accepted")
	}
	if _, err := loadInstance(filepath.Join(dir, "missing.json")); err == nil {
		t.Errorf("missing file accepted")
	}
}

func TestMinHelper(t *testing.T) {
	if min(2, 3) != 2 || min(5, 1) != 1 {
		t.Errorf("min helper broken")
	}
}
