package main

import (
	"bytes"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/malleable-sched/malleable/internal/obs"
)

// runLoadtestQuiet drives the flag-level entry point with stdout redirected
// to /dev/null — the report itself is covered elsewhere; these tests are
// about the side-channel files.
func runLoadtestQuiet(t *testing.T, args ...string) error {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	old := os.Stdout
	os.Stdout = devnull
	defer func() { os.Stdout = old }()
	return runLoadtest(args)
}

// `mwct loadtest -timeline` on a single streamed shard emits at least one
// sample per crossed interval, and the file round-trips through the reader.
func TestLoadtestTimelineSingleShard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timeline.jsonl")
	err := runLoadtestQuiet(t,
		"-n", "2000", "-shards", "1", "-stream", "-rate", "20",
		"-timeline", path, "-timeline-interval", "2", "-mem=false")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadTimeline(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty timeline")
	}
	last := recs[len(recs)-1]
	if !last.Done || last.Backlog != 0 || last.Completed != 2000 {
		t.Fatalf("terminal record %+v, want done with 2000 completed", last)
	}
	// At least one sample per crossed 2-unit grid cell over the makespan.
	if want := int(math.Floor(last.T / 2)); len(recs) < want {
		t.Fatalf("%d samples over makespan %g at interval 2, want >= %d", len(recs), last.T, want)
	}
	for i, rec := range recs {
		if rec.Admitted != rec.Completed+rec.Backlog {
			t.Fatalf("record %d inconsistent: %+v", i, rec)
		}
		if i > 0 && rec.T < recs[i-1].T {
			t.Fatalf("record %d time went backwards", i)
		}
	}
	if last.P99Flow <= 0 {
		t.Fatalf("terminal p99 flow = %g, want > 0", last.P99Flow)
	}
}

// The same flag in cluster mode records fleet-wide samples with the shard
// count and dispatch totals.
func TestLoadtestTimelineCluster(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timeline.jsonl")
	err := runLoadtestQuiet(t,
		"-n", "2000", "-shards", "3", "-router", "least-backlog", "-rate", "40",
		"-timeline", path, "-timeline-interval", "5", "-mem=false")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadTimeline(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("want several fleet samples, got %d", len(recs))
	}
	for i, rec := range recs {
		if rec.Shards != 3 {
			t.Fatalf("record %d shards = %d, want 3", i, rec.Shards)
		}
	}
	last := recs[len(recs)-1]
	if !last.Done || last.Dispatched != 2000 || last.Completed != 2000 {
		t.Fatalf("terminal record %+v, want done with 2000 dispatched and completed", last)
	}
}

// Observation must not perturb the run: the observed single-shard path
// reproduces the plain streaming driver's report byte for byte.
func TestLoadtestTimelineDoesNotPerturbRun(t *testing.T) {
	spec := testSpec()
	spec.Shards = 1
	spec.Stream = true
	spec.Tasks = 800
	render := func(obsv loadtestObservers) string {
		res, tenants, err := runLoadtestSpecWrapped(spec, nil, obsv)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		renderLoadResult(&buf, spec, res, tenants)
		return buf.String()
	}
	plain := render(loadtestObservers{})
	tl := obs.NewTimeline(io.Discard, 1)
	observed := render(loadtestObservers{probe: tl, probeInterval: 1, sink: tl, fleetProbe: tl})
	if plain != observed {
		t.Fatalf("observed run diverged from plain run:\n%s\nvs\n%s", plain, observed)
	}
	if tl.Records() == 0 {
		t.Fatal("timeline observed nothing")
	}
}

// The timeline flag rejects shapes without a single observable timeline,
// mirroring -trace-out.
func TestLoadtestTimelineValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timeline.jsonl")
	cases := map[string][]string{
		"no -stream":       {"-n", "100", "-shards", "1", "-timeline", path},
		"multi-shard":      {"-n", "100", "-shards", "2", "-stream", "-timeline", path},
		"with -trace-in":   {"-trace-in", path, "-timeline", path},
		"negative spacing": {"-n", "100", "-shards", "1", "-stream", "-timeline", path, "-timeline-interval", "-1"},
	}
	for name, args := range cases {
		if err := runLoadtestQuiet(t, append(args, "-mem=false")...); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// The perf footer reports GC cycles and honors the heap-sample interval
// (including 0 = disabled).
func TestMemReportFooter(t *testing.T) {
	for _, interval := range []time.Duration{0, time.Millisecond} {
		var buf bytes.Buffer
		err := memReport(&buf, interval, func() (int, error) {
			waste := make([][]byte, 0, 64)
			for i := 0; i < 64; i++ {
				waste = append(waste, make([]byte, 1<<20))
			}
			_ = waste
			return 1000, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		for _, field := range []string{"gc-cycles=", "peak-heap=", "tasks/sec=", "allocs/task="} {
			if !strings.Contains(out, field) {
				t.Fatalf("interval %v: footer missing %q: %s", interval, field, out)
			}
		}
	}
}
