package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/malleable-sched/malleable/internal/engine"
	"github.com/malleable-sched/malleable/internal/workload"
)

func testSpec() loadtestSpec {
	return loadtestSpec{
		Policy:  "wdeq",
		Class:   "uniform",
		Process: "poisson",
		Rate:    8,
		Burst:   4,
		Tasks:   400,
		Shards:  4,
		P:       8,
		Seed:    1,
	}
}

// The determinism contract of the acceptance criteria: the same spec must
// render a byte-identical report.
func TestLoadtestReportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := loadtestReport(&a, testSpec()); err != nil {
		t.Fatal(err)
	}
	if err := loadtestReport(&b, testSpec()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("reports differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{"loadtest: policy=WDEQ", "shard 3:", "aggregate: tasks=400", "flow: n=400", "tenant default:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report misses %q:\n%s", want, out)
		}
	}
}

func TestLoadtestReportTenantsAndPolicies(t *testing.T) {
	spec := testSpec()
	spec.Tenants = "gold:4:0.2,bronze:1:0.8"
	spec.Process = "bursty"
	for _, policy := range []string{"deq", "weight-greedy", "smith-ratio"} {
		spec.Policy = policy
		var buf bytes.Buffer
		if err := loadtestReport(&buf, spec); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !strings.Contains(buf.String(), "tenant gold:") || !strings.Contains(buf.String(), "tenant bronze:") {
			t.Errorf("%s: missing tenant rows:\n%s", policy, buf.String())
		}
	}
}

func TestLoadtestSpecValidation(t *testing.T) {
	for name, mutate := range map[string]func(*loadtestSpec){
		"bad policy":  func(s *loadtestSpec) { s.Policy = "nope" },
		"bad class":   func(s *loadtestSpec) { s.Class = "nope" },
		"bad process": func(s *loadtestSpec) { s.Process = "nope" },
		"bad tenants": func(s *loadtestSpec) { s.Tenants = "gold" },
		"zero tasks":  func(s *loadtestSpec) { s.Tasks = 0 },
		"zero shards": func(s *loadtestSpec) { s.Shards = 0 },
		"zero rate":   func(s *loadtestSpec) { s.Rate = 0 },
	} {
		spec := testSpec()
		mutate(&spec)
		if _, _, err := runLoadtestSpec(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestServeHealthz(t *testing.T) {
	srv := httptest.NewServer(newServeMux(false))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
}

func TestServeSolve(t *testing.T) {
	srv := httptest.NewServer(newServeMux(false))
	defer srv.Close()
	body := `{"processors": 2, "tasks": [{"weight": 1, "volume": 2, "delta": 1}, {"weight": 2, "volume": 1, "delta": 2}]}`
	resp, err := http.Post(srv.URL+"/v1/solve?algo=wdeq", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d", resp.StatusCode)
	}
	var out struct {
		Algorithm   string    `json:"algorithm"`
		Objective   float64   `json:"objective"`
		Completions []float64 `json:"completions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "wdeq" || out.Objective <= 0 || len(out.Completions) != 2 {
		t.Errorf("solve response = %+v", out)
	}

	bad, err := http.Post(srv.URL+"/v1/solve?algo=nope", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown algo status = %d, want 400", bad.StatusCode)
	}
}

func TestServeLoadtest(t *testing.T) {
	srv := httptest.NewServer(newServeMux(false))
	defer srv.Close()
	spec, _ := json.Marshal(testSpec())
	resp, err := http.Post(srv.URL+"/v1/loadtest", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("loadtest status = %d", resp.StatusCode)
	}
	var out struct {
		Policy     string           `json:"policy"`
		TotalTasks int              `json:"totalTasks"`
		Throughput float64          `json:"throughput"`
		Shards     []map[string]any `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Policy != "WDEQ" || out.TotalTasks != 400 || out.Throughput <= 0 || len(out.Shards) != 4 {
		t.Errorf("loadtest response = %+v", out)
	}

	bad, err := http.Post(srv.URL+"/v1/loadtest", "application/json", strings.NewReader(`{"policy": "nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad policy status = %d, want 422", bad.StatusCode)
	}
}

// The -speedup selection must flow through the whole loadtest stack: every
// bundled model spec runs, appears in the report header, and stays
// deterministic; bad specs are rejected before any shard starts.
func TestLoadtestReportSpeedupModels(t *testing.T) {
	for _, spec := range []string{"", "linear", "powerlaw:0.7", "amdahl:0.15", "platform:8@0,4@20,8@40"} {
		s := testSpec()
		s.Speedup = spec
		if spec == "powerlaw:0.7" {
			s.CurveMin, s.CurveMax = 0.5, 0.9
		}
		var a, b bytes.Buffer
		if err := loadtestReport(&a, s); err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if err := loadtestReport(&b, s); err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%q: reports differ:\n%s\nvs\n%s", spec, a.String(), b.String())
		}
		want := "speedup=" + spec
		if spec == "" {
			want = "speedup=linear"
		}
		if !strings.Contains(a.String(), want) {
			t.Errorf("%q: header misses %q:\n%s", spec, want, a.String())
		}
	}
	bad := testSpec()
	bad.Speedup = "bogus"
	if _, _, err := runLoadtestSpec(bad); err == nil {
		t.Errorf("bogus speedup accepted")
	}
	badCurve := testSpec()
	badCurve.CurveMin, badCurve.CurveMax = 2, 1
	if _, _, err := runLoadtestSpec(badCurve); err == nil {
		t.Errorf("inverted curve range accepted")
	}
	// Curves outside the model's domain would be silently clamped into a
	// degenerate run; the spec must be rejected up front instead.
	clamped := testSpec()
	clamped.Speedup = "amdahl"
	clamped.CurveMin, clamped.CurveMax = 0.5, 1.5
	if _, _, err := runLoadtestSpec(clamped); err == nil {
		t.Errorf("out-of-domain curve range accepted for amdahl")
	}
}

// The streaming path must keep the determinism contract and agree with the
// slice path on every exactly-computed aggregate of the report.
func TestLoadtestReportStreamDeterministic(t *testing.T) {
	spec := testSpec()
	spec.Stream = true
	spec.Tenants = "gold:4:0.2,bronze:1:0.8"
	var a, b bytes.Buffer
	if err := loadtestReport(&a, spec); err != nil {
		t.Fatal(err)
	}
	if err := loadtestReport(&b, spec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("streaming reports differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{"stream=true", "aggregate: tasks=400", "quantiles from sketch", "tenant gold:", "tenant bronze:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stream report misses %q:\n%s", want, out)
		}
	}

	// The per-shard task/event counts must match the slice path exactly.
	slice := spec
	slice.Stream = false
	var c bytes.Buffer
	if err := loadtestReport(&c, slice); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "shard ") {
			if !strings.Contains(c.String(), line) {
				t.Errorf("stream shard line %q absent from slice report:\n%s", line, c.String())
			}
		}
	}
}

// Recording a stream to JSONL and replaying it must drive the same workload
// through the engine: identical shard aggregates.
func TestLoadtestTraceRecordReplay(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")

	spec := testSpec()
	spec.Stream = true
	spec.Shards = 1
	spec.Tasks = 300

	// Record: run with a teeing wrapper, like `mwct loadtest -trace-out`.
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tee *teeStream
	res, _, err := runLoadtestSpecWrapped(spec, func(shard int, s engine.ArrivalStream) engine.ArrivalStream {
		tee = &teeStream{inner: s, tw: workload.NewTraceWriter(f)}
		return tee
	}, loadtestObservers{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tee.tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if tee.tw.Count() != spec.Tasks {
		t.Fatalf("recorded %d arrivals, want %d", tee.tw.Count(), spec.Tasks)
	}

	// Replay through the trace reader and compare the engine aggregates.
	in, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	var buf bytes.Buffer
	n, err := traceReplayReport(&buf, spec, in)
	if err != nil {
		t.Fatal(err)
	}
	if n != spec.Tasks {
		t.Fatalf("replayed %d tasks, want %d", n, spec.Tasks)
	}
	shard := res.Shards[0].Result
	want := fmt.Sprintf("aggregate: tasks=%d events=%d max-alive=%d makespan=%.6g weighted-flow=%.6g",
		shard.Completed, shard.Events, shard.MaxAlive, shard.Makespan, shard.WeightedFlow)
	if !strings.Contains(buf.String(), want) {
		t.Errorf("replay report misses %q:\n%s", want, buf.String())
	}
}

// /v1/metrics must accumulate across load tests: runs, tasks and mean flow
// come from the cumulative aggregate sink.
func TestServeMetricsAccumulate(t *testing.T) {
	srv := httptest.NewServer(newServeMux(false))
	defer srv.Close()

	readMetrics := func() (runs int, tasks int, meanFlow float64) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics status = %d", resp.StatusCode)
		}
		var out struct {
			Runs     int     `json:"runs"`
			Tasks    int     `json:"tasks"`
			MeanFlow float64 `json:"meanFlow"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Runs, out.Tasks, out.MeanFlow
	}

	if runs, tasks, _ := readMetrics(); runs != 0 || tasks != 0 {
		t.Fatalf("fresh server reports runs=%d tasks=%d", runs, tasks)
	}

	post := func(stream bool) {
		t.Helper()
		spec := testSpec()
		spec.Stream = stream
		body, _ := json.Marshal(spec)
		resp, err := http.Post(srv.URL+"/v1/loadtest", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("loadtest status = %d", resp.StatusCode)
		}
	}
	post(false)
	post(true) // one slice run, one streaming run: both must fold in
	runs, tasks, meanFlow := readMetrics()
	if runs != 2 || tasks != 800 || meanFlow <= 0 {
		t.Errorf("metrics after two runs: runs=%d tasks=%d meanFlow=%g", runs, tasks, meanFlow)
	}
}

// Cluster mode: every bundled router renders a byte-deterministic report
// carrying the router name and the imbalance line — the fixed-seed
// reproducibility criterion at the CLI surface.
func TestLoadtestReportClusterRouters(t *testing.T) {
	for _, router := range []string{"round-robin", "hash-tenant", "least-backlog", "po2"} {
		spec := testSpec()
		spec.Router = router
		spec.Tenants = "gold:4:0.25,silver:2:0.25,bronze:1:0.25,iron:1:0.25"
		spec.TenantSkew = 1.2
		spec.Rate = 40
		var a, b bytes.Buffer
		if err := loadtestReport(&a, spec); err != nil {
			t.Fatalf("%s: %v", router, err)
		}
		if err := loadtestReport(&b, spec); err != nil {
			t.Fatalf("%s: %v", router, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%s: cluster reports differ:\n%s\nvs\n%s", router, a.String(), b.String())
		}
		out := a.String()
		for _, want := range []string{
			"router=" + router, "tenant-skew=1.2", "stream=true",
			"aggregate: tasks=400", "imbalance: completed-min=", "peak-backlog=",
			"quantiles from sketch",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("%s: report misses %q:\n%s", router, want, out)
			}
		}
	}
	bad := testSpec()
	bad.Router = "nope"
	if _, _, err := runLoadtestSpec(bad); err == nil || !strings.Contains(err.Error(), "unknown router") {
		t.Errorf("unknown router error = %v", err)
	}
}

// One recorded trace must replay across a fleet of any shard count through
// the cluster coordinator, conserving the task total and staying
// byte-deterministic.
func TestLoadtestTraceReplayAcrossFleet(t *testing.T) {
	spec := testSpec()
	spec.Stream = true
	spec.Shards = 1
	spec.Tasks = 300

	var trace bytes.Buffer
	var tee *teeStream
	if _, _, err := runLoadtestSpecWrapped(spec, func(shard int, s engine.ArrivalStream) engine.ArrivalStream {
		tee = &teeStream{inner: s, tw: workload.NewTraceWriter(&trace)}
		return tee
	}, loadtestObservers{}); err != nil {
		t.Fatal(err)
	}
	if err := tee.tw.Flush(); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{2, 4} {
		replay := spec
		replay.Shards = shards
		replay.Router = "least-backlog"
		var a, b bytes.Buffer
		n, err := traceReplayReport(&a, replay, bytes.NewReader(trace.Bytes()))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if n != spec.Tasks {
			t.Fatalf("shards=%d: replayed %d tasks, want %d", shards, n, spec.Tasks)
		}
		if _, err := traceReplayReport(&b, replay, bytes.NewReader(trace.Bytes())); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("shards=%d: fleet replays differ:\n%s\nvs\n%s", shards, a.String(), b.String())
		}
		out := a.String()
		for _, want := range []string{"trace-replay", "router=least-backlog", "shard 1:", "imbalance: completed-min="} {
			if !strings.Contains(out, want) {
				t.Errorf("shards=%d: replay report misses %q:\n%s", shards, want, out)
			}
		}
	}
}

// -tenant-skew must visibly shift traffic toward the head tenant.
func TestLoadtestTenantSkewShiftsTraffic(t *testing.T) {
	headTasks := func(skew float64) int {
		spec := testSpec()
		spec.Tenants = "a:1:1,b:1:1,c:1:1,d:1:1"
		spec.TenantSkew = skew
		res, _, err := runLoadtestSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, tm := range res.PerTenant {
			if tm.Tenant == 0 {
				return tm.Tasks
			}
		}
		return 0
	}
	flat, skewed := headTasks(0), headTasks(2)
	// Equal shares give tenant 0 ~25%; skew 2 gives 1/(sum 1/k^2) ~ 70%.
	if skewed <= flat+flat/2 {
		t.Errorf("head tenant tasks: flat=%d skew2=%d — skew did not concentrate traffic", flat, skewed)
	}
}

// The serve endpoint must accept cluster specs and report the router and
// imbalance fields.
func TestServeLoadtestCluster(t *testing.T) {
	srv := httptest.NewServer(newServeMux(false))
	defer srv.Close()
	spec := testSpec()
	spec.Router = "po2"
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/loadtest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster loadtest status = %d", resp.StatusCode)
	}
	var out struct {
		Router            string `json:"router"`
		TotalTasks        int    `json:"totalTasks"`
		MinShardCompleted *int   `json:"minShardCompleted"`
		MaxShardCompleted *int   `json:"maxShardCompleted"`
		PeakBacklog       *int   `json:"peakBacklog"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Router != "po2" || out.TotalTasks != 400 ||
		out.MinShardCompleted == nil || out.MaxShardCompleted == nil || out.PeakBacklog == nil {
		t.Errorf("cluster response = %+v", out)
	}
	if *out.MinShardCompleted+*out.MaxShardCompleted > 2**out.MaxShardCompleted {
		t.Errorf("imbalance fields inconsistent: min=%d max=%d", *out.MinShardCompleted, *out.MaxShardCompleted)
	}
}

// A speculative cluster spec reports its misprediction cost in the response
// and mirrors it into the server's rollback counter; the scheduling results
// themselves are byte-identical to the conservative run's.
func TestServeLoadtestSpeculate(t *testing.T) {
	srv := httptest.NewServer(newServeMux(false))
	defer srv.Close()
	spec := testSpec()
	spec.Router = "least-backlog"
	spec.Workers = 2
	spec.Speculate = true
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/loadtest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("speculative loadtest status = %d", resp.StatusCode)
	}
	var out struct {
		Speculate    *bool `json:"speculate"`
		Rollbacks    *int  `json:"rollbacks"`
		WastedEvents *int  `json:"wastedEvents"`
		TotalTasks   int   `json:"totalTasks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Speculate == nil || !*out.Speculate || out.Rollbacks == nil || out.WastedEvents == nil || out.TotalTasks != 400 {
		t.Fatalf("speculative response = %+v", out)
	}
	if *out.Rollbacks < 0 || *out.WastedEvents < 0 {
		t.Errorf("negative misprediction cost: rollbacks=%d wasted=%d", *out.Rollbacks, *out.WastedEvents)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), fmt.Sprintf("mwct_cluster_rollbacks_total %d", *out.Rollbacks)) {
		t.Errorf("rollback counter not mirrored into /metrics:\n%s", text)
	}
}

// Cluster mode dispatches one global stream, so fewer tasks than shards is
// legal (unused shards drain empty); the per-shard minimum only applies to
// the independent-streams split.
func TestLoadtestClusterFewerTasksThanShards(t *testing.T) {
	spec := testSpec()
	spec.Router = "round-robin"
	spec.Shards = 8
	spec.Tasks = 3
	res, _, err := runLoadtestSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTasks != 3 || len(res.Shards) != 8 {
		t.Errorf("total=%d shards=%d, want 3 tasks over 8 shards", res.TotalTasks, len(res.Shards))
	}
	spec.Router = ""
	if _, _, err := runLoadtestSpec(spec); err == nil {
		t.Error("independent-streams split accepted fewer tasks than shards")
	}
}

// The cmd-layer face of the parallel coordinator's contract: the rendered
// report — header aside — must be byte-identical at every worker count.
func TestLoadtestReportWorkersByteIdentical(t *testing.T) {
	spec := testSpec()
	spec.Tenants = "gold:4:0.5,bronze:1:0.5"
	spec.TenantSkew = 1.2
	spec.Router = "least-backlog"
	body := func(workers int) string {
		spec.Workers = workers
		var buf bytes.Buffer
		if err := loadtestReport(&buf, spec); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Drop the header line: it legitimately names the worker count.
		_, rest, ok := strings.Cut(buf.String(), "\n")
		if !ok {
			t.Fatalf("workers=%d: report has no body:\n%s", workers, buf.String())
		}
		return rest
	}
	sequential := body(0)
	for _, workers := range []int{1, 3, 8} {
		if got := body(workers); got != sequential {
			t.Errorf("workers=%d report diverges from sequential:\n%s\nvs\n%s", workers, got, sequential)
		}
	}
	// The speculative coordinator honors the same stdout contract: only the
	// header names the mode, the body is byte-identical.
	spec.Speculate = true
	for _, workers := range []int{2, 4} {
		if got := body(workers); got != sequential {
			t.Errorf("speculate workers=%d report diverges from sequential:\n%s\nvs\n%s", workers, got, sequential)
		}
	}
	spec.Workers = 4
	var buf bytes.Buffer
	if err := loadtestReport(&buf, spec); err != nil {
		t.Fatal(err)
	}
	header, _, _ := strings.Cut(buf.String(), "\n")
	if !strings.Contains(header, "speculate=true") {
		t.Errorf("speculative header does not name the mode: %q", header)
	}
	spec.Speculate = false
	if !strings.Contains(sequential, "aggregate: tasks=400") {
		t.Errorf("report body looks wrong:\n%s", sequential)
	}
}

func TestLoadtestWorkersNeedRouter(t *testing.T) {
	spec := testSpec()
	spec.Workers = 4
	if _, _, err := runLoadtestSpec(spec); err == nil || !strings.Contains(err.Error(), "-router") {
		t.Errorf("workers without router: err = %v, want a -router hint", err)
	}
	spec = testSpec()
	spec.Speculate = true
	if _, _, err := runLoadtestSpec(spec); err == nil || !strings.Contains(err.Error(), "-router") {
		t.Errorf("speculate without router: err = %v, want a -router hint", err)
	}
}

// The serve-side default worker count applies only to routed specs that left
// "workers" unset, and never changes the response bytes.
func TestServeLoadtestDefaultWorkers(t *testing.T) {
	post := func(srv *httptest.Server, spec loadtestSpec) map[string]any {
		t.Helper()
		body, _ := json.Marshal(spec)
		resp, err := http.Post(srv.URL+"/v1/loadtest", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("loadtest status = %d", resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := httptest.NewServer(newServeMux(false))
	defer seq.Close()
	par := httptest.NewServer(newServeMuxWorkers(false, 4))
	defer par.Close()

	routed := testSpec()
	routed.Router = "round-robin"
	a, _ := json.Marshal(post(seq, routed))
	b, _ := json.Marshal(post(par, routed))
	if string(a) != string(b) {
		t.Errorf("default workers changed a routed response:\n%s\nvs\n%s", a, b)
	}

	// A router-less spec must not inherit the default (it would be rejected).
	plain := testSpec()
	if out := post(par, plain); out["totalTasks"] == nil {
		t.Errorf("unrouted spec on a -workers server failed: %v", out)
	}
}
