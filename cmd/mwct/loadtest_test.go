package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testSpec() loadtestSpec {
	return loadtestSpec{
		Policy:  "wdeq",
		Class:   "uniform",
		Process: "poisson",
		Rate:    8,
		Burst:   4,
		Tasks:   400,
		Shards:  4,
		P:       8,
		Seed:    1,
	}
}

// The determinism contract of the acceptance criteria: the same spec must
// render a byte-identical report.
func TestLoadtestReportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := loadtestReport(&a, testSpec()); err != nil {
		t.Fatal(err)
	}
	if err := loadtestReport(&b, testSpec()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("reports differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{"loadtest: policy=WDEQ", "shard 3:", "aggregate: tasks=400", "flow: n=400", "tenant default:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report misses %q:\n%s", want, out)
		}
	}
}

func TestLoadtestReportTenantsAndPolicies(t *testing.T) {
	spec := testSpec()
	spec.Tenants = "gold:4:0.2,bronze:1:0.8"
	spec.Process = "bursty"
	for _, policy := range []string{"deq", "weight-greedy", "smith-ratio"} {
		spec.Policy = policy
		var buf bytes.Buffer
		if err := loadtestReport(&buf, spec); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !strings.Contains(buf.String(), "tenant gold:") || !strings.Contains(buf.String(), "tenant bronze:") {
			t.Errorf("%s: missing tenant rows:\n%s", policy, buf.String())
		}
	}
}

func TestLoadtestSpecValidation(t *testing.T) {
	for name, mutate := range map[string]func(*loadtestSpec){
		"bad policy":  func(s *loadtestSpec) { s.Policy = "nope" },
		"bad class":   func(s *loadtestSpec) { s.Class = "nope" },
		"bad process": func(s *loadtestSpec) { s.Process = "nope" },
		"bad tenants": func(s *loadtestSpec) { s.Tenants = "gold" },
		"zero tasks":  func(s *loadtestSpec) { s.Tasks = 0 },
		"zero shards": func(s *loadtestSpec) { s.Shards = 0 },
		"zero rate":   func(s *loadtestSpec) { s.Rate = 0 },
	} {
		spec := testSpec()
		mutate(&spec)
		if _, _, err := runLoadtestSpec(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestServeHealthz(t *testing.T) {
	srv := httptest.NewServer(newServeMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
}

func TestServeSolve(t *testing.T) {
	srv := httptest.NewServer(newServeMux())
	defer srv.Close()
	body := `{"processors": 2, "tasks": [{"weight": 1, "volume": 2, "delta": 1}, {"weight": 2, "volume": 1, "delta": 2}]}`
	resp, err := http.Post(srv.URL+"/v1/solve?algo=wdeq", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d", resp.StatusCode)
	}
	var out struct {
		Algorithm   string    `json:"algorithm"`
		Objective   float64   `json:"objective"`
		Completions []float64 `json:"completions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "wdeq" || out.Objective <= 0 || len(out.Completions) != 2 {
		t.Errorf("solve response = %+v", out)
	}

	bad, err := http.Post(srv.URL+"/v1/solve?algo=nope", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown algo status = %d, want 400", bad.StatusCode)
	}
}

func TestServeLoadtest(t *testing.T) {
	srv := httptest.NewServer(newServeMux())
	defer srv.Close()
	spec, _ := json.Marshal(testSpec())
	resp, err := http.Post(srv.URL+"/v1/loadtest", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("loadtest status = %d", resp.StatusCode)
	}
	var out struct {
		Policy     string           `json:"policy"`
		TotalTasks int              `json:"totalTasks"`
		Throughput float64          `json:"throughput"`
		Shards     []map[string]any `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Policy != "WDEQ" || out.TotalTasks != 400 || out.Throughput <= 0 || len(out.Shards) != 4 {
		t.Errorf("loadtest response = %+v", out)
	}

	bad, err := http.Post(srv.URL+"/v1/loadtest", "application/json", strings.NewReader(`{"policy": "nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad policy status = %d, want 422", bad.StatusCode)
	}
}

// The -speedup selection must flow through the whole loadtest stack: every
// bundled model spec runs, appears in the report header, and stays
// deterministic; bad specs are rejected before any shard starts.
func TestLoadtestReportSpeedupModels(t *testing.T) {
	for _, spec := range []string{"", "linear", "powerlaw:0.7", "amdahl:0.15", "platform:8@0,4@20,8@40"} {
		s := testSpec()
		s.Speedup = spec
		if spec == "powerlaw:0.7" {
			s.CurveMin, s.CurveMax = 0.5, 0.9
		}
		var a, b bytes.Buffer
		if err := loadtestReport(&a, s); err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if err := loadtestReport(&b, s); err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%q: reports differ:\n%s\nvs\n%s", spec, a.String(), b.String())
		}
		want := "speedup=" + spec
		if spec == "" {
			want = "speedup=linear"
		}
		if !strings.Contains(a.String(), want) {
			t.Errorf("%q: header misses %q:\n%s", spec, want, a.String())
		}
	}
	bad := testSpec()
	bad.Speedup = "bogus"
	if _, _, err := runLoadtestSpec(bad); err == nil {
		t.Errorf("bogus speedup accepted")
	}
	badCurve := testSpec()
	badCurve.CurveMin, badCurve.CurveMax = 2, 1
	if _, _, err := runLoadtestSpec(badCurve); err == nil {
		t.Errorf("inverted curve range accepted")
	}
	// Curves outside the model's domain would be silently clamped into a
	// degenerate run; the spec must be rejected up front instead.
	clamped := testSpec()
	clamped.Speedup = "amdahl"
	clamped.CurveMin, clamped.CurveMax = 0.5, 1.5
	if _, _, err := runLoadtestSpec(clamped); err == nil {
		t.Errorf("out-of-domain curve range accepted for amdahl")
	}
}
