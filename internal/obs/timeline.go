package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"github.com/malleable-sched/malleable/internal/cluster"
	"github.com/malleable-sched/malleable/internal/engine"
	"github.com/malleable-sched/malleable/internal/stats"
)

// TimelineRecord is one sampled point of a run's evolution over virtual
// time — the JSONL row a Timeline emits and ReadTimeline parses back.
type TimelineRecord struct {
	// T is the virtual time of the sample.
	T float64 `json:"t"`
	// Shards is the fleet width the sample describes (1 for single-engine
	// runs).
	Shards int `json:"shards"`
	// Backlog is the alive-task count at T (fleet-wide for cluster runs).
	Backlog int `json:"backlog"`
	// Admitted counts admitted arrivals at T. Cluster samples report
	// completed+backlog, which equals admissions at the coordinator's rest
	// state.
	Admitted int `json:"admitted"`
	// Completed counts retired tasks at T.
	Completed int `json:"completed"`
	// Events counts kernel events at T (0 for cluster samples — the
	// coordinator's dispatch trigger is not a kernel event count).
	Events int `json:"events"`
	// Dispatched counts routed arrivals at T (0 for single-engine runs).
	Dispatched int `json:"dispatched"`
	// Allocated is the capacity allocated at T (summed across shards).
	Allocated float64 `json:"allocated"`
	// Throughput is Completed/T (0 at T=0).
	Throughput float64 `json:"throughput"`
	// MeanFlow is the mean flow time of tasks completed so far, as observed
	// through the recorder's sink (0 if the recorder is not wired as one).
	MeanFlow float64 `json:"mean_flow"`
	// P99Flow is the 0.99 flow quantile so far, from the recorder's sketch
	// (0 if the recorder is not wired as a sink).
	P99Flow float64 `json:"p99_flow"`
	// Done marks the run's terminal sample.
	Done bool `json:"done"`
}

// Timeline records a run's trajectory as JSON Lines: one TimelineRecord per
// sample, written with a reused buffer and strconv appends so steady-state
// recording allocates nothing (given an allocation-free io.Writer).
//
// A Timeline is three observers in one, wired per run shape:
//
//   - engine.Probe: attach via engine.Options.Probe (with ProbeInterval or
//     ProbeEveryEvents thinning upstream) — every delivered snapshot is
//     recorded, and the run's Done snapshot always lands.
//   - cluster.Probe: attach via cluster.Config.Probe; set Interval to thin
//     on the virtual-time grid (the coordinator observes per dispatch).
//   - engine.MetricSink: attach via the run's sink (engine.MultiSink) so
//     samples carry mean and p99 flow; optional — without it those fields
//     read 0.
//
// Not safe for concurrent use: all three interfaces are invoked from the
// single engine/coordinator goroutine, like every sink and probe. Call
// Close after the run to flush the terminal fleet sample and surface any
// write error.
type Timeline struct {
	// Interval thins fleet observations to one sample per crossing of each
	// multiple of Interval in virtual time; 0 records every observation.
	// Engine snapshots are expected to be thinned upstream by the engine's
	// own probe intervals and are always recorded.
	Interval float64

	w       io.Writer
	buf     []byte
	err     error
	nextT   float64
	records int

	flowCount int
	flowSum   float64
	sketch    *stats.QuantileSketch

	haveFleet bool
	last      TimelineRecord
	doneSeen  bool
	everWrote bool
}

// NewTimeline returns a recorder writing JSONL to w, sampling fleet
// observations every interval units of virtual time (0 = every
// observation).
func NewTimeline(w io.Writer, interval float64) *Timeline {
	return &Timeline{
		Interval: interval,
		w:        w,
		buf:      make([]byte, 0, 256),
		sketch:   stats.NewQuantileSketch(stats.DefaultSketchAlpha),
	}
}

// Observe implements engine.MetricSink: it feeds the recorder's flow
// statistics so samples can carry mean and p99 flow.
func (t *Timeline) Observe(m engine.TaskMetrics) {
	t.flowCount++
	t.flowSum += m.Flow
	t.sketch.Add(m.Flow)
}

// ObserveSnapshot implements engine.Probe.
func (t *Timeline) ObserveSnapshot(s engine.Snapshot) {
	rec := TimelineRecord{
		T:          s.Now,
		Shards:     1,
		Backlog:    s.Backlog,
		Admitted:   s.Admitted,
		Completed:  s.Completed,
		Events:     s.Events,
		Allocated:  s.Allocated,
		Throughput: s.Throughput(),
		Done:       s.Done,
	}
	t.fillFlow(&rec)
	if s.Done {
		t.doneSeen = true
		t.write(&rec)
		return
	}
	if t.Interval > 0 && s.Now < t.nextT && t.everWrote {
		return
	}
	t.advance(s.Now)
	t.write(&rec)
}

// ObserveFleet implements cluster.Probe. Every observation is retained as
// the terminal candidate so Close always lands the drained endpoint as a
// Done record, whatever the thinning.
func (t *Timeline) ObserveFleet(now float64, shards []cluster.ShardState) {
	rec := TimelineRecord{T: now, Shards: len(shards)}
	for i := range shards {
		s := &shards[i]
		rec.Backlog += s.Backlog
		rec.Completed += s.Completed
		rec.Dispatched += s.Dispatched
		rec.Allocated += s.Allocated
	}
	rec.Admitted = rec.Backlog + rec.Completed
	if now > 0 {
		rec.Throughput = float64(rec.Completed) / now
	}
	t.fillFlow(&rec)
	t.last = rec
	t.haveFleet = true
	if t.Interval > 0 && now < t.nextT && t.everWrote {
		return
	}
	t.advance(now)
	t.write(&rec)
}

// Close emits the last fleet observation as the terminal Done record (the
// coordinator cannot mark its own final call, so the recorder does) and
// returns the first write error, if any. For engine runs the Done snapshot
// has already been recorded and Close only reports errors.
func (t *Timeline) Close() error {
	if t.haveFleet && !t.doneSeen {
		t.doneSeen = true
		t.last.Done = true
		t.write(&t.last)
	}
	return t.err
}

// Records returns the number of samples written so far.
func (t *Timeline) Records() int { return t.records }

func (t *Timeline) fillFlow(rec *TimelineRecord) {
	if t.flowCount == 0 {
		return
	}
	rec.MeanFlow = t.flowSum / float64(t.flowCount)
	if p := t.sketch.Quantile(0.99); !math.IsNaN(p) {
		rec.P99Flow = p
	}
}

func (t *Timeline) advance(now float64) {
	if t.Interval > 0 && now >= t.nextT {
		t.nextT = t.Interval * (math.Floor(now/t.Interval) + 1)
	}
}

// write renders the record into the reused buffer and emits one line.
func (t *Timeline) write(rec *TimelineRecord) {
	if t.err != nil {
		return
	}
	b := t.buf[:0]
	b = append(b, `{"t":`...)
	b = appendJSONFloat(b, rec.T)
	b = append(b, `,"shards":`...)
	b = strconv.AppendInt(b, int64(rec.Shards), 10)
	b = append(b, `,"backlog":`...)
	b = strconv.AppendInt(b, int64(rec.Backlog), 10)
	b = append(b, `,"admitted":`...)
	b = strconv.AppendInt(b, int64(rec.Admitted), 10)
	b = append(b, `,"completed":`...)
	b = strconv.AppendInt(b, int64(rec.Completed), 10)
	b = append(b, `,"events":`...)
	b = strconv.AppendInt(b, int64(rec.Events), 10)
	b = append(b, `,"dispatched":`...)
	b = strconv.AppendInt(b, int64(rec.Dispatched), 10)
	b = append(b, `,"allocated":`...)
	b = appendJSONFloat(b, rec.Allocated)
	b = append(b, `,"throughput":`...)
	b = appendJSONFloat(b, rec.Throughput)
	b = append(b, `,"mean_flow":`...)
	b = appendJSONFloat(b, rec.MeanFlow)
	b = append(b, `,"p99_flow":`...)
	b = appendJSONFloat(b, rec.P99Flow)
	b = append(b, `,"done":`...)
	b = strconv.AppendBool(b, rec.Done)
	b = append(b, '}', '\n')
	t.buf = b
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	t.records++
	t.everWrote = true
}

// appendJSONFloat renders a float as JSON (non-finite values, which JSON
// cannot carry, degrade to 0 — they cannot arise from a well-formed run).
func appendJSONFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, '0')
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// ReadTimeline parses a JSONL timeline back into records — the reader half
// of the round-trip, used by tests and analysis tooling.
func ReadTimeline(r io.Reader) ([]TimelineRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []TimelineRecord
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec TimelineRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("obs: timeline line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: timeline: %w", err)
	}
	return out, nil
}
