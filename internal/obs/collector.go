package obs

import (
	"strconv"

	"github.com/malleable-sched/malleable/internal/cluster"
	"github.com/malleable-sched/malleable/internal/engine"
)

// EngineCollector is an engine.Probe that mirrors each rest-state snapshot
// into registry metrics: gauges for the instantaneous view (virtual time,
// backlog, allocation, derived throughput and mean flow), counters for the
// monotone run totals (admitted, completed, events, cumulative flow sums).
// Every update is a handful of atomic stores — no map lookups, no
// formatting, no allocation — so a collector may observe every event of a
// zero-alloc run without costing it the property.
//
// One collector may be shared across concurrent shards (updates are atomic);
// the instantaneous gauges then carry last-writer-wins shard views while the
// counters remain per-shard monotone mirrors only if each shard has its own
// collector. Prefer one collector per run and the ClusterCollector for
// fleets.
type EngineCollector struct {
	virtualTime *Gauge
	backlog     *Gauge
	allocated   *Gauge
	maxAlive    *Gauge
	throughput  *Gauge
	meanFlow    *Gauge
	runsDone    *Counter

	admitted     *Counter
	completed    *Counter
	events       *Counter
	totalFlow    *Counter
	weightedFlow *Counter
}

// NewEngineCollector registers the engine metric family (prefix
// "mwct_engine_") in r and returns the collector.
func NewEngineCollector(r *Registry) *EngineCollector {
	return &EngineCollector{
		virtualTime: r.Gauge("mwct_engine_virtual_time", "Virtual time of the most recent rest-state snapshot."),
		backlog:     r.Gauge("mwct_engine_backlog", "Alive (admitted, unfinished) tasks at the snapshot."),
		allocated:   r.Gauge("mwct_engine_allocated", "Capacity allocated by the current policy decision."),
		maxAlive:    r.Gauge("mwct_engine_max_alive", "Peak backlog observed so far in the run."),
		throughput:  r.Gauge("mwct_engine_throughput", "Completed tasks per unit virtual time so far."),
		meanFlow:    r.Gauge("mwct_engine_mean_flow", "Mean flow time of the tasks completed so far."),
		runsDone:    r.Counter("mwct_engine_runs_completed_total", "Probed runs that reached their final Done snapshot."),
		admitted:    r.Counter("mwct_engine_admitted_total", "Arrivals admitted to the scheduler."),
		completed:   r.Counter("mwct_engine_completed_total", "Tasks retired by the scheduler."),
		events:      r.Counter("mwct_engine_events_total", "Policy invocations (kernel events) processed."),
		totalFlow:   r.Counter("mwct_engine_flow_total", "Sum of flow times over completed tasks."),
		weightedFlow: r.Counter("mwct_engine_weighted_flow_total",
			"Sum of weight-scaled flow times over completed tasks."),
	}
}

// ObserveSnapshot implements engine.Probe.
func (c *EngineCollector) ObserveSnapshot(s engine.Snapshot) {
	c.virtualTime.Set(s.Now)
	c.backlog.Set(float64(s.Backlog))
	c.allocated.Set(s.Allocated)
	c.maxAlive.Set(float64(s.MaxAlive))
	c.throughput.Set(s.Throughput())
	c.meanFlow.Set(s.MeanFlow())
	c.admitted.Set(float64(s.Admitted))
	c.completed.Set(float64(s.Completed))
	c.events.Set(float64(s.Events))
	c.totalFlow.Set(s.TotalFlow)
	c.weightedFlow.Set(s.WeightedFlow)
	if s.Done {
		c.runsDone.Inc()
	}
}

// FlowSink is an engine.MetricSink publishing per-task flow times as a
// Prometheus summary (quantiles from a mergeable sketch, exact sum and
// count). Observations lock a mutex but never allocate, so the sink
// composes with zero-alloc runs via engine.MultiSink.
type FlowSink struct {
	flow *Summary
}

// NewFlowSink registers mwct_flow (a summary of per-task flow times) in r.
func NewFlowSink(r *Registry) *FlowSink {
	return &FlowSink{flow: r.Summary("mwct_flow", "Per-task flow time (completion minus release).", 0)}
}

// Observe implements engine.MetricSink.
func (f *FlowSink) Observe(m engine.TaskMetrics) { f.flow.Observe(m.Flow) }

// Summary exposes the underlying summary for direct quantile queries.
func (f *FlowSink) Summary() *Summary { return f.flow }

// ClusterCollector is a cluster.Probe that mirrors dispatch-time fleet
// snapshots into per-shard labeled gauge families (prefix "mwct_shard_",
// label "shard") plus fleet-level rollups: total backlog, dispatch count,
// and the backlog imbalance (max-min spread) that makes router quality
// visible on a dashboard without a profiler.
//
// Child gauges are interned on the first observation and cached in a slice
// indexed by shard, so steady-state observations perform no map lookups and
// no allocation.
type ClusterCollector struct {
	shardBacklog    *GaugeVec
	shardAllocated  *GaugeVec
	shardCompleted  *GaugeVec
	shardDispatched *GaugeVec

	virtualTime    *Gauge
	fleetBacklog   *Gauge
	imbalance      *Gauge
	dispatchedTot  *Counter
	observationTot *Counter
	rollbacksTot   *Counter
	wastedTot      *Counter
	specBatch      *Gauge
	staleViewsTot  *Counter
	staleWindow    *Gauge

	// per-shard child cache, indexed by shard; built on first observation.
	backlog    []*Gauge
	allocated  []*Gauge
	completed  []*Gauge
	dispatched []*Gauge
}

// NewClusterCollector registers the cluster metric families in r and
// returns the collector.
func NewClusterCollector(r *Registry) *ClusterCollector {
	return &ClusterCollector{
		shardBacklog:    r.GaugeVec("mwct_shard_backlog", "Alive tasks on the shard at the last observation.", "shard"),
		shardAllocated:  r.GaugeVec("mwct_shard_allocated", "Capacity allocated on the shard at the last observation.", "shard"),
		shardCompleted:  r.GaugeVec("mwct_shard_completed", "Tasks retired by the shard so far.", "shard"),
		shardDispatched: r.GaugeVec("mwct_shard_dispatched", "Arrivals the router sent to the shard so far.", "shard"),
		virtualTime:     r.Gauge("mwct_cluster_virtual_time", "Virtual time of the last fleet observation."),
		fleetBacklog:    r.Gauge("mwct_cluster_backlog", "Total alive tasks across the fleet."),
		imbalance:       r.Gauge("mwct_cluster_backlog_imbalance", "Max minus min per-shard backlog at the last observation."),
		dispatchedTot:   r.Counter("mwct_cluster_dispatched_total", "Arrivals dispatched across the fleet."),
		observationTot:  r.Counter("mwct_cluster_observations_total", "Fleet observations delivered to the collector."),
		rollbacksTot:    r.Counter("mwct_cluster_rollbacks_total", "Shard rollbacks performed by the speculative coordinator."),
		wastedTot:       r.Counter("mwct_cluster_wasted_events_total", "Policy invocations discarded by speculative rollbacks."),
		specBatch:       r.Gauge("mwct_cluster_spec_batch", "Speculation window depth the adaptive controller settled on in the last speculative run."),
		staleViewsTot:   r.Counter("mwct_cluster_stale_views_total", "Window-boundary fleet views published by stale-batched coordinators."),
		staleWindow:     r.Gauge("mwct_cluster_stale_window", "Dispatch window size of the last stale-batched run."),
	}
}

// ObserveResult folds a completed cluster run's misprediction counters into
// the registry. Rollback cost is only known when the run's merged LoadResult
// exists — the speculative coordinator counts rollbacks as it commits windows
// and reports the totals on the result — so unlike the dispatch-time gauges
// these counters advance once per run. Conservative and sequential runs
// report zeros, leaving the counters untouched.
func (c *ClusterCollector) ObserveResult(res *engine.LoadResult) {
	c.rollbacksTot.Add(float64(res.Rollbacks))
	c.wastedTot.Add(float64(res.WastedEvents))
	if res.SpecBatchLast > 0 {
		c.specBatch.Set(float64(res.SpecBatchLast))
	}
	// Same once-per-run cadence for the stale-batched view counters:
	// exact-view runs report zeros and leave them untouched.
	c.staleViewsTot.Add(float64(res.StaleViews))
	if res.StaleWindow > 0 {
		c.staleWindow.Set(float64(res.StaleWindow))
	}
}

// ObserveFleet implements cluster.Probe.
func (c *ClusterCollector) ObserveFleet(now float64, shards []cluster.ShardState) {
	for len(c.backlog) < len(shards) {
		// First observation (or a wider fleet): intern the children once.
		lv := strconv.Itoa(len(c.backlog))
		c.backlog = append(c.backlog, c.shardBacklog.With(lv))
		c.allocated = append(c.allocated, c.shardAllocated.With(lv))
		c.completed = append(c.completed, c.shardCompleted.With(lv))
		c.dispatched = append(c.dispatched, c.shardDispatched.With(lv))
	}
	total, dispatched := 0, 0
	minB, maxB := -1, 0
	for i := range shards {
		s := &shards[i]
		c.backlog[i].Set(float64(s.Backlog))
		c.allocated[i].Set(s.Allocated)
		c.completed[i].Set(float64(s.Completed))
		c.dispatched[i].Set(float64(s.Dispatched))
		total += s.Backlog
		dispatched += s.Dispatched
		if minB < 0 || s.Backlog < minB {
			minB = s.Backlog
		}
		if s.Backlog > maxB {
			maxB = s.Backlog
		}
	}
	c.virtualTime.Set(now)
	c.fleetBacklog.Set(float64(total))
	if minB < 0 {
		minB = 0
	}
	c.imbalance.Set(float64(maxB - minB))
	c.dispatchedTot.Set(float64(dispatched))
	c.observationTot.Inc()
}
