package obs

import (
	"bytes"
	"strconv"
	"testing"

	"github.com/malleable-sched/malleable/internal/cluster"
	"github.com/malleable-sched/malleable/internal/engine"
	"github.com/malleable-sched/malleable/internal/workload"
)

func testConfig(rate float64) workload.ArrivalConfig {
	return workload.ArrivalConfig{
		Class:   workload.Uniform,
		P:       8,
		Process: workload.Poisson,
		Rate:    rate,
		Tenants: []workload.TenantSpec{
			{Name: "gold", Weight: 4, Share: 0.2},
			{Name: "bronze", Weight: 1, Share: 0.8},
		},
	}
}

func testPolicy(t *testing.T) engine.Policy {
	t.Helper()
	policy, err := engine.PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	return policy
}

// An EngineCollector attached to a real run ends with registry values that
// equal the run's own result, and the whole registry renders as valid
// Prometheus text.
func TestEngineCollectorMirrorsRun(t *testing.T) {
	stream, err := workload.NewStream(testConfig(20), 1500, 31)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	col := NewEngineCollector(r)
	flow := NewFlowSink(r)
	res, err := engine.RunStreamWithOptions(8, testPolicy(t), stream, flow, engine.Options{Probe: col})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, c *Counter, want float64) {
		t.Helper()
		if got := c.Value(); got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	check("completed", col.completed, float64(res.Completed))
	check("events", col.events, float64(res.Events))
	check("flow total", col.totalFlow, res.TotalFlow)
	check("weighted flow", col.weightedFlow, res.WeightedFlow)
	check("runs done", col.runsDone, 1)
	if got := col.virtualTime.Value(); got != res.Makespan {
		t.Errorf("virtual time = %g, want makespan %g", got, res.Makespan)
	}
	if got := col.backlog.Value(); got != 0 {
		t.Errorf("final backlog gauge = %g, want 0", got)
	}
	if got := flow.Summary().Count(); got != res.Completed {
		t.Errorf("flow summary saw %d tasks, want %d", got, res.Completed)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(&buf)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	for _, name := range []string{"mwct_engine_completed_total", "mwct_engine_backlog", "mwct_flow"} {
		if fams[name] == nil {
			t.Errorf("family %s missing from exposition", name)
		}
	}
}

// The collector preserves the engine's zero-allocation steady state even
// when probing every event with a flow summary attached.
func TestEngineCollectorZeroAlloc(t *testing.T) {
	stream, err := workload.NewStream(testConfig(20), 512, 32)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := make([]engine.Arrival, 0, 512)
	for {
		a, ok, err := stream.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		arrivals = append(arrivals, a)
	}
	r := NewRegistry()
	col := NewEngineCollector(r)
	flow := NewFlowSink(r)
	runner := engine.NewRunner()
	res := &engine.Result{}
	replay := engine.NewSliceStream(arrivals)
	opts := engine.Options{Probe: col}
	var runErr error
	run := func() {
		replay.Reset()
		if err := runner.RunStreamInto(res, 8, engine.WDEQPolicy{}, replay, flow, opts); err != nil {
			runErr = err
		}
	}
	run() // warm runner scratch and the summary's sketch window
	if runErr != nil {
		t.Fatal(runErr)
	}
	allocs := testing.AllocsPerRun(10, run)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if allocs != 0 {
		t.Fatalf("collected run allocates %.1f allocs/run, want 0", allocs)
	}
}

// A ClusterCollector mirrors the fleet's terminal state into labeled
// per-shard gauges plus rollups, and the exposition carries one child per
// shard.
func TestClusterCollectorShardFamilies(t *testing.T) {
	const n, shards = 2000, 3
	stream, err := workload.NewStream(testConfig(40), n, 33)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	col := NewClusterCollector(r)
	res, err := cluster.Run(cluster.Config{
		Shards: shards, P: 8, Policy: testPolicy(t),
		Router: cluster.NewLeastBacklog(), Probe: col,
	}, stream)
	if err != nil {
		t.Fatal(err)
	}
	if got := col.dispatchedTot.Value(); got != n {
		t.Fatalf("dispatched total = %g, want %d", got, n)
	}
	sum := 0.0
	for i := 0; i < shards; i++ {
		sum += col.shardCompleted.With(strconv.Itoa(i)).Value()
	}
	if sum != float64(res.TotalTasks) {
		t.Fatalf("per-shard completed sums to %g, want %d", sum, res.TotalTasks)
	}
	if got := col.fleetBacklog.Value(); got != 0 {
		t.Fatalf("final fleet backlog = %g, want 0", got)
	}
	if got := col.imbalance.Value(); got != 0 {
		t.Fatalf("final backlog imbalance = %g, want 0", got)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f := fams["mwct_shard_backlog"]
	if f == nil || len(f.Samples) != shards {
		t.Fatalf("mwct_shard_backlog families: %+v", f)
	}
	seen := map[string]bool{}
	for _, s := range f.Samples {
		seen[s.Labels["shard"]] = true
	}
	for i := 0; i < shards; i++ {
		if !seen[strconv.Itoa(i)] {
			t.Fatalf("shard %d missing from exposition: %v", i, seen)
		}
	}
}

// ObserveResult folds per-run misprediction totals into the rollback
// counters: synthetic results accumulate exactly, a conservative (all-zero)
// result leaves them untouched, and a real speculative run's counters land in
// the exposition under mwct_cluster_rollbacks_total.
func TestClusterCollectorObserveResult(t *testing.T) {
	r := NewRegistry()
	col := NewClusterCollector(r)
	col.ObserveResult(&engine.LoadResult{Rollbacks: 3, WastedEvents: 17})
	col.ObserveResult(&engine.LoadResult{}) // conservative runs report zeros
	col.ObserveResult(&engine.LoadResult{Rollbacks: 2, WastedEvents: 5})
	if got := col.rollbacksTot.Value(); got != 5 {
		t.Fatalf("rollbacks total = %g, want 5", got)
	}
	if got := col.wastedTot.Value(); got != 22 {
		t.Fatalf("wasted-events total = %g, want 22", got)
	}

	stream, err := workload.NewStream(testConfig(40), 2000, 33)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(cluster.Config{
		Shards: 3, P: 8, Policy: testPolicy(t),
		Router: cluster.NewLeastBacklog(), Workers: 3, Speculate: true,
	}, stream)
	if err != nil {
		t.Fatal(err)
	}
	col.ObserveResult(res)
	if got, want := col.rollbacksTot.Value(), 5+float64(res.Rollbacks); got != want {
		t.Fatalf("rollbacks total after speculative run = %g, want %g", got, want)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fams["mwct_cluster_rollbacks_total"] == nil || fams["mwct_cluster_wasted_events_total"] == nil {
		t.Fatalf("rollback families missing from exposition: %v", fams)
	}
}

// After the first observation interned the children, fleet observations
// allocate nothing.
func TestClusterCollectorZeroAllocSteadyState(t *testing.T) {
	r := NewRegistry()
	col := NewClusterCollector(r)
	states := []cluster.ShardState{
		{Shard: 0, Backlog: 3, Allocated: 8, Completed: 10, Dispatched: 13},
		{Shard: 1, Backlog: 1, Allocated: 8, Completed: 12, Dispatched: 13},
	}
	col.ObserveFleet(1.0, states) // interning pass
	allocs := testing.AllocsPerRun(100, func() {
		col.ObserveFleet(2.0, states)
	})
	if allocs != 0 {
		t.Fatalf("fleet observation allocates %.1f allocs/run, want 0", allocs)
	}
}
