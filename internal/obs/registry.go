// Package obs is the observability plane: a dependency-free metrics
// registry with Prometheus text exposition, engine/cluster probe collectors,
// and a run-timeline recorder — the instrumentation half of the scheduling
// kernel's streaming contract.
//
// The design constraint is the same one the engine's MetricSink obeys: the
// hot path must stay zero-allocation. Counters and gauges are single atomic
// words updated lock-free; vector children are interned once and cached by
// the collectors, so steady-state probe firing performs no map lookups, no
// formatting and no heap allocation. All rendering cost (name sorting, label
// escaping, float formatting) is paid by the scraper at exposition time, on
// the scraper's goroutine.
//
// Concurrency: metric updates are atomic and may race freely with scrapes.
// A scrape therefore sees a near-point-in-time view, not a consistent cut —
// the same contract Prometheus client libraries offer. Run-consistent views
// come from the probes themselves (engine.Snapshot is assembled at the
// stepper's rest state).
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/malleable-sched/malleable/internal/stats"
)

// value is one atomically updated float64 — the storage shared by Counter
// and Gauge, which differ only in the exposition TYPE and the update surface
// they export.
type value struct {
	bits atomic.Uint64
}

func (v *value) load() float64 { return math.Float64frombits(v.bits.Load()) }

func (v *value) store(x float64) { v.bits.Store(math.Float64bits(x)) }

func (v *value) add(d float64) {
	for {
		old := v.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if v.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically non-decreasing metric. Updates are lock-free
// and allocation-free. (Counter and Gauge are views over the same atomic
// storage, so vector children hand out typed pointers without copying.)
type Counter value

// Inc adds one.
func (c *Counter) Inc() { (*value)(c).add(1) }

// Add adds d, which must be non-negative; negative deltas are dropped (a
// counter never goes down — use a Gauge for that).
func (c *Counter) Add(d float64) {
	if d < 0 || math.IsNaN(d) {
		return
	}
	(*value)(c).add(d)
}

// Set overwrites the counter with an absolute value. It exists for
// collectors that mirror an upstream quantity that is already monotone (the
// engine's admitted/completed/event counts, cumulative flow sums): the
// mirror stays a well-formed counter because the source never decreases.
// Regressions are dropped rather than published.
func (c *Counter) Set(x float64) {
	for {
		old := c.bits.Load()
		if x <= math.Float64frombits(old) {
			return
		}
		if c.bits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return (*value)(c).load() }

// Gauge is a metric that can go up and down. Updates are lock-free and
// allocation-free.
type Gauge value

// Set overwrites the gauge.
func (g *Gauge) Set(x float64) { (*value)(g).store(x) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d float64) { (*value)(g).add(d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return (*value)(g).load() }

// Summary is a quantile metric backed by a stats.QuantileSketch plus exact
// count and sum, rendered in the Prometheus summary shape
// (name{quantile="0.99"}, name_sum, name_count). Observations take a mutex
// (the sketch is not lock-free) but do not allocate in steady state, so a
// Summary may sit on a MetricSink without breaking the zero-alloc contract.
type Summary struct {
	mu        sync.Mutex
	sketch    *stats.QuantileSketch
	sum       float64
	quantiles []float64
}

// Observe records one observation.
func (s *Summary) Observe(x float64) {
	s.mu.Lock()
	s.sketch.Add(x)
	s.sum += x
	s.mu.Unlock()
}

// Quantile returns the current q-quantile estimate (NaN when empty).
func (s *Summary) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sketch.Quantile(q)
}

// Count returns the number of observations.
func (s *Summary) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sketch.Count()
}

// metricKind selects the exposition TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindSummary
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// family is one registered metric family: a single unlabeled series, or a
// vector of labeled children.
type family struct {
	name  string
	help  string
	kind  metricKind
	label string // label name for vectors, "" for plain series

	counter *Counter
	gauge   *Gauge
	summary *Summary

	mu       sync.Mutex // guards children maps of vectors
	children map[string]*value
	order    []string // child label values in first-use order
}

// CounterVec is a family of counters keyed by one label value. With interns
// the child on first use; collectors cache the returned *Counter so the hot
// path never touches the map again.
type CounterVec struct {
	f *family
}

// With returns the child counter for the given label value, creating it on
// first use. The returned pointer is stable for the life of the registry.
func (v *CounterVec) With(labelValue string) *Counter {
	return (*Counter)(v.f.child(labelValue))
}

// GaugeVec is a family of gauges keyed by one label value.
type GaugeVec struct {
	f *family
}

// With returns the child gauge for the given label value, creating it on
// first use. The returned pointer is stable for the life of the registry.
func (v *GaugeVec) With(labelValue string) *Gauge {
	return (*Gauge)(v.f.child(labelValue))
}

func (f *family) child(labelValue string) *value {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[labelValue]; ok {
		return c
	}
	c := &value{}
	f.children[labelValue] = c
	f.order = append(f.order, labelValue)
	return c
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration is cheap and panics on misuse (invalid or
// duplicate names) — metric identity is a compile-time property of the call
// site, not data, exactly like sketch accuracy.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// register validates and stores a new family.
func (r *Registry) register(name, help, label string, kind metricKind) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if label != "" && !validLabelName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, kind: kind, label: label}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "", kindCounter)
	f.counter = &Counter{}
	return f.counter
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "", kindGauge)
	f.gauge = &Gauge{}
	return f.gauge
}

// CounterVec registers a counter family keyed by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	f := r.register(name, help, label, kindCounter)
	f.children = map[string]*value{}
	return &CounterVec{f: f}
}

// GaugeVec registers a gauge family keyed by one label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	f := r.register(name, help, label, kindGauge)
	f.children = map[string]*value{}
	return &GaugeVec{f: f}
}

// Summary registers a quantile summary; alpha <= 0 selects the default
// sketch accuracy, and quantiles defaults to {0.5, 0.9, 0.99}.
func (r *Registry) Summary(name, help string, alpha float64, quantiles ...float64) *Summary {
	if alpha <= 0 {
		alpha = stats.DefaultSketchAlpha
	}
	if len(quantiles) == 0 {
		quantiles = []float64{0.5, 0.9, 0.99}
	}
	for _, q := range quantiles {
		if !(q >= 0 && q <= 1) {
			panic(fmt.Sprintf("obs: summary quantile %g outside [0, 1]", q))
		}
	}
	f := r.register(name, help, "", kindSummary)
	f.summary = &Summary{sketch: stats.NewQuantileSketch(alpha), quantiles: quantiles}
	return f.summary
}

// snapshotFamilies copies the family list under the lock so exposition can
// render without blocking registration.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.families))
	copy(out, r.families)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
