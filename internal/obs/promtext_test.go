package obs

import (
	"bytes"
	"strings"
	"testing"
)

// The writer and parser are inverses: everything written renders back with
// the same families, types, labels and values.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rt_tasks_total", "Tasks processed.")
	g := r.Gauge("rt_backlog", "Current backlog.")
	v := r.GaugeVec("rt_shard_backlog", "Per-shard backlog.", "shard")
	s := r.Summary("rt_flow", "Flow times.", 0, 0.5, 0.99)
	c.Add(42)
	g.Set(-3.25)
	v.With("0").Set(1)
	v.With("1").Set(2)
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}

	if f := fams["rt_tasks_total"]; f == nil || f.Type != "counter" || f.Help != "Tasks processed." {
		t.Fatalf("counter family: %+v", f)
	} else if len(f.Samples) != 1 || f.Samples[0].Value != 42 {
		t.Fatalf("counter samples: %+v", f.Samples)
	}
	if f := fams["rt_backlog"]; f == nil || f.Type != "gauge" || f.Samples[0].Value != -3.25 {
		t.Fatalf("gauge family: %+v", f)
	}
	f := fams["rt_shard_backlog"]
	if f == nil || len(f.Samples) != 2 {
		t.Fatalf("vec family: %+v", f)
	}
	for i, want := range []float64{1, 2} {
		smp := f.Samples[i]
		if smp.Labels["shard"] != []string{"0", "1"}[i] || smp.Value != want {
			t.Fatalf("vec sample %d: %+v", i, smp)
		}
	}
	sf := fams["rt_flow"]
	if sf == nil || sf.Type != "summary" {
		t.Fatalf("summary family: %+v", sf)
	}
	var sawCount, sawSum, quantiles int
	for _, smp := range sf.Samples {
		switch smp.Name {
		case "rt_flow_count":
			sawCount++
			if smp.Value != 100 {
				t.Fatalf("summary count = %g", smp.Value)
			}
		case "rt_flow_sum":
			sawSum++
			if smp.Value != 5050 {
				t.Fatalf("summary sum = %g", smp.Value)
			}
		case "rt_flow":
			quantiles++
			if smp.Labels["quantile"] == "" {
				t.Fatalf("quantile sample missing label: %+v", smp)
			}
		}
	}
	if sawCount != 1 || sawSum != 1 || quantiles != 2 {
		t.Fatalf("summary shape: count=%d sum=%d quantiles=%d", sawCount, sawSum, quantiles)
	}
}

// Exposition output is byte-deterministic: families sorted by name, vector
// children sorted by label value, regardless of registration or touch order.
func TestExpositionDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		r.Gauge("det_z", "last")
		v := r.GaugeVec("det_a", "first", "shard")
		for _, lv := range order {
			v.With(lv).Set(float64(len(lv)))
		}
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]string{"2", "0", "1"})
	b := build([]string{"1", "2", "0"})
	if a != b {
		t.Fatalf("touch order changed the exposition:\n%s\nvs\n%s", a, b)
	}
	if !strings.HasPrefix(a, "# HELP det_a") {
		t.Fatalf("families not sorted by name:\n%s", a)
	}
}

// Label values with quotes, backslashes and newlines survive the round
// trip.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("esc_metric", "h", "name")
	hostile := `he said "hi"` + "\n" + `back\slash`
	v.With(hostile).Set(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	smp := fams["esc_metric"].Samples
	if len(smp) != 1 || smp[0].Labels["name"] != hostile {
		t.Fatalf("escaped label did not round-trip: %+v", smp)
	}
}

// The parser is a validator: malformed expositions are rejected with
// positioned errors.
func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":   "orphan_metric 1\n",
		"negative counter":     "# TYPE bad_total counter\nbad_total -1\n",
		"unknown type":         "# TYPE x foobar\n",
		"bad value":            "# TYPE x gauge\nx notanumber\n",
		"unterminated labels":  "# TYPE x gauge\nx{a=\"b\" 1\n",
		"double TYPE":          "# TYPE x gauge\n# TYPE x counter\n",
		"TYPE after samples":   "# TYPE x gauge\nx 1\n# TYPE x gauge\n",
		"invalid metric name":  "# TYPE x gauge\n0bad 1\n",
		"unquoted label value": "# TYPE x gauge\nx{a=b} 1\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted\n%s", name, text)
		}
	}
}

// Timestamps after the value are part of the format and are tolerated.
func TestParseExpositionTimestamp(t *testing.T) {
	fams, err := ParseExposition(strings.NewReader("# TYPE ts_metric gauge\nts_metric 3.5 1712000000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if fams["ts_metric"].Samples[0].Value != 3.5 {
		t.Fatalf("sample: %+v", fams["ts_metric"].Samples)
	}
}
