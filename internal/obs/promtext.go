package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition format
// this package writes.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, each preceded
// by its # HELP and # TYPE lines, vector children in first-use order under a
// deterministic secondary sort by label value. All formatting cost is paid
// here, on the scraper's goroutine — metric updates never format anything.
func (r *Registry) WritePrometheus(w io.Writer) error {
	buf := make([]byte, 0, 1024)
	for _, f := range r.snapshotFamilies() {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = appendEscapedHelp(buf, f.help)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.kind.String()...)
		buf = append(buf, '\n')
		switch {
		case f.summary != nil:
			buf = f.summary.appendSamples(buf, f.name)
		case f.label != "":
			buf = f.appendChildren(buf)
		case f.counter != nil:
			buf = appendSample(buf, f.name, "", "", f.counter.Value())
		case f.gauge != nil:
			buf = appendSample(buf, f.name, "", "", f.gauge.Value())
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendChildren renders a vector's children sorted by label value, so the
// exposition is byte-deterministic whatever order shards touched the family.
func (f *family) appendChildren(buf []byte) []byte {
	f.mu.Lock()
	vals := make([]string, len(f.order))
	copy(vals, f.order)
	f.mu.Unlock()
	sort.Strings(vals)
	for _, lv := range vals {
		f.mu.Lock()
		c := f.children[lv]
		f.mu.Unlock()
		buf = appendSample(buf, f.name, f.label, lv, c.load())
	}
	return buf
}

// appendSamples renders the summary's quantile series plus _sum and _count.
func (s *Summary) appendSamples(buf []byte, name string) []byte {
	s.mu.Lock()
	qs := make([]float64, 0, len(s.quantiles))
	qs = append(qs, s.quantiles...)
	sum := s.sum
	count := s.sketch.Count()
	vals := make([]float64, len(qs))
	for i, q := range qs {
		vals[i] = s.sketch.Quantile(q)
	}
	s.mu.Unlock()
	for i, q := range qs {
		buf = appendSample(buf, name, "quantile", strconv.FormatFloat(q, 'g', -1, 64), vals[i])
	}
	buf = appendSample(buf, name+"_sum", "", "", sum)
	buf = appendSample(buf, name+"_count", "", "", float64(count))
	return buf
}

// appendSample renders one sample line, with at most one label.
func appendSample(buf []byte, name, label, labelValue string, v float64) []byte {
	buf = append(buf, name...)
	if label != "" {
		buf = append(buf, '{')
		buf = append(buf, label...)
		buf = append(buf, '=', '"')
		buf = appendEscapedLabelValue(buf, labelValue)
		buf = append(buf, '"', '}')
	}
	buf = append(buf, ' ')
	switch {
	case math.IsNaN(v):
		buf = append(buf, "NaN"...)
	case math.IsInf(v, 1):
		buf = append(buf, "+Inf"...)
	case math.IsInf(v, -1):
		buf = append(buf, "-Inf"...)
	default:
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	}
	return append(buf, '\n')
}

func appendEscapedHelp(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

func appendEscapedLabelValue(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '"':
			buf = append(buf, '\\', '"')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

// Sample is one parsed exposition sample.
type Sample struct {
	// Name is the sample's metric name (for summaries this may be the
	// family name or its _sum/_count series).
	Name string
	// Labels holds the sample's label pairs (nil when unlabeled).
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// Family is one parsed metric family.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// ParseExposition parses and validates a Prometheus text-format exposition —
// the test-side inverse of WritePrometheus, strict enough to catch format
// regressions: every sample must belong to a family announced by a # TYPE
// line, names and labels must be well-formed, values must parse as floats,
// and counters must be non-negative. It returns the families keyed by name.
func ParseExposition(r io.Reader) (map[string]*Family, error) {
	families := map[string]*Family{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, families); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := families[familyOf(s.Name, families)]
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q precedes its # TYPE line", lineNo, s.Name)
		}
		if fam.Type == "counter" && s.Value < 0 {
			return nil, fmt.Errorf("line %d: counter %q has negative value %g", lineNo, s.Name, s.Value)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return families, nil
}

// familyOf maps a sample name to its family, stripping the summary/histogram
// suffixes when the base family is known.
func familyOf(name string, families map[string]*Family) string {
	if _, ok := families[name]; ok {
		return name
	}
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if _, known := families[base]; known {
				return base
			}
		}
	}
	return name
}

func parseComment(line string, families map[string]*Family) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		fam := families[fields[2]]
		if fam == nil {
			fam = &Family{Name: fields[2]}
			families[fields[2]] = fam
		}
		if len(fields) == 4 {
			fam.Help = fields[3]
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "summary", "histogram", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		fam := families[fields[2]]
		if fam == nil {
			fam = &Family{Name: fields[2]}
			families[fields[2]] = fam
		}
		if fam.Type != "" {
			return fmt.Errorf("family %q typed twice", fields[2])
		}
		if len(fam.Samples) > 0 {
			return fmt.Errorf("TYPE line for %q after its samples", fields[2])
		}
		fam.Type = fields[3]
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if rest[i] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[i+1 : end])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = rest[end+1:]
	} else {
		rest = rest[i:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp after the value is legal in the format; we accept and
	// ignore it.
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", rest, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !validLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					return nil, fmt.Errorf("bad escape \\%c", s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", name)
		}
		labels[name] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}
