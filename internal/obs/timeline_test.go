package obs

import (
	"bytes"
	"io"
	"math"
	"testing"

	"github.com/malleable-sched/malleable/internal/cluster"
	"github.com/malleable-sched/malleable/internal/engine"
	"github.com/malleable-sched/malleable/internal/workload"
)

// A timeline attached to an engine run round-trips through ReadTimeline:
// monotone virtual time, consistent counters, flow statistics present, and
// a terminal Done record matching the run's result.
func TestTimelineEngineRoundTrip(t *testing.T) {
	stream, err := workload.NewStream(testConfig(20), 1200, 41)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tl := NewTimeline(&buf, 0)
	res, err := engine.RunStreamWithOptions(8, testPolicy(t), stream, tl,
		engine.Options{Probe: tl, ProbeInterval: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTimeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != tl.Records() {
		t.Fatalf("read %d records, writer counted %d", len(recs), tl.Records())
	}
	want := int(math.Floor(res.Makespan / 2.0))
	if len(recs) < want {
		t.Fatalf("%d samples over makespan %g at interval 2, want >= %d", len(recs), res.Makespan, want)
	}
	for i, rec := range recs {
		if rec.Shards != 1 {
			t.Fatalf("record %d shards = %d, want 1", i, rec.Shards)
		}
		if rec.Admitted != rec.Completed+rec.Backlog {
			t.Fatalf("record %d inconsistent: admitted %d != completed %d + backlog %d",
				i, rec.Admitted, rec.Completed, rec.Backlog)
		}
		if i > 0 && rec.T < recs[i-1].T {
			t.Fatalf("record %d time went backwards", i)
		}
	}
	last := recs[len(recs)-1]
	if !last.Done {
		t.Fatal("missing terminal Done record")
	}
	if last.T != res.Makespan || last.Completed != res.Completed || last.Backlog != 0 {
		t.Fatalf("terminal record %+v, want makespan %g completed %d", last, res.Makespan, res.Completed)
	}
	if last.MeanFlow <= 0 || last.P99Flow < last.MeanFlow {
		t.Fatalf("terminal flow stats mean=%g p99=%g", last.MeanFlow, last.P99Flow)
	}
}

// A timeline attached to a cluster run records fleet-wide samples on the
// virtual-time grid, and Close lands the drained endpoint as a Done record
// even when interval thinning skipped the coordinator's final observation.
func TestTimelineClusterRoundTrip(t *testing.T) {
	const n = 2000
	stream, err := workload.NewStream(testConfig(40), n, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tl := NewTimeline(&buf, 5.0)
	res, err := cluster.Run(cluster.Config{
		Shards: 3, P: 8, Policy: testPolicy(t),
		Router: cluster.NewLeastBacklog(), Probe: tl, Sink: tl,
	}, stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTimeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("want several fleet samples, got %d", len(recs))
	}
	for i, rec := range recs {
		if rec.Shards != 3 {
			t.Fatalf("record %d shards = %d, want 3", i, rec.Shards)
		}
		if i > 0 && rec.T < recs[i-1].T {
			t.Fatalf("record %d time went backwards", i)
		}
		if i > 0 && !rec.Done && math.Floor(rec.T/5.0) == math.Floor(recs[i-1].T/5.0) {
			t.Fatalf("records %d and %d share grid cell %g", i-1, i, math.Floor(rec.T/5.0))
		}
	}
	last := recs[len(recs)-1]
	if !last.Done {
		t.Fatal("missing terminal Done record after Close")
	}
	if last.Completed != res.TotalTasks || last.Backlog != 0 || last.Dispatched != n {
		t.Fatalf("terminal record %+v, want completed %d dispatched %d", last, res.TotalTasks, n)
	}
}

// Steady-state recording allocates nothing: records render through the
// reused buffer with strconv appends.
func TestTimelineWriteZeroAlloc(t *testing.T) {
	tl := NewTimeline(io.Discard, 0)
	for i := 0; i < 1000; i++ {
		tl.Observe(engine.TaskMetrics{Flow: float64(i) * 0.25, Weight: 1})
	}
	snap := engine.Snapshot{Now: 12.5, Backlog: 3, Admitted: 10, Completed: 7, Events: 20, Allocated: 8}
	allocs := testing.AllocsPerRun(100, func() {
		tl.Observe(engine.TaskMetrics{Flow: 3, Weight: 1})
		tl.ObserveSnapshot(snap)
	})
	if allocs != 0 {
		t.Fatalf("timeline recording allocates %.1f allocs/run, want 0", allocs)
	}
}

// Timeline write errors are sticky and surface from Close.
type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.after--
	return len(p), nil
}

func TestTimelineWriteErrorSurfaces(t *testing.T) {
	tl := NewTimeline(&failWriter{after: 1}, 0)
	tl.ObserveSnapshot(engine.Snapshot{Now: 1})
	tl.ObserveSnapshot(engine.Snapshot{Now: 2})
	tl.ObserveSnapshot(engine.Snapshot{Now: 3})
	if err := tl.Close(); err == nil {
		t.Fatal("write error did not surface from Close")
	}
	if tl.Records() != 1 {
		t.Fatalf("records = %d, want 1 (writes after the error are dropped)", tl.Records())
	}
}
