package obs

import (
	"strconv"
	"sync"
	"testing"
)

func TestCounterMonotone(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	c.Add(-1) // dropped: counters never go down
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter after negative Add = %g, want 3.5", got)
	}
	c.Set(10) // monotone mirror: forward jumps apply
	c.Set(4)  // ...regressions are dropped
	if got := c.Value(); got != 10 {
		t.Fatalf("counter after Set = %g, want 10", got)
	}
}

func TestGaugeUpDown(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "help")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %g, want 3", got)
	}
}

// Vector children are interned once: the same label value always returns
// the same storage, and updates through a cached pointer are visible to the
// vector.
func TestVecChildIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_shard", "help", "shard")
	a := v.With("0")
	b := v.With("0")
	if a != b {
		t.Fatal("same label value returned distinct children")
	}
	a.Set(7)
	if got := v.With("0").Value(); got != 7 {
		t.Fatalf("child = %g, want 7", got)
	}
	if v.With("1") == a {
		t.Fatal("distinct label values share a child")
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "0abc", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
	r.Counter("dup_total", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration accepted")
			}
		}()
		r.Gauge("dup_total", "")
	}()
}

// Metric updates race freely with each other and with scrapes; counts must
// not be lost (atomic adds) under the race detector.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "")
	v := r.CounterVec("test_conc_vec_total", "", "worker")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := v.With(strconv.Itoa(w % 2))
			for i := 0; i < per; i++ {
				c.Inc()
				child.Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %g, want %d", got, workers*per)
	}
	if got := v.With("0").Value() + v.With("1").Value(); got != workers*per {
		t.Fatalf("vec total = %g, want %d", got, workers*per)
	}
}

// Counter and gauge updates through cached pointers allocate nothing.
func TestUpdateZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_alloc_total", "")
	g := r.Gauge("test_alloc_gauge", "")
	child := r.GaugeVec("test_alloc_vec", "", "shard").With("0")
	s := r.Summary("test_alloc_summary", "", 0)
	for i := 0; i < 1000; i++ {
		s.Observe(float64(i)) // warm the sketch window
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(3)
		g.Add(-1)
		child.Set(4)
		s.Observe(5)
	})
	if allocs != 0 {
		t.Fatalf("metric updates allocate %.1f allocs/run, want 0", allocs)
	}
}

func TestSummaryQuantiles(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("test_lat", "", 0, 0.5, 0.99)
	for i := 1; i <= 1000; i++ {
		s.Observe(float64(i))
	}
	if got := s.Count(); got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
	p50 := s.Quantile(0.5)
	if p50 < 450 || p50 > 550 {
		t.Fatalf("p50 = %g, want ≈500", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 950 || p99 > 1000 {
		t.Fatalf("p99 = %g, want ≈990", p99)
	}
}
