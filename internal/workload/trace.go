package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"github.com/malleable-sched/malleable/internal/schedule"
)

// The JSONL trace codec: one schedule.Arrival JSON object per line, e.g.
//
//	{"task":{"weight":1,"volume":0.5,"delta":2},"release":0.25,"tenant":1}
//
// A trace file records an arrival stream so a workload observed once (or
// captured from production) can be replayed byte-deterministically through
// the engine without regenerating it. Both ends are streaming: TraceWriter
// encodes arrivals as they are produced, TraceReader decodes them as the
// engine pulls, so recording or replaying a ten-million-task day costs
// constant memory on top of the file itself.

// maxTraceLine bounds one encoded arrival. Real lines are ~150 bytes; the
// megabyte ceiling only guards the reader against unbounded garbage input.
const maxTraceLine = 1 << 20

// TraceWriter encodes arrivals to JSONL. Writes are buffered; call Flush
// before closing the underlying writer.
type TraceWriter struct {
	bw    *bufio.Writer
	count int
}

// NewTraceWriter wraps w in a buffered JSONL arrival encoder.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{bw: bufio.NewWriter(w)}
}

// Write appends one arrival as a JSON line. Invalid arrivals are rejected —
// a recorded trace must replay cleanly through the engine's boundary
// validation, so nothing unreplayable may enter the file.
func (t *TraceWriter) Write(a schedule.Arrival) error {
	if err := a.Validate(); err != nil {
		return fmt.Errorf("workload: trace arrival %d: %w", t.count, err)
	}
	buf, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("workload: trace arrival %d: %w", t.count, err)
	}
	if _, err := t.bw.Write(buf); err != nil {
		return err
	}
	if err := t.bw.WriteByte('\n'); err != nil {
		return err
	}
	t.count++
	return nil
}

// Count returns the number of arrivals written so far.
func (t *TraceWriter) Count() int { return t.count }

// Flush writes any buffered data to the underlying writer.
func (t *TraceWriter) Flush() error { return t.bw.Flush() }

// TraceReader decodes a JSONL arrival trace as a pull stream. Its Next method
// satisfies the engine's ArrivalStream contract, so a trace file plugs
// directly into a streaming run; the engine re-validates every arrival and
// the release-order invariant at its boundary, so a hand-edited or corrupted
// trace fails the run with a line-numbered error instead of poisoning it.
type TraceReader struct {
	sc   *bufio.Scanner
	line int
}

// NewTraceReader wraps r in a JSONL arrival decoder. Blank lines are
// skipped, so traces may be concatenated with separating newlines.
func NewTraceReader(r io.Reader) *TraceReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTraceLine)
	return &TraceReader{sc: sc}
}

// Next decodes the next arrival; ok=false reports a clean end of trace.
func (t *TraceReader) Next() (schedule.Arrival, bool, error) {
	for t.sc.Scan() {
		t.line++
		raw := bytes.TrimSpace(t.sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var a schedule.Arrival
		if err := json.Unmarshal(raw, &a); err != nil {
			return schedule.Arrival{}, false, fmt.Errorf("workload: trace line %d: %w", t.line, err)
		}
		return a, true, nil
	}
	if err := t.sc.Err(); err != nil {
		return schedule.Arrival{}, false, fmt.Errorf("workload: trace line %d: %w", t.line+1, err)
	}
	return schedule.Arrival{}, false, nil
}

// WriteTrace records a whole arrival slice as JSONL — the convenience form
// for tests and small captures; streaming producers should drive a
// TraceWriter directly.
func WriteTrace(w io.Writer, arrivals []schedule.Arrival) error {
	tw := NewTraceWriter(w)
	for _, a := range arrivals {
		if err := tw.Write(a); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// ReadTrace decodes a whole JSONL trace into a slice — the convenience form
// for tests; replays should pull from a TraceReader and stay O(1) in memory.
func ReadTrace(r io.Reader) ([]schedule.Arrival, error) {
	tr := NewTraceReader(r)
	var out []schedule.Arrival
	for {
		a, ok, err := tr.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, a)
	}
}
