package workload

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"

	"github.com/malleable-sched/malleable/internal/schedule"
)

// FuzzTraceRoundTrip drives the JSONL trace codec from both ends:
//
//   - forward: any arrival the writer accepts must read back bit-identical
//     (the record/replay contract of `mwct loadtest -trace-out/-trace-in`);
//   - backward: arbitrary bytes fed to the reader must either parse into
//     arrivals or fail with an error — never panic, never hang, and
//     re-encoding whatever parsed must round-trip stably.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(1.0, 2.0, 1.0, 0.5, 0.0, 1, "gold", []byte("{}"))
	f.Add(0.25, 1e-9, 8.0, 0.0, 0.75, 0, "", []byte("{\"task\":{\"weight\":1,\"volume\":2,\"delta\":1},\"release\":3}\n"))
	f.Add(-1.0, 0.0, 0.0, -5.0, 2.0, -3, "x\n", []byte("not json at all"))
	f.Add(1e300, 1e-300, 1e15, 1e9, 0.1, 1<<20, "w", []byte("\n\n\n"))
	f.Fuzz(func(t *testing.T, weight, volume, delta, release, curve float64, tenant int, name string, raw []byte) {
		// Forward: encode one fuzzed arrival, decode it, compare.
		a := schedule.Arrival{
			Task:    schedule.Task{Name: name, Weight: weight, Volume: volume, Delta: delta, Curve: curve},
			Release: release,
			Tenant:  tenant,
		}
		var buf bytes.Buffer
		tw := NewTraceWriter(&buf)
		if err := tw.Write(a); err == nil {
			// Names containing newlines would corrupt the line framing; the
			// JSON encoder escapes them, so even those must round-trip.
			if err := tw.Flush(); err != nil {
				t.Fatal(err)
			}
			back, err := ReadTrace(&buf)
			if err != nil {
				t.Fatalf("wrote %+v but read failed: %v", a, err)
			}
			if len(back) != 1 {
				t.Fatalf("round trip yielded %d arrivals, want 1", len(back))
			}
			if !utf8.ValidString(name) {
				// JSON coerces invalid UTF-8 in the name label to U+FFFD;
				// only the numeric payload is contractual then.
				back[0].Task.Name = a.Task.Name
			}
			if back[0] != a {
				t.Fatalf("round trip changed the arrival: %+v -> %+v", a, back)
			}
		} else if a.Validate() == nil {
			t.Fatalf("writer rejected a valid arrival %+v: %v", a, err)
		}

		// Backward: arbitrary bytes must never panic the reader, and
		// anything it accepts must re-encode to a parseable trace.
		parsed, err := ReadTrace(bytes.NewReader(raw))
		if err != nil {
			return
		}
		var re bytes.Buffer
		rw := NewTraceWriter(&re)
		for _, p := range parsed {
			// Parsed arrivals may still be invalid (the reader does not
			// validate; the engine boundary does) — the writer rejects those.
			if err := rw.Write(p); err != nil {
				if p.Validate() == nil {
					t.Fatalf("writer rejected valid parsed arrival %+v: %v", p, err)
				}
				return
			}
		}
		if err := rw.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := ReadTrace(strings.NewReader(re.String()))
		if err != nil {
			t.Fatalf("re-encoded trace unreadable: %v", err)
		}
		if len(again) != len(parsed) {
			t.Fatalf("re-encode changed arrival count: %d -> %d", len(parsed), len(again))
		}
	})
}
