package workload

import (
	"sync"

	"github.com/malleable-sched/malleable/internal/schedule"
)

// DefaultPrefetchBatch is the buffer granularity a Prefetch hands from its
// producer goroutine to the consumer. It matches the cluster coordinator's
// dispatch window, so one handoff feeds one dispatch batch.
const DefaultPrefetchBatch = 512

// PullStream is the source contract a Prefetch decouples from its consumer:
// any pull generator or trace decoder yielding arrivals in non-decreasing
// release order (Stream, TraceReader and the engine's ArrivalStream all
// satisfy it structurally).
type PullStream interface {
	Next() (schedule.Arrival, bool, error)
}

// prefetchBuf is one producer-filled block. A terminal buffer (eof or err
// set) is the last one the producer ever sends.
type prefetchBuf struct {
	arrs []schedule.Arrival
	err  error
	eof  bool
}

// Prefetch overlaps arrival generation or trace decoding with whatever the
// consumer does between pulls — in the cluster, shard execution. A single
// producer goroutine fills fixed-size buffers from the source while the
// consumer drains the previously handed-off one: double buffering with
// handoff at fixed batch boundaries, so the consumer observes exactly the
// source's sequence (same values, same order, same terminal error) and
// replay stays deterministic no matter how the two sides interleave.
//
// A Prefetch is single-use and not safe for concurrent consumers, exactly
// like the streams it wraps. The consumer must call Stop when it abandons
// the stream early, or the producer goroutine leaks blocked on its next
// handoff; Stop after exhaustion is a harmless no-op.
type Prefetch struct {
	data chan *prefetchBuf // producer → consumer handoff, capacity 1
	free chan *prefetchBuf // consumer → producer recycling, capacity 2
	stop chan struct{}
	once sync.Once

	cur *prefetchBuf // buffer being drained; retained forever once terminal
	pos int
}

// NewPrefetch starts the producer goroutine over src. batch is the handoff
// granularity; values <= 0 select DefaultPrefetchBatch. The source must not
// be touched by anyone else from this point on.
func NewPrefetch(src PullStream, batch int) *Prefetch {
	if batch <= 0 {
		batch = DefaultPrefetchBatch
	}
	p := &Prefetch{
		data: make(chan *prefetchBuf, 1),
		free: make(chan *prefetchBuf, 2),
		stop: make(chan struct{}),
	}
	// Two buffers total: one draining at the consumer, one filling at the
	// producer. The data channel's slot covers the handoff in between.
	p.free <- &prefetchBuf{arrs: make([]schedule.Arrival, 0, batch)}
	p.free <- &prefetchBuf{arrs: make([]schedule.Arrival, 0, batch)}
	go p.produce(src, batch)
	return p
}

func (p *Prefetch) produce(src PullStream, batch int) {
	for {
		var buf *prefetchBuf
		select {
		case buf = <-p.free:
		case <-p.stop:
			return
		}
		buf.arrs = buf.arrs[:0]
		buf.err, buf.eof = nil, false
		for len(buf.arrs) < batch {
			a, ok, err := src.Next()
			if err != nil {
				buf.err = err
				break
			}
			if !ok {
				buf.eof = true
				break
			}
			buf.arrs = append(buf.arrs, a)
		}
		terminal := buf.err != nil || buf.eof
		select {
		case p.data <- buf:
		case <-p.stop:
			return
		}
		if terminal {
			close(p.data)
			return
		}
	}
}

// Next yields the source's next arrival. It satisfies the engine's
// ArrivalStream contract: end of stream as ok=false, the source's error —
// if it stopped on one — surfaced at the position the source produced it,
// and sticky thereafter.
func (p *Prefetch) Next() (schedule.Arrival, bool, error) {
	for {
		if p.cur != nil {
			if p.pos < len(p.cur.arrs) {
				a := p.cur.arrs[p.pos]
				p.pos++
				return a, true, nil
			}
			if p.cur.err != nil {
				return schedule.Arrival{}, false, p.cur.err
			}
			if p.cur.eof {
				return schedule.Arrival{}, false, nil
			}
			// Drained a full non-terminal buffer: recycle it and block for
			// the next handoff.
			p.free <- p.cur
			p.cur = nil
		}
		select {
		case buf, ok := <-p.data:
			if !ok {
				// Only possible after Stop raced the terminal handoff
				// away; report a clean end of stream.
				return schedule.Arrival{}, false, nil
			}
			p.cur, p.pos = buf, 0
		case <-p.stop:
			// Next after Stop: the producer may already be gone, so never
			// block on a handoff that will not come.
			return schedule.Arrival{}, false, nil
		}
	}
}

// Stop releases the producer goroutine without draining the stream. Safe to
// call more than once and after exhaustion.
func (p *Prefetch) Stop() { p.once.Do(func() { close(p.stop) }) }
