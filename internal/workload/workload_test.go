package workload

import (
	"testing"
	"testing/quick"

	"github.com/malleable-sched/malleable/internal/numeric"
)

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Uniform, 0, 2, 1); err == nil {
		t.Errorf("zero tasks accepted")
	}
	if _, err := NewGenerator(Uniform, 3, 0, 1); err == nil {
		t.Errorf("zero processors accepted")
	}
	if _, err := NewGenerator(UnitClass, 3, 0, 1); err != nil {
		t.Errorf("unit class should not need P: %v", err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, _ := NewGenerator(Uniform, 5, 3, 42)
	b, _ := NewGenerator(Uniform, 5, 3, 42)
	for i := 0; i < 10; i++ {
		ia, ib := a.Next(), b.Next()
		for k := range ia.Tasks {
			if ia.Tasks[k] != ib.Tasks[k] {
				t.Fatalf("generators with the same seed diverged at instance %d task %d", i, k)
			}
		}
	}
	c, _ := NewGenerator(Uniform, 5, 3, 43)
	same := true
	ia, ic := a.Next(), c.Next()
	for k := range ia.Tasks {
		if ia.Tasks[k] != ic.Tasks[k] {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds produced identical instances")
	}
}

func TestClassProperties(t *testing.T) {
	cases := []struct {
		class Class
		check func(t *testing.T)
	}{
		{Uniform, nil},
		{ConstantWeight, nil},
		{ConstantWeightVolume, nil},
		{LargeDelta, nil},
		{UnitClass, nil},
		{Heterogeneous, nil},
	}
	for _, c := range cases {
		g, err := NewGenerator(c.class, 6, 4, 7)
		if err != nil {
			t.Fatalf("%v: %v", c.class, err)
		}
		for trial := 0; trial < 50; trial++ {
			inst := g.Next()
			if err := inst.Validate(); err != nil {
				t.Fatalf("%v: invalid instance: %v", c.class, err)
			}
			switch c.class {
			case ConstantWeight:
				if !inst.IsHomogeneousWeights() {
					t.Fatalf("constant-weight instance has heterogeneous weights")
				}
			case ConstantWeightVolume:
				for _, task := range inst.Tasks {
					if task.Weight != 1 || task.Volume != 1 {
						t.Fatalf("constant-weight-volume instance has task %+v", task)
					}
				}
			case LargeDelta:
				if !inst.IsLargeDeltaClass() {
					t.Fatalf("large-delta instance violates δ > P/2: %+v", inst.Tasks)
				}
				if !inst.IsHomogeneousWeights() {
					t.Fatalf("large-delta instance should have unit weights")
				}
			case UnitClass:
				if inst.P != 1 {
					t.Fatalf("unit-class instance has P = %g", inst.P)
				}
				for _, task := range inst.Tasks {
					if task.Weight != 1 || task.Volume != 1 || task.Delta < 0.5 || task.Delta > 1 {
						t.Fatalf("unit-class task out of range: %+v", task)
					}
				}
			case Uniform:
				for _, task := range inst.Tasks {
					if task.Weight > 1 || task.Volume > 1 || task.Delta > inst.P {
						t.Fatalf("uniform task out of range: %+v", task)
					}
				}
			}
		}
	}
}

func TestClassStringRoundTrip(t *testing.T) {
	for _, c := range []Class{Uniform, ConstantWeight, ConstantWeightVolume, LargeDelta, UnitClass, Heterogeneous} {
		parsed, err := ParseClass(c.String())
		if err != nil || parsed != c {
			t.Errorf("round trip failed for %v: %v %v", c, parsed, err)
		}
	}
	if _, err := ParseClass("nope"); err == nil {
		t.Errorf("unknown class accepted")
	}
}

func TestBatch(t *testing.T) {
	g, _ := NewGenerator(Uniform, 3, 2, 1)
	batch := g.Batch(7)
	if len(batch) != 7 {
		t.Errorf("batch size = %d", len(batch))
	}
}

func TestBandwidthScenario(t *testing.T) {
	b, err := NewBandwidthScenario(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Workers) != 5 || b.ServerBandwidth <= 0 || b.Horizon <= 0 {
		t.Errorf("scenario = %+v", b)
	}
	inst, err := b.Instance()
	if err != nil {
		t.Fatalf("Instance: %v", err)
	}
	if inst.N() != 5 || inst.P != b.ServerBandwidth {
		t.Errorf("instance = %+v", inst)
	}
	// The server must be the bottleneck.
	var sum float64
	for _, w := range b.Workers {
		sum += w.Bandwidth
	}
	if b.ServerBandwidth >= sum {
		t.Errorf("server bandwidth %g should be below the aggregate %g", b.ServerBandwidth, sum)
	}
	if _, err := NewBandwidthScenario(0, 1); err == nil {
		t.Errorf("zero workers accepted")
	}
}

func TestTasksProcessedBy(t *testing.T) {
	b := &BandwidthScenario{
		Horizon: 10,
		Workers: []Worker{
			{Rate: 1, CodeSize: 1, Bandwidth: 1},
			{Rate: 2, CodeSize: 1, Bandwidth: 1},
		},
	}
	got := b.TasksProcessedBy([]float64{4, 12})
	if !numeric.ApproxEqual(got, 6) { // worker 1: 1*(10-4); worker 2: finished after the horizon
		t.Errorf("TasksProcessedBy = %g, want 6", got)
	}
}

// Property: the equivalence of the paper's introduction — for a fixed
// scenario, Σ rate_i·(T − C_i) + Σ rate_i·C_i = T·Σ rate_i whenever all
// completions are within the horizon, so maximizing throughput is exactly
// minimizing the weighted completion time.
func TestQuickThroughputEquivalence(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%6)
		b, err := NewBandwidthScenario(n, seed)
		if err != nil {
			return false
		}
		// Arbitrary completions within the horizon.
		g, _ := NewGenerator(Uniform, n, 2, seed)
		inst := g.Next()
		_ = inst
		completions := make([]float64, n)
		for i := range completions {
			completions[i] = float64(i+1) / float64(n+1) * b.Horizon
		}
		throughput := b.TasksProcessedBy(completions)
		var weighted, totalRate float64
		for i, w := range b.Workers {
			weighted += w.Rate * completions[i]
			totalRate += w.Rate
		}
		return numeric.ApproxEqualTol(throughput+weighted, b.Horizon*totalRate, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
