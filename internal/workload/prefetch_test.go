package workload

import (
	"errors"
	"fmt"
	"testing"

	"github.com/malleable-sched/malleable/internal/schedule"
)

func prefetchConfig() ArrivalConfig {
	return ArrivalConfig{Class: Uniform, P: 8, Process: Poisson, Rate: 8}
}

// A Prefetch is a pure pipeline stage: the consumer must observe exactly the
// wrapped stream's sequence — same arrivals, same order, same end — at any
// handoff granularity, including batches smaller than, equal to and far
// larger than the stream.
func TestPrefetchMatchesSource(t *testing.T) {
	const n, seed = 1500, 17
	for _, batch := range []int{1, 7, 512, 4096, 0} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			direct, err := NewStream(prefetchConfig(), n, seed)
			if err != nil {
				t.Fatal(err)
			}
			src, err := NewStream(prefetchConfig(), n, seed)
			if err != nil {
				t.Fatal(err)
			}
			pf := NewPrefetch(src, batch)
			defer pf.Stop()
			for i := 0; ; i++ {
				want, wantOK, err := direct.Next()
				if err != nil {
					t.Fatal(err)
				}
				got, gotOK, err := pf.Next()
				if err != nil {
					t.Fatal(err)
				}
				if gotOK != wantOK {
					t.Fatalf("arrival %d: ok=%v, want %v", i, gotOK, wantOK)
				}
				if !wantOK {
					break
				}
				if got != want {
					t.Fatalf("arrival %d differs: %+v vs %+v", i, got, want)
				}
			}
			// Exhaustion is stable, not a one-shot signal.
			if _, ok, err := pf.Next(); ok || err != nil {
				t.Fatalf("Next after exhaustion = (ok=%v, err=%v)", ok, err)
			}
		})
	}
}

// failAfter yields count arrivals and then fails.
type failAfter struct {
	count int
	fed   int
	err   error
}

func (s *failAfter) Next() (schedule.Arrival, bool, error) {
	if s.fed >= s.count {
		return schedule.Arrival{}, false, s.err
	}
	s.fed++
	return schedule.Arrival{Task: schedule.Task{Weight: 1, Volume: 1, Delta: 2}, Release: float64(s.fed)}, true, nil
}

// A source error surfaces at exactly the position the source produced it —
// after every preceding arrival has been delivered — and stays sticky.
func TestPrefetchPropagatesError(t *testing.T) {
	boom := errors.New("decode failed")
	// 700 puts the failure inside the second 512-batch.
	pf := NewPrefetch(&failAfter{count: 700, err: boom}, 512)
	defer pf.Stop()
	for i := 0; i < 700; i++ {
		a, ok, err := pf.Next()
		if err != nil || !ok {
			t.Fatalf("arrival %d: ok=%v err=%v", i, ok, err)
		}
		if a.Release != float64(i+1) {
			t.Fatalf("arrival %d has release %g", i, a.Release)
		}
	}
	for range 2 {
		if _, ok, err := pf.Next(); ok || !errors.Is(err, boom) {
			t.Fatalf("Next past the failure = (ok=%v, err=%v)", ok, err)
		}
	}
}

// Stop mid-stream releases the producer without deadlocking the consumer;
// Next afterwards reports end of stream, and Stop is idempotent.
func TestPrefetchStopEarly(t *testing.T) {
	src, err := NewStream(prefetchConfig(), 100000, 3)
	if err != nil {
		t.Fatal(err)
	}
	pf := NewPrefetch(src, 64)
	for i := 0; i < 10; i++ {
		if _, ok, err := pf.Next(); !ok || err != nil {
			t.Fatalf("arrival %d: ok=%v err=%v", i, ok, err)
		}
	}
	pf.Stop()
	pf.Stop()
	for i := 0; i < 200; i++ {
		if _, ok, err := pf.Next(); err != nil {
			t.Fatalf("Next after Stop errored: %v", err)
		} else if !ok {
			return
		}
	}
	t.Fatal("Next after Stop never reported end of stream")
}
