package workload

import (
	"math"
	"reflect"
	"testing"
)

func arrivalConfig() ArrivalConfig {
	return ArrivalConfig{Class: Uniform, P: 4, Process: Poisson, Rate: 8}
}

func TestGenerateArrivalsDeterministic(t *testing.T) {
	a, err := GenerateArrivals(arrivalConfig(), 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateArrivals(arrivalConfig(), 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c, err := GenerateArrivals(arrivalConfig(), 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGenerateArrivalsPoissonShape(t *testing.T) {
	arrivals, err := GenerateArrivals(arrivalConfig(), 4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	last := 0.0
	for i, a := range arrivals {
		if a.Release < last {
			t.Fatalf("arrival %d: releases not sorted (%g after %g)", i, a.Release, last)
		}
		last = a.Release
		if err := a.Validate(); err != nil {
			t.Fatalf("arrival %d: %v", i, err)
		}
	}
	// The empirical rate must be near the configured one (Poisson with
	// n=4000: the relative error of the mean is ~1.6%).
	rate := float64(len(arrivals)) / last
	if math.Abs(rate-8)/8 > 0.1 {
		t.Errorf("empirical rate %g, want about 8", rate)
	}
}

func TestGenerateArrivalsBursty(t *testing.T) {
	cfg := arrivalConfig()
	cfg.Process = Bursty
	cfg.MeanBurst = 5
	arrivals, err := GenerateArrivals(cfg, 3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Bursts share release dates, so there must be far fewer distinct release
	// times than tasks.
	distinct := 1
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i].Release != arrivals[i-1].Release {
			distinct++
		}
	}
	if distinct >= len(arrivals)*2/5 {
		t.Errorf("bursty stream has %d distinct releases for %d tasks; bursts are degenerate", distinct, len(arrivals))
	}
	// The long-run rate is preserved.
	rate := float64(len(arrivals)) / arrivals[len(arrivals)-1].Release
	if math.Abs(rate-8)/8 > 0.2 {
		t.Errorf("empirical bursty rate %g, want about 8", rate)
	}
}

func TestGenerateArrivalsTenants(t *testing.T) {
	cfg := arrivalConfig()
	cfg.Tenants = []TenantSpec{
		{Name: "gold", Weight: 4, Share: 0.25},
		{Name: "bronze", Weight: 1, Share: 0.75},
	}
	arrivals, err := GenerateArrivals(cfg, 4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, a := range arrivals {
		counts[a.Tenant]++
		if name := cfg.Tenants[a.Tenant].Name; a.Task.Name != name {
			t.Fatalf("tenant %d task named %q, want %q", a.Tenant, a.Task.Name, name)
		}
	}
	gold := float64(counts[0]) / float64(len(arrivals))
	if math.Abs(gold-0.25) > 0.05 {
		t.Errorf("gold share %g, want about 0.25", gold)
	}
}

func TestGenerateArrivalsValidation(t *testing.T) {
	if _, err := GenerateArrivals(arrivalConfig(), 0, 1); err == nil {
		t.Error("zero tasks accepted")
	}
	cfg := arrivalConfig()
	cfg.Rate = 0
	if _, err := GenerateArrivals(cfg, 10, 1); err == nil {
		t.Error("zero rate accepted")
	}
	cfg = arrivalConfig()
	cfg.Process = Bursty
	cfg.MeanBurst = 0.5
	if _, err := GenerateArrivals(cfg, 10, 1); err == nil {
		t.Error("sub-unit burst accepted")
	}
	cfg = arrivalConfig()
	cfg.Tenants = []TenantSpec{{Name: "t", Weight: 0, Share: 1}}
	if _, err := GenerateArrivals(cfg, 10, 1); err == nil {
		t.Error("zero tenant weight accepted")
	}
	cfg = arrivalConfig()
	cfg.Tenants = []TenantSpec{{Name: "t", Weight: 1, Share: 0}}
	if _, err := GenerateArrivals(cfg, 10, 1); err == nil {
		t.Error("zero tenant share accepted")
	}
}

func TestParseProcessRoundTrip(t *testing.T) {
	for _, p := range []ArrivalProcess{Poisson, Bursty} {
		got, err := ParseProcess(p.String())
		if err != nil || got != p {
			t.Errorf("round trip of %v failed: %v, %v", p, got, err)
		}
	}
	if _, err := ParseProcess("storm"); err == nil {
		t.Error("unknown process accepted")
	}
}

func TestParseTenants(t *testing.T) {
	got, err := ParseTenants("gold:4:0.2,silver:2:0.3,bronze:1:0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantSpec{
		{Name: "gold", Weight: 4, Share: 0.2},
		{Name: "silver", Weight: 2, Share: 0.3},
		{Name: "bronze", Weight: 1, Share: 0.5},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseTenants = %+v, want %+v", got, want)
	}
	if got, err := ParseTenants(""); err != nil || !reflect.DeepEqual(got, DefaultTenants()) {
		t.Errorf("empty spec = %+v, %v; want default tenants", got, err)
	}
	for _, bad := range []string{"gold:4", "gold:x:0.2", "gold:4:y"} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}

// A fractional (or huge) P with the heterogeneous class used to panic inside
// rand.Intn; it must either generate safely or be rejected, never panic.
func TestHeterogeneousFractionalPDoesNotPanic(t *testing.T) {
	cfg := ArrivalConfig{Class: Heterogeneous, P: 0.5, Process: Poisson, Rate: 4}
	arrivals, err := GenerateArrivals(cfg, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range arrivals {
		if err := a.Validate(); err != nil {
			t.Fatalf("arrival %d: %v", i, err)
		}
	}
	cfg.P = math.Inf(1)
	if _, err := GenerateArrivals(cfg, 5, 1); err == nil {
		t.Error("infinite P accepted")
	}
	cfg.P = 4
	cfg.Rate = math.Inf(1)
	if _, err := GenerateArrivals(cfg, 5, 1); err == nil {
		t.Error("infinite rate accepted")
	}
}

// A huge (but legal) mean burst size must not spin the geometric draw: the
// burst is capped at the tasks still needed, so generation stays O(n) even
// for astronomically bursty configurations.
func TestGenerateArrivalsHugeBurstBounded(t *testing.T) {
	cfg := ArrivalConfig{Class: Uniform, P: 4, Process: Bursty, Rate: 8, MeanBurst: 1e18}
	arrivals, err := GenerateArrivals(cfg, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 64 {
		t.Fatalf("got %d arrivals, want 64", len(arrivals))
	}
	// With a mean burst far beyond n, everything lands in one burst.
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i].Release != arrivals[0].Release {
			t.Fatalf("arrival %d release %g != %g, want one giant burst", i, arrivals[i].Release, arrivals[0].Release)
		}
	}
}

func TestGenerateArrivalsNaNBurstRejected(t *testing.T) {
	cfg := ArrivalConfig{Class: Uniform, P: 4, Process: Bursty, Rate: 8, MeanBurst: math.NaN()}
	if _, err := GenerateArrivals(cfg, 4, 1); err == nil {
		t.Errorf("NaN mean burst accepted")
	}
}
