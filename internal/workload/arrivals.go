package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/malleable-sched/malleable/internal/schedule"
)

// ArrivalProcess selects how release dates are drawn by GenerateArrivals.
type ArrivalProcess int

const (
	// Poisson draws i.i.d. exponential inter-arrival times: the open-loop
	// memoryless traffic model.
	Poisson ArrivalProcess = iota
	// Bursty draws Poisson-spaced bursts whose sizes are geometric with mean
	// MeanBurst; every task of a burst shares the same release date. The
	// long-run arrival rate still equals Rate.
	Bursty
)

// String returns the process name used in reports and flags.
func (p ArrivalProcess) String() string {
	switch p {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	default:
		return fmt.Sprintf("ArrivalProcess(%d)", int(p))
	}
}

// ParseProcess converts a process name (as produced by String) back to an
// ArrivalProcess.
func ParseProcess(name string) (ArrivalProcess, error) {
	for _, p := range []ArrivalProcess{Poisson, Bursty} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown arrival process %q", name)
}

// TenantSpec describes one tenant of a multi-tenant workload: its share of
// the arriving traffic and the weight multiplier applied to its tasks (a
// heavier tenant buys shorter flow times under weight-aware policies).
type TenantSpec struct {
	// Name identifies the tenant in reports.
	Name string
	// Weight multiplies the base task weight. Must be positive.
	Weight float64
	// Share is the tenant's fraction of the arriving traffic. Shares are
	// normalized, so only their relative sizes matter. Must be positive.
	Share float64
}

// DefaultTenants is the single-tenant workload: every task keeps its base
// weight.
func DefaultTenants() []TenantSpec {
	return []TenantSpec{{Name: "default", Weight: 1, Share: 1}}
}

// ParseTenants parses a comma-separated list of name:weight:share triples,
// e.g. "gold:4:0.2,silver:2:0.3,bronze:1:0.5". An empty string yields
// DefaultTenants.
func ParseTenants(spec string) ([]TenantSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return DefaultTenants(), nil
	}
	var out []TenantSpec
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("workload: tenant %q is not name:weight:share", part)
		}
		w, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: tenant %q: bad weight: %w", part, err)
		}
		s, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: tenant %q: bad share: %w", part, err)
		}
		out = append(out, TenantSpec{Name: fields[0], Weight: w, Share: s})
	}
	return out, nil
}

// ArrivalConfig parameterizes an online workload: task shapes come from one
// of the static instance classes, release dates from an arrival process, and
// weights from a multi-tenant mix.
type ArrivalConfig struct {
	// Class selects the task-shape distribution (weights, volumes, degree
	// bounds) — the same classes the offline experiments use.
	Class Class
	// P is the platform capacity the degree bounds are drawn against.
	P float64
	// Process selects the arrival process.
	Process ArrivalProcess
	// Rate is the long-run arrival rate (tasks per unit time). The offered
	// load of the uniform class is roughly Rate·E[V]/P = Rate/(2P).
	Rate float64
	// MeanBurst is the mean burst size of the Bursty process (>= 1; ignored
	// by Poisson).
	MeanBurst float64
	// Tenants is the tenant mix; nil means DefaultTenants.
	Tenants []TenantSpec
	// TenantSkew is a Zipf exponent reshaping the tenant shares: tenant i's
	// effective share becomes Share_i / (i+1)^TenantSkew, so with equal base
	// shares the traffic follows a Zipf law over the tenant list — the
	// canonical skewed multi-tenant load for router and affinity studies. 0
	// (the default) leaves the configured shares untouched; the skew draws
	// nothing from the random streams, so skew 0 is byte-identical to the
	// pre-skew generator.
	TenantSkew float64
	// CurveMin and CurveMax draw each task's speedup-curve parameter
	// (schedule.Task.Curve) uniformly from [CurveMin, CurveMax] — per-task
	// power-law exponents or Amdahl serial fractions, interpreted by the
	// run's speedup model. Both zero (the default) leaves every Curve at 0,
	// i.e. the model default, and perturbs no random stream.
	CurveMin, CurveMax float64
}

// Validate checks the configuration.
func (c *ArrivalConfig) Validate() error {
	if !(c.Rate > 0) || math.IsInf(c.Rate, 0) {
		return fmt.Errorf("workload: arrival rate must be positive and finite, got %g", c.Rate)
	}
	if c.Process == Bursty && (!(c.MeanBurst >= 1) || math.IsInf(c.MeanBurst, 0)) {
		return fmt.Errorf("workload: mean burst size must be at least 1 and finite, got %g", c.MeanBurst)
	}
	if c.Class != UnitClass && (!(c.P > 0) || math.IsInf(c.P, 0)) {
		return fmt.Errorf("workload: need a positive finite processor count, got %g", c.P)
	}
	for i, t := range c.Tenants {
		if !(t.Weight > 0) || math.IsInf(t.Weight, 0) || math.IsNaN(t.Weight) {
			return fmt.Errorf("workload: tenant %d (%s) has non-positive weight %g", i, t.Name, t.Weight)
		}
		if !(t.Share > 0) || math.IsInf(t.Share, 0) || math.IsNaN(t.Share) {
			return fmt.Errorf("workload: tenant %d (%s) has non-positive share %g", i, t.Name, t.Share)
		}
	}
	if c.CurveMin < 0 || c.CurveMax < 0 || math.IsNaN(c.CurveMin) || math.IsNaN(c.CurveMax) ||
		math.IsInf(c.CurveMin, 0) || math.IsInf(c.CurveMax, 0) || c.CurveMin > c.CurveMax {
		return fmt.Errorf("workload: curve range [%g, %g] must be finite, non-negative and ordered", c.CurveMin, c.CurveMax)
	}
	if c.TenantSkew < 0 || math.IsNaN(c.TenantSkew) || math.IsInf(c.TenantSkew, 0) {
		return fmt.Errorf("workload: tenant skew must be finite and non-negative, got %g", c.TenantSkew)
	}
	return nil
}

// TenantSkew reshapes a tenant mix by a Zipf law with exponent skew:
// tenant i's share is scaled by 1/(i+1)^skew, so earlier tenants absorb
// disproportionally more of the traffic (with equal base shares, exactly a
// Zipf distribution over ranks). Weights and names are preserved; skew 0
// returns an unscaled copy. It is what ArrivalConfig.TenantSkew applies
// under the hood, exported so callers can inspect or pre-compute the
// effective mix.
func TenantSkew(tenants []TenantSpec, skew float64) []TenantSpec {
	out := make([]TenantSpec, len(tenants))
	for i, t := range tenants {
		t.Share /= math.Pow(float64(i+1), skew)
		out[i] = t
	}
	return out
}

// GenerateArrivals draws n arrivals deterministically from the seed: task
// shapes from the configured instance class, release dates from the arrival
// process, and tenants by share. The stream is sorted by release date.
//
// It is the collect-everything form of NewStream — the two produce identical
// sequences for identical inputs, so callers that can consume arrivals one at
// a time should pull from a Stream instead and keep memory independent of n.
func GenerateArrivals(cfg ArrivalConfig, n int, seed int64) ([]schedule.Arrival, error) {
	stream, err := NewStream(cfg, n, seed)
	if err != nil {
		return nil, err
	}
	out := make([]schedule.Arrival, 0, n)
	for {
		a, ok, err := stream.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, a)
	}
}
