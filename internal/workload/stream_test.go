package workload

import (
	"testing"
)

// The streaming generator and the slice generator must emit identical
// sequences — GenerateArrivals is now defined as collecting the stream, so
// this pins the equivalence through an independent pull loop, across
// processes, tenants and curve draws.
func TestStreamMatchesGenerateArrivals(t *testing.T) {
	configs := map[string]ArrivalConfig{
		"poisson": {Class: Uniform, P: 8, Process: Poisson, Rate: 8},
		"bursty": {Class: Uniform, P: 8, Process: Bursty, Rate: 8, MeanBurst: 6,
			Tenants: []TenantSpec{{Name: "gold", Weight: 4, Share: 0.2}, {Name: "bronze", Weight: 1, Share: 0.8}}},
		"curves": {Class: Heterogeneous, P: 8, Process: Poisson, Rate: 2, CurveMin: 0.5, CurveMax: 0.9},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			const n = 500
			want, err := GenerateArrivals(cfg, n, 42)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := NewStream(cfg, n, 42)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; ; i++ {
				a, ok, err := stream.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					if i != n {
						t.Fatalf("stream ended after %d arrivals, want %d", i, n)
					}
					break
				}
				if i >= n {
					t.Fatalf("stream emitted more than %d arrivals", n)
				}
				if a != want[i] {
					t.Fatalf("arrival %d differs: stream %+v vs slice %+v", i, a, want[i])
				}
			}
			if stream.Remaining() != 0 {
				t.Errorf("drained stream reports %d remaining", stream.Remaining())
			}
			// Exhausted streams stay exhausted.
			if _, ok, _ := stream.Next(); ok {
				t.Error("drained stream yielded another arrival")
			}
		})
	}
}

// NewStream must reject exactly what GenerateArrivals rejects.
func TestStreamValidation(t *testing.T) {
	if _, err := NewStream(ArrivalConfig{Class: Uniform, P: 8, Process: Poisson, Rate: 8}, 0, 1); err == nil {
		t.Error("zero arrival budget accepted")
	}
	if _, err := NewStream(ArrivalConfig{Class: Uniform, P: 8, Process: Poisson, Rate: 0}, 10, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewStream(ArrivalConfig{Class: Uniform, P: 8, Process: ArrivalProcess(9), Rate: 8}, 10, 1); err == nil {
		t.Error("unknown process accepted")
	}
}

// The streaming draw path must not allocate per arrival once warmed: the
// whole point of the stream is that a 10M-task run's generation side is
// allocation-free in steady state.
func TestStreamSteadyStateAllocs(t *testing.T) {
	cfg := ArrivalConfig{Class: Uniform, P: 8, Process: Bursty, Rate: 8, MeanBurst: 4}
	stream, err := NewStream(cfg, 1<<20, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Warm: the first draws may touch lazy rand state.
	for i := 0; i < 64; i++ {
		if _, ok, _ := stream.Next(); !ok {
			t.Fatal("stream ended during warmup")
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok, _ := stream.Next(); !ok {
			t.Fatal("stream ended mid-measurement")
		}
	})
	if allocs != 0 {
		t.Errorf("stream.Next allocated %.3g times per draw, want 0", allocs)
	}
}
