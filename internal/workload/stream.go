package workload

import (
	"fmt"
	"math/rand"

	"github.com/malleable-sched/malleable/internal/schedule"
)

// Stream is the constant-memory form of GenerateArrivals: a pull iterator
// that draws the same deterministic arrival sequence one task at a time,
// holding only the generator state (two RNG streams, the tenant table and a
// burst counter) regardless of how many arrivals it will emit. It satisfies
// the engine's ArrivalStream contract — Next yields arrivals in
// non-decreasing release order and reports the end of the stream with
// ok=false — so a ten-million-task replay costs the same memory as a
// ten-task one.
//
// A Stream is single-use and not safe for concurrent use; create one per run
// (the sharded driver creates one per shard).
type Stream struct {
	cfg      ArrivalConfig
	tenants  []TenantSpec
	shareSum float64
	shapes   *Generator
	rng      *rand.Rand

	n         int     // total arrivals to emit
	emitted   int     // arrivals emitted so far
	now       float64 // release date of the current burst
	burstLeft int     // tasks left in the current burst
}

// NewStream validates the configuration and prepares the streaming
// generator. The emitted sequence is a pure function of (cfg, n, seed) and is
// identical to the slice GenerateArrivals returns for the same inputs.
func NewStream(cfg ArrivalConfig, n int, seed int64) (*Stream, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need at least one arrival, got %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Process != Poisson && cfg.Process != Bursty {
		return nil, fmt.Errorf("workload: unknown arrival process %d", int(cfg.Process))
	}
	tenants := cfg.Tenants
	if len(tenants) == 0 {
		tenants = DefaultTenants()
	}
	if cfg.TenantSkew > 0 {
		// The Zipf reshape only rescales the share table; it draws nothing,
		// so skew 0 leaves the random streams — and therefore existing
		// seeds — byte-identical.
		tenants = TenantSkew(tenants, cfg.TenantSkew)
	}
	var shareSum float64
	for _, t := range tenants {
		shareSum += t.Share
	}
	// Two decorrelated streams off the same seed: one for task shapes (via
	// the existing instance generator), one for the arrival process and the
	// tenant draw. Everything is a pure function of (cfg, n, seed).
	shapes, err := NewGenerator(cfg.Class, 1, cfg.P, seed)
	if err != nil {
		return nil, err
	}
	return &Stream{
		cfg:      cfg,
		tenants:  tenants,
		shareSum: shareSum,
		shapes:   shapes,
		rng:      rand.New(rand.NewSource(seed ^ 0x5deece66d)),
		n:        n,
	}, nil
}

// Remaining returns how many arrivals the stream will still emit.
func (s *Stream) Remaining() int { return s.n - s.emitted }

// Next draws the next arrival. It returns ok=false once the configured
// number of arrivals has been emitted; it never returns an error (the
// configuration was fully validated by NewStream), but carries the error
// return so it satisfies the engine's ArrivalStream interface directly.
func (s *Stream) Next() (schedule.Arrival, bool, error) {
	if s.emitted >= s.n {
		return schedule.Arrival{}, false, nil
	}
	if s.burstLeft == 0 {
		switch s.cfg.Process {
		case Poisson:
			s.now += s.rng.ExpFloat64() / s.cfg.Rate
			s.burstLeft = 1
		case Bursty:
			// Bursts arrive at rate Rate/MeanBurst; sizes are geometric with
			// mean MeanBurst, so the long-run task rate stays Rate. The draw
			// is capped at the tasks still needed: the excess would be
			// discarded anyway, and without the cap a huge MeanBurst (legal
			// per Validate) spins this loop ~MeanBurst iterations.
			s.now += s.rng.ExpFloat64() * s.cfg.MeanBurst / s.cfg.Rate
			s.burstLeft = 1
			for s.burstLeft < s.n-s.emitted && s.rng.Float64() >= 1/s.cfg.MeanBurst {
				s.burstLeft++
			}
		}
	}
	task := s.shapes.NextTask()
	tenant := 0
	u := s.rng.Float64() * s.shareSum
	for i, t := range s.tenants {
		if u < t.Share || i == len(s.tenants)-1 {
			tenant = i
			break
		}
		u -= t.Share
	}
	task.Weight *= s.tenants[tenant].Weight
	task.Name = s.tenants[tenant].Name
	if s.cfg.CurveMax > 0 {
		task.Curve = s.cfg.CurveMin + (s.cfg.CurveMax-s.cfg.CurveMin)*s.rng.Float64()
	}
	s.burstLeft--
	s.emitted++
	return schedule.Arrival{Task: task, Release: s.now, Tenant: tenant}, true, nil
}
