// Package workload generates the problem instances used by the paper's
// experiments and by the examples: the uniform random instances of Section
// V-A (and their constant-weight and constant-weight-and-volume variants),
// the δ > P/2 class of Theorem 11, the unit class of Section V-B, and the
// master–worker bandwidth-sharing scenarios of Figure 1. All generators are
// deterministic given a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/malleable-sched/malleable/internal/schedule"
)

// Class identifies an instance distribution.
type Class int

const (
	// Uniform is the paper's Section V-A distribution: δ_i uniform in (0, P),
	// w_i uniform in (0, 1), V_i uniform in (0, 1).
	Uniform Class = iota
	// ConstantWeight is Uniform with all weights equal to one.
	ConstantWeight
	// ConstantWeightVolume is Uniform with all weights and volumes equal to one.
	ConstantWeightVolume
	// LargeDelta draws δ_i uniformly in (P/2, P] with unit weights — the
	// class of Theorem 11 (every optimal schedule is greedy).
	LargeDelta
	// UnitClass is the restricted class of Section V-B: P = 1, V_i = w_i = 1,
	// δ_i uniform in [1/2, 1].
	UnitClass
	// Heterogeneous draws weights, volumes and degree bounds over wider,
	// skewed ranges; it is used by the examples and by robustness tests
	// rather than by a specific paper experiment.
	Heterogeneous
)

// String returns the class name used in reports.
func (c Class) String() string {
	switch c {
	case Uniform:
		return "uniform"
	case ConstantWeight:
		return "constant-weight"
	case ConstantWeightVolume:
		return "constant-weight-volume"
	case LargeDelta:
		return "large-delta"
	case UnitClass:
		return "unit-class"
	case Heterogeneous:
		return "heterogeneous"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ParseClass converts a class name (as produced by String) back to a Class.
func ParseClass(name string) (Class, error) {
	for _, c := range []Class{Uniform, ConstantWeight, ConstantWeightVolume, LargeDelta, UnitClass, Heterogeneous} {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown instance class %q", name)
}

// Generator produces random instances of a given class.
type Generator struct {
	// Class selects the distribution.
	Class Class
	// N is the number of tasks per instance.
	N int
	// P is the number of processors (ignored by UnitClass, which fixes P=1).
	P float64
	// Epsilon keeps the uniform draws away from zero so instances always
	// validate; it defaults to 0.01 when zero.
	Epsilon float64

	rng *rand.Rand
}

// NewGenerator creates a generator seeded deterministically.
func NewGenerator(class Class, n int, p float64, seed int64) (*Generator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need at least one task, got %d", n)
	}
	if class != UnitClass && !(p > 0) {
		return nil, fmt.Errorf("workload: need a positive processor count, got %g", p)
	}
	return &Generator{Class: class, N: n, P: p, Epsilon: 0.01, rng: rand.New(rand.NewSource(seed))}, nil
}

// NextTask draws a single task of the generator's class. It is the
// allocation-free unit draw behind Next — the streaming arrival generator
// calls it once per pulled arrival, so a million-task stream costs a million
// task draws and zero instance allocations. The random draws of one task are
// identical to the draws Next performs for each slot of an instance, so
// collecting N NextTask calls reproduces Next's tasks exactly.
func (g *Generator) NextTask() schedule.Task {
	eps := g.Epsilon
	if eps <= 0 {
		eps = 0.01
	}
	uniform := func(lo, hi float64) float64 { return lo + (hi-lo)*g.rng.Float64() }

	switch g.Class {
	case UnitClass:
		return schedule.Task{Weight: 1, Volume: 1, Delta: uniform(0.5, 1)}
	case LargeDelta:
		return schedule.Task{
			Weight: 1,
			Volume: uniform(eps, 1),
			Delta:  uniform(g.P/2+eps, g.P),
		}
	case Heterogeneous:
		// Integer degree bounds in [1, P]. Clamp the Intn argument so a
		// fractional P (< 1) or a P beyond int range cannot panic rand.Intn;
		// EffectiveDelta caps the bound at P during scheduling anyway.
		maxDelta := 1
		if g.P >= 2 {
			maxDelta = int(math.Min(g.P, 1<<30))
		}
		return schedule.Task{
			Weight: uniform(0.1, 10),
			Volume: uniform(0.1, 20),
			Delta:  float64(1 + g.rng.Intn(maxDelta)),
		}
	default:
		w := uniform(eps, 1)
		v := uniform(eps, 1)
		if g.Class == ConstantWeight || g.Class == ConstantWeightVolume {
			w = 1
		}
		if g.Class == ConstantWeightVolume {
			v = 1
		}
		return schedule.Task{Weight: w, Volume: v, Delta: uniform(eps, g.P)}
	}
}

// Next draws the next instance.
func (g *Generator) Next() *schedule.Instance {
	tasks := make([]schedule.Task, g.N)
	for i := range tasks {
		tasks[i] = g.NextTask()
	}
	p := g.P
	if g.Class == UnitClass {
		p = 1
	}
	return &schedule.Instance{P: p, Tasks: tasks}
}

// Batch draws count instances.
func (g *Generator) Batch(count int) []*schedule.Instance {
	out := make([]*schedule.Instance, count)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// BandwidthScenario describes the master–worker code-distribution setting of
// Figure 1 of the paper: a server with outgoing bandwidth P distributes codes
// of size V_i to workers whose incoming bandwidth is δ_i; worker i then
// processes tasks at rate w_i until the horizon T. Maximizing the number of
// tasks processed by T is equivalent to minimizing Σ w_i C_i.
type BandwidthScenario struct {
	// ServerBandwidth is the outgoing bandwidth of the server (the paper's P).
	ServerBandwidth float64
	// Horizon is the time T at which processed tasks are counted.
	Horizon float64
	// Workers describe each worker: code size, incoming bandwidth and
	// processing rate.
	Workers []Worker
}

// Worker is one worker of a bandwidth-sharing scenario.
type Worker struct {
	// Name identifies the worker in reports.
	Name string
	// CodeSize is the volume of the code to download (the paper's V_i).
	CodeSize float64
	// Bandwidth is the worker's incoming bandwidth (the paper's δ_i).
	Bandwidth float64
	// Rate is the task-processing rate once the code is received (the
	// paper's w_i).
	Rate float64
}

// Instance converts the scenario to the equivalent MWCT instance.
func (b *BandwidthScenario) Instance() (*schedule.Instance, error) {
	tasks := make([]schedule.Task, len(b.Workers))
	for i, w := range b.Workers {
		tasks[i] = schedule.Task{Name: w.Name, Weight: w.Rate, Volume: w.CodeSize, Delta: w.Bandwidth}
	}
	return schedule.NewInstance(b.ServerBandwidth, tasks)
}

// TasksProcessedBy returns the total number of tasks processed by the horizon
// when worker i receives its code at time completions[i]: Σ_i rate_i ·
// max(0, T - C_i).
func (b *BandwidthScenario) TasksProcessedBy(completions []float64) float64 {
	total := 0.0
	for i, w := range b.Workers {
		if i >= len(completions) {
			break
		}
		if slack := b.Horizon - completions[i]; slack > 0 {
			total += w.Rate * slack
		}
	}
	return total
}

// NewBandwidthScenario draws a random scenario with the given number of
// workers. The server bandwidth is sized so that it is the bottleneck (as in
// the paper's motivation, the sum of worker bandwidths exceeds the server's).
func NewBandwidthScenario(workers int, seed int64) (*BandwidthScenario, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("workload: need at least one worker, got %d", workers)
	}
	rng := rand.New(rand.NewSource(seed))
	b := &BandwidthScenario{ServerBandwidth: float64(workers), Horizon: 0}
	sumBandwidth := 0.0
	for i := 0; i < workers; i++ {
		w := Worker{
			Name:      fmt.Sprintf("worker-%02d", i+1),
			CodeSize:  0.5 + 2*rng.Float64(),
			Bandwidth: 0.5 + 1.5*rng.Float64(),
			Rate:      0.2 + rng.Float64(),
		}
		sumBandwidth += w.Bandwidth
		b.Workers = append(b.Workers, w)
	}
	// Make the server the bottleneck: about 60% of the aggregate worker
	// bandwidth.
	b.ServerBandwidth = 0.6 * sumBandwidth
	// A horizon comfortably beyond the best possible distribution time.
	var totalCode float64
	for _, w := range b.Workers {
		totalCode += w.CodeSize
	}
	b.Horizon = 2 * totalCode / b.ServerBandwidth
	return b, nil
}
