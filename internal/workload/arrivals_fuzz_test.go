package workload

import (
	"math"
	"testing"
)

// FuzzGenerateArrivals drives the arrival generator with adversarial
// configurations — hostile rates, burst sizes, tenant mixes and curve ranges
// — and checks the generator's contract on every stream it accepts:
//
//   - exactly n arrivals (the task budget is respected, never exceeded by a
//     trailing burst);
//   - release dates globally non-decreasing (hence non-decreasing per
//     tenant), finite and non-negative;
//   - no NaN, infinite or negative volume/weight/delta/curve on any task
//     (every arrival passes schedule.Arrival.Validate);
//   - drawn curves stay inside the configured [CurveMin, CurveMax] range;
//   - determinism: the same inputs regenerate the same stream.
//
// Configurations the generator rejects with an error are fine — the fuzz
// checks that nothing invalid slips through as data.
func FuzzGenerateArrivals(f *testing.F) {
	f.Add(16, int64(1), 0, 0, 8.0, 0.0, 0.0, 0.0, 1.0, 1.0, 4.0, 0.25, 0.0)
	f.Add(64, int64(99), 1, 1, 2.0, 8.0, 0.4, 0.9, 2.0, 0.5, 1.0, 0.5, 1.2)
	f.Add(1, int64(-7), 5, 1, 1e-3, 1e18, 0.0, 0.0, 1e9, 1e-9, 1.0, 1.0, 0.0)
	f.Add(32, int64(0), 3, 0, math.MaxFloat64, 1.0, 0.9, 0.9, 1.0, 1.0, 1.0, 1.0, math.NaN())
	f.Add(8, int64(42), 2, 1, 4.0, math.NaN(), 0.5, 0.25, math.Inf(1), 1.0, 1.0, 1.0, 1e9)
	f.Add(128, int64(17), 0, 0, 16.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 2.5)
	f.Fuzz(func(t *testing.T, n int, seed int64, classIdx, processIdx int,
		rate, meanBurst, curveMin, curveMax, w1, s1, w2, s2, tenantSkew float64) {
		if n < 1 || n > 512 {
			n = 1 + (abs(n) % 512)
		}
		classes := []Class{Uniform, ConstantWeight, ConstantWeightVolume, LargeDelta, UnitClass, Heterogeneous}
		cfg := ArrivalConfig{
			Class:      classes[abs(classIdx)%len(classes)],
			P:          8,
			Process:    ArrivalProcess(abs(processIdx) % 2),
			Rate:       rate,
			MeanBurst:  meanBurst,
			CurveMin:   curveMin,
			CurveMax:   curveMax,
			TenantSkew: tenantSkew,
			Tenants: []TenantSpec{
				{Name: "a", Weight: w1, Share: s1},
				{Name: "b", Weight: w2, Share: s2},
			},
		}
		out, err := GenerateArrivals(cfg, n, seed)
		if err != nil {
			return // rejected configurations are allowed; bad data is not
		}
		if len(out) != n {
			t.Fatalf("got %d arrivals, want exactly %d", len(out), n)
		}
		prev := 0.0
		for i, a := range out {
			if err := a.Validate(); err != nil {
				t.Fatalf("arrival %d invalid: %v (%+v)", i, err, a)
			}
			if a.Release < prev {
				t.Fatalf("arrival %d release %g precedes %g — stream not sorted", i, a.Release, prev)
			}
			prev = a.Release
			if math.IsNaN(a.Task.Volume) || a.Task.Volume < 0 {
				t.Fatalf("arrival %d has invalid volume %g", i, a.Task.Volume)
			}
			if cfg.CurveMax > 0 {
				if a.Task.Curve < cfg.CurveMin || a.Task.Curve > cfg.CurveMax {
					t.Fatalf("arrival %d curve %g outside [%g, %g]", i, a.Task.Curve, cfg.CurveMin, cfg.CurveMax)
				}
			} else if a.Task.Curve != 0 {
				t.Fatalf("arrival %d has curve %g with curves disabled", i, a.Task.Curve)
			}
			if a.Tenant != 0 && a.Tenant != 1 {
				t.Fatalf("arrival %d drawn for unknown tenant %d", i, a.Tenant)
			}
		}
		again, err := GenerateArrivals(cfg, n, seed)
		if err != nil {
			t.Fatalf("second generation errored: %v", err)
		}
		for i := range out {
			if out[i] != again[i] {
				t.Fatalf("arrival %d not deterministic: %+v vs %+v", i, out[i], again[i])
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		// Guard the minimum int, whose negation overflows.
		if v == math.MinInt {
			return math.MaxInt
		}
		return -v
	}
	return v
}
