package workload

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/iotest"

	"github.com/malleable-sched/malleable/internal/schedule"
)

// A generated stream must round-trip through the JSONL codec exactly: Go's
// JSON encoder emits the shortest float64 representation that parses back to
// the same bits, so record/replay is lossless.
func TestTraceRoundTripExact(t *testing.T) {
	cfg := ArrivalConfig{
		Class: Uniform, P: 8, Process: Bursty, Rate: 8, MeanBurst: 4,
		Tenants:  []TenantSpec{{Name: "gold", Weight: 4, Share: 0.3}, {Name: "bronze", Weight: 1, Share: 0.7}},
		CurveMin: 0.5, CurveMax: 0.9,
	}
	arrivals, err := GenerateArrivals(cfg, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, arrivals); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(arrivals) {
		t.Fatalf("trace has %d lines for %d arrivals", lines, len(arrivals))
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(arrivals) {
		t.Fatalf("read %d arrivals, want %d", len(back), len(arrivals))
	}
	for i := range back {
		if back[i] != arrivals[i] {
			t.Fatalf("arrival %d not bit-identical: %+v vs %+v", i, back[i], arrivals[i])
		}
	}
}

// The reader must skip blank lines, report malformed lines with their line
// number, and the writer must refuse arrivals that would not replay.
func TestTraceCodecEdges(t *testing.T) {
	src := "\n{\"task\":{\"weight\":1,\"volume\":2,\"delta\":1},\"release\":0.5}\n\n" +
		"{\"task\":{\"weight\":2,\"volume\":1,\"delta\":2},\"release\":1,\"tenant\":3}\n"
	back, err := ReadTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Release != 0.5 || back[1].Tenant != 3 {
		t.Fatalf("parsed %+v", back)
	}

	if _, err := ReadTrace(strings.NewReader("{\"task\":{}}\nnot json\n")); err == nil {
		t.Error("malformed line accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %v does not name line 2", err)
	}

	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	// Zero weight fails schedule.Arrival.Validate: nothing unreplayable may
	// enter a trace file.
	if err := tw.Write(schedule.Arrival{Task: schedule.Task{Weight: 0, Volume: 1, Delta: 1}}); err == nil {
		t.Error("invalid arrival written to trace")
	}
	if tw.Count() != 0 {
		t.Errorf("count = %d after rejected write", tw.Count())
	}
}

// Corrupt-input error paths of the streaming reader: every failure must name
// the offending line so a damaged multi-gigabyte trace is debuggable, and a
// truncated final line (the classic torn tail of a killed recorder) must
// fail the replay rather than silently shortening the workload.
func TestTraceReaderCorruptInput(t *testing.T) {
	goodLine := `{"task":{"weight":1,"volume":2,"delta":1},"release":0.5}`

	t.Run("truncated final line", func(t *testing.T) {
		// Two good arrivals, then a tail cut mid-object — no trailing
		// newline, as a torn write would leave it.
		src := goodLine + "\n" + goodLine + "\n" + `{"task":{"weight":1,"vol`
		tr := NewTraceReader(strings.NewReader(src))
		for i := 0; i < 2; i++ {
			if _, ok, err := tr.Next(); err != nil || !ok {
				t.Fatalf("arrival %d: ok=%v err=%v", i, ok, err)
			}
		}
		_, ok, err := tr.Next()
		if ok || err == nil {
			t.Fatalf("truncated tail: ok=%v err=%v, want a line-3 error", ok, err)
		}
		if !strings.Contains(err.Error(), "line 3") {
			t.Errorf("error %v does not name line 3", err)
		}
	})

	t.Run("blank lines do not shift numbering", func(t *testing.T) {
		src := "\n\n" + goodLine + "\n\nnot json\n"
		tr := NewTraceReader(strings.NewReader(src))
		if _, ok, err := tr.Next(); err != nil || !ok {
			t.Fatalf("good arrival: ok=%v err=%v", ok, err)
		}
		_, _, err := tr.Next()
		// "not json" is the 5th physical line: blank lines count.
		if err == nil || !strings.Contains(err.Error(), "line 5") {
			t.Errorf("error %v does not name line 5", err)
		}
	})

	t.Run("oversized line", func(t *testing.T) {
		huge := `{"task":{"weight":1,"volume":2,"delta":1},"name":"` + strings.Repeat("x", maxTraceLine) + `"}`
		tr := NewTraceReader(strings.NewReader(goodLine + "\n" + huge + "\n"))
		if _, ok, err := tr.Next(); err != nil || !ok {
			t.Fatalf("good arrival: ok=%v err=%v", ok, err)
		}
		_, ok, err := tr.Next()
		if ok || err == nil || !strings.Contains(err.Error(), "line 2") {
			t.Errorf("oversized line: ok=%v err=%v, want a line-2 error", ok, err)
		}
	})

	t.Run("reader failure carries position", func(t *testing.T) {
		failing := io.MultiReader(strings.NewReader(goodLine+"\n"), iotest.ErrReader(errBoom))
		tr := NewTraceReader(failing)
		if _, ok, err := tr.Next(); err != nil || !ok {
			t.Fatalf("good arrival: ok=%v err=%v", ok, err)
		}
		_, ok, err := tr.Next()
		if ok || err == nil || !strings.Contains(err.Error(), "line 2") {
			t.Errorf("failing reader: ok=%v err=%v, want a line-2 error", ok, err)
		}
		if !strings.Contains(err.Error(), "boom") {
			t.Errorf("error %v lost the underlying cause", err)
		}
	})

	t.Run("error is terminal after a good prefix replays", func(t *testing.T) {
		// ReadTrace surfaces the same line-numbered error as the streaming
		// loop would, discarding the partial prefix.
		if _, err := ReadTrace(strings.NewReader(goodLine + "\n{")); err == nil || !strings.Contains(err.Error(), "line 2") {
			t.Errorf("ReadTrace error = %v, want line-2 failure", err)
		}
	})
}

var errBoom = errors.New("boom")
