package workload

import (
	"bytes"
	"strings"
	"testing"

	"github.com/malleable-sched/malleable/internal/schedule"
)

// A generated stream must round-trip through the JSONL codec exactly: Go's
// JSON encoder emits the shortest float64 representation that parses back to
// the same bits, so record/replay is lossless.
func TestTraceRoundTripExact(t *testing.T) {
	cfg := ArrivalConfig{
		Class: Uniform, P: 8, Process: Bursty, Rate: 8, MeanBurst: 4,
		Tenants:  []TenantSpec{{Name: "gold", Weight: 4, Share: 0.3}, {Name: "bronze", Weight: 1, Share: 0.7}},
		CurveMin: 0.5, CurveMax: 0.9,
	}
	arrivals, err := GenerateArrivals(cfg, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, arrivals); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(arrivals) {
		t.Fatalf("trace has %d lines for %d arrivals", lines, len(arrivals))
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(arrivals) {
		t.Fatalf("read %d arrivals, want %d", len(back), len(arrivals))
	}
	for i := range back {
		if back[i] != arrivals[i] {
			t.Fatalf("arrival %d not bit-identical: %+v vs %+v", i, back[i], arrivals[i])
		}
	}
}

// The reader must skip blank lines, report malformed lines with their line
// number, and the writer must refuse arrivals that would not replay.
func TestTraceCodecEdges(t *testing.T) {
	src := "\n{\"task\":{\"weight\":1,\"volume\":2,\"delta\":1},\"release\":0.5}\n\n" +
		"{\"task\":{\"weight\":2,\"volume\":1,\"delta\":2},\"release\":1,\"tenant\":3}\n"
	back, err := ReadTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Release != 0.5 || back[1].Tenant != 3 {
		t.Fatalf("parsed %+v", back)
	}

	if _, err := ReadTrace(strings.NewReader("{\"task\":{}}\nnot json\n")); err == nil {
		t.Error("malformed line accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %v does not name line 2", err)
	}

	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	// Zero weight fails schedule.Arrival.Validate: nothing unreplayable may
	// enter a trace file.
	if err := tw.Write(schedule.Arrival{Task: schedule.Task{Weight: 0, Volume: 1, Delta: 1}}); err == nil {
		t.Error("invalid arrival written to trace")
	}
	if tw.Count() != 0 {
		t.Errorf("count = %d after rejected write", tw.Count())
	}
}
