package lp

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/malleable-sched/malleable/internal/numeric"
)

// solveBoth solves the model with both backends and checks they agree.
func solveBoth(t *testing.T, m *Model) (*Solution, *ExactSolution) {
	t.Helper()
	fs, errF := m.Solve()
	es, errE := m.SolveExact()
	if (errF == nil) != (errE == nil) {
		t.Fatalf("backend disagreement: float err=%v exact err=%v", errF, errE)
	}
	if errF != nil {
		return fs, es
	}
	if !numeric.ApproxEqualTol(fs.Objective, es.ObjectiveFloat(), 1e-6) {
		t.Fatalf("objective disagreement: float %v exact %v", fs.Objective, es.ObjectiveFloat())
	}
	return fs, es
}

func TestSimpleMaximization(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic example, opt 36 at (2,6))
	m := NewModel(Maximize)
	x := m.AddVariable("x", 3)
	y := m.AddVariable("y", 5)
	m.AddConstraint("c1", map[int]float64{x: 1}, LE, 4)
	m.AddConstraint("c2", map[int]float64{y: 2}, LE, 12)
	m.AddConstraint("c3", map[int]float64{x: 3, y: 2}, LE, 18)
	sol, exact := solveBoth(t, m)
	if !numeric.ApproxEqual(sol.Objective, 36) {
		t.Errorf("objective = %v, want 36", sol.Objective)
	}
	if !numeric.ApproxEqual(sol.Value(x), 2) || !numeric.ApproxEqual(sol.Value(y), 6) {
		t.Errorf("solution = (%v, %v), want (2, 6)", sol.Value(x), sol.Value(y))
	}
	if exact.Objective.Cmp(big.NewRat(36, 1)) != 0 {
		t.Errorf("exact objective = %v, want 36", exact.Objective)
	}
}

func TestSimpleMinimizationWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x + 2y >= 6, opt at (2,2) = 10.
	m := NewModel(Minimize)
	x := m.AddVariable("x", 2)
	y := m.AddVariable("y", 3)
	m.AddConstraint("c1", map[int]float64{x: 1, y: 1}, GE, 4)
	m.AddConstraint("c2", map[int]float64{x: 1, y: 2}, GE, 6)
	sol, _ := solveBoth(t, m)
	if !numeric.ApproxEqual(sol.Objective, 10) {
		t.Errorf("objective = %v, want 10", sol.Objective)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x + y s.t. x + 2y = 4, 3x + 2y = 8 -> x=2, y=1, obj 3.
	m := NewModel(Minimize)
	x := m.AddVariable("x", 1)
	y := m.AddVariable("y", 1)
	m.AddConstraint("e1", map[int]float64{x: 1, y: 2}, EQ, 4)
	m.AddConstraint("e2", map[int]float64{x: 3, y: 2}, EQ, 8)
	sol, _ := solveBoth(t, m)
	if !numeric.ApproxEqual(sol.Objective, 3) {
		t.Errorf("objective = %v, want 3", sol.Objective)
	}
	if !numeric.ApproxEqual(sol.Value(x), 2) || !numeric.ApproxEqual(sol.Value(y), 1) {
		t.Errorf("solution = (%v, %v), want (2, 1)", sol.Value(x), sol.Value(y))
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// Constraint written with a negative right-hand side: -x - y <= -4 is x + y >= 4.
	m := NewModel(Minimize)
	x := m.AddVariable("x", 1)
	y := m.AddVariable("y", 2)
	m.AddConstraint("c", map[int]float64{x: -1, y: -1}, LE, -4)
	sol, _ := solveBoth(t, m)
	if !numeric.ApproxEqual(sol.Objective, 4) {
		t.Errorf("objective = %v, want 4 (all weight on x)", sol.Objective)
	}
	if !numeric.ApproxEqual(sol.Value(x), 4) {
		t.Errorf("x = %v, want 4", sol.Value(x))
	}
}

func TestInfeasibleModel(t *testing.T) {
	m := NewModel(Minimize)
	x := m.AddVariable("x", 1)
	m.AddConstraint("c1", map[int]float64{x: 1}, LE, 1)
	m.AddConstraint("c2", map[int]float64{x: 1}, GE, 2)
	sol, err := m.Solve()
	if err == nil || sol.Status != Infeasible {
		t.Errorf("expected infeasible, got status %v err %v", sol.Status, err)
	}
	if !errors.Is(err, ErrNotOptimal) {
		t.Errorf("error should wrap ErrNotOptimal")
	}
	es, err := m.SolveExact()
	if err == nil || es.Status != Infeasible {
		t.Errorf("exact: expected infeasible, got status %v err %v", es.Status, err)
	}
}

func TestUnboundedModel(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVariable("x", 1)
	m.AddConstraint("c", map[int]float64{x: -1}, LE, 0) // -x <= 0, always true
	sol, err := m.Solve()
	if err == nil || sol.Status != Unbounded {
		t.Errorf("expected unbounded, got status %v err %v", sol.Status, err)
	}
}

func TestDegenerateProblemTerminates(t *testing.T) {
	// A classic degenerate LP (Beale's example adapted): Bland's rule must not cycle.
	m := NewModel(Minimize)
	x1 := m.AddVariable("x1", -0.75)
	x2 := m.AddVariable("x2", 150)
	x3 := m.AddVariable("x3", -0.02)
	x4 := m.AddVariable("x4", 6)
	m.AddConstraint("c1", map[int]float64{x1: 0.25, x2: -60, x3: -0.04, x4: 9}, LE, 0)
	m.AddConstraint("c2", map[int]float64{x1: 0.5, x2: -90, x3: -0.02, x4: 3}, LE, 0)
	m.AddConstraint("c3", map[int]float64{x3: 1}, LE, 1)
	sol, err := m.Solve()
	if err != nil {
		t.Fatalf("degenerate LP failed: %v", err)
	}
	if !numeric.ApproxEqualTol(sol.Objective, -0.05, 1e-6) {
		t.Errorf("objective = %v, want -0.05", sol.Objective)
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicate equality constraints produce a redundant row whose artificial
	// variable cannot be driven out; the solver must still succeed.
	m := NewModel(Minimize)
	x := m.AddVariable("x", 1)
	y := m.AddVariable("y", 1)
	m.AddConstraint("e1", map[int]float64{x: 1, y: 1}, EQ, 2)
	m.AddConstraint("e2", map[int]float64{x: 1, y: 1}, EQ, 2)
	m.AddConstraint("e3", map[int]float64{x: 2, y: 2}, EQ, 4)
	sol, _ := solveBoth(t, m)
	if !numeric.ApproxEqual(sol.Objective, 2) {
		t.Errorf("objective = %v, want 2", sol.Objective)
	}
}

func TestZeroObjective(t *testing.T) {
	// Pure feasibility problem.
	m := NewModel(Minimize)
	x := m.AddVariable("x", 0)
	m.AddConstraint("c", map[int]float64{x: 1}, GE, 3)
	sol, _ := solveBoth(t, m)
	if sol.Status != Optimal || sol.Value(x) < 3-1e-9 {
		t.Errorf("feasibility solve failed: %+v", sol)
	}
}

func TestValidate(t *testing.T) {
	m := NewModel(Minimize)
	if err := m.Validate(); err == nil {
		t.Errorf("empty model should not validate")
	}
	x := m.AddVariable("x", 1)
	m.AddConstraint("c", map[int]float64{x: 1}, LE, 1)
	if err := m.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestModelStringAndNames(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVariable("width", 2)
	m.AddConstraint("cap", map[int]float64{x: 1}, LE, 5)
	if m.VariableName(x) != "width" {
		t.Errorf("VariableName wrong")
	}
	s := m.String()
	if s == "" {
		t.Errorf("empty String()")
	}
	if m.NumVariables() != 1 || m.NumConstraints() != 1 {
		t.Errorf("counts wrong")
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Errorf("Op strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterationLimit.String() != "iteration-limit" {
		t.Errorf("Status strings wrong")
	}
}

// knapsackLPOptimum computes the optimum of the LP relaxation of a knapsack
// problem directly (greedy by density), to cross-check the simplex.
func knapsackLPOptimum(values, weights []float64, capacity float64) float64 {
	type item struct{ v, w float64 }
	items := make([]item, len(values))
	for i := range values {
		items[i] = item{values[i], weights[i]}
	}
	// insertion sort by density descending (n is tiny)
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].v/items[j].w > items[j-1].v/items[j-1].w; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	total := 0.0
	for _, it := range items {
		if capacity <= 0 {
			break
		}
		take := it.w
		if take > capacity {
			take = capacity
		}
		total += it.v * take / it.w
		capacity -= take
	}
	return total
}

// Property: the simplex agrees with the analytic optimum of random fractional
// knapsack instances, in both backends.
func TestQuickFractionalKnapsack(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = float64(1 + rng.Intn(20))
			weights[i] = float64(1 + rng.Intn(10))
		}
		capacity := float64(1 + rng.Intn(25))

		m := NewModel(Maximize)
		vars := make([]int, n)
		capRow := map[int]float64{}
		for i := range values {
			vars[i] = m.AddVariable("x", values[i])
			capRow[vars[i]] = weights[i]
			m.AddConstraint("ub", map[int]float64{vars[i]: weights[i]}, LE, weights[i]) // x_i <= 1 scaled
		}
		m.AddConstraint("cap", capRow, LE, capacity)
		want := knapsackLPOptimum(values, weights, capacity)
		sol, err := m.Solve()
		if err != nil {
			return false
		}
		exact, err := m.SolveExact()
		if err != nil {
			return false
		}
		return numeric.ApproxEqualTol(sol.Objective, want, 1e-6) &&
			numeric.ApproxEqualTol(exact.ObjectiveFloat(), want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: float and exact backends agree on random feasible LPs built so
// that feasibility is guaranteed (constraints of the form sum a_i x_i <= b
// with a_i, b >= 0).
func TestQuickBackendsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		mcons := 1 + rng.Intn(4)
		m := NewModel(Maximize)
		vars := make([]int, n)
		for i := range vars {
			vars[i] = m.AddVariable("x", float64(rng.Intn(10)))
		}
		bounded := false
		for c := 0; c < mcons; c++ {
			row := map[int]float64{}
			allPos := true
			for i := range vars {
				a := float64(rng.Intn(5))
				if a > 0 {
					row[vars[i]] = a
				} else {
					allPos = false
				}
			}
			if len(row) == 0 {
				continue
			}
			bounded = bounded || allPos
			m.AddConstraint("c", row, LE, float64(1+rng.Intn(20)))
		}
		if !bounded {
			// Ensure the LP is bounded so that both backends return Optimal.
			row := map[int]float64{}
			for i := range vars {
				row[vars[i]] = 1
			}
			m.AddConstraint("bound", row, LE, 50)
		}
		sol, errF := m.Solve()
		exact, errE := m.SolveExact()
		if errF != nil || errE != nil {
			return errF != nil && errE != nil
		}
		return numeric.ApproxEqualTol(sol.Objective, exact.ObjectiveFloat(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestExactSolutionConversions(t *testing.T) {
	m := NewModel(Minimize)
	x := m.AddVariable("x", 3)
	m.AddConstraint("c", map[int]float64{x: 2}, GE, 1)
	es, err := m.SolveExact()
	if err != nil {
		t.Fatal(err)
	}
	if es.X[x].Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("exact x = %v, want 1/2", es.X[x])
	}
	if !numeric.ApproxEqual(es.Value(x), 0.5) {
		t.Errorf("Value(x) = %v", es.Value(x))
	}
	fs := es.FloatSolution()
	if !numeric.ApproxEqual(fs.Objective, 1.5) {
		t.Errorf("FloatSolution objective = %v, want 1.5", fs.Objective)
	}
}
