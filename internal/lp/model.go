// Package lp provides a small, self-contained linear-programming solver used
// to compute optimal malleable schedules for a fixed completion-time order
// (Corollary 1 of the paper). It implements a dense two-phase primal simplex
// with two interchangeable arithmetic backends: fast float64 and exact
// math/big.Rat. All decision variables are non-negative, which matches the
// scheduling LPs (column lengths and per-column allocations are non-negative
// by construction).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense selects minimization or maximization of the objective.
type Sense int

const (
	// Minimize the objective function.
	Minimize Sense = iota
	// Maximize the objective function.
	Maximize
)

// Op is a constraint comparison operator.
type Op int

const (
	// LE is "less than or equal".
	LE Op = iota
	// GE is "greater than or equal".
	GE
	// EQ is "equal".
	EQ
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Status describes the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective can be improved without bound.
	Unbounded
	// IterationLimit means the solver stopped before converging.
	IterationLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrNotOptimal is wrapped by errors returned when a solve terminates without
// an optimal solution.
var ErrNotOptimal = errors.New("lp: no optimal solution")

type constraint struct {
	coeffs map[int]float64
	op     Op
	rhs    float64
}

// Model is a linear program under construction. All variables are implicitly
// constrained to be non-negative. The zero value is not usable; use NewModel.
type Model struct {
	sense    Sense
	obj      []float64
	names    []string
	cons     []constraint
	conNames []string
}

// NewModel returns an empty model with the given optimization sense.
func NewModel(sense Sense) *Model {
	return &Model{sense: sense}
}

// NumVariables returns the number of variables added so far.
func (m *Model) NumVariables() int { return len(m.obj) }

// NumConstraints returns the number of constraints added so far.
func (m *Model) NumConstraints() int { return len(m.cons) }

// AddVariable adds a non-negative variable with the given objective
// coefficient and returns its index. The name is used only for diagnostics.
func (m *Model) AddVariable(name string, objCoeff float64) int {
	m.obj = append(m.obj, objCoeff)
	m.names = append(m.names, name)
	return len(m.obj) - 1
}

// SetObjectiveCoeff overwrites the objective coefficient of variable v.
func (m *Model) SetObjectiveCoeff(v int, c float64) {
	m.mustVar(v)
	m.obj[v] = c
}

// AddConstraint adds the constraint sum_i coeffs[i]*x_i (op) rhs. The coeffs
// map is copied. Variables absent from the map have coefficient zero.
func (m *Model) AddConstraint(name string, coeffs map[int]float64, op Op, rhs float64) {
	cp := make(map[int]float64, len(coeffs))
	for v, c := range coeffs {
		m.mustVar(v)
		if c != 0 {
			cp[v] = c
		}
	}
	m.cons = append(m.cons, constraint{coeffs: cp, op: op, rhs: rhs})
	m.conNames = append(m.conNames, name)
}

func (m *Model) mustVar(v int) {
	if v < 0 || v >= len(m.obj) {
		panic(fmt.Sprintf("lp: variable index %d out of range [0,%d)", v, len(m.obj)))
	}
}

// VariableName returns the diagnostic name of variable v.
func (m *Model) VariableName(v int) string {
	m.mustVar(v)
	return m.names[v]
}

// Solution is the result of solving a model with the float64 backend.
type Solution struct {
	// Status reports whether the solve found an optimum.
	Status Status
	// Objective is the optimal objective value (in the model's sense).
	Objective float64
	// X holds the value of each model variable.
	X []float64
}

// Value returns the value of variable v in the solution.
func (s *Solution) Value(v int) float64 { return s.X[v] }

// Solve optimizes the model with the float64 simplex backend.
func (m *Model) Solve() (*Solution, error) {
	std := m.standardForm()
	res, status := runSimplex[float64](floatArith{}, std)
	if status != Optimal {
		return &Solution{Status: status}, fmt.Errorf("%w: %s", ErrNotOptimal, status)
	}
	obj := res.objective
	if m.sense == Maximize {
		obj = -obj
	}
	return &Solution{Status: Optimal, Objective: obj, X: res.x[:m.NumVariables()]}, nil
}

// SolveExact optimizes the model with the exact rational backend and returns
// the solution rounded to float64 along with the exact objective value kept in
// the returned ExactSolution.
func (m *Model) SolveExact() (*ExactSolution, error) {
	std := m.standardForm()
	ar := ratArith{}
	res, status := runSimplex[ratValue](ar, std)
	if status != Optimal {
		return &ExactSolution{Status: status}, fmt.Errorf("%w: %s", ErrNotOptimal, status)
	}
	return newExactSolution(m, res), nil
}

// standardForm converts the model into "minimize c.x subject to A.x (op) b,
// x >= 0" with the objective negated if the model maximizes.
type standardProblem struct {
	numVars int
	obj     []float64
	rows    [][]float64
	ops     []Op
	rhs     []float64
}

func (m *Model) standardForm() *standardProblem {
	n := m.NumVariables()
	obj := make([]float64, n)
	copy(obj, m.obj)
	if m.sense == Maximize {
		for i := range obj {
			obj[i] = -obj[i]
		}
	}
	p := &standardProblem{numVars: n, obj: obj}
	for _, c := range m.cons {
		row := make([]float64, n)
		for v, coeff := range c.coeffs {
			row[v] = coeff
		}
		p.rows = append(p.rows, row)
		p.ops = append(p.ops, c.op)
		p.rhs = append(p.rhs, c.rhs)
	}
	return p
}

// String renders the model in a small LP-format-like text form, useful in
// error messages and debugging.
func (m *Model) String() string {
	s := "min"
	if m.sense == Maximize {
		s = "max"
	}
	out := s + " "
	for v, c := range m.obj {
		if c == 0 {
			continue
		}
		out += fmt.Sprintf("%+g*%s ", c, m.names[v])
	}
	out += "\n"
	for i, c := range m.cons {
		out += fmt.Sprintf("  [%s] ", m.conNames[i])
		for v := 0; v < len(m.obj); v++ {
			if coeff, ok := c.coeffs[v]; ok {
				out += fmt.Sprintf("%+g*%s ", coeff, m.names[v])
			}
		}
		out += fmt.Sprintf("%s %g\n", c.op, c.rhs)
	}
	return out
}

// Validate checks the model for structural problems (no variables, NaN or Inf
// coefficients) before solving.
func (m *Model) Validate() error {
	if m.NumVariables() == 0 {
		return errors.New("lp: model has no variables")
	}
	for v, c := range m.obj {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("lp: objective coefficient of %s is not finite", m.names[v])
		}
	}
	for i, c := range m.cons {
		if math.IsNaN(c.rhs) || math.IsInf(c.rhs, 0) {
			return fmt.Errorf("lp: right-hand side of constraint %s is not finite", m.conNames[i])
		}
		for v, coeff := range c.coeffs {
			if math.IsNaN(coeff) || math.IsInf(coeff, 0) {
				return fmt.Errorf("lp: coefficient of %s in constraint %s is not finite", m.names[v], m.conNames[i])
			}
		}
	}
	return nil
}
