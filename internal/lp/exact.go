package lp

import "math/big"

// ExactSolution is the result of solving a model with the exact rational
// backend. It keeps the full-precision values so callers can compare
// objectives of different schedules without any floating-point ambiguity.
type ExactSolution struct {
	// Status reports whether the solve found an optimum.
	Status Status
	// Objective is the exact optimal objective value (in the model's sense).
	Objective *big.Rat
	// X holds the exact value of each model variable.
	X []*big.Rat
}

// Value returns the float64 value of variable v.
func (s *ExactSolution) Value(v int) float64 {
	f, _ := s.X[v].Float64()
	return f
}

// ObjectiveFloat returns the objective value rounded to float64.
func (s *ExactSolution) ObjectiveFloat() float64 {
	f, _ := s.Objective.Float64()
	return f
}

// FloatSolution converts the exact solution to a float64 Solution.
func (s *ExactSolution) FloatSolution() *Solution {
	x := make([]float64, len(s.X))
	for i, v := range s.X {
		x[i], _ = v.Float64()
	}
	return &Solution{Status: s.Status, Objective: s.ObjectiveFloat(), X: x}
}

func newExactSolution(m *Model, res *simplexResult[ratValue]) *ExactSolution {
	n := m.NumVariables()
	out := &ExactSolution{
		Status: Optimal,
		X:      make([]*big.Rat, n),
	}
	for i := 0; i < n; i++ {
		out.X[i] = new(big.Rat).Set(res.exactX[i].r)
	}
	obj := new(big.Rat).Set(res.exactObj.r)
	if m.sense == Maximize {
		obj.Neg(obj)
	}
	out.Objective = obj
	return out
}
