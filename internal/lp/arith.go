package lp

import (
	"math"
	"math/big"
)

// arith abstracts the exact-versus-floating arithmetic used by the simplex
// tableau, so that the pivoting code is written once and shared by both
// backends.
type arith[T any] interface {
	// FromFloat converts a float64 model coefficient into the backend type.
	FromFloat(f float64) T
	// ToFloat converts a backend value to float64 for reporting.
	ToFloat(v T) float64
	Add(a, b T) T
	Sub(a, b T) T
	Mul(a, b T) T
	Div(a, b T) T
	Neg(a T) T
	Zero() T
	One() T
	// Sign returns -1, 0 or +1. The float backend applies a tolerance so that
	// tiny round-off residues are treated as zero.
	Sign(a T) int
	// Cmp compares a and b exactly (float backend: ordinary comparison).
	Cmp(a, b T) int
}

// pivotTolerance is the magnitude below which a float64 tableau entry is
// treated as zero when selecting pivots and classifying reduced costs.
const pivotTolerance = 1e-9

// floatArith is the fast float64 backend.
type floatArith struct{}

func (floatArith) FromFloat(f float64) float64 { return f }
func (floatArith) ToFloat(v float64) float64   { return v }
func (floatArith) Add(a, b float64) float64    { return a + b }
func (floatArith) Sub(a, b float64) float64    { return a - b }
func (floatArith) Mul(a, b float64) float64    { return a * b }
func (floatArith) Div(a, b float64) float64    { return a / b }
func (floatArith) Neg(a float64) float64       { return -a }
func (floatArith) Zero() float64               { return 0 }
func (floatArith) One() float64                { return 1 }

func (floatArith) Sign(a float64) int {
	if math.Abs(a) <= pivotTolerance {
		return 0
	}
	if a > 0 {
		return 1
	}
	return -1
}

func (floatArith) Cmp(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// ratValue is an immutable rational value used by the exact backend. Using a
// value type (rather than *big.Rat directly) keeps the simplex code free of
// aliasing pitfalls: every arithmetic operation allocates a fresh rational.
type ratValue struct{ r *big.Rat }

// ratArith is the exact math/big.Rat backend.
type ratArith struct{}

func (ratArith) FromFloat(f float64) ratValue {
	r := new(big.Rat)
	if r.SetFloat64(f) == nil {
		panic("lp: non-finite coefficient in exact solve")
	}
	return ratValue{r}
}

func (ratArith) ToFloat(v ratValue) float64 {
	f, _ := v.r.Float64()
	return f
}

func (ratArith) Add(a, b ratValue) ratValue { return ratValue{new(big.Rat).Add(a.r, b.r)} }
func (ratArith) Sub(a, b ratValue) ratValue { return ratValue{new(big.Rat).Sub(a.r, b.r)} }
func (ratArith) Mul(a, b ratValue) ratValue { return ratValue{new(big.Rat).Mul(a.r, b.r)} }
func (ratArith) Div(a, b ratValue) ratValue { return ratValue{new(big.Rat).Quo(a.r, b.r)} }
func (ratArith) Neg(a ratValue) ratValue    { return ratValue{new(big.Rat).Neg(a.r)} }
func (ratArith) Zero() ratValue             { return ratValue{new(big.Rat)} }
func (ratArith) One() ratValue              { return ratValue{big.NewRat(1, 1)} }
func (ratArith) Sign(a ratValue) int        { return a.r.Sign() }
func (ratArith) Cmp(a, b ratValue) int      { return a.r.Cmp(b.r) }
