package lp

// This file implements a dense two-phase primal simplex over a generic
// arithmetic backend. The problems solved by the scheduling library are small
// (tens of variables and constraints), so a full tableau with Bland's
// anti-cycling rule is simple, robust, and fast enough; the exact backend
// reuses the same code with rational arithmetic.

// simplexResult carries the raw solution of a standard-form problem.
type simplexResult[T any] struct {
	objective float64
	exactObj  T
	x         []float64
	exactX    []T
}

// tableau is the working state of the simplex method.
type tableau[T any] struct {
	ar arith[T]

	m, n  int   // m rows (constraints), n columns (structural + slack + artificial)
	rows  [][]T // m x n constraint coefficients
	rhs   []T   // m right-hand sides (kept non-negative)
	basis []int // basis[i] = column basic in row i

	cost    []T // current objective coefficients (phase 1 or phase 2), length n
	redCost []T // reduced costs, length n
	objVal  T   // current objective value (of the phase objective)

	numStructural int
	artificialAt  int // columns >= artificialAt are artificial variables
}

// maxSimplexIterations bounds the number of pivots; the problems built by this
// library are far below this limit, so hitting it indicates a bug rather than
// a hard instance.
const maxSimplexIterations = 20000

// runSimplex solves the standard-form problem (minimize obj subject to the
// rows/ops/rhs with all variables >= 0) and reports the solver status.
func runSimplex[T any](ar arith[T], p *standardProblem) (*simplexResult[T], Status) {
	t := newTableau(ar, p)

	// Phase 1: minimize the sum of artificial variables.
	if t.artificialAt < t.n {
		t.setPhase1Cost()
		status := t.iterate()
		if status != Optimal {
			return nil, status
		}
		if ar.Sign(t.objVal) > 0 {
			return nil, Infeasible
		}
		t.driveOutArtificials()
	}

	// Phase 2: original objective restricted to non-artificial columns.
	t.setPhase2Cost(p)
	status := t.iterate()
	if status != Optimal {
		return nil, status
	}
	return t.extract(p), Optimal
}

func newTableau[T any](ar arith[T], p *standardProblem) *tableau[T] {
	m := len(p.rows)
	// Count extra columns: one slack per LE, one surplus + one artificial per
	// GE, one artificial per EQ. Signs are decided after normalizing the RHS
	// to be non-negative.
	type rowKind int
	const (
		kindLE rowKind = iota
		kindGE
		kindEQ
	)
	kinds := make([]rowKind, m)
	rows := make([][]float64, m)
	rhs := make([]float64, m)
	for i := range p.rows {
		row := append([]float64(nil), p.rows[i]...)
		b := p.rhs[i]
		op := p.ops[i]
		if b < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			b = -b
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		rows[i] = row
		rhs[i] = b
		switch op {
		case LE:
			kinds[i] = kindLE
		case GE:
			kinds[i] = kindGE
		default:
			kinds[i] = kindEQ
		}
	}

	slackCount := 0
	artCount := 0
	for _, k := range kinds {
		switch k {
		case kindLE:
			slackCount++
		case kindGE:
			slackCount++ // surplus
			artCount++
		case kindEQ:
			artCount++
		}
	}

	n := p.numVars + slackCount + artCount
	t := &tableau[T]{
		ar:            ar,
		m:             m,
		n:             n,
		numStructural: p.numVars,
		artificialAt:  p.numVars + slackCount,
		basis:         make([]int, m),
	}
	t.rows = make([][]T, m)
	t.rhs = make([]T, m)
	zero := ar.Zero()
	one := ar.One()
	slackCol := p.numVars
	artCol := t.artificialAt
	for i := 0; i < m; i++ {
		r := make([]T, n)
		for j := range r {
			r[j] = zero
		}
		for j, c := range rows[i] {
			r[j] = ar.FromFloat(c)
		}
		switch kinds[i] {
		case kindLE:
			r[slackCol] = one
			t.basis[i] = slackCol
			slackCol++
		case kindGE:
			r[slackCol] = ar.Neg(one)
			slackCol++
			r[artCol] = one
			t.basis[i] = artCol
			artCol++
		case kindEQ:
			r[artCol] = one
			t.basis[i] = artCol
			artCol++
		}
		t.rows[i] = r
		t.rhs[i] = ar.FromFloat(rhs[i])
	}
	return t
}

// setPhase1Cost installs the phase-1 objective (sum of artificial variables)
// and prices it out against the current (artificial) basis.
func (t *tableau[T]) setPhase1Cost() {
	ar := t.ar
	t.cost = make([]T, t.n)
	for j := range t.cost {
		if j >= t.artificialAt {
			t.cost[j] = ar.One()
		} else {
			t.cost[j] = ar.Zero()
		}
	}
	t.recomputeReducedCosts()
}

// setPhase2Cost installs the original objective. Artificial columns get a
// prohibitive flag by simply being excluded from entering (their reduced cost
// is never allowed to drive a pivot because the columns are removed from
// consideration in iterate).
func (t *tableau[T]) setPhase2Cost(p *standardProblem) {
	ar := t.ar
	t.cost = make([]T, t.n)
	for j := range t.cost {
		t.cost[j] = ar.Zero()
	}
	for j := 0; j < t.numStructural; j++ {
		t.cost[j] = ar.FromFloat(p.obj[j])
	}
	t.recomputeReducedCosts()
}

// recomputeReducedCosts rebuilds the reduced-cost row and objective value from
// scratch: redCost = cost - cost_B * B^-1 * A, computed directly from the
// current (already pivoted) tableau rows.
func (t *tableau[T]) recomputeReducedCosts() {
	ar := t.ar
	t.redCost = make([]T, t.n)
	copy(t.redCost, t.cost)
	t.objVal = ar.Zero()
	for i := 0; i < t.m; i++ {
		cb := t.cost[t.basis[i]]
		if ar.Sign(cb) == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.redCost[j] = ar.Sub(t.redCost[j], ar.Mul(cb, t.rows[i][j]))
		}
		t.objVal = ar.Add(t.objVal, ar.Mul(cb, t.rhs[i]))
	}
}

// iterate performs simplex pivots until optimality, unboundedness, or the
// iteration limit. Bland's rule (smallest eligible index for both the
// entering and leaving variable) guarantees termination.
func (t *tableau[T]) iterate() Status {
	ar := t.ar
	for iter := 0; iter < maxSimplexIterations; iter++ {
		// Entering column: Bland's rule — smallest index with negative
		// reduced cost. Artificial columns never re-enter once phase 2 runs
		// because their phase-2 reduced costs are maintained but we skip them.
		entering := -1
		for j := 0; j < t.n; j++ {
			if j >= t.artificialAt && t.isPhase2() {
				continue
			}
			if ar.Sign(t.redCost[j]) < 0 {
				entering = j
				break
			}
		}
		if entering == -1 {
			return Optimal
		}

		// Ratio test: smallest rhs/coef over rows with positive coefficient;
		// ties broken by the smallest basis column index (Bland).
		leaving := -1
		var bestRatio T
		for i := 0; i < t.m; i++ {
			coef := t.rows[i][entering]
			if ar.Sign(coef) <= 0 {
				continue
			}
			ratio := ar.Div(t.rhs[i], coef)
			if leaving == -1 || ar.Cmp(ratio, bestRatio) < 0 ||
				(ar.Cmp(ratio, bestRatio) == 0 && t.basis[i] < t.basis[leaving]) {
				leaving = i
				bestRatio = ratio
			}
		}
		if leaving == -1 {
			return Unbounded
		}
		t.pivot(leaving, entering)
	}
	return IterationLimit
}

func (t *tableau[T]) isPhase2() bool {
	// During phase 1 every artificial has cost one; during phase 2 they all
	// have cost zero. Checking the first artificial column is enough.
	if t.artificialAt >= t.n {
		return true
	}
	return t.ar.Sign(t.cost[t.artificialAt]) == 0
}

// pivot makes column `entering` basic in row `leaving`.
func (t *tableau[T]) pivot(leaving, entering int) {
	ar := t.ar
	pivotVal := t.rows[leaving][entering]
	// Normalize the pivot row.
	inv := ar.Div(ar.One(), pivotVal)
	for j := 0; j < t.n; j++ {
		t.rows[leaving][j] = ar.Mul(t.rows[leaving][j], inv)
	}
	t.rhs[leaving] = ar.Mul(t.rhs[leaving], inv)

	// Eliminate the entering column from all other rows and the cost row.
	for i := 0; i < t.m; i++ {
		if i == leaving {
			continue
		}
		factor := t.rows[i][entering]
		if ar.Sign(factor) == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.rows[i][j] = ar.Sub(t.rows[i][j], ar.Mul(factor, t.rows[leaving][j]))
		}
		t.rhs[i] = ar.Sub(t.rhs[i], ar.Mul(factor, t.rhs[leaving]))
	}
	factor := t.redCost[entering]
	if ar.Sign(factor) != 0 {
		for j := 0; j < t.n; j++ {
			t.redCost[j] = ar.Sub(t.redCost[j], ar.Mul(factor, t.rows[leaving][j]))
		}
		t.objVal = ar.Add(t.objVal, ar.Mul(factor, t.rhs[leaving]))
	}
	t.basis[leaving] = entering
}

// driveOutArtificials removes artificial variables from the basis after a
// feasible phase-1 solution, pivoting them out on any usable column so the
// phase-2 basis contains only structural and slack variables whenever
// possible. Rows whose artificial cannot be pivoted out are redundant
// (all-zero) and are left in place; they are harmless because the artificial
// stays at value zero and never re-enters.
func (t *tableau[T]) driveOutArtificials() {
	ar := t.ar
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artificialAt {
			continue
		}
		pivotCol := -1
		for j := 0; j < t.artificialAt; j++ {
			if ar.Sign(t.rows[i][j]) != 0 {
				pivotCol = j
				break
			}
		}
		if pivotCol >= 0 {
			t.pivot(i, pivotCol)
		}
	}
}

// extract reads off the solution values of the structural variables.
func (t *tableau[T]) extract(p *standardProblem) *simplexResult[T] {
	ar := t.ar
	exactX := make([]T, t.numStructural)
	for j := range exactX {
		exactX[j] = ar.Zero()
	}
	for i, b := range t.basis {
		if b < t.numStructural {
			exactX[b] = t.rhs[i]
		}
	}
	x := make([]float64, t.numStructural)
	for j := range x {
		x[j] = ar.ToFloat(exactX[j])
	}
	exactObj := ar.Zero()
	for j := 0; j < t.numStructural; j++ {
		exactObj = ar.Add(exactObj, ar.Mul(ar.FromFloat(p.obj[j]), exactX[j]))
	}
	return &simplexResult[T]{
		objective: ar.ToFloat(exactObj),
		exactObj:  exactObj,
		x:         x,
		exactX:    exactX,
	}
}
