// Package perf is the library's standing benchmark and regression harness: a
// pinned set of named scenarios (static WDEQ batch, online Poisson, bursty
// multi-tenant, sharded fleet, concave per-task speedups, time-varying
// platform capacity) executed for a fixed wall budget, reported as
// ns/op, allocs/op, tasks/sec and flow-time quantiles, and serialized under a
// stable JSON schema so two runs — today's and a checked-in baseline — can be
// diffed mechanically by CompareRuns. `mwct bench` is the command-line front
// end; CI runs it on every push and fails the build on large regressions, so
// the performance trajectory of the engine is a tracked artifact rather than
// a one-off number.
package perf

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/malleable-sched/malleable/internal/cluster"
	"github.com/malleable-sched/malleable/internal/engine"
	"github.com/malleable-sched/malleable/internal/obs"
	"github.com/malleable-sched/malleable/internal/speedup"
	"github.com/malleable-sched/malleable/internal/stats"
	"github.com/malleable-sched/malleable/internal/workload"
)

// ProcessStatic is the pseudo arrival process of batch scenarios: the
// workload is drawn like a Poisson stream and every release date is then
// forced to zero, turning the run into the paper's static setting.
const ProcessStatic = "static"

// Scenario is one named benchmark configuration. All fields are pure data so
// a scenario can round-trip through the JSON report and reproduce the exact
// run.
type Scenario struct {
	// Name identifies the scenario in reports and on the command line.
	Name string `json:"name"`
	// Policy is one of engine.PolicyNames.
	Policy string `json:"policy"`
	// Class is the instance class of the task shapes (see `mwct gen`).
	Class string `json:"class"`
	// Process is "poisson", "bursty", or ProcessStatic.
	Process string `json:"process"`
	// Rate is the arrival rate (tasks per unit of virtual time).
	Rate float64 `json:"rate"`
	// Burst is the mean burst size of the bursty process.
	Burst float64 `json:"burst,omitempty"`
	// Tenants is a name:weight:share list; empty means a single tenant.
	Tenants string `json:"tenants,omitempty"`
	// TenantSkew is the Zipf exponent reshaping the tenant shares (see
	// workload.ArrivalConfig.TenantSkew); 0 keeps them as configured.
	TenantSkew float64 `json:"tenantSkew,omitempty"`
	// Router switches the scenario to cluster mode: ONE global arrival
	// stream (Rate is fleet-wide) dispatched across Shards engine steppers
	// by the named router on a single virtual timeline. Cluster scenarios
	// pin the coordinator's sequential interleave — the routed fleet's
	// throughput ceiling — rather than the concurrent independent-shards
	// driver.
	Router string `json:"router,omitempty"`
	// Workers sets cluster.Config.Workers: 0 or 1 pins the sequential
	// coordinator, >= 2 the parallel one (same bytes out, different wall
	// clock). Only meaningful with a Router.
	Workers int `json:"workers,omitempty"`
	// Speculate sets cluster.Config.Speculate: the optimistic coordinator
	// that checkpoints shards past dispatch horizons and rolls back
	// mispredictions instead of barriering per dispatch. Same bytes out as
	// the sequential coordinator. Only meaningful with a Router and
	// Workers >= 2.
	Speculate bool `json:"speculate,omitempty"`
	// Stale sets cluster.Config.StaleRouting: the stale-batched coordinator,
	// whose router reads fleet views published once per dispatch window. A
	// different (deterministic) schedule than the exact-view coordinators,
	// byte-identical at any Workers. Only meaningful with a window-stale
	// Router (least-backlog, po2).
	Stale bool `json:"stale,omitempty"`
	// Prefetch sets cluster.Config.Prefetch: arrival generation overlaps
	// shard execution on a producer goroutine. Pure pipelining, same bytes
	// out. Only meaningful with a Router.
	Prefetch bool `json:"prefetch,omitempty"`
	// Tasks is the number of tasks per run (total across shards).
	Tasks int `json:"tasks"`
	// Shards is the number of concurrent engines; 1 runs a single engine on
	// the calling goroutine.
	Shards int `json:"shards"`
	// P is the per-shard platform capacity.
	P float64 `json:"p"`
	// Seed makes the workload deterministic.
	Seed int64 `json:"seed"`
	// Speedup is the speedup-model spec (see speedup.ParseModel); empty means
	// the paper's linear-cap model.
	Speedup string `json:"speedup,omitempty"`
	// CurveMin and CurveMax draw per-task speedup-curve parameters (see
	// workload.ArrivalConfig); both zero disables per-task curves.
	CurveMin float64 `json:"curveMin,omitempty"`
	CurveMax float64 `json:"curveMax,omitempty"`
	// Stream runs the scenario through the streaming path: arrivals are
	// pulled from a constant-memory workload.Stream inside the timed region
	// (generation is part of the cost being pinned) and per-task metrics go
	// to aggregate+sketch sinks instead of a retained table, so the
	// scenario's memory is O(alive tasks) however large Tasks is. Flow
	// quantiles come from the sketch. Static scenarios cannot stream.
	Stream bool `json:"stream,omitempty"`
	// Probe attaches an obs.EngineCollector as an engine probe, so the run
	// pays the observation cost — snapshot fill plus atomic metric mirroring
	// — at every fire. Only single-engine scenarios (Shards == 1, no Router)
	// can probe; the point is to pin the probe's overhead against the
	// identically-shaped unprobed scenario.
	Probe bool `json:"probe,omitempty"`
	// ProbeEvery thins the probe to every k-th policy event (engine
	// Options.ProbeEveryEvents); 0 fires on every event. Mirroring a dozen
	// atomics per event costs ~40% throughput at this event rate, so the
	// pinned scenario samples the way a live scrape target would.
	ProbeEvery int `json:"probeEvery,omitempty"`
}

// Scenarios returns the pinned scenario set CI benchmarks on every push. The
// set is append-only by convention: renaming or removing a scenario silently
// invalidates every stored baseline, so new shapes get new names.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "static-wdeq", Policy: "wdeq", Class: "uniform",
			Process: ProcessStatic, Rate: 8, Tasks: 2048, Shards: 1, P: 8, Seed: 401,
		},
		{
			Name: "online-poisson", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 8, Tasks: 4096, Shards: 1, P: 8, Seed: 402,
		},
		{
			Name: "bursty-multitenant", Policy: "wdeq", Class: "uniform",
			Process: "bursty", Rate: 8, Burst: 8,
			Tenants: "gold:4:0.2,silver:2:0.3,bronze:1:0.5",
			Tasks:   4096, Shards: 1, P: 8, Seed: 403,
		},
		{
			Name: "sharded", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 8, Tasks: 4096, Shards: 4, P: 8, Seed: 404,
		},
		{
			// Concave per-task speedups: the same Poisson load under a
			// power-law model with per-task exponents. Pins the cost of the
			// model-threaded advance step (rates are math.Pow, not a copy).
			Name: "concave-speedup", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 6, Tasks: 4096, Shards: 1, P: 8, Seed: 405,
			Speedup: "powerlaw:0.75", CurveMin: 0.6, CurveMax: 0.95,
		},
		{
			// Time-varying platform capacity: the fleet loses half its
			// processors on a square wave. Pins the budget-event machinery of
			// the kernel (capacity steps are events, visited once each).
			Name: "time-varying-capacity", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 6, Tasks: 4096, Shards: 1, P: 8, Seed: 406,
			Speedup: "platform:8@0,4@100,8@200,4@300,8@400,4@500,8@600",
		},
		{
			// The streaming path end to end: lazy generation + engine +
			// aggregate/sketch sinks, no retained rows. Same load as
			// online-poisson so the cost of streaming (generation inside the
			// timed region, sink observes) stays directly comparable.
			Name: "online-stream", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 8, Tasks: 4096, Shards: 1, P: 8, Seed: 407,
			Stream: true,
		},
		{
			// online-poisson with an observability probe attached: an
			// obs.EngineCollector mirrors the rest-state snapshot into atomic
			// registry metrics every 64th policy event — a live scrape
			// target's cadence. Same load and seed as online-poisson, so the
			// pinned gap between the two scenarios IS the probe overhead —
			// and allocs/op stays zero, proving observation never touches the
			// allocator.
			Name: "online-probe", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 8, Tasks: 4096, Shards: 1, P: 8, Seed: 402,
			Probe: true, ProbeEvery: 64,
		},
		{
			// The routed fleet, power-of-two-choices: one Zipf-skewed global
			// stream dispatched across four steppers on a single virtual
			// timeline. Pins the coordinator's sequential interleave — the
			// per-arrival advance-route-feed cycle plus two sampled
			// snapshots per dispatch.
			Name: "cluster-po2", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 57.6,
			Tenants:    "t0:4:1,t1:2:1,t2:1:1,t3:1:1,t4:1:1,t5:1:1,t6:1:1,t7:1:1",
			TenantSkew: 1.5,
			Tasks:      8192, Shards: 4, P: 8, Seed: 409,
			Router: "po2",
		},
		{
			// Same fleet and load under the full-information least-backlog
			// router: every dispatch scans all shard snapshots, the O(shards)
			// upper envelope of routing cost.
			Name: "cluster-least-backlog", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 57.6,
			Tenants:    "t0:4:1,t1:2:1,t2:1:1,t3:1:1,t4:1:1,t5:1:1,t6:1:1,t7:1:1",
			TenantSkew: 1.5,
			Tasks:      8192, Shards: 4, P: 8, Seed: 410,
			Router: "least-backlog",
		},
		{
			// The eight-shard sequential baseline the parallel scenarios are
			// measured against: same skewed fleet load at double the rate so
			// eight shards see the per-shard pressure the four-shard scenarios
			// pin. Throughput here is the single-goroutine interleave ceiling.
			Name: "cluster-least-backlog-8", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 115.2,
			Tenants:    "t0:4:1,t1:2:1,t2:1:1,t3:1:1,t4:1:1,t5:1:1,t6:1:1,t7:1:1",
			TenantSkew: 1.5,
			Tasks:      16384, Shards: 8, P: 8, Seed: 411,
			Router: "least-backlog",
		},
		{
			// The batched parallel coordinator: round-robin declares itself
			// state-free, so dispatches proceed in 512-arrival batches with one
			// barrier each — the near-linear-scaling mode. On a >= 8-core box
			// this scenario must beat cluster-least-backlog-8 by >= 3x tasks/sec
			// (asserted by TestParallelScalingRatio in CI's multicore job).
			Name: "cluster-parallel-rr", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 115.2,
			Tenants:    "t0:4:1,t1:2:1,t2:1:1,t3:1:1,t4:1:1,t5:1:1,t6:1:1,t7:1:1",
			TenantSkew: 1.5,
			Tasks:      16384, Shards: 8, P: 8, Seed: 411,
			Router: "round-robin", Workers: 8,
		},
		{
			// The windowed parallel coordinator: least-backlog reads exact
			// fleet state per dispatch, so shards only advance concurrently
			// inside each dispatch window — the synchronization-bound mode.
			// Pinned so the window overhead has a tracked number.
			Name: "cluster-parallel-lb", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 115.2,
			Tenants:    "t0:4:1,t1:2:1,t2:1:1,t3:1:1,t4:1:1,t5:1:1,t6:1:1,t7:1:1",
			TenantSkew: 1.5,
			Tasks:      16384, Shards: 8, P: 8, Seed: 411,
			Router: "least-backlog", Workers: 8,
		},
		{
			// The speculative coordinator on the same fleet and load as
			// cluster-parallel-lb: shards run past dispatch horizons on
			// checkpoints instead of barriering per dispatch, so the pinned gap
			// between the two scenarios IS the win of optimism over windowing
			// for state-reading routers (asserted >= 1x by
			// TestSpeculativeScalingRatio in CI's multicore job).
			Name: "cluster-spec-lb", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 115.2,
			Tenants:    "t0:4:1,t1:2:1,t2:1:1,t3:1:1,t4:1:1,t5:1:1,t6:1:1,t7:1:1",
			TenantSkew: 1.5,
			Tasks:      16384, Shards: 8, P: 8, Seed: 411,
			Router: "least-backlog", Workers: 8, Speculate: true,
		},
		{
			// The scaled fleet dimension: 64 shards under the full-information
			// least-backlog router, speculative coordinator. Every dispatch
			// scans 64 shard states and the router's pick rolls one of them
			// back, so this pins both the O(shards) routing envelope and the
			// checkpoint machinery at fleet scale.
			Name: "cluster-spec-lb-64", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 921.6,
			Tenants:    "t0:4:1,t1:2:1,t2:1:1,t3:1:1,t4:1:1,t5:1:1,t6:1:1,t7:1:1",
			TenantSkew: 1.5,
			Tasks:      32768, Shards: 64, P: 8, Seed: 412,
			Router: "least-backlog", Workers: 8, Speculate: true,
		},
		{
			// The 64-shard batched baseline: round-robin is state-free, so the
			// same fleet width runs the near-linear batched mode — the ceiling
			// the speculative 64-shard scenario is compared against.
			Name: "cluster-parallel-rr-64", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 921.6,
			Tenants:    "t0:4:1,t1:2:1,t2:1:1,t3:1:1,t4:1:1,t5:1:1,t6:1:1,t7:1:1",
			TenantSkew: 1.5,
			Tasks:      32768, Shards: 64, P: 8, Seed: 412,
			Router: "round-robin", Workers: 8,
		},
		{
			// The stale-batched coordinator on the same fleet and load as
			// cluster-parallel-lb: least-backlog routes from window-boundary
			// views instead of exact per-dispatch snapshots, so dispatch runs
			// through the 512-arrival batched fast path with one barrier per
			// window, and the arrival stream is prefetched on a producer
			// goroutine. The pinned gap against cluster-parallel-lb IS the win
			// of window-stale routing over exact windowing (asserted >= 1x by
			// TestStaleBatchedScalingRatio in CI's multicore job).
			Name: "cluster-stale-lb", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 115.2,
			Tenants:    "t0:4:1,t1:2:1,t2:1:1,t3:1:1,t4:1:1,t5:1:1,t6:1:1,t7:1:1",
			TenantSkew: 1.5,
			Tasks:      16384, Shards: 8, P: 8, Seed: 411,
			Router: "least-backlog", Workers: 8, Stale: true, Prefetch: true,
		},
		{
			// The scaled stale fleet: 64 shards on the cluster-spec-lb-64 load,
			// stale-batched instead of speculative. Each view is one O(shards)
			// state fill per 512 dispatches rather than one scan per dispatch,
			// so this pins how the view cadence amortizes the routing envelope
			// at fleet width.
			Name: "cluster-stale-lb-64", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 921.6,
			Tenants:    "t0:4:1,t1:2:1,t2:1:1,t3:1:1,t4:1:1,t5:1:1,t6:1:1,t7:1:1",
			TenantSkew: 1.5,
			Tasks:      32768, Shards: 64, P: 8, Seed: 412,
			Router: "least-backlog", Workers: 8, Stale: true, Prefetch: true,
		},
		{
			// Deep-backlog online run: arrivals outpace the platform ~12x, so
			// the alive set climbs past 10k and stays above 4k for most of the
			// run. Per-event cost here is all alive-set data structure — the
			// regime the O(log n) event core exists for. The large-delta class
			// (δ > P/2, unit weights) keeps every event on the certified
			// equal-share path, so this pins the virtual-clock/calendar-queue
			// core specifically; weight-greedy over the same stream (see
			// EXPERIMENTS.md) pins the indexed-heap fallback.
			Name: "online-hiback", Policy: "wdeq", Class: "large-delta",
			Process: "poisson", Rate: 200, Tasks: 16384, Shards: 1, P: 8, Seed: 413,
		},
		{
			// The same deep-backlog regime across a routed 4-shard fleet:
			// every shard sustains a >= 4k-task backlog while the sequential
			// least-backlog coordinator interleaves them, so the per-event win
			// has to survive the coordinator's snapshot/advance pattern too.
			Name: "cluster-hiback-lb", Policy: "wdeq", Class: "large-delta",
			Process: "poisson", Rate: 800, Tasks: 32768, Shards: 4, P: 8, Seed: 414,
			Router: "least-backlog",
		},
	}
}

// GuardedScenarios are pinned like Scenarios but excluded from the default
// set (and therefore from the CI gate): they exist to reproduce headline
// numbers on demand without making every `mwct bench` run minutes long.
// Resolve them by name: `mwct bench -scenarios streaming-10m`.
func GuardedScenarios() []Scenario {
	return []Scenario{
		{
			// The memory acceptance scenario of the streaming refactor: ten
			// million tasks through one engine in O(alive) memory. A single
			// run takes seconds, which is why it is guarded.
			Name: "streaming-10m", Policy: "wdeq", Class: "uniform",
			Process: "poisson", Rate: 12, Tasks: 10_000_000, Shards: 1, P: 8, Seed: 408,
			Stream: true,
		},
	}
}

// ScenarioNames lists the names of the pinned set, in run order.
func ScenarioNames() []string {
	all := Scenarios()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}

// ScenarioByName resolves a pinned scenario, including the guarded ones.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	for _, s := range GuardedScenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	names := ScenarioNames()
	for _, s := range GuardedScenarios() {
		names = append(names, s.Name+" (guarded)")
	}
	return Scenario{}, fmt.Errorf("perf: unknown scenario %q (want one of %v)", name, names)
}

// arrivalConfig translates the scenario into a workload configuration.
func (s Scenario) arrivalConfig() (workload.ArrivalConfig, error) {
	class, err := workload.ParseClass(s.Class)
	if err != nil {
		return workload.ArrivalConfig{}, err
	}
	processName := s.Process
	if processName == ProcessStatic {
		processName = "poisson"
	}
	process, err := workload.ParseProcess(processName)
	if err != nil {
		return workload.ArrivalConfig{}, err
	}
	tenants, err := workload.ParseTenants(s.Tenants)
	if err != nil {
		return workload.ArrivalConfig{}, err
	}
	return workload.ArrivalConfig{
		Class:      class,
		P:          s.P,
		Process:    process,
		Rate:       s.Rate,
		MeanBurst:  s.Burst,
		Tenants:    tenants,
		TenantSkew: s.TenantSkew,
		CurveMin:   s.CurveMin,
		CurveMax:   s.CurveMax,
	}, nil
}

// options resolves the scenario's engine options (speedup model) and checks
// the per-task curve range against the model's domain.
func (s Scenario) options() (engine.Options, error) {
	model, err := speedup.ParseModel(s.Speedup)
	if err != nil {
		return engine.Options{}, err
	}
	if err := speedup.ValidateCurves(model, s.CurveMin, s.CurveMax); err != nil {
		return engine.Options{}, err
	}
	return engine.Options{Model: model}, nil
}

// generate draws one shard's arrival stream.
func (s Scenario) generate(cfg workload.ArrivalConfig, n int, seed int64) ([]engine.Arrival, error) {
	arrivals, err := workload.GenerateArrivals(cfg, n, seed)
	if err != nil {
		return nil, err
	}
	if s.Process == ProcessStatic {
		for i := range arrivals {
			arrivals[i].Release = 0
		}
	}
	return arrivals, nil
}

// RunScenario executes the scenario repeatedly until the wall budget is
// exhausted (at least once) and reports averaged metrics. Workload generation
// happens before the clock starts; the timed region is exactly the engine
// work, so allocs/op of the single-shard scenarios reflects the
// zero-allocation steady state of the event loop.
func RunScenario(s Scenario, budget time.Duration) (Result, error) {
	if s.Tasks <= 0 {
		return Result{}, fmt.Errorf("perf: scenario %q: need a positive task count, got %d", s.Name, s.Tasks)
	}
	if s.Shards <= 0 {
		return Result{}, fmt.Errorf("perf: scenario %q: need a positive shard count, got %d", s.Name, s.Shards)
	}
	policy, err := engine.PolicyByName(s.Policy)
	if err != nil {
		return Result{}, fmt.Errorf("perf: scenario %q: %w", s.Name, err)
	}
	cfg, err := s.arrivalConfig()
	if err != nil {
		return Result{}, fmt.Errorf("perf: scenario %q: %w", s.Name, err)
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, fmt.Errorf("perf: scenario %q: %w", s.Name, err)
	}
	opts, err := s.options()
	if err != nil {
		return Result{}, fmt.Errorf("perf: scenario %q: %w", s.Name, err)
	}
	if s.Probe {
		if s.Router != "" || s.Shards != 1 {
			return Result{}, fmt.Errorf("perf: scenario %q: probe scenarios pin the single-engine path; use shards=1 without a router", s.Name)
		}
		// The collector (and its registry) live outside the timed region, as
		// they would in a long-running server; the loop pays only for firing.
		opts.Probe = obs.NewEngineCollector(obs.NewRegistry())
		opts.ProbeEveryEvents = s.ProbeEvery
	}
	if s.Router != "" {
		if s.Process == ProcessStatic {
			return Result{}, fmt.Errorf("perf: scenario %q: static scenarios cannot run the cluster coordinator", s.Name)
		}
		return runClusterScenario(s, policy, cfg, opts, budget)
	}
	if s.Stream {
		if s.Process == ProcessStatic {
			return Result{}, fmt.Errorf("perf: scenario %q: static scenarios cannot stream (releases are rewritten after generation)", s.Name)
		}
		if s.Shards != 1 {
			return Result{}, fmt.Errorf("perf: scenario %q: streaming scenarios pin the single-engine path; use shards=1", s.Name)
		}
		return runStreamSingle(s, policy, cfg, opts, budget)
	}
	if s.Shards == 1 {
		return runSingle(s, policy, cfg, opts, budget)
	}
	return runSharded(s, policy, cfg, opts, budget)
}

// measurement is what timedLoop observes about the budget-bounded loop.
type measurement struct {
	runs        int
	elapsed     time.Duration
	allocsPerOp float64
	bytesPerOp  float64
}

// timedLoop is the shared measurement scaffolding of every scenario kind:
// force a GC so the Mallocs window is clean, then re-execute run until the
// wall budget is spent (at least once) and average the allocation counters
// over the runs. The caller warms and validates run before the clock starts.
func timedLoop(budget time.Duration, run func() error) (measurement, error) {
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	var m measurement
	start := time.Now()
	for m.elapsed < budget || m.runs == 0 {
		if err := run(); err != nil {
			return measurement{}, err
		}
		m.runs++
		m.elapsed = time.Since(start)
	}
	runtime.ReadMemStats(&ms1)
	m.allocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(m.runs)
	m.bytesPerOp = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(m.runs)
	return m, nil
}

// runSingle benchmarks one engine on the calling goroutine with a reused
// Runner and Result — the zero-allocation path.
func runSingle(s Scenario, policy engine.Policy, cfg workload.ArrivalConfig, opts engine.Options, budget time.Duration) (Result, error) {
	arrivals, err := s.generate(cfg, s.Tasks, s.Seed)
	if err != nil {
		return Result{}, fmt.Errorf("perf: scenario %q: %w", s.Name, err)
	}
	runner := engine.NewRunner()
	res := &engine.Result{}
	run := func() error { return runner.RunInto(res, s.P, policy, arrivals, opts) }
	// Warm the scratch buffers (and validate the run) outside the clock.
	if err := run(); err != nil {
		return Result{}, fmt.Errorf("perf: scenario %q: %w", s.Name, err)
	}
	events := res.Events
	m, err := timedLoop(budget, run)
	if err != nil {
		return Result{}, fmt.Errorf("perf: scenario %q: %w", s.Name, err)
	}
	return newResult(s, m, events, stats.Summarize(res.FlowTimes())), nil
}

// runStreamSingle benchmarks the streaming path of one engine: workload
// generation happens lazily inside the timed region (that is the shape being
// pinned — nothing is materialized), per-task metrics flow into reused
// aggregate and sketch sinks, and the reported quantiles come from the
// sketch. allocs/op therefore covers generator + engine + sinks together;
// all three are allocation-free in steady state.
func runStreamSingle(s Scenario, policy engine.Policy, cfg workload.ArrivalConfig, opts engine.Options, budget time.Duration) (Result, error) {
	runner := engine.NewRunner()
	agg := engine.NewAggregateSink()
	sk := engine.NewSketchSink(0)
	sink := engine.MultiSink(agg, sk)
	res := &engine.Result{}
	run := func() error {
		stream, err := workload.NewStream(cfg, s.Tasks, s.Seed)
		if err != nil {
			return err
		}
		agg.Reset()
		sk.Reset()
		return runner.RunStreamInto(res, s.P, policy, stream, sink, opts)
	}
	// Warm the scratch buffers and sink windows (and validate) off the clock.
	if err := run(); err != nil {
		return Result{}, fmt.Errorf("perf: scenario %q: %w", s.Name, err)
	}
	events := res.Events
	m, err := timedLoop(budget, run)
	if err != nil {
		return Result{}, fmt.Errorf("perf: scenario %q: %w", s.Name, err)
	}
	return newResult(s, m, events, engine.FlowSummary(agg, sk)), nil
}

// runClusterScenario benchmarks the virtual-time cluster coordinator end to
// end: lazy global-stream generation, the per-arrival
// advance-route-feed cycle, and the deterministic merge. The timed region
// covers setup (runners, sinks, router) plus the run, which is how a
// capacity planner would invoke it; per-event work stays allocation-free,
// so allocs/op is a per-run setup constant the baseline pins.
func runClusterScenario(s Scenario, policy engine.Policy, cfg workload.ArrivalConfig, opts engine.Options, budget time.Duration) (Result, error) {
	var load *engine.LoadResult
	run := func() error {
		stream, err := workload.NewStream(cfg, s.Tasks, s.Seed)
		if err != nil {
			return err
		}
		router, err := cluster.RouterByName(s.Router, s.Seed)
		if err != nil {
			return err
		}
		load, err = cluster.Run(cluster.Config{
			Shards:       s.Shards,
			P:            s.P,
			Policy:       policy,
			Router:       router,
			Workers:      s.Workers,
			Speculate:    s.Speculate,
			StaleRouting: s.Stale,
			Prefetch:     s.Prefetch,
			Opts:         opts,
		}, stream)
		return err
	}
	// Warm/validate once outside the clock.
	if err := run(); err != nil {
		return Result{}, fmt.Errorf("perf: scenario %q: %w", s.Name, err)
	}
	events := load.Events
	m, err := timedLoop(budget, run)
	if err != nil {
		return Result{}, fmt.Errorf("perf: scenario %q: %w", s.Name, err)
	}
	return newResult(s, m, events, load.Flow), nil
}

// runSharded benchmarks the concurrent multi-shard driver end to end,
// including stream generation and the deterministic merge — the figure a
// capacity planner cares about.
func runSharded(s Scenario, policy engine.Policy, cfg workload.ArrivalConfig, opts engine.Options, budget time.Duration) (Result, error) {
	perShard := func(shard int) int {
		n := s.Tasks / s.Shards
		if shard < s.Tasks%s.Shards {
			n++
		}
		return n
	}
	source := func(shard int, seed int64) ([]engine.Arrival, error) {
		return s.generate(cfg, perShard(shard), seed)
	}
	var load *engine.LoadResult
	run := func() error {
		var err error
		load, err = engine.RunShardsWithOptions(s.P, policy, source, s.Shards, s.Seed, opts)
		return err
	}
	// Warm/validate once outside the clock.
	if err := run(); err != nil {
		return Result{}, fmt.Errorf("perf: scenario %q: %w", s.Name, err)
	}
	events := load.Events
	m, err := timedLoop(budget, run)
	if err != nil {
		return Result{}, fmt.Errorf("perf: scenario %q: %w", s.Name, err)
	}
	return newResult(s, m, events, load.Flow), nil
}

func newResult(s Scenario, m measurement, events int, flows stats.Summary) Result {
	wall := m.elapsed.Nanoseconds()
	r := Result{
		Scenario:    s.Name,
		Policy:      s.Policy,
		Runs:        m.runs,
		Tasks:       s.Tasks,
		Events:      events,
		WallNs:      wall,
		NsPerOp:     float64(wall) / float64(m.runs),
		AllocsPerOp: m.allocsPerOp,
		BytesPerOp:  m.bytesPerOp,
		FlowP50:     flows.P50,
		FlowP99:     flows.P99,
	}
	if wall > 0 {
		r.TasksPerSec = float64(s.Tasks*m.runs) / (float64(wall) / 1e9)
	}
	return r
}

// RunAll executes the named scenarios (nil or empty means the whole pinned
// set) with the given per-scenario wall budget and assembles the report.
func RunAll(names []string, budget time.Duration) (*Report, error) {
	return RunAllWithOverrides(names, budget, Overrides{Workers: -1})
}

// RunAllWithSpeedup is RunAll with an optional speedup-model override: a
// non-empty spec replaces every selected scenario's model. It exists for
// ad-hoc exploration (`mwct bench -speedup ...`); overridden runs keep the
// scenario names, so do not gate them against a default baseline.
func RunAllWithSpeedup(names []string, budget time.Duration, speedupOverride string) (*Report, error) {
	return RunAllWithOverrides(names, budget, Overrides{Speedup: speedupOverride, Workers: -1})
}

// Overrides adjusts every selected scenario before it runs — the ad-hoc
// exploration knobs behind `mwct bench -speedup` and `mwct bench -workers`.
// Overridden runs keep the pinned scenario names, so do not gate them
// against a default baseline.
type Overrides struct {
	// Speedup, when non-empty, replaces every scenario's speedup model.
	Speedup string
	// Workers, when >= 0, replaces the worker count of every cluster
	// scenario (those with a Router). Non-cluster scenarios have no
	// coordinator and are left alone. Negative means no override.
	Workers int
}

// RunAllWithOverrides is RunAll with the scenario overrides applied to every
// selected scenario before running.
func RunAllWithOverrides(names []string, budget time.Duration, o Overrides) (*Report, error) {
	var scenarios []Scenario
	if len(names) == 0 {
		scenarios = Scenarios()
	} else {
		for _, name := range names {
			s, err := ScenarioByName(name)
			if err != nil {
				return nil, err
			}
			scenarios = append(scenarios, s)
		}
	}
	if o.Speedup != "" {
		if _, err := speedup.ParseModel(o.Speedup); err != nil {
			return nil, err
		}
		for i := range scenarios {
			scenarios[i].Speedup = o.Speedup
		}
	}
	if o.Workers >= 0 {
		for i := range scenarios {
			if scenarios[i].Router != "" {
				scenarios[i].Workers = o.Workers
			}
		}
	}
	report := &Report{
		Schema:    SchemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		BudgetNs:  budget.Nanoseconds(),
	}
	for _, s := range scenarios {
		res, err := RunScenario(s, budget)
		if err != nil {
			return nil, err
		}
		report.Results = append(report.Results, res)
	}
	sort.Slice(report.Results, func(a, b int) bool {
		return report.Results[a].Scenario < report.Results[b].Scenario
	})
	return report, nil
}
