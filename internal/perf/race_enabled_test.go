//go:build race

package perf

// raceEnabled reports that the race detector is compiled in; the scaling
// ratio test skips under it because instrumented throughput says nothing
// about real scaling.
const raceEnabled = true
