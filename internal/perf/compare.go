package perf

import (
	"fmt"
	"sort"
)

// Regression is one flagged metric of one scenario.
type Regression struct {
	// Scenario and Metric name what regressed.
	Scenario string `json:"scenario"`
	Metric   string `json:"metric"`
	// Baseline and Current are the compared values.
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Change quantifies the regression: for the relative metrics
	// (tasksPerSec, nsPerOp) it is the fractional change in the "worse"
	// direction; for allocsPerOp and bytesPerOp it is the absolute increase
	// per run, which keeps a zero-allocation baseline meaningful (a relative
	// change against zero is undefined).
	Change float64 `json:"change"`
}

func (r Regression) String() string {
	switch r.Metric {
	case "allocsPerOp":
		return fmt.Sprintf("%s: %s %.6g -> %.6g (+%.6g allocs/run)", r.Scenario, r.Metric, r.Baseline, r.Current, r.Change)
	case "bytesPerOp":
		return fmt.Sprintf("%s: %s %.6g -> %.6g (+%.6g bytes/run)", r.Scenario, r.Metric, r.Baseline, r.Current, r.Change)
	}
	return fmt.Sprintf("%s: %s %.6g -> %.6g (%+.1f%%)", r.Scenario, r.Metric, r.Baseline, r.Current, 100*r.Change)
}

// allocSlack is the absolute allocs-per-run increase tolerated before the
// allocsPerOp metric is flagged. It absorbs measurement noise (a stray GC
// bookkeeping allocation) without letting a real per-event regression —
// which costs at least one alloc per event, i.e. thousands per run — slip
// through.
const allocSlack = 64.0

// bytesSlack is the absolute allocated-bytes-per-run increase tolerated
// before bytesPerOp is flagged. 64 KiB absorbs runtime bookkeeping noise,
// while a real per-event regression on a 4096-task scenario (≥16 bytes over
// ≥3n events) costs hundreds of kilobytes per run and is caught. The gate
// exists so the memory side of the streaming refactor is held by CI, not
// just the alloc count: one huge allocation per run is invisible to
// allocsPerOp.
const bytesSlack = 64 * 1024.0

// CompareRuns diffs a current report against a baseline and flags every
// scenario whose throughput dropped, whose time per run grew by more than
// maxRegress (a fraction: 0.25 flags changes beyond 25%), or whose
// allocation count or allocated bytes per run grew by more than an absolute
// slack.
//
// Every scenario of the baseline must be present in the current report — a
// missing scenario is an error, not a silently skipped comparison, because a
// renamed or dropped scenario would otherwise disable its regression gate.
// Scenarios only present in the current report are ignored (adding scenarios
// is always safe). A zero baseline value disables the relative comparisons
// for that scenario (they would be meaningless), which makes an all-zero
// placeholder baseline a no-op gate rather than a permanent build failure.
func CompareRuns(baseline, current *Report, maxRegress float64) ([]Regression, error) {
	if baseline == nil || current == nil {
		return nil, fmt.Errorf("perf: CompareRuns needs two non-nil reports")
	}
	if !(maxRegress > 0) {
		return nil, fmt.Errorf("perf: regression threshold must be positive, got %g", maxRegress)
	}
	var out []Regression
	for _, base := range baseline.Results {
		cur, ok := current.ResultByScenario(base.Scenario)
		if !ok {
			return nil, fmt.Errorf("perf: scenario %q present in baseline but missing from the current report", base.Scenario)
		}
		if base.TasksPerSec > 0 {
			if drop := (base.TasksPerSec - cur.TasksPerSec) / base.TasksPerSec; drop > maxRegress {
				out = append(out, Regression{
					Scenario: base.Scenario, Metric: "tasksPerSec",
					Baseline: base.TasksPerSec, Current: cur.TasksPerSec, Change: -drop,
				})
			}
		}
		if base.NsPerOp > 0 {
			if grow := (cur.NsPerOp - base.NsPerOp) / base.NsPerOp; grow > maxRegress {
				out = append(out, Regression{
					Scenario: base.Scenario, Metric: "nsPerOp",
					Baseline: base.NsPerOp, Current: cur.NsPerOp, Change: grow,
				})
			}
		}
		if inc := cur.AllocsPerOp - base.AllocsPerOp; inc > allocSlack {
			out = append(out, Regression{
				Scenario: base.Scenario, Metric: "allocsPerOp",
				Baseline: base.AllocsPerOp, Current: cur.AllocsPerOp, Change: inc,
			})
		}
		if inc := cur.BytesPerOp - base.BytesPerOp; inc > bytesSlack {
			out = append(out, Regression{
				Scenario: base.Scenario, Metric: "bytesPerOp",
				Baseline: base.BytesPerOp, Current: cur.BytesPerOp, Change: inc,
			})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Scenario != out[b].Scenario {
			return out[a].Scenario < out[b].Scenario
		}
		return out[a].Metric < out[b].Metric
	})
	return out, nil
}
