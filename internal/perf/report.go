package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SchemaVersion is the version tag of the report JSON. Bump it only when a
// field changes meaning; adding fields is backward compatible and keeps the
// version.
const SchemaVersion = 1

// Result is the measured outcome of one scenario. Averages are per run of the
// whole scenario (one run = Tasks tasks pushed through the engine), so ns/op
// is comparable to a `go test -bench` line for the same workload.
type Result struct {
	// Scenario and Policy identify what ran.
	Scenario string `json:"scenario"`
	Policy   string `json:"policy"`
	// Runs is how many times the scenario executed within the wall budget.
	Runs int `json:"runs"`
	// Tasks is the number of tasks per run; Events the number of policy
	// invocations per run.
	Tasks  int `json:"tasks"`
	Events int `json:"events"`
	// WallNs is the total measured wall time.
	WallNs int64 `json:"wallNs"`
	// NsPerOp, AllocsPerOp and BytesPerOp are per-run averages.
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	// TasksPerSec is completed tasks per second of wall time — the harness's
	// headline throughput number.
	TasksPerSec float64 `json:"tasksPerSec"`
	// FlowP50 and FlowP99 are flow-time quantiles (virtual time) of the last
	// run, a service-quality check that optimizations do not change results.
	FlowP50 float64 `json:"flowP50"`
	FlowP99 float64 `json:"flowP99"`
}

// Report is the serialized outcome of a bench run: environment fingerprint
// plus one Result per scenario, sorted by scenario name so the JSON is
// byte-deterministic for a given set of measurements.
type Report struct {
	// Schema is SchemaVersion at write time.
	Schema int `json:"schema"`
	// GoVersion, GOOS and GOARCH fingerprint the environment. CompareRuns
	// only warns about cross-environment comparisons via the Regression list
	// consumer; the fields exist so a human can spot apples-to-oranges.
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// BudgetNs is the per-scenario wall budget the run used.
	BudgetNs int64 `json:"budgetNs"`
	// Results holds one entry per scenario, sorted by name.
	Results []Result `json:"results"`
}

// ResultByScenario returns the named result, if present.
func (r *Report) ResultByScenario(name string) (Result, bool) {
	for _, res := range r.Results {
		if res.Scenario == name {
			return res, true
		}
	}
	return Result{}, false
}

// WriteJSON serializes the report with stable formatting (two-space indent,
// trailing newline) so checked-in baselines diff cleanly.
func WriteJSON(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses a report and checks the schema version.
func ReadJSON(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("perf: parsing report: %w", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("perf: report schema %d, this build reads schema %d", r.Schema, SchemaVersion)
	}
	return &r, nil
}

// WriteFile writes the report to path (stdout when path is "-").
func WriteFile(path string, r *Report) error {
	if path == "-" {
		return WriteJSON(os.Stdout, r)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a report from path.
func ReadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
