package perf

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// goldenReport is a hand-built report with fixed values, so the golden file
// pins the JSON schema (field names, nesting, formatting) rather than any
// measurement.
func goldenReport() *Report {
	return &Report{
		Schema:    SchemaVersion,
		GoVersion: "go1.24.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		BudgetNs:  int64(100 * time.Millisecond),
		Results: []Result{
			{
				Scenario: "online-poisson", Policy: "wdeq",
				Runs: 12, Tasks: 4096, Events: 8191, WallNs: 120000000,
				NsPerOp: 10000000, AllocsPerOp: 0, BytesPerOp: 0,
				TasksPerSec: 409600, FlowP50: 1.5, FlowP99: 9.25,
			},
			{
				Scenario: "sharded", Policy: "wdeq",
				Runs: 5, Tasks: 4096, Events: 8200, WallNs: 110000000,
				NsPerOp: 22000000, AllocsPerOp: 8234.5, BytesPerOp: 1.25e6,
				TasksPerSec: 186181.81818181818, FlowP50: 1.25, FlowP99: 8.5,
			},
		},
	}
}

// The JSON schema is a contract with checked-in baselines and CI artifacts:
// any unintentional change to field names or formatting must fail this test.
// Refresh the golden file deliberately with UPDATE_GOLDEN=1.
func TestReportJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, goldenReport()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report JSON drifted from the golden schema.\ngot:\n%s\nwant:\n%s\n(run with UPDATE_GOLDEN=1 to accept)", buf.Bytes(), want)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	want := goldenReport()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != want.Schema || len(got.Results) != len(want.Results) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for i := range want.Results {
		if got.Results[i] != want.Results[i] {
			t.Errorf("result %d: %+v != %+v", i, got.Results[i], want.Results[i])
		}
	}
}

func TestReadJSONRejectsWrongSchema(t *testing.T) {
	r := goldenReport()
	r.Schema = SchemaVersion + 1
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(&buf); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("err = %v, want schema mismatch", err)
	}
}

func report(results ...Result) *Report {
	return &Report{Schema: SchemaVersion, Results: results}
}

func TestCompareRunsFlagsThroughputRegression(t *testing.T) {
	base := report(Result{Scenario: "a", TasksPerSec: 1000, NsPerOp: 100})
	cur := report(Result{Scenario: "a", TasksPerSec: 700, NsPerOp: 100})
	regs, err := CompareRuns(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "tasksPerSec" {
		t.Fatalf("regressions = %+v, want one tasksPerSec entry", regs)
	}
	if regs[0].Change >= 0 || regs[0].String() == "" {
		t.Errorf("bad regression rendering: %+v -> %s", regs[0], regs[0])
	}
	// A drop within the threshold passes.
	ok := report(Result{Scenario: "a", TasksPerSec: 800, NsPerOp: 100})
	regs, err = CompareRuns(base, ok, 0.25)
	if err != nil || len(regs) != 0 {
		t.Errorf("regs = %+v, err = %v; want clean pass", regs, err)
	}
	// Improvements never flag.
	better := report(Result{Scenario: "a", TasksPerSec: 5000, NsPerOp: 10})
	regs, err = CompareRuns(base, better, 0.25)
	if err != nil || len(regs) != 0 {
		t.Errorf("regs = %+v, err = %v; improvement flagged", regs, err)
	}
}

func TestCompareRunsFlagsTimeAndAllocRegressions(t *testing.T) {
	base := report(Result{Scenario: "a", TasksPerSec: 1000, NsPerOp: 100, AllocsPerOp: 0})
	cur := report(Result{Scenario: "a", TasksPerSec: 1000, NsPerOp: 200, AllocsPerOp: 9000})
	regs, err := CompareRuns(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v, want nsPerOp and allocsPerOp", regs)
	}
	if regs[0].Metric != "allocsPerOp" || regs[1].Metric != "nsPerOp" {
		t.Errorf("metrics = %s, %s (sorted order expected)", regs[0].Metric, regs[1].Metric)
	}
	// The absolute alloc slack tolerates noise against a zero baseline.
	noisy := report(Result{Scenario: "a", TasksPerSec: 1000, NsPerOp: 100, AllocsPerOp: 3})
	regs, err = CompareRuns(base, noisy, 0.25)
	if err != nil || len(regs) != 0 {
		t.Errorf("regs = %+v, err = %v; alloc noise flagged", regs, err)
	}
}

// bytesPerOp is gated like allocsPerOp: absolute slack, so a zero-byte
// baseline stays meaningful, but a genuinely regressed run (one big retained
// buffer per run, invisible to the alloc count) is flagged.
func TestCompareRunsFlagsByteRegression(t *testing.T) {
	base := report(Result{Scenario: "a", TasksPerSec: 1000, NsPerOp: 100, BytesPerOp: 0})
	cur := report(Result{Scenario: "a", TasksPerSec: 1000, NsPerOp: 100, BytesPerOp: 1 << 20})
	regs, err := CompareRuns(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "bytesPerOp" {
		t.Fatalf("regressions = %+v, want one bytesPerOp entry", regs)
	}
	if !strings.Contains(regs[0].String(), "bytes/run") {
		t.Errorf("rendering %q does not name the unit", regs[0].String())
	}
	// Noise within the slack passes.
	noisy := report(Result{Scenario: "a", TasksPerSec: 1000, NsPerOp: 100, BytesPerOp: 4096})
	if regs, err := CompareRuns(base, noisy, 0.25); err != nil || len(regs) != 0 {
		t.Errorf("regs = %+v, err = %v; byte noise flagged", regs, err)
	}
}

// The streaming scenario must run, report sketch-based quantiles, and the
// guarded set must resolve by name without being part of the default run.
func TestStreamScenario(t *testing.T) {
	s, err := ScenarioByName("online-stream")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Stream {
		t.Fatal("online-stream is not marked Stream")
	}
	res, err := RunScenario(s, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs < 1 || res.TasksPerSec <= 0 || res.FlowP50 <= 0 || res.FlowP99 < res.FlowP50 {
		t.Errorf("implausible stream measurement %+v", res)
	}
	// Warmed stream runs reuse generator scratch, engine scratch and sinks;
	// the per-run allocation cost is a handful of setup objects, far below
	// one per event.
	if res.AllocsPerOp > float64(res.Events)/10 {
		t.Errorf("streaming run allocates %.1f/run over %d events", res.AllocsPerOp, res.Events)
	}

	if _, err := ScenarioByName("streaming-10m"); err != nil {
		t.Fatalf("guarded scenario not resolvable: %v", err)
	}
	for _, pinned := range ScenarioNames() {
		if pinned == "streaming-10m" {
			t.Error("guarded scenario leaked into the default set")
		}
	}
	bad := s
	bad.Shards = 4
	if _, err := RunScenario(bad, time.Millisecond); err == nil {
		t.Error("sharded streaming scenario accepted")
	}
	bad = s
	bad.Process = ProcessStatic
	if _, err := RunScenario(bad, time.Millisecond); err == nil {
		t.Error("static streaming scenario accepted")
	}
}

func TestCompareRunsMissingScenarioIsError(t *testing.T) {
	base := report(Result{Scenario: "a", TasksPerSec: 1000}, Result{Scenario: "b", TasksPerSec: 1000})
	cur := report(Result{Scenario: "a", TasksPerSec: 1000})
	if _, err := CompareRuns(base, cur, 0.25); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("err = %v, want missing-scenario error", err)
	}
	// Extra scenarios in the current report are fine.
	if _, err := CompareRuns(cur, base, 0.25); err != nil {
		t.Errorf("extra scenario rejected: %v", err)
	}
}

func TestCompareRunsZeroBaselineSkipsRelativeMetrics(t *testing.T) {
	base := report(Result{Scenario: "a"}) // all-zero placeholder
	cur := report(Result{Scenario: "a", TasksPerSec: 1, NsPerOp: 1e12, AllocsPerOp: 10})
	regs, err := CompareRuns(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("regs = %+v; zero baseline must disable relative comparisons", regs)
	}
}

func TestCompareRunsRejectsBadInputs(t *testing.T) {
	if _, err := CompareRuns(nil, report(), 0.25); err == nil {
		t.Errorf("nil baseline accepted")
	}
	if _, err := CompareRuns(report(), report(), 0); err == nil {
		t.Errorf("zero threshold accepted")
	}
}

// End-to-end smoke: every pinned scenario must run under a tiny budget and
// produce sane, internally consistent numbers.
func TestRunAllPinnedScenarios(t *testing.T) {
	rep, err := RunAll(nil, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != SchemaVersion || len(rep.Results) != len(Scenarios()) {
		t.Fatalf("report = %+v", rep)
	}
	for _, res := range rep.Results {
		if res.Runs < 1 || res.NsPerOp <= 0 || res.TasksPerSec <= 0 {
			t.Errorf("%s: implausible measurement %+v", res.Scenario, res)
		}
		if res.Events < res.Tasks {
			t.Errorf("%s: %d events for %d tasks", res.Scenario, res.Events, res.Tasks)
		}
		if res.FlowP99 < res.FlowP50 || res.FlowP50 <= 0 {
			t.Errorf("%s: flow quantiles p50=%g p99=%g", res.Scenario, res.FlowP50, res.FlowP99)
		}
	}
	// The report is sorted by scenario, so re-serializing is deterministic.
	for i := 1; i < len(rep.Results); i++ {
		if rep.Results[i-1].Scenario >= rep.Results[i].Scenario {
			t.Errorf("results not sorted: %q before %q", rep.Results[i-1].Scenario, rep.Results[i].Scenario)
		}
	}
}

// The single-shard scenarios ride the zero-allocation hot path: their
// allocs/op must stay far below one alloc per event. (The exact zero is
// asserted at the engine level; here a loose bound keeps the test robust to
// harness bookkeeping.)
func TestSingleShardScenariosNearZeroAllocs(t *testing.T) {
	for _, name := range []string{"online-poisson", "static-wdeq", "concave-speedup", "time-varying-capacity", "online-probe"} {
		s, err := ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunScenario(s, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if res.AllocsPerOp > float64(res.Events)/10 {
			t.Errorf("%s: %.1f allocs/run over %d events — hot path is allocating again",
				name, res.AllocsPerOp, res.Events)
		}
	}
}

// The probed scenario is online-poisson plus an every-event EngineCollector:
// same workload, same seed. It must stay on the zero-allocation path, and its
// throughput must remain in the same league as the unprobed twin. The bound
// here is deliberately loose (2x) so CI machine noise cannot flake it; the
// real overhead (a few percent) is recorded in EXPERIMENTS.md and gated by
// the 25% baseline comparison like every other scenario.
func TestProbeScenario(t *testing.T) {
	probed, err := ScenarioByName("online-probe")
	if err != nil {
		t.Fatal(err)
	}
	if !probed.Probe {
		t.Fatal("online-probe is not marked Probe")
	}
	plain, err := ScenarioByName("online-poisson")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Seed != probed.Seed || plain.Rate != probed.Rate || plain.Tasks != probed.Tasks {
		t.Fatalf("online-probe drifted from online-poisson: %+v vs %+v", probed, plain)
	}

	probedRes, err := RunScenario(probed, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	plainRes, err := RunScenario(plain, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Identical workload, so the event count must match exactly.
	if probedRes.Events != plainRes.Events {
		t.Errorf("probed run saw %d events, unprobed %d — workloads diverged", probedRes.Events, plainRes.Events)
	}
	if probedRes.AllocsPerOp > float64(probedRes.Events)/10 {
		t.Errorf("probed run allocates %.1f/run over %d events — observation hit the allocator", probedRes.AllocsPerOp, probedRes.Events)
	}
	if probedRes.TasksPerSec < plainRes.TasksPerSec/2 {
		t.Errorf("probe overhead out of bounds: %.0f tasks/sec probed vs %.0f unprobed", probedRes.TasksPerSec, plainRes.TasksPerSec)
	}

	// Probing is a single-engine affair.
	bad := probed
	bad.Shards = 4
	if _, err := RunScenario(bad, time.Millisecond); err == nil {
		t.Error("sharded probe scenario accepted")
	}
	bad = probed
	bad.Shards = 1
	bad.Router = "po2"
	if _, err := RunScenario(bad, time.Millisecond); err == nil {
		t.Error("routed probe scenario accepted")
	}
}

func TestScenarioByNameUnknown(t *testing.T) {
	if _, err := ScenarioByName("nope"); err == nil {
		t.Errorf("unknown scenario accepted")
	}
	if _, err := RunAll([]string{"nope"}, time.Millisecond); err == nil {
		t.Errorf("RunAll accepted an unknown scenario")
	}
}

// The parallel coordinator's acceptance number: on a box with at least eight
// usable cores, the batched eight-worker round-robin fleet must clear at
// least 3x the tasks/sec of the sequential eight-shard baseline. The test
// self-skips on smaller machines (and under -short or the race detector,
// where throughput is meaningless); CI runs it on a pinned multi-core
// runner, which is where the bound is actually enforced.
func TestParallelScalingRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling ratio needs real wall time; skipped with -short")
	}
	if raceEnabled {
		t.Skip("race-instrumented throughput is not a scaling measurement")
	}
	if cores := runtime.GOMAXPROCS(0); cores < 8 {
		t.Skipf("need >= 8 usable cores for the 8-worker scaling bound, have %d", cores)
	}
	seq, err := ScenarioByName("cluster-least-backlog-8")
	if err != nil {
		t.Fatal(err)
	}
	par, err := ScenarioByName("cluster-parallel-rr")
	if err != nil {
		t.Fatal(err)
	}
	if par.Workers != 8 || par.Shards != 8 || seq.Workers != 0 || seq.Shards != 8 {
		t.Fatalf("pinned scenarios drifted: seq=%+v par=%+v", seq, par)
	}
	const budget = 2 * time.Second
	seqRes, err := RunScenario(seq, budget)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := RunScenario(par, budget)
	if err != nil {
		t.Fatal(err)
	}
	ratio := parRes.TasksPerSec / seqRes.TasksPerSec
	t.Logf("sequential %.0f tasks/sec, parallel %.0f tasks/sec, ratio %.2fx",
		seqRes.TasksPerSec, parRes.TasksPerSec, ratio)
	if ratio < 3 {
		t.Errorf("8-worker batched coordinator is only %.2fx the sequential baseline, want >= 3x", ratio)
	}
}

// The speculative coordinator's acceptance number: on the same fleet, load
// and worker count, optimism must beat the windowed conservative mode —
// cluster-spec-lb and cluster-parallel-lb differ ONLY in Speculate, so their
// ratio isolates what replacing the per-dispatch fleet barrier with
// checkpoint/rollback buys a state-reading router. Skips mirror
// TestParallelScalingRatio; CI's pinned multi-core runner enforces the bound.
func TestSpeculativeScalingRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling ratio needs real wall time; skipped with -short")
	}
	if raceEnabled {
		t.Skip("race-instrumented throughput is not a scaling measurement")
	}
	if cores := runtime.GOMAXPROCS(0); cores < 8 {
		t.Skipf("need >= 8 usable cores for the 8-worker scaling bound, have %d", cores)
	}
	windowed, err := ScenarioByName("cluster-parallel-lb")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ScenarioByName("cluster-spec-lb")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Speculate || spec.Workers != windowed.Workers || spec.Shards != windowed.Shards ||
		spec.Seed != windowed.Seed || spec.Rate != windowed.Rate || spec.Router != windowed.Router {
		t.Fatalf("pinned scenarios drifted: windowed=%+v spec=%+v", windowed, spec)
	}
	const budget = 2 * time.Second
	winRes, err := RunScenario(windowed, budget)
	if err != nil {
		t.Fatal(err)
	}
	specRes, err := RunScenario(spec, budget)
	if err != nil {
		t.Fatal(err)
	}
	ratio := specRes.TasksPerSec / winRes.TasksPerSec
	t.Logf("windowed %.0f tasks/sec, speculative %.0f tasks/sec, ratio %.2fx",
		winRes.TasksPerSec, specRes.TasksPerSec, ratio)
	if ratio < 1 {
		t.Errorf("speculative coordinator is %.2fx the windowed baseline, want >= 1x", ratio)
	}
}

// The stale-batched coordinator's acceptance number: on the same fleet, load
// and worker count as the windowed exact-view run, routing from
// window-boundary views must not be slower — cluster-stale-lb swaps
// cluster-parallel-lb's per-dispatch windows for one published view per
// 512-arrival batch (plus stream prefetch), so the ratio isolates what
// dropping the per-dispatch barrier buys a state-reading router. Skips mirror
// TestParallelScalingRatio; CI's pinned multi-core runner enforces the bound.
func TestStaleBatchedScalingRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling ratio needs real wall time; skipped with -short")
	}
	if raceEnabled {
		t.Skip("race-instrumented throughput is not a scaling measurement")
	}
	if cores := runtime.GOMAXPROCS(0); cores < 8 {
		t.Skipf("need >= 8 usable cores for the 8-worker scaling bound, have %d", cores)
	}
	windowed, err := ScenarioByName("cluster-parallel-lb")
	if err != nil {
		t.Fatal(err)
	}
	stale, err := ScenarioByName("cluster-stale-lb")
	if err != nil {
		t.Fatal(err)
	}
	if !stale.Stale || !stale.Prefetch || stale.Speculate ||
		stale.Workers != windowed.Workers || stale.Shards != windowed.Shards ||
		stale.Seed != windowed.Seed || stale.Rate != windowed.Rate || stale.Router != windowed.Router {
		t.Fatalf("pinned scenarios drifted: windowed=%+v stale=%+v", windowed, stale)
	}
	const budget = 2 * time.Second
	winRes, err := RunScenario(windowed, budget)
	if err != nil {
		t.Fatal(err)
	}
	staleRes, err := RunScenario(stale, budget)
	if err != nil {
		t.Fatal(err)
	}
	ratio := staleRes.TasksPerSec / winRes.TasksPerSec
	t.Logf("windowed %.0f tasks/sec, stale-batched %.0f tasks/sec, ratio %.2fx",
		winRes.TasksPerSec, staleRes.TasksPerSec, ratio)
	if ratio < 1 {
		t.Errorf("stale-batched coordinator is %.2fx the windowed baseline, want >= 1x", ratio)
	}
}
