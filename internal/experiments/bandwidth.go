package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/sim"
	"github.com/malleable-sched/malleable/internal/stats"
	"github.com/malleable-sched/malleable/internal/workload"
)

// BandwidthRow is the aggregate behaviour of one distribution strategy in the
// F1 study.
type BandwidthRow struct {
	Strategy string
	// MeanThroughputVsBest is the strategy's throughput divided by the best
	// strategy's throughput, averaged over scenarios (1.0 means it always
	// ties with the best).
	MeanThroughputVsBest float64
	MinThroughputVsBest  float64
	// MeanWeightedCompletion is the mean Σ rate_i · C_i of its schedules.
	MeanWeightedCompletion float64
}

// BandwidthResult is the outcome of experiment F1 (Figure 1 of the paper):
// the master–worker code-distribution scenario where maximizing the tasks
// processed by the horizon is equivalent to minimizing the weighted sum of
// completion times.
type BandwidthResult struct {
	Scenarios int
	Workers   int
	Rows      []BandwidthRow
	// IdentityGapMax is the largest observed gap between the explicit
	// throughput simulation and the closed-form Σ rate·(T−C); it should be
	// numerically zero.
	IdentityGapMax float64
	// EquivalenceViolations counts scenario/strategy pairs in which a
	// strictly lower ΣwC did not translate into at least as much throughput.
	EquivalenceViolations int
}

// Bandwidth runs the F1 study: random scenarios, three distribution
// strategies (WDEQ, best greedy, Cmax-optimal/fair stretch), throughput
// measured at the horizon.
func Bandwidth(cfg Config, workers int) (*BandwidthResult, error) {
	cfg = cfg.withDefaults()
	if workers <= 0 {
		workers = 8
	}
	out := &BandwidthResult{Scenarios: cfg.Instances, Workers: workers}
	rng := rand.New(rand.NewSource(cfg.Seed + 101))

	ratios := map[string][]float64{}
	objectives := map[string][]float64{}
	for k := 0; k < cfg.Instances; k++ {
		scenario, err := workload.NewBandwidthScenario(workers, cfg.Seed+int64(k))
		if err != nil {
			return nil, err
		}
		inst, err := scenario.Instance()
		if err != nil {
			return nil, err
		}
		schedules := map[string]*schedule.ColumnSchedule{}
		wdeq, err := core.RunWDEQ(inst)
		if err != nil {
			return nil, err
		}
		schedules["WDEQ (non-clairvoyant)"] = wdeq
		best, err := core.BestGreedy(inst, rng, 12)
		if err != nil {
			return nil, err
		}
		schedules["best greedy (clairvoyant)"] = best.Schedule
		cmax, err := core.CmaxOptimal(inst)
		if err != nil {
			return nil, err
		}
		schedules["fair stretch (Cmax-optimal)"] = cmax

		results, err := sim.CompareBandwidthStrategies(scenario, schedules)
		if err != nil {
			out.EquivalenceViolations++
			continue
		}
		bestThroughput := results[0].TasksProcessed
		for _, r := range results {
			if bestThroughput > 0 {
				ratios[r.Strategy] = append(ratios[r.Strategy], r.TasksProcessed/bestThroughput)
			}
			objectives[r.Strategy] = append(objectives[r.Strategy], r.WeightedCompletionTime)
			if gap := r.ThroughputIdentityGap(scenario); gap > out.IdentityGapMax {
				out.IdentityGapMax = gap
			}
		}
	}
	for _, name := range []string{"best greedy (clairvoyant)", "WDEQ (non-clairvoyant)", "fair stretch (Cmax-optimal)"} {
		s := stats.Summarize(ratios[name])
		out.Rows = append(out.Rows, BandwidthRow{
			Strategy:               name,
			MeanThroughputVsBest:   s.Mean,
			MinThroughputVsBest:    s.Min,
			MeanWeightedCompletion: stats.Summarize(objectives[name]).Mean,
		})
	}
	return out, nil
}

// Render writes the F1 table.
func (r *BandwidthResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Bandwidth-sharing scenario (Figure 1): %d scenarios, %d workers each\n", r.Scenarios, r.Workers); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-32s %22s %22s %20s\n", "distribution strategy", "mean throughput/best", "min throughput/best", "mean Σ rate·C"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%-32s %22.4f %22.4f %20.4f\n",
			row.Strategy, row.MeanThroughputVsBest, row.MinThroughputVsBest, row.MeanWeightedCompletion); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "max |closed-form − simulated| throughput gap: %.3g; equivalence violations: %d\n",
		r.IdentityGapMax, r.EquivalenceViolations)
	return err
}

// EquivalenceHolds reports whether the min-ΣwC strategy always maximized the
// throughput (the paper's claimed equivalence) and the closed form matched
// the explicit simulation.
func (r *BandwidthResult) EquivalenceHolds() bool {
	if r.EquivalenceViolations > 0 || r.IdentityGapMax > 1e-6 {
		return false
	}
	for _, row := range r.Rows {
		if row.Strategy == "best greedy (clairvoyant)" && row.MinThroughputVsBest < 1-1e-6 {
			return false
		}
	}
	return true
}
