package experiments

import (
	"fmt"
	"io"

	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/exact"
	"github.com/malleable-sched/malleable/internal/stats"
	"github.com/malleable-sched/malleable/internal/workload"
)

// SmithRatioRow is one row of the E10 study.
type SmithRatioRow struct {
	Class          string
	N              int
	Instances      int
	MeanRatio      float64
	MaxRatio       float64
	WorstCaseDelta []float64
}

// SmithRatioResult is the outcome of experiment E10, which explores the open
// question raised in the conclusion of the paper: what is the approximation
// ratio of the greedy schedule that uses Smith's ordering (non-decreasing
// V_i/w_i), in particular on the w_i = V_i = 1 class?
type SmithRatioResult struct {
	Rows []SmithRatioRow
}

// SmithRatio measures the ratio of the Smith-ordered greedy schedule to the
// exact optimum on the uniform class and on the w=V=1 class, and records the
// degree bounds of the worst instance found (a candidate hard instance for
// the open question).
func SmithRatio(cfg Config) (*SmithRatioResult, error) {
	cfg = cfg.withDefaults()
	out := &SmithRatioResult{}
	classes := []struct {
		name  string
		class workload.Class
		p     float64
	}{
		{"uniform (§V-A distribution)", workload.Uniform, cfg.Processors},
		{"unit volumes and weights (w=V=1)", workload.ConstantWeightVolume, cfg.Processors},
	}
	for _, spec := range classes {
		for _, n := range cfg.Sizes {
			if n > exact.EnumerationLimit {
				continue
			}
			gen, err := workload.NewGenerator(spec.class, n, spec.p, cfg.Seed+int64(41*n))
			if err != nil {
				return nil, err
			}
			ratios := make([]float64, 0, cfg.Instances)
			worst := 0.0
			var worstDeltas []float64
			for k := 0; k < cfg.Instances; k++ {
				inst := gen.Next()
				opt, err := exact.Optimal(inst, exact.Options{ExactArithmetic: cfg.ExactArithmetic})
				if err != nil {
					return nil, err
				}
				smith, err := core.GreedySmith(inst)
				if err != nil {
					return nil, err
				}
				ratio := smith.Objective / opt.Objective
				ratios = append(ratios, ratio)
				if ratio > worst {
					worst = ratio
					worstDeltas = make([]float64, inst.N())
					for i := range inst.Tasks {
						worstDeltas[i] = inst.Tasks[i].Delta
					}
				}
			}
			s := stats.Summarize(ratios)
			out.Rows = append(out.Rows, SmithRatioRow{
				Class:          spec.name,
				N:              n,
				Instances:      cfg.Instances,
				MeanRatio:      s.Mean,
				MaxRatio:       s.Max,
				WorstCaseDelta: worstDeltas,
			})
		}
	}
	return out, nil
}

// Render writes the E10 table.
func (r *SmithRatioResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Smith-order greedy vs optimum (open question of the conclusion)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-36s %4s %10s %12s %12s\n", "class", "n", "instances", "mean ratio", "max ratio"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%-36s %4d %10d %12.4f %12.4f\n",
			row.Class, row.N, row.Instances, row.MeanRatio, row.MaxRatio); err != nil {
			return err
		}
	}
	return nil
}

// WorstRatio returns the largest ratio observed across all rows.
func (r *SmithRatioResult) WorstRatio() float64 {
	worst := 0.0
	for _, row := range r.Rows {
		if row.MaxRatio > worst {
			worst = row.MaxRatio
		}
	}
	return worst
}
