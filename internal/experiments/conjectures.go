package experiments

import (
	"fmt"
	"io"
	"math/big"
	"math/rand"

	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/exact"
	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/stats"
	"github.com/malleable-sched/malleable/internal/workload"
)

// Conjecture13Row is one row of the E4 study.
type Conjecture13Row struct {
	N          int
	Instances  int
	OrdersPer  int
	Violations int
}

// Conjecture13Result is the outcome of experiment E4: exact-rational
// verification of the order-reversal identity (the paper checked it formally
// with Sage up to 15 tasks).
type Conjecture13Result struct {
	Rows []Conjecture13Row
}

// Conjecture13 verifies the order-reversal identity on the unit class. For
// each task count it draws cfg.Instances random rational δ vectors; for
// n <= 6 it checks every order exhaustively, for larger n it checks a sample
// of random orders (the identity is between one order and its reverse, so a
// sample of orders is still an exact check of the conjecture on those
// orders). Sizes beyond the paper's 15 tasks are accepted.
func Conjecture13(cfg Config) (*Conjecture13Result, error) {
	cfg = cfg.withDefaults()
	out := &Conjecture13Result{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range cfg.Sizes {
		row := Conjecture13Row{N: n, Instances: cfg.Instances}
		for k := 0; k < cfg.Instances; k++ {
			deltas := exact.RandomUnitDeltas(n, 1024, rng.Intn)
			if n <= 6 {
				row.OrdersPer = int(numeric.Factorial(n))
				violation, err := exact.Conjecture13Exhaustive(deltas)
				if err != nil {
					return nil, err
				}
				if violation != nil {
					row.Violations++
				}
				continue
			}
			// Sampled orders for larger n.
			const sampledOrders = 24
			row.OrdersPer = sampledOrders
			for s := 0; s < sampledOrders; s++ {
				holds, _, _, err := exact.Conjecture13Holds(deltas, rng.Perm(n))
				if err != nil {
					return nil, err
				}
				if !holds {
					row.Violations++
					break
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render writes the E4 table.
func (r *Conjecture13Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Conjecture 13: greedy objective is invariant under order reversal (exact rationals)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%4s %10s %12s %12s\n", "n", "instances", "orders/inst", "violations"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%4d %10d %12d %12d\n", row.N, row.Instances, row.OrdersPer, row.Violations); err != nil {
			return err
		}
	}
	return nil
}

// Holds reports whether no violation was found.
func (r *Conjecture13Result) Holds() bool {
	for _, row := range r.Rows {
		if row.Violations > 0 {
			return false
		}
	}
	return true
}

// OrderCatalogueResult is the outcome of experiment E5: the optimal-order
// catalogue of Section V-B (with tasks sorted by non-increasing δ) and the
// necessary condition for 5 tasks.
//
// Reproduction note: the enumeration confirms the paper's catalogue for 2 and
// 3 tasks, but for 4 tasks the exact enumeration finds (1,3,4,2) and its
// reverse (2,4,3,1) optimal rather than the (1,3,2,4)/(4,2,3,1) printed in
// the paper; both counters are reported so the discrepancy is visible (see
// EXPERIMENTS.md).
type OrderCatalogueResult struct {
	Instances int
	// Catalogue23Violations counts instances (n in {2,3}) whose optimal
	// orders do not include the ones listed in the paper.
	Catalogue23Violations int
	// Paper4Matches counts 4-task instances whose optimal orders include the
	// paper's printed orders (1,3,2,4)/(4,2,3,1).
	Paper4Matches int
	// Empirical4Matches counts 4-task instances whose optimal orders include
	// (1,3,4,2)/(2,4,3,1), the pattern found by exact enumeration.
	Empirical4Matches int
	// ConditionViolations counts 5-task instances with an optimal order
	// (i, j, k, l, m) violating the necessary condition
	// (δ_l − δ_j)(δ_i − δ_m) <= 0.
	ConditionViolations int
}

// OrderCatalogue verifies the Section V-B catalogue on random unit-class
// instances with δ sorted decreasingly (the paper states the catalogue for
// δ_1 >= δ_2 >= ... >= δ_n).
func OrderCatalogue(cfg Config) (*OrderCatalogueResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	out := &OrderCatalogueResult{Instances: cfg.Instances}
	for k := 0; k < cfg.Instances; k++ {
		for _, n := range []int{2, 3} {
			deltas := sortedUnitDeltas(rng, n)
			orders, _, err := exact.OptimalUnitClassOrders(deltas)
			if err != nil {
				return nil, err
			}
			if !containsAll(orders, catalogue23[n]) {
				out.Catalogue23Violations++
			}
		}
		// 4 tasks: compare the paper's printed orders with the pattern found
		// by exact enumeration.
		deltas4 := sortedUnitDeltas(rng, 4)
		orders4, _, err := exact.OptimalUnitClassOrders(deltas4)
		if err != nil {
			return nil, err
		}
		if containsAll(orders4, [][]int{{0, 2, 1, 3}, {3, 1, 2, 0}}) {
			out.Paper4Matches++
		}
		if containsAll(orders4, [][]int{{0, 2, 3, 1}, {1, 3, 2, 0}}) {
			out.Empirical4Matches++
		}
		// The 5-task necessary condition.
		deltas := sortedUnitDeltas(rng, 5)
		floats := make([]float64, 5)
		for i, d := range deltas {
			f, _ := d.Float64()
			floats[i] = f
		}
		orders, _, err := exact.OptimalUnitClassOrders(deltas)
		if err != nil {
			return nil, err
		}
		for _, o := range orders {
			// Order (i, j, k, l, m): require (δ_l − δ_j)(δ_i − δ_m) <= 0.
			i, j, l, m := o[0], o[1], o[3], o[4]
			if (floats[l]-floats[j])*(floats[i]-floats[m]) > 1e-12 {
				out.ConditionViolations++
				break
			}
		}
	}
	return out, nil
}

// catalogue23 holds the paper's optimal orders for 2 and 3 tasks (0-based,
// tasks sorted by non-increasing δ):
//
//	2 tasks: (1,2) and (2,1)     → {0,1} and {1,0}
//	3 tasks: (1,3,2) and (2,3,1) → {0,2,1} and {1,2,0}
var catalogue23 = map[int][][]int{
	2: {{0, 1}, {1, 0}},
	3: {{0, 2, 1}, {1, 2, 0}},
}

func sortedUnitDeltas(rng *rand.Rand, n int) []*big.Rat {
	deltas := exact.RandomUnitDeltas(n, 512, rng.Intn)
	// Insertion sort descending.
	for i := 1; i < len(deltas); i++ {
		for j := i; j > 0 && deltas[j].Cmp(deltas[j-1]) > 0; j-- {
			deltas[j], deltas[j-1] = deltas[j-1], deltas[j]
		}
	}
	return deltas
}

// containsAll reports whether every wanted order appears in the optimal set.
func containsAll(optimal [][]int, wanted [][]int) bool {
	contains := func(want []int) bool {
		for _, o := range optimal {
			same := len(o) == len(want)
			for i := 0; same && i < len(want); i++ {
				if o[i] != want[i] {
					same = false
				}
			}
			if same {
				return true
			}
		}
		return false
	}
	for _, want := range wanted {
		if !contains(want) {
			return false
		}
	}
	return true
}

// Render writes the E5 report.
func (r *OrderCatalogueResult) Render(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"Optimal-order catalogue (Section V-B)\n"+
			"  instances per size: %d\n"+
			"  catalogue violations for 2 and 3 tasks: %d\n"+
			"  4-task instances matching the paper's printed orders (1,3,2,4)/(4,2,3,1): %d\n"+
			"  4-task instances matching the enumerated orders (1,3,4,2)/(2,4,3,1): %d\n"+
			"  5-task necessary-condition violations: %d\n",
		r.Instances, r.Catalogue23Violations, r.Paper4Matches, r.Empirical4Matches, r.ConditionViolations)
	return err
}

// Holds reports whether the reproducible claims were confirmed: the 2- and
// 3-task catalogue and the 5-task necessary condition. The 4-task line is
// reported but not asserted because the exact enumeration disagrees with the
// printed orders (see the type documentation).
func (r *OrderCatalogueResult) Holds() bool {
	return r.Catalogue23Violations == 0 && r.ConditionViolations == 0
}

// GreedyDominanceRow is one row of the E8 study.
type GreedyDominanceRow struct {
	N                 int
	Instances         int
	MaxRelativeGap    float64
	OptimalNotGreedy  int
	SaturationCounter int
}

// GreedyDominanceResult is the outcome of experiment E8 (Theorem 11): on
// instances with homogeneous weights and δ_i > P/2, optimal schedules are
// greedy.
type GreedyDominanceResult struct {
	Rows []GreedyDominanceRow
}

// GreedyDominance compares the exact optimum with the best greedy schedule on
// the large-δ class and checks the structural property of Lemma 7 (every task
// saturated in its completion column) on the optimal schedules.
func GreedyDominance(cfg Config) (*GreedyDominanceResult, error) {
	cfg = cfg.withDefaults()
	out := &GreedyDominanceResult{}
	p := cfg.Processors
	if p < 2 {
		p = 2
	}
	for _, n := range cfg.Sizes {
		gen, err := workload.NewGenerator(workload.LargeDelta, n, p, cfg.Seed+int64(31*n))
		if err != nil {
			return nil, err
		}
		gaps := make([]float64, 0, cfg.Instances)
		notGreedy := 0
		saturation := 0
		for k := 0; k < cfg.Instances; k++ {
			inst := gen.Next()
			opt, err := exact.Optimal(inst, exact.Options{ExactArithmetic: cfg.ExactArithmetic, BuildSchedule: true})
			if err != nil {
				return nil, err
			}
			best, err := core.BestGreedy(inst, nil, 0)
			if err != nil {
				return nil, err
			}
			gap := (best.Objective - opt.Objective) / opt.Objective
			if gap < 0 {
				gap = 0
			}
			gaps = append(gaps, gap)
			if gap > 1e-5 {
				notGreedy++
			}
			// Lemma 7: every task saturated in its completion column of the
			// best greedy (= optimal) schedule.
			s := best.Schedule
			for i := 0; i < inst.N(); i++ {
				j := s.ColumnOf(i)
				if s.ColumnLength(j) <= numeric.Eps {
					continue
				}
				if !numeric.ApproxEqualTol(s.Alloc[i][j], inst.EffectiveDelta(i), 1e-6) {
					saturation++
					break
				}
			}
		}
		out.Rows = append(out.Rows, GreedyDominanceRow{
			N:                 n,
			Instances:         cfg.Instances,
			MaxRelativeGap:    stats.Summarize(gaps).Max,
			OptimalNotGreedy:  notGreedy,
			SaturationCounter: saturation,
		})
	}
	return out, nil
}

// Render writes the E8 table.
func (r *GreedyDominanceResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Greedy dominance on the δ > P/2, homogeneous-weight class (Theorem 11)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%4s %10s %16s %18s %20s\n", "n", "instances", "max rel. gap", "greedy suboptimal", "saturation violated"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%4d %10d %16.3e %18d %20d\n",
			row.N, row.Instances, row.MaxRelativeGap, row.OptimalNotGreedy, row.SaturationCounter); err != nil {
			return err
		}
	}
	return nil
}

// Holds reports whether the greedy schedules matched the optimum everywhere.
func (r *GreedyDominanceResult) Holds() bool {
	for _, row := range r.Rows {
		if row.OptimalNotGreedy > 0 {
			return false
		}
	}
	return true
}
