// Package experiments contains one driver per quantitative claim of the
// paper. Each driver generates the instance distribution used by the paper,
// runs the relevant algorithms, and reports the same quantities the paper
// discusses (see DESIGN.md for the experiment index E1–E9 / F1 and
// EXPERIMENTS.md for the measured results). Sample counts are configurable so
// that the benchmark harness can run quick versions while `mwct experiment
// -full` reproduces the paper-scale runs.
package experiments

import (
	"fmt"
	"io"
	"math"

	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/exact"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/stats"
	"github.com/malleable-sched/malleable/internal/workload"
)

// Config holds the common experiment parameters.
type Config struct {
	// Seed makes every experiment deterministic.
	Seed int64
	// Instances is the number of random instances per task-count (the paper
	// uses 10,000 for the Section V-A study).
	Instances int
	// Sizes lists the task counts to sweep (the paper uses 2..5).
	Sizes []int
	// Processors is the platform size for the classes that need one.
	Processors float64
	// ExactArithmetic switches the optimal solver to the rational simplex.
	ExactArithmetic bool
}

// DefaultConfig returns the configuration used by the benchmark harness:
// small sample counts with the paper's sizes.
func DefaultConfig() Config {
	return Config{Seed: 1, Instances: 60, Sizes: []int{2, 3, 4, 5}, Processors: 1}
}

// PaperConfig returns the full-scale configuration of the paper's Section
// V-A study (10,000 instances per size).
func PaperConfig() Config {
	return Config{Seed: 1, Instances: 10000, Sizes: []int{2, 3, 4, 5}, Processors: 1}
}

func (c Config) withDefaults() Config {
	if c.Instances <= 0 {
		c.Instances = 60
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{2, 3, 4, 5}
	}
	if c.Processors <= 0 {
		c.Processors = 1
	}
	return c
}

// GreedyVsOptimalRow is one row (one task count) of the E1/E2/E3 study.
type GreedyVsOptimalRow struct {
	N               int
	Instances       int
	MeanRelativeGap float64
	MaxRelativeGap  float64
	// GreedyBelowLP counts instances where the best greedy objective was
	// numerically below the LP optimum (should only happen within round-off).
	GreedyBelowLP int
}

// GreedyVsOptimalResult is the outcome of experiments E1–E3 (Section V-A):
// the best greedy schedule versus the exact optimum on random instances.
type GreedyVsOptimalResult struct {
	Class workload.Class
	Rows  []GreedyVsOptimalRow
}

// GreedyVsOptimal runs the Section V-A study on the given instance class
// (Uniform for E1, ConstantWeight for E2, ConstantWeightVolume for E3).
func GreedyVsOptimal(cfg Config, class workload.Class) (*GreedyVsOptimalResult, error) {
	cfg = cfg.withDefaults()
	out := &GreedyVsOptimalResult{Class: class}
	for _, n := range cfg.Sizes {
		gen, err := workload.NewGenerator(class, n, cfg.Processors, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		gaps := make([]float64, 0, cfg.Instances)
		below := 0
		for k := 0; k < cfg.Instances; k++ {
			inst := gen.Next()
			opt, err := exact.Optimal(inst, exact.Options{ExactArithmetic: cfg.ExactArithmetic})
			if err != nil {
				return nil, fmt.Errorf("experiments: optimal solve failed (n=%d, k=%d): %w", n, k, err)
			}
			best, err := core.BestGreedy(inst, nil, 0)
			if err != nil {
				return nil, err
			}
			gap := (best.Objective - opt.Objective) / opt.Objective
			if gap < -1e-9 {
				below++
			}
			if gap < 0 {
				gap = 0
			}
			gaps = append(gaps, gap)
		}
		summary := stats.Summarize(gaps)
		out.Rows = append(out.Rows, GreedyVsOptimalRow{
			N:               n,
			Instances:       cfg.Instances,
			MeanRelativeGap: summary.Mean,
			MaxRelativeGap:  summary.Max,
			GreedyBelowLP:   below,
		})
	}
	return out, nil
}

// Render writes the result as the table the paper describes in prose
// ("the best greedy schedule was numerically indistinguishable from the
// optimal").
func (r *GreedyVsOptimalResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Best greedy vs LP optimum — class %s\n", r.Class); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%4s %10s %16s %16s %14s\n", "n", "instances", "mean rel. gap", "max rel. gap", "greedy<LP"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%4d %10d %16.3e %16.3e %14d\n",
			row.N, row.Instances, row.MeanRelativeGap, row.MaxRelativeGap, row.GreedyBelowLP); err != nil {
			return err
		}
	}
	return nil
}

// Indistinguishable reports whether the study reproduces the paper's claim:
// the largest relative gap between the best greedy and the optimum stays
// within numerical noise (the threshold is generous because the float LP and
// the greedy construction accumulate different round-off).
func (r *GreedyVsOptimalResult) Indistinguishable(threshold float64) bool {
	for _, row := range r.Rows {
		if row.MaxRelativeGap > threshold {
			return false
		}
	}
	return true
}

// WDEQRatioRow is one row of the E7 study.
type WDEQRatioRow struct {
	N              int
	Instances      int
	MeanVsOptimal  float64
	MaxVsOptimal   float64
	MeanVsLowerBnd float64
	MaxVsLowerBnd  float64
}

// WDEQRatioResult is the outcome of experiment E7: the empirical
// approximation ratio of the non-clairvoyant WDEQ algorithm (Theorem 4 proves
// it never exceeds 2).
type WDEQRatioResult struct {
	Rows []WDEQRatioRow
}

// WDEQRatio measures the WDEQ approximation ratio against the exact optimum
// (for the sizes where enumeration is feasible) and against the max(A, H)
// lower bound.
func WDEQRatio(cfg Config) (*WDEQRatioResult, error) {
	cfg = cfg.withDefaults()
	out := &WDEQRatioResult{}
	for _, n := range cfg.Sizes {
		gen, err := workload.NewGenerator(workload.Uniform, n, cfg.Processors, cfg.Seed+int64(97*n))
		if err != nil {
			return nil, err
		}
		var vsOpt, vsLB []float64
		for k := 0; k < cfg.Instances; k++ {
			inst := gen.Next()
			s, err := core.RunWDEQ(inst)
			if err != nil {
				return nil, err
			}
			obj := s.WeightedCompletionTime()
			vsLB = append(vsLB, obj/core.LowerBound(inst))
			if n <= exact.EnumerationLimit {
				opt, err := exact.Optimal(inst, exact.Options{ExactArithmetic: cfg.ExactArithmetic})
				if err != nil {
					return nil, err
				}
				vsOpt = append(vsOpt, obj/opt.Objective)
			}
		}
		row := WDEQRatioRow{N: n, Instances: cfg.Instances}
		if len(vsOpt) > 0 {
			s := stats.Summarize(vsOpt)
			row.MeanVsOptimal, row.MaxVsOptimal = s.Mean, s.Max
		}
		if len(vsLB) > 0 {
			s := stats.Summarize(vsLB)
			row.MeanVsLowerBnd, row.MaxVsLowerBnd = s.Mean, s.Max
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render writes the E7 table.
func (r *WDEQRatioResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "WDEQ approximation ratio (Theorem 4 guarantees <= 2 vs optimum)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%4s %10s %14s %14s %14s %14s\n",
		"n", "instances", "mean vs OPT", "max vs OPT", "mean vs LB", "max vs LB"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%4d %10d %14.4f %14.4f %14.4f %14.4f\n",
			row.N, row.Instances, row.MeanVsOptimal, row.MaxVsOptimal, row.MeanVsLowerBnd, row.MaxVsLowerBnd); err != nil {
			return err
		}
	}
	return nil
}

// WithinTwo reports whether every measured ratio against the optimum stays
// within the proven factor of 2.
func (r *WDEQRatioResult) WithinTwo() bool {
	for _, row := range r.Rows {
		if row.MaxVsOptimal > 2+1e-6 {
			return false
		}
	}
	return true
}

// PreemptionRow is one row of the E6 study.
type PreemptionRow struct {
	N                   int
	Instances           int
	MeanLemma5Changes   float64
	MaxLemma5Changes    int
	MeanNaturalChanges  float64
	MaxNaturalChanges   int
	MeanIntegralChanges float64
	MaxIntegralChanges  int
	MeanPreemptions     float64
	MaxPreemptions      int
}

// PreemptionResult is the outcome of experiment E6: allocation changes and
// preemptions of the normal form (Theorems 9 and 10).
type PreemptionResult struct {
	Rows []PreemptionRow
}

// Preemptions measures, for water-filling normal forms of WDEQ completion
// times on random instances, the total allocation changes (paper convention
// and natural convention) and the preemptions of the Theorem-3 integral
// conversion.
func Preemptions(cfg Config) (*PreemptionResult, error) {
	cfg = cfg.withDefaults()
	out := &PreemptionResult{}
	for _, n := range cfg.Sizes {
		gen, err := workload.NewGenerator(workload.Uniform, n, math.Max(2, cfg.Processors), cfg.Seed+int64(13*n))
		if err != nil {
			return nil, err
		}
		var lemma5s, naturals, integrals, preempts []float64
		maxL, maxN, maxI, maxP := 0, 0, 0, 0
		for k := 0; k < cfg.Instances; k++ {
			inst := gen.Next()
			src, err := core.RunWDEQ(inst)
			if err != nil {
				return nil, err
			}
			wf, err := core.WaterFill(inst, src.CompletionTimes())
			if err != nil {
				return nil, err
			}
			_, lemma5 := core.Lemma5ChangeCount(wf)
			_, natural := wf.AllocationChanges()
			pa, err := schedule.FromColumns(wf)
			if err != nil {
				return nil, err
			}
			_, integral := pa.AllocationChangeCount()
			_, preempt := pa.PreemptionCount()
			lemma5s = append(lemma5s, float64(lemma5))
			naturals = append(naturals, float64(natural))
			integrals = append(integrals, float64(integral))
			preempts = append(preempts, float64(preempt))
			if lemma5 > maxL {
				maxL = lemma5
			}
			if natural > maxN {
				maxN = natural
			}
			if integral > maxI {
				maxI = integral
			}
			if preempt > maxP {
				maxP = preempt
			}
		}
		out.Rows = append(out.Rows, PreemptionRow{
			N:                   n,
			Instances:           cfg.Instances,
			MeanLemma5Changes:   stats.Summarize(lemma5s).Mean,
			MaxLemma5Changes:    maxL,
			MeanNaturalChanges:  stats.Summarize(naturals).Mean,
			MaxNaturalChanges:   maxN,
			MeanIntegralChanges: stats.Summarize(integrals).Mean,
			MaxIntegralChanges:  maxI,
			MeanPreemptions:     stats.Summarize(preempts).Mean,
			MaxPreemptions:      maxP,
		})
	}
	return out, nil
}

// Render writes the E6 table.
func (r *PreemptionResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Normal-form allocation changes and preemptions (Theorems 9 and 10)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%4s %9s %12s %8s %12s %8s %12s %8s %12s %8s\n",
		"n", "instances", "lemma5 mean", "max(<=n)", "natural mean", "max", "integer mean", "max", "preempt mean", "max"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%4d %9d %12.2f %8d %12.2f %8d %12.2f %8d %12.2f %8d\n",
			row.N, row.Instances,
			row.MeanLemma5Changes, row.MaxLemma5Changes,
			row.MeanNaturalChanges, row.MaxNaturalChanges,
			row.MeanIntegralChanges, row.MaxIntegralChanges,
			row.MeanPreemptions, row.MaxPreemptions); err != nil {
			return err
		}
	}
	return nil
}

// Theorem9Holds reports whether the Lemma-5 change count never exceeded the
// task count in any sampled instance.
func (r *PreemptionResult) Theorem9Holds() bool {
	for _, row := range r.Rows {
		if row.MaxLemma5Changes > row.N {
			return false
		}
	}
	return true
}
