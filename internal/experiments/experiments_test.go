package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/malleable-sched/malleable/internal/workload"
)

// quickConfig keeps the experiment drivers fast enough for the unit-test
// suite while still exercising every code path.
func quickConfig() Config {
	return Config{Seed: 7, Instances: 6, Sizes: []int{2, 3, 4}, Processors: 1}
}

func TestGreedyVsOptimalUniform(t *testing.T) {
	res, err := GreedyVsOptimal(quickConfig(), workload.Uniform)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !res.Indistinguishable(1e-4) {
		t.Errorf("best greedy deviates from the optimum: %+v", res.Rows)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "uniform") {
		t.Errorf("render missing class name: %q", buf.String())
	}
}

func TestGreedyVsOptimalConstantClasses(t *testing.T) {
	for _, class := range []workload.Class{workload.ConstantWeight, workload.ConstantWeightVolume} {
		res, err := GreedyVsOptimal(quickConfig(), class)
		if err != nil {
			t.Fatalf("%v: %v", class, err)
		}
		if !res.Indistinguishable(1e-4) {
			t.Errorf("%v: best greedy deviates from the optimum: %+v", class, res.Rows)
		}
	}
}

func TestWDEQRatio(t *testing.T) {
	res, err := WDEQRatio(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.WithinTwo() {
		t.Errorf("WDEQ exceeded its approximation guarantee: %+v", res.Rows)
	}
	for _, row := range res.Rows {
		if row.MaxVsOptimal < 1-1e-6 {
			t.Errorf("ratio below 1 is impossible: %+v", row)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Theorem 4") {
		t.Errorf("render missing header")
	}
}

func TestPreemptions(t *testing.T) {
	cfg := quickConfig()
	cfg.Processors = 3
	res, err := Preemptions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Theorem9Holds() {
		t.Errorf("Lemma-5 change count exceeded n: %+v", res.Rows)
	}
	for _, row := range res.Rows {
		if row.MaxNaturalChanges > 2*row.N {
			t.Errorf("natural change count exceeded 2n: %+v", row)
		}
		if row.MeanPreemptions < 0 {
			t.Errorf("negative preemptions")
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestConjecture13Experiment(t *testing.T) {
	cfg := quickConfig()
	cfg.Sizes = []int{3, 5, 9} // include a size beyond exhaustive enumeration
	cfg.Instances = 4
	res, err := Conjecture13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds() {
		t.Errorf("Conjecture 13 violated: %+v", res.Rows)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestOrderCatalogue(t *testing.T) {
	cfg := quickConfig()
	cfg.Instances = 3
	res, err := OrderCatalogue(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds() {
		t.Errorf("order catalogue violated: %+v", res)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyDominance(t *testing.T) {
	cfg := quickConfig()
	cfg.Processors = 2
	cfg.Sizes = []int{2, 3}
	res, err := GreedyDominance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds() {
		t.Errorf("greedy dominance violated on the large-δ class: %+v", res.Rows)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTableI(t *testing.T) {
	cfg := quickConfig()
	cfg.Instances = 4
	cfg.Sizes = []int{2, 3}
	res, err := TableI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GuaranteesRespected() {
		t.Errorf("an algorithm exceeded its proven guarantee: %+v", res.Rows)
	}
	if len(res.Rows) < 8 {
		t.Errorf("expected at least 8 table rows, got %d", len(res.Rows))
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Errorf("render missing header")
	}
}

func TestBandwidth(t *testing.T) {
	cfg := quickConfig()
	cfg.Instances = 5
	res, err := Bandwidth(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EquivalenceHolds() {
		t.Errorf("throughput/completion-time equivalence violated: %+v", res)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Errorf("render missing header")
	}
}

func TestSmithRatio(t *testing.T) {
	cfg := quickConfig()
	cfg.Instances = 4
	res, err := SmithRatio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.MaxRatio < 1-1e-6 {
			t.Errorf("ratio below 1 is impossible: %+v", row)
		}
	}
	if res.WorstRatio() > 2 {
		t.Errorf("Smith greedy worse than a factor 2 on tiny instances: %+v", res.Rows)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Smith") {
		t.Errorf("render missing header")
	}
}

func TestConfigsAndDefaults(t *testing.T) {
	d := DefaultConfig()
	if d.Instances <= 0 || len(d.Sizes) == 0 {
		t.Errorf("DefaultConfig = %+v", d)
	}
	p := PaperConfig()
	if p.Instances != 10000 {
		t.Errorf("PaperConfig instances = %d", p.Instances)
	}
	var zero Config
	filled := zero.withDefaults()
	if filled.Instances <= 0 || len(filled.Sizes) == 0 || filled.Processors <= 0 {
		t.Errorf("withDefaults left zero values: %+v", filled)
	}
}
