package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/malleable-sched/malleable/internal/baselines"
	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/exact"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/stats"
	"github.com/malleable-sched/malleable/internal/workload"
)

// TableIRow aggregates one algorithm's behaviour on one instance class.
type TableIRow struct {
	Class     string
	Algorithm string
	MeanRatio float64
	MaxRatio  float64
	Instances int
}

// TableIResult is the outcome of experiment E9: every algorithm implemented
// by the library and its baselines, run on the instance class where the
// corresponding row of Table I applies, reported as ratios to the exact
// optimum.
type TableIResult struct {
	Rows []TableIRow
}

// TableI reproduces the structure of Table I: for each instance class it
// runs the applicable algorithms and reports their empirical ratios to the
// exact optimum (which the enumeration solver provides for the small sizes
// used here). The qualitative shape to recover is: the clairvoyant
// polynomial rows reach ratio 1 on their class, the non-clairvoyant
// algorithms stay within their proven factor 2, and the greedy heuristics sit
// in between.
func TableI(cfg Config) (*TableIResult, error) {
	cfg = cfg.withDefaults()
	out := &TableIResult{}

	type classSpec struct {
		name  string
		class workload.Class
		p     float64
		// transform optionally rewrites each generated instance so that it
		// belongs to the class the Table I row assumes (e.g. forcing δ_i = 1
		// or δ_i = P).
		transform func(inst *schedule.Instance) *schedule.Instance
		// algorithms maps a display name to a runner returning the objective.
		algorithms map[string]func(inst *schedule.Instance) (float64, error)
	}

	objectiveOf := func(s *schedule.ColumnSchedule, err error) (float64, error) {
		if err != nil {
			return 0, err
		}
		return s.WeightedCompletionTime(), nil
	}

	general := map[string]func(inst *schedule.Instance) (float64, error){
		"WDEQ (non-clairvoyant, 2-approx)": func(inst *schedule.Instance) (float64, error) {
			return objectiveOf(core.RunWDEQ(inst))
		},
		"DEQ (unweighted non-clairvoyant)": func(inst *schedule.Instance) (float64, error) {
			return objectiveOf(core.RunDEQ(inst))
		},
		"Greedy (Smith order)": func(inst *schedule.Instance) (float64, error) {
			r, err := core.GreedySmith(inst)
			if err != nil {
				return 0, err
			}
			return r.Objective, nil
		},
		"Greedy (best order)": func(inst *schedule.Instance) (float64, error) {
			r, err := core.BestGreedy(inst, nil, 0)
			if err != nil {
				return 0, err
			}
			return r.Objective, nil
		},
		"Cmax-optimal schedule": func(inst *schedule.Instance) (float64, error) {
			return objectiveOf(core.CmaxOptimal(inst))
		},
	}

	singleProc := map[string]func(inst *schedule.Instance) (float64, error){
		"Smith sequential (δ>=P optimal)": func(inst *schedule.Instance) (float64, error) {
			return objectiveOf(baselines.SmithSequential(inst))
		},
		"Weighted round-robin (non-clairvoyant)": func(inst *schedule.Instance) (float64, error) {
			return objectiveOf(baselines.WeightedRoundRobin(inst))
		},
	}

	unitDelta := map[string]func(inst *schedule.Instance) (float64, error){
		"SPT list scheduling (δ=1)": func(inst *schedule.Instance) (float64, error) {
			return objectiveOf(baselines.SPT(inst))
		},
		"LRF / Kawaguchi-Kyan (δ=1)": func(inst *schedule.Instance) (float64, error) {
			return objectiveOf(baselines.LRF(inst))
		},
		"WDEQ (non-clairvoyant, 2-approx)": func(inst *schedule.Instance) (float64, error) {
			return objectiveOf(core.RunWDEQ(inst))
		},
	}

	specs := []classSpec{
		{name: "heterogeneous malleable (δ_i ≠, V_i ≠)", class: workload.Uniform, p: 2, algorithms: general},
		{
			name: "squashed platform (δ_i >= P)", class: workload.Uniform, p: 2, algorithms: singleProc,
			transform: func(inst *schedule.Instance) *schedule.Instance {
				c := inst.Clone()
				for i := range c.Tasks {
					c.Tasks[i].Delta = c.P
				}
				return c
			},
		},
		{
			name: "single-processor tasks (δ_i = 1)", class: workload.Uniform, p: 2, algorithms: unitDelta,
			transform: func(inst *schedule.Instance) *schedule.Instance {
				c := inst.Clone()
				for i := range c.Tasks {
					c.Tasks[i].Delta = 1
				}
				return c
			},
		},
	}

	sizes := cfg.Sizes
	for _, spec := range specs {
		samples := map[string][]float64{}
		instances := 0
		for _, n := range sizes {
			gen, err := workload.NewGenerator(spec.class, n, spec.p, cfg.Seed+int64(7*n))
			if err != nil {
				return nil, err
			}
			for k := 0; k < cfg.Instances; k++ {
				inst := gen.Next()
				if spec.transform != nil {
					inst = spec.transform(inst)
				}
				opt, err := exact.Optimal(inst, exact.Options{ExactArithmetic: cfg.ExactArithmetic})
				if err != nil {
					return nil, err
				}
				instances++
				for name, run := range spec.algorithms {
					obj, err := run(inst)
					if err != nil {
						return nil, fmt.Errorf("experiments: %s on %s: %w", name, spec.name, err)
					}
					samples[name] = append(samples[name], obj/opt.Objective)
				}
			}
		}
		names := make([]string, 0, len(samples))
		for name := range samples {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s := stats.Summarize(samples[name])
			out.Rows = append(out.Rows, TableIRow{
				Class:     spec.name,
				Algorithm: name,
				MeanRatio: s.Mean,
				MaxRatio:  s.Max,
				Instances: instances,
			})
		}
	}
	return out, nil
}

// Render writes the E9 table.
func (r *TableIResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Table I reproduction: empirical ratios to the exact optimum"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-42s %-40s %12s %12s %10s\n", "instance class", "algorithm", "mean ratio", "max ratio", "instances"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%-42s %-40s %12.4f %12.4f %10d\n",
			row.Class, row.Algorithm, row.MeanRatio, row.MaxRatio, row.Instances); err != nil {
			return err
		}
	}
	return nil
}

// GuaranteesRespected reports whether every algorithm with a proven guarantee
// stayed within it in the sampled runs: WDEQ within 2, Smith sequential at
// ratio 1 on its class, LRF within (1+√2)/2, and SPT within ... SPT is only
// optimal for the unweighted objective, so it is not checked here.
func (r *TableIResult) GuaranteesRespected() bool {
	for _, row := range r.Rows {
		switch {
		case row.Algorithm == "WDEQ (non-clairvoyant, 2-approx)" && row.MaxRatio > 2+1e-6:
			return false
		case row.Algorithm == "Smith sequential (δ>=P optimal)" && row.MaxRatio > 1+1e-6:
			return false
		case row.Algorithm == "LRF / Kawaguchi-Kyan (δ=1)" && row.MaxRatio > (1+1.4142135623730951)/2+1e-6:
			return false
		}
	}
	return true
}
