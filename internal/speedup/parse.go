package speedup

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/malleable-sched/malleable/internal/stepfunc"
)

// ModelNames lists the model spec forms accepted by ParseModel, for help
// texts and error messages.
func ModelNames() []string {
	return []string{"linear", "powerlaw[:alpha]", "amdahl[:sigma]", "platform:cap@t0,cap@t1,..."}
}

// ParseModel resolves a model spec string:
//
//	linear                      the paper's linear-cap model (also "")
//	powerlaw                    concave power law with the default exponent
//	powerlaw:0.6                concave power law with exponent 0.6
//	amdahl                      Amdahl's law with the default serial fraction
//	amdahl:0.05                 Amdahl's law with serial fraction 0.05
//	platform:8@0,4@10,8@20      time-varying capacity: 8 procs on [0,10),
//	                            4 on [10,20), 8 from 20 on (linear per task)
//
// Everything after "platform:" is a comma-separated list of capacity@time
// steps whose first time must be 0 and whose times must strictly increase.
func ParseModel(spec string) (Model, error) {
	name, arg, hasArg := strings.Cut(strings.TrimSpace(spec), ":")
	switch strings.ToLower(name) {
	case "", "linear":
		if hasArg {
			return nil, fmt.Errorf("speedup: the linear model takes no parameter, got %q", spec)
		}
		return LinearCap{}, nil
	case "powerlaw":
		alpha := 0.0
		if hasArg {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil || !(v > 0) || v > 1 {
				return nil, fmt.Errorf("speedup: powerlaw exponent must be in (0, 1], got %q", arg)
			}
			alpha = v
		}
		return PowerLaw{Alpha: alpha}, nil
	case "amdahl":
		sigma := 0.0
		if hasArg {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil || !(v > 0) || v >= 1 {
				return nil, fmt.Errorf("speedup: amdahl serial fraction must be in (0, 1), got %q", arg)
			}
			sigma = v
		}
		return Amdahl{Sigma: sigma}, nil
	case "platform":
		if !hasArg || strings.TrimSpace(arg) == "" {
			return nil, fmt.Errorf("speedup: platform model needs cap@time steps, e.g. platform:8@0,4@10")
		}
		profile, err := parseProfile(arg)
		if err != nil {
			return nil, err
		}
		return Platform{Profile: profile}, nil
	default:
		return nil, fmt.Errorf("speedup: unknown model %q (want one of %s)", spec, strings.Join(ModelNames(), ", "))
	}
}

// parseProfile parses "cap@t0,cap@t1,..." into a step function.
func parseProfile(arg string) (*stepfunc.StepFunc, error) {
	var times, values []float64
	for _, step := range strings.Split(arg, ",") {
		capStr, tStr, ok := strings.Cut(strings.TrimSpace(step), "@")
		if !ok {
			return nil, fmt.Errorf("speedup: platform step %q is not cap@time", step)
		}
		c, err := strconv.ParseFloat(capStr, 64)
		if err != nil || c < 0 {
			return nil, fmt.Errorf("speedup: platform step %q has invalid capacity", step)
		}
		t, err := strconv.ParseFloat(tStr, 64)
		if err != nil || t < 0 {
			return nil, fmt.Errorf("speedup: platform step %q has invalid time", step)
		}
		times = append(times, t)
		values = append(values, c)
	}
	profile, err := stepfunc.FromSteps(times, values)
	if err != nil {
		return nil, fmt.Errorf("speedup: platform profile: %w", err)
	}
	return profile, nil
}
