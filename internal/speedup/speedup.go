// Package speedup defines the processing-rate model of the scheduling kernel:
// how many units of work per unit of time a malleable task processes when it
// is allocated a given number of processors. The paper's model — linear
// speedup up to a per-task degree bound δ — is one Model among several; the
// engine (internal/engine) advances its event loop exclusively through a
// Model, so concave-speedup and time-varying-capacity scenarios are a policy
// choice rather than a fork of the kernel.
//
// Bundled models:
//
//   - LinearCap: the paper's work-preserving model, rate = min(q, δ). This is
//     the default everywhere and the model under which the engine's
//     zero-allocation guarantees are benchmarked.
//   - PowerLaw: concave speedup rate = min(q, δ)^α beyond one processor
//     (linear below: fractional allocations are time-shares), exponent α in
//     (0, 1]; α = 1 degenerates to LinearCap.
//   - Amdahl: rate = q / (σ·q + (1−σ)) beyond one processor, the classic
//     serial-fraction law with rate(1) = 1 and asymptote 1/σ.
//   - Platform: a step-function platform capacity P(t) wrapped around any
//     inner model; the engine re-invokes the policy at every capacity
//     breakpoint (see Budgeter).
//
// Every model must be a stateless value that is safe for concurrent use by
// multiple engine shards: all bundled models are.
package speedup

import (
	"fmt"
	"math"

	"github.com/malleable-sched/malleable/internal/stepfunc"
)

// TaskShape is the slice of a task a model may read: its effective degree
// bound and its optional per-task curve parameter. It deliberately excludes
// volumes and weights — a rate model describes how a task runs, not what it
// is worth, and keeping volumes out preserves the non-clairvoyant layering.
type TaskShape struct {
	// Delta is the task's effective degree bound (already capped at the
	// available capacity by the caller).
	Delta float64
	// Curve is the task's speedup-curve parameter (schedule.Task.Curve): the
	// power-law exponent for PowerLaw, the serial fraction for Amdahl. Zero
	// means "use the model's default", so streams generated without per-task
	// curves run unchanged under every model. Out-of-range values are
	// clamped into the model's domain (exponent to 1, serial fraction to 1);
	// ValidateCurves lets front ends reject such ranges before a run.
	Curve float64
}

// Model maps an allocation of processors to an instantaneous processing rate.
// The engine's event loop is written entirely against this interface: it
// computes the next completion as TimeToProcess(shape, alloc, remaining) and
// advances per-task progress by Rate(shape, alloc)·dt.
//
// Contract: Rate must be non-negative, non-decreasing in procs on [0, Delta],
// and zero at procs = 0. TimeToProcess must be the exact inverse of Rate for
// constant allocations: TimeToProcess(t, q, v) = v / Rate(t, q) (and +Inf
// when the rate is zero). MaxUseful returns the smallest allocation achieving
// the task's peak rate — the point beyond which processors are wasted — which
// the model-aware equipartition variant (core.ShareAllocationModelFunc)
// offers custom policies as the pinning cap of the fixed point; for every
// bundled model it equals the degree bound, so the bundled policies use the
// plain rule.
type Model interface {
	// Name identifies the model in reports and flag values.
	Name() string
	// Rate returns the processing rate (volume per unit time) of a task with
	// shape t allocated procs processors.
	Rate(t TaskShape, procs float64) float64
	// TimeToProcess returns the time needed to process volume v at a constant
	// allocation of procs processors (+Inf if the rate is zero).
	TimeToProcess(t TaskShape, procs, v float64) float64
	// MaxUseful returns the smallest allocation at which the task's rate
	// peaks; allocating beyond it is pure waste.
	MaxUseful(t TaskShape) float64
}

// Budgeter is an optional interface for models whose available platform
// capacity varies over time. The engine queries BudgetAt at every event to
// cap the policy's budget and schedules an extra event at NextBudgetChange so
// allocations are re-negotiated exactly when the capacity steps. Models
// without a Budgeter run under the constant nominal capacity.
type Budgeter interface {
	// BudgetAt returns the capacity available at absolute time now, given the
	// nominal platform capacity p. It must never exceed p.
	BudgetAt(p, now float64) float64
	// NextBudgetChange returns the first time strictly after now at which the
	// budget changes, or +Inf if it never does.
	NextBudgetChange(now float64) float64
	// BudgetEventBound returns an upper bound on the number of budget-change
	// events a run can experience; the engine adds it to its runaway-policy
	// event bound.
	BudgetEventBound() int
}

// LinearCap is the paper's work-preserving malleable-task model: a task
// allocated q processors processes q units of work per unit of time, up to
// its degree bound δ. It is the default model of the whole library and the
// model under which the engine's zero-allocation hot path is benchmarked.
type LinearCap struct{}

// Name implements Model.
func (LinearCap) Name() string { return "linear" }

// Rate implements Model.
func (LinearCap) Rate(t TaskShape, procs float64) float64 {
	if procs <= 0 {
		return 0
	}
	return math.Min(procs, t.Delta)
}

// TimeToProcess implements Model.
func (m LinearCap) TimeToProcess(t TaskShape, procs, v float64) float64 {
	return timeAtRate(m.Rate(t, procs), v)
}

// MaxUseful implements Model.
func (LinearCap) MaxUseful(t TaskShape) float64 { return t.Delta }

// PowerLaw is the concave power-law speedup model: a task allocated q
// processors runs at rate min(q, δ)^α. The exponent α in (0, 1] is the
// model's Alpha unless the task carries its own Curve parameter; α = 1 is
// exactly LinearCap. Sub-linear exponents capture parallelization overheads
// (communication, synchronization) that grow with the allocation.
type PowerLaw struct {
	// Alpha is the default exponent, used for tasks whose Curve is zero. Zero
	// means DefaultAlpha.
	Alpha float64
}

// DefaultAlpha is the exponent a zero-valued PowerLaw uses.
const DefaultAlpha = 0.75

func (m PowerLaw) alpha(t TaskShape) float64 {
	a := m.Alpha
	if t.Curve > 0 {
		a = t.Curve
	}
	if a <= 0 {
		a = DefaultAlpha
	}
	if a > 1 {
		a = 1
	}
	return a
}

// Name implements Model.
func (m PowerLaw) Name() string { return "powerlaw" }

// Rate implements Model. At or below one processor the allocation is a
// time-share of a single processor and therefore linear (rate = q); the
// power law applies beyond one processor, where parallel overheads exist.
// Without the split a concave curve would be super-linear for fractional
// allocations (q^α > q when q < 1), which no real task is.
func (m PowerLaw) Rate(t TaskShape, procs float64) float64 {
	q := math.Min(procs, t.Delta)
	if q <= 0 {
		return 0
	}
	if q <= 1 {
		return q
	}
	return math.Pow(q, m.alpha(t))
}

// TimeToProcess implements Model.
func (m PowerLaw) TimeToProcess(t TaskShape, procs, v float64) float64 {
	return timeAtRate(m.Rate(t, procs), v)
}

// MaxUseful implements Model. The power law is strictly increasing, so the
// degree bound remains the saturation point.
func (PowerLaw) MaxUseful(t TaskShape) float64 { return t.Delta }

// Amdahl is the serial-fraction speedup model: a task with serial fraction σ
// allocated q processors runs at rate q / (σ·q + (1−σ)) — one processor gives
// rate 1, infinitely many approach 1/σ. σ is the model's Sigma unless the
// task carries its own Curve parameter.
type Amdahl struct {
	// Sigma is the default serial fraction in [0, 1), used for tasks whose
	// Curve is zero. Zero means DefaultSigma.
	Sigma float64
}

// DefaultSigma is the serial fraction a zero-valued Amdahl uses.
const DefaultSigma = 0.1

func (m Amdahl) sigma(t TaskShape) float64 {
	s := m.Sigma
	if t.Curve > 0 {
		s = t.Curve
	}
	if s <= 0 {
		s = DefaultSigma
	}
	if s >= 1 {
		s = 1
	}
	return s
}

// Name implements Model.
func (m Amdahl) Name() string { return "amdahl" }

// Rate implements Model. As with PowerLaw, allocations at or below one
// processor are time-shared and linear; Amdahl's law applies beyond one.
func (m Amdahl) Rate(t TaskShape, procs float64) float64 {
	q := math.Min(procs, t.Delta)
	if q <= 0 {
		return 0
	}
	if q <= 1 {
		return q
	}
	s := m.sigma(t)
	return q / (s*q + (1 - s))
}

// TimeToProcess implements Model.
func (m Amdahl) TimeToProcess(t TaskShape, procs, v float64) float64 {
	return timeAtRate(m.Rate(t, procs), v)
}

// MaxUseful implements Model. Amdahl's law is strictly increasing in q for
// σ < 1, so the degree bound is the saturation point — except for the fully
// serial edge case (σ clamped to 1), where the rate is flat beyond one
// processor and anything above one is waste.
func (m Amdahl) MaxUseful(t TaskShape) float64 {
	if m.sigma(t) >= 1 {
		return math.Min(t.Delta, 1)
	}
	return t.Delta
}

// Platform wraps an inner model with a time-varying platform capacity P(t):
// at every instant the engine caps the policy's budget at min(nominal P,
// Profile(t)) and re-invokes the policy whenever the profile steps. Within a
// profile segment the capacity is constant, so the event-to-event integration
// of the inner model stays exact — time variation costs events, not accuracy.
type Platform struct {
	// Profile is the capacity step function. It must be non-negative.
	Profile *stepfunc.StepFunc
	// Inner is the per-task rate model; nil means LinearCap.
	Inner Model
}

func (m Platform) inner() Model {
	if m.Inner == nil {
		return LinearCap{}
	}
	return m.Inner
}

// Name implements Model. The common linear-inner form returns a constant so
// that stamping the name into per-run results stays allocation-free.
func (m Platform) Name() string {
	if m.Inner == nil {
		return "platform"
	}
	return "platform+" + m.Inner.Name()
}

// Rate implements Model.
func (m Platform) Rate(t TaskShape, procs float64) float64 {
	return m.inner().Rate(t, procs)
}

// TimeToProcess implements Model.
func (m Platform) TimeToProcess(t TaskShape, procs, v float64) float64 {
	return m.inner().TimeToProcess(t, procs, v)
}

// MaxUseful implements Model.
func (m Platform) MaxUseful(t TaskShape) float64 { return m.inner().MaxUseful(t) }

// BudgetAt implements Budgeter.
func (m Platform) BudgetAt(p, now float64) float64 {
	if m.Profile == nil {
		return p
	}
	v := m.Profile.Value(now)
	if v < 0 {
		v = 0
	}
	return math.Min(p, v)
}

// NextBudgetChange implements Budgeter.
func (m Platform) NextBudgetChange(now float64) float64 {
	if m.Profile == nil {
		return math.Inf(1)
	}
	return m.Profile.NextBreakpointAfter(now)
}

// BudgetEventBound implements Budgeter.
func (m Platform) BudgetEventBound() int {
	if m.Profile == nil {
		return 0
	}
	return m.Profile.NumPieces()
}

// timeAtRate is the shared inverse helper: v units of work at a constant rate.
func timeAtRate(rate, v float64) float64 {
	if v <= 0 {
		return 0
	}
	if rate <= 0 {
		return math.Inf(1)
	}
	return v / rate
}

// IsLinear reports whether the model is the paper's work-preserving LinearCap
// model (nil counts: it is the default). Schedule reconstruction — turning a
// decision trace into a column-based schedule whose allocation profiles
// integrate to the task volumes — is only sound under it.
func IsLinear(m Model) bool {
	if m == nil {
		return true
	}
	_, ok := m.(LinearCap)
	return ok
}

// ValidateCurves checks that per-task curve parameters drawn from [lo, hi]
// are meaningful under the model: out-of-domain curves would be silently
// clamped (see TaskShape.Curve), turning a load test into a degenerate run
// with no warning. Front ends that know both the model and the curve range
// (mwct loadtest, the perf scenarios) call this before starting.
func ValidateCurves(m Model, lo, hi float64) error {
	if hi <= 0 {
		return nil // curves disabled
	}
	switch mm := m.(type) {
	case PowerLaw:
		if hi > 1 {
			return fmt.Errorf("speedup: power-law exponent curves must lie in (0, 1], got range [%g, %g]", lo, hi)
		}
	case Amdahl:
		if hi >= 1 {
			return fmt.Errorf("speedup: amdahl serial-fraction curves must lie in (0, 1), got range [%g, %g]", lo, hi)
		}
	case Platform:
		return ValidateCurves(mm.inner(), lo, hi)
	}
	return nil
}

// Validate checks the model's basic contract on a probe shape: zero rate at
// zero processors, non-negative non-decreasing rates, and TimeToProcess
// consistent with Rate. The engine runs it once per run on non-default
// models, so a misconfigured custom model fails loudly instead of producing
// plausible-looking nonsense.
func Validate(m Model) error {
	shape := TaskShape{Delta: 4}
	if r := m.Rate(shape, 0); r != 0 {
		return fmt.Errorf("speedup: model %q has non-zero rate %g at zero processors", m.Name(), r)
	}
	prev := 0.0
	for _, q := range []float64{0.25, 0.5, 1, 2, 4} {
		r := m.Rate(shape, q)
		if math.IsNaN(r) || r < 0 {
			return fmt.Errorf("speedup: model %q has invalid rate %g at %g processors", m.Name(), r, q)
		}
		if r < prev {
			return fmt.Errorf("speedup: model %q rate decreases from %g to %g at %g processors", m.Name(), prev, r, q)
		}
		prev = r
		if r > 0 {
			want := 1.0 / r
			if got := m.TimeToProcess(shape, q, 1); math.Abs(got-want) > 1e-9*math.Max(1, want) {
				return fmt.Errorf("speedup: model %q TimeToProcess %g is inconsistent with rate %g", m.Name(), got, r)
			}
		}
	}
	return nil
}
