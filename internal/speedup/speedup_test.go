package speedup

import (
	"math"
	"strings"
	"testing"

	"github.com/malleable-sched/malleable/internal/stepfunc"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b)) }

func TestLinearCapRates(t *testing.T) {
	m := LinearCap{}
	shape := TaskShape{Delta: 3}
	if got := m.Rate(shape, 2); got != 2 {
		t.Errorf("Rate(2) = %g, want 2", got)
	}
	if got := m.Rate(shape, 5); got != 3 {
		t.Errorf("Rate(5) = %g, want 3 (capped at delta)", got)
	}
	if got := m.Rate(shape, 0); got != 0 {
		t.Errorf("Rate(0) = %g, want 0", got)
	}
	if got := m.TimeToProcess(shape, 2, 6); got != 3 {
		t.Errorf("TimeToProcess = %g, want 3", got)
	}
	if got := m.TimeToProcess(shape, 0, 1); !math.IsInf(got, 1) {
		t.Errorf("TimeToProcess at zero rate = %g, want +Inf", got)
	}
	if got := m.TimeToProcess(shape, 0, 0); got != 0 {
		t.Errorf("TimeToProcess of zero volume = %g, want 0", got)
	}
	if got := m.MaxUseful(shape); got != 3 {
		t.Errorf("MaxUseful = %g, want delta", got)
	}
}

func TestPowerLawRates(t *testing.T) {
	m := PowerLaw{Alpha: 0.5}
	shape := TaskShape{Delta: 16}
	if got := m.Rate(shape, 4); !almost(got, 2) {
		t.Errorf("Rate(4) = %g, want 2 (4^0.5)", got)
	}
	// Allocation beyond delta is wasted: rate caps at delta^alpha.
	if got := m.Rate(shape, 64); !almost(got, 4) {
		t.Errorf("Rate(64) = %g, want 4 (16^0.5)", got)
	}
	// Per-task curve overrides the model default.
	if got := m.Rate(TaskShape{Delta: 16, Curve: 1}, 4); !almost(got, 4) {
		t.Errorf("Rate with curve=1 = %g, want 4 (linear)", got)
	}
	// Alpha = 1 degenerates to LinearCap on any shape/allocation.
	lin, one := LinearCap{}, PowerLaw{Alpha: 1}
	for _, q := range []float64{0.25, 1, 3, 7, 20} {
		if a, b := one.Rate(shape, q), lin.Rate(shape, q); !almost(a, b) {
			t.Errorf("PowerLaw{1}.Rate(%g) = %g, LinearCap %g", q, a, b)
		}
	}
	// The zero value uses DefaultAlpha.
	if got := (PowerLaw{}).Rate(shape, 4); !almost(got, math.Pow(4, DefaultAlpha)) {
		t.Errorf("zero-value rate = %g, want 4^%g", got, DefaultAlpha)
	}
}

func TestAmdahlRates(t *testing.T) {
	m := Amdahl{Sigma: 0.25}
	shape := TaskShape{Delta: 1000}
	// One processor always gives rate 1.
	if got := m.Rate(shape, 1); !almost(got, 1) {
		t.Errorf("Rate(1) = %g, want 1", got)
	}
	// rate(q) = q / (sigma q + 1 - sigma): rate(3) = 3/1.5 = 2.
	if got := m.Rate(shape, 3); !almost(got, 2) {
		t.Errorf("Rate(3) = %g, want 2", got)
	}
	// The asymptote is 1/sigma.
	if got := m.Rate(shape, 1000); got >= 4 || got < 3.9 {
		t.Errorf("Rate(1000) = %g, want just under the asymptote 4", got)
	}
	// Per-task curve overrides the serial fraction.
	if got := (Amdahl{Sigma: 0.5}).Rate(TaskShape{Delta: 1000, Curve: 0.25}, 3); !almost(got, 2) {
		t.Errorf("Rate with curve override = %g, want 2", got)
	}
}

func TestAllBundledModelsValidate(t *testing.T) {
	profile, err := stepfunc.FromSteps([]float64{0, 5}, []float64{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Model{
		LinearCap{},
		PowerLaw{},
		PowerLaw{Alpha: 0.5},
		Amdahl{},
		Amdahl{Sigma: 0.3},
		Platform{Profile: profile},
		Platform{Profile: profile, Inner: PowerLaw{Alpha: 0.6}},
	} {
		if err := Validate(m); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

type brokenModel struct{ LinearCap }

func (brokenModel) Rate(t TaskShape, procs float64) float64 { return 1 } // non-zero at 0

func TestValidateRejectsBrokenModel(t *testing.T) {
	if err := Validate(brokenModel{}); err == nil {
		t.Errorf("broken model validated")
	}
}

func TestPlatformBudget(t *testing.T) {
	profile, err := stepfunc.FromSteps([]float64{0, 10, 20}, []float64{8, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	m := Platform{Profile: profile}
	if got := m.BudgetAt(8, 0); got != 8 {
		t.Errorf("BudgetAt(0) = %g, want 8", got)
	}
	if got := m.BudgetAt(8, 15); got != 3 {
		t.Errorf("BudgetAt(15) = %g, want 3", got)
	}
	// The nominal capacity stays an upper bound.
	if got := m.BudgetAt(4, 25); got != 4 {
		t.Errorf("BudgetAt with nominal 4 = %g, want 4", got)
	}
	if got := m.NextBudgetChange(0); got != 10 {
		t.Errorf("NextBudgetChange(0) = %g, want 10", got)
	}
	if got := m.NextBudgetChange(10); got != 20 {
		t.Errorf("NextBudgetChange(10) = %g, want 20", got)
	}
	if got := m.NextBudgetChange(20); !math.IsInf(got, 1) {
		t.Errorf("NextBudgetChange(20) = %g, want +Inf", got)
	}
	if got := m.BudgetEventBound(); got != 3 {
		t.Errorf("BudgetEventBound = %d, want 3", got)
	}
	// A nil-profile Platform behaves like a constant platform.
	empty := Platform{}
	if got := empty.BudgetAt(8, 99); got != 8 {
		t.Errorf("nil-profile BudgetAt = %g, want 8", got)
	}
	if got := empty.NextBudgetChange(0); !math.IsInf(got, 1) {
		t.Errorf("nil-profile NextBudgetChange = %g, want +Inf", got)
	}
}

func TestIsLinear(t *testing.T) {
	if !IsLinear(nil) || !IsLinear(LinearCap{}) {
		t.Errorf("nil and LinearCap must count as linear")
	}
	if IsLinear(PowerLaw{}) || IsLinear(Platform{}) {
		t.Errorf("non-linear models must not count as linear")
	}
}

func TestParseModel(t *testing.T) {
	cases := []struct {
		spec string
		name string
	}{
		{"", "linear"},
		{"linear", "linear"},
		{"LINEAR", "linear"},
		{"powerlaw", "powerlaw"},
		{"powerlaw:0.5", "powerlaw"},
		{"amdahl", "amdahl"},
		{"amdahl:0.2", "amdahl"},
		{"platform:8@0,4@10", "platform"},
	}
	for _, c := range cases {
		m, err := ParseModel(c.spec)
		if err != nil {
			t.Errorf("%q: %v", c.spec, err)
			continue
		}
		if m.Name() != c.name {
			t.Errorf("%q parsed to %q, want %q", c.spec, m.Name(), c.name)
		}
		if err := Validate(m); err != nil {
			t.Errorf("%q: parsed model fails validation: %v", c.spec, err)
		}
	}
	if m, _ := ParseModel("powerlaw:0.5"); m.(PowerLaw).Alpha != 0.5 {
		t.Errorf("powerlaw exponent not parsed: %+v", m)
	}
	if m, _ := ParseModel("amdahl:0.2"); m.(Amdahl).Sigma != 0.2 {
		t.Errorf("amdahl sigma not parsed: %+v", m)
	}
	if m, _ := ParseModel("platform:8@0,4@10"); m.(Platform).Profile.Value(12) != 4 {
		t.Errorf("platform profile not parsed: %+v", m)
	}
	for _, bad := range []string{
		"nope", "linear:1", "powerlaw:0", "powerlaw:2", "powerlaw:x",
		"amdahl:1", "amdahl:-0.1", "platform", "platform:", "platform:8",
		"platform:8@5,4@10", "platform:8@0,4@0", "platform:-1@0", "platform:8@-1",
	} {
		if _, err := ParseModel(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	if _, err := ParseModel("bogus"); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Errorf("unknown model error missing: %v", err)
	}
}

// No bundled model may beat the work-preserving linear rate: concavity means
// parallel overheads, and fractional allocations are time-shares of one
// processor. A model faster than linear anywhere would let a "slower"
// scenario finish earlier than the paper's baseline.
func TestModelsNeverExceedLinear(t *testing.T) {
	lin := LinearCap{}
	shape := TaskShape{Delta: 6}
	for _, m := range []Model{PowerLaw{Alpha: 0.5}, PowerLaw{}, Amdahl{Sigma: 0.3}, Amdahl{}} {
		for _, q := range []float64{0.1, 0.5, 0.99, 1, 1.5, 2, 4, 6, 10} {
			if got, cap := m.Rate(shape, q), lin.Rate(shape, q); got > cap+1e-12 {
				t.Errorf("%s: Rate(%g) = %g exceeds linear %g", m.Name(), q, got, cap)
			}
		}
		// Sub-unit allocations are exactly linear (time-sharing).
		if got := m.Rate(shape, 0.5); got != 0.5 {
			t.Errorf("%s: Rate(0.5) = %g, want 0.5", m.Name(), got)
		}
	}
}

// The fully-serial Amdahl edge case (sigma clamped to 1) has a flat rate
// beyond one processor, so MaxUseful must report 1, not the degree bound.
func TestAmdahlMaxUsefulSerialEdge(t *testing.T) {
	if got := (Amdahl{Sigma: 0.3}).MaxUseful(TaskShape{Delta: 4}); got != 4 {
		t.Errorf("MaxUseful = %g, want delta for sigma < 1", got)
	}
	if got := (Amdahl{}).MaxUseful(TaskShape{Delta: 4, Curve: 1}); got != 1 {
		t.Errorf("MaxUseful = %g, want 1 for a fully serial task", got)
	}
	if got := (Amdahl{}).MaxUseful(TaskShape{Delta: 0.5, Curve: 1}); got != 0.5 {
		t.Errorf("MaxUseful = %g, want min(delta, 1)", got)
	}
}

// ValidateCurves must reject curve ranges the model would silently clamp
// into degeneracy, and pass ranges inside the model's domain.
func TestValidateCurves(t *testing.T) {
	profile, err := stepfunc.FromSteps([]float64{0}, []float64{4})
	if err != nil {
		t.Fatal(err)
	}
	ok := []struct {
		m      Model
		lo, hi float64
	}{
		{LinearCap{}, 0, 0},
		{LinearCap{}, 5, 10}, // linear ignores curves entirely
		{PowerLaw{}, 0.5, 1},
		{Amdahl{}, 0.01, 0.99},
		{Platform{Profile: profile}, 2, 3}, // linear inner ignores curves
		{PowerLaw{}, 0, 0},                 // disabled
	}
	for _, c := range ok {
		if err := ValidateCurves(c.m, c.lo, c.hi); err != nil {
			t.Errorf("%s [%g,%g]: %v", c.m.Name(), c.lo, c.hi, err)
		}
	}
	bad := []struct {
		m      Model
		lo, hi float64
	}{
		{PowerLaw{}, 0.5, 1.5},
		{Amdahl{}, 0.5, 1},
		{Platform{Profile: profile, Inner: Amdahl{}}, 0.5, 2},
	}
	for _, c := range bad {
		if err := ValidateCurves(c.m, c.lo, c.hi); err == nil {
			t.Errorf("%s [%g,%g]: accepted", c.m.Name(), c.lo, c.hi)
		}
	}
}
