package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/stats"
	"github.com/malleable-sched/malleable/internal/workload"
)

func streamConfig() workload.ArrivalConfig {
	return workload.ArrivalConfig{
		Class: workload.Uniform, P: 8, Process: workload.Bursty, Rate: 8, MeanBurst: 4,
		Tenants: []workload.TenantSpec{
			{Name: "gold", Weight: 4, Share: 0.2},
			{Name: "bronze", Weight: 1, Share: 0.8},
		},
	}
}

// The streaming path must reproduce the slice path exactly: same aggregates,
// and (through a FullSink) the same per-task rows, for every bundled policy.
func TestStreamMatchesSlicePath(t *testing.T) {
	const n = 2000
	cfg := streamConfig()
	arrivals, err := workload.GenerateArrivals(cfg, n, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			policy, err := PolicyByName(name)
			if err != nil {
				t.Fatal(err)
			}
			slice, err := Run(8, policy, arrivals)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := workload.NewStream(cfg, n, 17)
			if err != nil {
				t.Fatal(err)
			}
			full := NewFullSink(n)
			res, err := RunStream(8, policy, stream, full)
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed != slice.Completed || res.Events != slice.Events ||
				res.MaxAlive != slice.MaxAlive || res.Makespan != slice.Makespan ||
				res.WeightedFlow != slice.WeightedFlow || res.TotalFlow != slice.TotalFlow ||
				res.WeightedCompletion != slice.WeightedCompletion {
				t.Fatalf("stream aggregates differ:\n%+v\nvs slice\n%+v", res, slice)
			}
			if len(res.Tasks) != 0 {
				t.Errorf("streaming run retained %d task rows", len(res.Tasks))
			}
			if len(full.Tasks) != n {
				t.Fatalf("full sink holds %d rows, want %d", len(full.Tasks), n)
			}
			for i := range full.Tasks {
				if full.Tasks[i] != slice.Tasks[i] {
					t.Fatalf("task %d differs: stream %+v vs slice %+v", i, full.Tasks[i], slice.Tasks[i])
				}
			}
		})
	}
}

// The aggregate sink must agree exactly with folding the retained table, and
// reset cleanly.
func TestAggregateSinkMatchesRetention(t *testing.T) {
	arrivals := allocArrivals(t, 600, 23)
	res, err := Run(8, WDEQPolicy{}, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregateSink()
	stream := NewSliceStream(arrivals)
	if _, err := RunStream(8, WDEQPolicy{}, stream, agg); err != nil {
		t.Fatal(err)
	}
	if agg.Tasks() != len(arrivals) {
		t.Fatalf("aggregate counted %d tasks, want %d", agg.Tasks(), len(arrivals))
	}
	// The sink observes tasks in completion order while PerTenant on a
	// retained table folds in ID order, so the accumulator sums agree only
	// up to floating-point rounding.
	if !numeric.ApproxEqualTol(agg.MeanFlow(), res.MeanFlow(), 1e-12) {
		t.Errorf("mean flow %g vs %g", agg.MeanFlow(), res.MeanFlow())
	}
	if !numeric.ApproxEqualTol(agg.WeightedFlow(), res.WeightedFlow, 1e-12) {
		t.Errorf("weighted flow %g vs %g", agg.WeightedFlow(), res.WeightedFlow)
	}
	wantTenants := res.PerTenant()
	gotTenants := agg.PerTenant()
	if len(gotTenants) != len(wantTenants) {
		t.Fatalf("tenants %d vs %d", len(gotTenants), len(wantTenants))
	}
	for i := range gotTenants {
		g, w := gotTenants[i], wantTenants[i]
		if g.Tenant != w.Tenant || g.Tasks != w.Tasks || g.MaxFlow != w.MaxFlow ||
			!numeric.ApproxEqualTol(g.MeanFlow, w.MeanFlow, 1e-12) ||
			!numeric.ApproxEqualTol(g.StdFlow, w.StdFlow, 1e-9) ||
			!numeric.ApproxEqualTol(g.WeightedFlow, w.WeightedFlow, 1e-12) {
			t.Errorf("tenant %d: %+v vs %+v", i, g, w)
		}
	}
	agg.Reset()
	if agg.Tasks() != 0 || agg.WeightedFlow() != 0 || len(agg.PerTenant()) != len(wantTenants) {
		t.Errorf("reset sink: tasks=%d wf=%g tenants=%d", agg.Tasks(), agg.WeightedFlow(), len(agg.PerTenant()))
	}
	for _, tm := range agg.PerTenant() {
		if tm.Tasks != 0 {
			t.Errorf("reset tenant %d still counts %d tasks", tm.Tenant, tm.Tasks)
		}
	}
}

// Acceptance criterion of the refactor: on a 100k-task control run the
// sketch-sink p50/p99 must land within 1% of the exact quantiles computed
// from the retained slice path — including after a shard-style merge of
// partial sketches.
func TestSketchSinkQuantilesWithinOnePercent(t *testing.T) {
	const n = 100000
	cfg := streamConfig()
	arrivals, err := workload.GenerateArrivals(cfg, n, 31)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(8, WDEQPolicy{}, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	exact := stats.Summarize(res.FlowTimes())

	// Whole-run sketch.
	sk := NewSketchSink(0)
	if _, err := RunStream(8, WDEQPolicy{}, NewSliceStream(arrivals), sk); err != nil {
		t.Fatal(err)
	}
	// Shard-style merge: four quarter-streams sketched independently.
	merged := NewSketchSink(0)
	for s := 0; s < 4; s++ {
		part := NewSketchSink(0)
		lo, hi := s*n/4, (s+1)*n/4
		// Feed the same flows the full run produced for this slice of tasks:
		// sketch merging is about the values, not about re-running shards.
		for _, tm := range res.Tasks[lo:hi] {
			part.Observe(tm)
		}
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []struct {
		name      string
		got, want float64
		tolerance float64
	}{
		{"p50", sk.Quantile(0.50), exact.P50, 0.01},
		{"p99", sk.Quantile(0.99), exact.P99, 0.01},
		{"merged-p50", merged.Quantile(0.50), exact.P50, 0.01},
		{"merged-p99", merged.Quantile(0.99), exact.P99, 0.01},
	} {
		if rel := math.Abs(c.got-c.want) / c.want; rel > c.tolerance {
			t.Errorf("%s: sketch %g vs exact %g (relative error %.4g > %g)", c.name, c.got, c.want, rel, c.tolerance)
		}
	}
}

// An out-of-order stream must abort the run at the engine boundary with the
// offending position, and so must an invalid arrival or a stream error.
func TestStreamBoundaryValidation(t *testing.T) {
	mk := func(arrivals ...Arrival) ArrivalStream { return NewSliceStream(arrivals) }
	t.Run("out of order", func(t *testing.T) {
		_, err := RunStream(2, WDEQPolicy{}, mk(
			Arrival{Task: task(1, 1, 1), Release: 5},
			Arrival{Task: task(1, 1, 1), Release: 1},
		), nil)
		if err == nil || !strings.Contains(err.Error(), "non-decreasing") {
			t.Fatalf("err = %v, want ordering violation", err)
		}
		if !strings.Contains(err.Error(), "arrival 1") {
			t.Errorf("err %v does not name the offending arrival", err)
		}
	})
	t.Run("invalid arrival", func(t *testing.T) {
		_, err := RunStream(2, WDEQPolicy{}, mk(
			Arrival{Task: task(1, 1, 1)},
			Arrival{Task: task(0, 1, 1), Release: 1},
		), nil)
		if err == nil || !strings.Contains(err.Error(), "arrival 1") {
			t.Fatalf("err = %v, want validation error naming arrival 1", err)
		}
	})
	t.Run("empty stream", func(t *testing.T) {
		if _, err := RunStream(2, WDEQPolicy{}, mk(), nil); err == nil || !strings.Contains(err.Error(), "empty") {
			t.Fatalf("err = %v, want empty-stream error", err)
		}
	})
	t.Run("nil stream", func(t *testing.T) {
		if _, err := RunStream(2, WDEQPolicy{}, nil, nil); err == nil {
			t.Fatal("nil stream accepted")
		}
	})
	t.Run("stream error", func(t *testing.T) {
		boom := &erroringStream{after: 3}
		_, err := RunStream(2, WDEQPolicy{}, boom, nil)
		if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "arrival 3") {
			t.Fatalf("err = %v, want wrapped stream error at arrival 3", err)
		}
	})
}

type erroringStream struct {
	emitted, after int
}

func (e *erroringStream) Next() (Arrival, bool, error) {
	if e.emitted >= e.after {
		return Arrival{}, false, fmt.Errorf("boom")
	}
	e.emitted++
	return Arrival{Task: task(1, 1, 1), Release: float64(e.emitted)}, true, nil
}

// The zero-allocation contract extends to the streaming path: a warmed
// Runner pulling from a rewound slice stream into warmed aggregate and
// sketch sinks performs no heap allocation per run.
func TestStreamSteadyStateZeroAllocs(t *testing.T) {
	arrivals := allocArrivals(t, 512, 99)
	stream := NewSliceStream(arrivals)
	agg := NewAggregateSink()
	sk := NewSketchSink(0)
	sink := MultiSink(agg, sk)
	runner := NewRunner()
	res := &Result{}
	var runErr error
	run := func() {
		stream.Reset()
		agg.Reset()
		sk.Reset()
		if err := runner.RunStreamInto(res, 8, WDEQPolicy{}, stream, sink, Options{}); err != nil {
			runErr = err
		}
	}
	run() // warm scratch, sink slots and sketch window
	if runErr != nil {
		t.Fatal(runErr)
	}
	if res.Completed != len(arrivals) {
		t.Fatalf("completed %d of %d", res.Completed, len(arrivals))
	}
	allocs := testing.AllocsPerRun(10, run)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if allocs != 0 {
		t.Errorf("steady-state streaming run allocated %.3g times, want 0", allocs)
	}
}

// The streaming shard driver must be deterministic and agree with the slice
// shard driver on every exactly-computed aggregate; its sketch quantiles
// must sit within the sketch accuracy of the exact ones.
func TestRunShardsStreamMatchesSliceDriver(t *testing.T) {
	cfg := streamConfig()
	perShard := 800
	sliceSrc := func(shard int, seed int64) ([]Arrival, error) {
		return workload.GenerateArrivals(cfg, perShard, seed)
	}
	streamSrc := func(shard int, seed int64) (ArrivalStream, error) {
		return workload.NewStream(cfg, perShard, seed)
	}
	want, err := RunShards(8, WDEQPolicy{}, sliceSrc, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunShardsStream(8, WDEQPolicy{}, streamSrc, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunShardsStream(8, WDEQPolicy{}, streamSrc, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flow != again.Flow || got.WeightedFlow != again.WeightedFlow || got.TotalTasks != again.TotalTasks {
		t.Fatal("streaming shard driver is not deterministic")
	}
	if got.TotalTasks != want.TotalTasks || got.Events != want.Events ||
		got.Makespan != want.Makespan || got.WeightedFlow != want.WeightedFlow ||
		got.Throughput != want.Throughput {
		t.Errorf("stream driver aggregates differ:\n%+v\nvs\n%+v", got, want)
	}
	if !got.FlowApprox || want.FlowApprox {
		t.Errorf("FlowApprox: stream %v, slice %v", got.FlowApprox, want.FlowApprox)
	}
	// Counts and extremes agree exactly; means only to rounding (the sink
	// accumulates in completion order, the exact summary in ID order), and
	// quantiles within the sketch accuracy.
	if got.Flow.Count != want.Flow.Count || got.Flow.Min != want.Flow.Min || got.Flow.Max != want.Flow.Max ||
		!numeric.ApproxEqualTol(got.Flow.Mean, want.Flow.Mean, 1e-12) {
		t.Errorf("flow moments differ: %+v vs %+v", got.Flow, want.Flow)
	}
	for _, q := range []struct{ got, want float64 }{
		{got.Flow.P50, want.Flow.P50}, {got.Flow.P99, want.Flow.P99},
	} {
		if rel := math.Abs(q.got-q.want) / q.want; rel > 0.01 {
			t.Errorf("sketch quantile %g vs exact %g (relative error %.4g)", q.got, q.want, rel)
		}
	}
	if len(got.PerTenant) != len(want.PerTenant) {
		t.Fatalf("tenants %d vs %d", len(got.PerTenant), len(want.PerTenant))
	}
	for i := range got.PerTenant {
		g, w := got.PerTenant[i], want.PerTenant[i]
		if g.Tenant != w.Tenant || g.Tasks != w.Tasks || g.MaxFlow != w.MaxFlow ||
			!numeric.ApproxEqualTol(g.MeanFlow, w.MeanFlow, 1e-12) ||
			!numeric.ApproxEqualTol(g.StdFlow, w.StdFlow, 1e-9) ||
			!numeric.ApproxEqualTol(g.WeightedFlow, w.WeightedFlow, 1e-12) {
			t.Errorf("tenant %d: %+v vs %+v", i, g, w)
		}
	}
	if got.Aggregate == nil || want.Aggregate == nil {
		t.Fatal("merged aggregate sink missing")
	}
	if got.Aggregate.Tasks() != want.Aggregate.Tasks() {
		t.Errorf("aggregate tasks %d vs %d", got.Aggregate.Tasks(), want.Aggregate.Tasks())
	}
	// Per-shard results must not retain task rows on the streaming path.
	for _, run := range got.Shards {
		if len(run.Result.Tasks) != 0 {
			t.Errorf("shard %d retained %d task rows", run.Shard, len(run.Result.Tasks))
		}
	}
}

// Stream-source errors must name the failing shard, like slice sources do.
func TestRunShardsStreamPropagatesErrors(t *testing.T) {
	src := func(shard int, seed int64) (ArrivalStream, error) {
		if shard == 1 {
			return nil, fmt.Errorf("no stream")
		}
		return workload.NewStream(workload.ArrivalConfig{Class: workload.Uniform, P: 8, Process: workload.Poisson, Rate: 8}, 10, seed)
	}
	_, err := RunShardsStream(8, WDEQPolicy{}, src, 4, 1)
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("err = %v, want error naming shard 1", err)
	}
}
