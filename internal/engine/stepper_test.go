package engine

import (
	"math"
	"strings"
	"testing"

	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/speedup"
)

// captureSink retains every observed row for exact comparisons.
type captureSink struct {
	rows []TaskMetrics
}

func (c *captureSink) Observe(m TaskMetrics) { c.rows = append(c.rows, m) }

// aggregateEqual compares every aggregate field two runs must agree on
// bit-for-bit.
func aggregateEqual(a, b *Result) bool {
	return a.Policy == b.Policy && a.P == b.P && a.Model == b.Model &&
		a.Completed == b.Completed && a.Events == b.Events && a.MaxAlive == b.MaxAlive &&
		a.Makespan == b.Makespan && a.WeightedFlow == b.WeightedFlow &&
		a.WeightedCompletion == b.WeightedCompletion && a.TotalFlow == b.TotalFlow
}

// Driving the stepper by hand — with accessor calls interleaved between
// events, the suspension the resumable refactor exists for — must reproduce
// RunStreamInto bit-identically: same aggregates, same per-task rows in the
// same order.
func TestStepperManualDriveMatchesRunStream(t *testing.T) {
	arrivals := allocArrivals(t, 400, 17)
	policy, err := PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}

	var want Result
	wantSink := &captureSink{}
	if err := NewRunner().RunStreamInto(&want, 8, policy, NewSliceStream(arrivals), wantSink, Options{}); err != nil {
		t.Fatal(err)
	}

	var got Result
	gotSink := &captureSink{}
	st, err := NewRunner().StartStream(&got, 8, policy, NewSliceStream(arrivals), gotSink, Options{})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	lastNow := math.Inf(-1)
	for {
		// The suspended accessors must be consistent at every rest state.
		if now := st.Now(); now < lastNow {
			t.Fatalf("clock ran backwards: %g after %g", now, lastNow)
		} else {
			lastNow = now
		}
		if bl := st.Backlog(); bl < 0 || bl > got.MaxAlive+len(arrivals) {
			t.Fatalf("implausible backlog %d", bl)
		}
		if next := st.NextEventTime(); !math.IsInf(next, 1) && next < st.Now() {
			t.Fatalf("next event %g before now %g", next, st.Now())
		}
		ok, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		steps++
	}
	if !st.Done() {
		t.Fatal("stepper stopped without finishing")
	}
	if err := st.Finish(); err != nil {
		t.Fatal(err)
	}
	if steps < want.Events {
		t.Fatalf("drove %d steps for %d events", steps, want.Events)
	}
	if !aggregateEqual(&want, &got) {
		t.Fatalf("stepper drive diverges:\n%+v\nvs\n%+v", got, want)
	}
	if len(wantSink.rows) != len(gotSink.rows) {
		t.Fatalf("row counts differ: %d vs %d", len(gotSink.rows), len(wantSink.rows))
	}
	for i := range wantSink.rows {
		if wantSink.rows[i] != gotSink.rows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, gotSink.rows[i], wantSink.rows[i])
		}
	}
}

// Feed mode with the whole stream fed up front must match the pull-stream
// path bit-identically — the equivalence that lets the cluster coordinator
// claim engine semantics per shard.
func TestStepperFeedMatchesStream(t *testing.T) {
	for _, model := range []string{"", "powerlaw:0.75", "platform:8@0,4@40,8@80"} {
		t.Run("model="+model, func(t *testing.T) {
			arrivals := allocArrivals(t, 300, 23)
			policy, err := PolicyByName("wdeq")
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{}
			if model != "" {
				m, err := speedup.ParseModel(model)
				if err != nil {
					t.Fatal(err)
				}
				opts.Model = m
			}

			var want Result
			wantSink := &captureSink{}
			if err := NewRunner().RunStreamInto(&want, 8, policy, NewSliceStream(arrivals), wantSink, opts); err != nil {
				t.Fatal(err)
			}

			var got Result
			gotSink := &captureSink{}
			st, err := NewRunner().StartFeed(&got, 8, policy, gotSink, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range arrivals {
				if err := st.Feed(a); err != nil {
					t.Fatal(err)
				}
			}
			st.CloseFeed()
			for {
				ok, err := st.Step()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
			}
			if err := st.Finish(); err != nil {
				t.Fatal(err)
			}
			if !aggregateEqual(&want, &got) {
				t.Fatalf("feed mode diverges:\n%+v\nvs\n%+v", got, want)
			}
			for i := range wantSink.rows {
				if wantSink.rows[i] != gotSink.rows[i] {
					t.Fatalf("row %d differs: %+v vs %+v", i, gotSink.rows[i], wantSink.rows[i])
				}
			}
		})
	}
}

// A feed-mode stepper with an empty queue suspends (Step false, Done false)
// and resumes when more arrivals are fed — the coordinator contract.
func TestStepperFeedSuspendResume(t *testing.T) {
	arrivals := allocArrivals(t, 64, 31)
	policy, err := PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	st, err := NewRunner().StartFeed(&res, 8, policy, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Nothing fed yet: the stepper blocks without finishing.
	ok, err := st.Step()
	if err != nil {
		t.Fatal(err)
	}
	if ok || st.Done() {
		t.Fatalf("fresh feed stepper: ok=%v done=%v, want blocked", ok, st.Done())
	}
	if !math.IsInf(st.NextEventTime(), 1) {
		t.Fatalf("blocked stepper has next event %g", st.NextEventTime())
	}
	if err := st.Finish(); err == nil {
		t.Fatal("Finish succeeded on a blocked stepper")
	}

	// Feed half, drain to the block, feed the rest, close, drain to done.
	half := len(arrivals) / 2
	for _, a := range arrivals[:half] {
		if err := st.Feed(a); err != nil {
			t.Fatal(err)
		}
	}
	for {
		ok, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if st.Done() {
		t.Fatal("stepper finished with the feed still open")
	}
	if st.Completed() != half {
		t.Fatalf("completed %d of the %d fed tasks", st.Completed(), half)
	}
	for _, a := range arrivals[half:] {
		if err := st.Feed(a); err != nil {
			t.Fatal(err)
		}
	}
	st.CloseFeed()
	for {
		ok, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if err := st.Finish(); err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(arrivals) {
		t.Fatalf("completed %d tasks, want %d", res.Completed, len(arrivals))
	}
}

// Feed's boundary validation: misordered releases, releases in the
// stepper's past, feeding a stream-driven stepper, and feeding after
// CloseFeed are all rejected.
func TestStepperFeedValidation(t *testing.T) {
	policy, err := PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	arr := func(rel float64) Arrival {
		return Arrival{Task: schedule.Task{Weight: 1, Volume: 1, Delta: 2}, Release: rel}
	}

	var res Result
	st, err := NewRunner().StartFeed(&res, 8, policy, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Feed(arr(5)); err != nil {
		t.Fatal(err)
	}
	if err := st.Feed(arr(3)); err == nil || !strings.Contains(err.Error(), "non-decreasing") {
		t.Fatalf("misordered feed error = %v", err)
	}
	// Drain the fed task; the clock is now at 5 and feeding before it fails.
	for {
		ok, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	// The clock now sits at the completion of the fed task, past its
	// release: feeding behind it is rejected, feeding at exactly now is
	// legal.
	if err := st.Feed(arr(5)); err == nil || !strings.Contains(err.Error(), "past") {
		t.Fatalf("feed into the past error = %v", err)
	}
	if err := st.Feed(arr(st.Now())); err != nil {
		t.Fatalf("feed at now rejected: %v", err)
	}
	st.CloseFeed()
	if err := st.Feed(arr(st.Now() + 1)); err == nil || !strings.Contains(err.Error(), "CloseFeed") {
		t.Fatalf("feed after close error = %v", err)
	}

	var res2 Result
	st2, err := NewRunner().StartStream(&res2, 8, policy, NewSliceStream([]Arrival{arr(0)}), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Feed(arr(1)); err == nil || !strings.Contains(err.Error(), "StartFeed") {
		t.Fatalf("feed on stream stepper error = %v", err)
	}
}

// StepUntil must be a pure batching of the manual NextEventTime/Step loop:
// driving one stepper through an arbitrary horizon schedule and another
// event-by-event yields bit-identical results, sinks, and rest states; no
// call ever processes an event past its horizon; and splitting a horizon
// into sub-horizons changes nothing (granularity invariance — the property
// the parallel cluster coordinator leans on).
func TestStepUntilMatchesManualDrive(t *testing.T) {
	arrivals := allocArrivals(t, 400, 41)
	policy, err := PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}

	var want Result
	wantSink := &captureSink{}
	if err := NewRunner().RunStreamInto(&want, 8, policy, NewSliceStream(arrivals), wantSink, Options{}); err != nil {
		t.Fatal(err)
	}

	// An awkward horizon schedule: tiny increments, exact event times
	// (arrival releases are events), long leaps, and a final +Inf drain.
	horizons := []float64{0, 0.25, arrivals[10].Release, 3, 3, 7.5, 40, math.Inf(1)}

	var got Result
	gotSink := &captureSink{}
	st, err := NewRunner().StartStream(&got, 8, policy, NewSliceStream(arrivals), gotSink, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, h := range horizons {
		n, err := st.StepUntil(h)
		if err != nil {
			t.Fatal(err)
		}
		total += n
		if next := st.NextEventTime(); next <= h && !st.Done() {
			t.Fatalf("after StepUntil(%g) next event %g is not past the horizon", h, next)
		}
		if st.Now() > h && !math.IsInf(h, 1) {
			t.Fatalf("StepUntil(%g) advanced the clock to %g", h, st.Now())
		}
	}
	if !st.Done() {
		t.Fatal("StepUntil(+Inf) left the run unfinished")
	}
	if err := st.Finish(); err != nil {
		t.Fatal(err)
	}
	if total < want.Events {
		t.Fatalf("StepUntil drove %d steps for %d events", total, want.Events)
	}
	if !aggregateEqual(&want, &got) {
		t.Fatalf("StepUntil drive diverges:\n%+v\nvs\n%+v", got, want)
	}
	if len(wantSink.rows) != len(gotSink.rows) {
		t.Fatalf("row counts differ: %d vs %d", len(gotSink.rows), len(wantSink.rows))
	}
	for i := range wantSink.rows {
		if wantSink.rows[i] != gotSink.rows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, gotSink.rows[i], wantSink.rows[i])
		}
	}
}

// StepUntil must drive the probe exactly like the manual loop it batches:
// probes fire at every rest state a bulk drive passes through, in the same
// order with the same snapshots, whatever the horizon schedule — under the
// default fire-every-event setting and under both thinning knobs.
func TestStepUntilProbeMatchesManualDrive(t *testing.T) {
	arrivals := allocArrivals(t, 400, 53)
	policy, err := PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"every-event", Options{}},
		{"every-3-events", Options{ProbeEveryEvents: 3}},
		{"interval", Options{ProbeInterval: 2.5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(bulk bool) []Snapshot {
				var snaps []Snapshot
				opts := tc.opts
				opts.Probe = ProbeFunc(func(s Snapshot) { snaps = append(snaps, s) })
				var res Result
				st, err := NewRunner().StartStream(&res, 8, policy, NewSliceStream(arrivals), nil, opts)
				if err != nil {
					t.Fatal(err)
				}
				if bulk {
					horizons := []float64{0, 1.5, arrivals[20].Release, 10, 10, 35, math.Inf(1)}
					for _, h := range horizons {
						if _, err := st.StepUntil(h); err != nil {
							t.Fatal(err)
						}
					}
				} else {
					for {
						ok, err := st.Step()
						if err != nil {
							t.Fatal(err)
						}
						if !ok {
							break
						}
					}
				}
				if err := st.Finish(); err != nil {
					t.Fatal(err)
				}
				return snaps
			}
			want := run(false)
			got := run(true)
			if len(want) == 0 {
				t.Fatal("probe never fired")
			}
			if !want[len(want)-1].Done || !got[len(got)-1].Done {
				t.Fatal("final probe snapshot is not Done")
			}
			if len(want) != len(got) {
				t.Fatalf("bulk drive fired the probe %d times, manual drive %d", len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("probe snapshot %d differs: bulk %+v vs manual %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// A blocked feed-mode stepper must return from StepUntil immediately instead
// of spinning: with no pending arrivals NextEventTime is +Inf, so even a
// +Inf horizon is a no-op until more work is fed or the feed is closed.
func TestStepUntilFeedBlocksAndResumes(t *testing.T) {
	policy, err := PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	// Two bursts separated by a long idle gap: the first drains completely
	// before the second's release, leaving the stepper genuinely blocked.
	arrivals := []Arrival{
		{Task: schedule.Task{Weight: 1, Volume: 2, Delta: 4}, Release: 0},
		{Task: schedule.Task{Weight: 2, Volume: 1, Delta: 2}, Release: 0.5},
		{Task: schedule.Task{Weight: 1, Volume: 3, Delta: 8}, Release: 100},
		{Task: schedule.Task{Weight: 1, Volume: 1, Delta: 2}, Release: 100},
	}

	var want Result
	wantSink := &captureSink{}
	if err := NewRunner().RunStreamInto(&want, 8, policy, NewSliceStream(arrivals), wantSink, Options{}); err != nil {
		t.Fatal(err)
	}

	var got Result
	gotSink := &captureSink{}
	st, err := NewRunner().StartFeed(&got, 8, policy, gotSink, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals[:2] {
		if err := st.Feed(a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.StepUntil(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if st.Done() {
		t.Fatal("stepper finished with half the arrivals unfed")
	}
	if st.Now() >= 100 {
		t.Fatalf("first burst drained at %g, want well before the second burst", st.Now())
	}
	if next := st.NextEventTime(); !math.IsInf(next, 1) {
		t.Fatalf("blocked stepper reports next event %g, want +Inf", next)
	}
	// StepUntil on a blocked stepper is a no-op, not an error.
	if n, err := st.StepUntil(math.Inf(1)); err != nil || n != 0 {
		t.Fatalf("StepUntil on blocked stepper = (%d, %v), want (0, nil)", n, err)
	}
	for _, a := range arrivals[2:] {
		if err := st.Feed(a); err != nil {
			t.Fatal(err)
		}
	}
	st.CloseFeed()
	if _, err := st.StepUntil(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if !st.Done() {
		t.Fatal("stepper not done after CloseFeed and drain")
	}
	if err := st.Finish(); err != nil {
		t.Fatal(err)
	}
	if !aggregateEqual(&want, &got) {
		t.Fatalf("feed StepUntil diverges:\n%+v\nvs\n%+v", got, want)
	}
	if len(wantSink.rows) != len(gotSink.rows) {
		t.Fatalf("row counts differ: %d vs %d", len(gotSink.rows), len(wantSink.rows))
	}
	for i := range wantSink.rows {
		if wantSink.rows[i] != gotSink.rows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, gotSink.rows[i], wantSink.rows[i])
		}
	}
}
