package engine

import (
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/speedup"
	"github.com/malleable-sched/malleable/internal/stepfunc"
)

// StaticResult is the outcome of a static run: the engine result of the
// time-zero arrival stream plus, under volume-conserving linear models, the
// column-based schedule reconstructed from the decision trace.
type StaticResult struct {
	Result
	// Schedule is the run rendered as a valid column-based schedule of the
	// instance. It is nil when the run used a non-linear speedup model: a
	// ColumnSchedule's allocation profiles must integrate to the task
	// volumes, which only holds when rate equals allocation.
	Schedule *schedule.ColumnSchedule
}

// StaticArrivals converts a static instance into the equivalent arrival
// stream: every task released at time zero, in instance order.
func StaticArrivals(inst *schedule.Instance) []Arrival {
	arrivals := make([]Arrival, inst.N())
	for i := range arrivals {
		arrivals[i] = Arrival{Task: inst.Tasks[i]}
	}
	return arrivals
}

// RunStatic replays a static instance — the offline setting of the paper,
// all tasks available at time zero — on the online kernel. This is the
// library's only execution loop: the former internal/sim simulator is
// expressed as RunStatic with the identity options.
//
// Under a linear model (Options.Model nil or speedup.LinearCap) the decision
// trace is additionally folded into per-task allocation step functions and
// returned as a validated ColumnSchedule; with non-linear models the
// Schedule field stays nil and only the engine metrics are meaningful.
func RunStatic(inst *schedule.Instance, policy Policy, opts Options) (*StaticResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	buildSchedule := speedup.IsLinear(opts.Model)
	runOpts := opts
	if buildSchedule {
		// The schedule is reconstructed from the trace, so force it on.
		runOpts.TraceDecisions = true
	}
	res, err := RunWithOptions(inst.P, policy, StaticArrivals(inst), runOpts)
	if err != nil {
		return nil, err
	}
	out := &StaticResult{Result: *res}
	if !buildSchedule {
		return out, nil
	}
	s, err := scheduleFromTrace(inst, res)
	if err != nil {
		return nil, err
	}
	out.Schedule = s
	if !opts.TraceDecisions {
		// The caller did not ask for the trace; drop the forced copy.
		out.Decisions = nil
	}
	return out, nil
}

// scheduleFromTrace rebuilds the per-task allocation profiles from the
// decision trace of a completed run. Decisions bracket every completion (a
// completion is an event), so each task's profile is piecewise constant
// between consecutive decision times, and the last decision's interval ends
// at the makespan.
func scheduleFromTrace(inst *schedule.Instance, res *Result) (*schedule.ColumnSchedule, error) {
	n := inst.N()
	profiles := make([]*stepfunc.StepFunc, n)
	completions := make([]float64, n)
	for i := 0; i < n; i++ {
		profiles[i] = stepfunc.Constant(0)
		completions[i] = res.Tasks[i].Completion
	}
	for j, d := range res.Decisions {
		end := res.Makespan
		if j+1 < len(res.Decisions) {
			end = res.Decisions[j+1].Time
		}
		for k, id := range d.Alive {
			if d.Alloc[k] > 0 {
				profiles[id].AddOn(d.Time, end, d.Alloc[k])
			}
		}
	}
	return schedule.FromAllocationFunctions(inst, completions, profiles)
}
