// Package engine is the single scheduling kernel of the library: a
// discrete-event loop that accepts a stream of task arrivals (release dates),
// maintains the alive set incrementally, re-invokes a scheduling policy only
// at events (arrivals, completions, platform-capacity changes), and records
// per-task flow-time metrics plus aggregate throughput.
//
// The kernel advances time exclusively through a speedup.Model — the mapping
// from an allocation of processors to an instantaneous processing rate. The
// paper's work-preserving model (linear speedup up to the per-task degree
// bound δ) is the default; concave power-law and Amdahl speedups, and
// step-function time-varying platform capacities, are drop-in Options.Model
// values rather than forks of the loop. Static instances — every task
// released at time zero, the setting of the paper's offline analyses — are
// replayed on the same kernel through RunStatic, which can also reconstruct
// the column-based schedule from the decision trace. The multi-shard driver
// in shard.go runs many independent engines concurrently and merges their
// statistics deterministically.
package engine

import (
	"fmt"
	"math"
	"reflect"
	"sort"

	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/speedup"
)

// Arrival is one task of an online workload: the task itself, the time it
// becomes available, and the tenant that submitted it. It lives in the data
// model (internal/schedule) so that load generators do not depend on the
// engine; this alias is the name the rest of the library uses.
type Arrival = schedule.Arrival

// TaskState is what an online policy observes about an alive task. The
// Remaining field is clairvoyant information: non-clairvoyant policies must
// never read it — implement the Clairvoyant marker if a policy does, so the
// invariant tests (and readers) can tell the two classes apart.
type TaskState struct {
	// ID is the index of the task in the arrival stream.
	ID int
	// Tenant is the submitting tenant.
	Tenant int
	// Release is the task's arrival time.
	Release float64
	// Weight and Delta are the task's weight and effective degree bound
	// (already capped at the capacity available right now, so under a
	// time-varying platform Delta may shrink during an outage).
	Weight, Delta float64
	// Curve is the task's speedup-curve parameter (schedule.Task.Curve),
	// interpreted by the run's speedup model; 0 means the model default.
	Curve float64
	// Processed is the volume processed so far (observable in reality).
	Processed float64
	// Remaining is the remaining volume. Only clairvoyant baselines such as
	// SmithRatioPolicy may use it.
	Remaining float64
}

// shape projects the state down to what the speedup model may read.
func (t TaskState) shape() speedup.TaskShape {
	return speedup.TaskShape{Delta: t.Delta, Curve: t.Curve}
}

// Policy is an online allocation policy. Allocate follows the append-into-dst
// convention of the zero-allocation hot path: the engine passes a reusable
// buffer re-sliced to length zero, the policy appends one entry per alive
// task and returns the extended slice, aligned with alive. Entries must be
// non-negative, at most the task's Delta, and sum to at most p (the capacity
// available at this event). The engine validates these conditions and aborts
// the run if a policy violates them.
//
// Policies must be safe for concurrent use by multiple engine shards; all
// bundled policies are stateless values. A policy that needs internal scratch
// buffers should stay stateless and additionally implement RunCloner: the
// engine then clones it once per run and hands the scratch-holding clone to
// that run only.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Allocate appends the allocation of the alive tasks to dst and returns
	// the extended slice.
	Allocate(p float64, alive []TaskState, dst []float64) []float64
}

// RunCloner is an optional interface for policies that keep internal scratch:
// CloneForRun returns a fresh policy value with its own buffers, which the
// engine uses for exactly one run at a time. The original value therefore
// stays safe to share across concurrent shards even though its clones are
// stateful.
type RunCloner interface {
	CloneForRun() Policy
}

// PolicyEqualer is an optional interface for policies whose values are not
// comparable with == (typically because they hold a slice, like
// PriorityPolicy's rank list). The Runner uses it to decide whether a cached
// per-run clone may be reused; without it an uncomparable policy is freshly
// cloned on every run, which costs a handful of allocations and would break
// the zero-allocation steady state of repeated runs.
type PolicyEqualer interface {
	// EqualPolicy reports whether other denotes the same policy
	// configuration as the receiver.
	EqualPolicy(other Policy) bool
}

// Clairvoyant is an optional marker interface for policies that read
// TaskState.Remaining. The paper's model is non-clairvoyant — volumes are
// unknown until a task completes — so every bundled policy except the
// smith-ratio baseline leaves this unimplemented, and the engine's invariant
// tests verify that unmarked policies are insensitive to the Remaining field.
type Clairvoyant interface {
	// Clairvoyant is a marker; it is never called.
	Clairvoyant()
}

// EqualShareCertifier is an optional Policy interface that certifies the
// engine's virtual-clock fast path. A policy implementing it promises: at any
// event where no alive task is degree-pinned — w_i·p/W ≤ Delta_i for every
// alive i, with w_i = EqualShareWeight(weight_i) and W = Σ w_j — Allocate
// hands every task exactly its proportional share w_i·p/W of the full
// capacity p. Under a linear speedup model the engine then advances such
// segments on a global attained-service clock without invoking the policy at
// all (see the event-core notes on Stepper), which is what turns the
// per-event O(alive) sweep into O(log alive).
//
// The certificate is about shares only; it grants the policy no information.
// The engine never passes task state here — a certified policy stays exactly
// as non-clairvoyant as its Allocate. WDEQ certifies with the task weight,
// DEQ with 1; priority/greedy policies are not equal-share and must not
// implement this.
type EqualShareCertifier interface {
	// EqualShareWeight maps a task's weight to its proportional-share weight.
	EqualShareWeight(weight float64) float64
}

// Decision records one policy invocation of a run.
type Decision struct {
	// Time is when the decision was taken.
	Time float64
	// Alive lists the IDs of the tasks alive at that time.
	Alive []int
	// Alloc gives the allocation of each alive task, aligned with Alive.
	Alloc []float64
}

// TaskMetrics is the per-task outcome of an online run.
type TaskMetrics struct {
	// ID is the index of the task in the arrival stream.
	ID int `json:"id"`
	// Tenant is the submitting tenant.
	Tenant int `json:"tenant"`
	// Weight is the task's weight.
	Weight float64 `json:"weight"`
	// Release and Completion bound the task's residence in the system.
	Release    float64 `json:"release"`
	Completion float64 `json:"completion"`
	// Flow is Completion - Release, the task's flow (response) time.
	Flow float64 `json:"flow"`
	// Processed is the volume the engine integrated for the task by the time
	// it retired; it equals the task's volume up to the completion tolerance
	// (the work-conservation invariant, asserted across models in tests).
	Processed float64 `json:"processed"`
}

// TenantMetrics aggregates the tasks of one tenant.
type TenantMetrics struct {
	// Tenant is the tenant index.
	Tenant int `json:"tenant"`
	// Tasks is the number of completed tasks.
	Tasks int `json:"tasks"`
	// WeightedFlow is Σ w_i·F_i over the tenant's tasks.
	WeightedFlow float64 `json:"weightedFlow"`
	// MeanFlow, StdFlow and MaxFlow summarize the tenant's flow times.
	MeanFlow float64 `json:"meanFlow"`
	StdFlow  float64 `json:"stdFlow"`
	MaxFlow  float64 `json:"maxFlow"`
}

// Result is the outcome of an online run.
type Result struct {
	// Policy is the name of the policy that produced the run.
	Policy string `json:"policy"`
	// P is the (nominal) platform capacity.
	P float64 `json:"p"`
	// Model is the name of the speedup model the run used.
	Model string `json:"model,omitempty"`
	// Tasks holds the per-task metrics, indexed by arrival-stream position.
	// Only the slice entry points (Run, RunInto — the full-retention
	// compatibility path) populate it; streaming runs leave it empty and
	// deliver per-task rows to the run's MetricSink instead, so a run's
	// memory stays O(alive tasks).
	Tasks []TaskMetrics `json:"tasks,omitempty"`
	// Completed is the number of tasks that completed. It equals len(Tasks)
	// on the retention path and is the only per-task count a streaming run
	// keeps.
	Completed int `json:"completed"`
	// Events is the number of policy invocations.
	Events int `json:"events"`
	// MaxAlive is the largest alive-set size observed (the peak backlog).
	MaxAlive int `json:"maxAlive"`
	// Makespan is the completion time of the last task.
	Makespan float64 `json:"makespan"`
	// WeightedFlow is Σ w_i·(C_i - r_i), the weighted flow time.
	WeightedFlow float64 `json:"weightedFlow"`
	// WeightedCompletion is Σ w_i·C_i, the objective of the offline paper.
	WeightedCompletion float64 `json:"weightedCompletion"`
	// TotalFlow is Σ (C_i - r_i).
	TotalFlow float64 `json:"totalFlow"`
	// Decisions is the recorded decision trace (only with
	// Options.TraceDecisions).
	Decisions []Decision `json:"-"`
}

// Throughput returns completed tasks per unit of (virtual) time.
func (r *Result) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Makespan
}

// MeanFlow returns the mean flow time.
func (r *Result) MeanFlow() float64 {
	if r.Completed == 0 {
		return 0
	}
	return r.TotalFlow / float64(r.Completed)
}

// FlowTimes returns the flow time of every task, in arrival-stream order. It
// reads the retained Tasks table, so it is empty for streaming runs — use a
// SketchSink for flow quantiles there.
func (r *Result) FlowTimes() []float64 {
	out := make([]float64, len(r.Tasks))
	for i, t := range r.Tasks {
		out[i] = t.Flow
	}
	return out
}

// PerTenant aggregates the retained per-task metrics by tenant, sorted by
// tenant index. Streaming runs aggregate through an AggregateSink instead.
func (r *Result) PerTenant() []TenantMetrics {
	agg := NewAggregateSink()
	agg.ObserveResult(r)
	return agg.PerTenant()
}

// Options tunes a run.
type Options struct {
	// Model is the speedup model the kernel advances time with; nil means the
	// paper's work-preserving speedup.LinearCap. Models carrying a
	// speedup.Budgeter (time-varying capacity) additionally cap the policy's
	// budget and trigger an event at every capacity step.
	Model speedup.Model
	// TraceDecisions keeps the full decision trace in the result. It is off
	// by default — and that default matters: each traced event copies the
	// alive set and the allocation to the heap, so under sustained load the
	// trace both dominates memory and breaks the zero-allocation steady
	// state. Turn it on only for debugging or small replays.
	TraceDecisions bool
	// MaxEvents bounds the number of policy invocations; 0 means the default
	// safety bound 4n+64 (a correct run needs at most 3n+1), plus the model's
	// budget-change event bound when the model is time-varying.
	MaxEvents int
	// Probe, when non-nil, observes the run at its rest state — the engine
	// hands it an alloc-free Snapshot after each event that crosses a probe
	// interval (see ProbeEveryEvents and ProbeInterval; with both zero, every
	// event). The final event always fires with Snapshot.Done set. Probes are
	// called from the engine goroutine and must not block; see Probe.
	Probe Probe
	// ProbeEveryEvents fires the probe every k policy events (k > 0). It can
	// be combined with ProbeInterval; the probe fires when either threshold
	// is crossed.
	ProbeEveryEvents int
	// ProbeInterval fires the probe at the first event at or after each
	// multiple of the interval in virtual time (d > 0). The engine never
	// injects extra events for probing, so sampling cannot perturb the run:
	// an interval finer than the event spacing simply observes every event.
	ProbeInterval float64
	// EventCore selects the data structures behind the event loop's
	// completion search (see the EventCore doc in eventqueue.go). The default
	// CoreAuto is the calendar-queue/heap core; CoreNaive is the linear-scan
	// reference. Results are identical under both — the knob exists for the
	// equivalence tests and for measuring the structures themselves.
	EventCore EventCore
}

// model resolves the configured speedup model, defaulting to the paper's.
func (o Options) model() speedup.Model {
	if o.Model == nil {
		return speedup.LinearCap{}
	}
	return o.Model
}

// Run executes the policy on the arrival stream with default options.
func Run(p float64, policy Policy, arrivals []Arrival) (*Result, error) {
	return RunWithOptions(p, policy, arrivals, Options{})
}

// RunWithOptions executes the policy on the arrival stream using a fresh
// Runner. Callers that execute many runs (benchmarks, load tests, servers)
// should hold a Runner and call its methods instead, so the scratch buffers
// amortize across runs.
func RunWithOptions(p float64, policy Policy, arrivals []Arrival, opts Options) (*Result, error) {
	return NewRunner().RunWithOptions(p, policy, arrivals, opts)
}

// liveTask is one alive task's slot in the Runner scratch: the arrival it
// was admitted from plus its integration state. The kernel holds exactly one
// liveTask per alive task and nothing per retired or pending task — that is
// the O(alive) memory contract of the streaming refactor.
//
// remaining/processed are authoritative only on the fallback path; on a
// virtual segment the task's whole integration state is the static key (see
// the event-core notes on Stepper) and remaining is materialized lazily when
// the segment ends or the task completes.
type liveTask struct {
	arr                  Arrival
	id                   int
	remaining, processed float64

	// Virtual-clock state, valid while the run's policy certifies
	// equal-share (EqualShareCertifier): w is the certified share weight,
	// dratio = min(Delta, p)/w is the eligibility key (the fast path engages
	// while p/W ≤ min dratio, i.e. no task is degree-pinned), ktol is the
	// completion tolerance mapped into key space, and key is the virtual
	// completion time vnow_assign + remaining/w (valid while virtual).
	w, dratio, ktol, key float64

	// quot caches the task's completion quotient remaining/rate in the
	// fallback completion heap (CoreAuto), so unchanged slots skip the
	// heap update.
	quot float64
}

// Runner owns the reusable scratch of the engine event loop: the alive-task
// slots, the policy's view of the alive set, the allocation output buffer,
// the per-event rate vector, and (for the slice path) the arrival order.
// After a first run has grown the buffers, subsequent runs of similar
// backlog perform zero heap allocations per event in steady state (and zero
// per run when combined with RunInto).
//
// Scratch scales with the peak alive-set size, not the stream length: a
// ten-million-task streaming run with a bounded backlog reuses the same few
// slots for the whole run.
//
// A Runner is NOT safe for concurrent use; create one per goroutine (the
// sharded driver does exactly that). The zero value is ready to use.
type Runner struct {
	order  []int
	live   []liveTask
	states []TaskState
	alloc  []float64
	rates  []float64
	sorter arrivalSorter

	// Event-core scratch (CoreAuto): the calendar queue over virtual
	// completion keys, the delta-ratio eligibility heap, the fallback
	// completion-quotient heap, and a key buffer for bulk rebuilds. All of it
	// is rebuilt from r.live on demand (validity flags), so Snapshot/Restore
	// round-trips without capturing any of it.
	cal        calendarQueue
	drh        idxHeap
	qth        idxHeap
	keyScratch []float64

	// Reusable source and sink adapters of the two entry points.
	slice   sliceSource
	checked checkedStream
	tasks   resultSink

	// step is the embedded resumable state machine of the event loop; one
	// Runner drives one stepper at a time, and embedding it keeps
	// StartStream/StartFeed allocation-free on reuse.
	step Stepper

	// policySrc/policyRun cache the per-run clone of scratch-holding
	// policies (RunCloner), so repeated runs with the same policy value skip
	// the clone allocation too.
	policySrc Policy
	policyRun Policy
}

// NewRunner returns an empty Runner. The zero value works too; the
// constructor exists for symmetry with the rest of the library.
func NewRunner() *Runner { return &Runner{} }

// Run executes the policy on the arrival stream with default options.
func (r *Runner) Run(p float64, policy Policy, arrivals []Arrival) (*Result, error) {
	return r.RunWithOptions(p, policy, arrivals, Options{})
}

// RunWithOptions executes the policy on the arrival stream and returns a
// freshly allocated Result.
func (r *Runner) RunWithOptions(p float64, policy Policy, arrivals []Arrival, opts Options) (*Result, error) {
	res := &Result{}
	if err := r.RunInto(res, p, policy, arrivals, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// instantiate resolves the policy value used for one run: scratch-holding
// policies are cloned via RunCloner (cached while the same policy value is
// passed again), stateless policies are used as-is.
func (r *Runner) instantiate(policy Policy) Policy {
	c, ok := policy.(RunCloner)
	if !ok {
		return policy
	}
	if r.policyRun != nil && samePolicy(policy, r.policySrc) {
		return r.policyRun
	}
	r.policySrc = policy
	r.policyRun = c.CloneForRun()
	return r.policyRun
}

// samePolicy reports whether two policy values are the same for the purpose
// of reusing a cached per-run clone. Policies implementing PolicyEqualer
// (uncomparable values holding slices) answer themselves without reflection,
// so the cache check stays allocation-free; otherwise Go equality is used
// after a value-level comparability check — a policy struct whose type is
// comparable can still wrap an uncomparable dynamic value, and == would
// panic on it.
func samePolicy(a, b Policy) bool {
	if eq, ok := a.(PolicyEqualer); ok {
		return eq.EqualPolicy(b)
	}
	return reflect.ValueOf(a).Comparable() && reflect.ValueOf(b).Comparable() && a == b
}

// RunInto executes the policy on the arrival stream, writing the outcome into
// res. Any previous contents of res are discarded, but its Tasks (and
// Decisions) storage is reused, so a warmed Runner driving the same res
// performs no heap allocation at all for untraced runs.
//
// This is the full-retention compatibility path: the whole slice is
// validated up front, sorted by release date if needed (ties broken by slice
// position, and task IDs always keep their slice positions), and every
// per-task row lands in res.Tasks. Callers that can consume arrivals lazily
// should use RunStreamInto with a MetricSink instead and keep memory
// O(alive tasks).
func (r *Runner) RunInto(res *Result, p float64, policy Policy, arrivals []Arrival, opts Options) error {
	n := len(arrivals)
	if n == 0 {
		return fmt.Errorf("engine: empty arrival stream")
	}
	for i, a := range arrivals {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("engine: arrival %d: %w", i, err)
		}
	}

	// Process arrivals in release order; ties broken by stream position so
	// runs are deterministic. Generators emit sorted streams, so the sort is
	// skipped entirely in the common case.
	presorted := true
	for i := 1; i < n; i++ {
		if arrivals[i].Release < arrivals[i-1].Release {
			presorted = false
			break
		}
	}
	var order []int
	if !presorted {
		r.order = r.order[:0]
		for i := 0; i < n; i++ {
			r.order = append(r.order, i)
		}
		// The comparator is a total order (ties fall back to the stream
		// position), so the unstable sort is deterministic.
		r.sorter = arrivalSorter{order: r.order, arrivals: arrivals}
		sort.Sort(&r.sorter)
		r.sorter.arrivals = nil
		order = r.order
	}
	r.slice = sliceSource{arrivals: arrivals, order: order}

	// Reset the result's task table, keeping the storage it already owns.
	tasks := res.Tasks
	if cap(tasks) < n {
		tasks = make([]TaskMetrics, n)
	} else {
		tasks = tasks[:n]
		for i := range tasks {
			tasks[i] = TaskMetrics{}
		}
	}
	r.tasks.tasks = tasks
	st, err := r.start(res, p, policy, &r.slice, &r.tasks, opts, tasks, false)
	if err == nil {
		err = st.drain()
	}
	r.slice = sliceSource{}
	r.tasks.tasks = nil
	return err
}

// RunStream executes the policy on a pulled arrival stream with default
// options, delivering per-task rows to sink (which may be nil to discard
// them). See Runner.RunStreamInto.
func RunStream(p float64, policy Policy, stream ArrivalStream, sink MetricSink) (*Result, error) {
	return NewRunner().RunStream(p, policy, stream, sink)
}

// RunStreamWithOptions is RunStream with explicit options.
func RunStreamWithOptions(p float64, policy Policy, stream ArrivalStream, sink MetricSink, opts Options) (*Result, error) {
	return NewRunner().RunStreamWithOptions(p, policy, stream, sink, opts)
}

// RunStream executes the policy on a pulled arrival stream with default
// options.
func (r *Runner) RunStream(p float64, policy Policy, stream ArrivalStream, sink MetricSink) (*Result, error) {
	return r.RunStreamWithOptions(p, policy, stream, sink, Options{})
}

// RunStreamWithOptions executes the policy on a pulled arrival stream and
// returns a freshly allocated Result.
func (r *Runner) RunStreamWithOptions(p float64, policy Policy, stream ArrivalStream, sink MetricSink, opts Options) (*Result, error) {
	res := &Result{}
	if err := r.RunStreamInto(res, p, policy, stream, sink, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// RunStreamInto is the streaming entry point of the kernel: arrivals are
// pulled lazily from the stream (one look-ahead, validated and
// order-checked at the boundary), only alive tasks occupy scratch, and each
// completed task is handed to sink exactly once instead of being retained —
// so the memory of a run is O(peak alive tasks + sink size), independent of
// the stream length. res receives the aggregate metrics (Completed, Events,
// Makespan, flow sums); res.Tasks stays empty. sink may be nil to keep only
// the aggregates.
//
// Like RunInto, a warmed Runner driving a reused res (with sinks that do not
// allocate in steady state, like a warmed AggregateSink or SketchSink)
// performs no heap allocation per event.
//
// RunStreamInto is a thin drive-to-completion loop over the resumable
// Stepper; callers that need to suspend between events (or interleave many
// engines in one virtual timeline, like internal/cluster) use StartStream or
// StartFeed and drive the Stepper themselves.
func (r *Runner) RunStreamInto(res *Result, p float64, policy Policy, stream ArrivalStream, sink MetricSink, opts Options) error {
	st, err := r.StartStream(res, p, policy, stream, sink, opts)
	if err == nil {
		err = st.drain()
	}
	r.checked = checkedStream{}
	return err
}

// Stepper is the kernel event loop in resumable form: an explicit state
// machine that advances the run one event at a time and can be suspended
// between events. Its rest state is always "all events at times <= Now()
// have been processed and an allocation has been decided for the current
// alive set"; the integration toward the next event happens lazily at the
// start of the next Step. That lazy advance is what makes a suspended
// stepper composable: between two Step calls the clock has not committed
// past Now(), so a coordinator may still Feed an arrival with a release
// date before the shard's next internal event and the stepper will land on
// it exactly — the same arithmetic the monolithic loop used for its
// one-arrival look-ahead.
//
// A Stepper is obtained from StartStream (arrivals pulled from an
// ArrivalStream; end of stream ends the run) or StartFeed (arrivals handed
// in by Feed until CloseFeed; the coordinator form). It borrows its
// Runner's scratch buffers: one Runner drives one stepper at a time, and
// Step performs no heap allocation in steady state, exactly like the
// monolithic loop it replaces.
type Stepper struct {
	r      *Runner
	res    *Result
	policy Policy
	src    arrivalSource
	sink   MetricSink

	model       speedup.Model
	budgeter    speedup.Budgeter
	budgetBound int
	maxEvents   int
	eventBound  int
	trace       bool
	p           float64

	now      float64
	admitted int

	// One look-ahead into the source: `pending` is the next arrival not yet
	// released. Everything before it has been admitted; everything after it
	// has not been pulled — that look-ahead is the entire input-side memory.
	pending     Arrival
	pendingID   int
	havePending bool

	// Feed-mode state: arrivals queue here between Feed and the admit loop.
	// The queue stays tiny (a coordinator feeds at dispatch time and the
	// stepper consumes at its next event) and its storage is reused across
	// runs of the same Runner.
	feedable bool
	closed   bool
	feedQ    []Arrival
	feedHead int
	pulled   int
	fed      int
	lastFed  float64

	// decided marks the rest state: rates are valid for the current alive
	// set and dtComp holds the earliest completion delta. allocated is the
	// capacity the policy handed out at that decision (the router-visible
	// load signal).
	decided   bool
	dtComp    float64
	allocated float64

	// Event-core state. `certified` is fixed per run: the policy implements
	// EqualShareCertifier, the model is linear, and neither a time-varying
	// budget nor a decision trace is in play. On certified runs the stepper
	// switches per event between two segment modes:
	//
	//   - virtual (the fast path, taken while p/wsum ≤ min dratio, i.e. no
	//     alive task is degree-pinned): every task processes at rate
	//     w_i·p/W, so attained service per unit weight is global. vnow
	//     integrates it (vnow += vrate·dt with vrate = p/wsum) and each
	//     task's completion is the static key assigned when it entered the
	//     segment — no decrement sweep, no policy call; the next completion
	//     is the minimum key in the calendar queue.
	//   - fallback (everything else): the pre-existing arithmetic, verbatim
	//     — eager decrement sweep, policy invocation, completion search over
	//     remaining/rate quotients (indexed heap under CoreAuto, producing
	//     bit-identical minima to the naive scan).
	//
	// Mode transitions materialize or re-key the alive set in O(alive);
	// stats counts events on each path and the transitions between them.
	core      EventCore
	certified bool
	weigher   EqualShareCertifier
	virtual   bool
	vnow      float64
	vrate     float64
	wsum      float64
	stats     QueueStats

	// Probe state: the configured observer, its interval thresholds, and
	// the firing bookkeeping (events at last firing, next virtual-time grid
	// point, whether the final Done snapshot has been delivered).
	probe            Probe
	probeEveryEvents int
	probeInterval    float64
	probeLastEvents  int
	probeNext        float64
	probeFinal       bool

	done bool
	err  error
}

// start initializes the Runner's embedded stepper for one run. It performs
// the up-front validation the monolithic loop did (capacity, model probe,
// empty stream) so Step never has to re-check per event.
func (r *Runner) start(res *Result, p float64, policy Policy, src arrivalSource, sink MetricSink, opts Options, tasks []TaskMetrics, feedable bool) (*Stepper, error) {
	if !(p > 0) || math.IsInf(p, 0) || math.IsNaN(p) {
		return nil, fmt.Errorf("engine: platform capacity must be positive and finite, got %g", p)
	}
	model := opts.model()
	if opts.Model != nil {
		// Probe non-default models once per run: a model violating the Rate
		// contract (negative, decreasing, non-zero at zero) would otherwise
		// produce plausible-looking nonsense or hang the dt search. The
		// default LinearCap is exempt — it is the contract's reference point
		// and the probe would tax the hot path for nothing.
		if err := speedup.Validate(opts.Model); err != nil {
			return nil, err
		}
	}
	budgeter, _ := model.(speedup.Budgeter)
	budgetBound := 0
	if budgeter != nil {
		// Each capacity step is crossed at most once (time strictly
		// increases between events), so the bound stays finite.
		budgetBound = budgeter.BudgetEventBound()
	}
	if !opts.EventCore.valid() {
		return nil, fmt.Errorf("engine: unknown event core %d (want CoreAuto or CoreNaive)", int(opts.EventCore))
	}

	*res = Result{Policy: policy.Name(), P: p, Model: model.Name(), Tasks: tasks, Decisions: res.Decisions[:0]}

	st := &r.step
	*st = Stepper{
		r:           r,
		res:         res,
		policy:      r.instantiate(policy),
		src:         src,
		sink:        sink,
		model:       model,
		budgeter:    budgeter,
		budgetBound: budgetBound,
		maxEvents:   opts.MaxEvents,
		trace:       opts.TraceDecisions,
		p:           p,
		feedable:    feedable,
		feedQ:       st.feedQ[:0],

		probe:            opts.Probe,
		probeEveryEvents: opts.ProbeEveryEvents,
		probeInterval:    opts.ProbeInterval,

		core: opts.EventCore,
	}
	// Certify the virtual-clock fast path for this run: equal-share policy,
	// linear speedup, full capacity always available, no decision trace (the
	// trace records policy invocations, and virtual segments make none).
	st.weigher, _ = st.policy.(EqualShareCertifier)
	st.certified = st.weigher != nil && budgeter == nil && !opts.TraceDecisions &&
		speedup.IsLinear(model)
	if st.certified && st.core == CoreAuto {
		r.drh.reset(0)
	} else {
		r.drh.valid = false
	}
	r.cal.valid = false
	r.qth.valid = false
	// The event safety bound starts at its zero-admissions value and grows
	// incrementally at admit time (+4 per task), so process() never has to
	// recompute it per event.
	st.eventBound = opts.MaxEvents
	if st.eventBound <= 0 {
		st.eventBound = 64 + budgetBound
	}
	r.live = r.live[:0]
	if !feedable {
		if err := st.pull(); err != nil {
			return nil, err
		}
		if !st.havePending {
			return nil, fmt.Errorf("engine: empty arrival stream")
		}
	}
	return st, nil
}

// StartStream begins a resumable streaming run over a pulled arrival stream
// (validated and order-checked at the boundary, exactly like RunStreamInto).
// The returned Stepper is embedded in the Runner — one active stepper per
// Runner — and stays valid until the Runner starts another run.
func (r *Runner) StartStream(res *Result, p float64, policy Policy, stream ArrivalStream, sink MetricSink, opts Options) (*Stepper, error) {
	if stream == nil {
		return nil, fmt.Errorf("engine: nil arrival stream")
	}
	r.checked = checkedStream{stream: stream}
	st, err := r.start(res, p, policy, &r.checked, sink, opts, res.Tasks[:0], false)
	if err != nil {
		r.checked = checkedStream{}
		return nil, err
	}
	return st, nil
}

// StartFeed begins a resumable run whose arrivals are handed in one at a
// time via Feed instead of pulled from a stream — the entry point of the
// cluster coordinator, which routes one global arrival stream across many
// steppers. The run does not end when the stepper drains: it suspends
// (Step returns false with Done() still false) until more arrivals are fed
// or CloseFeed declares the stream over.
func (r *Runner) StartFeed(res *Result, p float64, policy Policy, sink MetricSink, opts Options) (*Stepper, error) {
	return r.start(res, p, policy, nil, sink, opts, res.Tasks[:0], true)
}

// pull advances the one-arrival look-ahead from the source (stream mode) or
// the fed queue (feed mode).
func (st *Stepper) pull() error {
	if st.feedable {
		if st.feedHead < len(st.feedQ) {
			st.pending = st.feedQ[st.feedHead]
			st.feedHead++
			if st.feedHead == len(st.feedQ) {
				// Queue drained: rewind so the backing array is reused.
				st.feedQ = st.feedQ[:0]
				st.feedHead = 0
			}
			st.pendingID = st.pulled
			st.pulled++
			st.havePending = true
		} else {
			st.havePending = false
		}
		return nil
	}
	a, id, ok, err := st.src.next()
	if err != nil {
		return err
	}
	st.pending, st.pendingID, st.havePending = a, id, ok
	return nil
}

// Feed hands one arrival to a feed-mode stepper. Arrivals must be fed in
// non-decreasing release order and never before the stepper's current time
// (a coordinator dispatches at the arrival's release, so both hold by
// construction there). Task IDs number arrivals in feed order.
func (st *Stepper) Feed(a Arrival) error {
	if !st.feedable {
		return fmt.Errorf("engine: Feed on a stream-driven stepper (use StartFeed)")
	}
	if st.closed {
		return fmt.Errorf("engine: Feed after CloseFeed")
	}
	if st.err != nil {
		return st.err
	}
	if err := a.Validate(); err != nil {
		return fmt.Errorf("engine: fed arrival %d: %w", st.fed, err)
	}
	if st.fed > 0 && a.Release < st.lastFed {
		return fmt.Errorf("engine: fed arrival %d: release %g precedes %g — arrivals must be fed in non-decreasing release order", st.fed, a.Release, st.lastFed)
	}
	if a.Release < st.now {
		return fmt.Errorf("engine: fed arrival %d: release %g is in the stepper's past (now %g)", st.fed, a.Release, st.now)
	}
	st.lastFed = a.Release
	st.fed++
	if !st.havePending && st.feedHead == len(st.feedQ) {
		st.pending = a
		st.pendingID = st.pulled
		st.pulled++
		st.havePending = true
		return nil
	}
	st.feedQ = append(st.feedQ, a)
	return nil
}

// FeedBatch feeds a release-sorted run of arrivals, advancing the stepper
// through every event at or before each arrival's release before that
// arrival is handed over. It is equivalent — event for event, bit for bit —
// to the per-arrival interleave
//
//	for _, a := range batch {
//		st.StepUntil(a.Release)
//		st.Feed(a)
//	}
//
// with Feed's per-call entry checks and validation hoisted out of the loop:
// the whole batch is validated up front (with the same position-labelled
// errors Feed produces, and before any event is processed), and the fused
// loop then pays one advance-and-enqueue per arrival instead of re-checking
// the stepper's mode, closure and error state each time. The batched cluster
// coordinator is the intended caller — one FeedBatch per shard per dispatch
// window. An empty batch is a no-op. The returned count is the number of
// events processed while advancing.
func (st *Stepper) FeedBatch(batch []Arrival) (int, error) {
	if !st.feedable {
		return 0, fmt.Errorf("engine: FeedBatch on a stream-driven stepper (use StartFeed)")
	}
	if st.closed {
		return 0, fmt.Errorf("engine: FeedBatch after CloseFeed")
	}
	if st.err != nil {
		return 0, st.err
	}
	last := st.lastFed
	for i := range batch {
		a := &batch[i]
		if err := a.Validate(); err != nil {
			return 0, fmt.Errorf("engine: fed arrival %d: %w", st.fed+i, err)
		}
		if st.fed+i > 0 && a.Release < last {
			return 0, fmt.Errorf("engine: fed arrival %d: release %g precedes %g — arrivals must be fed in non-decreasing release order", st.fed+i, a.Release, last)
		}
		last = a.Release
	}
	// Checking the first release against now covers the whole batch: the
	// advance below never steps past the release it is advancing toward, and
	// the batch is non-decreasing, so no later arrival can fall behind the
	// clock either.
	if len(batch) > 0 && batch[0].Release < st.now {
		return 0, fmt.Errorf("engine: fed arrival %d: release %g is in the stepper's past (now %g)", st.fed, batch[0].Release, st.now)
	}
	steps := 0
	for _, a := range batch {
		n, err := st.StepUntil(a.Release)
		steps += n
		if err != nil {
			return steps, err
		}
		st.lastFed = a.Release
		st.fed++
		if !st.havePending && st.feedHead == len(st.feedQ) {
			st.pending = a
			st.pendingID = st.pulled
			st.pulled++
			st.havePending = true
			continue
		}
		st.feedQ = append(st.feedQ, a)
	}
	return steps, nil
}

// CloseFeed declares the fed stream over: once the queue and the alive set
// drain, the run completes instead of suspending.
func (st *Stepper) CloseFeed() { st.closed = true }

// Now returns the stepper's current virtual time: every event at or before
// it has been processed.
func (st *Stepper) Now() float64 { return st.now }

// Backlog returns the number of alive tasks — the live load signal routers
// observe at dispatch time. It is exact at any instant up to the stepper's
// next event, because the alive set only changes at events.
func (st *Stepper) Backlog() int { return len(st.r.live) }

// Allocated returns the capacity the policy handed out at the current
// decision (0 when the stepper is idle) — the second router-visible load
// signal: a shard may have a deep backlog yet allocate little of its
// capacity when every alive task is degree-bound.
func (st *Stepper) Allocated() float64 {
	if !st.decided {
		return 0
	}
	return st.allocated
}

// Completed returns the number of tasks retired so far.
func (st *Stepper) Completed() int { return st.res.Completed }

// Done reports whether the run has completed. A feed-mode stepper whose
// Step returned false with Done() still false is merely blocked waiting for
// more arrivals (or a CloseFeed).
func (st *Stepper) Done() bool { return st.done }

// Err returns the run's terminal error, if any.
func (st *Stepper) Err() error { return st.err }

// nextDelta computes the delta to the stepper's next event from its rest
// state: the earliest completion under the decided rates (dtComp), the
// pending arrival, or the next capacity change, whichever comes first.
// Arrival and capacity events are known by their absolute times; `snap`
// remembers the winning one so the clock lands on it exactly — now +
// (c - now) can round to just below c, and without the snap the same
// breakpoint would be crossed twice (a duplicate near-zero-dt event).
// Completions were folded into dtComp first, so snap only reflects the
// later absolute-time candidates.
func (st *Stepper) nextDelta() (dt, snap float64) {
	dt = st.dtComp
	snap = math.NaN()
	if st.havePending {
		if rel := st.pending.Release; rel-st.now < dt {
			dt = rel - st.now
			snap = rel
		}
	}
	if st.budgeter != nil {
		// NextBudgetChange returns a time strictly after now, so dt stays
		// positive and every capacity step is crossed at most once.
		if c := st.budgeter.NextBudgetChange(st.now); c-st.now < dt {
			dt = c - st.now
			snap = c
		}
	}
	return dt, snap
}

// NextEventTime returns the absolute virtual time of the stepper's next
// event, or +Inf when none is scheduled (run done, or a feed-mode stepper
// blocked until more arrivals are fed). It is pure: a coordinator may call
// it repeatedly between Steps to order many steppers on one timeline.
func (st *Stepper) NextEventTime() float64 {
	if st.done || st.err != nil {
		return math.Inf(1)
	}
	if !st.decided {
		if st.havePending {
			return st.pending.Release
		}
		return math.Inf(1)
	}
	dt, snap := st.nextDelta()
	if !math.IsNaN(snap) {
		return snap
	}
	if math.IsInf(dt, 1) {
		return math.Inf(1)
	}
	return st.now + dt
}

// Step advances the run by one event: integrate to the next event time
// (using the rates decided at the previous event), then admit every arrival
// released by then, retire every exhausted task, and re-invoke the policy
// once — simultaneous arrivals and completions at the same instant are
// coalesced, the event granularity of the paper's model. Between events
// every alive task i processes Model.Rate(shape_i, alloc_i)·dt units of
// work; under the default LinearCap model that is exactly the paper's
// alloc_i·dt.
//
// Step returns true while the run can make progress. It returns false when
// the run has completed (Done() true), failed (the error is returned and
// sticky), or — feed mode only — when the stepper is blocked waiting for
// more arrivals.
func (st *Stepper) Step() (bool, error) {
	ok, err := st.stepOnce()
	// Probe at the rest state the event left behind. A suspended feed-mode
	// stepper (ok false, not done) processed nothing, so nothing fires; nor
	// do further Step calls after the final Done snapshot was delivered.
	if st.probe != nil && err == nil && (ok || (st.done && !st.probeFinal)) {
		st.observeProbe()
	}
	return ok, err
}

// StepUntil advances the run through every event at or before horizon and
// returns the number of events processed. It is the coordinator's bulk drive
// primitive: one call replaces a NextEventTime/Step loop (each Step would
// otherwise recompute the delta NextEventTime just computed) and leaves the
// stepper at its rest state with NextEventTime() > horizon — done, blocked,
// or waiting on a strictly later event. A +Inf horizon drains every
// scheduled event.
func (st *Stepper) StepUntil(horizon float64) (int, error) {
	steps := 0
	for {
		t := st.NextEventTime()
		if math.IsInf(t, 1) || t > horizon {
			return steps, nil
		}
		ok, err := st.Step()
		if err != nil {
			return steps, err
		}
		steps++
		if !ok {
			return steps, nil
		}
	}
}

// stepOnce is Step without the probe hook — the state machine itself.
func (st *Stepper) stepOnce() (bool, error) {
	if st.err != nil {
		return false, st.err
	}
	if st.done {
		return false, nil
	}
	if st.decided {
		dt, snap := st.nextDelta()
		if math.IsInf(dt, 1) {
			if st.feedable && !st.closed {
				// Every alive task is starved and nothing is queued, but the
				// feed is still open: a later arrival may change the
				// allocation, so suspend instead of failing.
				return false, nil
			}
			st.err = fmt.Errorf("engine: policy %q starves all remaining tasks at time %g with no pending arrivals", st.policy.Name(), st.now)
			return false, st.err
		}
		if st.virtual {
			// Virtual segment: the whole alive set advances through one
			// clock update — the per-task integration state is the static
			// completion key, so there is nothing per-task to sweep.
			st.vnow += st.vrate * dt
		} else {
			r := st.r
			for k := range r.live {
				if r.rates[k] <= 0 {
					continue
				}
				r.live[k].remaining -= r.rates[k] * dt
				r.live[k].processed += r.rates[k] * dt
			}
		}
		st.now += dt
		if !math.IsNaN(snap) {
			st.now = snap
		}
		st.decided = false
	} else if len(st.r.live) == 0 {
		// Idle (or initial) state: nothing alive, so the next event is the
		// pending arrival — or the end of the run.
		if !st.havePending {
			if st.feedable && !st.closed {
				return false, nil // blocked until Feed or CloseFeed
			}
			st.done = true
			return false, nil
		}
		if st.pending.Release > st.now {
			st.now = st.pending.Release
		}
	}
	return st.process()
}

// process runs the event at the current time: admit, retire, decide. It
// leaves the stepper in its rest state (decided, idle, or done).
func (st *Stepper) process() (bool, error) {
	r := st.r
	res := st.res
	// Admit every arrival released by now, then retire every task whose
	// volume is exhausted (including zero-volume tasks that were just
	// admitted). Doing both before the policy call coalesces simultaneous
	// arrivals and completions into one event.
	for st.havePending && st.pending.Release <= st.now {
		lt := liveTask{arr: st.pending, id: st.pendingID, remaining: st.pending.Task.Volume}
		if st.certified {
			lt.w = st.weigher.EqualShareWeight(st.pending.Task.Weight)
			lt.dratio = math.Min(st.pending.Task.Delta, st.p) / lt.w
			// The completion tolerance of the fallback path (remaining ≤
			// 1e-9·max(1, volume)) mapped into key space.
			lt.ktol = 1e-9 * math.Max(1, st.pending.Task.Volume) / lt.w
			st.wsum += lt.w
			if st.virtual {
				lt.key = st.vnow + lt.remaining/lt.w
			}
		}
		slot := len(r.live)
		r.live = append(r.live, lt)
		if st.core == CoreAuto {
			if r.drh.valid {
				r.drh.push(slot, lt.dratio)
			}
			if st.virtual && r.cal.valid {
				r.cal.insert(slot, lt.key)
			}
		}
		st.admitted++
		if st.maxEvents <= 0 {
			// The safety bound grows with the admitted prefix (a correct run
			// needs at most 3 events per admitted task), so it needs no
			// advance knowledge of the stream length.
			st.eventBound += 4
		}
		if err := st.pull(); err != nil {
			st.err = err
			return false, err
		}
	}
	if st.virtual {
		st.retireVirtual()
	} else {
		for k := 0; k < len(r.live); {
			lt := &r.live[k]
			if lt.remaining > 1e-9*math.Max(1, lt.arr.Task.Volume) {
				k++
				continue
			}
			st.emitRetired(lt, lt.processed)
			// Retire by swap-delete: order within the slots is not meaningful
			// (policies rank tasks themselves), so compaction is O(1) per
			// completion instead of an O(alive) rebuild.
			st.removeSlot(k)
		}
	}
	if len(r.live) > res.MaxAlive {
		res.MaxAlive = len(r.live)
	}
	if len(r.live) == 0 {
		st.decided = false
		// Re-anchor the certified bookkeeping at every idle point: wsum
		// collects FP residue from the += / -= pairs, and resetting the
		// virtual clock keeps keys small over arbitrarily long streams.
		st.virtual = false
		st.vnow = 0
		st.wsum = 0
		r.cal.valid = false
		if !st.havePending && !(st.feedable && !st.closed) {
			st.done = true
			return false, nil
		}
		// Idle: the next Step jumps to the pending arrival (or suspends, in
		// feed mode, until one is fed).
		return true, nil
	}

	// The capacity the policy may hand out right now: the nominal p,
	// further capped by the model's time-varying budget if it has one.
	budget := st.p
	if st.budgeter != nil {
		budget = st.budgeter.BudgetAt(st.p, st.now)
		if budget < 0 || math.IsNaN(budget) {
			budget = 0
		}
	}

	res.Events++
	if res.Events > st.eventBound {
		st.err = fmt.Errorf("engine: policy %q did not finish after %d events (%d of %d admitted tasks done at time %g)",
			st.policy.Name(), res.Events, res.Completed, st.admitted, st.now)
		return false, st.err
	}

	// Certified equal-share segment: while no alive task is degree-pinned
	// (p/W ≤ min dratio ⟺ w_i·p/W ≤ Delta_i for all i), the policy's answer
	// is known to be the proportional split of the full capacity, so skip
	// the invocation entirely and decide on the virtual clock.
	if st.certified && st.wsum > 0 && st.p/st.wsum <= st.minDratio() {
		if !st.virtual {
			st.enterVirtual()
		}
		st.stats.VirtualEvents++
		st.vrate = st.p / st.wsum
		st.allocated = st.p
		slot, _ := st.minKeySlot()
		st.dtComp = (r.live[slot].key - st.vnow) / st.vrate
		st.decided = true
		return true, nil
	}
	if st.virtual {
		st.leaveVirtual()
	}
	st.stats.FallbackEvents++

	r.states = r.states[:0]
	for i := range r.live {
		lt := &r.live[i]
		r.states = append(r.states, TaskState{
			ID:        lt.id,
			Tenant:    lt.arr.Tenant,
			Release:   lt.arr.Release,
			Weight:    lt.arr.Task.Weight,
			Delta:     math.Min(lt.arr.Task.Delta, budget),
			Curve:     lt.arr.Task.Curve,
			Processed: lt.processed,
			Remaining: lt.remaining,
		})
	}
	r.alloc = st.policy.Allocate(budget, r.states, r.alloc[:0])
	alloc := r.alloc
	total, err := validateAllocation(budget, r.states, alloc)
	if err != nil {
		st.err = fmt.Errorf("engine: policy %q: %w", st.policy.Name(), err)
		return false, st.err
	}
	st.allocated = total
	if st.trace {
		d := Decision{Time: st.now, Alloc: append([]float64(nil), alloc...)}
		for i := range r.live {
			d.Alive = append(d.Alive, r.live[i].id)
		}
		res.Decisions = append(res.Decisions, d)
	}

	// Decide the rates and the earliest completion delta; the actual clock
	// advance happens lazily at the start of the next Step, after any
	// intervening Feed has had its chance to bound it. Under CoreAuto the
	// minimum quotient comes from the indexed completion heap; under
	// CoreNaive from the reference scan. Both are the minimum of the same
	// freshly computed float set, so the decided dt is bit-identical.
	dt := math.Inf(1)
	r.rates = r.rates[:0]
	if st.core == CoreAuto {
		dt = st.fallbackDt(alloc)
	} else {
		for k := range r.live {
			rate := 0.0
			if alloc[k] > 0 {
				rate = st.model.Rate(r.states[k].shape(), alloc[k])
			}
			r.rates = append(r.rates, rate)
			if rate <= 0 {
				continue
			}
			if d := r.live[k].remaining / rate; d < dt {
				dt = d
			}
		}
	}
	st.dtComp = dt
	st.decided = true
	return true, nil
}

// emitRetired records one completed task at the current time: the sink row
// and every aggregate the result keeps.
func (st *Stepper) emitRetired(lt *liveTask, processed float64) {
	res := st.res
	m := TaskMetrics{
		ID:         lt.id,
		Tenant:     lt.arr.Tenant,
		Weight:     lt.arr.Task.Weight,
		Release:    lt.arr.Release,
		Completion: st.now,
		Flow:       st.now - lt.arr.Release,
		Processed:  processed,
	}
	if st.sink != nil {
		st.sink.Observe(m)
	}
	res.WeightedFlow += m.Weight * m.Flow
	res.WeightedCompletion += m.Weight * st.now
	res.TotalFlow += m.Flow
	if st.now > res.Makespan {
		res.Makespan = st.now
	}
	res.Completed++
}

// removeSlot retires live slot k by swap-delete and keeps the certified
// bookkeeping and every valid index structure coherent with the move.
func (st *Stepper) removeSlot(k int) {
	r := st.r
	if st.certified {
		st.wsum -= r.live[k].w
	}
	if st.core == CoreAuto {
		if r.drh.valid {
			r.drh.removeSlot(k)
		}
		if r.cal.valid {
			r.cal.removeSlot(k)
		}
		if r.qth.valid {
			r.qth.removeSlot(k)
		}
	}
	last := len(r.live) - 1
	if k != last {
		r.live[k] = r.live[last]
		if st.core == CoreAuto {
			if r.drh.valid {
				r.drh.renumber(last, k)
			}
			if r.cal.valid {
				r.cal.renumber(last, k)
			}
			if r.qth.valid {
				r.qth.renumber(last, k)
			}
		}
	}
	r.live = r.live[:last]
}

// retireVirtual pops completions off the virtual queue in (key, id) order
// while the head key is within its completion tolerance of the clock. The
// remaining keys are then strictly ahead of vnow, so the next decided dt is
// strictly positive.
func (st *Stepper) retireVirtual() {
	r := st.r
	for len(r.live) > 0 {
		slot, ok := st.minKeySlot()
		if !ok {
			return
		}
		lt := &r.live[slot]
		if lt.key > st.vnow+lt.ktol {
			return
		}
		rem := lt.w * (lt.key - st.vnow)
		st.emitRetired(lt, lt.arr.Task.Volume-rem)
		st.removeSlot(slot)
	}
}

// minKeySlot returns the slot holding the (key, id)-least virtual completion
// key: the calendar queue under CoreAuto (rebuilt from the live slots if a
// restore or transition invalidated it), the reference scan under CoreNaive.
func (st *Stepper) minKeySlot() (int, bool) {
	r := st.r
	if len(r.live) == 0 {
		return 0, false
	}
	if st.core == CoreAuto {
		if !r.cal.valid {
			r.cal.rebuildCalendar(r.live, st.vnow)
		}
		return r.cal.peekMin(r.live)
	}
	best := 0
	for i := 1; i < len(r.live); i++ {
		if r.live[i].key < r.live[best].key ||
			(r.live[i].key == r.live[best].key && r.live[i].id < r.live[best].id) {
			best = i
		}
	}
	return best, true
}

// minDratio returns the least delta-ratio of the alive set — the eligibility
// bound of the virtual fast path.
func (st *Stepper) minDratio() float64 {
	r := st.r
	if st.core == CoreAuto {
		if !r.drh.valid {
			r.keyScratch = growFloat(r.keyScratch, len(r.live))
			for i := range r.live {
				r.keyScratch[i] = r.live[i].dratio
			}
			r.drh.rebuild(r.keyScratch[:len(r.live)])
		}
		return r.drh.min()
	}
	min := math.Inf(1)
	for i := range r.live {
		if r.live[i].dratio < min {
			min = r.live[i].dratio
		}
	}
	return min
}

// enterVirtual starts a virtual segment: every alive task's completion is
// frozen into a key on the attained-service clock (key = vnow + remaining/w,
// using the remaining the fallback path just integrated), and the calendar
// queue is bulk-loaded from those keys.
func (st *Stepper) enterVirtual() {
	r := st.r
	st.stats.Transitions++
	st.virtual = true
	for i := range r.live {
		lt := &r.live[i]
		lt.key = st.vnow + lt.remaining/lt.w
	}
	if st.core == CoreAuto {
		r.cal.rebuildCalendar(r.live, st.vnow)
	}
}

// leaveVirtual ends a virtual segment: remaining/processed are materialized
// from the keys (remaining = w·(key − vnow); retirement already popped every
// key within tolerance of vnow, so the result is strictly positive), after
// which the fallback path owns the integration state again.
func (st *Stepper) leaveVirtual() {
	r := st.r
	st.stats.Transitions++
	st.virtual = false
	for i := range r.live {
		lt := &r.live[i]
		rem := lt.w * (lt.key - st.vnow)
		lt.remaining = rem
		lt.processed = lt.arr.Task.Volume - rem
	}
	r.cal.valid = false
	r.qth.valid = false
}

// fallbackDt fills the rate vector and returns the earliest completion
// quotient min_k remaining_k/rate_k. The regime decides the structure: when
// most of the alive set is running, every quotient changes every event and
// no heap can beat the plain scan the naive core uses, so scan and leave the
// heap invalid. When only a sliver runs (deep backlogs under greedy
// policies, where almost everyone is parked at rate 0 with an unchanged
// +Inf quotient), maintain the indexed completion heap incrementally — only
// slots whose (remaining, rate) pair changed pay a sift. Either way the
// returned dt is the minimum of the same float set, bit-identical to the
// naive scan.
func (st *Stepper) fallbackDt(alloc []float64) float64 {
	r := st.r
	n := len(r.live)
	active := 0
	dtScan := math.Inf(1)
	for k := range r.live {
		rate := 0.0
		if alloc[k] > 0 {
			rate = st.model.Rate(r.states[k].shape(), alloc[k])
		}
		r.rates = append(r.rates, rate)
		if rate > 0 {
			active++
			if q := r.live[k].remaining / rate; q < dtScan {
				dtScan = q
			}
		}
	}
	if active > n/4 {
		// quot caches are left stale: the invalidation forces the sparse
		// regime to reseed with a full rebuild, which rewrites every one.
		r.qth.valid = false
		return dtScan
	}
	if !r.qth.valid {
		r.keyScratch = growFloat(r.keyScratch, n)
		for k := range r.live {
			q := math.Inf(1)
			if r.rates[k] > 0 {
				q = r.live[k].remaining / r.rates[k]
			}
			r.live[k].quot = q
			r.keyScratch[k] = q
		}
		r.qth.rebuild(r.keyScratch[:n])
	} else {
		for k := range r.live {
			q := math.Inf(1)
			if r.rates[k] > 0 {
				q = r.live[k].remaining / r.rates[k]
			}
			if q != r.live[k].quot {
				r.live[k].quot = q
				r.qth.update(k, q)
			}
		}
	}
	return r.qth.min()
}

// QueueStats returns the event-core counters of the stepper's run: how many
// events each path decided and how often the segment mode switched.
func (st *Stepper) QueueStats() QueueStats { return st.stats }

// LastQueueStats returns the event-core counters of the Runner's most recent
// (or in-progress) run — the observable record of which path decided the
// run's events.
func (r *Runner) LastQueueStats() QueueStats { return r.step.stats }

// drain drives the stepper to completion — the monolithic run loop.
func (st *Stepper) drain() error {
	for {
		ok, err := st.Step()
		if err != nil {
			return err
		}
		if !ok {
			return st.Finish()
		}
	}
}

// Finish reports the run's terminal state: nil after a clean completion,
// the sticky error after a failure, and a distinct error when the run is
// still in progress (Step would still advance it, or a feed-mode stepper is
// blocked on its feed).
func (st *Stepper) Finish() error {
	if st.err != nil {
		return st.err
	}
	if !st.done {
		return fmt.Errorf("engine: run not finished (%d tasks alive at time %g)", len(st.r.live), st.now)
	}
	return nil
}

// arrivalSorter orders the index slice by (release date, stream position). It
// lives in the Runner so sorting reuses one sort.Interface value instead of a
// fresh closure per run.
type arrivalSorter struct {
	order    []int
	arrivals []Arrival
}

func (s *arrivalSorter) Len() int      { return len(s.order) }
func (s *arrivalSorter) Swap(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] }
func (s *arrivalSorter) Less(i, j int) bool {
	a, b := s.order[i], s.order[j]
	if s.arrivals[a].Release != s.arrivals[b].Release {
		return s.arrivals[a].Release < s.arrivals[b].Release
	}
	return a < b
}

// validateAllocation checks a policy's output against the engine contract
// and returns the allocated total (the Stepper's Allocated() snapshot).
func validateAllocation(p float64, states []TaskState, alloc []float64) (float64, error) {
	if len(alloc) != len(states) {
		return 0, fmt.Errorf("allocation has %d entries for %d alive tasks", len(alloc), len(states))
	}
	var total float64
	for k, a := range alloc {
		if a < -1e-9 || math.IsNaN(a) {
			return 0, fmt.Errorf("negative allocation %g for task %d", a, states[k].ID)
		}
		if a > states[k].Delta+1e-6 {
			return 0, fmt.Errorf("allocation %g for task %d exceeds its degree bound %g", a, states[k].ID, states[k].Delta)
		}
		total += a
	}
	if total > p+1e-6 {
		return 0, fmt.Errorf("allocation total %g exceeds the platform capacity %g", total, p)
	}
	return total, nil
}
