package engine

import (
	"math"
	"strings"
	"testing"

	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/speedup"
	"github.com/malleable-sched/malleable/internal/workload"
)

// feedBatchPair starts two identical feed-mode steppers so a test can drive
// one through FeedBatch and the other through the per-arrival
// StepUntil+Feed interleave that FeedBatch promises to reproduce bitwise.
func feedBatchPair(t testing.TB, opts Options) (batched, interleaved *Stepper, resB, resI *Result, sinkB, sinkI *captureSink) {
	t.Helper()
	policy, err := PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	resB, resI = &Result{}, &Result{}
	sinkB, sinkI = &captureSink{}, &captureSink{}
	batched, err = NewRunner().StartFeed(resB, 8, policy, sinkB, opts)
	if err != nil {
		t.Fatal(err)
	}
	interleaved, err = NewRunner().StartFeed(resI, 8, policy, sinkI, opts)
	if err != nil {
		t.Fatal(err)
	}
	return batched, interleaved, resB, resI, sinkB, sinkI
}

// feedInterleaved reproduces the loop FeedBatch is specified against.
func feedInterleaved(t testing.TB, st *Stepper, batch []Arrival) int {
	t.Helper()
	steps := 0
	for _, a := range batch {
		n, err := st.StepUntil(a.Release)
		if err != nil {
			t.Fatal(err)
		}
		steps += n
		if err := st.Feed(a); err != nil {
			t.Fatal(err)
		}
	}
	return steps
}

// assertRestStateEqual compares the observable rest state of two steppers —
// the signals a coordinator reads between dispatch windows.
func assertRestStateEqual(t testing.TB, got, want *Stepper) {
	t.Helper()
	if got.Now() != want.Now() || got.Backlog() != want.Backlog() ||
		got.Allocated() != want.Allocated() || got.Completed() != want.Completed() {
		t.Fatalf("rest states diverge: now %g/%g backlog %d/%d allocated %g/%g completed %d/%d",
			got.Now(), want.Now(), got.Backlog(), want.Backlog(),
			got.Allocated(), want.Allocated(), got.Completed(), want.Completed())
	}
}

func drainAndFinish(t testing.TB, st *Stepper) {
	t.Helper()
	st.CloseFeed()
	if _, err := st.StepUntil(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Finish(); err != nil {
		t.Fatal(err)
	}
}

// FeedBatch on a window-sized batch must reproduce the per-arrival
// StepUntil+Feed interleave bitwise: same step counts, same rest state at
// every window boundary, same aggregates and sink rows at the end.
func TestFeedBatchMatchesInterleave(t *testing.T) {
	for _, model := range []string{"", "powerlaw:0.75"} {
		t.Run("model="+model, func(t *testing.T) {
			arrivals := allocArrivals(t, 500, 29)
			opts := Options{}
			if model != "" {
				m, err := speedup.ParseModel(model)
				if err != nil {
					t.Fatal(err)
				}
				opts.Model = m
			}
			stB, stI, resB, resI, sinkB, sinkI := feedBatchPair(t, opts)
			const window = 64
			for lo := 0; lo < len(arrivals); lo += window {
				hi := min(lo+window, len(arrivals))
				nB, err := stB.FeedBatch(arrivals[lo:hi])
				if err != nil {
					t.Fatal(err)
				}
				nI := feedInterleaved(t, stI, arrivals[lo:hi])
				if nB != nI {
					t.Fatalf("window %d..%d: FeedBatch processed %d events, interleave %d", lo, hi, nB, nI)
				}
				assertRestStateEqual(t, stB, stI)
			}
			drainAndFinish(t, stB)
			drainAndFinish(t, stI)
			if !aggregateEqual(resB, resI) {
				t.Fatalf("batched run diverges:\n%+v\nvs\n%+v", resB, resI)
			}
			if len(sinkB.rows) != len(sinkI.rows) {
				t.Fatalf("row counts differ: %d vs %d", len(sinkB.rows), len(sinkI.rows))
			}
			for i := range sinkI.rows {
				if sinkB.rows[i] != sinkI.rows[i] {
					t.Fatalf("row %d differs: %+v vs %+v", i, sinkB.rows[i], sinkI.rows[i])
				}
			}
		})
	}
}

// An empty batch is a no-op: no events, no error, no state change.
func TestFeedBatchEmpty(t *testing.T) {
	stB, _, _, _, _, _ := feedBatchPair(t, Options{})
	if _, err := stB.FeedBatch([]Arrival{{Task: schedule.Task{Weight: 1, Volume: 1, Delta: 2}, Release: 0}}); err != nil {
		t.Fatal(err)
	}
	before := stB.Now()
	fedBefore := stB.Backlog()
	n, err := stB.FeedBatch(nil)
	if n != 0 || err != nil {
		t.Fatalf("empty FeedBatch = (%d, %v), want (0, nil)", n, err)
	}
	if stB.Now() != before || stB.Backlog() != fedBefore {
		t.Fatal("empty FeedBatch mutated the stepper")
	}
}

// Batch validation happens up front with Feed's position numbering, and a
// rejected batch leaves the stepper untouched — no partial feeds, no
// processed events.
func TestFeedBatchValidation(t *testing.T) {
	arr := func(rel float64) Arrival {
		return Arrival{Task: schedule.Task{Weight: 1, Volume: 1, Delta: 2}, Release: rel}
	}
	st, _, _, _, _, _ := feedBatchPair(t, Options{})
	if _, err := st.FeedBatch([]Arrival{arr(0), arr(1), arr(2)}); err != nil {
		t.Fatal(err)
	}

	// Out-of-order inside the batch: rejected with the global position of
	// the offending arrival (3 already fed, so index 1 of the batch is
	// arrival 4), and nothing from the batch lands.
	n, err := st.FeedBatch([]Arrival{arr(5), arr(4)})
	if err == nil || !strings.Contains(err.Error(), "fed arrival 4") || !strings.Contains(err.Error(), "non-decreasing") {
		t.Fatalf("misordered batch error = %v", err)
	}
	if n != 0 {
		t.Fatalf("rejected batch processed %d events", n)
	}
	// First element behind the already-fed watermark is also misordered.
	if _, err := st.FeedBatch([]Arrival{arr(1)}); err == nil || !strings.Contains(err.Error(), "fed arrival 3") {
		t.Fatalf("batch behind watermark error = %v", err)
	}
	// An invalid arrival is rejected with its position.
	bad := arr(6)
	bad.Task.Weight = -1
	if _, err := st.FeedBatch([]Arrival{arr(5), bad}); err == nil || !strings.Contains(err.Error(), "fed arrival 4") {
		t.Fatalf("invalid arrival error = %v", err)
	}
	// The stepper is untouched: the batch that failed three times still
	// feeds cleanly.
	if _, err := st.FeedBatch([]Arrival{arr(5), arr(6)}); err != nil {
		t.Fatalf("batch after rejected batches: %v", err)
	}

	// A batch behind the clock is rejected before any event is processed.
	past, _, _, _, _, _ := feedBatchPair(t, Options{})
	if _, err := past.FeedBatch([]Arrival{arr(4)}); err != nil {
		t.Fatal(err)
	}
	if _, err := past.StepUntil(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := past.FeedBatch([]Arrival{arr(4.2)}); err == nil || !strings.Contains(err.Error(), "past") {
		t.Fatalf("batch into the past error = %v", err)
	}

	// Mode and closure checks mirror Feed's.
	policy, err := PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	streamed, err := NewRunner().StartStream(&res, 8, policy, NewSliceStream([]Arrival{arr(0)}), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := streamed.FeedBatch([]Arrival{arr(1)}); err == nil || !strings.Contains(err.Error(), "StartFeed") {
		t.Fatalf("FeedBatch on stream stepper error = %v", err)
	}
	st.CloseFeed()
	if _, err := st.FeedBatch([]Arrival{arr(7)}); err == nil || !strings.Contains(err.Error(), "CloseFeed") {
		t.Fatalf("FeedBatch after close error = %v", err)
	}
}

// A batch whose releases straddle a platform capacity step must advance
// through the budget-change events exactly like the interleave — the
// capacity steps land between arrivals of the same batch.
func TestFeedBatchStraddlesCapacityStep(t *testing.T) {
	m, err := speedup.ParseModel("platform:8@0,3@10,8@25")
	if err != nil {
		t.Fatal(err)
	}
	arr := func(rel, vol float64) Arrival {
		return Arrival{Task: schedule.Task{Weight: 1, Volume: vol, Delta: 4}, Release: rel}
	}
	// Releases at 2, 8, 12, 24, 30: the batch crosses the capacity drop at
	// t=10 and the restore at t=25 while tasks are in flight.
	batch := []Arrival{arr(2, 20), arr(8, 6), arr(12, 10), arr(24, 4), arr(30, 2)}
	stB, stI, resB, resI, _, _ := feedBatchPair(t, Options{Model: m})
	nB, err := stB.FeedBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	nI := feedInterleaved(t, stI, batch)
	if nB != nI {
		t.Fatalf("FeedBatch processed %d events across the capacity steps, interleave %d", nB, nI)
	}
	assertRestStateEqual(t, stB, stI)
	drainAndFinish(t, stB)
	drainAndFinish(t, stI)
	if !aggregateEqual(resB, resI) {
		t.Fatalf("capacity-step run diverges:\n%+v\nvs\n%+v", resB, resI)
	}
}

// FeedBatch must resume a suspended stepper (drained queue, feed still
// open) exactly like per-arrival Feed does.
func TestFeedBatchResumesSuspendedStepper(t *testing.T) {
	arr := func(rel, vol float64) Arrival {
		return Arrival{Task: schedule.Task{Weight: 1, Volume: vol, Delta: 2}, Release: rel}
	}
	// The second window opens long after the first drains, so the suspended
	// clock sits well before its releases.
	first := []Arrival{arr(0, 2), arr(1, 2), arr(3, 1), arr(4, 3)}
	second := []Arrival{arr(50, 2), arr(51, 1), arr(51, 4)}
	stB, stI, resB, resI, _, _ := feedBatchPair(t, Options{})
	if _, err := stB.FeedBatch(first); err != nil {
		t.Fatal(err)
	}
	feedInterleaved(t, stI, first)
	// Drain both past the last fed release: queue empty, feed open — the
	// steppers suspend rather than finish.
	for _, st := range []*Stepper{stB, stI} {
		if _, err := st.StepUntil(math.Inf(1)); err != nil {
			t.Fatal(err)
		}
		if st.Done() {
			t.Fatal("stepper finished with the feed still open")
		}
	}
	assertRestStateEqual(t, stB, stI)
	// The second batch opens in the suspended steppers' future and must
	// revive both identically.
	if _, err := stB.FeedBatch(second); err != nil {
		t.Fatal(err)
	}
	feedInterleaved(t, stI, second)
	drainAndFinish(t, stB)
	drainAndFinish(t, stI)
	if !aggregateEqual(resB, resI) {
		t.Fatalf("suspended-resume run diverges:\n%+v\nvs\n%+v", resB, resI)
	}
}

// Snapshot in the middle of a batched feed, restore into a fresh Runner,
// and continue batching: the restored run must finish bit-identically — the
// speculative coordinator checkpoints exactly this way between windows.
func TestFeedBatchSnapshotRestoreMidBatch(t *testing.T) {
	arrivals := allocArrivals(t, 200, 43)
	policy, err := PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	cut := len(arrivals) / 3

	var resA Result
	stA, err := NewRunner().StartFeed(&resA, 8, policy, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stA.FeedBatch(arrivals[:cut]); err != nil {
		t.Fatal(err)
	}
	var snap StepperSnapshot
	if err := stA.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if _, err := stA.FeedBatch(arrivals[cut:]); err != nil {
		t.Fatal(err)
	}
	drainAndFinish(t, stA)

	var resB Result
	stB, err := NewRunner().StartFeed(&resB, 8, policy, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := stB.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	if _, err := stB.FeedBatch(arrivals[cut:]); err != nil {
		t.Fatal(err)
	}
	drainAndFinish(t, stB)
	if !aggregateEqual(&resA, &resB) {
		t.Fatalf("restored batched run diverges:\n%+v\nvs\n%+v", resB, resA)
	}
}

// FuzzFeedBatchEquivalence pins the tentpole claim: chunking an arbitrary
// generated stream through FeedBatch at an arbitrary window size is
// bitwise-equivalent to the one-at-a-time StepUntil+Feed interleave, for
// fixed, sublinear and platform capacity models alike.
func FuzzFeedBatchEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(7), uint8(0))
	f.Add(int64(99), uint8(200), uint8(1), uint8(1))
	f.Add(int64(-12), uint8(255), uint8(64), uint8(2))
	f.Add(int64(7777), uint8(16), uint8(255), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, window uint8, sel uint8) {
		count := 1 + int(n)
		arrivals, err := workload.GenerateArrivals(workload.ArrivalConfig{
			Class:   workload.Uniform,
			P:       8,
			Process: workload.Poisson,
			Rate:    1 + float64(sel%8),
		}, count, seed)
		if err != nil {
			t.Skip()
		}
		opts := Options{}
		switch sel % 3 {
		case 1:
			m, err := speedup.ParseModel("powerlaw:0.8")
			if err != nil {
				t.Fatal(err)
			}
			opts.Model = m
		case 2:
			m, err := speedup.ParseModel("platform:8@0,3@10,8@25")
			if err != nil {
				t.Fatal(err)
			}
			opts.Model = m
		}
		stB, stI, resB, resI, sinkB, sinkI := feedBatchPair(t, opts)
		w := 1 + int(window)
		for lo := 0; lo < len(arrivals); lo += w {
			hi := min(lo+w, len(arrivals))
			nB, err := stB.FeedBatch(arrivals[lo:hi])
			if err != nil {
				t.Fatal(err)
			}
			nI := feedInterleaved(t, stI, arrivals[lo:hi])
			if nB != nI {
				t.Fatalf("window %d..%d: FeedBatch processed %d events, interleave %d", lo, hi, nB, nI)
			}
			assertRestStateEqual(t, stB, stI)
		}
		drainAndFinish(t, stB)
		drainAndFinish(t, stI)
		if !aggregateEqual(resB, resI) {
			t.Fatalf("batched run diverges:\n%+v\nvs\n%+v", resB, resI)
		}
		if len(sinkB.rows) != len(sinkI.rows) {
			t.Fatalf("row counts differ: %d vs %d", len(sinkB.rows), len(sinkI.rows))
		}
		for i := range sinkI.rows {
			if sinkB.rows[i] != sinkI.rows[i] {
				t.Fatalf("row %d differs: %+v vs %+v", i, sinkB.rows[i], sinkI.rows[i])
			}
		}
	})
}
