package engine

import (
	"fmt"
	"sort"
	"sync"

	"github.com/malleable-sched/malleable/internal/stats"
)

// ArrivalSource produces the arrival stream of one shard. The seed passed in
// is already derived from the base seed and the shard index (see ShardSeed),
// so a source only has to be deterministic in (shard, seed) for the whole
// sharded run to be reproducible.
type ArrivalSource func(shard int, seed int64) ([]Arrival, error)

// ShardRun is the outcome of one shard of a sharded run.
type ShardRun struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Seed is the derived seed the shard's arrival stream was drawn with.
	Seed int64 `json:"seed"`
	// Result is the shard's engine result.
	Result *Result `json:"result"`
}

// LoadResult merges the outcomes of a sharded run. All aggregates are
// computed in shard order, so two runs with the same inputs produce
// byte-identical reports.
type LoadResult struct {
	// Policy is the policy name, P the per-shard platform capacity.
	Policy string  `json:"policy"`
	P      float64 `json:"p"`
	// Shards holds the per-shard outcomes, indexed by shard.
	Shards []ShardRun `json:"shards"`
	// TotalTasks is the number of tasks completed across all shards.
	TotalTasks int `json:"totalTasks"`
	// Events is the total number of policy invocations.
	Events int `json:"events"`
	// Makespan is the largest shard makespan.
	Makespan float64 `json:"makespan"`
	// WeightedFlow is Σ w_i·F_i across all shards.
	WeightedFlow float64 `json:"weightedFlow"`
	// Throughput is TotalTasks divided by Makespan: the aggregate completion
	// rate of the fleet while the slowest shard was still draining.
	Throughput float64 `json:"throughput"`
	// Flow summarizes the flow times of every task of every shard.
	Flow stats.Summary `json:"flow"`
	// PerTenant aggregates tenants across shards, sorted by tenant index.
	PerTenant []TenantMetrics `json:"perTenant"`
}

// ShardSeed derives a per-shard seed from the base seed with a splitmix64
// step, so neighbouring shards get decorrelated streams while the mapping
// stays a pure function of (base, shard).
func ShardSeed(base int64, shard int) int64 {
	z := uint64(base) + uint64(shard+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// RunShards runs `shards` independent engine instances concurrently, one
// goroutine per shard, each over its own arrival stream drawn with a seed
// derived from baseSeed, and merges the statistics deterministically. The
// policy is shared across shards and must therefore be safe for concurrent
// use (all bundled policies are stateless values).
func RunShards(p float64, policy Policy, source ArrivalSource, shards int, baseSeed int64) (*LoadResult, error) {
	return RunShardsWithOptions(p, policy, source, shards, baseSeed, Options{})
}

// RunShardsWithOptions is RunShards with per-run Options: every shard runs
// under the same options, so a speedup model (Options.Model) applies to the
// whole fleet. The model, like the policy, is shared across shard goroutines
// and must be safe for concurrent use (all bundled models are stateless).
func RunShardsWithOptions(p float64, policy Policy, source ArrivalSource, shards int, baseSeed int64, opts Options) (*LoadResult, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("engine: need at least one shard, got %d", shards)
	}
	runs := make([]ShardRun, shards)
	// Per-shard tenant partials, folded inside the shard goroutines so the
	// merge goroutine only combines accumulators.
	tenantParts := make([]map[int]*stats.Accumulator, shards)
	weightedParts := make([]map[int]float64, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// A panicking source or policy must surface as this shard's
			// error, not abort the whole process (mwct serve runs shards on
			// behalf of network clients).
			defer func() {
				if r := recover(); r != nil {
					errs[s] = fmt.Errorf("shard %d: panic: %v", s, r)
				}
			}()
			seed := ShardSeed(baseSeed, s)
			arrivals, err := source(s, seed)
			if err != nil {
				errs[s] = fmt.Errorf("shard %d: %w", s, err)
				return
			}
			// One Runner per shard goroutine: the scratch buffers are not
			// safe to share, and per-goroutine reuse keeps the hot loop
			// allocation-free.
			res, err := NewRunner().RunWithOptions(p, policy, arrivals, opts)
			if err != nil {
				errs[s] = fmt.Errorf("shard %d: %w", s, err)
				return
			}
			runs[s] = ShardRun{Shard: s, Seed: seed, Result: res}
			tenantParts[s], weightedParts[s] = res.tenantAccumulators()
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	return mergeShards(p, policy.Name(), runs, tenantParts, weightedParts), nil
}

// mergeShards folds the per-shard results into a LoadResult. Everything is
// iterated in shard order, so the merge is deterministic: flow samples
// concatenate for exact quantiles, and the tenant partials produced by the
// shard goroutines combine through Accumulator.Merge.
func mergeShards(p float64, policy string, runs []ShardRun, tenantParts []map[int]*stats.Accumulator, weightedParts []map[int]float64) *LoadResult {
	out := &LoadResult{Policy: policy, P: p, Shards: runs}
	var flows []float64
	tenantAcc := map[int]*stats.Accumulator{}
	tenantWF := map[int]float64{}
	for s, run := range runs {
		r := run.Result
		out.TotalTasks += len(r.Tasks)
		out.Events += r.Events
		out.WeightedFlow += r.WeightedFlow
		if r.Makespan > out.Makespan {
			out.Makespan = r.Makespan
		}
		flows = append(flows, r.FlowTimes()...)
		// Visit the shard's tenants in ascending order so the floating-point
		// merge sequence is a pure function of the inputs.
		tenants := make([]int, 0, len(tenantParts[s]))
		for t := range tenantParts[s] {
			tenants = append(tenants, t)
		}
		sort.Ints(tenants)
		for _, t := range tenants {
			if tenantAcc[t] == nil {
				tenantAcc[t] = &stats.Accumulator{}
			}
			tenantAcc[t].Merge(tenantParts[s][t])
			tenantWF[t] += weightedParts[s][t]
		}
	}
	if out.Makespan > 0 {
		out.Throughput = float64(out.TotalTasks) / out.Makespan
	}
	out.Flow = stats.Summarize(flows)
	out.PerTenant = tenantMetrics(tenantAcc, tenantWF)
	return out
}
