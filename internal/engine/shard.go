package engine

import (
	"fmt"
	"sync"

	"github.com/malleable-sched/malleable/internal/stats"
)

// ArrivalSource produces the arrival stream of one shard as a materialized
// slice. The seed passed in is already derived from the base seed and the
// shard index (see ShardSeed), so a source only has to be deterministic in
// (shard, seed) for the whole sharded run to be reproducible.
type ArrivalSource func(shard int, seed int64) ([]Arrival, error)

// StreamSource is the pull form of ArrivalSource: it produces one shard's
// ArrivalStream, so the shard never materializes its workload. It is the
// input side of RunShardsStream.
type StreamSource func(shard int, seed int64) (ArrivalStream, error)

// ShardRun is the outcome of one shard of a sharded run.
type ShardRun struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Seed is the derived seed the shard's arrival stream was drawn with.
	Seed int64 `json:"seed"`
	// Result is the shard's engine result. Under RunShards it retains the
	// per-task rows; under RunShardsStream it carries aggregates only.
	Result *Result `json:"result"`
}

// LoadResult merges the outcomes of a sharded run. All aggregates are
// computed in shard order, so two runs with the same inputs produce
// byte-identical reports.
type LoadResult struct {
	// Policy is the policy name, P the per-shard platform capacity.
	Policy string  `json:"policy"`
	P      float64 `json:"p"`
	// Shards holds the per-shard outcomes, indexed by shard.
	Shards []ShardRun `json:"shards"`
	// TotalTasks is the number of tasks completed across all shards.
	TotalTasks int `json:"totalTasks"`
	// Events is the total number of policy invocations.
	Events int `json:"events"`
	// Makespan is the largest shard makespan.
	Makespan float64 `json:"makespan"`
	// WeightedFlow is Σ w_i·F_i across all shards.
	WeightedFlow float64 `json:"weightedFlow"`
	// TotalFlow is Σ F_i across all shards.
	TotalFlow float64 `json:"totalFlow"`
	// Throughput is TotalTasks divided by Makespan: the aggregate completion
	// rate of the fleet while the slowest shard was still draining.
	Throughput float64 `json:"throughput"`
	// Flow summarizes the flow times of every task of every shard. RunShards
	// computes the quantiles exactly from the retained samples;
	// RunShardsStream reports them from the merged quantile sketch (within
	// stats.DefaultSketchAlpha relative accuracy), flagged by FlowApprox.
	Flow stats.Summary `json:"flow"`
	// FlowApprox reports that the Flow quantiles come from a sketch.
	FlowApprox bool `json:"flowApprox,omitempty"`
	// MinShardCompleted and MaxShardCompleted bound the per-shard completed
	// counts — how evenly the fleet's work was spread. Under independent
	// per-shard streams the split is fixed up front; under a routed cluster
	// the gap is the router's doing, so it is the first number to read when
	// comparing routers.
	MinShardCompleted int `json:"minShardCompleted"`
	MaxShardCompleted int `json:"maxShardCompleted"`
	// PeakBacklog is the largest alive-set size any single shard reached —
	// the worst queue a task could have landed behind.
	PeakBacklog int `json:"peakBacklog"`
	// PerTenant aggregates tenants across shards, sorted by tenant index.
	PerTenant []TenantMetrics `json:"perTenant"`
	// Aggregate is the merged streaming aggregate of every shard — the same
	// numbers as the fields above plus the per-tenant accumulators, in
	// mergeable form. Long-running callers (mwct serve) fold it into
	// cumulative counters across many load tests.
	Aggregate *AggregateSink `json:"-"`
	// Rollbacks and WastedEvents report the speculative cluster
	// coordinator's misprediction cost: how many times a shard was rolled
	// back to a checkpoint, and how many already-processed events those
	// rollbacks discarded (the events re-execute after the rollback, so
	// Events above counts only committed work). Both are zero outside
	// speculative mode. Excluded from JSON so serialized reports stay
	// byte-identical across coordinator modes.
	Rollbacks    int `json:"-"`
	WastedEvents int `json:"-"`
	// SpecBatchMin, SpecBatchMax and SpecBatchLast trace the speculative
	// coordinator's adaptive window controller: the smallest and largest
	// window depth it ran and the depth it settled on. The depth trades
	// wall-clock time against rollback waste and never influences the
	// scheduling outcome, so — like the counters above — it is excluded
	// from JSON. All zero outside speculative mode.
	SpecBatchMin  int `json:"-"`
	SpecBatchMax  int `json:"-"`
	SpecBatchLast int `json:"-"`
	// StaleViews and StaleWindow report the stale-batched coordinator's
	// view cadence: how many window-boundary fleet views were published and
	// the dispatch window size they were published at. Dispatches per view
	// is TotalTasks / StaleViews. Both are zero outside stale-batched mode
	// and — like the counters above — excluded from JSON, since they
	// describe coordinator mechanics, not the scheduling outcome.
	StaleViews  int `json:"-"`
	StaleWindow int `json:"-"`
}

// ShardSeed derives a per-shard seed from the base seed with a splitmix64
// step, so neighbouring shards get decorrelated streams while the mapping
// stays a pure function of (base, shard).
func ShardSeed(base int64, shard int) int64 {
	z := uint64(base) + uint64(shard+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// RunShards runs `shards` independent engine instances concurrently, one
// goroutine per shard, each over its own arrival stream drawn with a seed
// derived from baseSeed, and merges the statistics deterministically. The
// policy is shared across shards and must therefore be safe for concurrent
// use (all bundled policies are stateless values).
func RunShards(p float64, policy Policy, source ArrivalSource, shards int, baseSeed int64) (*LoadResult, error) {
	return RunShardsWithOptions(p, policy, source, shards, baseSeed, Options{})
}

// RunShardsWithOptions is RunShards with per-run Options: every shard runs
// under the same options, so a speedup model (Options.Model) applies to the
// whole fleet. The model, like the policy, is shared across shard goroutines
// and must be safe for concurrent use (all bundled models are stateless).
func RunShardsWithOptions(p float64, policy Policy, source ArrivalSource, shards int, baseSeed int64, opts Options) (*LoadResult, error) {
	if source == nil {
		return nil, fmt.Errorf("engine: nil arrival source")
	}
	return runShards(p, policy, shards, baseSeed, func(s int, seed int64) (*Result, *AggregateSink, *SketchSink, error) {
		arrivals, err := source(s, seed)
		if err != nil {
			return nil, nil, nil, err
		}
		// One Runner per shard goroutine: the scratch buffers are not
		// safe to share, and per-goroutine reuse keeps the hot loop
		// allocation-free.
		res, err := NewRunner().RunWithOptions(p, policy, arrivals, opts)
		if err != nil {
			return nil, nil, nil, err
		}
		agg := NewAggregateSink()
		agg.ObserveResult(res)
		return res, agg, nil, nil
	})
}

// RunShardsStream is the streaming form of RunShards: each shard pulls its
// arrivals from a StreamSource and summarizes them through an AggregateSink
// plus a flow-quantile SketchSink, so the whole fleet runs in memory
// O(shards · (alive tasks + sink size)) no matter how long the streams are.
// Per-task rows are not retained anywhere; the merged LoadResult reports
// sketch-based flow quantiles (FlowApprox).
func RunShardsStream(p float64, policy Policy, source StreamSource, shards int, baseSeed int64) (*LoadResult, error) {
	return RunShardsStreamWithOptions(p, policy, source, shards, baseSeed, Options{})
}

// RunShardsStreamWithOptions is RunShardsStream with explicit per-run
// Options, shared by every shard.
func RunShardsStreamWithOptions(p float64, policy Policy, source StreamSource, shards int, baseSeed int64, opts Options) (*LoadResult, error) {
	if source == nil {
		return nil, fmt.Errorf("engine: nil stream source")
	}
	return runShards(p, policy, shards, baseSeed, func(s int, seed int64) (*Result, *AggregateSink, *SketchSink, error) {
		stream, err := source(s, seed)
		if err != nil {
			return nil, nil, nil, err
		}
		agg := NewAggregateSink()
		sk := NewSketchSink(0)
		res, err := NewRunner().RunStreamWithOptions(p, policy, stream, MultiSink(agg, sk), opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return res, agg, sk, nil
	})
}

// runShards is the concurrent scaffolding shared by the slice and streaming
// drivers: one goroutine per shard executing runOne, panics contained as
// shard errors, and a deterministic shard-order merge of the partials.
func runShards(p float64, policy Policy, shards int, baseSeed int64,
	runOne func(shard int, seed int64) (*Result, *AggregateSink, *SketchSink, error)) (*LoadResult, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("engine: need at least one shard, got %d", shards)
	}
	runs := make([]ShardRun, shards)
	// Per-shard partials, folded inside the shard goroutines so the merge
	// only combines accumulators (and sketches, on the streaming path).
	aggs := make([]*AggregateSink, shards)
	sketches := make([]*SketchSink, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// A panicking source or policy must surface as this shard's
			// error, not abort the whole process (mwct serve runs shards on
			// behalf of network clients).
			defer func() {
				if r := recover(); r != nil {
					errs[s] = fmt.Errorf("shard %d: panic: %v", s, r)
				}
			}()
			seed := ShardSeed(baseSeed, s)
			res, agg, sk, err := runOne(s, seed)
			if err != nil {
				errs[s] = fmt.Errorf("shard %d: %w", s, err)
				return
			}
			runs[s] = ShardRun{Shard: s, Seed: seed, Result: res}
			aggs[s], sketches[s] = agg, sk
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	return MergeShards(p, policy.Name(), runs, aggs, sketches)
}

// MergeShards folds per-shard results into a LoadResult. Everything is
// iterated in shard order, so the merge is deterministic. On the slice path
// (no sketches) the flow samples concatenate for exact quantiles; on the
// streaming path the sketches merge instead and the quantiles carry the
// sketch accuracy. It is shared by the concurrent independent-streams
// drivers above and the virtual-time cluster coordinator
// (internal/cluster), so both report through one schema.
func MergeShards(p float64, policy string, runs []ShardRun, aggs []*AggregateSink, sketches []*SketchSink) (*LoadResult, error) {
	out := &LoadResult{Policy: policy, P: p, Shards: runs}
	agg := NewAggregateSink()
	streaming := sketches[0] != nil
	var flows []float64
	var sketch *SketchSink
	if streaming {
		sketch = NewSketchSink(0)
	}
	for s, run := range runs {
		r := run.Result
		out.TotalTasks += r.Completed
		out.Events += r.Events
		out.WeightedFlow += r.WeightedFlow
		out.TotalFlow += r.TotalFlow
		if r.Makespan > out.Makespan {
			out.Makespan = r.Makespan
		}
		if s == 0 || r.Completed < out.MinShardCompleted {
			out.MinShardCompleted = r.Completed
		}
		if r.Completed > out.MaxShardCompleted {
			out.MaxShardCompleted = r.Completed
		}
		if r.MaxAlive > out.PeakBacklog {
			out.PeakBacklog = r.MaxAlive
		}
		agg.Merge(aggs[s])
		if streaming {
			if err := sketch.Merge(sketches[s]); err != nil {
				return nil, fmt.Errorf("engine: merging shard %d flow sketch: %w", s, err)
			}
		} else {
			flows = append(flows, r.FlowTimes()...)
		}
	}
	if out.Makespan > 0 {
		out.Throughput = float64(out.TotalTasks) / out.Makespan
	}
	if streaming {
		out.Flow = FlowSummary(agg, sketch)
		out.FlowApprox = true
	} else {
		out.Flow = stats.Summarize(flows)
	}
	out.PerTenant = agg.PerTenant()
	out.Aggregate = agg
	return out, nil
}
