package engine

import (
	"fmt"
)

// ArrivalStream is the pull iterator the streaming engine consumes: Next
// returns the next arrival, ok=false for a clean end of stream, or an error.
// Arrivals must be emitted in non-decreasing release order — the engine
// validates each pulled arrival and the ordering at its boundary and aborts
// the run on a violation, so a stream implementation only has to be honest,
// not trusted.
//
// The engine pulls lazily: at any instant it has consumed exactly the
// arrivals released so far plus one look-ahead, which is what makes a run's
// memory O(alive tasks) instead of O(total tasks). workload.Stream (the
// generator) and workload.TraceReader (JSONL replay) satisfy this interface.
type ArrivalStream interface {
	Next() (Arrival, bool, error)
}

// SliceStream adapts an in-memory arrival slice to an ArrivalStream. It is
// the bridge for callers that already hold a slice but want the streaming
// entry points (sinks, no retained Result.Tasks); Reset rewinds it so one
// value can drive repeated benchmark runs without reallocation.
type SliceStream struct {
	arrivals []Arrival
	pos      int
}

// NewSliceStream returns a stream over the slice. The slice is not copied;
// the caller must not mutate it while the stream is in use.
func NewSliceStream(arrivals []Arrival) *SliceStream {
	return &SliceStream{arrivals: arrivals}
}

// Next yields the next arrival of the slice.
func (s *SliceStream) Next() (Arrival, bool, error) {
	if s.pos >= len(s.arrivals) {
		return Arrival{}, false, nil
	}
	a := s.arrivals[s.pos]
	s.pos++
	return a, true, nil
}

// Reset rewinds the stream to the first arrival.
func (s *SliceStream) Reset() { s.pos = 0 }

// arrivalSource is the internal form both engine entry points reduce to: a
// pull iterator that also assigns the task ID of each arrival. The slice
// path preserves original slice positions as IDs (even for unsorted input,
// which it sorts by an index permutation); the stream path numbers arrivals
// in stream order.
type arrivalSource interface {
	next() (Arrival, int, bool, error)
}

// sliceSource yields a validated, release-ordered view of an arrival slice.
// It lives in the Runner so repeated slice runs reuse it without allocating.
type sliceSource struct {
	arrivals []Arrival
	order    []int // nil means natural order
	pos      int
}

func (s *sliceSource) next() (Arrival, int, bool, error) {
	if s.pos >= len(s.arrivals) {
		return Arrival{}, 0, false, nil
	}
	id := s.pos
	if s.order != nil {
		id = s.order[s.pos]
	}
	s.pos++
	return s.arrivals[id], id, true, nil
}

// checkedStream wraps a caller-provided ArrivalStream with the engine's
// boundary validation: every arrival must validate and releases must be
// non-decreasing. It lives in the Runner for allocation-free reuse.
type checkedStream struct {
	stream      ArrivalStream
	count       int
	lastRelease float64
}

func (c *checkedStream) next() (Arrival, int, bool, error) {
	a, ok, err := c.stream.Next()
	if err != nil {
		return Arrival{}, 0, false, fmt.Errorf("engine: arrival %d: %w", c.count, err)
	}
	if !ok {
		return Arrival{}, 0, false, nil
	}
	if err := a.Validate(); err != nil {
		return Arrival{}, 0, false, fmt.Errorf("engine: arrival %d: %w", c.count, err)
	}
	if c.count > 0 && a.Release < c.lastRelease {
		return Arrival{}, 0, false, fmt.Errorf(
			"engine: arrival %d: release %g precedes %g — an ArrivalStream must be non-decreasing in release time",
			c.count, a.Release, c.lastRelease)
	}
	c.lastRelease = a.Release
	id := c.count
	c.count++
	return a, id, true, nil
}
