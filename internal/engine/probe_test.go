package engine

import (
	"math"
	"testing"
)

// recordingProbe retains every snapshot (test-only; real probes keep
// constant state).
type recordingProbe struct {
	snaps []Snapshot
}

func (p *recordingProbe) ObserveSnapshot(s Snapshot) { p.snaps = append(p.snaps, s) }

// Without intervals a probe observes every event exactly once, ends with a
// single Done snapshot, and every snapshot is internally consistent
// (admitted = completed + backlog — the rest-state guarantee).
func TestProbeEveryEvent(t *testing.T) {
	arrivals := allocArrivals(t, 256, 11)
	probe := &recordingProbe{}
	res, err := RunWithOptions(8, WDEQPolicy{}, arrivals, Options{Probe: probe})
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.snaps) == 0 {
		t.Fatal("probe never fired")
	}
	var done int
	for i, s := range probe.snaps {
		if s.Admitted != s.Completed+s.Backlog {
			t.Fatalf("snapshot %d inconsistent: admitted %d != completed %d + backlog %d", i, s.Admitted, s.Completed, s.Backlog)
		}
		if i > 0 && s.Now < probe.snaps[i-1].Now {
			t.Fatalf("snapshot %d time went backwards: %g after %g", i, s.Now, probe.snaps[i-1].Now)
		}
		if s.Done {
			done++
		}
	}
	if done != 1 || !probe.snaps[len(probe.snaps)-1].Done {
		t.Fatalf("want exactly one final Done snapshot at the end, got %d", done)
	}
	last := probe.snaps[len(probe.snaps)-1]
	if last.Completed != res.Completed || last.Backlog != 0 {
		t.Fatalf("final snapshot: completed %d backlog %d, want %d and 0", last.Completed, last.Backlog, res.Completed)
	}
	if last.Now != res.Makespan {
		t.Fatalf("final snapshot at %g, want makespan %g", last.Now, res.Makespan)
	}
	if last.WeightedFlow != res.WeightedFlow || last.TotalFlow != res.TotalFlow {
		t.Fatalf("final snapshot flow sums %g/%g, want %g/%g", last.WeightedFlow, last.TotalFlow, res.WeightedFlow, res.TotalFlow)
	}
	// Every event observed: the probe fires once per policy invocation plus
	// the pure-retirement and final events, so at least Events samples.
	if len(probe.snaps) < res.Events {
		t.Fatalf("%d snapshots for %d events", len(probe.snaps), res.Events)
	}
}

// An event-count interval thins the samples: successive firings are at least
// k events apart, and the final Done snapshot still always arrives.
func TestProbeEventInterval(t *testing.T) {
	arrivals := allocArrivals(t, 512, 12)
	probe := &recordingProbe{}
	res, err := RunWithOptions(8, WDEQPolicy{}, arrivals, Options{Probe: probe, ProbeEveryEvents: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.snaps) < 2 {
		t.Fatalf("want several samples, got %d", len(probe.snaps))
	}
	for i := 1; i < len(probe.snaps)-1; i++ {
		if gap := probe.snaps[i].Events - probe.snaps[i-1].Events; gap < 16 {
			t.Fatalf("samples %d and %d only %d events apart", i-1, i, gap)
		}
	}
	if !probe.snaps[len(probe.snaps)-1].Done {
		t.Fatal("missing final Done snapshot")
	}
	if got := len(probe.snaps); got > res.Events/16+2 {
		t.Fatalf("%d samples for %d events at interval 16", got, res.Events)
	}
}

// A virtual-time interval produces one sample per crossed grid point: under
// a dense event stream that is ~makespan/interval samples, and never two
// samples inside one interval (except the final Done one).
func TestProbeTimeInterval(t *testing.T) {
	arrivals := allocArrivals(t, 512, 13)
	const interval = 5.0
	probe := &recordingProbe{}
	res, err := RunWithOptions(8, WDEQPolicy{}, arrivals, Options{Probe: probe, ProbeInterval: interval})
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Floor(res.Makespan / interval))
	if len(probe.snaps) < want {
		t.Fatalf("%d samples over makespan %g at interval %g, want >= %d", len(probe.snaps), res.Makespan, interval, want)
	}
	for i := 1; i < len(probe.snaps)-1; i++ {
		if probe.snaps[i].Now-probe.snaps[i-1].Now < 0 {
			t.Fatalf("sample %d time went backwards", i)
		}
		// Two non-final samples in the same grid cell would mean the
		// threshold failed to advance.
		if math.Floor(probe.snaps[i].Now/interval) == math.Floor(probe.snaps[i-1].Now/interval) &&
			probe.snaps[i].Now != probe.snaps[i-1].Now {
			t.Fatalf("samples %d and %d both in grid cell %g", i-1, i, math.Floor(probe.snaps[i].Now/interval))
		}
	}
	if !probe.snaps[len(probe.snaps)-1].Done {
		t.Fatal("missing final Done snapshot")
	}
}

// countingProbe is the constant-state form a production collector takes: it
// overwrites scalars and never allocates.
type countingProbe struct {
	fired int
	last  Snapshot
}

func (p *countingProbe) ObserveSnapshot(s Snapshot) { p.fired++; p.last = s }

// The probe hook preserves the zero-allocation steady state: a warmed Runner
// re-running the same workload with a probe attached at every event performs
// no heap allocation at all.
func TestProbeZeroAllocSteadyState(t *testing.T) {
	arrivals := allocArrivals(t, 512, 99)
	runner := NewRunner()
	res := &Result{}
	probe := &countingProbe{}
	opts := Options{Probe: probe}
	var runErr error
	run := func() {
		if err := runner.RunInto(res, 8, WDEQPolicy{}, arrivals, opts); err != nil {
			runErr = err
		}
	}
	run() // warm the scratch
	if runErr != nil {
		t.Fatal(runErr)
	}
	allocs := testing.AllocsPerRun(10, run)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if allocs != 0 {
		t.Fatalf("probed steady-state run allocates %.1f allocs/run, want 0", allocs)
	}
	if probe.fired == 0 || !probe.last.Done {
		t.Fatalf("probe fired %d times, last done=%v", probe.fired, probe.last.Done)
	}
}

// A suspended feed-mode stepper (blocked on its feed) fires no probe: only
// committed events are observable.
func TestProbeFeedModeSuspension(t *testing.T) {
	runner := NewRunner()
	res := &Result{}
	probe := &recordingProbe{}
	st, err := runner.StartFeed(res, 4, WDEQPolicy{}, nil, Options{Probe: probe})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing fed: Step suspends and must not fire.
	if ok, err := st.Step(); ok || err != nil {
		t.Fatalf("empty feed Step = (%v, %v), want suspension", ok, err)
	}
	if len(probe.snaps) != 0 {
		t.Fatalf("suspended stepper fired %d probes", len(probe.snaps))
	}
	if err := st.Feed(Arrival{Task: task(2, 1, 2), Release: 1}); err != nil {
		t.Fatal(err)
	}
	for {
		ok, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if len(probe.snaps) == 0 {
		t.Fatal("fed event did not fire the probe")
	}
	before := len(probe.snaps)
	st.CloseFeed()
	for {
		ok, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if err := st.Finish(); err != nil {
		t.Fatal(err)
	}
	last := probe.snaps[len(probe.snaps)-1]
	if !last.Done {
		t.Fatalf("feed-mode run missing final Done snapshot (had %d, now %d samples)", before, len(probe.snaps))
	}
	// Post-done Steps are inert: no further samples.
	if ok, err := st.Step(); ok || err != nil {
		t.Fatalf("post-done Step = (%v, %v)", ok, err)
	}
	if len(probe.snaps) != 0 && probe.snaps[len(probe.snaps)-1] != last {
		t.Fatal("post-done Step fired the probe again")
	}
}
