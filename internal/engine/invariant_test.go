package engine

import (
	"math"
	"testing"

	"github.com/malleable-sched/malleable/internal/speedup"
	"github.com/malleable-sched/malleable/internal/stepfunc"
)

// invariantModels is the model matrix the kernel invariants are checked
// against: the paper's default plus every bundled extension.
func invariantModels(t *testing.T) map[string]speedup.Model {
	t.Helper()
	profile, err := stepfunc.FromSteps([]float64{0, 10, 20, 30}, []float64{8, 3, 0, 8})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]speedup.Model{
		"linear":   speedup.LinearCap{},
		"powerlaw": speedup.PowerLaw{Alpha: 0.6},
		"amdahl":   speedup.Amdahl{Sigma: 0.2},
		"platform": speedup.Platform{Profile: profile},
	}
}

// invariantPolicies is the policy matrix: every bundled policy, including a
// priority policy (not reachable through PolicyByName).
func invariantPolicies(t *testing.T, n int) map[string]Policy {
	t.Helper()
	priority := make([]int, n)
	for i := range priority {
		priority[i] = (i * 7) % n
	}
	out := map[string]Policy{"priority": PriorityPolicy{Priority: priority}}
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = p
	}
	return out
}

// Work conservation: whatever the policy and the speedup model, the volume
// the kernel integrates for a task between its release and its completion
// must equal the task's volume (within the completion tolerance). This is
// the invariant that guards the model-threaded advance step — a rate/dt
// mismatch anywhere would show up here.
func TestInvariantWorkConservation(t *testing.T) {
	arrivals := allocArrivals(t, 192, 23)
	for modelName, model := range invariantModels(t) {
		for policyName, policy := range invariantPolicies(t, len(arrivals)) {
			res, err := RunWithOptions(8, policy, arrivals, Options{Model: model})
			if err != nil {
				t.Fatalf("%s/%s: %v", modelName, policyName, err)
			}
			for i, tm := range res.Tasks {
				v := arrivals[i].Task.Volume
				tol := 1e-6 * math.Max(1, v)
				if math.Abs(tm.Processed-v) > tol {
					t.Fatalf("%s/%s: task %d processed %g of volume %g (|Δ| > %g)",
						modelName, policyName, i, tm.Processed, v, tol)
				}
				if tm.Completion < tm.Release {
					t.Fatalf("%s/%s: task %d completes at %g before its release %g",
						modelName, policyName, i, tm.Completion, tm.Release)
				}
			}
		}
	}
}

// remainingPoisoner hands the wrapped policy a copy of the alive set whose
// Remaining fields are garbage. A non-clairvoyant policy must be oblivious;
// any read of Remaining changes its allocations and fails the comparison in
// TestInvariantNonClairvoyance.
type remainingPoisoner struct {
	inner Policy
}

func (p remainingPoisoner) Name() string { return p.inner.Name() }

func (p remainingPoisoner) Allocate(capacity float64, alive []TaskState, dst []float64) []float64 {
	poisoned := make([]TaskState, len(alive))
	for i, s := range alive {
		s.Remaining = 1e300 + float64(s.ID)*1e290 // garbage, but distinct per task
		poisoned[i] = s
	}
	return p.inner.Allocate(capacity, poisoned, dst)
}

// certifiedPoisoner additionally forwards the wrapped policy's equal-share
// certificate (a function of the task weight only, so the wrapper cannot leak
// Remaining through it). Without the forward, honest and poisoned runs of a
// certified policy would take different event cores — virtual-clock vs
// fallback — and the comparison would measure the wrapper, not the policy.
// poisonPolicy picks the wrapper so uncertified policies stay uncertified
// when wrapped.
type certifiedPoisoner struct {
	remainingPoisoner
	cert EqualShareCertifier
}

func (p certifiedPoisoner) EqualShareWeight(weight float64) float64 {
	return p.cert.EqualShareWeight(weight)
}

func poisonPolicy(inner Policy) Policy {
	if c, ok := inner.(EqualShareCertifier); ok {
		return certifiedPoisoner{remainingPoisoner{inner: inner}, c}
	}
	return remainingPoisoner{inner: inner}
}

// Non-clairvoyance: every bundled policy that does not carry the Clairvoyant
// marker must produce the identical run when the Remaining field it is not
// supposed to read is replaced by garbage. The marker itself is part of the
// contract: smith-ratio must carry it.
func TestInvariantNonClairvoyance(t *testing.T) {
	arrivals := allocArrivals(t, 192, 29)
	if _, ok := Policy(SmithRatioPolicy{}).(Clairvoyant); !ok {
		t.Fatalf("smith-ratio must be marked Clairvoyant")
	}
	for modelName, model := range invariantModels(t) {
		for policyName, policy := range invariantPolicies(t, len(arrivals)) {
			if _, clairvoyant := policy.(Clairvoyant); clairvoyant {
				continue
			}
			honest, err := RunWithOptions(8, policy, arrivals, Options{Model: model})
			if err != nil {
				t.Fatalf("%s/%s: %v", modelName, policyName, err)
			}
			poisoned, err := RunWithOptions(8, poisonPolicy(policy), arrivals, Options{Model: model})
			if err != nil {
				t.Fatalf("%s/%s (poisoned): %v", modelName, policyName, err)
			}
			if honest.WeightedFlow != poisoned.WeightedFlow || honest.Makespan != poisoned.Makespan ||
				honest.Events != poisoned.Events {
				t.Fatalf("%s/%s: policy observes remaining volume: wf %g vs %g, mk %g vs %g, events %d vs %d",
					modelName, policyName, honest.WeightedFlow, poisoned.WeightedFlow,
					honest.Makespan, poisoned.Makespan, honest.Events, poisoned.Events)
			}
			for i := range honest.Tasks {
				if honest.Tasks[i] != poisoned.Tasks[i] {
					t.Fatalf("%s/%s: task %d diverges under poisoned Remaining: %+v vs %+v",
						modelName, policyName, i, honest.Tasks[i], poisoned.Tasks[i])
				}
			}
		}
	}
}

// The clairvoyant baseline must actually use its extra information: poisoning
// Remaining has to change a smith-ratio run (otherwise the marker is
// meaningless and the baseline measures nothing).
func TestSmithRatioUsesRemaining(t *testing.T) {
	arrivals := allocArrivals(t, 192, 31)
	honest, err := Run(8, SmithRatioPolicy{}, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	poisoned, err := Run(8, remainingPoisoner{inner: SmithRatioPolicy{}}, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if honest.WeightedFlow == poisoned.WeightedFlow {
		t.Errorf("smith-ratio run unchanged under poisoned Remaining — is it reading volumes at all?")
	}
}
