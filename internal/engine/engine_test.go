package engine

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
)

func task(w, v, d float64) schedule.Task { return schedule.Task{Weight: w, Volume: v, Delta: d} }

func mustRun(t *testing.T, p float64, policy Policy, arrivals []Arrival) *Result {
	t.Helper()
	res, err := Run(p, policy, arrivals)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// With every release date at zero the engine must reproduce the static
// simulator exactly: same completion times, same objective.
func TestMatchesStaticSimAtTimeZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(7)
		p := float64(1 + rng.Intn(4))
		tasks := make([]schedule.Task, n)
		arrivals := make([]Arrival, n)
		for i := range tasks {
			tasks[i] = task(0.05+rng.Float64(), 0.05+rng.Float64(), 0.05+(p-0.05)*rng.Float64())
			arrivals[i] = Arrival{Task: tasks[i]}
		}
		inst := &schedule.Instance{P: p, Tasks: tasks}
		res := mustRun(t, p, WDEQPolicy{}, arrivals)
		direct, err := core.RunWDEQ(inst)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.ApproxEqualTol(res.WeightedCompletion, direct.WeightedCompletionTime(), 1e-6) {
			t.Errorf("trial %d: engine %g vs static WDEQ %g", trial, res.WeightedCompletion, direct.WeightedCompletionTime())
		}
		// With all releases at zero, flow time equals completion time.
		if !numeric.ApproxEqualTol(res.WeightedFlow, res.WeightedCompletion, 1e-9) {
			t.Errorf("trial %d: weighted flow %g != weighted completion %g", trial, res.WeightedFlow, res.WeightedCompletion)
		}
	}
}

// A task arriving at the exact instant another completes must be coalesced
// into a single event: the completed task leaves, the new one enters, and the
// policy sees only the newcomer.
func TestSimultaneousArrivalAndCompletionTie(t *testing.T) {
	arrivals := []Arrival{
		{Task: task(1, 1, 1), Release: 0}, // completes exactly at t=1 on P=1
		{Task: task(1, 1, 1), Release: 1}, // arrives exactly at t=1
	}
	res, err := RunWithOptions(1, WDEQPolicy{}, arrivals, Options{TraceDecisions: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tasks[0].Completion; !numeric.ApproxEqualTol(got, 1, 1e-9) {
		t.Errorf("task 0 completion = %g, want 1", got)
	}
	if got := res.Tasks[1].Completion; !numeric.ApproxEqualTol(got, 2, 1e-9) {
		t.Errorf("task 1 completion = %g, want 2", got)
	}
	if res.Events != 2 {
		t.Errorf("events = %d, want 2 (one per task; the tie must coalesce)", res.Events)
	}
	// The decision at t=1 must see exactly task 1.
	d := res.Decisions[len(res.Decisions)-1]
	if d.Time != 1 || len(d.Alive) != 1 || d.Alive[0] != 1 {
		t.Errorf("tie decision = %+v, want time 1 with alive [1]", d)
	}
	if got := res.Tasks[1].Flow; !numeric.ApproxEqualTol(got, 1, 1e-9) {
		t.Errorf("task 1 flow = %g, want 1", got)
	}
}

// A zero-volume task arriving late completes the instant it arrives, with
// zero flow time, without disturbing the running task.
func TestZeroVolumeLateArrival(t *testing.T) {
	arrivals := []Arrival{
		{Task: task(1, 10, 1), Release: 0},
		{Task: task(5, 0, 1), Release: 5},
	}
	res := mustRun(t, 1, WDEQPolicy{}, arrivals)
	if got := res.Tasks[1].Completion; got != 5 {
		t.Errorf("zero-volume completion = %g, want 5", got)
	}
	if got := res.Tasks[1].Flow; got != 0 {
		t.Errorf("zero-volume flow = %g, want 0", got)
	}
	if got := res.Tasks[0].Completion; !numeric.ApproxEqualTol(got, 10, 1e-9) {
		t.Errorf("long task completion = %g, want 10 (must not be disturbed)", got)
	}
}

// An arrival while the machine is saturated forces the equipartition to
// split; the hand-computed trajectory pins every completion time.
func TestArrivalUnderSaturation(t *testing.T) {
	arrivals := []Arrival{
		{Task: task(1, 2, 1), Release: 0},   // alone until t=1, then shares
		{Task: task(1, 0.5, 1), Release: 1}, // arrives while P=1 is fully busy
	}
	res := mustRun(t, 1, WDEQPolicy{}, arrivals)
	// t in [0,1]: task 0 runs at 1 (processed 1, remaining 1).
	// t in [1,2]: both run at 1/2; task 1 finishes at 2 (0.5 volume).
	// t in [2,2.5]: task 0 runs at 1; remaining 0.5 -> completes at 2.5.
	if got := res.Tasks[1].Completion; !numeric.ApproxEqualTol(got, 2, 1e-9) {
		t.Errorf("task 1 completion = %g, want 2", got)
	}
	if got := res.Tasks[0].Completion; !numeric.ApproxEqualTol(got, 2.5, 1e-9) {
		t.Errorf("task 0 completion = %g, want 2.5", got)
	}
	if got := res.Tasks[1].Flow; !numeric.ApproxEqualTol(got, 1, 1e-9) {
		t.Errorf("task 1 flow = %g, want 1", got)
	}
	if res.MaxAlive != 2 {
		t.Errorf("max alive = %d, want 2", res.MaxAlive)
	}
}

// During an idle gap (no alive tasks, future arrivals pending) the engine
// must jump straight to the next release date.
func TestIdleGapBetweenArrivals(t *testing.T) {
	arrivals := []Arrival{
		{Task: task(1, 1, 1), Release: 0},
		{Task: task(1, 1, 1), Release: 100},
	}
	res := mustRun(t, 1, DEQPolicy{}, arrivals)
	if got := res.Tasks[1].Completion; !numeric.ApproxEqualTol(got, 101, 1e-9) {
		t.Errorf("task 1 completion = %g, want 101", got)
	}
	if res.Events != 2 {
		t.Errorf("events = %d, want 2 (idle gaps are not events)", res.Events)
	}
	if got := res.Makespan; !numeric.ApproxEqualTol(got, 101, 1e-9) {
		t.Errorf("makespan = %g, want 101", got)
	}
}

type starvingPolicy struct{}

func (starvingPolicy) Name() string { return "starve" }
func (starvingPolicy) Allocate(p float64, alive []TaskState, dst []float64) []float64 {
	for range alive {
		dst = append(dst, 0)
	}
	return dst
}

func TestStarvationDetected(t *testing.T) {
	_, err := Run(1, starvingPolicy{}, []Arrival{{Task: task(1, 1, 1)}})
	if err == nil || !strings.Contains(err.Error(), "starves") {
		t.Fatalf("err = %v, want starvation error", err)
	}
}

type overAllocatingPolicy struct{}

func (overAllocatingPolicy) Name() string { return "over" }
func (overAllocatingPolicy) Allocate(p float64, alive []TaskState, dst []float64) []float64 {
	for i := range alive {
		dst = append(dst, alive[i].Delta)
	}
	return dst
}

func TestOverAllocationRejected(t *testing.T) {
	arrivals := []Arrival{
		{Task: task(1, 1, 2)},
		{Task: task(1, 1, 2)},
	}
	_, err := Run(2, overAllocatingPolicy{}, arrivals)
	if err == nil || !strings.Contains(err.Error(), "exceeds the platform capacity") {
		t.Fatalf("err = %v, want capacity violation", err)
	}
}

func TestArrivalValidation(t *testing.T) {
	cases := []struct {
		name string
		p    float64
		arr  Arrival
	}{
		{"negative release", 1, Arrival{Task: task(1, 1, 1), Release: -1}},
		{"zero weight", 1, Arrival{Task: task(0, 1, 1)}},
		{"negative volume", 1, Arrival{Task: task(1, -1, 1)}},
		{"zero delta", 1, Arrival{Task: task(1, 1, 0)}},
		{"nan release", 1, Arrival{Task: task(1, 1, 1), Release: math.NaN()}},
	}
	for _, c := range cases {
		if _, err := Run(c.p, WDEQPolicy{}, []Arrival{c.arr}); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := Run(0, WDEQPolicy{}, []Arrival{{Task: task(1, 1, 1)}}); err == nil {
		t.Errorf("zero capacity accepted")
	}
	if _, err := Run(1, WDEQPolicy{}, nil); err == nil {
		t.Errorf("empty stream accepted")
	}
}

// Degree bounds above the platform capacity are capped in the policy's view,
// so greedy policies cannot be tricked into over-allocating.
func TestDeltaCappedAtCapacity(t *testing.T) {
	arrivals := []Arrival{{Task: task(1, 4, 100)}}
	res := mustRun(t, 2, WeightGreedyPolicy{}, arrivals)
	if got := res.Tasks[0].Completion; !numeric.ApproxEqualTol(got, 2, 1e-9) {
		t.Errorf("completion = %g, want 2 (delta capped at P=2)", got)
	}
}

// The clairvoyant Smith-ratio policy must finish short jobs first when
// weights are equal.
func TestSmithRatioPrefersShortJobs(t *testing.T) {
	arrivals := []Arrival{
		{Task: task(1, 10, 1)},
		{Task: task(1, 1, 1)},
	}
	res := mustRun(t, 1, SmithRatioPolicy{}, arrivals)
	if res.Tasks[1].Completion >= res.Tasks[0].Completion {
		t.Errorf("short job finished at %g, long at %g; smith-ratio must serve short first",
			res.Tasks[1].Completion, res.Tasks[0].Completion)
	}
	if got := res.Tasks[1].Completion; !numeric.ApproxEqualTol(got, 1, 1e-9) {
		t.Errorf("short job completion = %g, want 1", got)
	}
}

// WeightGreedy serves the heavy task first regardless of volumes.
func TestWeightGreedyPriority(t *testing.T) {
	arrivals := []Arrival{
		{Task: task(1, 1, 2)},
		{Task: task(10, 2, 2)},
	}
	res := mustRun(t, 2, WeightGreedyPolicy{}, arrivals)
	if got := res.Tasks[1].Completion; !numeric.ApproxEqualTol(got, 1, 1e-9) {
		t.Errorf("heavy task completion = %g, want 1", got)
	}
	// After the heavy task's exclusive run ([0,1] at rate 2), the light task
	// (δ=2) drains its unit volume at rate 2: done at 1.5.
	if got := res.Tasks[0].Completion; !numeric.ApproxEqualTol(got, 1.5, 1e-9) {
		t.Errorf("light task completion = %g, want 1.5", got)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() == "" {
			t.Errorf("%s: empty policy name", name)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Errorf("unknown policy accepted")
	}
}

// The result aggregates must be consistent with the per-task rows.
func TestResultAggregates(t *testing.T) {
	arrivals := []Arrival{
		{Task: task(2, 1, 1), Release: 0, Tenant: 0},
		{Task: task(1, 1, 1), Release: 0.5, Tenant: 1},
		{Task: task(1, 1, 1), Release: 4, Tenant: 1},
	}
	res := mustRun(t, 2, WDEQPolicy{}, arrivals)
	var wf, tf, mk float64
	for _, tm := range res.Tasks {
		wf += tm.Weight * tm.Flow
		tf += tm.Flow
		if tm.Completion > mk {
			mk = tm.Completion
		}
	}
	if !numeric.ApproxEqualTol(res.WeightedFlow, wf, 1e-9) || !numeric.ApproxEqualTol(res.TotalFlow, tf, 1e-9) {
		t.Errorf("aggregates %g/%g vs recomputed %g/%g", res.WeightedFlow, res.TotalFlow, wf, tf)
	}
	if res.Makespan != mk {
		t.Errorf("makespan %g vs recomputed %g", res.Makespan, mk)
	}
	tenants := res.PerTenant()
	if len(tenants) != 2 || tenants[0].Tenant != 0 || tenants[1].Tenant != 1 || tenants[1].Tasks != 2 {
		t.Errorf("per-tenant = %+v", tenants)
	}
	if res.Throughput() <= 0 || res.MeanFlow() <= 0 {
		t.Errorf("throughput %g, mean flow %g must be positive", res.Throughput(), res.MeanFlow())
	}
}
