package engine

import "math"

// This file is the O(log n) event core of the stepper: the indexed structures
// that replace the kernel's per-event linear passes over the alive set.
//
// Two structures cover the two completion-search regimes of the loop:
//
//   - calendarQueue: a timer-wheel calendar queue over the virtual-service
//     keys of equal-share segments (see the virtual-clock notes in engine.go).
//     Keys are only ever popped near the monotonically increasing virtual
//     clock, which is exactly the access pattern calendar queues are O(1)
//     amortized for: a cursor walks a ring of narrow buckets, and keys beyond
//     the bucket window wait in an overflow list that is re-bucketed when the
//     cursor wraps.
//   - idxHeap: an indexed binary min-heap keyed by slot, used for the
//     delta-ratio eligibility bound of the virtual mode and for the
//     completion-quotient index of the fallback path.
//
// Both structures obey the determinism rule of the whole engine: every value
// they surface (a minimum key, a pop order) is a pure function of the
// (key, task-id) multiset they hold, never of their internal layout. The
// calendar scans the leading bucket for the (key, id)-minimum instead of
// trusting insertion order, so a queue rebuilt from a snapshot pops the same
// sequence as the queue that grew event by event — the property
// FuzzStepperSnapshotRoundTrip and FuzzEventQueueEquivalence both lean on.
//
// All storage is Runner scratch: inserts append into kept-capacity slices, so
// a warmed engine runs both structures without heap allocation, and Restore
// rebuilds them from the live slots without allocating either.

// QueueStats is the per-run counter pair recording which event core ran each
// policy event: the virtual-clock equal-share path (no policy invocation, the
// calendar queue or its naive reference) or the fallback path (policy invoked,
// the quotient heap or the naive min-scan). Their sum is Result.Events.
type QueueStats struct {
	// VirtualEvents counts events decided on the virtual-service clock.
	VirtualEvents int
	// FallbackEvents counts events decided by invoking the policy.
	FallbackEvents int
	// Transitions counts mode switches between the two paths (each switch
	// pays an O(alive) rebuild or materialization).
	Transitions int
}

// EventCore selects the data structures behind the stepper's completion
// search. The semantics of a run — every event time, allocation, metric and
// sink row — are identical under every core; only the asymptotics differ.
// CoreNaive is retained as the executable reference the equivalence fuzz
// target and the byte-identity tests compare CoreAuto against.
type EventCore int

const (
	// CoreAuto is the default: calendar queue on virtual segments, indexed
	// quotient heap on fallback segments.
	CoreAuto EventCore = iota
	// CoreNaive is the reference implementation: the same virtual-clock
	// semantics computed by linear scans (the pre-calendar min-scan shape).
	CoreNaive
)

// valid reports whether the value is a known core selector.
func (c EventCore) valid() bool { return c == CoreAuto || c == CoreNaive }

// String names the core for error messages and bench reports.
func (c EventCore) String() string {
	if c == CoreNaive {
		return "naive"
	}
	return "auto"
}

// idxHeap is an indexed binary min-heap over float64 keys, addressed by the
// live-slot number: update/remove by slot are O(log n) through the slot→node
// position index, and renumber keeps the index coherent across the kernel's
// swap-delete retirements. Ordering uses the key value only — every consumer
// wants the minimum VALUE (a dt or an eligibility bound), never an argmin
// tie-break, so ties cost nothing and determinism is free.
type idxHeap struct {
	valid bool
	heap  []int32   // node order: heap[0] holds the slot with the least key
	pos   []int32   // slot → node index, -1 when the slot is not queued
	key   []float64 // slot → key
}

// reset empties the heap and sizes the slot index for n slots.
func (h *idxHeap) reset(n int) {
	h.heap = h.heap[:0]
	h.pos = growInt32(h.pos, n)
	h.key = growFloat(h.key, n)
	for i := 0; i < n; i++ {
		h.pos[i] = -1
	}
	h.valid = true
}

// growInt32 returns s resized to length n, reusing its storage.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// growFloat returns s resized to length n, reusing its storage.
func growFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// ensure grows the slot index to address slot (appends keep amortized O(1)).
func (h *idxHeap) ensure(slot int) {
	for len(h.pos) <= slot {
		h.pos = append(h.pos, -1)
		h.key = append(h.key, 0)
	}
}

// push inserts a new slot with the given key.
func (h *idxHeap) push(slot int, key float64) {
	h.ensure(slot)
	h.key[slot] = key
	h.pos[slot] = int32(len(h.heap))
	h.heap = append(h.heap, int32(slot))
	h.siftUp(len(h.heap) - 1)
}

// update changes the key of a queued slot (or inserts it if absent).
func (h *idxHeap) update(slot int, key float64) {
	h.ensure(slot)
	if h.pos[slot] < 0 {
		h.push(slot, key)
		return
	}
	old := h.key[slot]
	h.key[slot] = key
	i := int(h.pos[slot])
	if key < old {
		h.siftUp(i)
	} else if key > old {
		h.siftDown(i)
	}
}

// removeSlot deletes a slot from the heap; absent slots are a no-op.
func (h *idxHeap) removeSlot(slot int) {
	if slot >= len(h.pos) || h.pos[slot] < 0 {
		return
	}
	i := int(h.pos[slot])
	last := len(h.heap) - 1
	h.pos[slot] = -1
	if i != last {
		moved := h.heap[last]
		h.heap[i] = moved
		h.pos[moved] = int32(i)
		h.heap = h.heap[:last]
		h.siftDown(i)
		h.siftUp(int(h.pos[moved]))
		return
	}
	h.heap = h.heap[:last]
}

// renumber moves slot old's entry to slot new — the swap-delete fixup: the
// kernel just moved live[old] into live[new].
func (h *idxHeap) renumber(oldSlot, newSlot int) {
	if oldSlot >= len(h.pos) || h.pos[oldSlot] < 0 {
		return
	}
	i := h.pos[oldSlot]
	h.ensure(newSlot)
	h.key[newSlot] = h.key[oldSlot]
	h.pos[newSlot] = i
	h.pos[oldSlot] = -1
	h.heap[i] = int32(newSlot)
}

// min returns the least key, or +Inf when the heap is empty.
func (h *idxHeap) min() float64 {
	if len(h.heap) == 0 {
		return math.Inf(1)
	}
	return h.key[h.heap[0]]
}

// rebuild re-heapifies from the keys slice (indexed by slot, length n) in
// O(n) — the bulk path for mode transitions, restores, and events where most
// keys changed at once.
func (h *idxHeap) rebuild(keys []float64) {
	n := len(keys)
	h.pos = growInt32(h.pos, n)
	h.key = growFloat(h.key, n)
	h.heap = h.heap[:0]
	for i := 0; i < n; i++ {
		h.key[i] = keys[i]
		h.pos[i] = int32(i)
		h.heap = append(h.heap, int32(i))
	}
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	h.valid = true
}

func (h *idxHeap) siftUp(i int) {
	node := h.heap[i]
	k := h.key[node]
	for i > 0 {
		parent := (i - 1) / 2
		if h.key[h.heap[parent]] <= k {
			break
		}
		h.heap[i] = h.heap[parent]
		h.pos[h.heap[i]] = int32(i)
		i = parent
	}
	h.heap[i] = node
	h.pos[node] = int32(i)
}

func (h *idxHeap) siftDown(i int) {
	n := len(h.heap)
	node := h.heap[i]
	k := h.key[node]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h.key[h.heap[r]] < h.key[h.heap[c]] {
			c = r
		}
		if k <= h.key[h.heap[c]] {
			break
		}
		h.heap[i] = h.heap[c]
		h.pos[h.heap[i]] = int32(i)
		i = c
	}
	h.heap[i] = node
	h.pos[node] = int32(i)
}

// calendarQueue is the timer-wheel index over virtual-service completion
// keys. Buckets cover the half-open window [base, base+width·len(buckets));
// keys past the window wait in the overflow list and are distributed when the
// cursor wraps. base and limit are FIXED for a window's lifetime (only
// rewindow/reset move them) — that fixes the order invariant the whole
// structure rests on: every bucketed key < limit ≤ every overflow key, so
// the global minimum always lives in the first non-empty bucket. Inserts
// whose key falls before the cursor's bucket are clamped into the cursor
// bucket — peekMin scans a whole bucket for the (key, id) minimum, so a
// clamped early key is still found first.
//
// Geometry (width, bucket count, window base) adapts to occupancy at rebuild
// and wrap points, and deliberately has no effect on anything observable:
// extraction order is value-ordered, so a queue with different geometry —
// say, one rebuilt from a Snapshot — pops the identical sequence.
type calendarQueue struct {
	valid   bool
	base    float64 // virtual time at bucket 0's left edge (fixed per window)
	limit   float64 // base + width·len(buckets): the overflow threshold
	width   float64
	cur     int
	n       int
	buckets [][]int32
	over    []int32
	// slot → location: bucketOf is the bucket index or -1 for the overflow
	// list; posOf is the position inside that bucket/list.
	bucketOf []int32
	posOf    []int32
}

// calMinBuckets keeps the wheel from degenerating at tiny occupancies.
const calMinBuckets = 16

// reset empties the queue and re-anchors the window at vnow for about n keys
// spanning roughly span units of virtual service.
func (q *calendarQueue) reset(vnow, span float64, n, slots int) {
	nb := calMinBuckets
	for nb < n {
		nb *= 2
	}
	if cap(q.buckets) < nb {
		q.buckets = append(q.buckets[:cap(q.buckets)], make([][]int32, nb-cap(q.buckets))...)
	}
	q.buckets = q.buckets[:nb]
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.over = q.over[:0]
	q.bucketOf = growInt32(q.bucketOf, slots)
	q.posOf = growInt32(q.posOf, slots)
	q.base = vnow
	q.cur = 0
	q.n = 0
	// Aim for ~1 key per bucket across the observed span; a degenerate span
	// (all keys equal, or a single key) gets a unit-ish width so every key
	// lands in one bucket and the scan degenerates gracefully.
	w := span / float64(nb)
	if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) {
		w = math.Max(1e-9, 1e-9*math.Abs(vnow))
		if w == 0 {
			w = 1e-9
		}
	}
	q.width = w
	q.limit = q.base + w*float64(nb)
	q.valid = true
}

// ensureSlots grows the slot-location index to address slot.
func (q *calendarQueue) ensureSlots(slot int) {
	for len(q.bucketOf) <= slot {
		q.bucketOf = append(q.bucketOf, 0)
		q.posOf = append(q.posOf, 0)
	}
}

// insert files a slot under its key.
func (q *calendarQueue) insert(slot int, key float64) {
	q.ensureSlots(slot)
	if key >= q.limit {
		q.bucketOf[slot] = -1
		q.posOf[slot] = int32(len(q.over))
		q.over = append(q.over, int32(slot))
		q.n++
		return
	}
	b := 0
	if key > q.base {
		b = int((key - q.base) / q.width)
	}
	if b < q.cur {
		b = q.cur // clamp: never file behind the cursor
	}
	if b >= len(q.buckets) {
		b = len(q.buckets) - 1
	}
	q.bucketOf[slot] = int32(b)
	q.posOf[slot] = int32(len(q.buckets[b]))
	q.buckets[b] = append(q.buckets[b], int32(slot))
	q.n++
}

// peekMin returns the slot holding the (key, id)-least entry. The live slice
// supplies both the keys and the id tie-break, so the answer is a pure
// function of queue contents. Returns ok=false on an empty queue.
func (q *calendarQueue) peekMin(live []liveTask) (slot int, ok bool) {
	if q.n == 0 {
		return 0, false
	}
	for {
		for q.cur < len(q.buckets) {
			b := q.buckets[q.cur]
			if len(b) > 0 {
				best := int(b[0])
				for _, s32 := range b[1:] {
					s := int(s32)
					if live[s].key < live[best].key ||
						(live[s].key == live[best].key && live[s].id < live[best].id) {
						best = s
					}
				}
				return best, true
			}
			q.cur++
		}
		// Window exhausted: re-anchor it over the overflow keys. Width and
		// bucket count re-adapt to what is left (amortized O(1) per key).
		q.rewindow(live)
	}
}

// rewindow redistributes the overflow list into a fresh bucket window. The
// new window spans [lo, lo+span) with span covering the largest pending key,
// so the redistribution itself never re-overflows.
func (q *calendarQueue) rewindow(live []liveTask) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range q.over {
		k := live[s].key
		if k < lo {
			lo = k
		}
		if k > hi {
			hi = k
		}
	}
	pend := q.over
	// Swap the overflow buffer out before reset so its storage survives the
	// redistribution loop (reset clears q.over; appends during the loop, if
	// any, land past pend's live entries in the same backing array).
	q.over = q.over[len(q.over):]
	q.reset(lo, (hi-lo)+q.width, len(pend), len(q.bucketOf))
	for _, s := range pend {
		q.insert(int(s), live[s].key)
	}
	// Reclaim the swapped-out buffer for future overflow appends.
	if len(q.over) == 0 && cap(pend) > cap(q.over) {
		q.over = pend[:0]
	}
}

// removeSlot deletes a slot from wherever it is filed.
func (q *calendarQueue) removeSlot(slot int) {
	b := q.bucketOf[slot]
	p := int(q.posOf[slot])
	var list *[]int32
	if b < 0 {
		list = &q.over
	} else {
		list = &q.buckets[b]
	}
	last := len(*list) - 1
	if p != last {
		moved := (*list)[last]
		(*list)[p] = moved
		q.posOf[moved] = int32(p)
	}
	*list = (*list)[:last]
	q.n--
}

// renumber moves slot old's filing to slot new (the swap-delete fixup).
func (q *calendarQueue) renumber(oldSlot, newSlot int) {
	q.ensureSlots(newSlot)
	b := q.bucketOf[oldSlot]
	p := q.posOf[oldSlot]
	q.bucketOf[newSlot] = b
	q.posOf[newSlot] = p
	if b < 0 {
		q.over[p] = int32(newSlot)
	} else {
		q.buckets[b][p] = int32(newSlot)
	}
}

// rebuildCalendar bulk-loads the queue from the live slots — the transition
// and restore path. Geometry is chosen from the key span, but (see the type
// comment) geometry never affects extraction order.
func (q *calendarQueue) rebuildCalendar(live []liveTask, vnow float64) {
	hi := vnow
	for i := range live {
		if k := live[i].key; k > hi {
			hi = k
		}
	}
	q.reset(vnow, (hi-vnow)+1e-9, len(live), len(live))
	for i := range live {
		q.insert(i, live[i].key)
	}
}
