package engine

import "fmt"

// StepperSnapshot is a reusable checkpoint of a feed-mode Stepper's rest
// state: the clock, the live-task slots, the pending arrival and queued
// feeds, the decided rates, the run counters, and the probe bookkeeping —
// everything Restore needs to put a stepper (the same one, or a fresh one
// with the same configuration) back at exactly that instant of virtual time.
//
// The buffer is reusable in the allocation sense of the rest of the engine:
// Snapshot appends into the storage a previous Snapshot grew, so a warmed
// snapshot taken at a similar backlog performs zero heap allocations. That
// makes checkpointing cheap enough to sit on the hot path of the speculative
// cluster coordinator (internal/cluster), which checkpoints shards at every
// dispatch boundary it speculates across — and it is deliberately the same
// primitive a future elasticity/fault-tolerance layer needs for shard
// migration and crash recovery.
//
// What a snapshot does NOT capture, by design:
//
//   - The run configuration (capacity, policy, speedup model, Options).
//     Restore validates that the target stepper was started with the same
//     capacity, policy and model, and refuses otherwise.
//   - The per-run policy clone. Bundled policies keep only per-call scratch
//     that Allocate recomputes from the alive set it is handed, so restoring
//     the kernel state restores the decision sequence exactly; a custom
//     policy that accumulates history across Allocate calls is outside the
//     snapshot contract.
//   - Sink emissions and the decision trace. Rows already delivered to the
//     run's MetricSink are not retracted by Restore — callers that need
//     rollback buffer sink output themselves (the speculative coordinator
//     buffers per window) — and Snapshot refuses steppers running with
//     TraceDecisions.
//
// The zero value is ready to use. A StepperSnapshot is not safe for
// concurrent use, but it is independent of the stepper it was taken from:
// restoring into a different Runner's stepper is the fault-tolerance path
// (serialize, ship, reinstate) and is exercised by the fuzz harness.
type StepperSnapshot struct {
	valid bool

	// Configuration fingerprint of the run the snapshot was taken from,
	// validated on Restore.
	p      float64
	policy string
	model  string

	// Stepper scalars (see the Stepper field docs).
	now             float64
	admitted        int
	pending         Arrival
	pendingID       int
	havePending     bool
	closed          bool
	pulled          int
	fed             int
	lastFed         float64
	decided         bool
	dtComp          float64
	allocated       float64
	eventBound      int
	probeLastEvents int
	probeNext       float64
	probeFinal      bool
	done            bool

	// Event-core scalars. The index structures themselves (calendar queue,
	// eligibility and completion heaps) are never captured: they are pure
	// functions of the live slots plus these scalars, and Restore just marks
	// them for rebuild — extraction order is value-ordered, so a rebuilt
	// queue is observationally identical to the one that grew incrementally.
	virtual bool
	vnow    float64
	vrate   float64
	wsum    float64
	stats   QueueStats

	// Result aggregates at the snapshot instant.
	completed          int
	events             int
	maxAlive           int
	makespan           float64
	weightedFlow       float64
	weightedCompletion float64
	totalFlow          float64

	// Reused buffer copies: the undrained feed queue, the alive-task slots,
	// and the decided per-task rates.
	feedQ []Arrival
	live  []liveTask
	rates []float64
}

// Valid reports whether the snapshot holds a captured state.
func (s *StepperSnapshot) Valid() bool { return s.valid }

// Now returns the captured virtual time.
func (s *StepperSnapshot) Now() float64 { return s.now }

// Backlog returns the captured alive-task count — the same load signal
// Stepper.Backlog exposes, readable without restoring (the speculative
// coordinator fills router snapshots straight from checkpoints).
func (s *StepperSnapshot) Backlog() int { return len(s.live) }

// Allocated returns the capacity the policy had handed out at the captured
// decision (0 when the stepper was idle).
func (s *StepperSnapshot) Allocated() float64 {
	if !s.decided {
		return 0
	}
	return s.allocated
}

// Completed returns the captured completed-task count.
func (s *StepperSnapshot) Completed() int { return s.completed }

// Events returns the captured policy-invocation count. The delta between a
// stepper's live Events and a checkpoint's is the work a rollback discards —
// the speculative coordinator's waste metric.
func (s *StepperSnapshot) Events() int { return s.events }

// Snapshot captures the stepper's current rest state into snap, reusing
// snap's storage. The stepper must be feed-mode (StartFeed): a stream-driven
// stepper's unpulled source cannot be rewound, so its state is not
// restorable. Snapshot at a rest state is exact by construction — every
// event at or before Now() is committed, the next event has not begun — so
// Restore followed by identical feeds reproduces the continuation
// bit-for-bit (fuzzed in FuzzStepperSnapshotRoundTrip).
func (st *Stepper) Snapshot(snap *StepperSnapshot) error {
	if st.err != nil {
		return fmt.Errorf("engine: Snapshot of a failed stepper: %w", st.err)
	}
	if !st.feedable {
		return fmt.Errorf("engine: Snapshot requires a feed-mode stepper (StartFeed); a stream-driven source cannot be rewound")
	}
	if st.trace {
		return fmt.Errorf("engine: Snapshot with TraceDecisions is unsupported (the decision trace is not captured)")
	}

	snap.p = st.p
	snap.policy = st.res.Policy
	snap.model = st.res.Model

	snap.now = st.now
	snap.admitted = st.admitted
	snap.pending = st.pending
	snap.pendingID = st.pendingID
	snap.havePending = st.havePending
	snap.closed = st.closed
	snap.pulled = st.pulled
	snap.fed = st.fed
	snap.lastFed = st.lastFed
	snap.decided = st.decided
	snap.dtComp = st.dtComp
	snap.allocated = st.allocated
	snap.eventBound = st.eventBound
	snap.probeLastEvents = st.probeLastEvents
	snap.probeNext = st.probeNext
	snap.probeFinal = st.probeFinal
	snap.done = st.done
	snap.virtual = st.virtual
	snap.vnow = st.vnow
	snap.vrate = st.vrate
	snap.wsum = st.wsum
	snap.stats = st.stats

	res := st.res
	snap.completed = res.Completed
	snap.events = res.Events
	snap.maxAlive = res.MaxAlive
	snap.makespan = res.Makespan
	snap.weightedFlow = res.WeightedFlow
	snap.weightedCompletion = res.WeightedCompletion
	snap.totalFlow = res.TotalFlow

	snap.feedQ = append(snap.feedQ[:0], st.feedQ[st.feedHead:]...)
	snap.live = append(snap.live[:0], st.r.live...)
	snap.rates = append(snap.rates[:0], st.r.rates...)

	snap.valid = true
	return nil
}

// Restore reinstates a captured rest state into the stepper, which must be a
// feed-mode stepper started with the same capacity, policy and speedup model
// the snapshot was taken under (typically the same stepper rolling back, or
// a fresh StartFeed on another Runner). The stepper's Result is rewound to
// the snapshot's aggregates; its sink and probe keep their identities, but
// anything they observed after the snapshot instant is not retracted — that
// buffering is the caller's job. Like Snapshot, Restore performs no heap
// allocation once the target's scratch is warmed.
func (st *Stepper) Restore(snap *StepperSnapshot) error {
	if !snap.valid {
		return fmt.Errorf("engine: Restore from an empty snapshot")
	}
	if !st.feedable {
		return fmt.Errorf("engine: Restore requires a feed-mode stepper (StartFeed)")
	}
	if st.trace {
		return fmt.Errorf("engine: Restore into a stepper with TraceDecisions is unsupported")
	}
	if st.p != snap.p || st.res.Policy != snap.policy || st.res.Model != snap.model {
		return fmt.Errorf("engine: Restore into a stepper with a different configuration: have (p=%g, policy=%q, model=%q), snapshot has (p=%g, policy=%q, model=%q)",
			st.p, st.res.Policy, st.res.Model, snap.p, snap.policy, snap.model)
	}

	st.now = snap.now
	st.admitted = snap.admitted
	st.pending = snap.pending
	st.pendingID = snap.pendingID
	st.havePending = snap.havePending
	st.closed = snap.closed
	st.pulled = snap.pulled
	st.fed = snap.fed
	st.lastFed = snap.lastFed
	st.decided = snap.decided
	st.dtComp = snap.dtComp
	st.allocated = snap.allocated
	st.eventBound = snap.eventBound
	st.probeLastEvents = snap.probeLastEvents
	st.probeNext = snap.probeNext
	st.probeFinal = snap.probeFinal
	st.done = snap.done
	st.virtual = snap.virtual
	st.vnow = snap.vnow
	st.vrate = snap.vrate
	st.wsum = snap.wsum
	st.stats = snap.stats
	st.err = nil

	st.feedQ = append(st.feedQ[:0], snap.feedQ...)
	st.feedHead = 0

	r := st.r
	r.live = append(r.live[:0], snap.live...)
	r.rates = append(r.rates[:0], snap.rates...)
	// The index structures are rebuilt from the restored live slots on first
	// use (alloc-free once warmed).
	r.cal.valid = false
	r.drh.valid = false
	r.qth.valid = false

	res := st.res
	res.Completed = snap.completed
	res.Events = snap.events
	res.MaxAlive = snap.maxAlive
	res.Makespan = snap.makespan
	res.WeightedFlow = snap.weightedFlow
	res.WeightedCompletion = snap.weightedCompletion
	res.TotalFlow = snap.totalFlow
	return nil
}
