package engine

import (
	"math"
	"strings"
	"testing"

	"github.com/malleable-sched/malleable/internal/speedup"
	"github.com/malleable-sched/malleable/internal/workload"
)

// feedAll hands the whole slice to a feed-mode stepper and closes the feed.
func feedAll(t testing.TB, st *Stepper, arrivals []Arrival) {
	t.Helper()
	for _, a := range arrivals {
		if err := st.Feed(a); err != nil {
			t.Fatal(err)
		}
	}
	st.CloseFeed()
}

// stepN advances the stepper up to n events (fewer if the run ends first)
// and reports how many it processed.
func stepN(t testing.TB, st *Stepper, n int) int {
	t.Helper()
	steps := 0
	for steps < n {
		ok, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		steps++
	}
	return steps
}

// The core Snapshot/Restore contract: capture a mid-run rest state, restore
// it into a FRESH Runner (the fault-tolerance path), drive both to
// completion, and require bit-identical aggregates and identical
// post-snapshot sink rows — at several cut points, including the initial
// state and the done state.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	arrivals := allocArrivals(t, 300, 77)
	policy, err := PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{"", "powerlaw:0.75", "platform:8@0,4@40,8@80"} {
		t.Run("model="+model, func(t *testing.T) {
			opts := Options{}
			if model != "" {
				m, err := speedup.ParseModel(model)
				if err != nil {
					t.Fatal(err)
				}
				opts.Model = m
			}
			for _, cut := range []int{0, 1, 7, 100, 1 << 20} {
				var resA Result
				sinkA := &captureSink{}
				stA, err := NewRunner().StartFeed(&resA, 8, policy, sinkA, opts)
				if err != nil {
					t.Fatal(err)
				}
				feedAll(t, stA, arrivals)
				stepN(t, stA, cut)
				rowsAtCut := len(sinkA.rows)

				var snap StepperSnapshot
				if err := stA.Snapshot(&snap); err != nil {
					t.Fatal(err)
				}

				var resB Result
				sinkB := &captureSink{}
				stB, err := NewRunner().StartFeed(&resB, 8, policy, sinkB, opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := stB.Restore(&snap); err != nil {
					t.Fatal(err)
				}

				for _, st := range []*Stepper{stA, stB} {
					if _, err := st.StepUntil(math.Inf(1)); err != nil {
						t.Fatal(err)
					}
					if err := st.Finish(); err != nil {
						t.Fatal(err)
					}
				}
				if !aggregateEqual(&resA, &resB) {
					t.Fatalf("cut %d: restored run diverges:\n%+v\nvs\n%+v", cut, resB, resA)
				}
				tail := sinkA.rows[rowsAtCut:]
				if len(tail) != len(sinkB.rows) {
					t.Fatalf("cut %d: restored run emitted %d rows, original emitted %d after the cut", cut, len(sinkB.rows), len(tail))
				}
				for i := range tail {
					if tail[i] != sinkB.rows[i] {
						t.Fatalf("cut %d: row %d differs: %+v vs %+v", cut, i, sinkB.rows[i], tail[i])
					}
				}
			}
		})
	}
}

// Restoring a stepper onto ITSELF is the speculative coordinator's rollback:
// snapshot, speculate ahead, restore, and the continuation must match a run
// that never speculated — including the counters speculation inflated.
func TestSnapshotRollbackSameStepper(t *testing.T) {
	arrivals := allocArrivals(t, 200, 5)
	policy, err := PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}

	var want Result
	wantSink := &captureSink{}
	stW, err := NewRunner().StartFeed(&want, 8, policy, wantSink, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, stW, arrivals)
	if _, err := stW.StepUntil(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if err := stW.Finish(); err != nil {
		t.Fatal(err)
	}

	var got Result
	gotSink := &captureSink{}
	st, err := NewRunner().StartFeed(&got, 8, policy, gotSink, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, st, arrivals)
	stepN(t, st, 40)
	var snap StepperSnapshot
	if err := st.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	rows := len(gotSink.rows)
	// Speculate 25 events past the checkpoint, then roll back.
	stepN(t, st, 25)
	if err := st.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	gotSink.rows = gotSink.rows[:rows]
	if _, err := st.StepUntil(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Finish(); err != nil {
		t.Fatal(err)
	}
	if !aggregateEqual(&want, &got) {
		t.Fatalf("rollback run diverges:\n%+v\nvs\n%+v", got, want)
	}
	if len(wantSink.rows) != len(gotSink.rows) {
		t.Fatalf("row counts differ: %d vs %d", len(gotSink.rows), len(wantSink.rows))
	}
	for i := range wantSink.rows {
		if wantSink.rows[i] != gotSink.rows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, gotSink.rows[i], wantSink.rows[i])
		}
	}
}

// A snapshot taken mid-window carries the undrained feed queue, so the
// restored stepper needs no further feeding for arrivals fed before the
// snapshot — and accepts later feeds exactly like the original.
func TestSnapshotCarriesOpenFeed(t *testing.T) {
	arrivals := allocArrivals(t, 120, 19)
	policy, err := PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	half := len(arrivals) / 2

	var want Result
	stW, err := NewRunner().StartFeed(&want, 8, policy, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, stW, arrivals)
	if _, err := stW.StepUntil(math.Inf(1)); err != nil {
		t.Fatal(err)
	}

	var resA Result
	stA, err := NewRunner().StartFeed(&resA, 8, policy, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals[:half] {
		if err := stA.Feed(a); err != nil {
			t.Fatal(err)
		}
	}
	stepN(t, stA, 10)
	var snap StepperSnapshot
	if err := stA.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	var resB Result
	stB, err := NewRunner().StartFeed(&resB, 8, policy, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := stB.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals[half:] {
		if err := stB.Feed(a); err != nil {
			t.Fatal(err)
		}
	}
	stB.CloseFeed()
	if _, err := stB.StepUntil(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if err := stB.Finish(); err != nil {
		t.Fatal(err)
	}
	if !aggregateEqual(&want, &resB) {
		t.Fatalf("resumed run diverges:\n%+v\nvs\n%+v", resB, want)
	}
}

// The snapshot boundary's refusals: stream-driven steppers (unrewindable
// source), traced runs (uncaptured decision trace), empty snapshots, and
// configuration mismatches on Restore.
func TestSnapshotValidation(t *testing.T) {
	arrivals := allocArrivals(t, 16, 3)
	policy, err := PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	var snap StepperSnapshot

	var res Result
	stream, err := NewRunner().StartStream(&res, 8, policy, NewSliceStream(arrivals), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Snapshot(&snap); err == nil || !strings.Contains(err.Error(), "feed-mode") {
		t.Fatalf("stream-mode Snapshot error = %v", err)
	}

	var traced Result
	stT, err := NewRunner().StartFeed(&traced, 8, policy, nil, Options{TraceDecisions: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := stT.Snapshot(&snap); err == nil || !strings.Contains(err.Error(), "TraceDecisions") {
		t.Fatalf("traced Snapshot error = %v", err)
	}

	var fresh Result
	stF, err := NewRunner().StartFeed(&fresh, 8, policy, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := stF.Restore(&snap); err == nil || !strings.Contains(err.Error(), "empty snapshot") {
		t.Fatalf("empty-snapshot Restore error = %v", err)
	}
	if err := stF.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	var other Result
	stO, err := NewRunner().StartFeed(&other, 4, policy, nil, Options{}) // different capacity
	if err != nil {
		t.Fatal(err)
	}
	if err := stO.Restore(&snap); err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("mismatched Restore error = %v", err)
	}
}

// FuzzStepperSnapshotRoundTrip guards the checkpoint boundary the way the
// workload fuzzers guard the generator and trace codecs: snapshot at an
// arbitrary event of an arbitrary generated run, restore into a fresh
// Runner, drive both to completion, and require bit-identical Results and
// identical post-snapshot sink rows.
func FuzzStepperSnapshotRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(20), uint16(7), uint8(0))
	f.Add(int64(99), uint8(1), uint16(0), uint8(1))
	f.Add(int64(-4), uint8(120), uint16(500), uint8(2))
	f.Add(int64(7777), uint8(64), uint16(65535), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, cut uint16, sel uint8) {
		count := 1 + int(n)%128
		arrivals, err := workload.GenerateArrivals(workload.ArrivalConfig{
			Class:   workload.Uniform,
			P:       8,
			Process: workload.Poisson,
			Rate:    1 + float64(sel%8),
		}, count, seed)
		if err != nil {
			t.Skip()
		}
		opts := Options{}
		switch sel % 3 {
		case 1:
			m, err := speedup.ParseModel("powerlaw:0.8")
			if err != nil {
				t.Fatal(err)
			}
			opts.Model = m
		case 2:
			m, err := speedup.ParseModel("platform:8@0,3@10,8@25")
			if err != nil {
				t.Fatal(err)
			}
			opts.Model = m
		}
		policy, err := PolicyByName("wdeq")
		if err != nil {
			t.Fatal(err)
		}

		var resA Result
		sinkA := &captureSink{}
		stA, err := NewRunner().StartFeed(&resA, 8, policy, sinkA, opts)
		if err != nil {
			t.Fatal(err)
		}
		feedAll(t, stA, arrivals)
		stepN(t, stA, int(cut))
		rowsAtCut := len(sinkA.rows)

		var snap StepperSnapshot
		if err := stA.Snapshot(&snap); err != nil {
			t.Fatal(err)
		}

		var resB Result
		sinkB := &captureSink{}
		stB, err := NewRunner().StartFeed(&resB, 8, policy, sinkB, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := stB.Restore(&snap); err != nil {
			t.Fatal(err)
		}

		for _, st := range []*Stepper{stA, stB} {
			if _, err := st.StepUntil(math.Inf(1)); err != nil {
				t.Fatal(err)
			}
			if err := st.Finish(); err != nil {
				t.Fatal(err)
			}
		}
		if !aggregateEqual(&resA, &resB) {
			t.Fatalf("restored run diverges:\n%+v\nvs\n%+v", resB, resA)
		}
		tail := sinkA.rows[rowsAtCut:]
		if len(tail) != len(sinkB.rows) {
			t.Fatalf("restored run emitted %d rows, original emitted %d after the cut", len(sinkB.rows), len(tail))
		}
		for i := range tail {
			if tail[i] != sinkB.rows[i] {
				t.Fatalf("row %d differs: %+v vs %+v", i, sinkB.rows[i], tail[i])
			}
		}
	})
}
