package engine

import (
	"testing"

	"github.com/malleable-sched/malleable/internal/workload"
)

// allocArrivals draws a fixed Poisson stream large enough that per-event
// behavior dominates any per-run bookkeeping.
func allocArrivals(t testing.TB, n int, seed int64) []Arrival {
	t.Helper()
	arrivals, err := workload.GenerateArrivals(workload.ArrivalConfig{
		Class:   workload.Uniform,
		P:       8,
		Process: workload.Poisson,
		Rate:    8,
	}, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return arrivals
}

// The tentpole property of the zero-allocation refactor: once a Runner's
// scratch has been warmed by one run, re-running the same workload into a
// reused Result performs no heap allocation at all — zero allocs per run,
// hence zero allocs per steady-state event — under the default LinearCap
// model, for every non-clairvoyant bundled policy including the rank-scratch
// priority policy (whose scratch lives in the per-run clone).
func TestSteadyStateZeroAllocsPerEvent(t *testing.T) {
	arrivals := allocArrivals(t, 512, 99)
	priority := make([]int, len(arrivals))
	for i := range priority {
		priority[i] = len(arrivals) - 1 - i
	}
	policies := map[string]Policy{
		"wdeq":          WDEQPolicy{},
		"weight-greedy": WeightGreedyPolicy{},
		"priority":      PriorityPolicy{Priority: priority},
	}
	for name, policy := range policies {
		t.Run(name, func(t *testing.T) {
			runner := NewRunner()
			res := &Result{}
			var runErr error
			run := func() {
				if err := runner.RunInto(res, 8, policy, arrivals, Options{}); err != nil {
					runErr = err
				}
			}
			run() // warm the scratch buffers
			if runErr != nil {
				t.Fatal(runErr)
			}
			events := res.Events
			if events < len(arrivals) {
				t.Fatalf("events = %d, want at least one per task (%d)", events, len(arrivals))
			}
			allocs := testing.AllocsPerRun(10, run)
			if runErr != nil {
				t.Fatal(runErr)
			}
			if allocs != 0 {
				t.Errorf("steady-state run allocated %.3g times (%d events, %.3g allocs/event); want 0",
					allocs, events, allocs/float64(events))
			}
		})
	}
}

// Tracing is the documented exception to the zero-allocation contract: with
// TraceDecisions on, each event copies the alive set and allocation. The
// default must stay off and record nothing.
func TestTraceDecisionsGate(t *testing.T) {
	arrivals := allocArrivals(t, 32, 5)
	policy, err := PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWithOptions(8, policy, arrivals, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 0 {
		t.Errorf("default run recorded %d decisions, want 0", len(res.Decisions))
	}
	traced, err := RunWithOptions(8, policy, arrivals, Options{TraceDecisions: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Decisions) != traced.Events {
		t.Errorf("traced run recorded %d decisions for %d events", len(traced.Decisions), traced.Events)
	}
}

// A reused Runner must reproduce the one-shot package-level Run exactly, for
// every bundled policy, including across policy switches (which invalidate
// the cached per-run policy clone).
func TestRunnerReuseMatchesFreshRuns(t *testing.T) {
	arrivals := allocArrivals(t, 256, 11)
	runner := NewRunner()
	res := &Result{}
	for pass := 0; pass < 2; pass++ {
		for _, name := range PolicyNames() {
			policy, err := PolicyByName(name)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Run(8, policy, arrivals)
			if err != nil {
				t.Fatal(err)
			}
			if err := runner.RunInto(res, 8, policy, arrivals, Options{}); err != nil {
				t.Fatal(err)
			}
			if res.WeightedFlow != fresh.WeightedFlow || res.Makespan != fresh.Makespan ||
				res.Events != fresh.Events || res.MaxAlive != fresh.MaxAlive {
				t.Errorf("pass %d, %s: reused runner (wf=%g mk=%g ev=%d ma=%d) differs from fresh run (wf=%g mk=%g ev=%d ma=%d)",
					pass, name, res.WeightedFlow, res.Makespan, res.Events, res.MaxAlive,
					fresh.WeightedFlow, fresh.Makespan, fresh.Events, fresh.MaxAlive)
			}
			for i := range res.Tasks {
				if res.Tasks[i] != fresh.Tasks[i] {
					t.Fatalf("pass %d, %s: task %d metrics differ: %+v vs %+v", pass, name, i, res.Tasks[i], fresh.Tasks[i])
				}
			}
		}
	}
}

// A reused Runner must not panic when the policy wraps an uncomparable value
// (the clone cache compares policy values to detect reuse; comparability is a
// property of the dynamic value, not just the type).
func TestRunnerReuseUncomparablePolicy(t *testing.T) {
	arrivals := allocArrivals(t, 16, 8)
	// PriorityPolicy holds a rank slice, so the value is uncomparable even
	// though other policy types are comparable.
	policy := PriorityPolicy{Priority: []int{0, 1, 2}}
	runner := NewRunner()
	for i := 0; i < 3; i++ {
		if _, err := runner.Run(8, policy, arrivals); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

// The checkpoint primitive inherits the zero-allocation contract: once a
// StepperSnapshot's buffers have been warmed by one capture at a similar
// backlog, repeated Snapshot and Restore calls allocate nothing — the
// property that lets the speculative cluster coordinator checkpoint at every
// speculated dispatch boundary without perturbing the alloc gates.
func TestSnapshotRestoreZeroAllocsWarmed(t *testing.T) {
	arrivals := allocArrivals(t, 256, 123)
	policy, err := PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	st, err := NewRunner().StartFeed(&res, 8, policy, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals {
		if err := st.Feed(a); err != nil {
			t.Fatal(err)
		}
	}
	// Park mid-run, where the live set and feed queue are both non-trivial.
	for i := 0; i < 120; i++ {
		if ok, err := st.Step(); err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
	}
	var snap StepperSnapshot
	var opErr error
	if opErr = st.Snapshot(&snap); opErr != nil { // warm the snapshot buffers
		t.Fatal(opErr)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if err := st.Snapshot(&snap); err != nil {
			opErr = err
		}
	}); opErr != nil || allocs != 0 {
		t.Errorf("warmed Snapshot allocated %.3g times (err=%v); want 0", allocs, opErr)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if err := st.Restore(&snap); err != nil {
			opErr = err
		}
	}); opErr != nil || allocs != 0 {
		t.Errorf("warmed Restore allocated %.3g times (err=%v); want 0", allocs, opErr)
	}
	// The restored stepper is still a correct run: drive it home.
	st.CloseFeed()
	for {
		ok, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if err := st.Finish(); err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(arrivals) {
		t.Fatalf("completed %d tasks after rollback, want %d", res.Completed, len(arrivals))
	}
}

// Unsorted arrival streams must be handled (sorted internally) and produce
// the same outcome as the pre-sorted stream.
func TestUnsortedArrivalsSorted(t *testing.T) {
	arrivals := allocArrivals(t, 64, 21)
	shuffled := make([]Arrival, len(arrivals))
	// Reverse is the worst case for the presorted fast path.
	for i := range arrivals {
		shuffled[i] = arrivals[len(arrivals)-1-i]
	}
	policy, err := PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(8, policy, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(8, policy, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if a.WeightedFlow != b.WeightedFlow || a.Makespan != b.Makespan || a.Events != b.Events {
		t.Errorf("reversed stream diverges: wf %g vs %g, mk %g vs %g, events %d vs %d",
			b.WeightedFlow, a.WeightedFlow, b.Makespan, a.Makespan, b.Events, a.Events)
	}
}
