package engine

import "math"

// Snapshot is the alloc-free view of a run a Probe observes at the
// Stepper's rest state. Every field is a scalar copied out of the Runner's
// existing scratch and the run's Result, so assembling one costs a handful
// of register moves and no heap allocation — the zero-allocation contract of
// the event loop extends through the probe hook.
//
// A snapshot is taken only at the rest state ("all events at times <= Now
// processed, an allocation decided for the current alive set"), which makes
// it internally consistent: Backlog, Allocated, Completed and the flow sums
// all describe the same instant of virtual time. Per-tenant views are not
// part of the snapshot — they live in the run's MetricSink (typically an
// AggregateSink), which a probe may share with the run and read between
// events, since sinks and probes are both invoked from the engine goroutine.
type Snapshot struct {
	// Now is the stepper's virtual time.
	Now float64
	// Backlog is the number of alive tasks (the live queue depth).
	Backlog int
	// Admitted is the number of arrivals admitted so far.
	Admitted int
	// Completed is the number of tasks retired so far.
	Completed int
	// Events is the number of policy invocations so far.
	Events int
	// MaxAlive is the peak backlog observed so far.
	MaxAlive int
	// Allocated is the capacity the policy handed out at the current
	// decision (0 while the stepper is idle or done).
	Allocated float64
	// WeightedFlow is Σ w_i·F_i over the completed tasks so far.
	WeightedFlow float64
	// TotalFlow is Σ F_i over the completed tasks so far.
	TotalFlow float64
	// Done reports that this is the run's final snapshot: the stream is
	// exhausted and the last task has retired. Every probed run ends with
	// exactly one Done snapshot, so samplers always capture the endpoint.
	Done bool
}

// Throughput returns completed tasks per unit of virtual time so far (0 at
// time zero).
func (s Snapshot) Throughput() float64 {
	if s.Now <= 0 {
		return 0
	}
	return float64(s.Completed) / s.Now
}

// MeanFlow returns the mean flow time of the completed tasks so far (0 when
// none completed).
func (s Snapshot) MeanFlow() float64 {
	if s.Completed == 0 {
		return 0
	}
	return s.TotalFlow / float64(s.Completed)
}

// Probe observes a running engine at configurable intervals — the
// instrumentation half of the observability plane (internal/obs has the
// bundled implementations: metrics collectors, timeline recorders).
//
// ObserveSnapshot is called from the engine goroutine at the stepper's rest
// state, after the event's admissions, retirements and policy decision are
// committed; the run is suspended for exactly the duration of the call, so
// implementations must be fast and must not allocate in steady state if the
// run's zero-allocation property matters to the caller. The snapshot is a
// value; retaining it is safe and free.
//
// Probes are per-run (or per-shard) observers like MetricSinks: the engine
// never calls a probe from more than one goroutine, but a probe attached to
// several concurrent shards must synchronize internally (the bundled
// collectors use atomics for exactly that reason).
type Probe interface {
	ObserveSnapshot(s Snapshot)
}

// ProbeFunc adapts a plain function to the Probe interface.
type ProbeFunc func(s Snapshot)

// ObserveSnapshot calls f(s).
func (f ProbeFunc) ObserveSnapshot(s Snapshot) { f(s) }

// MultiProbe fans every snapshot out to each probe in order, mirroring
// MultiSink: a run takes one Options.Probe, so attaching a collector AND a
// timeline goes through here. Nil entries are skipped; an empty MultiProbe
// discards everything.
func MultiProbe(probes ...Probe) Probe {
	return multiProbe(probes)
}

type multiProbe []Probe

func (m multiProbe) ObserveSnapshot(s Snapshot) {
	for _, p := range m {
		if p != nil {
			p.ObserveSnapshot(s)
		}
	}
}

// snapshot assembles the probe view from the stepper's rest state.
func (st *Stepper) snapshot() Snapshot {
	return Snapshot{
		Now:          st.now,
		Backlog:      len(st.r.live),
		Admitted:     st.admitted,
		Completed:    st.res.Completed,
		Events:       st.res.Events,
		MaxAlive:     st.res.MaxAlive,
		Allocated:    st.Allocated(),
		WeightedFlow: st.res.WeightedFlow,
		TotalFlow:    st.res.TotalFlow,
		Done:         st.done,
	}
}

// observeProbe fires the configured probe if an interval threshold was
// crossed by the event that just committed. Threshold semantics:
//
//   - ProbeEveryEvents k > 0: fire when at least k policy events have
//     happened since the last firing.
//   - ProbeInterval d > 0: fire at the first event at or after each multiple
//     of d on the virtual-time grid. The engine never injects events, so a
//     quiet stretch of the run yields one sample at its first event, not a
//     backlog of catch-up samples.
//   - Neither configured: fire at every event.
//   - The final event additionally always fires (Snapshot.Done), whatever
//     the intervals, so the run's endpoint is never lost to sampling.
func (st *Stepper) observeProbe() {
	fire := false
	switch {
	case st.probeEveryEvents > 0:
		fire = st.res.Events-st.probeLastEvents >= st.probeEveryEvents
	case st.probeInterval > 0:
		// Handled below so both intervals may be combined.
	default:
		fire = st.probeInterval <= 0
	}
	if !fire && st.probeInterval > 0 && st.now >= st.probeNext {
		fire = true
	}
	if st.done && !st.probeFinal {
		fire = true
	}
	if !fire {
		return
	}
	st.probe.ObserveSnapshot(st.snapshot())
	st.probeLastEvents = st.res.Events
	if st.probeInterval > 0 && st.now >= st.probeNext {
		// Advance to the smallest grid multiple strictly after now, so a
		// clock jump across several intervals emits one sample, not many.
		st.probeNext = st.probeInterval * (math.Floor(st.now/st.probeInterval) + 1)
	}
	if st.done {
		st.probeFinal = true
	}
}
