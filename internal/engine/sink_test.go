package engine

import (
	"math"
	"testing"
)

// recordSink appends every observed task ID, so tests can check fan-out
// order.
type recordSink struct{ ids []int }

func (r *recordSink) Observe(m TaskMetrics) { r.ids = append(r.ids, m.ID) }

// MultiSink with zero children (and with only nil children) is a valid
// discard-everything sink, and non-nil children see every observation in
// declaration order.
func TestMultiSinkEdgeCases(t *testing.T) {
	m := TaskMetrics{ID: 7, Tenant: 1, Flow: 2.5, Weight: 2}

	// Zero children: observing must be a safe no-op.
	MultiSink().Observe(m)
	// All-nil children likewise.
	MultiSink(nil, nil).Observe(m)

	// nil entries are skipped without disturbing their siblings.
	a, b := &recordSink{}, &recordSink{}
	fan := MultiSink(a, nil, b)
	fan.Observe(m)
	fan.Observe(TaskMetrics{ID: 8})
	for name, got := range map[string][]int{"first": a.ids, "last": b.ids} {
		if len(got) != 2 || got[0] != 7 || got[1] != 8 {
			t.Errorf("%s child saw %v, want [7 8]", name, got)
		}
	}
}

// Merging empty and nil sketch sinks must neither error nor disturb the
// receiver; merging into an empty receiver adopts the argument exactly.
func TestSketchSinkMergeEmpty(t *testing.T) {
	full := NewSketchSink(0)
	for i := 1; i <= 1000; i++ {
		full.Observe(TaskMetrics{Flow: float64(i)})
	}
	p50, p99 := full.Quantile(0.5), full.Quantile(0.99)

	// Empty argument: receiver unchanged, bit for bit on the quantiles.
	if err := full.Merge(NewSketchSink(0)); err != nil {
		t.Fatal(err)
	}
	if full.Sketch.Count() != 1000 || full.Quantile(0.5) != p50 || full.Quantile(0.99) != p99 {
		t.Errorf("empty merge disturbed the receiver: count=%d p50=%g p99=%g",
			full.Sketch.Count(), full.Quantile(0.5), full.Quantile(0.99))
	}
	// nil argument is the documented no-op.
	if err := full.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if full.Sketch.Count() != 1000 {
		t.Errorf("nil merge disturbed the receiver: count=%d", full.Sketch.Count())
	}

	// Empty receiver adopts the argument: same count and quantiles.
	empty := NewSketchSink(0)
	if err := empty.Merge(full); err != nil {
		t.Fatal(err)
	}
	if empty.Sketch.Count() != 1000 || empty.Quantile(0.5) != p50 || empty.Quantile(0.99) != p99 {
		t.Errorf("merge into empty lost data: count=%d p50=%g p99=%g",
			empty.Sketch.Count(), empty.Quantile(0.5), empty.Quantile(0.99))
	}

	// Empty into empty stays empty, and quantiles of nothing are NaN — the
	// "no data" signal, not a fake zero.
	e1, e2 := NewSketchSink(0), NewSketchSink(0)
	if err := e1.Merge(e2); err != nil {
		t.Fatal(err)
	}
	if e1.Sketch.Count() != 0 || !math.IsNaN(e1.Quantile(0.5)) {
		t.Errorf("empty/empty merge: count=%d p50=%g, want 0 and NaN", e1.Sketch.Count(), e1.Quantile(0.5))
	}

	// Mismatched accuracies must refuse to merge.
	if err := full.Merge(NewSketchSink(0.01)); err == nil {
		t.Error("merge across alphas accepted")
	}
}

// AggregateSink's nil/empty merges are no-ops, and FlowSummary of empty
// sinks is the zero summary rather than a panic.
func TestAggregateSinkMergeEmpty(t *testing.T) {
	agg := NewAggregateSink()
	agg.Observe(TaskMetrics{ID: 0, Tenant: 2, Flow: 3, Weight: 2})
	agg.Observe(TaskMetrics{ID: 1, Tenant: 0, Flow: 1, Weight: 1})

	agg.Merge(nil)
	agg.Merge(NewAggregateSink())
	if agg.Tasks() != 2 || agg.WeightedFlow() != 7 || agg.MeanFlow() != 2 {
		t.Errorf("empty merges disturbed the receiver: tasks=%d weighted=%g mean=%g",
			agg.Tasks(), agg.WeightedFlow(), agg.MeanFlow())
	}
	perTenant := agg.PerTenant()
	if len(perTenant) != 2 || perTenant[0].Tenant != 0 || perTenant[1].Tenant != 2 {
		t.Errorf("per-tenant rows %+v, want tenants 0 and 2 in order", perTenant)
	}

	// Empty receiver adopts the argument.
	fresh := NewAggregateSink()
	fresh.Merge(agg)
	if fresh.Tasks() != 2 || fresh.WeightedFlow() != 7 {
		t.Errorf("merge into empty lost data: tasks=%d weighted=%g", fresh.Tasks(), fresh.WeightedFlow())
	}

	// FlowSummary degrades to the zero summary on missing or empty inputs.
	if s := FlowSummary(nil, nil); s.Count != 0 {
		t.Errorf("FlowSummary(nil, nil) = %+v", s)
	}
	if s := FlowSummary(NewAggregateSink(), NewSketchSink(0)); s.Count != 0 {
		t.Errorf("FlowSummary of empty sinks = %+v", s)
	}
}
