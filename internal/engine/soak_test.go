package engine

import (
	"runtime"
	"testing"

	"github.com/malleable-sched/malleable/internal/workload"
)

// soakConfig keeps the offered load just below capacity so the alive set
// stays small and the run is completion-bound, which is the regime the
// O(alive) memory claim is about.
func soakConfig() workload.ArrivalConfig {
	return workload.ArrivalConfig{
		Class: workload.Uniform, P: 8, Process: workload.Poisson, Rate: 12,
		Tenants: []workload.TenantSpec{
			{Name: "gold", Weight: 4, Share: 0.2},
			{Name: "bronze", Weight: 1, Share: 0.8},
		},
	}
}

// The soak acceptance test of the streaming refactor: driving ≥1M streamed
// arrivals through the engine must leave the live heap where it started —
// the run's working set is the alive tasks plus the fixed-size sinks, not
// the stream length — and the streamed results must match the slice path on
// a shorter prefix of the same workload.
func TestStreamSoakBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test drives 1M arrivals; skipped with -short")
	}
	const n = 1_000_000
	cfg := soakConfig()

	runner := NewRunner()
	agg := NewAggregateSink()
	sk := NewSketchSink(0)
	sink := MultiSink(agg, sk)
	res := &Result{}

	// Warm scratch, sink slots and sketch window on a short prefix so the
	// measured window only sees steady-state behavior.
	warm, err := workload.NewStream(cfg, 50_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := runner.RunStreamInto(res, cfg.P, WDEQPolicy{}, warm, sink, Options{}); err != nil {
		t.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	stream, err := workload.NewStream(cfg, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	agg.Reset()
	sk.Reset()
	if err := runner.RunStreamInto(res, cfg.P, WDEQPolicy{}, stream, sink, Options{}); err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Fatalf("completed %d of %d", res.Completed, n)
	}
	if agg.Tasks() != n || sk.Sketch.Count() != n {
		t.Fatalf("sinks observed %d/%d tasks, want %d", agg.Tasks(), sk.Sketch.Count(), n)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	// The live heap may wiggle by runtime bookkeeping, but a retained-table
	// regression costs ~80 bytes per task ≈ 80 MB here. A single-megabyte
	// bound leaves two orders of magnitude of slack on both sides.
	const bound = 1 << 20
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > bound {
		t.Errorf("live heap grew by %d bytes over a %d-task streamed run (bound %d): the run retained per-task state", grew, n, bound)
	}

	// Cumulative allocation is the softer half of the contract: the warmed
	// engine+sinks allocate nothing per task, and the generator is
	// allocation-free too, so total allocated bytes across the entire 1M-task
	// run must stay far below one byte per task.
	if total := int64(after.TotalAlloc) - int64(before.TotalAlloc); total > n/2 {
		t.Errorf("streamed run allocated %d bytes cumulatively (%.3g bytes/task); the steady state should allocate none", total, float64(total)/n)
	}

	// Prefix equivalence: the first 10k tasks of the same workload, run both
	// ways, must agree row for row.
	const prefix = 10_000
	arrivals, err := workload.GenerateArrivals(cfg, prefix, 7)
	if err != nil {
		t.Fatal(err)
	}
	slice, err := Run(cfg.P, WDEQPolicy{}, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	short, err := workload.NewStream(cfg, prefix, 7)
	if err != nil {
		t.Fatal(err)
	}
	full := NewFullSink(prefix)
	streamRes, err := RunStream(cfg.P, WDEQPolicy{}, short, full)
	if err != nil {
		t.Fatal(err)
	}
	if streamRes.WeightedFlow != slice.WeightedFlow || streamRes.Makespan != slice.Makespan ||
		streamRes.Events != slice.Events || streamRes.Completed != slice.Completed {
		t.Errorf("prefix aggregates differ: %+v vs %+v", streamRes, slice)
	}
	for i := range slice.Tasks {
		if full.Tasks[i] != slice.Tasks[i] {
			t.Fatalf("prefix task %d differs: %+v vs %+v", i, full.Tasks[i], slice.Tasks[i])
		}
	}
}
