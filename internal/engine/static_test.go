package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/speedup"
)

func mustInstance(t *testing.T, p float64, tasks []schedule.Task) *schedule.Instance {
	t.Helper()
	inst, err := schedule.NewInstance(p, tasks)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

func randomInstance(rng *rand.Rand, n int, p float64) *schedule.Instance {
	tasks := make([]schedule.Task, n)
	for i := range tasks {
		tasks[i] = schedule.Task{
			Weight: 0.05 + 0.95*rng.Float64(),
			Volume: 0.05 + 0.95*rng.Float64(),
			Delta:  0.05 + (p-0.05)*rng.Float64(),
		}
	}
	return &schedule.Instance{P: p, Tasks: tasks}
}

// The engine is the library's single kernel: replaying a static instance
// through RunStatic with the WDEQ policy must reproduce the direct offline
// WDEQ implementation of internal/core exactly, and the schedule
// reconstructed from the decision trace must be valid.
func TestRunStaticWDEQMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng, 1+rng.Intn(6), float64(1+rng.Intn(4)))
		res, err := RunStatic(inst, WDEQPolicy{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Schedule == nil {
			t.Fatal("linear static run built no schedule")
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("invalid: %v", err)
		}
		direct, err := core.RunWDEQ(inst)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.ApproxEqualTol(res.Schedule.WeightedCompletionTime(), direct.WeightedCompletionTime(), 1e-6) {
			t.Errorf("engine %g vs direct %g", res.Schedule.WeightedCompletionTime(), direct.WeightedCompletionTime())
		}
		if !numeric.ApproxEqualTol(res.WeightedCompletion, direct.WeightedCompletionTime(), 1e-6) {
			t.Errorf("engine metrics %g vs direct %g", res.WeightedCompletion, direct.WeightedCompletionTime())
		}
	}
}

// Property form of the same equivalence, over arbitrary random instances.
func TestQuickStaticEngineEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 1+rng.Intn(6), float64(1+rng.Intn(4)))
		res, err := RunStatic(inst, WDEQPolicy{}, Options{})
		if err != nil {
			return false
		}
		direct, err := core.RunWDEQ(inst)
		if err != nil {
			return false
		}
		for i := 0; i < inst.N(); i++ {
			if !numeric.ApproxEqualTol(res.Schedule.CompletionTime(i), direct.CompletionTime(i), 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRunStaticPriorityPolicy(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 2},
		{Weight: 1, Volume: 2, Delta: 2},
	})
	// Task 1 has the highest priority (rank 0).
	res, err := RunStatic(inst, PriorityPolicy{Priority: []int{1, 0}, Label: "prio"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if !numeric.ApproxEqual(res.Schedule.CompletionTime(1), 1) || !numeric.ApproxEqual(res.Schedule.CompletionTime(0), 2) {
		t.Errorf("completions = %v, want task 1 first", res.Schedule.CompletionTimes())
	}
	if res.Policy != "prio" {
		t.Errorf("label not used: %q", res.Policy)
	}
	if (PriorityPolicy{}).Name() != "priority" {
		t.Errorf("default name wrong")
	}
}

// Property: a priority policy driven by Smith's order always yields a valid
// schedule and respects the degree bounds (checked through schedule
// validation).
func TestQuickPriorityPolicyValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 1+rng.Intn(6), float64(1+rng.Intn(4)))
		priority := make([]int, inst.N())
		for rank, task := range inst.SmithOrder() {
			priority[task] = rank
		}
		res, err := RunStatic(inst, PriorityPolicy{Priority: priority, Label: "smith"}, Options{})
		if err != nil {
			return false
		}
		return res.Schedule.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Non-linear models cannot be rendered as a ColumnSchedule (profiles would
// not integrate to the volumes): RunStatic must still report engine metrics
// but leave the schedule nil.
func TestRunStaticNonLinearNoSchedule(t *testing.T) {
	inst := mustInstance(t, 4, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 4},
		{Weight: 1, Volume: 2, Delta: 4},
	})
	res, err := RunStatic(inst, WDEQPolicy{}, Options{Model: speedup.PowerLaw{Alpha: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule != nil {
		t.Errorf("non-linear static run built a schedule")
	}
	if res.Model != "powerlaw" {
		t.Errorf("model = %q, want powerlaw", res.Model)
	}
	linear, err := RunStatic(inst, WDEQPolicy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Each task holds 2 processors: concave rate 2^0.5 < 2, so the run is
	// strictly slower than under the linear model.
	if res.Makespan <= linear.Makespan {
		t.Errorf("concave makespan %g not slower than linear %g", res.Makespan, linear.Makespan)
	}
}

// RunStatic forces the trace internally to rebuild the schedule; the caller's
// TraceDecisions choice must still control what the result carries.
func TestRunStaticTraceControl(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 1, Delta: 1},
		{Weight: 2, Volume: 1, Delta: 2},
	})
	quiet, err := RunStatic(inst, WDEQPolicy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Schedule == nil || len(quiet.Decisions) != 0 {
		t.Errorf("untraced run: schedule=%v decisions=%d, want schedule and no trace", quiet.Schedule != nil, len(quiet.Decisions))
	}
	traced, err := RunStatic(inst, WDEQPolicy{}, Options{TraceDecisions: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Decisions) != traced.Events {
		t.Errorf("traced run recorded %d decisions for %d events", len(traced.Decisions), traced.Events)
	}
}

// badPolicy violates the capacity constraint to exercise the engine's guard
// on the static path too.
type badPolicy struct{}

func (badPolicy) Name() string { return "bad" }
func (badPolicy) Allocate(p float64, alive []TaskState, dst []float64) []float64 {
	for range alive {
		dst = append(dst, p) // every task asks for the whole platform
	}
	return dst
}

func TestRunStaticRejectsBadPolicies(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 1, Delta: 2},
		{Weight: 1, Volume: 1, Delta: 2},
	})
	if _, err := RunStatic(inst, badPolicy{}, Options{}); err == nil {
		t.Errorf("over-allocation not detected")
	}
	if _, err := RunStatic(inst, starvingPolicy{}, Options{}); err == nil {
		t.Errorf("starvation not detected")
	}
	bad := &schedule.Instance{P: 1, Tasks: nil}
	if _, err := RunStatic(bad, WDEQPolicy{}, Options{}); err == nil {
		t.Errorf("invalid instance accepted")
	}
}
