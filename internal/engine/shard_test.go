package engine

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
)

// poissonSource draws a small Poisson-ish stream deterministically from the
// shard seed (the real generator lives in internal/workload, which the engine
// must not depend on).
func poissonSource(n int) ArrivalSource {
	return func(shard int, seed int64) ([]Arrival, error) {
		rng := rand.New(rand.NewSource(seed))
		arrivals := make([]Arrival, n)
		now := 0.0
		for i := range arrivals {
			now += rng.ExpFloat64() / 4
			arrivals[i] = Arrival{
				Task: schedule.Task{
					Weight: 0.1 + rng.Float64(),
					Volume: 0.1 + rng.Float64(),
					Delta:  0.5 + rng.Float64(),
				},
				Release: now,
				Tenant:  i % 2,
			}
		}
		return arrivals, nil
	}
}

// Two sharded runs with the same seed must be exactly identical — the
// determinism contract `mwct loadtest` relies on.
func TestRunShardsDeterministic(t *testing.T) {
	src := poissonSource(80)
	a, err := RunShards(2, WDEQPolicy{}, src, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShards(2, WDEQPolicy{}, src, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sharded runs with the same seed differ:\n%+v\nvs\n%+v", a, b)
	}
	if len(a.Shards) != 4 || a.TotalTasks != 320 {
		t.Errorf("shards=%d tasks=%d, want 4 shards x 80 tasks", len(a.Shards), a.TotalTasks)
	}
}

// A different base seed must produce different streams (the derivation is not
// degenerate), and distinct shards of one run must not share a seed.
func TestShardSeedsDecorrelated(t *testing.T) {
	seen := map[int64]bool{}
	for s := 0; s < 16; s++ {
		seed := ShardSeed(1, s)
		if seen[seed] {
			t.Fatalf("shard %d repeats seed %d", s, seed)
		}
		seen[seed] = true
	}
	if ShardSeed(1, 0) == ShardSeed(2, 0) {
		t.Errorf("base seeds 1 and 2 collide on shard 0")
	}
	src := poissonSource(40)
	a, err := RunShards(2, WDEQPolicy{}, src, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShards(2, WDEQPolicy{}, src, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.WeightedFlow == b.WeightedFlow {
		t.Errorf("different base seeds produced identical weighted flow %g", a.WeightedFlow)
	}
}

// The merged aggregates must equal what a direct fold over the shard results
// produces, and the merged tenant accumulators must match an exact
// recomputation over every task.
func TestMergeShardsConsistency(t *testing.T) {
	res, err := RunShards(2, WDEQPolicy{}, poissonSource(60), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	var tasks, events int
	var wf, mk float64
	tenantFlow := map[int][]float64{}
	for _, run := range res.Shards {
		tasks += len(run.Result.Tasks)
		events += run.Result.Events
		wf += run.Result.WeightedFlow
		if run.Result.Makespan > mk {
			mk = run.Result.Makespan
		}
		for _, tm := range run.Result.Tasks {
			tenantFlow[tm.Tenant] = append(tenantFlow[tm.Tenant], tm.Flow)
		}
	}
	if res.TotalTasks != tasks || res.Events != events || res.Makespan != mk {
		t.Errorf("merged tasks/events/makespan = %d/%d/%g, want %d/%d/%g",
			res.TotalTasks, res.Events, res.Makespan, tasks, events, mk)
	}
	if !numeric.ApproxEqualTol(res.WeightedFlow, wf, 1e-9) {
		t.Errorf("merged weighted flow %g, want %g", res.WeightedFlow, wf)
	}
	if res.Flow.Count != tasks {
		t.Errorf("flow summary over %d samples, want %d", res.Flow.Count, tasks)
	}
	if len(res.PerTenant) != len(tenantFlow) {
		t.Fatalf("merged %d tenants, want %d", len(res.PerTenant), len(tenantFlow))
	}
	for _, tm := range res.PerTenant {
		flows := tenantFlow[tm.Tenant]
		var sum, max float64
		for _, f := range flows {
			sum += f
			if f > max {
				max = f
			}
		}
		if tm.Tasks != len(flows) {
			t.Errorf("tenant %d: %d tasks, want %d", tm.Tenant, tm.Tasks, len(flows))
		}
		mean := sum / float64(len(flows))
		if !numeric.ApproxEqualTol(tm.MeanFlow, mean, 1e-9) {
			t.Errorf("tenant %d: mean flow %g, want %g", tm.Tenant, tm.MeanFlow, mean)
		}
		if tm.MaxFlow != max {
			t.Errorf("tenant %d: max flow %g, want %g", tm.Tenant, tm.MaxFlow, max)
		}
		// The merged Welford variance must match a direct two-pass
		// recomputation over all shards' samples.
		var sq float64
		for _, f := range flows {
			sq += (f - mean) * (f - mean)
		}
		std := math.Sqrt(sq / float64(len(flows)-1))
		if !numeric.ApproxEqualTol(tm.StdFlow, std, 1e-9) {
			t.Errorf("tenant %d: std flow %g, want %g", tm.Tenant, tm.StdFlow, std)
		}
	}
}

// Shard errors must surface, naming the failing shard.
func TestRunShardsPropagatesErrors(t *testing.T) {
	src := func(shard int, seed int64) ([]Arrival, error) {
		if shard == 2 {
			return nil, fmt.Errorf("boom")
		}
		return poissonSource(10)(shard, seed)
	}
	_, err := RunShards(2, WDEQPolicy{}, src, 4, 1)
	if err == nil {
		t.Fatal("shard error swallowed")
	}
	if _, err := RunShards(2, WDEQPolicy{}, poissonSource(10), 0, 1); err == nil {
		t.Fatal("zero shards accepted")
	}
}

// A panicking source must surface as a shard error, not crash the process
// (mwct serve runs shards on behalf of network clients).
func TestRunShardsRecoversPanics(t *testing.T) {
	src := func(shard int, seed int64) ([]Arrival, error) {
		if shard == 1 {
			panic("boom")
		}
		return poissonSource(10)(shard, seed)
	}
	_, err := RunShards(2, WDEQPolicy{}, src, 4, 1)
	if err == nil || !strings.Contains(err.Error(), "panic: boom") {
		t.Fatalf("err = %v, want shard panic error", err)
	}
}
