package engine

import (
	"sort"

	"github.com/malleable-sched/malleable/internal/stats"
)

// MetricSink consumes per-task outcomes as tasks retire from the event loop.
// It is the output half of the streaming contract: instead of the engine
// unconditionally retaining a TaskMetrics row per task (O(total tasks)
// memory), a run is handed a sink and decides what survives — a fixed-size
// aggregate, a quantile sketch, the full table, or nothing.
//
// Observe is called exactly once per completed task, from the engine
// goroutine, in completion order (ties in the retirement order of the alive
// scan). Sinks are not required to be safe for concurrent use: the sharded
// driver gives every shard its own sinks and merges them afterwards.
// Implementations must not retain references into the argument (it is a
// value, so this is automatic) and should not allocate per call in steady
// state — the engine's zero-allocation contract extends through the sink.
type MetricSink interface {
	Observe(m TaskMetrics)
}

// MultiSink fans every observation out to each sink in order. A nil entry is
// skipped; an empty MultiSink discards everything.
func MultiSink(sinks ...MetricSink) MetricSink {
	return multiSink(sinks)
}

type multiSink []MetricSink

func (m multiSink) Observe(t TaskMetrics) {
	for _, s := range m {
		if s != nil {
			s.Observe(t)
		}
	}
}

// tenantAgg is one tenant's slot of an AggregateSink.
type tenantAgg struct {
	flow     stats.Accumulator
	weighted float64
}

// AggregateSink is the constant-memory summary sink: per-tenant task counts,
// flow moments (Welford accumulators) and weighted flow, plus the same over
// all tasks. Its size is O(tenants), independent of how many tasks flow
// through it, and sinks from independent shards merge deterministically —
// it is the streaming replacement for folding Result.Tasks after the fact.
//
// The zero value is NOT ready; use NewAggregateSink. Not safe for concurrent
// use.
type AggregateSink struct {
	flow     stats.Accumulator
	weighted float64
	tenants  map[int]*tenantAgg
}

// NewAggregateSink returns an empty aggregate sink.
func NewAggregateSink() *AggregateSink {
	return &AggregateSink{tenants: map[int]*tenantAgg{}}
}

// Observe folds one completed task into the aggregates.
func (a *AggregateSink) Observe(m TaskMetrics) {
	a.flow.Add(m.Flow)
	a.weighted += m.Weight * m.Flow
	t := a.tenants[m.Tenant]
	if t == nil {
		t = &tenantAgg{}
		a.tenants[m.Tenant] = t
	}
	t.flow.Add(m.Flow)
	t.weighted += m.Weight * m.Flow
}

// ObserveResult folds a batch run's retained task table into the sink — the
// bridge that lets slice-path results feed the same aggregation (and the
// same shard merge) as streaming runs.
func (a *AggregateSink) ObserveResult(res *Result) {
	for _, m := range res.Tasks {
		a.Observe(m)
	}
}

// Tasks returns the number of observed tasks.
func (a *AggregateSink) Tasks() int { return a.flow.Count() }

// MeanFlow returns the mean flow time over all observed tasks (0 when
// empty).
func (a *AggregateSink) MeanFlow() float64 { return a.flow.Mean() }

// WeightedFlow returns Σ w_i·F_i over all observed tasks.
func (a *AggregateSink) WeightedFlow() float64 { return a.weighted }

// FlowStats returns a copy of the all-tasks flow accumulator, ready to merge
// with sketch quantiles into a stats.Summary.
func (a *AggregateSink) FlowStats() stats.Accumulator { return a.flow }

// Merge folds another aggregate sink into this one. Tenants are visited in
// ascending index order so the floating-point merge sequence — and therefore
// the merged report — is a pure function of the inputs, whatever goroutine
// interleaving produced the parts.
func (a *AggregateSink) Merge(b *AggregateSink) {
	if b == nil {
		return
	}
	a.flow.Merge(&b.flow)
	a.weighted += b.weighted
	ids := make([]int, 0, len(b.tenants))
	for id := range b.tenants {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		t := a.tenants[id]
		if t == nil {
			t = &tenantAgg{}
			a.tenants[id] = t
		}
		t.flow.Merge(&b.tenants[id].flow)
		t.weighted += b.tenants[id].weighted
	}
}

// PerTenant renders the per-tenant aggregates, sorted by tenant index.
func (a *AggregateSink) PerTenant() []TenantMetrics {
	out := make([]TenantMetrics, 0, len(a.tenants))
	for tenant, t := range a.tenants {
		out = append(out, TenantMetrics{
			Tenant:       tenant,
			Tasks:        t.flow.Count(),
			WeightedFlow: t.weighted,
			MeanFlow:     t.flow.Mean(),
			StdFlow:      t.flow.StdDev(),
			MaxFlow:      t.flow.Max(),
		})
	}
	sort.Sort(tenantMetricsByID(out))
	return out
}

// tenantMetricsByID sorts a tenant table by tenant index without the closure
// and reflection-swapper allocations of sort.Slice (the rankSorter idiom).
type tenantMetricsByID []TenantMetrics

func (s tenantMetricsByID) Len() int           { return len(s) }
func (s tenantMetricsByID) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s tenantMetricsByID) Less(i, j int) bool { return s[i].Tenant < s[j].Tenant }

// Reset empties the sink but keeps the tenant slots, so a warmed sink
// observes without allocating in steady state across reuses.
func (a *AggregateSink) Reset() {
	a.flow = stats.Accumulator{}
	a.weighted = 0
	for _, t := range a.tenants {
		*t = tenantAgg{}
	}
}

// SketchSink summarizes flow times in a fixed-size mergeable quantile sketch
// (stats.QuantileSketch): p50/p99 of a ten-million-task run survive without
// retaining a single per-task row, within the sketch's relative accuracy.
// Not safe for concurrent use.
type SketchSink struct {
	// Sketch is the underlying quantile sketch; exported so callers can
	// query any quantile or merge across shards.
	Sketch *stats.QuantileSketch
}

// NewSketchSink returns a sketch sink with relative accuracy alpha;
// alpha <= 0 selects stats.DefaultSketchAlpha.
func NewSketchSink(alpha float64) *SketchSink {
	if alpha <= 0 {
		alpha = stats.DefaultSketchAlpha
	}
	return &SketchSink{Sketch: stats.NewQuantileSketch(alpha)}
}

// Observe records the task's flow time.
func (s *SketchSink) Observe(m TaskMetrics) { s.Sketch.Add(m.Flow) }

// Merge folds another sketch sink into this one (same alpha required). A nil
// argument is a no-op, like the other sinks' Merge.
func (s *SketchSink) Merge(o *SketchSink) error {
	if o == nil {
		return nil
	}
	return s.Sketch.Merge(o.Sketch)
}

// Quantile returns the q-quantile estimate of the observed flow times.
func (s *SketchSink) Quantile(q float64) float64 { return s.Sketch.Quantile(q) }

// Reset empties the sink, keeping its storage.
func (s *SketchSink) Reset() { s.Sketch.Reset() }

// FlowSummary combines an aggregate sink's exact moments with a sketch
// sink's quantiles into the stats.Summary the batch paths compute from
// retained samples. Count, mean, stddev, min and max are exact; P50/P90/P99
// carry the sketch's relative-accuracy guarantee.
func FlowSummary(agg *AggregateSink, sk *SketchSink) stats.Summary {
	if agg == nil || sk == nil {
		return stats.Summary{}
	}
	acc := agg.FlowStats()
	return stats.SketchSummary(&acc, sk.Sketch)
}

// FullSink retains every TaskMetrics row, indexed by task ID — the
// O(total tasks) behavior that used to be unconditional, now an explicit
// choice. It is what static replay and the slice-path compatibility wrappers
// use; streaming callers should prefer the constant-memory sinks.
type FullSink struct {
	// Tasks holds one entry per observed task at index TaskMetrics.ID;
	// IDs not yet observed hold zero rows.
	Tasks []TaskMetrics
}

// NewFullSink returns an empty full-retention sink. capacity sizes the table
// up front when the task count is known (0 is fine).
func NewFullSink(capacity int) *FullSink {
	return &FullSink{Tasks: make([]TaskMetrics, 0, capacity)}
}

// Observe stores the row at its task ID, growing the table as needed.
func (f *FullSink) Observe(m TaskMetrics) {
	for len(f.Tasks) <= m.ID {
		f.Tasks = append(f.Tasks, TaskMetrics{})
	}
	f.Tasks[m.ID] = m
}

// Reset empties the table, keeping its storage.
func (f *FullSink) Reset() { f.Tasks = f.Tasks[:0] }

// resultSink writes rows into a pre-sized Result.Tasks table — the internal
// sink behind the slice entry points, which know n up front and must stay
// allocation-free on reuse.
type resultSink struct {
	tasks []TaskMetrics
}

func (r *resultSink) Observe(m TaskMetrics) { r.tasks[m.ID] = m }
