package engine

import (
	"math"
	"strings"
	"testing"

	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/speedup"
	"github.com/malleable-sched/malleable/internal/stepfunc"
)

func mustProfile(t *testing.T, times, values []float64) *stepfunc.StepFunc {
	t.Helper()
	f, err := stepfunc.FromSteps(times, values)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// A single task holding q processors under PowerLaw{0.5} runs at rate √q:
// the completion time is hand-computable.
func TestPowerLawCompletionTime(t *testing.T) {
	arrivals := []Arrival{{Task: task(1, 2, 4)}}
	res, err := RunWithOptions(4, WDEQPolicy{}, arrivals, Options{Model: speedup.PowerLaw{Alpha: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	// WDEQ hands the lone task min(δ, P) = 4 processors; rate = 4^0.5 = 2,
	// so 2 units of volume complete at t = 1.
	if got := res.Tasks[0].Completion; !numeric.ApproxEqualTol(got, 1, 1e-9) {
		t.Errorf("completion = %g, want 1", got)
	}
	if res.Model != "powerlaw" {
		t.Errorf("result model = %q", res.Model)
	}
}

// Amdahl's law: rate(q) = q / (σq + 1 - σ). With σ = 0.25 and q = 3 the rate
// is 2.
func TestAmdahlCompletionTime(t *testing.T) {
	arrivals := []Arrival{{Task: task(1, 4, 3)}}
	res, err := RunWithOptions(3, WDEQPolicy{}, arrivals, Options{Model: speedup.Amdahl{Sigma: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tasks[0].Completion; !numeric.ApproxEqualTol(got, 2, 1e-9) {
		t.Errorf("completion = %g, want 2 (4 volume at rate 2)", got)
	}
}

// The per-task Curve parameter must override the model default: two
// otherwise-identical tasks with different curves finish at different times.
func TestPerTaskCurveOverride(t *testing.T) {
	a := task(1, 2, 2)
	b := task(1, 2, 2)
	a.Curve = 1   // linear: rate 2 on its 2 processors
	b.Curve = 0.5 // square root: rate √2
	res, err := RunWithOptions(4, DEQPolicy{}, []Arrival{{Task: a}, {Task: b}}, Options{Model: speedup.PowerLaw{}})
	if err != nil {
		t.Fatal(err)
	}
	// DEQ gives each task 2 processors throughout (δ pins both at 2).
	if got := res.Tasks[0].Completion; !numeric.ApproxEqualTol(got, 1, 1e-9) {
		t.Errorf("linear-curve task completed at %g, want 1", got)
	}
	if got := res.Tasks[1].Completion; !numeric.ApproxEqualTol(got, 2/math.Sqrt2, 1e-9) {
		t.Errorf("sqrt-curve task completed at %g, want %g", got, 2/math.Sqrt2)
	}
}

// A platform capacity step mid-run must re-invoke the policy exactly at the
// breakpoint and slow the run down by the hand-computed amount.
func TestPlatformCapacityDrop(t *testing.T) {
	model := speedup.Platform{Profile: mustProfile(t, []float64{0, 1}, []float64{2, 1})}
	arrivals := []Arrival{{Task: task(1, 3, 2)}}
	res, err := RunWithOptions(2, WDEQPolicy{}, arrivals, Options{Model: model, TraceDecisions: true})
	if err != nil {
		t.Fatal(err)
	}
	// Rate 2 on [0,1) processes 2 units; the remaining 1 unit runs at the
	// post-step capacity 1: completion at t = 2 (constant capacity: 1.5).
	if got := res.Tasks[0].Completion; !numeric.ApproxEqualTol(got, 2, 1e-9) {
		t.Errorf("completion = %g, want 2", got)
	}
	if res.Events != 2 {
		t.Errorf("events = %d, want 2 (initial decision + capacity step)", res.Events)
	}
	if d := res.Decisions[1]; d.Time != 1 || !numeric.ApproxEqualTol(d.Alloc[0], 1, 1e-9) {
		t.Errorf("post-step decision = %+v, want time 1 with allocation 1", d)
	}
	if !strings.HasPrefix(res.Model, "platform") {
		t.Errorf("result model = %q", res.Model)
	}
}

// A capacity outage (budget zero) must park the alive tasks without
// triggering the starvation guard, and resume them when capacity returns.
func TestPlatformOutageParksTasks(t *testing.T) {
	model := speedup.Platform{Profile: mustProfile(t, []float64{0, 5}, []float64{0, 2})}
	arrivals := []Arrival{{Task: task(1, 2, 2)}}
	res, err := RunWithOptions(2, WDEQPolicy{}, arrivals, Options{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing runs on [0,5); at t=5 the task gets 2 processors and drains its
	// 2 units by t=6.
	if got := res.Tasks[0].Completion; !numeric.ApproxEqualTol(got, 6, 1e-9) {
		t.Errorf("completion = %g, want 6", got)
	}
	if got := res.Tasks[0].Flow; !numeric.ApproxEqualTol(got, 6, 1e-9) {
		t.Errorf("flow = %g, want 6 (outage time counts as waiting)", got)
	}
}

// A permanent outage with work left is genuine starvation and must be
// reported as an error rather than looping forever.
func TestPlatformPermanentOutageIsStarvation(t *testing.T) {
	model := speedup.Platform{Profile: mustProfile(t, []float64{0}, []float64{0})}
	_, err := RunWithOptions(2, WDEQPolicy{}, []Arrival{{Task: task(1, 1, 1)}}, Options{Model: model})
	if err == nil || !strings.Contains(err.Error(), "starves") {
		t.Fatalf("err = %v, want starvation error", err)
	}
}

// Under a time-varying capacity the engine caps each task's visible Delta at
// the current budget, so greedy policies cannot over-allocate during a dip.
func TestPlatformCapsDeltaDuringDip(t *testing.T) {
	model := speedup.Platform{Profile: mustProfile(t, []float64{0, 1, 3}, []float64{4, 1, 4})}
	arrivals := []Arrival{
		{Task: task(10, 4, 4)},
		{Task: task(1, 4, 4)},
	}
	res, err := RunWithOptions(4, WeightGreedyPolicy{}, arrivals, Options{Model: model, TraceDecisions: true})
	if err != nil {
		t.Fatal(err)
	}
	// The heavy task takes the full capacity at every decision: 4 on [0,1)
	// — drains its 4 units right at t=1... which coalesces with the step.
	// Walk the trace and check no allocation ever exceeded the budget.
	for _, d := range res.Decisions {
		budget := model.BudgetAt(4, d.Time)
		var total float64
		for _, a := range d.Alloc {
			total += a
		}
		if total > budget+1e-6 {
			t.Errorf("decision at %g allocates %g over budget %g", d.Time, total, budget)
		}
	}
	if res.Tasks[1].Completion <= res.Tasks[0].Completion {
		t.Errorf("light task %g should finish after heavy %g under weight-greedy",
			res.Tasks[1].Completion, res.Tasks[0].Completion)
	}
}

// The zero-allocation steady state must survive non-default time-invariant
// models: the kernel's model calls are interface calls on stateless values,
// not per-event allocations.
func TestSteadyStateZeroAllocsUnderPowerLaw(t *testing.T) {
	arrivals := allocArrivals(t, 256, 17)
	runner := NewRunner()
	res := &Result{}
	opts := Options{Model: speedup.PowerLaw{Alpha: 0.8}}
	var runErr error
	run := func() {
		if err := runner.RunInto(res, 8, WDEQPolicy{}, arrivals, opts); err != nil {
			runErr = err
		}
	}
	run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if allocs := testing.AllocsPerRun(10, run); allocs != 0 {
		t.Errorf("powerlaw steady-state run allocated %.3g times; want 0", allocs)
	}
}

// Sharded runs accept a model through RunShardsWithOptions and stay
// deterministic under it.
func TestRunShardsWithModelDeterministic(t *testing.T) {
	src := poissonSource(40)
	opts := Options{Model: speedup.Amdahl{Sigma: 0.2}}
	a, err := RunShardsWithOptions(2, WDEQPolicy{}, src, 3, 7, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShardsWithOptions(2, WDEQPolicy{}, src, 3, 7, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.WeightedFlow != b.WeightedFlow || a.Makespan != b.Makespan {
		t.Errorf("model runs with same seed differ: %g/%g vs %g/%g",
			a.WeightedFlow, a.Makespan, b.WeightedFlow, b.Makespan)
	}
	linear, err := RunShards(2, WDEQPolicy{}, src, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !(a.Makespan > linear.Makespan) {
		t.Errorf("amdahl makespan %g not slower than linear %g", a.Makespan, linear.Makespan)
	}
}

// brokenRateModel violates the Rate contract (non-zero at zero processors);
// the engine must reject it at run start rather than simulate nonsense.
type brokenRateModel struct{ speedup.LinearCap }

func (brokenRateModel) Rate(t speedup.TaskShape, procs float64) float64 { return 1 }

func TestEngineRejectsBrokenModel(t *testing.T) {
	_, err := RunWithOptions(2, WDEQPolicy{}, []Arrival{{Task: task(1, 1, 1)}},
		Options{Model: brokenRateModel{}})
	if err == nil || !strings.Contains(err.Error(), "speedup") {
		t.Fatalf("err = %v, want model-contract rejection", err)
	}
}

// A capacity breakpoint at a time the float clock cannot hit by accumulation
// (0.1 + 0.2 != 0.3) must still be crossed exactly once: the engine snaps
// the clock onto absolute-time events.
func TestBudgetBreakpointCrossedOnce(t *testing.T) {
	model := speedup.Platform{Profile: mustProfile(t, []float64{0, 0.3}, []float64{2, 2})}
	arrivals := []Arrival{{Task: task(1, 1, 1), Release: 0.1}}
	res, err := RunWithOptions(2, WDEQPolicy{}, arrivals, Options{Model: model, TraceDecisions: true})
	if err != nil {
		t.Fatal(err)
	}
	// One decision at the admission (t=0.1), one at the capacity step
	// (t=0.3); a duplicate near-zero-dt event at ~0.3 would make it three.
	if res.Events != 2 {
		t.Fatalf("events = %d, want 2 (decisions at %v)", res.Events, res.Decisions)
	}
	if got := res.Decisions[1].Time; got != 0.3 {
		t.Errorf("capacity-step decision at %v, want exactly 0.3", got)
	}
	if got := res.Tasks[0].Completion; !numeric.ApproxEqualTol(got, 1.1, 1e-9) {
		t.Errorf("completion = %g, want 1.1", got)
	}
}
