package engine

import (
	"math"
	"math/rand"
	"testing"

	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/speedup"
	"github.com/malleable-sched/malleable/internal/stepfunc"
	"github.com/malleable-sched/malleable/internal/workload"
)

// runCore executes one retained run under the given event core and returns
// the result plus the core counters.
func runCore(t testing.TB, core EventCore, p float64, policy Policy, arrivals []Arrival, model speedup.Model) (*Result, QueueStats) {
	t.Helper()
	r := NewRunner()
	res, err := r.RunWithOptions(p, policy, arrivals, Options{Model: model, EventCore: core})
	if err != nil {
		t.Fatalf("core %v: %v", core, err)
	}
	return res, r.LastQueueStats()
}

// requireIdenticalRuns asserts two runs are bitwise identical: every
// aggregate and every per-task row.
func requireIdenticalRuns(t testing.TB, label string, a, b *Result) {
	t.Helper()
	if a.Events != b.Events || a.Completed != b.Completed || a.MaxAlive != b.MaxAlive {
		t.Fatalf("%s: counters diverge: events %d vs %d, completed %d vs %d, maxAlive %d vs %d",
			label, a.Events, b.Events, a.Completed, b.Completed, a.MaxAlive, b.MaxAlive)
	}
	if a.WeightedFlow != b.WeightedFlow || a.WeightedCompletion != b.WeightedCompletion ||
		a.TotalFlow != b.TotalFlow || a.Makespan != b.Makespan {
		t.Fatalf("%s: aggregates diverge: wf %.17g vs %.17g, wc %.17g vs %.17g, tf %.17g vs %.17g, mk %.17g vs %.17g",
			label, a.WeightedFlow, b.WeightedFlow, a.WeightedCompletion, b.WeightedCompletion,
			a.TotalFlow, b.TotalFlow, a.Makespan, b.Makespan)
	}
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatalf("%s: task tables differ in length: %d vs %d", label, len(a.Tasks), len(b.Tasks))
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("%s: task %d diverges: %+v vs %+v", label, i, a.Tasks[i], b.Tasks[i])
		}
	}
}

// The contract of Options.EventCore: the calendar-queue/heap core and the
// naive-scan reference produce bitwise-identical runs — same event count,
// same aggregates, same per-task rows, same path counters — across the
// policy × model matrix, at moderate and at overloaded (deep-backlog)
// operating points. The overloaded wdeq/linear cells run almost entirely on
// the virtual clock; the greedy and nonlinear cells run entirely on the
// fallback path; the platform cells force budget events through it.
func TestEventCoreEquivalence(t *testing.T) {
	profile, err := stepfunc.FromSteps([]float64{0, 5, 11, 17}, []float64{8, 3, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	models := map[string]speedup.Model{
		"linear":   nil,
		"powerlaw": speedup.PowerLaw{Alpha: 0.6},
		"platform": speedup.Platform{Profile: profile},
	}
	loads := map[string]float64{"moderate": 8, "overloaded": 40}
	for loadName, rate := range loads {
		for modelName, model := range models {
			for policyName, policy := range invariantPolicies(t, 768) {
				arrivals, err := workload.GenerateArrivals(workload.ArrivalConfig{
					Class:   workload.Uniform,
					P:       8,
					Process: workload.Poisson,
					Rate:    rate,
				}, 768, 41)
				if err != nil {
					t.Fatal(err)
				}
				label := loadName + "/" + modelName + "/" + policyName
				auto, statsAuto := runCore(t, CoreAuto, 8, policy, arrivals, model)
				naive, statsNaive := runCore(t, CoreNaive, 8, policy, arrivals, model)
				requireIdenticalRuns(t, label, auto, naive)
				if statsAuto != statsNaive {
					t.Fatalf("%s: path counters diverge: %+v vs %+v", label, statsAuto, statsNaive)
				}
				if statsAuto.VirtualEvents+statsAuto.FallbackEvents != auto.Events {
					t.Fatalf("%s: path counters %+v do not sum to events %d", label, statsAuto, auto.Events)
				}
			}
		}
	}
}

// The fast path must actually engage where it is certified — an overloaded
// equal-share run on the linear model decides most events on the virtual
// clock — and must stay off everywhere it is not.
func TestVirtualPathEngagement(t *testing.T) {
	// Overloaded large-delta stream: with δ > P/2 and unit weights no task
	// is ever degree-pinned once two are alive, so nearly the whole run is
	// one equal-share segment.
	deep, err := workload.GenerateArrivals(workload.ArrivalConfig{
		Class:   workload.LargeDelta,
		P:       8,
		Process: workload.Poisson,
		Rate:    40,
	}, 1024, 17)
	if err != nil {
		t.Fatal(err)
	}
	_, stats := runCore(t, CoreAuto, 8, WDEQPolicy{}, deep, nil)
	if stats.VirtualEvents == 0 {
		t.Fatalf("wdeq/linear run decided no events on the virtual clock: %+v", stats)
	}
	if stats.VirtualEvents < stats.FallbackEvents {
		t.Errorf("overloaded wdeq/linear should be mostly virtual, got %+v", stats)
	}
	arrivals := allocArrivals(t, 1024, 17)
	// Uncertified policy: never virtual.
	_, stats = runCore(t, CoreAuto, 8, WeightGreedyPolicy{}, arrivals, nil)
	if stats.VirtualEvents != 0 || stats.Transitions != 0 {
		t.Fatalf("weight-greedy run must never take the virtual path, got %+v", stats)
	}
	// Certified policy, nonlinear model: never virtual.
	_, stats = runCore(t, CoreAuto, 8, WDEQPolicy{}, arrivals, speedup.Amdahl{Sigma: 0.2})
	if stats.VirtualEvents != 0 {
		t.Fatalf("wdeq/amdahl run must never take the virtual path, got %+v", stats)
	}
	// Tracing disables certification (virtual segments invoke no policy, so
	// the trace would be incomplete).
	r := NewRunner()
	if _, err := r.RunWithOptions(8, WDEQPolicy{}, arrivals, Options{TraceDecisions: true}); err != nil {
		t.Fatal(err)
	}
	if got := r.LastQueueStats(); got.VirtualEvents != 0 {
		t.Fatalf("traced run must never take the virtual path, got %+v", got)
	}
}

// Boundary coverage for StepUntil/NextEventTime under the new queue:
// zero-volume tasks whose virtual keys land exactly on the clock (the bucket
// boundary degenerate), batches of identical keys resolved by the (key, id)
// tie-break, and simultaneous capacity-step + completion ties under a
// time-varying platform.
func TestEventQueueBoundaries(t *testing.T) {
	task := func(vol, w, delta float64) schedule.Task {
		return schedule.Task{Volume: vol, Weight: w, Delta: delta}
	}
	cases := map[string][]Arrival{
		// Zero-volume tasks at admission time: key = vnow exactly, popped at
		// the admitting event; several at once exercise the tie-break.
		"zero-volume-on-boundary": {
			{Release: 0, Task: task(4, 1, 8)},
			{Release: 0.5, Task: task(0, 1, 8)},
			{Release: 0.5, Task: task(0, 2, 8)},
			{Release: 0.5, Task: task(3, 1, 8)},
			{Release: 2.5, Task: task(0, 1, 8)},
		},
		// Identical (volume, weight) pairs admitted together map to one
		// virtual key: completion order must fall back to task IDs, not to
		// calendar layout.
		"identical-keys": {
			{Release: 0, Task: task(2, 1, 2)},
			{Release: 0, Task: task(2, 1, 2)},
			{Release: 0, Task: task(2, 1, 2)},
			{Release: 0, Task: task(2, 1, 2)},
			{Release: 1, Task: task(2, 1, 2)},
			{Release: 1, Task: task(2, 1, 2)},
		},
	}
	for name, arrivals := range cases {
		t.Run(name, func(t *testing.T) {
			auto, statsAuto := runCore(t, CoreAuto, 8, WDEQPolicy{}, arrivals, nil)
			naive, statsNaive := runCore(t, CoreNaive, 8, WDEQPolicy{}, arrivals, nil)
			requireIdenticalRuns(t, name, auto, naive)
			if statsAuto != statsNaive {
				t.Fatalf("%s: path counters diverge: %+v vs %+v", name, statsAuto, statsNaive)
			}
			for _, tm := range auto.Tasks {
				if tm.Completion < tm.Release {
					t.Fatalf("%s: task %d completes before release: %+v", name, tm.ID, tm)
				}
			}
		})
	}

	t.Run("capacity-step-completion-tie", func(t *testing.T) {
		// One task of volume 8 at full capacity 8 completes at t=1; the
		// platform steps at exactly t=1. The budget event and the completion
		// coalesce (or land back to back) identically under both cores.
		profile, err := stepfunc.FromSteps([]float64{0, 1, 3}, []float64{8, 2, 8})
		if err != nil {
			t.Fatal(err)
		}
		arrivals := []Arrival{
			{Release: 0, Task: task(8, 1, 8)},
			{Release: 0.25, Task: task(4, 1, 8)},
			{Release: 1, Task: task(2, 1, 8)},
		}
		model := speedup.Platform{Profile: profile}
		auto, _ := runCore(t, CoreAuto, 8, WDEQPolicy{}, arrivals, model)
		naive, _ := runCore(t, CoreNaive, 8, WDEQPolicy{}, arrivals, model)
		requireIdenticalRuns(t, "capacity-step-tie", auto, naive)
	})
}

// StepUntil must leave the stepper strictly past the horizon under the
// virtual core, including horizons that coincide exactly with completion
// events.
func TestStepUntilVirtualHorizon(t *testing.T) {
	arrivals := allocArrivals(t, 256, 23)
	for _, core := range []EventCore{CoreAuto, CoreNaive} {
		var res Result
		r := NewRunner()
		st, err := r.StartFeed(&res, 8, WDEQPolicy{}, nil, Options{EventCore: core})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range arrivals {
			if err := st.Feed(a); err != nil {
				t.Fatal(err)
			}
			// Drive exactly to the release: the admission event lands on the
			// horizon and must be processed by this call, not the next.
			if _, err := st.StepUntil(a.Release); err != nil {
				t.Fatal(err)
			}
			if nt := st.NextEventTime(); nt <= a.Release {
				t.Fatalf("core %v: NextEventTime %g not past horizon %g", core, nt, a.Release)
			}
		}
		st.CloseFeed()
		if _, err := st.StepUntil(math.Inf(1)); err != nil {
			t.Fatal(err)
		}
		if err := st.Finish(); err != nil {
			t.Fatal(err)
		}
		if res.Completed != len(arrivals) {
			t.Fatalf("core %v: completed %d of %d", core, res.Completed, len(arrivals))
		}
	}
}

// Snapshot taken mid-virtual-segment (keys live in calendar buckets),
// restored into a fresh Runner, then re-driven: the continuation must be
// bitwise identical to the uninterrupted run, and the rebuilt calendar must
// pop the same sequence the incrementally grown one did. This is the
// snapshot contract of the event core: structures are never serialized, only
// the scalars and the live slots, and everything else is a pure function of
// those.
func TestSnapshotMidBucketRestoreRedrive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	arrivals := make([]Arrival, 0, 500)
	now := 0.0
	for i := 0; i < 500; i++ {
		now += rng.Float64() * 0.15
		arrivals = append(arrivals, Arrival{
			Release: now,
			Tenant:  i % 3,
			Task:    schedule.Task{Volume: rng.Float64() * 4, Weight: 1 + rng.Float64(), Delta: 1 + rng.Float64()*7},
		})
	}
	for _, core := range []EventCore{CoreAuto, CoreNaive} {
		for snapAt := 60; snapAt < 500; snapAt += 110 {
			var resA Result
			rA := NewRunner()
			stA, err := rA.StartFeed(&resA, 8, WDEQPolicy{}, nil, Options{EventCore: core})
			if err != nil {
				t.Fatal(err)
			}
			var snap StepperSnapshot
			var snapVirtual bool
			for i, a := range arrivals {
				if err := stA.Feed(a); err != nil {
					t.Fatal(err)
				}
				if _, err := stA.StepUntil(a.Release); err != nil {
					t.Fatal(err)
				}
				if i == snapAt {
					if err := stA.Snapshot(&snap); err != nil {
						t.Fatal(err)
					}
					snapVirtual = stA.virtual
				}
			}
			stA.CloseFeed()
			if _, err := stA.StepUntil(math.Inf(1)); err != nil {
				t.Fatal(err)
			}
			if err := stA.Finish(); err != nil {
				t.Fatal(err)
			}

			var resB Result
			rB := NewRunner()
			stB, err := rB.StartFeed(&resB, 8, WDEQPolicy{}, nil, Options{EventCore: core})
			if err != nil {
				t.Fatal(err)
			}
			if err := stB.Restore(&snap); err != nil {
				t.Fatal(err)
			}
			for _, a := range arrivals[snapAt+1:] {
				if err := stB.Feed(a); err != nil {
					t.Fatal(err)
				}
				if _, err := stB.StepUntil(a.Release); err != nil {
					t.Fatal(err)
				}
			}
			stB.CloseFeed()
			if _, err := stB.StepUntil(math.Inf(1)); err != nil {
				t.Fatal(err)
			}
			if resA.WeightedFlow != resB.WeightedFlow || resA.Events != resB.Events ||
				resA.Makespan != resB.Makespan || resA.Completed != resB.Completed ||
				resA.WeightedCompletion != resB.WeightedCompletion {
				t.Fatalf("core %v snapAt=%d (virtual=%v): restored continuation diverges: wf %.17g vs %.17g, ev %d vs %d",
					core, snapAt, snapVirtual, resA.WeightedFlow, resB.WeightedFlow, resA.Events, resB.Events)
			}
			if stA.QueueStats() != stB.QueueStats() {
				t.Fatalf("core %v snapAt=%d: queue stats diverge: %+v vs %+v",
					core, snapAt, stA.QueueStats(), stB.QueueStats())
			}
			if core == CoreAuto && snapAt == 60 && !snapVirtual {
				// The workload is overloaded enough that the first snapshot
				// point should sit inside a virtual segment; if not, the
				// "mid-bucket" part of this test is vacuous.
				t.Logf("warning: snapshot at %d not in a virtual segment", snapAt)
			}
		}
	}
}

// Direct structure test: a calendar queue grown by interleaved inserts and
// pops must extract the same (key, id) sequence as one bulk-rebuilt from the
// same contents, whatever the geometry — including keys colliding in one
// bucket and keys far past the window (overflow).
func TestCalendarQueueValueOrderedExtraction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	live := make([]liveTask, 0, 256)
	for i := 0; i < 256; i++ {
		key := rng.Float64() * 10
		switch i % 5 {
		case 1:
			key = math.Floor(key) // collide on integer keys
		case 3:
			key = 1e6 + rng.Float64()*1e6 // deep overflow
		}
		live = append(live, liveTask{id: i, key: key})
	}
	var grown, rebuilt calendarQueue
	grown.reset(0, 1, calMinBuckets, len(live))
	for i := range live {
		grown.insert(i, live[i].key)
	}
	rebuilt.rebuildCalendar(live, 0)

	for n := len(live); n > 0; n-- {
		gs, gok := grown.peekMin(live)
		rs, rok := rebuilt.peekMin(live)
		if !gok || !rok {
			t.Fatalf("premature empty with %d left: grown=%v rebuilt=%v", n, gok, rok)
		}
		if live[gs].key != live[rs].key || live[gs].id != live[rs].id {
			t.Fatalf("extraction order depends on geometry: grown (%g, %d) vs rebuilt (%g, %d)",
				live[gs].key, live[gs].id, live[rs].key, live[rs].id)
		}
		grown.removeSlot(gs)
		rebuilt.removeSlot(rs)
	}
	if _, ok := grown.peekMin(live); ok {
		t.Fatal("grown queue not empty after draining")
	}
}

// FuzzEventQueueEquivalence drives random arrival/volume/curve sequences
// through the calendar-queue core and the retained naive reference and
// requires identical event sequences: same per-task completion rows, same
// aggregates, same path counters. The input bytes are decoded three per
// arrival (release gap, volume, weight/delta/curve selector), which keeps
// the corpus dense in schedules that hit key collisions, zero volumes and
// mode transitions.
func FuzzEventQueueEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 2, 3, 255, 254, 253, 7, 7, 7})
	f.Add([]byte{10, 0, 200, 0, 0, 0, 31, 64, 9, 128, 130, 1, 90, 17, 3})
	f.Add([]byte{255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		if len(data) > 3*512 {
			data = data[:3*512]
		}
		arrivals := make([]Arrival, 0, len(data)/3)
		now := 0.0
		for i := 0; i+2 < len(data); i += 3 {
			now += float64(data[i]) / 64
			vol := float64(data[i+1]) / 16 // includes exact zeros
			sel := data[i+2]
			arrivals = append(arrivals, Arrival{
				Release: now,
				Tenant:  int(sel % 3),
				Task: schedule.Task{
					Volume: vol,
					Weight: 1 + float64(sel%7)/2,
					Delta:  1 + float64(sel%11),
					Curve:  float64(sel%4) / 4,
				},
			})
		}
		if len(arrivals) == 0 {
			t.Skip()
		}
		for _, policy := range []Policy{WDEQPolicy{}, DEQPolicy{}} {
			auto, statsAuto := runCore(t, CoreAuto, 8, policy, arrivals, nil)
			naive, statsNaive := runCore(t, CoreNaive, 8, policy, arrivals, nil)
			requireIdenticalRuns(t, policy.Name(), auto, naive)
			if statsAuto != statsNaive {
				t.Fatalf("%s: path counters diverge: %+v vs %+v", policy.Name(), statsAuto, statsNaive)
			}
		}
	})
}
