package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/malleable-sched/malleable/internal/sim"
)

// WeightGreedyPolicy is the online analogue of a greedy schedule ordered by
// weight: the heaviest alive task receives min(δ, what is left), then the
// next, and so on. Ties go to the earlier release, then to the lower ID. It
// is non-clairvoyant (it never looks at volumes).
type WeightGreedyPolicy struct{}

// Name implements Policy.
func (WeightGreedyPolicy) Name() string { return "weight-greedy" }

// Allocate implements Policy.
func (WeightGreedyPolicy) Allocate(p float64, alive []TaskState) []float64 {
	return greedyByRank(p, alive, func(a, b TaskState) bool {
		if a.Weight != b.Weight {
			return a.Weight > b.Weight
		}
		if a.Release != b.Release {
			return a.Release < b.Release
		}
		return a.ID < b.ID
	})
}

// SmithRatioPolicy is a clairvoyant baseline: it serves alive tasks greedily
// in non-decreasing order of remaining-volume over weight (the online
// counterpart of Smith's rule). Because it reads TaskState.Remaining it has
// strictly more information than the paper's non-clairvoyant model allows; it
// exists to measure how much WDEQ loses to clairvoyance under load.
type SmithRatioPolicy struct{}

// Name implements Policy.
func (SmithRatioPolicy) Name() string { return "smith-ratio" }

// Allocate implements Policy.
func (SmithRatioPolicy) Allocate(p float64, alive []TaskState) []float64 {
	return greedyByRank(p, alive, func(a, b TaskState) bool {
		ra, rb := a.Remaining/a.Weight, b.Remaining/b.Weight
		if ra != rb {
			return ra < rb
		}
		return a.ID < b.ID
	})
}

// greedyByRank hands out the capacity following the order induced by less:
// each task in turn receives min(δ, remaining capacity).
func greedyByRank(p float64, alive []TaskState, less func(a, b TaskState) bool) []float64 {
	idx := make([]int, len(alive))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return less(alive[idx[a]], alive[idx[b]]) })
	alloc := make([]float64, len(alive))
	capacity := p
	for _, i := range idx {
		a := math.Min(alive[i].Delta, capacity)
		if a < 0 {
			a = 0
		}
		alloc[i] = a
		capacity -= a
	}
	return alloc
}

// PolicyNames lists the policy names accepted by PolicyByName.
func PolicyNames() []string {
	return []string{"wdeq", "deq", "weight-greedy", "smith-ratio"}
}

// PolicyByName resolves a policy name: "wdeq" and "deq" are the
// non-clairvoyant equipartition policies of the paper (adapted from
// internal/sim), "weight-greedy" is the non-clairvoyant greedy priority
// policy, and "smith-ratio" is the clairvoyant Smith-rule baseline.
func PolicyByName(name string) (Policy, error) {
	switch strings.ToLower(name) {
	case "wdeq":
		return Adapt(sim.WDEQPolicy{}), nil
	case "deq":
		return Adapt(sim.DEQPolicy{}), nil
	case "weight-greedy":
		return WeightGreedyPolicy{}, nil
	case "smith-ratio":
		return SmithRatioPolicy{}, nil
	default:
		return nil, fmt.Errorf("engine: unknown policy %q (want one of %s)", name, strings.Join(PolicyNames(), ", "))
	}
}
