package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/malleable-sched/malleable/internal/core"
)

// WDEQPolicy is the weighted dynamic equipartition of the paper's Algorithm 1:
// the available capacity is split between the alive tasks proportionally to
// their weights, tasks whose share exceeds their degree bound are pinned at δ
// and the surplus is redistributed (core.ShareAllocationFunc's fixed point).
// It is non-clairvoyant — it never reads volumes — and is the library's
// default policy.
type WDEQPolicy struct{}

// Name implements Policy.
func (WDEQPolicy) Name() string { return "WDEQ" }

// Allocate implements Policy. It reads weights and degree bounds through
// accessors, so it performs no allocation when dst has spare capacity.
func (WDEQPolicy) Allocate(p float64, alive []TaskState, dst []float64) []float64 {
	return core.ShareAllocationFunc(dst, p, len(alive),
		func(i int) float64 { return alive[i].Weight },
		func(i int) float64 { return alive[i].Delta })
}

// EqualShareWeight implements EqualShareCertifier: with no task pinned at its
// degree bound, the share fixed point is exactly the weight-proportional
// split, which is what lets the engine run WDEQ segments on the virtual
// clock without invoking Allocate.
func (WDEQPolicy) EqualShareWeight(weight float64) float64 { return weight }

// DEQPolicy is the unweighted dynamic equipartition (all weights treated as
// one), the baseline of Deng et al. that WDEQ generalizes.
type DEQPolicy struct{}

// Name implements Policy.
func (DEQPolicy) Name() string { return "DEQ" }

// Allocate implements Policy.
func (DEQPolicy) Allocate(p float64, alive []TaskState, dst []float64) []float64 {
	return core.ShareAllocationFunc(dst, p, len(alive),
		func(int) float64 { return 1 },
		func(i int) float64 { return alive[i].Delta })
}

// EqualShareWeight implements EqualShareCertifier: DEQ splits capacity
// evenly, i.e. proportionally to the constant weight 1.
func (DEQPolicy) EqualShareWeight(float64) float64 { return 1 }

// PriorityPolicy allocates the platform greedily following a fixed priority
// list: the highest-priority alive task receives min(δ, what is left), then
// the next, and so on. With priorities sorted by weight it is an online
// analogue of a greedy schedule. It is non-clairvoyant.
type PriorityPolicy struct {
	// Priority maps task ID to its rank (lower rank = served first). Tasks
	// beyond the list rank by their own ID.
	Priority []int
	// Label is returned by Name.
	Label string
}

// Name implements Policy.
func (p PriorityPolicy) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "priority"
}

func (p PriorityPolicy) rank(t TaskState) int {
	if t.ID < len(p.Priority) {
		return p.Priority[t.ID]
	}
	return t.ID
}

func (p PriorityPolicy) less(a, b TaskState) bool {
	if ra, rb := p.rank(a), p.rank(b); ra != rb {
		return ra < rb
	}
	return a.ID < b.ID
}

// Allocate implements Policy. This stateless form allocates rank scratch per
// call; the engine's run loop uses the scratch-holding clone from CloneForRun
// instead, which is allocation-free in steady state.
func (p PriorityPolicy) Allocate(capacity float64, alive []TaskState, dst []float64) []float64 {
	g := greedyRun{name: p.Name(), less: p.less}
	return g.Allocate(capacity, alive, dst)
}

// CloneForRun implements RunCloner: the clone owns the rank-index scratch, so
// a whole run allocates nothing per event.
func (p PriorityPolicy) CloneForRun() Policy {
	return &greedyRun{name: p.Name(), less: p.less}
}

// EqualPolicy implements PolicyEqualer: PriorityPolicy holds a slice and is
// therefore not ==-comparable, so it identifies itself by label and by the
// identity (not contents) of the rank list — mutating a shared rank slice
// between runs is not supported, re-slicing it is a different policy.
func (p PriorityPolicy) EqualPolicy(other Policy) bool {
	o, ok := other.(PriorityPolicy)
	if !ok || o.Label != p.Label || len(o.Priority) != len(p.Priority) {
		return false
	}
	return len(p.Priority) == 0 || &o.Priority[0] == &p.Priority[0]
}

// WeightGreedyPolicy is the online analogue of a greedy schedule ordered by
// weight: the heaviest alive task receives min(δ, what is left), then the
// next, and so on. Ties go to the earlier release, then to the lower ID. It
// is non-clairvoyant (it never looks at volumes).
type WeightGreedyPolicy struct{}

// Name implements Policy.
func (WeightGreedyPolicy) Name() string { return "weight-greedy" }

// Allocate implements Policy. This stateless form allocates rank scratch per
// call; the engine's run loop uses the scratch-holding clone from CloneForRun
// instead, which is allocation-free in steady state.
func (WeightGreedyPolicy) Allocate(p float64, alive []TaskState, dst []float64) []float64 {
	g := greedyRun{name: "weight-greedy", less: weightGreedyLess}
	return g.Allocate(p, alive, dst)
}

// CloneForRun implements RunCloner.
func (WeightGreedyPolicy) CloneForRun() Policy {
	return &greedyRun{name: "weight-greedy", less: weightGreedyLess}
}

func weightGreedyLess(a, b TaskState) bool {
	if a.Weight != b.Weight {
		return a.Weight > b.Weight
	}
	if a.Release != b.Release {
		return a.Release < b.Release
	}
	return a.ID < b.ID
}

// SmithRatioPolicy is a clairvoyant baseline: it serves alive tasks greedily
// in non-decreasing order of remaining-volume over weight (the online
// counterpart of Smith's rule). Because it reads TaskState.Remaining it has
// strictly more information than the paper's non-clairvoyant model allows; it
// exists to measure how much WDEQ loses to clairvoyance under load.
type SmithRatioPolicy struct{}

// Name implements Policy.
func (SmithRatioPolicy) Name() string { return "smith-ratio" }

// Clairvoyant implements the Clairvoyant marker: this policy reads
// TaskState.Remaining by design.
func (SmithRatioPolicy) Clairvoyant() {}

// Allocate implements Policy. See WeightGreedyPolicy.Allocate for the
// stateless-versus-cloned trade-off.
func (SmithRatioPolicy) Allocate(p float64, alive []TaskState, dst []float64) []float64 {
	g := greedyRun{name: "smith-ratio", less: smithRatioLess}
	return g.Allocate(p, alive, dst)
}

// CloneForRun implements RunCloner.
func (SmithRatioPolicy) CloneForRun() Policy {
	return &greedyRun{name: "smith-ratio", less: smithRatioLess}
}

func smithRatioLess(a, b TaskState) bool {
	ra, rb := a.Remaining/a.Weight, b.Remaining/b.Weight
	if ra != rb {
		return ra < rb
	}
	return a.ID < b.ID
}

// greedyRun hands out the capacity following the order induced by less: each
// task in turn receives min(δ, remaining capacity). It owns the rank-index
// scratch, so one clone serves a whole run without allocating.
type greedyRun struct {
	name   string
	less   func(a, b TaskState) bool
	sorter rankSorter
}

// Name implements Policy.
func (g *greedyRun) Name() string { return g.name }

// Allocate implements Policy.
func (g *greedyRun) Allocate(p float64, alive []TaskState, dst []float64) []float64 {
	s := &g.sorter
	s.idx = s.idx[:0]
	for i := range alive {
		s.idx = append(s.idx, i)
	}
	s.alive, s.less = alive, g.less
	// Every comparator breaks ties by ID, so the order is total and the
	// unstable sort is deterministic.
	sort.Sort(s)
	s.alive = nil

	base := len(dst)
	for range alive {
		dst = append(dst, 0)
	}
	alloc := dst[base:]
	capacity := p
	for _, i := range s.idx {
		a := math.Min(alive[i].Delta, capacity)
		if a < 0 {
			a = 0
		}
		alloc[i] = a
		capacity -= a
	}
	return dst
}

// rankSorter sorts a task-index slice by a TaskState comparator without the
// closure and reflection overhead of sort.Slice.
type rankSorter struct {
	idx   []int
	alive []TaskState
	less  func(a, b TaskState) bool
}

func (s *rankSorter) Len() int           { return len(s.idx) }
func (s *rankSorter) Swap(i, j int)      { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }
func (s *rankSorter) Less(i, j int) bool { return s.less(s.alive[s.idx[i]], s.alive[s.idx[j]]) }

// PolicyNames lists the policy names accepted by PolicyByName.
func PolicyNames() []string {
	return []string{"wdeq", "deq", "weight-greedy", "smith-ratio"}
}

// PolicyByName resolves a policy name: "wdeq" and "deq" are the
// non-clairvoyant equipartition policies of the paper, "weight-greedy" is the
// non-clairvoyant greedy priority policy, and "smith-ratio" is the
// clairvoyant Smith-rule baseline.
func PolicyByName(name string) (Policy, error) {
	switch strings.ToLower(name) {
	case "wdeq":
		return WDEQPolicy{}, nil
	case "deq":
		return DEQPolicy{}, nil
	case "weight-greedy":
		return WeightGreedyPolicy{}, nil
	case "smith-ratio":
		return SmithRatioPolicy{}, nil
	default:
		return nil, fmt.Errorf("engine: unknown policy %q (want one of %s)", name, strings.Join(PolicyNames(), ", "))
	}
}
