package baselines

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
)

func mustInstance(t *testing.T, p float64, tasks []schedule.Task) *schedule.Instance {
	t.Helper()
	inst, err := schedule.NewInstance(p, tasks)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

func unitDeltaInstance(rng *rand.Rand, n, p int) *schedule.Instance {
	tasks := make([]schedule.Task, n)
	for i := range tasks {
		tasks[i] = schedule.Task{
			Weight: 0.1 + rng.Float64(),
			Volume: 0.1 + rng.Float64(),
			Delta:  1,
		}
	}
	return &schedule.Instance{P: float64(p), Tasks: tasks}
}

func TestSmithSequentialOptimalForSquashedCase(t *testing.T) {
	// δ_i >= P: Smith sequential is optimal and equals the squashed-area bound.
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 4, Delta: 2},
		{Weight: 5, Volume: 2, Delta: 3},
	})
	s, err := SmithSequential(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if !numeric.ApproxEqualTol(s.WeightedCompletionTime(), core.SquashedAreaBound(inst), 1e-9) {
		t.Errorf("objective = %g, want %g", s.WeightedCompletionTime(), core.SquashedAreaBound(inst))
	}
}

func TestListScheduleTwoProcessors(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 1},
		{Weight: 1, Volume: 3, Delta: 1},
		{Weight: 1, Volume: 1, Delta: 1},
	})
	s, err := ListSchedule(inst, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Task 0 on P1 [0,2], task 1 on P2 [0,3], task 2 on P1 [2,3].
	want := []float64{2, 3, 3}
	for i, w := range want {
		if !numeric.ApproxEqual(s.CompletionTime(i), w) {
			t.Errorf("C%d = %g, want %g", i, s.CompletionTime(i), w)
		}
	}
}

func TestListScheduleValidation(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{{Weight: 1, Volume: 1, Delta: 0.5}})
	if _, err := ListSchedule(inst, []int{0}); err == nil {
		t.Errorf("δ < 1 accepted")
	}
	inst2 := mustInstance(t, 0.5, []schedule.Task{{Weight: 1, Volume: 1, Delta: 1}})
	if _, err := ListSchedule(inst2, []int{0}); err == nil {
		t.Errorf("fractional platform accepted")
	}
	inst3 := mustInstance(t, 2, []schedule.Task{{Weight: 1, Volume: 1, Delta: 1}})
	if _, err := ListSchedule(inst3, []int{1}); err == nil {
		t.Errorf("bad order accepted")
	}
}

func TestSPTOptimalForUnweighted(t *testing.T) {
	// SPT is optimal for ΣC_i with unit-processor tasks; on one processor the
	// objective equals the squashed-area bound with unit weights.
	inst := mustInstance(t, 1, []schedule.Task{
		{Weight: 1, Volume: 3, Delta: 1},
		{Weight: 1, Volume: 1, Delta: 1},
		{Weight: 1, Volume: 2, Delta: 1},
	})
	s, err := SPT(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqual(s.SumCompletionTimes(), 1+3+6) {
		t.Errorf("ΣC = %g, want 10", s.SumCompletionTimes())
	}
}

func TestLRFUsesWSPTOrder(t *testing.T) {
	inst := mustInstance(t, 1, []schedule.Task{
		{Weight: 1, Volume: 1, Delta: 1},  // ratio 1
		{Weight: 10, Volume: 1, Delta: 1}, // ratio 10, should go first
	})
	s, err := LRF(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqual(s.CompletionTime(1), 1) {
		t.Errorf("heavy task completes at %g, want 1", s.CompletionTime(1))
	}
	if !numeric.ApproxEqual(s.WeightedCompletionTime(), 10+2) {
		t.Errorf("objective = %g, want 12", s.WeightedCompletionTime())
	}
}

func TestWeightedRoundRobin(t *testing.T) {
	inst := mustInstance(t, 1, []schedule.Task{
		{Weight: 1, Volume: 1, Delta: 1},
		{Weight: 3, Volume: 1, Delta: 1},
	})
	s, err := WeightedRoundRobin(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Same behaviour as WDEQ on this δ=P=1 instance: completions 2 and 4/3.
	if !numeric.ApproxEqual(s.CompletionTime(0), 2) || !numeric.ApproxEqual(s.CompletionTime(1), 4.0/3) {
		t.Errorf("completions = %v", s.CompletionTimes())
	}
}

func TestMcNaughtonOptimalMakespan(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 3, Delta: 1},
		{Weight: 1, Volume: 2, Delta: 1},
		{Weight: 1, Volume: 1, Delta: 1},
	})
	pa, err := McNaughton(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqual(pa.Makespan(), 3) { // max(6/2, 3) = 3
		t.Errorf("makespan = %g, want 3", pa.Makespan())
	}
	// Work conservation: every task executes exactly its volume and no task
	// overlaps itself (McNaughton guarantees at most one wrap per task).
	for i := range inst.Tasks {
		var total float64
		for _, segs := range pa.Procs {
			for _, seg := range segs {
				if seg.Task == i {
					total += seg.Duration()
				}
			}
		}
		if !numeric.ApproxEqual(total, inst.Tasks[i].Volume) {
			t.Errorf("task %d executes %g, want %g", i, total, inst.Tasks[i].Volume)
		}
	}
}

func TestMcNaughtonSingleLongTask(t *testing.T) {
	inst := mustInstance(t, 3, []schedule.Task{
		{Weight: 1, Volume: 5, Delta: 1},
		{Weight: 1, Volume: 1, Delta: 1},
	})
	pa, err := McNaughton(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqual(pa.Makespan(), 5) {
		t.Errorf("makespan = %g, want 5 (the longest task)", pa.Makespan())
	}
}

func TestCompareOnInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := unitDeltaInstance(rng, 4, 2)
	opt := core.LowerBound(inst)
	rows, err := CompareOnInstance(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 {
		t.Errorf("expected at least 6 comparison rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Objective <= 0 {
			t.Errorf("%s: non-positive objective %g", r.Name, r.Objective)
		}
		if r.Ratio < 1-1e-6 {
			t.Errorf("%s: ratio %g below 1 against a lower bound", r.Name, r.Ratio)
		}
	}
}

// Property: the Kawaguchi–Kyan LRF schedule respects its theoretical bound of
// (1+√2)/2 ≈ 1.207 times the optimum; the squashed-area bound is used as the
// reference, so the measured ratio may exceed the bound only because the
// reference is itself below the optimum — the check therefore uses the looser
// but always-valid factor 2 sanity bound and validates the schedule.
func TestQuickListSchedulingSanity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := unitDeltaInstance(rng, 1+rng.Intn(8), 1+rng.Intn(3))
		lrf, err := LRF(inst)
		if err != nil {
			return false
		}
		if err := lrf.Validate(); err != nil {
			return false
		}
		spt, err := SPT(inst)
		if err != nil {
			return false
		}
		if err := spt.Validate(); err != nil {
			return false
		}
		// Non-preemptive single-processor-per-task schedules can never beat
		// the height bound or the squashed-area bound.
		lb := core.LowerBound(inst)
		return lrf.WeightedCompletionTime() >= lb-1e-6 && spt.WeightedCompletionTime() >= lb-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: McNaughton's makespan equals the theoretical optimum
// max(ΣV/P, max V) and the assignment never runs a task on two processors at
// the same instant.
func TestQuickMcNaughtonOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := unitDeltaInstance(rng, 1+rng.Intn(8), 1+rng.Intn(4))
		pa, err := McNaughton(inst)
		if err != nil {
			return false
		}
		want := 0.0
		var total float64
		for _, t := range inst.Tasks {
			total += t.Volume
			if t.Volume > want {
				want = t.Volume
			}
		}
		if lb := total / float64(int(inst.P)); lb > want {
			want = lb
		}
		if !numeric.ApproxEqualTol(pa.Makespan(), want, 1e-6) {
			return false
		}
		return pa.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
