// Package baselines implements the comparison algorithms appearing in
// Table I of the paper: Smith's rule on the squashed platform, SPT and LRF
// (Kawaguchi–Kyan) list scheduling for single-processor tasks, weighted
// round-robin processor sharing, and McNaughton's wrap-around rule for the
// makespan. They serve as reference points for the Table I reproduction
// (experiment E9) and as sanity baselines in the examples.
package baselines

import (
	"fmt"
	"math"
	"sort"

	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/stepfunc"
)

// SmithSequential schedules the tasks one after another, each alone on the
// platform at min(δ_i, P) processors, in Smith order (non-decreasing V_i/w_i).
// When every δ_i >= P this is Smith's rule on the squashed platform and is
// optimal (the "= P, clairvoyant, polynomial" row of Table I); for general
// instances it is a simple clairvoyant baseline.
func SmithSequential(inst *schedule.Instance) (*schedule.ColumnSchedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	order := inst.SmithOrder()
	completions := make([]float64, inst.N())
	profiles := make([]*stepfunc.StepFunc, inst.N())
	now := 0.0
	for _, task := range order {
		width := inst.EffectiveDelta(task)
		duration := inst.Tasks[task].Volume / width
		profile := stepfunc.Constant(0)
		profile.AddOn(now, now+duration, width)
		profiles[task] = profile
		now += duration
		completions[task] = now
	}
	return schedule.FromAllocationFunctions(inst, completions, profiles)
}

// ListSchedule performs non-preemptive list scheduling of single-processor
// tasks: tasks are taken in the given order and each starts on the processor
// that becomes available first. Every task must have δ_i >= 1; it runs on
// exactly one processor for V_i time units. This is the classical machinery
// behind the δ_i = 1 rows of Table I.
func ListSchedule(inst *schedule.Instance, order []int) (*schedule.ColumnSchedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if len(order) != inst.N() || !numeric.IsPermutation(order) {
		return nil, fmt.Errorf("baselines: order %v is not a permutation of the %d tasks", order, inst.N())
	}
	p := int(math.Floor(inst.P + numeric.Eps))
	if p < 1 {
		return nil, fmt.Errorf("baselines: list scheduling needs at least one whole processor, P = %g", inst.P)
	}
	for i := range inst.Tasks {
		if inst.Tasks[i].Delta < 1-numeric.Eps {
			return nil, fmt.Errorf("baselines: list scheduling requires δ_i >= 1, task %d has δ = %g", i, inst.Tasks[i].Delta)
		}
	}
	free := make([]float64, p) // next free time of each processor
	completions := make([]float64, inst.N())
	profiles := make([]*stepfunc.StepFunc, inst.N())
	for _, task := range order {
		// Pick the processor that frees up first.
		best := 0
		for q := 1; q < p; q++ {
			if free[q] < free[best] {
				best = q
			}
		}
		start := free[best]
		end := start + inst.Tasks[task].Volume
		free[best] = end
		completions[task] = end
		profile := stepfunc.Constant(0)
		profile.AddOn(start, end, 1)
		profiles[task] = profile
	}
	return schedule.FromAllocationFunctions(inst, completions, profiles)
}

// SPT runs shortest-processing-time list scheduling (optimal for ΣC_i with
// single-processor tasks, the "δ=1, ΣC_i, clairvoyant" row of Table I).
func SPT(inst *schedule.Instance) (*schedule.ColumnSchedule, error) {
	order := numeric.IdentityPermutation(inst.N())
	sort.SliceStable(order, func(a, b int) bool {
		return inst.Tasks[order[a]].Volume < inst.Tasks[order[b]].Volume
	})
	return ListSchedule(inst, order)
}

// LRF runs largest-ratio-first list scheduling (WSPT order, non-increasing
// w_i/V_i), the (1+√2)/2-approximation of Kawaguchi and Kyan for ΣwC with
// single-processor tasks (the last row of Table I).
func LRF(inst *schedule.Instance) (*schedule.ColumnSchedule, error) {
	order := numeric.IdentityPermutation(inst.N())
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := inst.Tasks[order[a]], inst.Tasks[order[b]]
		return ta.Weight/ta.Volume > tb.Weight/tb.Volume
	})
	return ListSchedule(inst, order)
}

// WeightedRoundRobin simulates weighted processor sharing of a single
// processor (or, equivalently, of the squashed platform of speed P treated as
// one processor): every alive task receives a share proportional to its
// weight, recomputed at completions. It is the non-clairvoyant
// 2-approximation of Kim and Chwa for the "δ = P" row of Table I, and ignores
// the individual degree bounds by design.
func WeightedRoundRobin(inst *schedule.Instance) (*schedule.ColumnSchedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	relaxed := inst.Clone()
	for i := range relaxed.Tasks {
		relaxed.Tasks[i].Delta = relaxed.P
	}
	s, err := core.RunWDEQ(relaxed)
	if err != nil {
		return nil, err
	}
	// Rebind the schedule to the original instance: the allocations are valid
	// for it only when δ_i >= P; callers use the completion times and the
	// objective, which is what the baseline is for.
	out := s.Clone()
	out.Inst = inst
	return out, nil
}

// McNaughton builds the classical wrap-around preemptive schedule minimizing
// the makespan of single-processor tasks: the optimal makespan is
// max(ΣV_i/P, max_i V_i) and every task is split across at most two
// processors. It returns the per-processor assignment directly.
func McNaughton(inst *schedule.Instance) (*schedule.ProcessorAssignment, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	p := int(math.Floor(inst.P + numeric.Eps))
	if p < 1 {
		return nil, fmt.Errorf("baselines: McNaughton needs at least one whole processor, P = %g", inst.P)
	}
	cmax := 0.0
	var total float64
	for _, t := range inst.Tasks {
		total += t.Volume
		if t.Volume > cmax {
			cmax = t.Volume
		}
	}
	if lb := total / float64(p); lb > cmax {
		cmax = lb
	}
	pa := &schedule.ProcessorAssignment{
		Inst:        inst,
		Procs:       make([][]schedule.Segment, p),
		Completions: make([]float64, inst.N()),
	}
	proc := 0
	used := 0.0
	for i, t := range inst.Tasks {
		remaining := t.Volume
		completion := 0.0
		for remaining > 1e-12 {
			avail := cmax - used
			take := math.Min(remaining, avail)
			if take > 1e-12 {
				pa.Procs[proc] = append(pa.Procs[proc], schedule.Segment{Task: i, Start: used, End: used + take})
				if used+take > completion {
					completion = used + take
				}
				used += take
				remaining -= take
			}
			if cmax-used <= 1e-12 {
				proc++
				used = 0
			}
			if proc >= p && remaining > 1e-9 {
				return nil, fmt.Errorf("baselines: McNaughton overflow placing task %d", i)
			}
		}
		pa.Completions[i] = completion
	}
	return pa, nil
}

// Comparison is one row of an algorithm comparison: the algorithm name, its
// objective value and its ratio to a reference value (typically the optimum
// or a lower bound).
type Comparison struct {
	Name      string
	Objective float64
	Ratio     float64
}

// CompareOnInstance runs the library's main algorithms and the applicable
// baselines on the instance and reports their weighted completion times
// relative to the given reference value. Baselines whose assumptions do not
// hold for the instance (for example list scheduling when some δ_i < 1) are
// skipped.
func CompareOnInstance(inst *schedule.Instance, reference float64) ([]Comparison, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	var rows []Comparison
	add := func(name string, s *schedule.ColumnSchedule, err error) {
		if err != nil {
			return
		}
		obj := s.WeightedCompletionTime()
		ratio := math.Inf(1)
		if reference > 0 {
			ratio = obj / reference
		}
		rows = append(rows, Comparison{Name: name, Objective: obj, Ratio: ratio})
	}

	wdeq, err := core.RunWDEQ(inst)
	add("WDEQ (non-clairvoyant)", wdeq, err)
	deq, err := core.RunDEQ(inst)
	add("DEQ (unweighted, non-clairvoyant)", deq, err)
	smithGreedy, err := core.GreedySmith(inst)
	if err == nil {
		add("Greedy (Smith order)", smithGreedy.Schedule, nil)
	}
	best, err := core.BestGreedy(inst, nil, 16)
	if err == nil {
		add("Greedy (best order)", best.Schedule, nil)
	}
	cmax, err := core.CmaxOptimal(inst)
	add("Cmax-optimal (all deadlines equal)", cmax, err)
	smithSeq, err := SmithSequential(inst)
	add("Smith sequential", smithSeq, err)
	wrr, err := WeightedRoundRobin(inst)
	add("Weighted round-robin (δ ignored)", wrr, err)

	allUnit := true
	for i := range inst.Tasks {
		if inst.Tasks[i].Delta < 1 {
			allUnit = false
			break
		}
	}
	if allUnit && inst.P >= 1 {
		spt, err := SPT(inst)
		add("SPT list scheduling (δ=1 view)", spt, err)
		lrf, err := LRF(inst)
		add("LRF / Kawaguchi-Kyan (δ=1 view)", lrf, err)
	}
	return rows, nil
}
