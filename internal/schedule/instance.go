// Package schedule defines the data model of the malleable-task scheduling
// library: problem instances, column-based fractional schedules (the
// MWCT-CB-F formulation of the paper), their conversion to per-processor
// integral schedules (Theorem 3), and the associated metrics (weighted sum of
// completion times, makespan, preemption counts).
package schedule

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"github.com/malleable-sched/malleable/internal/numeric"
)

// Task is a work-preserving malleable task.
type Task struct {
	// Name is an optional human-readable identifier used in reports.
	Name string `json:"name,omitempty"`
	// Weight is the coefficient w_i of the task's completion time in the
	// objective. It must be positive.
	Weight float64 `json:"weight"`
	// Volume is the total work V_i (the sequential processing time).
	Volume float64 `json:"volume"`
	// Delta is the maximum number of processors the task can use
	// simultaneously (the paper's δ_i). It must be positive and at most the
	// instance's processor count to be meaningful.
	Delta float64 `json:"delta"`
	// Due is an optional due date, used only by the maximum-lateness metric.
	Due float64 `json:"due,omitempty"`
	// Curve is an optional per-task speedup-curve parameter, interpreted by
	// the run's speedup model (internal/speedup): the power-law exponent for
	// PowerLaw, the serial fraction for Amdahl. Zero means the model's
	// default; the paper's linear-cap model ignores it entirely.
	Curve float64 `json:"curve,omitempty"`
}

// Height returns V_i / δ_i, the minimum possible execution time of the task.
func (t Task) Height() float64 { return t.Volume / t.Delta }

// SmithRatio returns V_i / w_i, the key of Smith's rule (smaller first).
func (t Task) SmithRatio() float64 { return t.Volume / t.Weight }

// Instance is a malleable scheduling problem: P identical processors and a
// set of tasks.
type Instance struct {
	// P is the total number of processors (the paper allows the fractional
	// relaxation, so P is a float64; generators produce integer values).
	P float64 `json:"processors"`
	// Tasks is the task set. The order of this slice defines task indices
	// used throughout the library.
	Tasks []Task `json:"tasks"`
}

// NewInstance builds an instance and validates it.
func NewInstance(p float64, tasks []Task) (*Instance, error) {
	inst := &Instance{P: p, Tasks: append([]Task(nil), tasks...)}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// N returns the number of tasks.
func (in *Instance) N() int { return len(in.Tasks) }

// Validate checks that the instance data is well formed: positive processor
// count, and positive weight, volume and degree bound for every task.
func (in *Instance) Validate() error {
	if !(in.P > 0) || math.IsInf(in.P, 0) || math.IsNaN(in.P) {
		return fmt.Errorf("schedule: processor count must be positive and finite, got %g", in.P)
	}
	if len(in.Tasks) == 0 {
		return fmt.Errorf("schedule: instance has no tasks")
	}
	for i, t := range in.Tasks {
		if !(t.Weight > 0) || math.IsNaN(t.Weight) || math.IsInf(t.Weight, 0) {
			return fmt.Errorf("schedule: task %d has non-positive weight %g", i, t.Weight)
		}
		if !(t.Volume > 0) || math.IsNaN(t.Volume) || math.IsInf(t.Volume, 0) {
			return fmt.Errorf("schedule: task %d has non-positive volume %g", i, t.Volume)
		}
		if !(t.Delta > 0) || math.IsNaN(t.Delta) || math.IsInf(t.Delta, 0) {
			return fmt.Errorf("schedule: task %d has non-positive degree bound %g", i, t.Delta)
		}
		if t.Due < 0 {
			return fmt.Errorf("schedule: task %d has negative due date %g", i, t.Due)
		}
		if t.Curve < 0 || math.IsNaN(t.Curve) || math.IsInf(t.Curve, 0) {
			return fmt.Errorf("schedule: task %d has invalid speedup-curve parameter %g", i, t.Curve)
		}
	}
	return nil
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	return &Instance{P: in.P, Tasks: append([]Task(nil), in.Tasks...)}
}

// TotalVolume returns the sum of all task volumes.
func (in *Instance) TotalVolume() float64 {
	var k numeric.KahanSum
	for _, t := range in.Tasks {
		k.Add(t.Volume)
	}
	return k.Value()
}

// TotalWeight returns the sum of all task weights.
func (in *Instance) TotalWeight() float64 {
	var k numeric.KahanSum
	for _, t := range in.Tasks {
		k.Add(t.Weight)
	}
	return k.Value()
}

// MaxHeight returns max_i V_i/δ_i, a lower bound on the makespan.
func (in *Instance) MaxHeight() float64 {
	m := 0.0
	for _, t := range in.Tasks {
		if h := t.Height(); h > m {
			m = h
		}
	}
	return m
}

// EffectiveDelta returns min(δ_i, P) for task i: a task can never use more
// processors than the platform holds.
func (in *Instance) EffectiveDelta(i int) float64 {
	return math.Min(in.Tasks[i].Delta, in.P)
}

// OptimalMakespan returns the optimal makespan for work-preserving malleable
// tasks: max(ΣV_i / P, max_i V_i/δ_i). This classical result underlies the
// makespan entry of Table I and is used by the Cmax-optimal schedule builder.
func (in *Instance) OptimalMakespan() float64 {
	cmax := in.TotalVolume() / in.P
	for i := range in.Tasks {
		if h := in.Tasks[i].Volume / in.EffectiveDelta(i); h > cmax {
			cmax = h
		}
	}
	return cmax
}

// SmithOrder returns the task indices sorted by non-decreasing V_i/w_i
// (Smith's rule / WSPT order). Ties are broken by index for determinism.
func (in *Instance) SmithOrder() []int {
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Tasks[order[a]].SmithRatio() < in.Tasks[order[b]].SmithRatio()
	})
	return order
}

// DeltaDescendingOrder returns the task indices sorted by non-increasing δ_i.
func (in *Instance) DeltaDescendingOrder() []int {
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Tasks[order[a]].Delta > in.Tasks[order[b]].Delta
	})
	return order
}

// IsHomogeneousWeights reports whether all task weights are equal.
func (in *Instance) IsHomogeneousWeights() bool {
	for _, t := range in.Tasks {
		if !numeric.ApproxEqual(t.Weight, in.Tasks[0].Weight) {
			return false
		}
	}
	return true
}

// IsLargeDeltaClass reports whether every task satisfies δ_i > P/2, the class
// for which Theorem 11 proves that all optimal schedules are greedy.
func (in *Instance) IsLargeDeltaClass() bool {
	for _, t := range in.Tasks {
		if !(t.Delta > in.P/2) {
			return false
		}
	}
	return true
}

// MarshalJSON implements json.Marshaler (the default struct encoding is used;
// the method exists so that the encoding is part of the package's public
// contract and covered by tests).
func (in *Instance) MarshalJSON() ([]byte, error) {
	type alias Instance
	return json.Marshal((*alias)(in))
}

// UnmarshalJSON implements json.Unmarshaler and validates the decoded
// instance.
func (in *Instance) UnmarshalJSON(data []byte) error {
	type alias Instance
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*in = Instance(a)
	return in.Validate()
}

// String returns a compact description of the instance.
func (in *Instance) String() string {
	return fmt.Sprintf("Instance{P=%g, n=%d, V=%.3g}", in.P, in.N(), in.TotalVolume())
}
