package schedule

import (
	"encoding/json"
	"math"
	"testing"

	"github.com/malleable-sched/malleable/internal/numeric"
)

func testInstance(t *testing.T) *Instance {
	t.Helper()
	inst, err := NewInstance(4, []Task{
		{Name: "a", Weight: 2, Volume: 8, Delta: 2},
		{Name: "b", Weight: 1, Volume: 4, Delta: 4},
		{Name: "c", Weight: 3, Volume: 6, Delta: 3},
	})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

func TestNewInstanceValidation(t *testing.T) {
	cases := []struct {
		name  string
		p     float64
		tasks []Task
	}{
		{"zero processors", 0, []Task{{Weight: 1, Volume: 1, Delta: 1}}},
		{"negative processors", -1, []Task{{Weight: 1, Volume: 1, Delta: 1}}},
		{"nan processors", math.NaN(), []Task{{Weight: 1, Volume: 1, Delta: 1}}},
		{"no tasks", 2, nil},
		{"zero weight", 2, []Task{{Weight: 0, Volume: 1, Delta: 1}}},
		{"zero volume", 2, []Task{{Weight: 1, Volume: 0, Delta: 1}}},
		{"zero delta", 2, []Task{{Weight: 1, Volume: 1, Delta: 0}}},
		{"negative due", 2, []Task{{Weight: 1, Volume: 1, Delta: 1, Due: -1}}},
		{"inf volume", 2, []Task{{Weight: 1, Volume: math.Inf(1), Delta: 1}}},
	}
	for _, c := range cases {
		if _, err := NewInstance(c.p, c.tasks); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	if _, err := NewInstance(2, []Task{{Weight: 1, Volume: 1, Delta: 1}}); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestInstanceAggregates(t *testing.T) {
	inst := testInstance(t)
	if inst.N() != 3 {
		t.Errorf("N = %d", inst.N())
	}
	if !numeric.ApproxEqual(inst.TotalVolume(), 18) {
		t.Errorf("TotalVolume = %g", inst.TotalVolume())
	}
	if !numeric.ApproxEqual(inst.TotalWeight(), 6) {
		t.Errorf("TotalWeight = %g", inst.TotalWeight())
	}
	if !numeric.ApproxEqual(inst.MaxHeight(), 4) { // task a: 8/2
		t.Errorf("MaxHeight = %g", inst.MaxHeight())
	}
	// Optimal makespan = max(18/4, 8/2, 4/4, 6/3) = 4.5
	if !numeric.ApproxEqual(inst.OptimalMakespan(), 4.5) {
		t.Errorf("OptimalMakespan = %g", inst.OptimalMakespan())
	}
	if !numeric.ApproxEqual(inst.EffectiveDelta(1), 4) {
		t.Errorf("EffectiveDelta(1) = %g", inst.EffectiveDelta(1))
	}
}

func TestTaskDerivedQuantities(t *testing.T) {
	task := Task{Weight: 2, Volume: 8, Delta: 4}
	if !numeric.ApproxEqual(task.Height(), 2) {
		t.Errorf("Height = %g", task.Height())
	}
	if !numeric.ApproxEqual(task.SmithRatio(), 4) {
		t.Errorf("SmithRatio = %g", task.SmithRatio())
	}
}

func TestSmithOrder(t *testing.T) {
	inst := testInstance(t)
	// Smith ratios: a: 8/2=4, b: 4/1=4, c: 6/3=2 -> c first, then a, b (stable).
	order := inst.SmithOrder()
	want := []int{2, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("SmithOrder = %v, want %v", order, want)
		}
	}
}

func TestDeltaDescendingOrder(t *testing.T) {
	inst := testInstance(t)
	order := inst.DeltaDescendingOrder()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("DeltaDescendingOrder = %v, want %v", order, want)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	inst := testInstance(t)
	if inst.IsHomogeneousWeights() {
		t.Errorf("weights are heterogeneous")
	}
	if inst.IsLargeDeltaClass() {
		t.Errorf("delta=2 on P=4 is not > P/2")
	}
	homo, _ := NewInstance(2, []Task{
		{Weight: 1, Volume: 1, Delta: 1.5},
		{Weight: 1, Volume: 2, Delta: 2},
	})
	if !homo.IsHomogeneousWeights() || !homo.IsLargeDeltaClass() {
		t.Errorf("homogeneous large-delta instance misclassified")
	}
}

func TestInstanceJSONRoundTrip(t *testing.T) {
	inst := testInstance(t)
	data, err := json.Marshal(inst)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.P != inst.P || back.N() != inst.N() {
		t.Errorf("round trip lost data: %+v", back)
	}
	for i := range back.Tasks {
		if back.Tasks[i] != inst.Tasks[i] {
			t.Errorf("task %d changed: %+v vs %+v", i, back.Tasks[i], inst.Tasks[i])
		}
	}
	// Unmarshal validates.
	if err := json.Unmarshal([]byte(`{"processors":0,"tasks":[]}`), &back); err == nil {
		t.Errorf("invalid JSON instance accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	inst := testInstance(t)
	c := inst.Clone()
	c.Tasks[0].Volume = 99
	if inst.Tasks[0].Volume == 99 {
		t.Errorf("Clone shares task storage")
	}
}

func TestInstanceString(t *testing.T) {
	if testInstance(t).String() == "" {
		t.Errorf("empty String")
	}
}
