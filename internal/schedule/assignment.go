package schedule

import (
	"fmt"
	"math"
	"sort"

	"github.com/malleable-sched/malleable/internal/numeric"
)

// Segment is a time interval during which one processor executes one task.
type Segment struct {
	// Task is the index of the executed task.
	Task int
	// Start and End delimit the half-open execution interval [Start, End).
	Start, End float64
}

// Duration returns the length of the segment.
func (s Segment) Duration() float64 { return s.End - s.Start }

// ProcessorAssignment is an integral schedule: each of the P processors
// executes a sequence of non-overlapping task segments. It is the MWCT (as
// opposed to MWCT-CB-F) view of a schedule, produced from a column-based
// fractional schedule by the constructive proof of Theorem 3.
type ProcessorAssignment struct {
	// Inst is the instance being scheduled.
	Inst *Instance
	// Procs[p] lists the segments executed by processor p, sorted by start
	// time. Idle periods are simply gaps between segments.
	Procs [][]Segment
	// Completions[i] is the completion time of task i.
	Completions []float64
}

// FromColumns converts a column-based fractional schedule into an integral
// per-processor schedule with the same completion times, following the proof
// of Theorem 3: inside each column the per-task areas are stacked onto
// processors in completion order, starting from the first partially available
// processor, so that every task uses either ⌊d_i,j⌋ or ⌈d_i,j⌉ processors at
// every instant of the column.
//
// The instance's processor count must be (numerically) an integer.
func FromColumns(s *ColumnSchedule) (*ProcessorAssignment, error) {
	p := int(math.Round(s.Inst.P))
	if !numeric.ApproxEqual(float64(p), s.Inst.P) || p <= 0 {
		return nil, fmt.Errorf("schedule: integral conversion needs an integer processor count, got %g", s.Inst.P)
	}
	pa := &ProcessorAssignment{
		Inst:        s.Inst,
		Procs:       make([][]Segment, p),
		Completions: s.CompletionTimes(),
	}
	for j := 0; j < s.NumColumns(); j++ {
		start := s.ColumnStart(j)
		length := s.ColumnLength(j)
		if length <= numeric.Eps {
			continue
		}
		proc := 0   // current processor being filled
		used := 0.0 // portion of the current processor already used (from the column start)
		// Stack tasks in completion order (Order), as in Figure 2 of the paper.
		for _, task := range s.Order {
			area := s.Alloc[task][j] * length
			if area <= numeric.Eps*length {
				continue
			}
			for area > 1e-12 && proc < p {
				avail := length - used
				take := math.Min(area, avail)
				if take > 1e-12 {
					pa.Procs[proc] = append(pa.Procs[proc], Segment{
						Task:  task,
						Start: start + used,
						End:   start + used + take,
					})
					used += take
					area -= take
				}
				if length-used <= 1e-12 {
					proc++
					used = 0
				}
			}
			if area > 1e-9*length {
				return nil, fmt.Errorf("schedule: column %d overflows the platform while placing task %d (left-over area %g)", j, task, area)
			}
		}
	}
	pa.mergeAdjacent()
	return pa, nil
}

// mergeAdjacent merges back-to-back segments of the same task on the same
// processor, which arise when a task keeps a processor across a column
// boundary.
func (pa *ProcessorAssignment) mergeAdjacent() {
	for p := range pa.Procs {
		segs := pa.Procs[p]
		sort.Slice(segs, func(a, b int) bool { return segs[a].Start < segs[b].Start })
		var out []Segment
		for _, seg := range segs {
			if n := len(out); n > 0 && out[n-1].Task == seg.Task && numeric.ApproxEqual(out[n-1].End, seg.Start) {
				out[n-1].End = seg.End
				continue
			}
			out = append(out, seg)
		}
		pa.Procs[p] = out
	}
}

// NumProcessors returns the number of processors in the assignment.
func (pa *ProcessorAssignment) NumProcessors() int { return len(pa.Procs) }

// Validate checks that the integral schedule is feasible:
//
//  1. segments on every processor are disjoint and ordered;
//  2. every task executes for a total duration equal to its volume;
//  3. no task runs after its recorded completion time;
//  4. at every instant a task uses at most ⌈δ_i⌉ processors (with δ_i an
//     integer in all generated instances, this is exactly the δ_i bound of
//     MWCT).
func (pa *ProcessorAssignment) Validate() error {
	n := pa.Inst.N()
	work := make([]float64, n)
	type event struct {
		t     float64
		task  int
		delta int
	}
	var events []event
	for p, segs := range pa.Procs {
		for k, seg := range segs {
			if seg.End < seg.Start-numeric.Eps {
				return fmt.Errorf("schedule: processor %d has a reversed segment %+v", p, seg)
			}
			if seg.Task < 0 || seg.Task >= n {
				return fmt.Errorf("schedule: processor %d runs unknown task %d", p, seg.Task)
			}
			if k > 0 && seg.Start < segs[k-1].End-numeric.Eps {
				return fmt.Errorf("schedule: processor %d has overlapping segments at %g", p, seg.Start)
			}
			if seg.End > pa.Completions[seg.Task]+1e-6 {
				return fmt.Errorf("schedule: task %d runs until %g after its completion time %g",
					seg.Task, seg.End, pa.Completions[seg.Task])
			}
			work[seg.Task] += seg.Duration()
			events = append(events, event{seg.Start, seg.Task, +1}, event{seg.End, seg.Task, -1})
		}
	}
	for i := 0; i < n; i++ {
		if !numeric.ApproxEqualTol(work[i], pa.Inst.Tasks[i].Volume, 1e-6) {
			return fmt.Errorf("schedule: task %d executes for %g, want volume %g", i, work[i], pa.Inst.Tasks[i].Volume)
		}
	}
	// Degree-bound check by sweeping events. Events whose times differ only by
	// round-off are applied atomically so that a segment ending at t and
	// another starting at t (up to float error) do not produce a transient
	// double count.
	sort.Slice(events, func(a, b int) bool { return events[a].t < events[b].t })
	running := make([]int, n)
	for k := 0; k < len(events); {
		groupEnd := k
		for groupEnd < len(events) && numeric.ApproxEqualTol(events[groupEnd].t, events[k].t, 1e-7) {
			groupEnd++
		}
		for g := k; g < groupEnd; g++ {
			running[events[g].task] += events[g].delta
		}
		for g := k; g < groupEnd; g++ {
			task := events[g].task
			limit := int(math.Ceil(pa.Inst.EffectiveDelta(task) - numeric.Eps))
			if running[task] > limit {
				return fmt.Errorf("schedule: task %d uses %d processors at time %g, degree bound %g",
					task, running[task], events[g].t, pa.Inst.EffectiveDelta(task))
			}
		}
		k = groupEnd
	}
	return nil
}

// PreemptionCount returns, per task and in total, the number of preemptions:
// a preemption is counted every time a processor stops executing a task
// strictly before that task's completion time (the task is interrupted on
// that processor, regardless of whether it resumes elsewhere).
func (pa *ProcessorAssignment) PreemptionCount() (perTask []int, total int) {
	perTask = make([]int, pa.Inst.N())
	for _, segs := range pa.Procs {
		for _, seg := range segs {
			if seg.End < pa.Completions[seg.Task]-1e-7 {
				perTask[seg.Task]++
				total++
			}
		}
	}
	return perTask, total
}

// allocationTimeline returns, for task i, the breakpoint times and integer
// processor counts of its execution (how many processors run it over time).
func (pa *ProcessorAssignment) allocationTimeline(task int) (times []float64, counts []int) {
	type event struct {
		t     float64
		delta int
	}
	var events []event
	for _, segs := range pa.Procs {
		for _, seg := range segs {
			if seg.Task != task || seg.Duration() <= numeric.Eps {
				continue
			}
			events = append(events, event{seg.Start, +1}, event{seg.End, -1})
		}
	}
	if len(events) == 0 {
		return nil, nil
	}
	sort.Slice(events, func(a, b int) bool { return events[a].t < events[b].t })
	cur := 0
	for k := 0; k < len(events); {
		t := events[k].t
		for k < len(events) && numeric.ApproxEqual(events[k].t, t) {
			cur += events[k].delta
			k++
		}
		times = append(times, t)
		counts = append(counts, cur)
	}
	return times, counts
}

// AllocationChangeCount returns, per task and in total, the number of changes
// over time in the integer number of processors executing the task, excluding
// the initial allocation and the final release (the paper's counting in
// Lemma 9, whose total is bounded by 3n for schedules produced by the
// water-filling algorithm).
func (pa *ProcessorAssignment) AllocationChangeCount() (perTask []int, total int) {
	perTask = make([]int, pa.Inst.N())
	for i := range perTask {
		_, counts := pa.allocationTimeline(i)
		if len(counts) == 0 {
			continue
		}
		// Drop the trailing zero (final release); count changes between
		// consecutive distinct positive-period counts.
		changes := 0
		for k := 1; k < len(counts); k++ {
			if counts[k] == 0 && k == len(counts)-1 {
				break
			}
			if counts[k] != counts[k-1] {
				changes++
			}
		}
		perTask[i] = changes
		total += changes
	}
	return perTask, total
}

// MaxConcurrency returns the maximum number of processors simultaneously
// executing task i anywhere in the schedule.
func (pa *ProcessorAssignment) MaxConcurrency(task int) int {
	_, counts := pa.allocationTimeline(task)
	m := 0
	for _, c := range counts {
		if c > m {
			m = c
		}
	}
	return m
}

// WeightedCompletionTime returns Σ w_i C_i for the assignment.
func (pa *ProcessorAssignment) WeightedCompletionTime() float64 {
	var k numeric.KahanSum
	for i, c := range pa.Completions {
		k.Add(pa.Inst.Tasks[i].Weight * c)
	}
	return k.Value()
}

// Makespan returns the largest completion time.
func (pa *ProcessorAssignment) Makespan() float64 {
	m := 0.0
	for _, c := range pa.Completions {
		if c > m {
			m = c
		}
	}
	return m
}
