package schedule

import (
	"fmt"
	"io"
	"strings"

	"github.com/malleable-sched/malleable/internal/numeric"
)

// ganttWidth is the number of character cells used for the time axis of the
// ASCII Gantt charts.
const ganttWidth = 72

// taskGlyph returns the character used to draw task i in ASCII charts.
func taskGlyph(i int) byte {
	const glyphs = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	return glyphs[i%len(glyphs)]
}

// RenderGantt writes an ASCII Gantt chart of the column-based schedule to w.
// Each row is one task; the horizontal axis is time; the characters show the
// (rounded) share of the platform the task holds in each column. It is the
// textual analogue of Figures 2-7 of the paper and is meant for examples and
// debugging rather than precise reporting.
func (s *ColumnSchedule) RenderGantt(w io.Writer) error {
	horizon := s.Makespan()
	if horizon <= 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}
	scale := float64(ganttWidth) / horizon
	if _, err := fmt.Fprintf(w, "column schedule: P=%g, horizon=%.4g, objective ΣwC=%.6g\n",
		s.Inst.P, horizon, s.WeightedCompletionTime()); err != nil {
		return err
	}
	for i := 0; i < s.Inst.N(); i++ {
		row := make([]byte, ganttWidth)
		for c := range row {
			row[c] = '.'
		}
		for j := 0; j < s.NumColumns(); j++ {
			if s.Alloc[i][j] <= numeric.Eps || s.ColumnLength(j) <= numeric.Eps {
				continue
			}
			from := int(s.ColumnStart(j) * scale)
			to := int(s.Times[j] * scale)
			if to >= ganttWidth {
				to = ganttWidth - 1
			}
			for c := from; c <= to; c++ {
				row[c] = taskGlyph(i)
			}
		}
		name := s.Inst.Tasks[i].Name
		if name == "" {
			name = fmt.Sprintf("T%d", i+1)
		}
		if _, err := fmt.Fprintf(w, "%-10s |%s| C=%.4g alloc<=%.3g\n",
			name, row, s.CompletionTime(i), maxAlloc(s.Alloc[i])); err != nil {
			return err
		}
	}
	return nil
}

func maxAlloc(row []float64) float64 {
	m := 0.0
	for _, a := range row {
		if a > m {
			m = a
		}
	}
	return m
}

// RenderGantt writes an ASCII Gantt chart of the integral schedule to w, one
// row per processor.
func (pa *ProcessorAssignment) RenderGantt(w io.Writer) error {
	horizon := pa.Makespan()
	if horizon <= 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}
	scale := float64(ganttWidth) / horizon
	if _, err := fmt.Fprintf(w, "processor schedule: P=%d, horizon=%.4g, objective ΣwC=%.6g\n",
		pa.NumProcessors(), horizon, pa.WeightedCompletionTime()); err != nil {
		return err
	}
	for p, segs := range pa.Procs {
		row := make([]byte, ganttWidth)
		for c := range row {
			row[c] = '.'
		}
		for _, seg := range segs {
			if seg.Duration() <= numeric.Eps {
				continue
			}
			from := int(seg.Start * scale)
			to := int(seg.End * scale)
			if to >= ganttWidth {
				to = ganttWidth - 1
			}
			for c := from; c <= to; c++ {
				row[c] = taskGlyph(seg.Task)
			}
		}
		if _, err := fmt.Fprintf(w, "P%-3d |%s|\n", p+1, row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the column-based schedule as CSV rows
// (task,column,column_start,column_end,allocation), suitable for plotting.
func (s *ColumnSchedule) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "task,column,column_start,column_end,allocation"); err != nil {
		return err
	}
	for i := 0; i < s.Inst.N(); i++ {
		for j := 0; j < s.NumColumns(); j++ {
			if s.Alloc[i][j] <= numeric.Eps {
				continue
			}
			if _, err := fmt.Fprintf(w, "%d,%d,%g,%g,%g\n",
				i, j, s.ColumnStart(j), s.Times[j], s.Alloc[i][j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Summary returns a one-line description of the schedule's key metrics.
func (s *ColumnSchedule) Summary() string {
	_, changes := s.AllocationChanges()
	return fmt.Sprintf("n=%d ΣwC=%.6g ΣC=%.6g Cmax=%.6g changes=%d",
		s.Inst.N(), s.WeightedCompletionTime(), s.SumCompletionTimes(), s.Makespan(), changes)
}

// Summary returns a one-line description of the integral schedule.
func (pa *ProcessorAssignment) Summary() string {
	_, preempt := pa.PreemptionCount()
	_, changes := pa.AllocationChangeCount()
	return fmt.Sprintf("n=%d P=%d ΣwC=%.6g Cmax=%.6g preemptions=%d changes=%d",
		pa.Inst.N(), pa.NumProcessors(), pa.WeightedCompletionTime(), pa.Makespan(), preempt, changes)
}

// FormatCompletionTable renders a small text table of per-task completion
// times and weighted contributions, used by the CLI and the examples.
func (s *ColumnSchedule) FormatCompletionTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %12s\n", "task", "weight", "volume", "delta", "completion")
	for j, task := range s.Order {
		t := s.Inst.Tasks[task]
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("T%d", task+1)
		}
		fmt.Fprintf(&b, "%-10s %10.4g %10.4g %10.4g %12.6g\n", name, t.Weight, t.Volume, t.Delta, s.Times[j])
	}
	fmt.Fprintf(&b, "objective ΣwC = %.6g\n", s.WeightedCompletionTime())
	return b.String()
}
