package schedule

import (
	"bytes"
	"strings"
	"testing"

	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/stepfunc"
)

// twoTaskSchedule builds a small hand-checked schedule:
// P=2, T0 (V=2, δ=2, w=1), T1 (V=2, δ=1, w=2).
// Column 1 = [0,1]: T0 gets 2 procs -> finishes at 1. T1 gets 0.
// Column 2 = [1,3]: T1 gets 1 proc -> finishes at 3.
func twoTaskSchedule(t *testing.T) *ColumnSchedule {
	t.Helper()
	inst, err := NewInstance(2, []Task{
		{Weight: 1, Volume: 2, Delta: 2},
		{Weight: 2, Volume: 2, Delta: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewColumnSchedule(inst)
	s.Order = []int{0, 1}
	s.Times = []float64{1, 3}
	s.Alloc[0][0] = 2
	s.Alloc[1][1] = 1
	if err := s.Validate(); err != nil {
		t.Fatalf("hand-built schedule invalid: %v", err)
	}
	return s
}

func TestColumnGeometry(t *testing.T) {
	s := twoTaskSchedule(t)
	if s.NumColumns() != 2 {
		t.Errorf("NumColumns = %d", s.NumColumns())
	}
	if s.ColumnStart(0) != 0 || s.ColumnStart(1) != 1 {
		t.Errorf("ColumnStart wrong")
	}
	if s.ColumnLength(0) != 1 || s.ColumnLength(1) != 2 {
		t.Errorf("ColumnLength wrong")
	}
	if s.CompletionTime(0) != 1 || s.CompletionTime(1) != 3 {
		t.Errorf("CompletionTime wrong")
	}
	ct := s.CompletionTimes()
	if ct[0] != 1 || ct[1] != 3 {
		t.Errorf("CompletionTimes = %v", ct)
	}
	if s.ColumnOf(1) != 1 {
		t.Errorf("ColumnOf wrong")
	}
}

func TestObjectives(t *testing.T) {
	s := twoTaskSchedule(t)
	if !numeric.ApproxEqual(s.WeightedCompletionTime(), 1*1+2*3) {
		t.Errorf("WeightedCompletionTime = %g", s.WeightedCompletionTime())
	}
	if !numeric.ApproxEqual(s.SumCompletionTimes(), 4) {
		t.Errorf("SumCompletionTimes = %g", s.SumCompletionTimes())
	}
	if !numeric.ApproxEqual(s.Makespan(), 3) {
		t.Errorf("Makespan = %g", s.Makespan())
	}
}

func TestMaxLateness(t *testing.T) {
	inst, _ := NewInstance(2, []Task{
		{Weight: 1, Volume: 2, Delta: 2, Due: 2},
		{Weight: 2, Volume: 2, Delta: 1, Due: 2},
	})
	s := NewColumnSchedule(inst)
	s.Order = []int{0, 1}
	s.Times = []float64{1, 3}
	s.Alloc[0][0] = 2
	s.Alloc[1][1] = 1
	if !numeric.ApproxEqual(s.MaxLateness(), 1) { // task 1 finishes at 3, due 2
		t.Errorf("MaxLateness = %g", s.MaxLateness())
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	base := func(t *testing.T) *ColumnSchedule { return twoTaskSchedule(t) }

	s := base(t)
	s.Alloc[0][0] = 3 // exceeds δ and P
	if err := s.Validate(); err == nil {
		t.Errorf("degree/volume violation not caught")
	}

	s = base(t)
	s.Alloc[1][0] = 1.5 // column 0 usage 3.5 > P=2
	if err := s.Validate(); err == nil {
		t.Errorf("capacity violation not caught")
	}

	s = base(t)
	s.Alloc[0][1] = 0.5 // task 0 works after completion
	if err := s.Validate(); err == nil {
		t.Errorf("post-completion work not caught")
	}

	s = base(t)
	s.Alloc[1][1] = 0.5 // volume not met
	if err := s.Validate(); err == nil {
		t.Errorf("volume shortfall not caught")
	}

	s = base(t)
	s.Times = []float64{3, 1} // unsorted
	if err := s.Validate(); err == nil {
		t.Errorf("unsorted completion times not caught")
	}

	s = base(t)
	s.Order = []int{0, 0}
	if err := s.Validate(); err == nil {
		t.Errorf("non-permutation order not caught")
	}

	s = base(t)
	s.Alloc[0][0] = -1
	if err := s.Validate(); err == nil {
		t.Errorf("negative allocation not caught")
	}
}

func TestAllocationChanges(t *testing.T) {
	// Three columns for one task with allocations 1, 2, 2: exactly one change.
	inst, _ := NewInstance(4, []Task{
		{Weight: 1, Volume: 5, Delta: 2},
		{Weight: 1, Volume: 1, Delta: 1},
		{Weight: 1, Volume: 8, Delta: 4},
	})
	s := NewColumnSchedule(inst)
	s.Order = []int{1, 0, 2}
	s.Times = []float64{1, 3, 4}
	s.Alloc[1][0] = 1
	s.Alloc[0][0] = 1
	s.Alloc[0][1] = 2
	s.Alloc[2][0] = 2
	s.Alloc[2][1] = 2
	s.Alloc[2][2] = 2
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	perTask, total := s.AllocationChanges()
	if perTask[0] != 1 || perTask[1] != 0 || perTask[2] != 0 {
		t.Errorf("perTask = %v", perTask)
	}
	if total != 1 {
		t.Errorf("total = %d", total)
	}
}

func TestAllocationAndUsageProfiles(t *testing.T) {
	s := twoTaskSchedule(t)
	p0 := s.AllocationProfile(0)
	if p0.Value(0.5) != 2 || p0.Value(1.5) != 0 {
		t.Errorf("AllocationProfile(0) wrong: %v", p0)
	}
	u := s.UsageProfile()
	if u.Value(0.5) != 2 || u.Value(2) != 1 || u.Value(5) != 0 {
		t.Errorf("UsageProfile wrong: %v", u)
	}
	// Integral of usage equals total volume.
	if !numeric.ApproxEqual(u.Integrate(0, 10), s.Inst.TotalVolume()) {
		t.Errorf("usage integral = %g", u.Integrate(0, 10))
	}
}

func TestFromAllocationFunctions(t *testing.T) {
	inst, _ := NewInstance(2, []Task{
		{Weight: 1, Volume: 2, Delta: 2},
		{Weight: 2, Volume: 2, Delta: 1},
	})
	// Task 0: 2 processors on [0,1). Task 1: 1 processor on [0,2).
	prof0 := stepfunc.Constant(0)
	prof0.AddOn(0, 1, 2)
	prof1 := stepfunc.Constant(0)
	prof1.AddOn(0, 2, 1)
	// Note total usage is 3 > P on [0,1): deliberately invalid — the builder
	// must still average correctly; validation rejects it afterwards.
	s, err := FromAllocationFunctions(inst, []float64{1, 2}, []*stepfunc.StepFunc{prof0, prof1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Order[0] != 0 || s.Order[1] != 1 {
		t.Errorf("Order = %v", s.Order)
	}
	if !numeric.ApproxEqual(s.Alloc[0][0], 2) || !numeric.ApproxEqual(s.Alloc[1][0], 1) || !numeric.ApproxEqual(s.Alloc[1][1], 1) {
		t.Errorf("Alloc = %v", s.Alloc)
	}
	if err := s.Validate(); err == nil {
		t.Errorf("over-capacity schedule should fail validation")
	}

	// A feasible variant.
	prof1b := stepfunc.Constant(0)
	prof1b.AddOn(1, 3, 1)
	s2, err := FromAllocationFunctions(inst, []float64{1, 3}, []*stepfunc.StepFunc{prof0, prof1b})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(); err != nil {
		t.Errorf("feasible schedule rejected: %v", err)
	}

	if _, err := FromAllocationFunctions(inst, []float64{1}, nil); err == nil {
		t.Errorf("size mismatch accepted")
	}
}

func TestFromAllocationFunctionsAveragesInsideColumns(t *testing.T) {
	// A profile that varies inside a column must be averaged (Theorem 3).
	inst, _ := NewInstance(4, []Task{
		{Weight: 1, Volume: 3, Delta: 4},
		{Weight: 1, Volume: 6, Delta: 4},
	})
	prof0 := stepfunc.Constant(0)
	prof0.AddOn(0, 1, 1)
	prof0.AddOn(1, 2, 2) // completes at 2, average over [0,2) is 1.5
	prof1 := stepfunc.Constant(0)
	prof1.AddOn(0, 2, 2)
	prof1.AddOn(2, 4, 1)
	s, err := FromAllocationFunctions(inst, []float64{2, 4}, []*stepfunc.StepFunc{prof0, prof1})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqual(s.Alloc[0][0], 1.5) {
		t.Errorf("average allocation = %g, want 1.5", s.Alloc[0][0])
	}
	if err := s.Validate(); err != nil {
		t.Errorf("averaged schedule invalid: %v", err)
	}
}

func TestCloneAndSummaryAndRenderers(t *testing.T) {
	s := twoTaskSchedule(t)
	c := s.Clone()
	c.Alloc[0][0] = 0
	if s.Alloc[0][0] != 2 {
		t.Errorf("Clone shares allocation storage")
	}
	if !strings.Contains(s.Summary(), "ΣwC") {
		t.Errorf("Summary = %q", s.Summary())
	}
	var buf bytes.Buffer
	if err := s.RenderGantt(&buf); err != nil {
		t.Fatalf("RenderGantt: %v", err)
	}
	if !strings.Contains(buf.String(), "column schedule") {
		t.Errorf("gantt output missing header: %q", buf.String())
	}
	buf.Reset()
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.Contains(buf.String(), "task,column") {
		t.Errorf("csv output missing header")
	}
	if !strings.Contains(s.FormatCompletionTable(), "objective") {
		t.Errorf("FormatCompletionTable missing objective")
	}
}
