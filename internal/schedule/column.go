package schedule

import (
	"fmt"
	"math"
	"sort"

	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/stepfunc"
)

// ColumnSchedule is a column-based fractional schedule (the MWCT-CB-F
// formulation, Definition 2 of the paper). Column j is the time interval
// between the completion of the (j-1)-th and j-th finishing tasks; within a
// column every task receives a constant (possibly fractional) number of
// processors.
type ColumnSchedule struct {
	// Inst is the instance being scheduled.
	Inst *Instance
	// Order lists task indices by non-decreasing completion time: Order[j] is
	// the task that completes at the end of column j.
	Order []int
	// Times[j] is the completion time of task Order[j]; non-decreasing.
	Times []float64
	// Alloc[i][j] is the (fractional) number of processors allocated to task
	// i during column j.
	Alloc [][]float64
}

// NewColumnSchedule allocates an empty schedule skeleton for the instance:
// the identity order, zero completion times and zero allocations. Callers
// (the algorithms of internal/core) fill it in.
func NewColumnSchedule(inst *Instance) *ColumnSchedule {
	n := inst.N()
	s := &ColumnSchedule{
		Inst:  inst,
		Order: make([]int, n),
		Times: make([]float64, n),
		Alloc: make([][]float64, n),
	}
	for i := range s.Order {
		s.Order[i] = i
		s.Alloc[i] = make([]float64, n)
	}
	return s
}

// NumColumns returns the number of columns (= number of tasks).
func (s *ColumnSchedule) NumColumns() int { return len(s.Order) }

// ColumnStart returns the start time of column j (0 for the first column).
func (s *ColumnSchedule) ColumnStart(j int) float64 {
	if j == 0 {
		return 0
	}
	return s.Times[j-1]
}

// ColumnLength returns the duration of column j.
func (s *ColumnSchedule) ColumnLength(j int) float64 {
	return s.Times[j] - s.ColumnStart(j)
}

// CompletionTime returns the completion time of task i.
func (s *ColumnSchedule) CompletionTime(i int) float64 {
	for j, task := range s.Order {
		if task == i {
			return s.Times[j]
		}
	}
	panic(fmt.Sprintf("schedule: task %d not in schedule order", i))
}

// CompletionTimes returns the completion time of every task, indexed by task.
func (s *ColumnSchedule) CompletionTimes() []float64 {
	out := make([]float64, s.Inst.N())
	for j, task := range s.Order {
		out[task] = s.Times[j]
	}
	return out
}

// ColumnOf returns the column index in which task i completes.
func (s *ColumnSchedule) ColumnOf(i int) int {
	for j, task := range s.Order {
		if task == i {
			return j
		}
	}
	panic(fmt.Sprintf("schedule: task %d not in schedule order", i))
}

// WeightedCompletionTime returns the objective value Σ w_i C_i.
func (s *ColumnSchedule) WeightedCompletionTime() float64 {
	var k numeric.KahanSum
	for j, task := range s.Order {
		k.Add(s.Inst.Tasks[task].Weight * s.Times[j])
	}
	return k.Value()
}

// SumCompletionTimes returns Σ C_i (the unweighted objective).
func (s *ColumnSchedule) SumCompletionTimes() float64 {
	var k numeric.KahanSum
	for _, t := range s.Times {
		k.Add(t)
	}
	return k.Value()
}

// Makespan returns the largest completion time.
func (s *ColumnSchedule) Makespan() float64 {
	if len(s.Times) == 0 {
		return 0
	}
	return s.Times[len(s.Times)-1]
}

// MaxLateness returns max_i (C_i - Due_i) using the task due dates.
func (s *ColumnSchedule) MaxLateness() float64 {
	worst := math.Inf(-1)
	for j, task := range s.Order {
		l := s.Times[j] - s.Inst.Tasks[task].Due
		if l > worst {
			worst = l
		}
	}
	return worst
}

// Validate checks that the schedule is a valid solution of MWCT-CB-F for its
// instance, up to the default numeric tolerance:
//
//  1. completion times are non-negative and non-decreasing in column order;
//  2. Order is a permutation of the tasks;
//  3. allocations are non-negative, at most δ_i and sum to at most P in every
//     column of positive length;
//  4. no task receives resources after the column in which it completes;
//  5. every task processes exactly its volume.
func (s *ColumnSchedule) Validate() error {
	n := s.Inst.N()
	if len(s.Order) != n || len(s.Times) != n || len(s.Alloc) != n {
		return fmt.Errorf("schedule: inconsistent sizes (order %d, times %d, alloc %d, tasks %d)",
			len(s.Order), len(s.Times), len(s.Alloc), n)
	}
	if !numeric.IsPermutation(s.Order) {
		return fmt.Errorf("schedule: order %v is not a permutation of 0..%d", s.Order, n-1)
	}
	prev := 0.0
	for j, t := range s.Times {
		if t < -numeric.Eps {
			return fmt.Errorf("schedule: negative completion time %g in column %d", t, j)
		}
		if t < prev-numeric.Eps {
			return fmt.Errorf("schedule: completion times not sorted at column %d (%g after %g)", j, t, prev)
		}
		prev = t
	}
	volumeTol := 1e-6
	for i := 0; i < n; i++ {
		if len(s.Alloc[i]) != n {
			return fmt.Errorf("schedule: task %d has %d allocation columns, want %d", i, len(s.Alloc[i]), n)
		}
		var processed numeric.KahanSum
		completionCol := s.ColumnOf(i)
		for j := 0; j < n; j++ {
			a := s.Alloc[i][j]
			l := s.ColumnLength(j)
			if a < -numeric.Eps {
				return fmt.Errorf("schedule: negative allocation %g for task %d in column %d", a, i, j)
			}
			if l > numeric.Eps && a > s.Inst.EffectiveDelta(i)+1e-6 {
				return fmt.Errorf("schedule: task %d exceeds its degree bound in column %d (%g > %g)",
					i, j, a, s.Inst.EffectiveDelta(i))
			}
			if j > completionCol && a*l > 1e-6 {
				return fmt.Errorf("schedule: task %d receives resources in column %d after completing in column %d",
					i, j, completionCol)
			}
			processed.Add(a * l)
		}
		if !numeric.ApproxEqualTol(processed.Value(), s.Inst.Tasks[i].Volume, volumeTol) {
			return fmt.Errorf("schedule: task %d processes volume %g, want %g",
				i, processed.Value(), s.Inst.Tasks[i].Volume)
		}
	}
	for j := 0; j < n; j++ {
		l := s.ColumnLength(j)
		if l <= numeric.Eps {
			continue
		}
		var used numeric.KahanSum
		for i := 0; i < n; i++ {
			used.Add(s.Alloc[i][j])
		}
		if used.Value() > s.Inst.P+1e-6 {
			return fmt.Errorf("schedule: column %d uses %g processors, capacity %g", j, used.Value(), s.Inst.P)
		}
	}
	return nil
}

// AllocationChanges returns, for each task, the number of changes in its
// allocated quantity of processors between consecutive columns of positive
// length, not counting the initial allocation and the final release (the
// paper's counting convention in Lemma 5). The second return value is the
// total over all tasks.
func (s *ColumnSchedule) AllocationChanges() (perTask []int, total int) {
	n := s.Inst.N()
	perTask = make([]int, n)
	for i := 0; i < n; i++ {
		// Collapse to the sequence of allocations over positive-length columns.
		var seq []float64
		for j := 0; j < n; j++ {
			if s.ColumnLength(j) <= numeric.Eps {
				continue
			}
			seq = append(seq, s.Alloc[i][j])
		}
		first, last := -1, -1
		for j, a := range seq {
			if a > numeric.Eps {
				if first == -1 {
					first = j
				}
				last = j
			}
		}
		if first == -1 {
			continue
		}
		changes := 0
		for j := first + 1; j <= last; j++ {
			if !numeric.ApproxEqualTol(seq[j], seq[j-1], 1e-7) {
				changes++
			}
		}
		perTask[i] = changes
		total += changes
	}
	return perTask, total
}

// AllocationProfile returns the allocation of task i as a step function of
// time.
func (s *ColumnSchedule) AllocationProfile(i int) *stepfunc.StepFunc {
	f := stepfunc.Constant(0)
	for j := 0; j < s.NumColumns(); j++ {
		start, end := s.ColumnStart(j), s.Times[j]
		if end-start <= numeric.Eps {
			continue
		}
		if a := s.Alloc[i][j]; a > numeric.Eps {
			f.AddOn(start, end, a)
		}
	}
	return f
}

// UsageProfile returns the total processor usage Σ_i d_i(t) as a step
// function of time.
func (s *ColumnSchedule) UsageProfile() *stepfunc.StepFunc {
	f := stepfunc.Constant(0)
	for j := 0; j < s.NumColumns(); j++ {
		start, end := s.ColumnStart(j), s.Times[j]
		if end-start <= numeric.Eps {
			continue
		}
		var used numeric.KahanSum
		for i := 0; i < s.Inst.N(); i++ {
			used.Add(s.Alloc[i][j])
		}
		if used.Value() > numeric.Eps {
			f.AddOn(start, end, used.Value())
		}
	}
	return f
}

// FromAllocationFunctions builds a column-based schedule from arbitrary
// per-task allocation profiles d_i(t) and their completion times, by
// averaging each profile over each column (the construction in the proof of
// Theorem 3). The profiles may vary arbitrarily inside a column; the result
// is a valid MWCT-CB-F schedule with the same completion times.
func FromAllocationFunctions(inst *Instance, completions []float64, profiles []*stepfunc.StepFunc) (*ColumnSchedule, error) {
	n := inst.N()
	if len(completions) != n || len(profiles) != n {
		return nil, fmt.Errorf("schedule: need %d completions and profiles, got %d and %d", n, len(completions), len(profiles))
	}
	s := NewColumnSchedule(inst)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return completions[order[a]] < completions[order[b]] })
	s.Order = order
	for j, task := range order {
		s.Times[j] = completions[task]
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			start, end := s.ColumnStart(j), s.Times[j]
			l := end - start
			if l <= numeric.Eps {
				s.Alloc[i][j] = 0
				continue
			}
			s.Alloc[i][j] = profiles[i].Integrate(start, end) / l
		}
	}
	return s, nil
}

// Clone returns a deep copy of the schedule (sharing the instance).
func (s *ColumnSchedule) Clone() *ColumnSchedule {
	c := &ColumnSchedule{
		Inst:  s.Inst,
		Order: append([]int(nil), s.Order...),
		Times: append([]float64(nil), s.Times...),
		Alloc: make([][]float64, len(s.Alloc)),
	}
	for i := range s.Alloc {
		c.Alloc[i] = append([]float64(nil), s.Alloc[i]...)
	}
	return c
}
