package schedule

import (
	"fmt"
	"math"
)

// Arrival is one task of an online workload: the task itself, the time it
// becomes available, and the tenant that submitted it. It is the unit of the
// arrival streams consumed by the online engine (internal/engine) and
// produced by the load generators (internal/workload).
type Arrival struct {
	// Task carries the weight, volume and degree bound. Unlike a task of a
	// static Instance, a zero volume is legal in the online setting: the task
	// completes the instant it is admitted (its flow time is zero).
	Task Task `json:"task"`
	// Release is the arrival time r_i >= 0.
	Release float64 `json:"release"`
	// Tenant identifies the submitting tenant in multi-tenant workloads.
	Tenant int `json:"tenant,omitempty"`
}

// Validate checks that the arrival is well formed: positive weight and degree
// bound, non-negative finite volume and release date.
func (a Arrival) Validate() error {
	if !(a.Task.Weight > 0) || math.IsNaN(a.Task.Weight) || math.IsInf(a.Task.Weight, 0) {
		return fmt.Errorf("schedule: arrival has non-positive weight %g", a.Task.Weight)
	}
	if a.Task.Volume < 0 || math.IsNaN(a.Task.Volume) || math.IsInf(a.Task.Volume, 0) {
		return fmt.Errorf("schedule: arrival has negative volume %g", a.Task.Volume)
	}
	if !(a.Task.Delta > 0) || math.IsNaN(a.Task.Delta) || math.IsInf(a.Task.Delta, 0) {
		return fmt.Errorf("schedule: arrival has non-positive degree bound %g", a.Task.Delta)
	}
	if a.Release < 0 || math.IsNaN(a.Release) || math.IsInf(a.Release, 0) {
		return fmt.Errorf("schedule: arrival has invalid release date %g", a.Release)
	}
	if a.Task.Curve < 0 || math.IsNaN(a.Task.Curve) || math.IsInf(a.Task.Curve, 0) {
		return fmt.Errorf("schedule: arrival has invalid speedup-curve parameter %g", a.Task.Curve)
	}
	return nil
}
