package schedule

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/malleable-sched/malleable/internal/numeric"
)

func TestFromColumnsSimple(t *testing.T) {
	s := twoTaskSchedule(t)
	pa, err := FromColumns(s)
	if err != nil {
		t.Fatalf("FromColumns: %v", err)
	}
	if err := pa.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if pa.NumProcessors() != 2 {
		t.Errorf("NumProcessors = %d", pa.NumProcessors())
	}
	if !numeric.ApproxEqual(pa.WeightedCompletionTime(), s.WeightedCompletionTime()) {
		t.Errorf("objective changed by conversion: %g vs %g",
			pa.WeightedCompletionTime(), s.WeightedCompletionTime())
	}
	if !numeric.ApproxEqual(pa.Makespan(), s.Makespan()) {
		t.Errorf("makespan changed by conversion")
	}
}

func TestFromColumnsFractionalAllocations(t *testing.T) {
	// A column where a task has a fractional share: its instantaneous count
	// must be the floor or ceiling of the share.
	inst, _ := NewInstance(3, []Task{
		{Weight: 1, Volume: 3, Delta: 2},   // 1.5 processors for 2 time units
		{Weight: 1, Volume: 3, Delta: 3},   // 1.5 processors for 2 time units
		{Weight: 1, Volume: 1.5, Delta: 3}, // finishes later
	})
	s := NewColumnSchedule(inst)
	s.Order = []int{0, 1, 2}
	s.Times = []float64{2, 2, 3}
	s.Alloc[0][0] = 1.5
	s.Alloc[1][0] = 1.5
	s.Alloc[2][2] = 1.5
	if err := s.Validate(); err != nil {
		t.Fatalf("column schedule invalid: %v", err)
	}
	pa, err := FromColumns(s)
	if err != nil {
		t.Fatalf("FromColumns: %v", err)
	}
	if err := pa.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if mc := pa.MaxConcurrency(0); mc != 2 {
		t.Errorf("MaxConcurrency(0) = %d, want 2 (= ceil(1.5))", mc)
	}
}

func TestFromColumnsRejectsNonIntegerP(t *testing.T) {
	inst, _ := NewInstance(2.5, []Task{{Weight: 1, Volume: 1, Delta: 1}})
	s := NewColumnSchedule(inst)
	s.Times = []float64{1}
	s.Alloc[0][0] = 1
	if _, err := FromColumns(s); err == nil {
		t.Errorf("non-integer P accepted")
	}
}

func TestPreemptionAndChangeCounts(t *testing.T) {
	// Task 0 runs on 2 processors in column 1 and 1 processor in column 2:
	// one allocation change, and at least one preemption (a processor is
	// released at the column boundary before the task completes).
	inst, _ := NewInstance(2, []Task{
		{Weight: 1, Volume: 3, Delta: 2},
		{Weight: 1, Volume: 1, Delta: 1},
	})
	s := NewColumnSchedule(inst)
	s.Order = []int{1, 0}
	s.Times = []float64{1, 3}
	s.Alloc[0][0] = 2
	s.Alloc[1][0] = 0
	// Task 1 must also run somewhere; give it column 0 share. Rebuild:
	s.Alloc[0][0] = 1
	s.Alloc[1][0] = 1
	s.Alloc[0][1] = 1
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	pa, err := FromColumns(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := pa.Validate(); err != nil {
		t.Fatal(err)
	}
	perTask, total := pa.AllocationChangeCount()
	if perTask[1] != 0 {
		t.Errorf("task 1 should have no changes, got %d", perTask[1])
	}
	if total != perTask[0]+perTask[1] {
		t.Errorf("total inconsistent")
	}
	_, preempt := pa.PreemptionCount()
	if preempt < 0 {
		t.Errorf("negative preemptions")
	}
}

func TestValidateCatchesIntegralViolations(t *testing.T) {
	inst, _ := NewInstance(2, []Task{{Weight: 1, Volume: 2, Delta: 1}})
	pa := &ProcessorAssignment{
		Inst:        inst,
		Procs:       [][]Segment{{{Task: 0, Start: 0, End: 1}}, {{Task: 0, Start: 0, End: 1}}},
		Completions: []float64{1},
	}
	// Task uses 2 processors simultaneously with δ=1.
	if err := pa.Validate(); err == nil {
		t.Errorf("degree violation not caught")
	}

	pa = &ProcessorAssignment{
		Inst:        inst,
		Procs:       [][]Segment{{{Task: 0, Start: 0, End: 1}, {Task: 0, Start: 0.5, End: 1.5}}},
		Completions: []float64{2},
	}
	if err := pa.Validate(); err == nil {
		t.Errorf("overlap not caught")
	}

	pa = &ProcessorAssignment{
		Inst:        inst,
		Procs:       [][]Segment{{{Task: 0, Start: 0, End: 1}}},
		Completions: []float64{1},
	}
	if err := pa.Validate(); err == nil {
		t.Errorf("volume shortfall not caught")
	}

	pa = &ProcessorAssignment{
		Inst:        inst,
		Procs:       [][]Segment{{{Task: 0, Start: 0, End: 2}}},
		Completions: []float64{1},
	}
	if err := pa.Validate(); err == nil {
		t.Errorf("running after completion not caught")
	}

	pa = &ProcessorAssignment{
		Inst:        inst,
		Procs:       [][]Segment{{{Task: 5, Start: 0, End: 2}}},
		Completions: []float64{2},
	}
	if err := pa.Validate(); err == nil {
		t.Errorf("unknown task not caught")
	}
}

func TestAssignmentRenderers(t *testing.T) {
	s := twoTaskSchedule(t)
	pa, err := FromColumns(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pa.RenderGantt(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "processor schedule") {
		t.Errorf("gantt missing header")
	}
	if !strings.Contains(pa.Summary(), "preemptions") {
		t.Errorf("Summary = %q", pa.Summary())
	}
}

// randomValidColumnSchedule builds a random valid column schedule by choosing
// random positive column lengths and then filling columns with a water-filling
// style allocation that respects capacity and degree bounds, adjusting task
// volumes to match what was allocated.
func randomValidColumnSchedule(rng *rand.Rand, n int, p float64) *ColumnSchedule {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{
			Weight: 1 + rng.Float64()*3,
			Volume: 1, // placeholder, recomputed below
			Delta:  float64(1 + rng.Intn(int(p))),
		}
	}
	inst := &Instance{P: p, Tasks: tasks}
	s := NewColumnSchedule(inst)
	// Completion order = identity; random column lengths.
	times := make([]float64, n)
	cum := 0.0
	for j := range times {
		cum += 0.25 + rng.Float64()*2
		times[j] = cum
	}
	s.Times = times
	// Fill columns: task i may use columns 0..i. The task completing in column
	// j always receives a positive share there so every volume is positive.
	for j := 0; j < n; j++ {
		remaining := p
		a := math.Min(remaining, (0.1+0.9*rng.Float64())*tasks[j].Delta)
		s.Alloc[j][j] = a
		remaining -= a
		for i := j + 1; i < n; i++ { // tasks completing after column j
			if remaining <= 0 || rng.Float64() < 0.3 {
				continue
			}
			s.Alloc[i][j] = math.Min(remaining, rng.Float64()*tasks[i].Delta)
			remaining -= s.Alloc[i][j]
		}
	}
	// Make volumes consistent with the allocation.
	for i := range tasks {
		inst.Tasks[i].Volume = s.volumeSoFar(i)
	}
	return s
}

func (s *ColumnSchedule) volumeSoFar(i int) float64 {
	v := 0.0
	for j := 0; j < s.NumColumns(); j++ {
		v += s.Alloc[i][j] * s.ColumnLength(j)
	}
	return v
}

// Property (Theorem 3): every valid fractional column schedule converts to a
// valid integral schedule with identical completion times and objective.
func TestQuickTheorem3Conversion(t *testing.T) {
	f := func(seed int64, nRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%6)
		p := float64(1 + pRaw%5)
		s := randomValidColumnSchedule(rng, n, p)
		if err := s.Validate(); err != nil {
			// The generator is designed to always produce valid schedules;
			// treat a violation as a test failure.
			t.Logf("generator produced invalid schedule: %v", err)
			return false
		}
		pa, err := FromColumns(s)
		if err != nil {
			t.Logf("conversion failed: %v", err)
			return false
		}
		if err := pa.Validate(); err != nil {
			t.Logf("integral schedule invalid: %v", err)
			return false
		}
		return numeric.ApproxEqualTol(pa.WeightedCompletionTime(), s.WeightedCompletionTime(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: in the integral conversion, every task's instantaneous processor
// count never exceeds ceil of its fractional share's ceiling, i.e. its degree
// bound (second part of Theorem 3).
func TestQuickTheorem3DegreeBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomValidColumnSchedule(rng, 1+rng.Intn(5), float64(1+rng.Intn(4)))
		if err := s.Validate(); err != nil {
			return false
		}
		pa, err := FromColumns(s)
		if err != nil {
			return false
		}
		for i := 0; i < s.Inst.N(); i++ {
			if float64(pa.MaxConcurrency(i)) > math.Ceil(s.Inst.EffectiveDelta(i))+numeric.Eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
