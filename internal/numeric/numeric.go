// Package numeric provides the small numerical substrate shared by the
// scheduling library: tolerant floating-point comparisons, compensated
// summation, and convenience helpers around math/big.Rat for the exact
// arithmetic paths (the exact LP backend and the Conjecture-13 checker).
package numeric

import (
	"math"
	"math/big"
)

// Eps is the default absolute/relative tolerance used throughout the library
// when comparing schedule quantities expressed in float64. Schedules are built
// from sums and divisions of instance data, so errors of a few ULPs compound;
// 1e-9 is far above accumulated round-off for the instance sizes handled here
// while being far below any meaningful difference between schedules.
const Eps = 1e-9

// ApproxEqual reports whether a and b are equal up to the default tolerance,
// using a combined absolute/relative criterion.
func ApproxEqual(a, b float64) bool {
	return ApproxEqualTol(a, b, Eps)
}

// ApproxEqualTol reports whether a and b are equal up to tol, using a combined
// absolute/relative criterion: |a-b| <= tol * max(1, |a|, |b|).
func ApproxEqualTol(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

// LessEq reports whether a <= b up to the default tolerance.
func LessEq(a, b float64) bool {
	return a <= b || ApproxEqual(a, b)
}

// GreaterEq reports whether a >= b up to the default tolerance.
func GreaterEq(a, b float64) bool {
	return a >= b || ApproxEqual(a, b)
}

// IsZero reports whether a is zero up to the default tolerance.
func IsZero(a float64) bool {
	return math.Abs(a) <= Eps
}

// Clamp returns x restricted to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// KahanSum accumulates a sum of float64 values with Neumaier's improved
// compensated summation, which keeps the error independent of the number of
// terms. The zero value is an empty sum.
type KahanSum struct {
	sum float64
	c   float64
}

// Add accumulates x into the sum.
func (k *KahanSum) Add(x float64) {
	t := k.sum + x
	if math.Abs(k.sum) >= math.Abs(x) {
		k.c += (k.sum - t) + x
	} else {
		k.c += (x - t) + k.sum
	}
	k.sum = t
}

// Value returns the compensated sum accumulated so far.
func (k *KahanSum) Value() float64 {
	return k.sum + k.c
}

// Sum returns the compensated sum of xs.
func Sum(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Value()
}

// Rat constructs a *big.Rat from a float64. It panics if f is NaN or
// infinite, which never happens for valid instance data.
func Rat(f float64) *big.Rat {
	r := new(big.Rat)
	if r.SetFloat64(f) == nil {
		panic("numeric: cannot represent non-finite float64 as a rational")
	}
	return r
}

// RatFrac returns the rational p/q. It panics if q == 0.
func RatFrac(p, q int64) *big.Rat {
	if q == 0 {
		panic("numeric: zero denominator")
	}
	return big.NewRat(p, q)
}

// RatsEqual reports whether two rationals are exactly equal.
func RatsEqual(a, b *big.Rat) bool {
	return a.Cmp(b) == 0
}

// RatMin returns the smaller of a and b (a new value, inputs untouched).
func RatMin(a, b *big.Rat) *big.Rat {
	if a.Cmp(b) <= 0 {
		return new(big.Rat).Set(a)
	}
	return new(big.Rat).Set(b)
}

// RatMax returns the larger of a and b (a new value, inputs untouched).
func RatMax(a, b *big.Rat) *big.Rat {
	if a.Cmp(b) >= 0 {
		return new(big.Rat).Set(a)
	}
	return new(big.Rat).Set(b)
}

// RatSum returns the exact sum of the given rationals.
func RatSum(xs ...*big.Rat) *big.Rat {
	s := new(big.Rat)
	for _, x := range xs {
		s.Add(s, x)
	}
	return s
}

// RatDot returns the exact dot product of two equally sized rational slices.
// It panics if the lengths differ.
func RatDot(a, b []*big.Rat) *big.Rat {
	if len(a) != len(b) {
		panic("numeric: RatDot length mismatch")
	}
	s := new(big.Rat)
	t := new(big.Rat)
	for i := range a {
		t.Mul(a[i], b[i])
		s.Add(s, t)
	}
	return s
}
