package numeric

// Permutations enumerates every permutation of {0, 1, ..., n-1} and calls
// visit with each one. The slice passed to visit is reused between calls and
// must not be retained or modified. If visit returns false the enumeration
// stops early. The enumeration uses Heap's algorithm and therefore runs in
// O(n!) time with O(n) extra space.
func Permutations(n int, visit func(perm []int) bool) {
	if n < 0 {
		return
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if n == 0 {
		visit(perm)
		return
	}
	// Heap's algorithm, iterative form.
	c := make([]int, n)
	if !visit(perm) {
		return
	}
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			if !visit(perm) {
				return
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}

// Factorial returns n! for small n. It panics for negative n and saturates
// correctness only up to n = 20 (the largest factorial representable in
// int64), which is far beyond any exhaustive enumeration this library runs.
func Factorial(n int) int64 {
	if n < 0 {
		panic("numeric: negative factorial")
	}
	if n > 20 {
		panic("numeric: factorial overflow")
	}
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f
}

// InversePermutation returns the inverse of perm: if perm maps position i to
// value perm[i], the result maps value v back to its position.
func InversePermutation(perm []int) []int {
	inv := make([]int, len(perm))
	for i, v := range perm {
		inv[v] = i
	}
	return inv
}

// IdentityPermutation returns the identity permutation of size n.
func IdentityPermutation(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// ReversePermutation returns perm reversed (a new slice).
func ReversePermutation(perm []int) []int {
	r := make([]int, len(perm))
	for i, v := range perm {
		r[len(perm)-1-i] = v
	}
	return r
}

// IsPermutation reports whether p is a permutation of {0, ..., len(p)-1}.
func IsPermutation(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
