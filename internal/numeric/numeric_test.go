package numeric

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},
		{1, 1 + 1e-6, false},
		{1e12, 1e12 * (1 + 1e-12), true},
		{1e12, 1e12 * (1 + 1e-6), false},
		{0, 1e-12, true},
		{0, 1e-6, false},
		{-5, -5 - 1e-12, true},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b); got != c.want {
			t.Errorf("ApproxEqual(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLessGreaterEq(t *testing.T) {
	if !LessEq(1, 2) || !LessEq(2, 2+1e-12) || LessEq(2.1, 2) {
		t.Errorf("LessEq misbehaves")
	}
	if !GreaterEq(2, 1) || !GreaterEq(2, 2+1e-12) || GreaterEq(2, 2.1) {
		t.Errorf("GreaterEq misbehaves")
	}
	if !IsZero(1e-12) || IsZero(1e-3) {
		t.Errorf("IsZero misbehaves")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 {
		t.Errorf("Clamp above")
	}
	if Clamp(-1, 0, 3) != 0 {
		t.Errorf("Clamp below")
	}
	if Clamp(2, 0, 3) != 2 {
		t.Errorf("Clamp inside")
	}
}

func TestKahanSumCancellation(t *testing.T) {
	// Sum many small values next to a large one; naive summation loses them.
	var k KahanSum
	k.Add(1e16)
	for i := 0; i < 1000; i++ {
		k.Add(1.0)
	}
	k.Add(-1e16)
	if got := k.Value(); got != 1000 {
		t.Errorf("KahanSum = %v, want 1000", got)
	}
}

func TestSumMatchesNaiveOnBenignData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 100)
	naive := 0.0
	for i := range xs {
		xs[i] = rng.Float64()
		naive += xs[i]
	}
	if !ApproxEqual(Sum(xs), naive) {
		t.Errorf("Sum = %v, naive = %v", Sum(xs), naive)
	}
}

func TestRatHelpers(t *testing.T) {
	if Rat(0.5).Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("Rat(0.5) != 1/2")
	}
	if RatFrac(3, 4).Cmp(big.NewRat(3, 4)) != 0 {
		t.Errorf("RatFrac")
	}
	a, b := big.NewRat(1, 3), big.NewRat(1, 2)
	if RatMin(a, b).Cmp(a) != 0 || RatMax(a, b).Cmp(b) != 0 {
		t.Errorf("RatMin/RatMax")
	}
	if !RatsEqual(RatSum(a, a, a), big.NewRat(1, 1)) {
		t.Errorf("RatSum(1/3 * 3) != 1")
	}
	dot := RatDot([]*big.Rat{big.NewRat(1, 2), big.NewRat(2, 1)}, []*big.Rat{big.NewRat(4, 1), big.NewRat(1, 4)})
	if !RatsEqual(dot, big.NewRat(5, 2)) {
		t.Errorf("RatDot = %v, want 5/2", dot)
	}
}

func TestRatPanicsOnBadInput(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Rat(NaN)", func() { Rat(math.NaN()) })
	mustPanic("RatFrac(1,0)", func() { RatFrac(1, 0) })
	mustPanic("RatDot mismatch", func() { RatDot([]*big.Rat{big.NewRat(1, 1)}, nil) })
}

func TestPermutationsCountsAndValidity(t *testing.T) {
	for n := 0; n <= 6; n++ {
		count := 0
		seen := map[string]bool{}
		Permutations(n, func(p []int) bool {
			if !IsPermutation(p) {
				t.Fatalf("n=%d: not a permutation: %v", n, p)
			}
			key := ""
			for _, v := range p {
				key += string(rune('a' + v))
			}
			if seen[key] {
				t.Fatalf("n=%d: duplicate permutation %v", n, p)
			}
			seen[key] = true
			count++
			return true
		})
		if int64(count) != Factorial(n) {
			t.Errorf("n=%d: got %d permutations, want %d", n, count, Factorial(n))
		}
	}
}

func TestPermutationsEarlyStop(t *testing.T) {
	count := 0
	Permutations(5, func(p []int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop: visited %d, want 10", count)
	}
}

func TestFactorial(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		if Factorial(n) != w {
			t.Errorf("Factorial(%d) = %d, want %d", n, Factorial(n), w)
		}
	}
	if Factorial(20) != 2432902008176640000 {
		t.Errorf("Factorial(20) wrong")
	}
}

func TestInverseAndReversePermutation(t *testing.T) {
	p := []int{2, 0, 3, 1}
	inv := InversePermutation(p)
	for i, v := range p {
		if inv[v] != i {
			t.Errorf("inverse wrong at %d", i)
		}
	}
	r := ReversePermutation(p)
	want := []int{1, 3, 0, 2}
	for i := range r {
		if r[i] != want[i] {
			t.Errorf("reverse = %v, want %v", r, want)
		}
	}
	id := IdentityPermutation(4)
	for i, v := range id {
		if i != v {
			t.Errorf("identity wrong")
		}
	}
}

func TestIsPermutationRejectsBadSlices(t *testing.T) {
	if IsPermutation([]int{0, 0, 1}) {
		t.Errorf("duplicate accepted")
	}
	if IsPermutation([]int{0, 3}) {
		t.Errorf("out of range accepted")
	}
	if !IsPermutation(nil) {
		t.Errorf("empty rejected")
	}
}

// Property: the inverse of the inverse is the original permutation, and
// composing a permutation with its inverse yields the identity.
func TestQuickInversePermutationInvolution(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		p := rng.Perm(n)
		inv := InversePermutation(p)
		back := InversePermutation(inv)
		for i := range p {
			if back[i] != p[i] {
				return false
			}
			if inv[p[i]] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Kahan summation of shuffled data matches the exact rational sum.
func TestQuickKahanMatchesRational(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		exact := new(big.Rat)
		for i := range xs {
			xs[i] = float64(rng.Intn(1000)) / 8 // exactly representable
			exact.Add(exact, Rat(xs[i]))
		}
		got, _ := new(big.Float).SetRat(exact).Float64()
		return ApproxEqual(Sum(xs), got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
