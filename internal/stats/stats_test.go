package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"github.com/malleable-sched/malleable/internal/numeric"
)

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || !numeric.ApproxEqual(s.Mean, 3) || !numeric.ApproxEqual(s.Min, 1) ||
		!numeric.ApproxEqual(s.Max, 5) || !numeric.ApproxEqual(s.P50, 3) {
		t.Errorf("Summary = %+v", s)
	}
	if !numeric.ApproxEqual(s.StdDev, math.Sqrt(2.5)) {
		t.Errorf("StdDev = %g, want %g", s.StdDev, math.Sqrt(2.5))
	}
}

func TestSummarizeEmptyAndSingleton(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Count != 1 || s.Mean != 7 || s.StdDev != 0 || s.Min != 7 || s.Max != 7 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if Quantile(sorted, 0) != 0 || Quantile(sorted, 1) != 9 {
		t.Errorf("extreme quantiles wrong")
	}
	if !numeric.ApproxEqual(Quantile(sorted, 0.5), 4.5) {
		t.Errorf("median = %g", Quantile(sorted, 0.5))
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Errorf("empty quantile should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for i := 0; i < 10; i++ {
		h.Add(float64(i))
	}
	h.Add(-5) // clamped to first bin
	h.Add(50) // clamped to last bin
	if h.Total != 12 {
		t.Errorf("Total = %d", h.Total)
	}
	if h.Counts[0] != 3 || h.Counts[4] != 3 {
		t.Errorf("Counts = %v", h.Counts)
	}
	if !numeric.ApproxEqual(h.Fraction(0), 0.25) {
		t.Errorf("Fraction = %g", h.Fraction(0))
	}
	if !strings.Contains(h.String(), "#") {
		t.Errorf("String missing bars")
	}
}

func TestHistogramPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	NewHistogram(1, 1, 3)
}

func TestMaxRatio(t *testing.T) {
	if r := MaxRatio([]float64{1, 4, 9}, []float64{1, 2, 3}); !numeric.ApproxEqual(r, 3) {
		t.Errorf("MaxRatio = %g", r)
	}
	if r := MaxRatio([]float64{1}, []float64{0}); r != 0 {
		t.Errorf("MaxRatio with zero denominator = %g", r)
	}
	if MaxRatio(nil, nil) != 0 {
		t.Errorf("empty MaxRatio")
	}
}

func TestSummaryString(t *testing.T) {
	if !strings.Contains(Summarize([]float64{1, 2}).String(), "mean") {
		t.Errorf("String missing fields")
	}
}

// Property: mean lies between min and max, quantiles are monotone, and the
// summary of a sample is invariant under shuffling.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		s := Summarize(xs)
		if s.Mean < s.Min-numeric.Eps || s.Mean > s.Max+numeric.Eps {
			return false
		}
		if s.P50 > s.P90+numeric.Eps || s.P90 > s.P99+numeric.Eps {
			return false
		}
		shuffled := append([]float64(nil), xs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		s2 := Summarize(shuffled)
		return numeric.ApproxEqual(s.Mean, s2.Mean) && s.Min == s2.Min && s.Max == s2.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantiles of a sorted sample are non-decreasing in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-numeric.Eps {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 500)
	var acc Accumulator
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		acc.Add(xs[i])
	}
	s := Summarize(xs)
	if acc.Count() != s.Count {
		t.Errorf("count %d vs %d", acc.Count(), s.Count)
	}
	if !numeric.ApproxEqualTol(acc.Mean(), s.Mean, 1e-9) {
		t.Errorf("mean %g vs %g", acc.Mean(), s.Mean)
	}
	if !numeric.ApproxEqualTol(acc.StdDev(), s.StdDev, 1e-9) {
		t.Errorf("std %g vs %g", acc.StdDev(), s.StdDev)
	}
	if acc.Min() != s.Min || acc.Max() != s.Max {
		t.Errorf("extremes %g/%g vs %g/%g", acc.Min(), acc.Max(), s.Min, s.Max)
	}
}

func TestAccumulatorMergeEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var whole Accumulator
	parts := make([]Accumulator, 4)
	for i := 0; i < 1000; i++ {
		x := rng.ExpFloat64()
		whole.Add(x)
		parts[i%4].Add(x)
	}
	var merged Accumulator
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.Count() != whole.Count() {
		t.Errorf("count %d vs %d", merged.Count(), whole.Count())
	}
	if !numeric.ApproxEqualTol(merged.Mean(), whole.Mean(), 1e-9) {
		t.Errorf("mean %g vs %g", merged.Mean(), whole.Mean())
	}
	if !numeric.ApproxEqualTol(merged.StdDev(), whole.StdDev(), 1e-9) {
		t.Errorf("std %g vs %g", merged.StdDev(), whole.StdDev())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Errorf("extremes %g/%g vs %g/%g", merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
}

func TestAccumulatorEmptyAndSingleton(t *testing.T) {
	var empty Accumulator
	if empty.Count() != 0 || empty.Mean() != 0 || empty.StdDev() != 0 {
		t.Errorf("empty accumulator not zero: %+v", empty)
	}
	var one Accumulator
	one.Add(5)
	if one.StdDev() != 0 || one.Mean() != 5 || one.Min() != 5 || one.Max() != 5 {
		t.Errorf("singleton accumulator broken: %+v", one)
	}
	// Merging an empty accumulator is a no-op in both directions.
	var a Accumulator
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(&empty)
	if a != before {
		t.Errorf("merge with empty changed the accumulator")
	}
	empty.Merge(&a)
	if empty.Count() != 2 || empty.Mean() != 2 {
		t.Errorf("empty.Merge(a) = %+v", empty)
	}
}
