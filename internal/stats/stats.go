// Package stats provides the small descriptive-statistics helpers used by the
// experiment drivers to summarize ratios, gaps and counts across many random
// instances.
package stats

import (
	"fmt"
	"math"
	"sort"

	"github.com/malleable-sched/malleable/internal/numeric"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary of the sample. An empty sample yields a zero
// Summary.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	var sum numeric.KahanSum
	for _, x := range sorted {
		sum.Add(x)
	}
	mean := sum.Value() / float64(len(sorted))
	var sq numeric.KahanSum
	for _, x := range sorted {
		d := x - mean
		sq.Add(d * d)
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(sq.Value() / float64(len(sorted)-1))
	}
	return Summary{
		Count:  len(sorted),
		Mean:   mean,
		StdDev: std,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    Quantile(sorted, 0.50),
		P90:    Quantile(sorted, 0.90),
		P99:    Quantile(sorted, 0.99),
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of an already sorted sample,
// using linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g std=%.3g min=%.6g p50=%.6g p90=%.6g p99=%.6g max=%.6g",
		s.Count, s.Mean, s.StdDev, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// Histogram is a fixed-bin histogram over [Lo, Hi); observations outside the
// range are clamped into the first or last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram creates a histogram with the given number of bins over
// [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || !(hi > lo) {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	bin := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.Counts) {
		bin = len(h.Counts) - 1
	}
	h.Counts[bin]++
	h.Total++
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// String renders the histogram as a compact bar chart.
func (h *Histogram) String() string {
	out := ""
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := ""
		if h.Total > 0 {
			for k := 0; k < int(40*float64(c)/float64(h.Total)+0.5); k++ {
				bar += "#"
			}
		}
		out += fmt.Sprintf("[%8.3g,%8.3g) %6d %s\n", h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c, bar)
	}
	return out
}

// Accumulator is a streaming, mergeable moment accumulator (Welford's
// algorithm with the parallel combination of Chan et al.). It lets many
// engine shards summarize their observations independently and merge the
// partial results exactly — counts, means and variances combine without
// revisiting the samples. The zero value is an empty accumulator.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Merge folds another accumulator into this one; the result is identical (up
// to floating-point rounding) to having Added all of b's observations.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	n := float64(a.n + b.n)
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/n
	a.mean += d * float64(b.n) / n
	a.n += b.n
}

// Count returns the number of observations.
func (a *Accumulator) Count() int { return a.n }

// Mean returns the sample mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// StdDev returns the sample standard deviation (0 for fewer than two
// observations).
func (a *Accumulator) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// Min and Max return the extremes (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// MaxRatio returns max(a_i/b_i) over the paired samples, skipping pairs with
// non-positive denominator. It returns 0 for empty input.
func MaxRatio(num, den []float64) float64 {
	m := 0.0
	for i := range num {
		if i >= len(den) || den[i] <= 0 {
			continue
		}
		if r := num[i] / den[i]; r > m {
			m = r
		}
	}
	return m
}
