package stats

import (
	"fmt"
	"math"
)

// DefaultSketchAlpha is the relative accuracy the engine's streaming flow
// sinks use: a quantile estimate q̂ satisfies |q̂ - q| <= alpha·q, so 0.5%
// keeps shard-merged p50/p99 figures well within the 1% budget the perf
// scenarios are gated on.
const DefaultSketchAlpha = 0.005

// defaultSketchBuckets bounds the bucket window of a sketch. With the default
// alpha the window spans a dynamic range of gamma^4096 ≈ e^41 ≈ 6·10^17
// between the smallest and largest representable observation before any
// collapsing happens, at a fixed cost of 32 KiB per sketch.
const defaultSketchBuckets = 4096

// QuantileSketch is a fixed-size, mergeable quantile summary with a relative
// accuracy guarantee (the DDSketch construction): observations are counted in
// geometrically spaced buckets (γ = (1+α)/(1-α)), so any quantile of the
// recorded sample is reproduced within a factor 1±α regardless of how many
// observations were added. Two sketches built with the same alpha merge
// exactly (bucket counts add), which is what lets independent engine shards
// summarize millions of flow times in constant memory and still report fleet
// p50/p99 deterministically.
//
// When the bucket window would exceed its fixed capacity, the lowest buckets
// collapse into one: accuracy degrades only for the smallest observations
// (lowest quantiles), never for the upper tail the latency figures care
// about. Observations below zeroThreshold (and exact zeros — e.g. the flow
// time of a zero-volume task) are counted in a dedicated zero bucket.
//
// The zero value is not usable; construct with NewQuantileSketch. A sketch is
// not safe for concurrent use.
type QuantileSketch struct {
	alpha  float64
	gamma  float64
	lgamma float64 // ln(gamma), the bucket width in log space

	counts []uint64 // bucket window: counts[k] counts index minIdx+k
	minIdx int      // bucket index of counts[0]
	used   int      // live prefix of counts

	zeros     uint64
	total     uint64
	collapsed bool
	min, max  float64
}

// zeroThreshold is the smallest observation tracked in a log bucket; values
// at or below it land in the zero bucket. It bounds how far the window can
// grow toward -inf in log space (subnormal flow times carry no information).
const zeroThreshold = 1e-12

// NewQuantileSketch creates a sketch with relative accuracy alpha in (0, 1).
// It panics on an out-of-range alpha — the accuracy is a compile-time choice
// of the call site, not data.
func NewQuantileSketch(alpha float64) *QuantileSketch {
	if !(alpha > 0) || !(alpha < 1) || math.IsNaN(alpha) {
		panic(fmt.Sprintf("stats: sketch accuracy must be in (0, 1), got %g", alpha))
	}
	return &QuantileSketch{
		alpha: alpha,
		gamma: (1 + alpha) / (1 - alpha),
		// log1p form keeps the bucket width accurate for tiny alpha.
		lgamma: math.Log1p(2 * alpha / (1 - alpha)),
	}
}

// Alpha returns the relative accuracy the sketch was built with.
func (s *QuantileSketch) Alpha() float64 { return s.alpha }

// Count returns the number of recorded observations.
func (s *QuantileSketch) Count() int { return int(s.total) }

// Min and Max return the exact extremes (0 when empty).
func (s *QuantileSketch) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *QuantileSketch) Max() float64 { return s.max }

// index maps a positive observation to its bucket index: bucket i covers
// (gamma^(i-1), gamma^i].
func (s *QuantileSketch) index(x float64) int {
	return int(math.Ceil(math.Log(x) / s.lgamma))
}

// value is the representative of bucket i: the point with equal relative
// error alpha to both bucket edges.
func (s *QuantileSketch) value(i int) float64 {
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// Add records one observation. NaN and ±Inf are ignored (an infinite
// observation has no bucket; counting it would corrupt the window);
// negative observations and values below the zero threshold count as zero
// (flow times are non-negative and finite by construction, so this only
// defends against caller bugs).
func (s *QuantileSketch) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	if s.total == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.total++
	if x <= zeroThreshold {
		s.zeros++
		return
	}
	s.bump(s.index(x), 1)
}

// bump adds count observations to bucket idx, growing (and if necessary
// collapsing) the window.
func (s *QuantileSketch) bump(idx int, count uint64) {
	if s.used == 0 {
		if len(s.counts) == 0 {
			s.counts = make([]uint64, 64)
		}
		s.minIdx = idx
		s.used = 1
		s.counts[0] = count
		return
	}
	if idx < s.minIdx {
		// Extend the window downward by shifting the live prefix up.
		grow := s.minIdx - idx
		if s.used+grow > defaultSketchBuckets {
			// The new observation is below the collapsible range: fold it
			// into the lowest bucket we keep instead of growing.
			s.counts[0] += count
			s.collapsed = true
			return
		}
		s.ensure(s.used + grow)
		copy(s.counts[grow:s.used+grow], s.counts[:s.used])
		for k := 0; k < grow; k++ {
			s.counts[k] = 0
		}
		s.minIdx = idx
		s.used += grow
		s.counts[0] += count
		return
	}
	off := idx - s.minIdx
	if off >= s.used {
		need := off + 1
		if need > defaultSketchBuckets {
			// Collapse the lowest buckets so the top of the window can hold
			// the new observation; upper-tail accuracy is preserved.
			drop := need - defaultSketchBuckets
			if drop >= s.used {
				// Everything recorded so far folds into one bottom bucket.
				var sum uint64
				for k := 0; k < s.used; k++ {
					sum += s.counts[k]
					s.counts[k] = 0
				}
				s.minIdx += drop
				s.counts[0] = sum
				s.used = 1
				off = idx - s.minIdx
			} else {
				var sum uint64
				for k := 0; k <= drop; k++ {
					sum += s.counts[k]
				}
				copy(s.counts, s.counts[drop:s.used])
				for k := s.used - drop; k < s.used; k++ {
					s.counts[k] = 0
				}
				s.used -= drop
				s.minIdx += drop
				s.counts[0] = sum
				off = idx - s.minIdx
			}
			s.collapsed = true
			need = off + 1
		}
		s.ensure(need)
		s.used = need
	}
	s.counts[off] += count
}

// ensure grows the backing array to hold at least n buckets.
func (s *QuantileSketch) ensure(n int) {
	if n <= len(s.counts) {
		return
	}
	grown := len(s.counts) * 2
	if grown < n {
		grown = n
	}
	if grown > defaultSketchBuckets {
		grown = defaultSketchBuckets
	}
	next := make([]uint64, grown)
	copy(next, s.counts[:s.used])
	s.counts = next
}

// Merge folds another sketch into this one. Both must have been built with
// the same alpha — the bucket grids are incompatible otherwise.
func (s *QuantileSketch) Merge(o *QuantileSketch) error {
	if o == nil {
		return nil
	}
	if s.alpha != o.alpha {
		return fmt.Errorf("stats: cannot merge sketches with accuracies %g and %g", s.alpha, o.alpha)
	}
	if o.total == 0 {
		return nil
	}
	if s.total == 0 {
		s.min, s.max = o.min, o.max
	} else {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	s.total += o.total
	s.zeros += o.zeros
	s.collapsed = s.collapsed || o.collapsed
	for k := 0; k < o.used; k++ {
		if o.counts[k] > 0 {
			s.bump(o.minIdx+k, o.counts[k])
		}
	}
	return nil
}

// Collapsed reports whether the sketch ever folded its lowest buckets; when
// true, low quantiles may exceed the alpha guarantee (the upper tail never
// does).
func (s *QuantileSketch) Collapsed() bool { return s.collapsed }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) of the
// recorded observations, within relative accuracy alpha. It follows the
// nearest-rank convention of Quantile on the bucket representatives and
// clamps to the exact observed [min, max]. An empty sketch returns NaN.
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s.total == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	// rank is the 0-based order statistic to report.
	rank := uint64(q * float64(s.total-1))
	if rank < s.zeros {
		return clamp(0, s.min, s.max)
	}
	cum := s.zeros
	for k := 0; k < s.used; k++ {
		cum += s.counts[k]
		if rank < cum {
			return clamp(s.value(s.minIdx+k), s.min, s.max)
		}
	}
	return s.max
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Reset empties the sketch, keeping its bucket storage for reuse so a warmed
// sketch adds no allocations in steady state.
func (s *QuantileSketch) Reset() {
	for k := 0; k < s.used; k++ {
		s.counts[k] = 0
	}
	s.used = 0
	s.minIdx = 0
	s.zeros = 0
	s.total = 0
	s.collapsed = false
	s.min, s.max = 0, 0
}

// SketchSummary renders a Summary out of streaming state: exact count, mean,
// standard deviation and extremes from the accumulator, quantiles from the
// sketch. It is how the streaming run paths report the Summary the batch
// paths compute exactly from retained samples.
func SketchSummary(acc *Accumulator, sketch *QuantileSketch) Summary {
	if acc == nil || acc.Count() == 0 {
		return Summary{}
	}
	return Summary{
		Count:  acc.Count(),
		Mean:   acc.Mean(),
		StdDev: acc.StdDev(),
		Min:    acc.Min(),
		Max:    acc.Max(),
		P50:    sketch.Quantile(0.50),
		P90:    sketch.Quantile(0.90),
		P99:    sketch.Quantile(0.99),
	}
}
