package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// The sketch's contract: every quantile of the recorded sample is reproduced
// within relative accuracy alpha, against the exact sorted-sample quantiles,
// across distributions with very different shapes.
func TestSketchAccuracyAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distributions := map[string]func() float64{
		"uniform":     func() float64 { return rng.Float64() * 100 },
		"exponential": func() float64 { return rng.ExpFloat64() * 10 },
		"lognormal":   func() float64 { return math.Exp(rng.NormFloat64() * 2) },
		"heavy-tail":  func() float64 { return math.Pow(rng.Float64(), -1.5) },
	}
	quantiles := []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}
	for name, draw := range distributions {
		t.Run(name, func(t *testing.T) {
			const n = 50000
			s := NewQuantileSketch(DefaultSketchAlpha)
			sample := make([]float64, n)
			for i := range sample {
				sample[i] = draw()
				s.Add(sample[i])
			}
			sort.Float64s(sample)
			if s.Count() != n {
				t.Fatalf("count = %d, want %d", s.Count(), n)
			}
			for _, q := range quantiles {
				exact := Quantile(sample, q)
				got := s.Quantile(q)
				if exact <= 0 {
					continue
				}
				if rel := math.Abs(got-exact) / exact; rel > 2*DefaultSketchAlpha {
					t.Errorf("q=%g: sketch %g vs exact %g (relative error %.4g > %g)",
						q, got, exact, rel, 2*DefaultSketchAlpha)
				}
			}
			if s.Min() != sample[0] || s.Max() != sample[n-1] {
				t.Errorf("extremes %g/%g, want exact %g/%g", s.Min(), s.Max(), sample[0], sample[n-1])
			}
		})
	}
}

// Merging shard sketches must equal one sketch over the concatenated sample:
// bucket counts are integers, so the merge is exact, and the merged quantiles
// retain the alpha guarantee against the exact combined quantiles.
func TestSketchMergeMatchesCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const shards, perShard = 5, 8000
	combined := NewQuantileSketch(DefaultSketchAlpha)
	merged := NewQuantileSketch(DefaultSketchAlpha)
	var all []float64
	for s := 0; s < shards; s++ {
		shard := NewQuantileSketch(DefaultSketchAlpha)
		for i := 0; i < perShard; i++ {
			x := rng.ExpFloat64() * float64(s+1)
			all = append(all, x)
			shard.Add(x)
			combined.Add(x)
		}
		if err := merged.Merge(shard); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != combined.Count() {
		t.Fatalf("merged count %d vs combined %d", merged.Count(), combined.Count())
	}
	sort.Float64s(all)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		a, b := merged.Quantile(q), combined.Quantile(q)
		if a != b {
			t.Errorf("q=%g: merged %g vs combined %g (merge must be exact on buckets)", q, a, b)
		}
		exact := Quantile(all, q)
		if rel := math.Abs(a-exact) / exact; rel > 2*DefaultSketchAlpha {
			t.Errorf("q=%g: merged %g vs exact %g (relative error %.4g)", q, a, exact, rel)
		}
	}
	if err := merged.Merge(NewQuantileSketch(0.1)); err == nil {
		t.Error("merging sketches with different accuracies must fail")
	}
}

// The window is fixed-size: a sample spanning an absurd dynamic range must
// stay within the bucket budget by collapsing the low end, preserving the
// upper-tail guarantee.
func TestSketchCollapsePreservesUpperTail(t *testing.T) {
	s := NewQuantileSketch(0.01)
	var sample []float64
	for i := 0; i < 2000; i++ {
		// From 1e-10 up to 1e+30: far beyond any fixed window at alpha=1%.
		x := math.Pow(10, -10+float64(i)*0.02)
		sample = append(sample, x)
		s.Add(x)
	}
	if !s.Collapsed() {
		t.Fatal("a 40-decade sample must have collapsed the window")
	}
	sort.Float64s(sample)
	for _, q := range []float64{0.9, 0.99} {
		exact := Quantile(sample, q)
		got := s.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.05 {
			t.Errorf("q=%g after collapse: %g vs exact %g (relative error %.4g)", q, got, exact, rel)
		}
	}
}

// Zeros (the flow time of a zero-volume task) and edge cases must not poison
// the buckets.
func TestSketchZerosAndEdges(t *testing.T) {
	s := NewQuantileSketch(DefaultSketchAlpha)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty sketch must report NaN")
	}
	for i := 0; i < 10; i++ {
		s.Add(0)
	}
	s.Add(5)
	s.Add(math.NaN())   // ignored
	s.Add(math.Inf(1))  // ignored: no bucket for an infinite observation
	s.Add(math.Inf(-1)) // ignored
	if s.Count() != 11 {
		t.Fatalf("count = %d, want 11 (NaN and ±Inf ignored)", s.Count())
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("median of mostly-zeros = %g, want 0", got)
	}
	if got := s.Quantile(1); got != 5 {
		t.Errorf("max quantile = %g, want exact 5", got)
	}
	if got := s.Quantile(0); got != 0 {
		t.Errorf("min quantile = %g, want 0", got)
	}
}

// Reset must empty the sketch but keep its storage; a warmed sketch performs
// no allocation in steady state (the sink reuse contract of the engine).
func TestSketchResetAndSteadyStateAllocs(t *testing.T) {
	s := NewQuantileSketch(DefaultSketchAlpha)
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 100
	}
	for _, x := range xs {
		s.Add(x)
	}
	s.Reset()
	if s.Count() != 0 || s.Collapsed() {
		t.Fatalf("reset sketch not empty: count=%d", s.Count())
	}
	allocs := testing.AllocsPerRun(10, func() {
		s.Reset()
		for _, x := range xs {
			s.Add(x)
		}
		_ = s.Quantile(0.99)
	})
	if allocs != 0 {
		t.Errorf("warmed sketch allocated %.3g times per run, want 0", allocs)
	}
}

// SketchSummary must agree with the exact Summarize on everything the
// accumulator carries exactly, and stay within alpha on the quantiles.
func TestSketchSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var acc Accumulator
	s := NewQuantileSketch(DefaultSketchAlpha)
	var sample []float64
	for i := 0; i < 20000; i++ {
		x := rng.ExpFloat64()
		sample = append(sample, x)
		acc.Add(x)
		s.Add(x)
	}
	exact := Summarize(sample)
	got := SketchSummary(&acc, s)
	if got.Count != exact.Count || got.Min != exact.Min || got.Max != exact.Max {
		t.Errorf("count/min/max %d/%g/%g, want exact %d/%g/%g", got.Count, got.Min, got.Max, exact.Count, exact.Min, exact.Max)
	}
	if math.Abs(got.Mean-exact.Mean)/exact.Mean > 1e-9 {
		t.Errorf("mean %g vs exact %g", got.Mean, exact.Mean)
	}
	for _, pair := range [][2]float64{{got.P50, exact.P50}, {got.P90, exact.P90}, {got.P99, exact.P99}} {
		if rel := math.Abs(pair[0]-pair[1]) / pair[1]; rel > 2*DefaultSketchAlpha {
			t.Errorf("quantile %g vs exact %g (relative error %.4g)", pair[0], pair[1], rel)
		}
	}
	if (SketchSummary(nil, s) != Summary{}) {
		t.Error("nil accumulator must yield a zero summary")
	}
}
