package sim

import (
	"math/rand"
	"testing"

	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/workload"
)

func mustInstance(t *testing.T, p float64, tasks []schedule.Task) *schedule.Instance {
	t.Helper()
	inst, err := schedule.NewInstance(p, tasks)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

func TestSimulateBandwidth(t *testing.T) {
	scenario, err := workload.NewBandwidthScenario(4, 11)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := scenario.Instance()
	if err != nil {
		t.Fatal(err)
	}
	wdeq, err := core.RunWDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateBandwidth(scenario, "WDEQ", wdeq)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksProcessed <= 0 {
		t.Errorf("no tasks processed")
	}
	// The explicit sweep matches the closed-form Σ rate·(T-C) whenever all
	// completions are within the horizon.
	if gap := res.ThroughputIdentityGap(scenario); gap > 1e-6 {
		t.Errorf("identity gap = %g", gap)
	}
}

func TestCompareBandwidthStrategies(t *testing.T) {
	scenario, err := workload.NewBandwidthScenario(5, 21)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := scenario.Instance()
	if err != nil {
		t.Fatal(err)
	}
	wdeq, err := core.RunWDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	best, err := core.BestGreedy(inst, rand.New(rand.NewSource(1)), 8)
	if err != nil {
		t.Fatal(err)
	}
	cmax, err := core.CmaxOptimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	results, err := CompareBandwidthStrategies(scenario, map[string]*schedule.ColumnSchedule{
		"WDEQ":         wdeq,
		"best greedy":  best.Schedule,
		"Cmax optimal": cmax,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("expected 3 results, got %d", len(results))
	}
	// Results are sorted by decreasing throughput; the best greedy (lowest
	// ΣwC) must process at least as many tasks as the others.
	for _, r := range results {
		if r.Strategy == "best greedy" && r.TasksProcessed+1e-9 < results[0].TasksProcessed {
			t.Errorf("best greedy is not among the top strategies: %+v", results)
		}
	}
}

func TestSimulateBandwidthSizeMismatch(t *testing.T) {
	scenario, _ := workload.NewBandwidthScenario(3, 1)
	otherInst := mustInstance(t, 2, []schedule.Task{{Weight: 1, Volume: 1, Delta: 1}})
	s, err := core.CmaxOptimal(otherInst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateBandwidth(scenario, "x", s); err == nil {
		t.Errorf("size mismatch accepted")
	}
}
