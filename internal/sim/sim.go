// Package sim provides a small online (non-clairvoyant) execution engine for
// malleable tasks and the master–worker bandwidth-sharing simulation of the
// paper's Figure 1. The engine runs a scheduling policy that sees task
// weights, degree bounds and progress but never the remaining volumes, which
// is exactly the non-clairvoyant model of Section III of the paper; the
// engine itself knows the volumes and uses them only to detect completions.
package sim

import (
	"fmt"
	"math"

	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/stepfunc"
)

// TaskView is what a non-clairvoyant policy is allowed to observe about a
// task: everything except its (remaining) volume.
type TaskView struct {
	// ID is the task index in the instance.
	ID int
	// Weight and Delta are the task's weight and degree bound.
	Weight, Delta float64
	// Processed is the volume processed so far. Policies may use it (it is
	// observable in reality) but none of the bundled policies do.
	Processed float64
}

// Policy decides how many processors each alive task receives. Allocate
// follows the append-into-dst convention of the zero-allocation hot path: the
// per-task allocations are appended to dst (which the caller may pass with
// spare capacity, typically a reused buffer re-sliced to length zero) and the
// extended slice is returned, aligned with the alive slice. Entries must be
// non-negative, at most the task's Delta, and sum to at most p. The engine
// validates these conditions and aborts the run if a policy violates them.
// Policies must be safe for concurrent use; the bundled ones are stateless.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Allocate appends the allocation of the alive tasks to dst and returns
	// the extended slice.
	Allocate(p float64, alive []TaskView, dst []float64) []float64
}

// WDEQPolicy is the weighted dynamic equipartition of Algorithm 1.
type WDEQPolicy struct{}

// Name implements Policy.
func (WDEQPolicy) Name() string { return "WDEQ" }

// Allocate implements Policy. It reads weights and degree bounds through
// accessors, so it performs no allocation when dst has spare capacity.
func (WDEQPolicy) Allocate(p float64, alive []TaskView, dst []float64) []float64 {
	return core.ShareAllocationFunc(dst, p, len(alive),
		func(i int) float64 { return alive[i].Weight },
		func(i int) float64 { return alive[i].Delta })
}

// DEQPolicy is the unweighted dynamic equipartition (all weights treated as
// one), the baseline of Deng et al.
type DEQPolicy struct{}

// Name implements Policy.
func (DEQPolicy) Name() string { return "DEQ" }

// Allocate implements Policy.
func (DEQPolicy) Allocate(p float64, alive []TaskView, dst []float64) []float64 {
	return core.ShareAllocationFunc(dst, p, len(alive),
		func(int) float64 { return 1 },
		func(i int) float64 { return alive[i].Delta })
}

// PriorityPolicy allocates the platform greedily following a fixed priority
// list: the highest-priority alive task receives min(δ, what is left), then
// the next, and so on. With priorities sorted by weight it is an online
// analogue of a greedy schedule.
type PriorityPolicy struct {
	// Priority maps task ID to its rank (lower rank = served first).
	Priority []int
	// Label is returned by Name.
	Label string
}

// Name implements Policy.
func (p PriorityPolicy) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "priority"
}

// Allocate implements Policy.
func (p PriorityPolicy) Allocate(capacity float64, alive []TaskView, dst []float64) []float64 {
	idx := make([]int, len(alive))
	for i := range idx {
		idx[i] = i
	}
	rank := func(view TaskView) int {
		if view.ID < len(p.Priority) {
			return p.Priority[view.ID]
		}
		return view.ID
	}
	// Insertion sort by rank (alive sets are small).
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && rank(alive[idx[j]]) < rank(alive[idx[j-1]]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	base := len(dst)
	for range alive {
		dst = append(dst, 0)
	}
	alloc := dst[base:]
	remaining := capacity
	for _, i := range idx {
		a := math.Min(alive[i].Delta, remaining)
		if a < 0 {
			a = 0
		}
		alloc[i] = a
		remaining -= a
	}
	return dst
}

// Trace records one scheduling decision of a run.
type Trace struct {
	// Time is when the decision was taken.
	Time float64
	// Alive lists the IDs of the tasks alive at that time.
	Alive []int
	// Alloc gives the allocation of each alive task, aligned with Alive.
	Alloc []float64
}

// Result is the outcome of an online run.
type Result struct {
	// Policy is the name of the policy that produced the run.
	Policy string
	// Schedule is the resulting (valid) column-based schedule.
	Schedule *schedule.ColumnSchedule
	// Decisions is the sequence of scheduling decisions.
	Decisions []Trace
}

// Run executes the policy on the instance. Decisions are recomputed every
// time a task completes (the event granularity of the paper's model).
func Run(inst *schedule.Instance, policy Policy) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	n := inst.N()
	remaining := make([]float64, n)
	processed := make([]float64, n)
	profiles := make([]*stepfunc.StepFunc, n)
	completions := make([]float64, n)
	alive := make([]int, 0, n)
	for i := 0; i < n; i++ {
		remaining[i] = inst.Tasks[i].Volume
		profiles[i] = stepfunc.Constant(0)
		alive = append(alive, i)
	}

	result := &Result{Policy: policy.Name()}
	now := 0.0
	// views and allocBuf are threaded through every decision point (the
	// append-into-dst contract of Policy), so the loop itself does not
	// allocate per event.
	views := make([]TaskView, 0, n)
	var allocBuf []float64
	for steps := 0; len(alive) > 0; steps++ {
		if steps > 4*n+16 {
			return nil, fmt.Errorf("sim: policy %q did not finish after %d decision points", policy.Name(), steps)
		}
		views = views[:0]
		for _, i := range alive {
			views = append(views, TaskView{
				ID:        i,
				Weight:    inst.Tasks[i].Weight,
				Delta:     inst.EffectiveDelta(i),
				Processed: processed[i],
			})
		}
		allocBuf = policy.Allocate(inst.P, views, allocBuf[:0])
		alloc := allocBuf
		if err := validateAllocation(inst, views, alloc); err != nil {
			return nil, fmt.Errorf("sim: policy %q: %w", policy.Name(), err)
		}
		result.Decisions = append(result.Decisions, Trace{
			Time:  now,
			Alive: append([]int(nil), alive...),
			Alloc: append([]float64(nil), alloc...),
		})

		// Advance to the next completion.
		dt := math.Inf(1)
		for k, i := range alive {
			if alloc[k] <= 0 {
				continue
			}
			if d := remaining[i] / alloc[k]; d < dt {
				dt = d
			}
		}
		if math.IsInf(dt, 1) {
			return nil, fmt.Errorf("sim: policy %q starves all remaining tasks at time %g", policy.Name(), now)
		}
		for k, i := range alive {
			if alloc[k] <= 0 {
				continue
			}
			profiles[i].AddOn(now, now+dt, alloc[k])
			remaining[i] -= alloc[k] * dt
			processed[i] += alloc[k] * dt
		}
		now += dt
		stillAlive := alive[:0]
		for _, i := range alive {
			if remaining[i] <= 1e-9*math.Max(1, inst.Tasks[i].Volume) {
				completions[i] = now
			} else {
				stillAlive = append(stillAlive, i)
			}
		}
		alive = stillAlive
	}
	s, err := schedule.FromAllocationFunctions(inst, completions, profiles)
	if err != nil {
		return nil, err
	}
	result.Schedule = s
	return result, nil
}

func validateAllocation(inst *schedule.Instance, views []TaskView, alloc []float64) error {
	if len(alloc) != len(views) {
		return fmt.Errorf("allocation has %d entries for %d alive tasks", len(alloc), len(views))
	}
	var total float64
	for k, a := range alloc {
		if a < -1e-9 || math.IsNaN(a) {
			return fmt.Errorf("negative allocation %g for task %d", a, views[k].ID)
		}
		if a > views[k].Delta+1e-6 {
			return fmt.Errorf("allocation %g for task %d exceeds its degree bound %g", a, views[k].ID, views[k].Delta)
		}
		total += a
	}
	if total > inst.P+1e-6 {
		return fmt.Errorf("allocation total %g exceeds the platform capacity %g", total, inst.P)
	}
	return nil
}
