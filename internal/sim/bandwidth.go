// Package sim holds the master–worker bandwidth-sharing study of the paper's
// Figure 1: replaying a malleable distribution schedule against worker
// processing rates and checking the throughput/ΣwC equivalence claimed in the
// paper's introduction.
//
// The package used to also contain a static policy-execution loop; that loop
// is gone — internal/engine is the library's single scheduling kernel, and
// static instances replay on it through engine.RunStatic (every task released
// at time zero). What remains here is analysis of already-built schedules,
// not scheduling.
package sim

import (
	"fmt"
	"math"
	"sort"

	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/workload"
)

// BandwidthResult summarizes a bandwidth-sharing simulation (Figure 1 of the
// paper): codes are distributed to workers according to a malleable schedule
// of the equivalent MWCT instance, then each worker processes tasks at its
// rate until the horizon.
type BandwidthResult struct {
	// Strategy names the schedule used for the distribution phase.
	Strategy string
	// Completions[i] is the time worker i finished downloading its code.
	Completions []float64
	// TasksProcessed is the total number of tasks processed by the horizon,
	// integrated step by step by the simulation.
	TasksProcessed float64
	// WeightedCompletionTime is Σ rate_i · C_i of the distribution schedule;
	// the paper's equivalence states that maximizing TasksProcessed is the
	// same as minimizing this quantity.
	WeightedCompletionTime float64
}

// SimulateBandwidth plays the two-phase scenario under the given distribution
// schedule. The schedule must be a valid schedule of scenario.Instance().
// The processing phase is simulated with an explicit time-stepped sweep over
// the completion events rather than with the closed formula, so that the
// equivalence max Σw(T-C) ⇔ min ΣwC claimed in the introduction of the paper
// can be checked against an independent computation.
func SimulateBandwidth(scenario *workload.BandwidthScenario, strategy string, s *schedule.ColumnSchedule) (*BandwidthResult, error) {
	if len(scenario.Workers) != s.Inst.N() {
		return nil, fmt.Errorf("sim: scenario has %d workers but the schedule has %d tasks", len(scenario.Workers), s.Inst.N())
	}
	completions := s.CompletionTimes()

	// Sweep over time: between consecutive events, every worker whose code
	// has arrived processes tasks at its rate.
	type event struct {
		t      float64
		worker int
	}
	events := make([]event, 0, len(completions))
	for i, c := range completions {
		events = append(events, event{t: c, worker: i})
	}
	sort.Slice(events, func(a, b int) bool { return events[a].t < events[b].t })

	processed := 0.0
	activeRate := 0.0
	cursor := 0.0
	for _, ev := range events {
		if ev.t >= scenario.Horizon {
			break
		}
		processed += activeRate * (ev.t - cursor)
		cursor = ev.t
		activeRate += scenario.Workers[ev.worker].Rate
	}
	if cursor < scenario.Horizon {
		processed += activeRate * (scenario.Horizon - cursor)
	}

	weighted := 0.0
	for i, c := range completions {
		weighted += scenario.Workers[i].Rate * c
	}
	return &BandwidthResult{
		Strategy:               strategy,
		Completions:            completions,
		TasksProcessed:         processed,
		WeightedCompletionTime: weighted,
	}, nil
}

// ThroughputIdentityGap returns |Σ rate_i·(T - C_i) - (simulated throughput)|
// for a result whose completions are all within the horizon; it quantifies
// how well the closed-form equivalence of the paper's introduction matches
// the explicit simulation (it should be zero up to round-off).
func (r *BandwidthResult) ThroughputIdentityGap(scenario *workload.BandwidthScenario) float64 {
	closedForm := scenario.TasksProcessedBy(r.Completions)
	return math.Abs(closedForm - r.TasksProcessed)
}

// CompareBandwidthStrategies runs the given named schedules through the
// simulation and returns the results sorted by decreasing throughput. It also
// verifies the paper's equivalence: the ranking by throughput must be the
// reverse of the ranking by weighted completion time whenever all completions
// fall within the horizon.
func CompareBandwidthStrategies(scenario *workload.BandwidthScenario, schedules map[string]*schedule.ColumnSchedule) ([]*BandwidthResult, error) {
	var results []*BandwidthResult
	for name, s := range schedules {
		r, err := SimulateBandwidth(scenario, name, s)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].TasksProcessed != results[b].TasksProcessed {
			return results[a].TasksProcessed > results[b].TasksProcessed
		}
		return results[a].Strategy < results[b].Strategy
	})
	// Consistency check of the equivalence when it applies exactly.
	for i := 1; i < len(results); i++ {
		a, b := results[i-1], results[i]
		withinHorizon := true
		for _, c := range append(append([]float64(nil), a.Completions...), b.Completions...) {
			if c > scenario.Horizon+numeric.Eps {
				withinHorizon = false
				break
			}
		}
		if withinHorizon && a.TasksProcessed > b.TasksProcessed+1e-9 &&
			a.WeightedCompletionTime > b.WeightedCompletionTime+1e-9 {
			return nil, fmt.Errorf("sim: equivalence violated: %q has higher throughput and higher ΣwC than %q",
				a.Strategy, b.Strategy)
		}
	}
	return results, nil
}
