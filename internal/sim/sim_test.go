package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/workload"
)

func mustInstance(t *testing.T, p float64, tasks []schedule.Task) *schedule.Instance {
	t.Helper()
	inst, err := schedule.NewInstance(p, tasks)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

func randomInstance(rng *rand.Rand, n int, p float64) *schedule.Instance {
	tasks := make([]schedule.Task, n)
	for i := range tasks {
		tasks[i] = schedule.Task{
			Weight: 0.05 + 0.95*rng.Float64(),
			Volume: 0.05 + 0.95*rng.Float64(),
			Delta:  0.05 + (p-0.05)*rng.Float64(),
		}
	}
	return &schedule.Instance{P: p, Tasks: tasks}
}

func TestRunWDEQPolicyMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng, 1+rng.Intn(6), float64(1+rng.Intn(4)))
		res, err := Run(inst, WDEQPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("invalid: %v", err)
		}
		direct, err := core.RunWDEQ(inst)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.ApproxEqualTol(res.Schedule.WeightedCompletionTime(), direct.WeightedCompletionTime(), 1e-6) {
			t.Errorf("engine %g vs direct %g", res.Schedule.WeightedCompletionTime(), direct.WeightedCompletionTime())
		}
	}
}

func TestRunRecordsDecisions(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 2},
		{Weight: 1, Volume: 2, Delta: 2},
	})
	res, err := Run(inst, DEQPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) == 0 || res.Decisions[0].Time != 0 {
		t.Errorf("decisions = %+v", res.Decisions)
	}
	if res.Policy != "DEQ" {
		t.Errorf("policy name = %q", res.Policy)
	}
}

func TestPriorityPolicy(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 2},
		{Weight: 1, Volume: 2, Delta: 2},
	})
	// Task 1 has the highest priority (rank 0).
	res, err := Run(inst, PriorityPolicy{Priority: []int{1, 0}, Label: "prio"})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if !numeric.ApproxEqual(res.Schedule.CompletionTime(1), 1) || !numeric.ApproxEqual(res.Schedule.CompletionTime(0), 2) {
		t.Errorf("completions = %v, want task 1 first", res.Schedule.CompletionTimes())
	}
	if res.Policy != "prio" {
		t.Errorf("label not used: %q", res.Policy)
	}
	if (PriorityPolicy{}).Name() != "priority" {
		t.Errorf("default name wrong")
	}
}

// badPolicy violates the capacity constraint to exercise the engine's guard.
type badPolicy struct{}

func (badPolicy) Name() string { return "bad" }
func (badPolicy) Allocate(p float64, alive []TaskView, dst []float64) []float64 {
	for range alive {
		dst = append(dst, p) // every task asks for the whole platform
	}
	return dst
}

// starvingPolicy allocates nothing, which must be detected as starvation.
type starvingPolicy struct{}

func (starvingPolicy) Name() string { return "starve" }
func (starvingPolicy) Allocate(p float64, alive []TaskView, dst []float64) []float64 {
	for range alive {
		dst = append(dst, 0)
	}
	return dst
}

func TestRunRejectsBadPolicies(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 1, Delta: 2},
		{Weight: 1, Volume: 1, Delta: 2},
	})
	if _, err := Run(inst, badPolicy{}); err == nil {
		t.Errorf("over-allocation not detected")
	}
	if _, err := Run(inst, starvingPolicy{}); err == nil {
		t.Errorf("starvation not detected")
	}
}

func TestSimulateBandwidth(t *testing.T) {
	scenario, err := workload.NewBandwidthScenario(4, 11)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := scenario.Instance()
	if err != nil {
		t.Fatal(err)
	}
	wdeq, err := core.RunWDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateBandwidth(scenario, "WDEQ", wdeq)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksProcessed <= 0 {
		t.Errorf("no tasks processed")
	}
	// The explicit sweep matches the closed-form Σ rate·(T-C) whenever all
	// completions are within the horizon.
	if gap := res.ThroughputIdentityGap(scenario); gap > 1e-6 {
		t.Errorf("identity gap = %g", gap)
	}
}

func TestCompareBandwidthStrategies(t *testing.T) {
	scenario, err := workload.NewBandwidthScenario(5, 21)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := scenario.Instance()
	if err != nil {
		t.Fatal(err)
	}
	wdeq, err := core.RunWDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	best, err := core.BestGreedy(inst, rand.New(rand.NewSource(1)), 8)
	if err != nil {
		t.Fatal(err)
	}
	cmax, err := core.CmaxOptimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	results, err := CompareBandwidthStrategies(scenario, map[string]*schedule.ColumnSchedule{
		"WDEQ":         wdeq,
		"best greedy":  best.Schedule,
		"Cmax optimal": cmax,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("expected 3 results, got %d", len(results))
	}
	// Results are sorted by decreasing throughput; the best greedy (lowest
	// ΣwC) must process at least as many tasks as the others.
	for _, r := range results {
		if r.Strategy == "best greedy" && r.TasksProcessed+1e-9 < results[0].TasksProcessed {
			t.Errorf("best greedy is not among the top strategies: %+v", results)
		}
	}
}

func TestSimulateBandwidthSizeMismatch(t *testing.T) {
	scenario, _ := workload.NewBandwidthScenario(3, 1)
	otherInst := mustInstance(t, 2, []schedule.Task{{Weight: 1, Volume: 1, Delta: 1}})
	s, err := core.CmaxOptimal(otherInst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateBandwidth(scenario, "x", s); err == nil {
		t.Errorf("size mismatch accepted")
	}
}

// Property: the non-clairvoyant engine with the WDEQ policy and the direct
// WDEQ implementation agree on every completion time, for any instance.
func TestQuickEngineEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 1+rng.Intn(6), float64(1+rng.Intn(4)))
		res, err := Run(inst, WDEQPolicy{})
		if err != nil {
			return false
		}
		direct, err := core.RunWDEQ(inst)
		if err != nil {
			return false
		}
		for i := 0; i < inst.N(); i++ {
			if !numeric.ApproxEqualTol(res.Schedule.CompletionTime(i), direct.CompletionTime(i), 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: a priority policy driven by Smith's order is never better than
// the offline best greedy but always yields a valid schedule and respects the
// degree bounds (checked through schedule validation).
func TestQuickPriorityPolicyValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 1+rng.Intn(6), float64(1+rng.Intn(4)))
		priority := make([]int, inst.N())
		for rank, task := range inst.SmithOrder() {
			priority[task] = rank
		}
		res, err := Run(inst, PriorityPolicy{Priority: priority, Label: "smith"})
		if err != nil {
			return false
		}
		return res.Schedule.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
