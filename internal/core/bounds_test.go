package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
)

func mustInstance(t *testing.T, p float64, tasks []schedule.Task) *schedule.Instance {
	t.Helper()
	inst, err := schedule.NewInstance(p, tasks)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

// randomInstance draws an instance from the distribution used in the paper's
// Section V-A experiments: uniform δ_i < P, w_i < 1 and V_i < 1 (shifted away
// from zero to keep the instance valid).
func randomInstance(rng *rand.Rand, n int, p float64) *schedule.Instance {
	tasks := make([]schedule.Task, n)
	for i := range tasks {
		tasks[i] = schedule.Task{
			Weight: 0.05 + 0.95*rng.Float64(),
			Volume: 0.05 + 0.95*rng.Float64(),
			Delta:  0.05 + (p-0.05)*rng.Float64(),
		}
	}
	return &schedule.Instance{P: p, Tasks: tasks}
}

func TestSquashedAreaBoundSingleProcessor(t *testing.T) {
	// On one processor with δ_i >= 1 the squashed-area bound is the exact
	// optimum (Smith's rule): tasks (V,w) = (1,1), (2,1): order T1 then T2,
	// objective 1*1 + 1*3 = 4.
	inst := mustInstance(t, 1, []schedule.Task{
		{Weight: 1, Volume: 1, Delta: 1},
		{Weight: 1, Volume: 2, Delta: 1},
	})
	if got := SquashedAreaBound(inst); !numeric.ApproxEqual(got, 4) {
		t.Errorf("A(I) = %g, want 4", got)
	}
}

func TestSquashedAreaBoundUsesSmithOrder(t *testing.T) {
	// Weighted: (V=4,w=1), (V=1,w=10) on P=1: Smith order puts the second
	// first. A = 10*1 + 1*5 = 15.
	inst := mustInstance(t, 1, []schedule.Task{
		{Weight: 1, Volume: 4, Delta: 1},
		{Weight: 10, Volume: 1, Delta: 1},
	})
	if got := SquashedAreaBound(inst); !numeric.ApproxEqual(got, 15) {
		t.Errorf("A(I) = %g, want 15", got)
	}
}

func TestHeightBound(t *testing.T) {
	inst := mustInstance(t, 4, []schedule.Task{
		{Weight: 2, Volume: 6, Delta: 3}, // contributes 2*2 = 4
		{Weight: 1, Volume: 4, Delta: 2}, // contributes 1*2 = 2
	})
	if got := HeightBound(inst); !numeric.ApproxEqual(got, 6) {
		t.Errorf("H(I) = %g, want 6", got)
	}
}

func TestLowerBoundIsMax(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 4, Delta: 1},
		{Weight: 1, Volume: 1, Delta: 2},
	})
	a, h := SquashedAreaBound(inst), HeightBound(inst)
	want := a
	if h > a {
		want = h
	}
	if got := LowerBound(inst); !numeric.ApproxEqual(got, want) {
		t.Errorf("LowerBound = %g, want %g", got, want)
	}
}

func TestMixedLowerBoundExtremes(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 1},
		{Weight: 3, Volume: 1, Delta: 2},
	})
	// All volume in the first part: mixed = A(I).
	all := []float64{2, 1}
	got, err := MixedLowerBound(inst, all)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqual(got, SquashedAreaBound(inst)) {
		t.Errorf("mixed(all in V1) = %g, want A = %g", got, SquashedAreaBound(inst))
	}
	// All volume in the second part: mixed = H(I).
	none := []float64{0, 0}
	got, err = MixedLowerBound(inst, none)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqual(got, HeightBound(inst)) {
		t.Errorf("mixed(all in V2) = %g, want H = %g", got, HeightBound(inst))
	}
	if _, err := MixedLowerBound(inst, []float64{1}); err == nil {
		t.Errorf("size mismatch accepted")
	}
}

func TestWeightedCompletionOf(t *testing.T) {
	inst := mustInstance(t, 1, []schedule.Task{
		{Weight: 2, Volume: 1, Delta: 1},
		{Weight: 3, Volume: 1, Delta: 1},
	})
	if got := WeightedCompletionOf(inst, []float64{1, 2}); !numeric.ApproxEqual(got, 8) {
		t.Errorf("WeightedCompletionOf = %g, want 8", got)
	}
}

// Property: every schedule produced by the library's algorithms has an
// objective at least the lower bounds (A, H, and any mixed split).
func TestQuickLowerBoundsHold(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 1+rng.Intn(5), float64(1+rng.Intn(4)))
		s, err := RunWDEQ(inst)
		if err != nil {
			return false
		}
		obj := s.WeightedCompletionTime()
		if obj < SquashedAreaBound(inst)-1e-6 || obj < HeightBound(inst)-1e-6 {
			return false
		}
		// A random split must also be a lower bound.
		v1 := make([]float64, inst.N())
		for i := range v1 {
			v1[i] = rng.Float64() * inst.Tasks[i].Volume
		}
		mixed, err := MixedLowerBound(inst, v1)
		if err != nil {
			return false
		}
		return obj >= mixed-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
