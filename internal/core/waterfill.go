package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
)

// ErrInfeasibleCompletionTimes is returned by WaterFill when no valid
// schedule exists with the requested completion times. By Theorem 8 this is a
// definitive answer: if the water-filling algorithm fails, every other
// schedule fails too.
type ErrInfeasibleCompletionTimes struct {
	// Task is the index of the first task (in completion order) that cannot
	// be fitted.
	Task int
	// Missing is the volume that does not fit below the platform capacity.
	Missing float64
}

func (e *ErrInfeasibleCompletionTimes) Error() string {
	return fmt.Sprintf("core: completion times are infeasible: task %d cannot place %g units of work", e.Task, e.Missing)
}

// WaterFill runs Algorithm WF (Algorithm 2 of the paper): given per-task
// completion times, it rebuilds a valid column-based schedule in which task i
// completes at time completions[i], or reports that none exists. The schedule
// it produces is the paper's normal form; its total number of allocation
// changes is at most n (Theorem 9) and its integral conversion has at most 3n
// preemptions (Theorem 10).
func WaterFill(inst *schedule.Instance, completions []float64) (*schedule.ColumnSchedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	n := inst.N()
	if len(completions) != n {
		return nil, fmt.Errorf("core: need %d completion times, got %d", n, len(completions))
	}
	for i, c := range completions {
		if c < -numeric.Eps || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("core: completion time of task %d is invalid (%g)", i, c)
		}
	}

	s := schedule.NewColumnSchedule(inst)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return completions[order[a]] < completions[order[b]] })
	s.Order = order
	for j, task := range order {
		s.Times[j] = completions[task]
	}

	heights := make([]float64, n) // heights[k] = occupied height of column k
	for j, task := range order {
		delta := inst.EffectiveDelta(task)
		volume := inst.Tasks[task].Volume

		// Capacity check: wf_i(P) >= V_i ?
		capacity := 0.0
		for k := 0; k <= j; k++ {
			l := s.ColumnLength(k)
			if l <= numeric.Eps {
				continue
			}
			capacity += l * numeric.Clamp(inst.P-heights[k], 0, delta)
		}
		if capacity < volume-1e-7*math.Max(1, volume) {
			return nil, &ErrInfeasibleCompletionTimes{Task: task, Missing: volume - capacity}
		}

		level := waterLevel(s, heights, j, delta, volume)

		// Allocate the task in columns 1..j at the computed level.
		for k := 0; k <= j; k++ {
			l := s.ColumnLength(k)
			if l <= numeric.Eps {
				continue
			}
			a := numeric.Clamp(level-heights[k], 0, delta)
			if a <= numeric.Eps {
				continue
			}
			s.Alloc[task][k] = a
			heights[k] += a
		}
	}
	return s, nil
}

// waterLevel returns the minimal level h such that pouring task volume into
// columns 0..j (with per-column cap delta above the current height) absorbs
// exactly `volume`: min{h : Σ_k l_k·clamp(h-heights[k], 0, delta) = volume}.
func waterLevel(s *schedule.ColumnSchedule, heights []float64, j int, delta, volume float64) float64 {
	// Candidate breakpoints of the piecewise-linear filling function.
	var bps []float64
	for k := 0; k <= j; k++ {
		if s.ColumnLength(k) <= numeric.Eps {
			continue
		}
		bps = append(bps, heights[k], heights[k]+delta)
	}
	bps = append(bps, 0)
	sort.Float64s(bps)

	fill := func(h float64) float64 {
		var sum numeric.KahanSum
		for k := 0; k <= j; k++ {
			l := s.ColumnLength(k)
			if l <= numeric.Eps {
				continue
			}
			sum.Add(l * numeric.Clamp(h-heights[k], 0, delta))
		}
		return sum.Value()
	}

	prevH, prevV := bps[0], fill(bps[0])
	if prevV >= volume {
		return prevH
	}
	for _, h := range bps[1:] {
		if h <= prevH {
			continue
		}
		v := fill(h)
		if v >= volume {
			// Interpolate inside [prevH, h]; the filling function is linear
			// there and strictly increasing because v > prevV.
			slope := (v - prevV) / (h - prevH)
			return prevH + (volume-prevV)/slope
		}
		prevH, prevV = h, v
	}
	// The capacity check in WaterFill guarantees we never fall through for
	// feasible inputs; returning the last breakpoint keeps the function total.
	return prevH
}

// WaterFillFeasible reports whether a valid schedule exists in which task i
// completes at completions[i]. It is a thin wrapper around WaterFill that
// discards the schedule.
func WaterFillFeasible(inst *schedule.Instance, completions []float64) bool {
	_, err := WaterFill(inst, completions)
	return err == nil
}

// plateau is a maximal run of columns with equal occupied height, used by the
// aggregated water-level computation.
type plateau struct {
	height float64
	length float64
}

// WaterFillLevels computes only the water levels h_i chosen by Algorithm WF
// for each task (in completion order), using an aggregated plateau
// representation of the occupancy profile instead of per-column heights. It
// returns the levels indexed by task, or an infeasibility error. It produces
// exactly the same levels as WaterFill and is used as the fast path when the
// full allocation matrix is not needed (for example for feasibility testing
// inside search loops) and as the ablation counterpart of the reference
// implementation.
func WaterFillLevels(inst *schedule.Instance, completions []float64) ([]float64, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	n := inst.N()
	if len(completions) != n {
		return nil, fmt.Errorf("core: need %d completion times, got %d", n, len(completions))
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return completions[order[a]] < completions[order[b]] })

	levels := make([]float64, n)
	// Plateaus sorted by non-increasing height (Lemma 3 guarantees the
	// occupancy profile stays non-increasing over time, so column order and
	// height order coincide).
	var ps []plateau
	prevTime := 0.0
	for _, task := range order {
		l := completions[task] - prevTime
		prevTime = completions[task]
		if l > numeric.Eps {
			ps = append(ps, plateau{height: 0, length: l})
		}
		delta := inst.EffectiveDelta(task)
		volume := inst.Tasks[task].Volume

		capacity := 0.0
		for _, p := range ps {
			capacity += p.length * numeric.Clamp(inst.P-p.height, 0, delta)
		}
		if capacity < volume-1e-7*math.Max(1, volume) {
			return nil, &ErrInfeasibleCompletionTimes{Task: task, Missing: volume - capacity}
		}

		level := plateauWaterLevel(ps, delta, volume)
		levels[task] = level

		// Raise the plateaus and merge the ones that reach the new level.
		var next []plateau
		for _, p := range ps {
			switch {
			case p.height >= level:
				next = append(next, p)
			case p.height >= level-delta:
				next = append(next, plateau{height: level, length: p.length})
			default:
				next = append(next, plateau{height: p.height + delta, length: p.length})
			}
		}
		ps = mergePlateaus(next)
	}
	return levels, nil
}

func plateauWaterLevel(ps []plateau, delta, volume float64) float64 {
	var bps []float64
	for _, p := range ps {
		bps = append(bps, p.height, p.height+delta)
	}
	bps = append(bps, 0)
	sort.Float64s(bps)
	fill := func(h float64) float64 {
		var sum numeric.KahanSum
		for _, p := range ps {
			sum.Add(p.length * numeric.Clamp(h-p.height, 0, delta))
		}
		return sum.Value()
	}
	prevH, prevV := bps[0], fill(bps[0])
	if prevV >= volume {
		return prevH
	}
	for _, h := range bps[1:] {
		if h <= prevH {
			continue
		}
		v := fill(h)
		if v >= volume {
			slope := (v - prevV) / (h - prevH)
			return prevH + (volume-prevV)/slope
		}
		prevH, prevV = h, v
	}
	return prevH
}

// mergePlateaus re-sorts plateaus by non-increasing height and merges
// adjacent plateaus of (numerically) equal height.
func mergePlateaus(ps []plateau) []plateau {
	sort.SliceStable(ps, func(a, b int) bool { return ps[a].height > ps[b].height })
	var out []plateau
	for _, p := range ps {
		if n := len(out); n > 0 && numeric.ApproxEqual(out[n-1].height, p.height) {
			out[n-1].length += p.length
			continue
		}
		out = append(out, p)
	}
	return out
}

// Normalize rebuilds the schedule's normal form: it extracts the completion
// times of the given valid schedule and reconstructs the water-filling
// schedule with the same completion times (Theorem 8). The objective value is
// unchanged; the number of allocation changes is at most n.
func Normalize(s *schedule.ColumnSchedule) (*schedule.ColumnSchedule, error) {
	return WaterFill(s.Inst, s.CompletionTimes())
}

// MinimizeMaxLateness computes a schedule minimizing the maximum lateness
// max_i (C_i - Due_i) by binary search on the lateness value, using the
// water-filling feasibility test. This is the application of the normal form
// mentioned in the introduction of the paper (the maximum-lateness problem is
// solvable with the same machinery once release dates are all zero).
func MinimizeMaxLateness(inst *schedule.Instance) (*schedule.ColumnSchedule, float64, error) {
	if err := inst.Validate(); err != nil {
		return nil, 0, err
	}
	n := inst.N()
	// Lower bound: every task needs at least V_i/δ_i time; upper bound: the
	// makespan-optimal schedule meets deadline d_i + (Cmax* - min d).
	lo := math.Inf(-1)
	minDue := math.Inf(1)
	for i := 0; i < n; i++ {
		if l := inst.Tasks[i].Volume/inst.EffectiveDelta(i) - inst.Tasks[i].Due; l > lo {
			lo = l
		}
		if inst.Tasks[i].Due < minDue {
			minDue = inst.Tasks[i].Due
		}
	}
	hi := inst.OptimalMakespan() - minDue
	if hi < lo {
		hi = lo
	}
	deadlines := func(l float64) []float64 {
		ds := make([]float64, n)
		for i := range ds {
			ds[i] = math.Max(0, inst.Tasks[i].Due+l)
		}
		return ds
	}
	if !WaterFillFeasible(inst, deadlines(hi)) {
		return nil, 0, fmt.Errorf("core: internal error: upper lateness bound %g is infeasible", hi)
	}
	if WaterFillFeasible(inst, deadlines(lo)) {
		s, err := WaterFill(inst, deadlines(lo))
		return s, lo, err
	}
	for iter := 0; iter < 100 && hi-lo > 1e-9*math.Max(1, math.Abs(hi)); iter++ {
		mid := (lo + hi) / 2
		if WaterFillFeasible(inst, deadlines(mid)) {
			hi = mid
		} else {
			lo = mid
		}
	}
	s, err := WaterFill(inst, deadlines(hi))
	if err != nil {
		return nil, 0, err
	}
	return s, hi, nil
}
