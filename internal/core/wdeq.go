package core

import (
	"math"

	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/speedup"
	"github.com/malleable-sched/malleable/internal/stepfunc"
)

// ShareAllocation implements the resource-sharing rule of Algorithm 1 (WDEQ):
// the P processors are split between the active tasks proportionally to their
// weights; tasks whose proportional share exceeds their degree bound δ_i are
// pinned at δ_i and the surplus is redistributed among the others, repeatedly,
// until a fixed point is reached.
//
// weights and deltas describe the active tasks only; the returned slice gives
// each task's allocation and always sums to at most P. The function is purely
// combinatorial (it never looks at volumes), which is what makes WDEQ
// non-clairvoyant.
func ShareAllocation(p float64, weights, deltas []float64) []float64 {
	return ShareAllocationInto(make([]float64, 0, len(weights)), p, weights, deltas)
}

// ShareAllocationInto is ShareAllocation with the append-into-dst convention
// of the hot engine loop: the n shares are appended to dst and the extended
// slice is returned. When cap(dst) >= len(dst)+n no allocation is performed,
// so callers that thread the same buffer through every event run
// allocation-free in steady state.
func ShareAllocationInto(dst []float64, p float64, weights, deltas []float64) []float64 {
	return ShareAllocationFunc(dst, p, len(weights),
		func(i int) float64 { return weights[i] },
		func(i int) float64 { return deltas[i] })
}

// unpinned marks a task whose share is still being negotiated by the
// fixed-point loop of ShareAllocationFunc. Real allocations are never
// negative, so the sentinel doubles as the "pinned" flag and the usual
// separate bool scratch slice disappears.
const unpinned = -1

// ShareAllocationFunc is the accessor form of the sharing rule: the weights
// and degree bounds of the n active tasks are read through weight(i) and
// delta(i) instead of materialized slices, and the shares are appended to
// dst. Policies that observe task structs (engine.TaskState) call this
// directly so no per-event weight/delta slices exist at all.
func ShareAllocationFunc(dst []float64, p float64, n int, weight, delta func(int) float64) []float64 {
	base := len(dst)
	for i := 0; i < n; i++ {
		dst = append(dst, unpinned)
	}
	alloc := dst[base:]
	remaining := p
	for {
		var weightSum float64
		for i := 0; i < n; i++ {
			if alloc[i] == unpinned {
				weightSum += weight(i)
			}
		}
		if weightSum <= 0 {
			for i := 0; i < n; i++ {
				if alloc[i] == unpinned {
					alloc[i] = 0
				}
			}
			break
		}
		changed := false
		for i := 0; i < n; i++ {
			if alloc[i] != unpinned {
				continue
			}
			share := weight(i) * remaining / weightSum
			if d := delta(i); d < share {
				alloc[i] = d
				remaining -= d
				changed = true
			}
		}
		if !changed {
			for i := 0; i < n; i++ {
				if alloc[i] == unpinned {
					alloc[i] = weight(i) * remaining / weightSum
				}
			}
			break
		}
	}
	return dst
}

// ShareAllocationModelFunc is the model-aware form of the sharing rule: the
// per-task pinning cap of the fixed point is min(δ_i, Model.MaxUseful(i)) —
// the smallest allocation at which the speedup model's rate peaks — instead
// of δ_i alone. For the paper's linear-cap model MaxUseful is exactly δ, so
// this degenerates to ShareAllocationFunc; a model whose rate saturates
// earlier pins tasks at the point of diminishing returns and redistributes
// the processors they could not use. Shapes are read through shape(i), the
// same accessor convention as ShareAllocationFunc, so the call allocates
// nothing when dst has spare capacity.
func ShareAllocationModelFunc(dst []float64, p float64, n int, m speedup.Model, weight func(int) float64, shape func(int) speedup.TaskShape) []float64 {
	return ShareAllocationFunc(dst, p, n, weight, func(i int) float64 {
		s := shape(i)
		return math.Min(s.Delta, m.MaxUseful(s))
	})
}

// EquipartitionAllocation is the unweighted DEQ sharing rule: every active
// task has weight one.
func EquipartitionAllocation(p float64, deltas []float64) []float64 {
	return EquipartitionAllocationInto(make([]float64, 0, len(deltas)), p, deltas)
}

// EquipartitionAllocationInto is EquipartitionAllocation with the
// append-into-dst convention of ShareAllocationInto.
func EquipartitionAllocationInto(dst []float64, p float64, deltas []float64) []float64 {
	return ShareAllocationFunc(dst, p, len(deltas),
		func(int) float64 { return 1 },
		func(i int) float64 { return deltas[i] })
}

// RunWDEQ simulates the non-clairvoyant WDEQ algorithm (Algorithm 1 of the
// paper) on the instance and returns the resulting column-based schedule.
// The scheduler re-computes the weighted equipartition every time a task
// completes; it never uses the task volumes to take decisions (they are used
// by the simulation only to detect completions), which is exactly the
// non-clairvoyant execution model of Section III.
func RunWDEQ(inst *schedule.Instance) (*schedule.ColumnSchedule, error) {
	return runEquipartition(inst, false)
}

// RunDEQ simulates the unweighted DEQ algorithm of Deng et al. (all weights
// treated as one), the baseline WDEQ generalizes.
func RunDEQ(inst *schedule.Instance) (*schedule.ColumnSchedule, error) {
	return runEquipartition(inst, true)
}

func runEquipartition(inst *schedule.Instance, ignoreWeights bool) (*schedule.ColumnSchedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	n := inst.N()
	remaining := make([]float64, n)
	active := make([]int, 0, n)
	profiles := make([]*stepfunc.StepFunc, n)
	completions := make([]float64, n)
	for i := range remaining {
		remaining[i] = inst.Tasks[i].Volume
		active = append(active, i)
		profiles[i] = stepfunc.Constant(0)
	}
	now := 0.0
	// Scratch threaded through every decision point so the simulation loop
	// does not allocate per event (the append-into-dst contract of
	// ShareAllocationInto).
	weights := make([]float64, 0, n)
	deltas := make([]float64, 0, n)
	var allocBuf []float64
	for len(active) > 0 {
		weights, deltas = weights[:0], deltas[:0]
		for _, i := range active {
			if !ignoreWeights {
				weights = append(weights, inst.Tasks[i].Weight)
			}
			deltas = append(deltas, inst.EffectiveDelta(i))
		}
		if ignoreWeights {
			allocBuf = EquipartitionAllocationInto(allocBuf[:0], inst.P, deltas)
		} else {
			allocBuf = ShareAllocationInto(allocBuf[:0], inst.P, weights, deltas)
		}
		alloc := allocBuf

		// Next event: the earliest completion under the current allocation.
		dt := math.Inf(1)
		for k, i := range active {
			if alloc[k] <= 0 {
				continue
			}
			if d := remaining[i] / alloc[k]; d < dt {
				dt = d
			}
		}
		if math.IsInf(dt, 1) {
			// No active task makes progress: impossible for valid instances
			// because the sharing rule always hands out positive allocations.
			return nil, errNoProgress
		}

		for k, i := range active {
			if alloc[k] <= 0 {
				continue
			}
			profiles[i].AddOn(now, now+dt, alloc[k])
			remaining[i] -= alloc[k] * dt
		}
		now += dt

		// Retire completed tasks (several may finish simultaneously).
		stillActive := active[:0]
		for _, i := range active {
			if remaining[i] <= 1e-9*math.Max(1, inst.Tasks[i].Volume) {
				completions[i] = now
				remaining[i] = 0
			} else {
				stillActive = append(stillActive, i)
			}
		}
		active = stillActive
	}
	return schedule.FromAllocationFunctions(inst, completions, profiles)
}

// errNoProgress reports a stalled equipartition simulation; it cannot occur
// for valid instances and exists to avoid an infinite loop on corrupted data.
var errNoProgress = &noProgressError{}

type noProgressError struct{}

func (*noProgressError) Error() string {
	return "core: equipartition simulation made no progress (corrupt instance?)"
}

// WDEQApproximationRatio runs WDEQ on the instance and returns the ratio of
// its objective to the given reference value (typically the optimum or the
// LowerBound). It returns +Inf if the reference is not positive.
func WDEQApproximationRatio(inst *schedule.Instance, reference float64) (float64, error) {
	s, err := RunWDEQ(inst)
	if err != nil {
		return 0, err
	}
	if reference <= numeric.Eps {
		return math.Inf(1), nil
	}
	return s.WeightedCompletionTime() / reference, nil
}
