// Package core implements the algorithms of the paper "Minimizing Weighted
// Mean Completion Time for Malleable Tasks Scheduling" (Beaumont, Bonichon,
// Eyraud-Dubois, Marchal — IPDPS 2012): the non-clairvoyant WDEQ
// 2-approximation (Section III), the water-filling normal form (Section IV),
// greedy schedules (Section V), and the lower bounds used in the analysis.
package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
)

// SquashedAreaBound computes A(I) (Definition 5 of the paper): the optimal
// weighted completion time when the degree bounds δ_i are ignored, i.e. the
// tasks are processed one after another on the "squashed" platform of speed P
// in Smith order (non-decreasing V_i/w_i). It is a lower bound of the optimal
// objective of MWCT.
func SquashedAreaBound(inst *schedule.Instance) float64 {
	order := inst.SmithOrder()
	var obj numeric.KahanSum
	elapsed := 0.0
	for _, i := range order {
		elapsed += inst.Tasks[i].Volume / inst.P
		obj.Add(inst.Tasks[i].Weight * elapsed)
	}
	return obj.Value()
}

// HeightBound computes H(I) (Definition 6 of the paper): Σ w_i V_i/δ_i, the
// optimal weighted completion time when the platform has unlimited processors
// and every task runs at its maximal degree. It is a lower bound of the
// optimal objective of MWCT.
func HeightBound(inst *schedule.Instance) float64 {
	var obj numeric.KahanSum
	for _, t := range inst.Tasks {
		obj.Add(t.Weight * t.Volume / t.Delta)
	}
	return obj.Value()
}

// LowerBound returns max(A(I), H(I)), the strongest of the two basic lower
// bounds on the optimal weighted completion time.
func LowerBound(inst *schedule.Instance) float64 {
	return math.Max(SquashedAreaBound(inst), HeightBound(inst))
}

// MixedLowerBound computes the bound of Lemma 1: given a split of every task
// volume V_i = V1_i + V2_i, the optimum is at least A(I[V1]) + H(I[V2]).
// Entries of v1 are clamped to [0, V_i]; the remaining volume forms V2.
func MixedLowerBound(inst *schedule.Instance, v1 []float64) (float64, error) {
	if len(v1) != inst.N() {
		return 0, fmt.Errorf("core: MixedLowerBound needs %d split volumes, got %d", inst.N(), len(v1))
	}
	sub1 := inst.Clone()
	sub2 := inst.Clone()
	for i := range v1 {
		split := numeric.Clamp(v1[i], 0, inst.Tasks[i].Volume)
		sub1.Tasks[i].Volume = split
		sub2.Tasks[i].Volume = inst.Tasks[i].Volume - split
	}
	return squashedAreaAllowZero(sub1) + heightAllowZero(sub2), nil
}

// squashedAreaAllowZero is A(I) generalized to sub-instances in which some
// volumes may be zero (zero-volume tasks contribute their weight times the
// elapsed time at their position, which is optimal to place first).
func squashedAreaAllowZero(inst *schedule.Instance) float64 {
	type entry struct {
		ratio  float64
		weight float64
		volume float64
	}
	entries := make([]entry, 0, inst.N())
	for _, t := range inst.Tasks {
		ratio := 0.0
		if t.Volume > 0 {
			ratio = t.Volume / t.Weight
		}
		entries = append(entries, entry{ratio, t.Weight, t.Volume})
	}
	sort.SliceStable(entries, func(a, b int) bool { return entries[a].ratio < entries[b].ratio })
	var obj numeric.KahanSum
	elapsed := 0.0
	for _, e := range entries {
		elapsed += e.volume / inst.P
		obj.Add(e.weight * elapsed)
	}
	return obj.Value()
}

// heightAllowZero is H(I) for sub-instances that may contain zero volumes.
func heightAllowZero(inst *schedule.Instance) float64 {
	var obj numeric.KahanSum
	for _, t := range inst.Tasks {
		if t.Volume <= 0 {
			continue
		}
		obj.Add(t.Weight * t.Volume / t.Delta)
	}
	return obj.Value()
}

// WeightedCompletionOf returns Σ w_i C_i for an arbitrary completion-time
// vector, a convenience shared by solvers and experiments.
func WeightedCompletionOf(inst *schedule.Instance, completions []float64) float64 {
	var obj numeric.KahanSum
	for i, c := range completions {
		obj.Add(inst.Tasks[i].Weight * c)
	}
	return obj.Value()
}
