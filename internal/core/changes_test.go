package core

import (
	"testing"

	"github.com/malleable-sched/malleable/internal/schedule"
)

// buildScheduleWithAllocRows creates a three-column schedule with prescribed
// per-task allocation rows; the task volumes are derived from the rows so the
// schedule is internally consistent.
func buildScheduleWithAllocRows(t *testing.T, p float64, deltas []float64, times []float64, rows [][]float64) *schedule.ColumnSchedule {
	t.Helper()
	n := len(deltas)
	tasks := make([]schedule.Task, n)
	for i := range tasks {
		tasks[i] = schedule.Task{Weight: 1, Volume: 1, Delta: deltas[i]}
	}
	inst := &schedule.Instance{P: p, Tasks: tasks}
	s := schedule.NewColumnSchedule(inst)
	s.Times = append([]float64(nil), times...)
	for i := range rows {
		copy(s.Alloc[i], rows[i])
		v := 0.0
		for j := range rows[i] {
			v += rows[i][j] * s.ColumnLength(j)
		}
		inst.Tasks[i].Volume = v
	}
	return s
}

func TestLemma5ChangeCountExcludesTrailingSaturation(t *testing.T) {
	// Task 0: allocations 1, 1.5, 2 with δ = 2 — the step to 2 enters the
	// trailing saturated run and is not charged; the 1 -> 1.5 step is.
	// Task 1: constant allocation, no changes.
	// Task 2: allocations 0.5, 2, 1.5 with δ = 2 — the middle column touches
	// δ but the run is not trailing, so both steps count.
	s := buildScheduleWithAllocRows(t, 8,
		[]float64{2, 3, 2},
		[]float64{1, 2, 3},
		[][]float64{
			{1, 1.5, 2},
			{2, 2, 2},
			{0.5, 2, 1.5},
		})
	perTask, total := Lemma5ChangeCount(s)
	if perTask[0] != 1 {
		t.Errorf("task 0 changes = %d, want 1", perTask[0])
	}
	if perTask[1] != 0 {
		t.Errorf("task 1 changes = %d, want 0", perTask[1])
	}
	if perTask[2] != 2 {
		t.Errorf("task 2 changes = %d, want 2", perTask[2])
	}
	if total != 3 {
		t.Errorf("total = %d, want 3", total)
	}

	// The natural count charges the saturation transition of task 0 as well.
	perNatural, naturalTotal := s.AllocationChanges()
	if perNatural[0] != 2 || naturalTotal != 4 {
		t.Errorf("natural counts = %v (total %d), want task0=2 total=4", perNatural, naturalTotal)
	}
}

func TestLemma5ChangeCountSkipsZeroLengthColumns(t *testing.T) {
	// The middle column has zero length; the allocation recorded there must
	// not create a spurious change.
	s := buildScheduleWithAllocRows(t, 4,
		[]float64{2},
		[]float64{1, 1, 3},
		[][]float64{{1.5, 0, 1.5}})
	perTask, total := Lemma5ChangeCount(s)
	if perTask[0] != 0 || total != 0 {
		t.Errorf("changes = %v (total %d), want none", perTask, total)
	}
}

func TestMinimizeMaxLatenessZeroDueDates(t *testing.T) {
	// With all due dates at zero, the minimal maximum lateness equals the
	// optimal makespan.
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 2},
		{Weight: 1, Volume: 3, Delta: 1},
	})
	s, lmax, err := MinimizeMaxLateness(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	want := inst.OptimalMakespan()
	if lmax < want-1e-6 || lmax > want+1e-6 {
		t.Errorf("Lmax = %g, want the optimal makespan %g", lmax, want)
	}
}

func TestWaterFillLevelsSizeMismatch(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{{Weight: 1, Volume: 1, Delta: 1}})
	if _, err := WaterFillLevels(inst, []float64{1, 2}); err == nil {
		t.Errorf("size mismatch accepted")
	}
}

func TestCmaxOptimalSingleTask(t *testing.T) {
	inst := mustInstance(t, 4, []schedule.Task{{Weight: 2, Volume: 6, Delta: 2}})
	s, err := CmaxOptimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 3 {
		t.Errorf("makespan = %g, want 3 (δ-limited)", s.Makespan())
	}
}
