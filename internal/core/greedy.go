package core

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/stepfunc"
)

// Greedy builds the greedy schedule of Algorithm 3 for the given task order:
// tasks are considered one by one in the order σ, and each task is allocated
// as much resource as possible, as early as possible (at most δ_i processors
// and at most the processors left over by the previously placed tasks), so
// that its completion time is minimized given the earlier choices.
func Greedy(inst *schedule.Instance, order []int) (*schedule.ColumnSchedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	n := inst.N()
	if len(order) != n || !numeric.IsPermutation(order) {
		return nil, fmt.Errorf("core: order %v is not a permutation of the %d tasks", order, n)
	}
	avail := stepfunc.Constant(inst.P)
	profiles := make([]*stepfunc.StepFunc, n)
	completions := make([]float64, n)
	for _, task := range order {
		delta := inst.EffectiveDelta(task)
		volume := inst.Tasks[task].Volume
		completion, ok := avail.TimeToProcess(0, delta, volume)
		if !ok {
			// Cannot happen: the availability profile always ends with P free
			// processors, so every volume is eventually processed.
			return nil, fmt.Errorf("core: greedy could not place task %d", task)
		}
		// The task's allocation is min(δ, availability) on [0, completion).
		profile := stepfunc.Min(avail, stepfunc.Constant(delta))
		profile.SetOn(completion, math.Inf(1), 0)
		profile.Compact()
		profiles[task] = profile
		completions[task] = completion
		avail.ConsumeMin(0, completion, delta)
	}
	return schedule.FromAllocationFunctions(inst, completions, profiles)
}

// GreedyResult pairs a greedy schedule with the order that produced it.
type GreedyResult struct {
	// Order is the task order handed to Algorithm 3.
	Order []int
	// Schedule is the resulting schedule.
	Schedule *schedule.ColumnSchedule
	// Objective is the weighted sum of completion times of the schedule.
	Objective float64
}

// GreedySmith runs Algorithm 3 with Smith's ordering (non-decreasing V_i/w_i),
// the natural heuristic order discussed in the conclusion of the paper.
func GreedySmith(inst *schedule.Instance) (*GreedyResult, error) {
	order := inst.SmithOrder()
	s, err := Greedy(inst, order)
	if err != nil {
		return nil, err
	}
	return &GreedyResult{Order: order, Schedule: s, Objective: s.WeightedCompletionTime()}, nil
}

// ExhaustiveGreedyLimit is the largest task count for which BestGreedy
// enumerates every one of the n! orders; beyond it a heuristic portfolio of
// orders is used instead.
const ExhaustiveGreedyLimit = 8

// BestGreedy searches for the best greedy schedule. For instances with at
// most ExhaustiveGreedyLimit tasks it enumerates all n! orders (this is the
// procedure used in the paper's Section V-A experiments); for larger
// instances it evaluates a portfolio of heuristic orders (Smith, δ ascending
// and descending, weight descending, height ascending) plus `extraRandom`
// random orders drawn from rng, and returns the best one found.
func BestGreedy(inst *schedule.Instance, rng *rand.Rand, extraRandom int) (*GreedyResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	n := inst.N()
	var best *GreedyResult
	consider := func(order []int) error {
		s, err := Greedy(inst, order)
		if err != nil {
			return err
		}
		obj := s.WeightedCompletionTime()
		if best == nil || obj < best.Objective {
			best = &GreedyResult{
				Order:     append([]int(nil), order...),
				Schedule:  s,
				Objective: obj,
			}
		}
		return nil
	}

	if n <= ExhaustiveGreedyLimit {
		var firstErr error
		numeric.Permutations(n, func(perm []int) bool {
			if err := consider(perm); err != nil {
				firstErr = err
				return false
			}
			return true
		})
		if firstErr != nil {
			return nil, firstErr
		}
		return best, nil
	}

	orders := [][]int{
		inst.SmithOrder(),
		inst.DeltaDescendingOrder(),
		numeric.ReversePermutation(inst.DeltaDescendingOrder()),
		weightDescendingOrder(inst),
		heightAscendingOrder(inst),
	}
	for _, o := range orders {
		if err := consider(o); err != nil {
			return nil, err
		}
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	for k := 0; k < extraRandom; k++ {
		if err := consider(rng.Perm(n)); err != nil {
			return nil, err
		}
	}
	return best, nil
}

func weightDescendingOrder(inst *schedule.Instance) []int {
	order := numeric.IdentityPermutation(inst.N())
	insertionSortBy(order, func(a, b int) bool {
		return inst.Tasks[a].Weight > inst.Tasks[b].Weight
	})
	return order
}

func heightAscendingOrder(inst *schedule.Instance) []int {
	order := numeric.IdentityPermutation(inst.N())
	insertionSortBy(order, func(a, b int) bool {
		return inst.Tasks[a].Height() < inst.Tasks[b].Height()
	})
	return order
}

// insertionSortBy sorts the small order slices used for heuristic portfolios;
// stability matters for reproducibility and n is tiny, so insertion sort keeps
// the helper dependency-free.
func insertionSortBy(s []int, less func(a, b int) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// IsGreedy reports whether the given schedule coincides (up to numeric
// tolerance) with the greedy schedule obtained from its own completion order,
// i.e. whether it could have been produced by Algorithm 3 with that order.
// This is the membership test behind Theorem 11 and Conjecture 12.
func IsGreedy(s *schedule.ColumnSchedule) bool {
	g, err := Greedy(s.Inst, s.Order)
	if err != nil {
		return false
	}
	for j := range s.Times {
		if !numeric.ApproxEqualTol(g.Times[j], s.Times[j], 1e-6) {
			return false
		}
	}
	for i := range s.Alloc {
		for j := range s.Alloc[i] {
			if s.ColumnLength(j) <= numeric.Eps {
				continue
			}
			if !numeric.ApproxEqualTol(g.Alloc[i][j], s.Alloc[i][j], 1e-6) {
				return false
			}
		}
	}
	return true
}

// CmaxOptimal builds a schedule with the optimal makespan
// Cmax* = max(ΣV_i/P, max_i V_i/δ_i): all tasks complete exactly at Cmax*,
// each running at constant rate V_i/Cmax*. It is used as the makespan entry
// of the Table I comparison and to exercise the water-filling algorithm with
// tied completion times.
func CmaxOptimal(inst *schedule.Instance) (*schedule.ColumnSchedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	cmax := inst.OptimalMakespan()
	completions := make([]float64, inst.N())
	for i := range completions {
		completions[i] = cmax
	}
	return WaterFill(inst, completions)
}
