package core

import (
	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
)

// Lemma5ChangeCount counts, per task and in total, the allocation changes of
// a water-filling (normal form) schedule using the convention of Lemma 5 of
// the paper: changes are counted between consecutive columns of positive
// length within the task's active interval, except that the single transition
// into the task's trailing saturated run (columns where the task holds
// exactly δ_i processors until it completes) is not counted — the paper's
// accounting attributes that boundary to the availability profile rather than
// to the task.
//
// In normal-form schedules a task's allocation is non-decreasing over time
// and the saturated columns form a suffix of its active interval, so the
// convention removes at most one change per task. Theorem 9 states that the
// total under this convention is at most n; the natural count (see
// schedule.ColumnSchedule.AllocationChanges) is therefore at most 2n.
func Lemma5ChangeCount(s *schedule.ColumnSchedule) (perTask []int, total int) {
	n := s.Inst.N()
	perTask = make([]int, n)
	for i := 0; i < n; i++ {
		delta := s.Inst.EffectiveDelta(i)
		var seq []float64
		for j := 0; j < s.NumColumns(); j++ {
			if s.ColumnLength(j) <= numeric.Eps {
				continue
			}
			seq = append(seq, s.Alloc[i][j])
		}
		first, last := -1, -1
		for j, a := range seq {
			if a > numeric.Eps {
				if first == -1 {
					first = j
				}
				last = j
			}
		}
		if first == -1 {
			continue
		}
		changes := 0
		for j := first + 1; j <= last; j++ {
			if numeric.ApproxEqualTol(seq[j], seq[j-1], 1e-7) {
				continue
			}
			if numeric.ApproxEqualTol(seq[j], delta, 1e-7) && trailingRunIsSaturated(seq, j, last, delta) {
				// Transition into the trailing saturated run: not counted.
				continue
			}
			changes++
		}
		perTask[i] = changes
		total += changes
	}
	return perTask, total
}

// trailingRunIsSaturated reports whether every entry of seq from index j to
// last equals delta (up to tolerance), i.e. index j starts the trailing
// saturated run.
func trailingRunIsSaturated(seq []float64, j, last int, delta float64) bool {
	for k := j; k <= last; k++ {
		if !numeric.ApproxEqualTol(seq[k], delta, 1e-7) {
			return false
		}
	}
	return true
}
