package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
)

func TestWaterFillSingleTask(t *testing.T) {
	inst := mustInstance(t, 4, []schedule.Task{{Weight: 1, Volume: 6, Delta: 3}})
	s, err := WaterFill(inst, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if !numeric.ApproxEqual(s.Alloc[0][0], 3) {
		t.Errorf("allocation = %g, want 3", s.Alloc[0][0])
	}
}

func TestWaterFillInfeasibleDetection(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{{Weight: 1, Volume: 6, Delta: 3}})
	// Even at full platform width (2), 6 units cannot finish by time 2.
	_, err := WaterFill(inst, []float64{2})
	if err == nil {
		t.Fatalf("expected infeasibility")
	}
	var infeasible *ErrInfeasibleCompletionTimes
	if !errors.As(err, &infeasible) {
		t.Fatalf("error type = %T", err)
	}
	if infeasible.Task != 0 || infeasible.Missing <= 0 {
		t.Errorf("infeasible detail = %+v", infeasible)
	}
}

func TestWaterFillRejectsBadInput(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{{Weight: 1, Volume: 1, Delta: 1}})
	if _, err := WaterFill(inst, []float64{1, 2}); err == nil {
		t.Errorf("length mismatch accepted")
	}
	if _, err := WaterFill(inst, []float64{-1}); err == nil {
		t.Errorf("negative completion accepted")
	}
}

func TestWaterFillTwoTasksKnownShape(t *testing.T) {
	// P=3. T0: V=2, δ=2, C=1. T1: V=5, δ=2, C=3.
	// Column 1 = [0,1]: T0 needs 2 processors; T1 gets level-filled.
	// T1's allocation: column 1 at most 1 processor free below P... water
	// level: it can use column 1 (cap δ=2, free height 3) and column 2.
	// Level h with 1*(h-2 clamped to [0,2]) + 2*(h clamped to [0,2]) = 5 →
	// h = 7/3: column1 share 1/3, column2 share 7/3 > 2 → actually the δ cap
	// bites: try h=2: 0*1? Let's simply assert validity and completion times
	// here and rely on the structural checks below.
	inst := mustInstance(t, 3, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 2},
		{Weight: 1, Volume: 5, Delta: 2},
	})
	s, err := WaterFill(inst, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if !numeric.ApproxEqual(s.CompletionTime(0), 1) || !numeric.ApproxEqual(s.CompletionTime(1), 3) {
		t.Errorf("completions = %v", s.CompletionTimes())
	}
	// T1 is saturated in its last column (it needs its full δ there, because
	// 5 > 2*2 means it cannot fit in column 2 alone even at δ).
	if !numeric.ApproxEqual(s.Alloc[1][1], 2) {
		t.Errorf("T1 allocation in column 2 = %g, want 2 (saturated)", s.Alloc[1][1])
	}
	if !numeric.ApproxEqual(s.Alloc[1][0], 1) {
		t.Errorf("T1 allocation in column 1 = %g, want 1", s.Alloc[1][0])
	}
}

func TestWaterFillHeightsNonIncreasing(t *testing.T) {
	// Lemma 3: after each allocation the column occupancy is non-increasing
	// over time. Verify on a random-ish hand instance by checking the final
	// usage profile is non-increasing.
	inst := mustInstance(t, 4, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 2},
		{Weight: 1, Volume: 3, Delta: 1},
		{Weight: 1, Volume: 4, Delta: 3},
		{Weight: 1, Volume: 1, Delta: 4},
	})
	completions := []float64{1, 3, 2.5, 4}
	s, err := WaterFill(inst, completions)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	prev := inst.P + 1
	for j := 0; j < s.NumColumns(); j++ {
		if s.ColumnLength(j) <= numeric.Eps {
			continue
		}
		var used float64
		for i := 0; i < inst.N(); i++ {
			used += s.Alloc[i][j]
		}
		if used > prev+1e-9 {
			t.Errorf("column %d usage %g exceeds previous column usage %g", j, used, prev)
		}
		prev = used
	}
}

func TestWaterFillEqualCompletionTimes(t *testing.T) {
	// All tasks complete at the makespan-optimal time: WF must accept it.
	inst := mustInstance(t, 3, []schedule.Task{
		{Weight: 1, Volume: 3, Delta: 2},
		{Weight: 2, Volume: 2, Delta: 1},
		{Weight: 1, Volume: 4, Delta: 3},
	})
	s, err := CmaxOptimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if !numeric.ApproxEqual(s.Makespan(), inst.OptimalMakespan()) {
		t.Errorf("makespan = %g, want %g", s.Makespan(), inst.OptimalMakespan())
	}
}

func TestNormalizePreservesCompletionTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := randomInstance(rng, 6, 3)
	orig, err := RunWDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := Normalize(orig)
	if err != nil {
		t.Fatalf("Normalize failed on a valid schedule: %v", err)
	}
	if err := norm.Validate(); err != nil {
		t.Fatalf("normal form invalid: %v", err)
	}
	for i := 0; i < inst.N(); i++ {
		if !numeric.ApproxEqualTol(norm.CompletionTime(i), orig.CompletionTime(i), 1e-6) {
			t.Errorf("task %d completion changed: %g vs %g", i, norm.CompletionTime(i), orig.CompletionTime(i))
		}
	}
	if !numeric.ApproxEqualTol(norm.WeightedCompletionTime(), orig.WeightedCompletionTime(), 1e-6) {
		t.Errorf("objective changed by normalization")
	}
}

func TestWaterFillLevelsAgreeWithWaterFill(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		inst := randomInstance(rng, 1+rng.Intn(6), float64(1+rng.Intn(4)))
		s, err := RunWDEQ(inst)
		if err != nil {
			t.Fatal(err)
		}
		completions := s.CompletionTimes()
		if _, err := WaterFill(inst, completions); err != nil {
			t.Fatalf("WaterFill infeasible on feasible input: %v", err)
		}
		if _, err := WaterFillLevels(inst, completions); err != nil {
			t.Fatalf("WaterFillLevels infeasible on feasible input: %v", err)
		}
		// Tight completion times (scaled down) must be rejected by both.
		tight := make([]float64, len(completions))
		for i := range tight {
			tight[i] = completions[i] * 0.3
		}
		_, errA := WaterFill(inst, tight)
		_, errB := WaterFillLevels(inst, tight)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("feasibility disagreement: WaterFill err=%v, WaterFillLevels err=%v", errA, errB)
		}
	}
}

func TestMinimizeMaxLateness(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 2, Due: 1},
		{Weight: 1, Volume: 2, Delta: 1, Due: 2},
	})
	s, lmax, err := MinimizeMaxLateness(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Total volume 4 on P=2 needs 2 time units; with dues (1,2) the best
	// achievable maximum lateness is 2/3: schedule task 1 at rate 2 until
	// t=5/3... in fact the optimum satisfies both tasks finishing at
	// due+Lmax; verify the reported value matches the schedule.
	if !numeric.GreaterEq(lmax+1e-6, s.MaxLateness()) {
		t.Errorf("reported Lmax %g smaller than the schedule's %g", lmax, s.MaxLateness())
	}
	// A lower bound: task 0 alone needs 1 time unit (due 1 → lateness >= 0),
	// and both together need 2 time units, so some task is late by at least
	// 2 - 2 = 0; the optimum is within [0, 1].
	if lmax < -1e-6 || lmax > 1+1e-6 {
		t.Errorf("Lmax = %g outside the expected range [0,1]", lmax)
	}
}

// Property (Theorem 8): the completion times of any valid schedule produced
// by the library (WDEQ or a random greedy) are always accepted by WF, and the
// reconstructed schedule is valid with the same completion times.
func TestQuickWaterFillReconstructsValidSchedules(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 1+rng.Intn(6), float64(1+rng.Intn(4)))
		var src *schedule.ColumnSchedule
		var err error
		if seed%2 == 0 {
			src, err = RunWDEQ(inst)
		} else {
			src, err = Greedy(inst, rng.Perm(inst.N()))
		}
		if err != nil {
			return false
		}
		rebuilt, err := WaterFill(inst, src.CompletionTimes())
		if err != nil {
			return false
		}
		if err := rebuilt.Validate(); err != nil {
			return false
		}
		for i := 0; i < inst.N(); i++ {
			if !numeric.ApproxEqualTol(rebuilt.CompletionTime(i), src.CompletionTime(i), 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property (Theorem 9): under the counting convention of Lemma 5 (the
// transition into a task's trailing saturated run is not charged to the
// task), the water-filling schedule has at most n allocation changes in
// total; under the natural convention it has at most 2n (one extra possible
// change per task).
func TestQuickWaterFillChangeBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 1+rng.Intn(8), float64(1+rng.Intn(4)))
		src, err := RunWDEQ(inst)
		if err != nil {
			return false
		}
		wf, err := WaterFill(inst, src.CompletionTimes())
		if err != nil {
			return false
		}
		_, lemma5 := Lemma5ChangeCount(wf)
		_, natural := wf.AllocationChanges()
		return lemma5 <= inst.N() && natural <= 2*inst.N() && natural >= lemma5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: water-filling schedules also have a non-decreasing per-task
// allocation over time (the structural fact used by Lemma 6 to turn changes
// into preemptions), and their integral conversion (Theorem 3) is valid with
// per-task concurrency never exceeding the degree bound. The paper's 3n
// preemption bound applies to its own merged-column processor assignment; the
// per-column Theorem-3 conversion used here is measured and reported by
// experiment E6 instead of being asserted.
func TestQuickWaterFillMonotoneAndIntegralValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 1+rng.Intn(8), float64(1+rng.Intn(4)))
		src, err := RunWDEQ(inst)
		if err != nil {
			return false
		}
		wf, err := WaterFill(inst, src.CompletionTimes())
		if err != nil {
			return false
		}
		// Per-task allocations never decrease before completion.
		for i := 0; i < inst.N(); i++ {
			prev := 0.0
			for j := 0; j <= wf.ColumnOf(i); j++ {
				if wf.ColumnLength(j) <= numeric.Eps {
					continue
				}
				a := wf.Alloc[i][j]
				if a > numeric.Eps && a < prev-1e-7 {
					return false
				}
				if a > numeric.Eps {
					prev = a
				}
			}
		}
		pa, err := schedule.FromColumns(wf)
		if err != nil {
			return false
		}
		return pa.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
