package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
)

func TestGreedySingleTask(t *testing.T) {
	inst := mustInstance(t, 4, []schedule.Task{{Weight: 1, Volume: 6, Delta: 3}})
	s, err := Greedy(inst, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqual(s.CompletionTime(0), 2) {
		t.Errorf("C = %g, want 2", s.CompletionTime(0))
	}
}

func TestGreedyRejectsBadOrder(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 1, Delta: 1},
		{Weight: 1, Volume: 1, Delta: 1},
	})
	if _, err := Greedy(inst, []int{0, 0}); err == nil {
		t.Errorf("duplicate order accepted")
	}
	if _, err := Greedy(inst, []int{0}); err == nil {
		t.Errorf("short order accepted")
	}
}

func TestGreedyTwoTasksSequencing(t *testing.T) {
	// P=2, both tasks δ=2, V=2: the first scheduled task takes the whole
	// platform and finishes at 1; the second follows and finishes at 2.
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 2},
		{Weight: 1, Volume: 2, Delta: 2},
	})
	s, err := Greedy(inst, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if !numeric.ApproxEqual(s.CompletionTime(0), 1) || !numeric.ApproxEqual(s.CompletionTime(1), 2) {
		t.Errorf("completions = %v, want [1 2]", s.CompletionTimes())
	}
	if !numeric.ApproxEqual(s.SumCompletionTimes(), 3) {
		t.Errorf("ΣC = %g, want 3 (the optimum)", s.SumCompletionTimes())
	}
}

func TestGreedySecondTaskUsesLeftover(t *testing.T) {
	// P=3. First task δ=2 (completes at 1 using 2 processors); second task
	// δ=2 runs on the remaining processor until t=1 and then on 2 processors.
	inst := mustInstance(t, 3, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 2},
		{Weight: 1, Volume: 3, Delta: 2},
	})
	s, err := Greedy(inst, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Task 1 processes 1 unit by t=1, then 2 more units at rate 2 -> C=2.
	if !numeric.ApproxEqual(s.CompletionTime(1), 2) {
		t.Errorf("C1 = %g, want 2", s.CompletionTime(1))
	}
	if !numeric.ApproxEqual(s.Alloc[1][0], 1) || !numeric.ApproxEqual(s.Alloc[1][1], 2) {
		t.Errorf("allocations of task 1 = %v", s.Alloc[1])
	}
}

func TestGreedySmith(t *testing.T) {
	inst := mustInstance(t, 1, []schedule.Task{
		{Weight: 1, Volume: 4, Delta: 1},
		{Weight: 10, Volume: 1, Delta: 1},
	})
	res, err := GreedySmith(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Smith order runs the heavy-weight short task first: objective
	// 10*1 + 1*5 = 15, which is optimal on a single processor.
	if !numeric.ApproxEqual(res.Objective, 15) {
		t.Errorf("objective = %g, want 15", res.Objective)
	}
	if res.Order[0] != 1 {
		t.Errorf("Smith order = %v", res.Order)
	}
}

func TestBestGreedyExhaustiveSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := randomInstance(rng, 4, 2)
	best, err := BestGreedy(inst, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := best.Schedule.Validate(); err != nil {
		t.Fatalf("best greedy invalid: %v", err)
	}
	// No single heuristic order can beat the exhaustive best.
	smith, err := GreedySmith(inst)
	if err != nil {
		t.Fatal(err)
	}
	if best.Objective > smith.Objective+1e-9 {
		t.Errorf("best greedy %g worse than Smith greedy %g", best.Objective, smith.Objective)
	}
}

func TestBestGreedyHeuristicLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := randomInstance(rng, ExhaustiveGreedyLimit+4, 4)
	best, err := BestGreedy(inst, rng, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := best.Schedule.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if len(best.Order) != inst.N() {
		t.Errorf("order length = %d", len(best.Order))
	}
}

func TestIsGreedy(t *testing.T) {
	// Two identical δ=P tasks: the greedy schedule for the order (0,1) has
	// completion order (0,1), so it is recognized as greedy; the Cmax-optimal
	// schedule stretches both tasks to the same completion time and is not.
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 2},
		{Weight: 1, Volume: 2, Delta: 2},
	})
	g, err := Greedy(inst, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !IsGreedy(g) {
		t.Errorf("greedy schedule not recognized as greedy")
	}
	cm, err := CmaxOptimal(inst)
	if err != nil {
		t.Fatal(err)
	}
	if IsGreedy(cm) {
		t.Errorf("Cmax-optimal schedule wrongly recognized as greedy")
	}
}

// unitClassInstance builds an instance of the restricted class of Section
// V-B: P=1, V_i=1, w_i=1, δ_i in [1/2, 1].
func unitClassInstance(deltas []float64) *schedule.Instance {
	tasks := make([]schedule.Task, len(deltas))
	for i, d := range deltas {
		tasks[i] = schedule.Task{Weight: 1, Volume: 1, Delta: d}
	}
	return &schedule.Instance{P: 1, Tasks: tasks}
}

// unitClassRecurrence evaluates the closed-form greedy recurrence of Section
// V-B for the given δ values in schedule order σ (σ given as task indices).
func unitClassRecurrence(deltas []float64, sigma []int) []float64 {
	c := make([]float64, len(sigma))
	var cPrev, cPrev2 float64
	for i, task := range sigma {
		d := deltas[task]
		if i == 0 {
			c[i] = 1 / d
		} else {
			dPrev := deltas[sigma[i-1]]
			c[i] = cPrev + (1-(1-dPrev)*(cPrev-cPrev2))/d
		}
		cPrev2, cPrev = cPrev, c[i]
	}
	return c
}

func TestGreedyMatchesUnitClassRecurrence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		deltas := make([]float64, n)
		for i := range deltas {
			deltas[i] = 0.5 + 0.5*rng.Float64()
		}
		inst := unitClassInstance(deltas)
		sigma := rng.Perm(n)
		s, err := Greedy(inst, sigma)
		if err != nil {
			t.Fatal(err)
		}
		want := unitClassRecurrence(deltas, sigma)
		for i, task := range sigma {
			if !numeric.ApproxEqualTol(s.CompletionTime(task), want[i], 1e-6) {
				t.Fatalf("trial %d: task %d completion = %g, recurrence %g (σ=%v, δ=%v)",
					trial, task, s.CompletionTime(task), want[i], sigma, deltas)
			}
		}
	}
}

func TestOptimalOrderThreeTasksSmallestInMiddle(t *testing.T) {
	// Section V-B: with δ1 >= δ2 >= δ3, the orders (1,3,2) and (2,3,1) are
	// optimal (the smallest δ in the middle). Verify by enumeration.
	deltas := []float64{0.9, 0.8, 0.6} // δ1 >= δ2 >= δ3
	inst := unitClassInstance(deltas)
	bestObj := math.Inf(1)
	var bestOrders [][]int
	numeric.Permutations(3, func(p []int) bool {
		s, err := Greedy(inst, p)
		if err != nil {
			t.Fatal(err)
		}
		obj := s.SumCompletionTimes()
		if obj < bestObj-1e-9 {
			bestObj = obj
			bestOrders = [][]int{append([]int(nil), p...)}
		} else if numeric.ApproxEqualTol(obj, bestObj, 1e-9) {
			bestOrders = append(bestOrders, append([]int(nil), p...))
		}
		return true
	})
	// Task indices are 0-based: the paper's 1,3,2 is {0,2,1} and 2,3,1 is {1,2,0}.
	found132, found231 := false, false
	for _, o := range bestOrders {
		if o[0] == 0 && o[1] == 2 && o[2] == 1 {
			found132 = true
		}
		if o[0] == 1 && o[1] == 2 && o[2] == 0 {
			found231 = true
		}
	}
	if !found132 || !found231 {
		t.Errorf("optimal orders %v do not include (1,3,2) and (2,3,1)", bestOrders)
	}
}

func TestCmaxOptimalValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng, 1+rng.Intn(6), float64(1+rng.Intn(4)))
		s, err := CmaxOptimal(inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid: %v", err)
		}
		if !numeric.ApproxEqualTol(s.Makespan(), inst.OptimalMakespan(), 1e-6) {
			t.Errorf("makespan %g, want %g", s.Makespan(), inst.OptimalMakespan())
		}
	}
}

// Property: greedy schedules are always valid, and the greedy makespan is
// never smaller than the optimal makespan.
func TestQuickGreedyValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 1+rng.Intn(7), float64(1+rng.Intn(4)))
		s, err := Greedy(inst, rng.Perm(inst.N()))
		if err != nil {
			return false
		}
		if err := s.Validate(); err != nil {
			return false
		}
		return s.Makespan() >= inst.OptimalMakespan()-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property (Conjecture 13): on the unit class with δ_i >= P/2, the greedy
// objective of an order equals the greedy objective of the reversed order.
// The paper checked the identity formally up to 15 tasks; this float64 check
// complements the exact-rational verification in internal/exact.
func TestQuickConjecture13FloatingPoint(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%6)
		rng := rand.New(rand.NewSource(seed))
		deltas := make([]float64, n)
		for i := range deltas {
			deltas[i] = 0.5 + 0.5*rng.Float64()
		}
		inst := unitClassInstance(deltas)
		sigma := rng.Perm(n)
		forward, err := Greedy(inst, sigma)
		if err != nil {
			return false
		}
		backward, err := Greedy(inst, numeric.ReversePermutation(sigma))
		if err != nil {
			return false
		}
		return numeric.ApproxEqualTol(forward.SumCompletionTimes(), backward.SumCompletionTimes(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property (Theorem 11 structural consequence): on instances with homogeneous
// weights and δ_i > P/2, in the best greedy schedule each task is saturated in
// its completion column (Lemma 7).
func TestQuickLemma7SaturationInLastColumn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		p := float64(1 + rng.Intn(3))
		tasks := make([]schedule.Task, n)
		for i := range tasks {
			tasks[i] = schedule.Task{
				Weight: 1,
				Volume: 0.2 + rng.Float64(),
				Delta:  p/2 + 1e-3 + rng.Float64()*(p/2-1e-3),
			}
		}
		inst := &schedule.Instance{P: p, Tasks: tasks}
		best, err := BestGreedy(inst, rng, 0)
		if err != nil {
			return false
		}
		s := best.Schedule
		for i := 0; i < n; i++ {
			j := s.ColumnOf(i)
			if s.ColumnLength(j) <= numeric.Eps {
				continue
			}
			a := s.Alloc[i][j]
			// Saturated means a = δ_i (or the task is alone and bounded by P).
			if !numeric.ApproxEqualTol(a, inst.EffectiveDelta(i), 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
