package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/speedup"
)

func TestShareAllocationProportional(t *testing.T) {
	// No δ limit binds: shares are proportional to weights.
	alloc := ShareAllocation(6, []float64{1, 2, 3}, []float64{10, 10, 10})
	want := []float64{1, 2, 3}
	for i := range want {
		if !numeric.ApproxEqual(alloc[i], want[i]) {
			t.Errorf("alloc = %v, want %v", alloc, want)
		}
	}
}

func TestShareAllocationPinsAtDelta(t *testing.T) {
	// Task 0 would get 6*3/4 = 4.5 but is capped at 1; the surplus goes to task 1.
	alloc := ShareAllocation(6, []float64{3, 1}, []float64{1, 10})
	if !numeric.ApproxEqual(alloc[0], 1) {
		t.Errorf("alloc[0] = %g, want 1", alloc[0])
	}
	if !numeric.ApproxEqual(alloc[1], 5) {
		t.Errorf("alloc[1] = %g, want 5", alloc[1])
	}
}

func TestShareAllocationCascadingPins(t *testing.T) {
	// Pinning one task can push another task over its own bound.
	alloc := ShareAllocation(10, []float64{1, 1, 1}, []float64{1, 3, 100})
	if !numeric.ApproxEqual(alloc[0], 1) || !numeric.ApproxEqual(alloc[1], 3) || !numeric.ApproxEqual(alloc[2], 6) {
		t.Errorf("alloc = %v, want [1 3 6]", alloc)
	}
}

func TestShareAllocationAllPinned(t *testing.T) {
	// Σδ < P: everyone runs at δ, processors are left idle.
	alloc := ShareAllocation(10, []float64{1, 1}, []float64{2, 3})
	if !numeric.ApproxEqual(alloc[0], 2) || !numeric.ApproxEqual(alloc[1], 3) {
		t.Errorf("alloc = %v, want [2 3]", alloc)
	}
}

func TestShareAllocationEmpty(t *testing.T) {
	if len(ShareAllocation(4, nil, nil)) != 0 {
		t.Errorf("expected empty allocation")
	}
}

func TestEquipartitionAllocation(t *testing.T) {
	alloc := EquipartitionAllocation(4, []float64{4, 4})
	if !numeric.ApproxEqual(alloc[0], 2) || !numeric.ApproxEqual(alloc[1], 2) {
		t.Errorf("DEQ alloc = %v", alloc)
	}
}

func TestRunWDEQSingleTask(t *testing.T) {
	inst := mustInstance(t, 4, []schedule.Task{{Weight: 2, Volume: 6, Delta: 3}})
	s, err := RunWDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if !numeric.ApproxEqual(s.CompletionTime(0), 2) {
		t.Errorf("C = %g, want 2 (V/δ)", s.CompletionTime(0))
	}
}

func TestRunWDEQTwoIdenticalTasks(t *testing.T) {
	// P=2, two identical tasks with δ=2: each gets one processor and both
	// finish at time 2 (the classic DEQ behaviour, ratio 4/3 vs optimal 3).
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 2},
		{Weight: 1, Volume: 2, Delta: 2},
	})
	s, err := RunWDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if !numeric.ApproxEqual(s.CompletionTime(0), 2) || !numeric.ApproxEqual(s.CompletionTime(1), 2) {
		t.Errorf("completions = %v, want both 2", s.CompletionTimes())
	}
	if !numeric.ApproxEqual(s.SumCompletionTimes(), 4) {
		t.Errorf("ΣC = %g, want 4", s.SumCompletionTimes())
	}
}

func TestRunWDEQWeightedSingleProcessor(t *testing.T) {
	// P=1, δ_i=1: WDEQ is weighted processor sharing. Tasks (V=1,w=1) and
	// (V=1,w=3): shares 1/4 and 3/4. Task 2 completes at 4/3, then task 1
	// runs alone and completes at 2.
	inst := mustInstance(t, 1, []schedule.Task{
		{Weight: 1, Volume: 1, Delta: 1},
		{Weight: 3, Volume: 1, Delta: 1},
	})
	s, err := RunWDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqual(s.CompletionTime(1), 4.0/3) {
		t.Errorf("C2 = %g, want 4/3", s.CompletionTime(1))
	}
	if !numeric.ApproxEqual(s.CompletionTime(0), 2) {
		t.Errorf("C1 = %g, want 2", s.CompletionTime(0))
	}
}

func TestRunWDEQRespectsDeltaBound(t *testing.T) {
	// A heavy task with a small δ must not hog the machine.
	inst := mustInstance(t, 4, []schedule.Task{
		{Weight: 100, Volume: 4, Delta: 1},
		{Weight: 1, Volume: 3, Delta: 4},
	})
	s, err := RunWDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Task 0 runs at 1 processor for its whole life: C0 = 4.
	if !numeric.ApproxEqual(s.CompletionTime(0), 4) {
		t.Errorf("C0 = %g, want 4", s.CompletionTime(0))
	}
	// Task 1 runs at 3 processors while task 0 is alive: C1 = 1.
	if !numeric.ApproxEqual(s.CompletionTime(1), 1) {
		t.Errorf("C1 = %g, want 1", s.CompletionTime(1))
	}
}

func TestRunDEQIgnoresWeights(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 100, Volume: 2, Delta: 2},
		{Weight: 1, Volume: 2, Delta: 2},
	})
	s, err := RunDEQ(inst)
	if err != nil {
		t.Fatal(err)
	}
	// DEQ splits evenly regardless of weights: both complete at 2.
	if !numeric.ApproxEqual(s.CompletionTime(0), 2) || !numeric.ApproxEqual(s.CompletionTime(1), 2) {
		t.Errorf("completions = %v", s.CompletionTimes())
	}
}

func TestWDEQApproximationRatio(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 2},
		{Weight: 1, Volume: 2, Delta: 2},
	})
	r, err := WDEQApproximationRatio(inst, 3) // the optimum is 3
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqual(r, 4.0/3) {
		t.Errorf("ratio = %g, want 4/3", r)
	}
	if r, _ := WDEQApproximationRatio(inst, 0); !numeric.GreaterEq(r, 1e18) {
		t.Errorf("ratio with zero reference should be +Inf, got %g", r)
	}
}

// Property: WDEQ always produces a valid schedule whose allocation is never
// idle while an unfinished task could still use processors (the equipartition
// always hands out min(P, Σδ) processors).
func TestQuickWDEQValidAndWorkConserving(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 1+rng.Intn(6), float64(1+rng.Intn(4)))
		s, err := RunWDEQ(inst)
		if err != nil {
			return false
		}
		if err := s.Validate(); err != nil {
			return false
		}
		// Work conservation: in every column before the last completion, the
		// total allocation is min(P, Σ_active δ_i).
		for j := 0; j < s.NumColumns(); j++ {
			if s.ColumnLength(j) <= numeric.Eps {
				continue
			}
			var used, deltaSum float64
			for i := 0; i < inst.N(); i++ {
				used += s.Alloc[i][j]
				if s.ColumnOf(i) >= j {
					deltaSum += inst.EffectiveDelta(i)
				}
			}
			expect := inst.P
			if deltaSum < expect {
				expect = deltaSum
			}
			if !numeric.ApproxEqualTol(used, expect, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property (Theorem 4 necessary condition): the WDEQ objective never exceeds
// twice the best greedy objective, because the best greedy objective is an
// upper bound of the optimum and WDEQ is a 2-approximation of the optimum...
// the implication actually needed is WDEQ <= 2·OPT <= 2·BestGreedy, which is
// what is checked here on small instances.
func TestQuickWDEQWithinTwiceBestGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 1+rng.Intn(4), float64(1+rng.Intn(3)))
		s, err := RunWDEQ(inst)
		if err != nil {
			return false
		}
		best, err := BestGreedy(inst, rng, 0)
		if err != nil {
			return false
		}
		return s.WeightedCompletionTime() <= 2*best.Objective+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The append-into-dst variants must agree exactly with the allocating API
// (same floating-point sequence) and respect the append base offset.
func TestShareAllocationIntoMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		p := 1 + 7*rng.Float64()
		weights := make([]float64, n)
		deltas := make([]float64, n)
		for i := range weights {
			weights[i] = 0.1 + rng.Float64()
			deltas[i] = 0.1 + p*rng.Float64()
		}
		want := ShareAllocation(p, weights, deltas)
		prefix := []float64{-7, -8}
		got := ShareAllocationInto(append([]float64(nil), prefix...), p, weights, deltas)
		if len(got) != len(prefix)+n {
			t.Fatalf("trial %d: got length %d, want %d", trial, len(got), len(prefix)+n)
		}
		if got[0] != -7 || got[1] != -8 {
			t.Fatalf("trial %d: prefix clobbered: %v", trial, got[:2])
		}
		for i := range want {
			if got[len(prefix)+i] != want[i] {
				t.Errorf("trial %d: entry %d = %g, want %g", trial, i, got[len(prefix)+i], want[i])
			}
		}
		eqWant := EquipartitionAllocation(p, deltas)
		eqGot := EquipartitionAllocationInto(nil, p, deltas)
		for i := range eqWant {
			if eqGot[i] != eqWant[i] {
				t.Errorf("trial %d: equipartition entry %d = %g, want %g", trial, i, eqGot[i], eqWant[i])
			}
		}
	}
}

// The dst-threaded fixed point must not allocate when dst has capacity: this
// is the contract the engine's zero-allocation hot loop is built on.
func TestShareAllocationIntoZeroAlloc(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	deltas := []float64{1, 1, 2, 8}
	dst := make([]float64, 0, len(weights))
	allocs := testing.AllocsPerRun(100, func() {
		dst = ShareAllocationInto(dst[:0], 4, weights, deltas)
	})
	if allocs != 0 {
		t.Errorf("ShareAllocationInto allocated %.3g times per call, want 0", allocs)
	}
}

// saturatingModel is a test model whose rate peaks at 1 processor, so the
// model-aware sharing rule must pin every task at 1 regardless of δ.
type saturatingModel struct{ speedup.LinearCap }

func (saturatingModel) MaxUseful(t speedup.TaskShape) float64 { return 1 }

// ShareAllocationModelFunc must degenerate to the plain rule under the
// paper's linear model (MaxUseful = δ) and pin tasks at the model's
// saturation point when the model saturates earlier.
func TestShareAllocationModelFunc(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	deltas := []float64{1, 1, 2, 8}
	shape := func(i int) speedup.TaskShape { return speedup.TaskShape{Delta: deltas[i]} }
	weight := func(i int) float64 { return weights[i] }

	plain := ShareAllocationFunc(nil, 4, len(weights), weight, func(i int) float64 { return deltas[i] })
	linear := ShareAllocationModelFunc(nil, 4, len(weights), speedup.LinearCap{}, weight, shape)
	for i := range plain {
		if linear[i] != plain[i] {
			t.Errorf("linear model diverges from plain rule at %d: %g vs %g", i, linear[i], plain[i])
		}
	}

	// PowerLaw and Amdahl rates are strictly increasing up to δ, so they too
	// must reproduce the plain rule exactly.
	for _, m := range []speedup.Model{speedup.PowerLaw{Alpha: 0.5}, speedup.Amdahl{Sigma: 0.3}} {
		got := ShareAllocationModelFunc(nil, 4, len(weights), m, weight, shape)
		for i := range plain {
			if got[i] != plain[i] {
				t.Errorf("%s diverges from plain rule at %d: %g vs %g", m.Name(), i, got[i], plain[i])
			}
		}
	}

	// A model saturating at 1 processor pins everyone at 1: with P=4 and four
	// tasks, each gets exactly its useful maximum.
	sat := ShareAllocationModelFunc(nil, 4, len(weights), saturatingModel{}, weight, shape)
	for i, a := range sat {
		if a != 1 {
			t.Errorf("saturating model: task %d allocated %g, want 1", i, a)
		}
	}
}
