package exact

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
)

func mustInstance(t *testing.T, p float64, tasks []schedule.Task) *schedule.Instance {
	t.Helper()
	inst, err := schedule.NewInstance(p, tasks)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

// randomInstance draws an instance from the paper's Section V-A distribution.
func randomInstance(rng *rand.Rand, n int, p float64) *schedule.Instance {
	tasks := make([]schedule.Task, n)
	for i := range tasks {
		tasks[i] = schedule.Task{
			Weight: 0.05 + 0.95*rng.Float64(),
			Volume: 0.05 + 0.95*rng.Float64(),
			Delta:  0.05 + (p-0.05)*rng.Float64(),
		}
	}
	return &schedule.Instance{P: p, Tasks: tasks}
}

func TestSolveOrderSingleTask(t *testing.T) {
	inst := mustInstance(t, 2, []schedule.Task{{Weight: 3, Volume: 4, Delta: 2}})
	sol, err := SolveOrder(inst, []int{0}, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqual(sol.Objective, 6) { // C = 4/2 = 2, w = 3
		t.Errorf("objective = %g, want 6", sol.Objective)
	}
	if err := sol.Schedule.Validate(); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

func TestSolveOrderTwoTasksMatchesHandComputation(t *testing.T) {
	// P=2, identical tasks V=2, δ=2, w=1: for order (0,1) the optimum runs
	// task 0 at full width then task 1: objective 1 + 2 = 3.
	inst := mustInstance(t, 2, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 2},
		{Weight: 1, Volume: 2, Delta: 2},
	})
	sol, err := SolveOrder(inst, []int{0, 1}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqual(sol.Objective, 3) {
		t.Errorf("objective = %g, want 3", sol.Objective)
	}
	// The exact backend agrees.
	exactSol, err := SolveOrder(inst, []int{0, 1}, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqualTol(exactSol.Objective, 3, 1e-12) {
		t.Errorf("exact objective = %g, want 3", exactSol.Objective)
	}
}

func TestSolveOrderRejectsBadOrder(t *testing.T) {
	inst := mustInstance(t, 1, []schedule.Task{{Weight: 1, Volume: 1, Delta: 1}})
	if _, err := SolveOrder(inst, []int{1}, false, false); err == nil {
		t.Errorf("bad order accepted")
	}
}

func TestOptimalSingleProcessorMatchesSmith(t *testing.T) {
	// On a single processor with δ_i = 1 the optimum is Smith's rule, whose
	// value is the squashed-area bound.
	inst := mustInstance(t, 1, []schedule.Task{
		{Weight: 1, Volume: 3, Delta: 1},
		{Weight: 4, Volume: 1, Delta: 1},
		{Weight: 2, Volume: 2, Delta: 1},
	})
	sol, err := Optimal(inst, Options{BuildSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqualTol(sol.Objective, core.SquashedAreaBound(inst), 1e-6) {
		t.Errorf("optimal = %g, Smith = %g", sol.Objective, core.SquashedAreaBound(inst))
	}
	if err := sol.Schedule.Validate(); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

func TestOptimalUnlimitedDeltaMatchesHeightBound(t *testing.T) {
	// With δ_i >= P... actually with P large enough that every task can run
	// at its own δ simultaneously, the optimum is the height bound.
	inst := mustInstance(t, 100, []schedule.Task{
		{Weight: 1, Volume: 2, Delta: 2},
		{Weight: 3, Volume: 4, Delta: 4},
		{Weight: 2, Volume: 1, Delta: 1},
	})
	sol, err := Optimal(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqualTol(sol.Objective, core.HeightBound(inst), 1e-6) {
		t.Errorf("optimal = %g, H = %g", sol.Objective, core.HeightBound(inst))
	}
}

func TestOptimalRejectsLargeInstances(t *testing.T) {
	tasks := make([]schedule.Task, EnumerationLimit+1)
	for i := range tasks {
		tasks[i] = schedule.Task{Weight: 1, Volume: 1, Delta: 1}
	}
	inst := mustInstance(t, 2, tasks)
	if _, err := Optimal(inst, Options{}); err == nil {
		t.Errorf("oversized instance accepted")
	}
}

func TestBranchAndBoundMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		inst := randomInstance(rng, 2+rng.Intn(4), float64(1+rng.Intn(3)))
		enum, err := Optimal(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bnb, err := BranchAndBound(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.ApproxEqualTol(enum.Objective, bnb.Objective, 1e-6) {
			t.Errorf("trial %d: enumeration %g vs branch-and-bound %g", trial, enum.Objective, bnb.Objective)
		}
	}
}

func TestOptimalObjectiveWrapper(t *testing.T) {
	inst := mustInstance(t, 1, []schedule.Task{{Weight: 2, Volume: 1, Delta: 1}})
	obj, err := OptimalObjective(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqual(obj, 2) {
		t.Errorf("objective = %g, want 2", obj)
	}
}

// Property: the exact optimum is never above any schedule the library can
// produce (WDEQ, greedy) and never below the lower bounds.
func TestQuickOptimalSandwich(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 2+rng.Intn(3), float64(1+rng.Intn(3)))
		opt, err := Optimal(inst, Options{})
		if err != nil {
			return false
		}
		if opt.Objective < core.LowerBound(inst)-1e-6 {
			return false
		}
		wdeq, err := core.RunWDEQ(inst)
		if err != nil {
			return false
		}
		if wdeq.WeightedCompletionTime() < opt.Objective-1e-6 {
			return false
		}
		best, err := core.BestGreedy(inst, rng, 0)
		if err != nil {
			return false
		}
		return best.Objective >= opt.Objective-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property (Theorem 4): WDEQ is within a factor 2 of the exact optimum.
func TestQuickWDEQTwoApproximation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 2+rng.Intn(3), float64(1+rng.Intn(3)))
		opt, err := Optimal(inst, Options{})
		if err != nil {
			return false
		}
		wdeq, err := core.RunWDEQ(inst)
		if err != nil {
			return false
		}
		return wdeq.WeightedCompletionTime() <= 2*opt.Objective+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUnitClassGreedyKnownValues(t *testing.T) {
	// Two tasks with δ = 1 and 1/2, order (0,1):
	// C1 = 1, C2 = 1 + (1 - 0*(1-0))/(1/2) = 3. Sum = 4.
	deltas := []*big.Rat{big.NewRat(1, 1), big.NewRat(1, 2)}
	completions, sum, err := UnitClassGreedy(deltas, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if completions[0].Cmp(big.NewRat(1, 1)) != 0 || completions[1].Cmp(big.NewRat(3, 1)) != 0 {
		t.Errorf("completions = %v", completions)
	}
	if sum.Cmp(big.NewRat(4, 1)) != 0 {
		t.Errorf("sum = %v, want 4", sum)
	}
	// Reversed order (1,0): C1 = 2, C2 = 2 + (1 - (1/2)*2)/1 = 2... the
	// second task receives 1/2 processor for 2 time units (volume 1 done!),
	// so its completion is 2 as well: sum = 4, matching Conjecture 13.
	_, sumRev, err := UnitClassGreedy(deltas, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sumRev.Cmp(sum) != 0 {
		t.Errorf("reversed sum = %v, want %v", sumRev, sum)
	}
}

func TestUnitClassGreedyMatchesFloatGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		deltas := RandomUnitDeltas(n, 64, rng.Intn)
		tasks := make([]schedule.Task, n)
		floatDeltas := make([]float64, n)
		for i, d := range deltas {
			f, _ := d.Float64()
			floatDeltas[i] = f
			tasks[i] = schedule.Task{Weight: 1, Volume: 1, Delta: f}
		}
		inst := &schedule.Instance{P: 1, Tasks: tasks}
		sigma := rng.Perm(n)
		s, err := core.Greedy(inst, sigma)
		if err != nil {
			t.Fatal(err)
		}
		_, sum, err := UnitClassGreedy(deltas, sigma)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := sum.Float64()
		if !numeric.ApproxEqualTol(s.SumCompletionTimes(), want, 1e-6) {
			t.Errorf("trial %d: float greedy %g, exact recurrence %g", trial, s.SumCompletionTimes(), want)
		}
	}
}

func TestUnitClassGreedyValidation(t *testing.T) {
	if _, _, err := UnitClassGreedy([]*big.Rat{big.NewRat(1, 4)}, []int{0}); err == nil {
		t.Errorf("δ < 1/2 accepted")
	}
	if _, _, err := UnitClassGreedy([]*big.Rat{big.NewRat(3, 4)}, []int{1}); err == nil {
		t.Errorf("bad permutation accepted")
	}
}

func TestConjecture13ExhaustiveSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		deltas := RandomUnitDeltas(2+rng.Intn(4), 32, rng.Intn)
		violation, err := Conjecture13Exhaustive(deltas)
		if err != nil {
			t.Fatal(err)
		}
		if violation != nil {
			t.Errorf("Conjecture 13 violated for δ=%v at order %v", deltas, violation)
		}
	}
}

func TestOptimalUnitClassOrdersCatalogue(t *testing.T) {
	// Section V-B, three tasks sorted δ1 >= δ2 >= δ3: the optimal orders are
	// (1,3,2) and (2,3,1) (0-based: {0,2,1} and {1,2,0}).
	deltas := []*big.Rat{big.NewRat(19, 20), big.NewRat(4, 5), big.NewRat(3, 5)}
	orders, _, err := OptimalUnitClassOrders(deltas)
	if err != nil {
		t.Fatal(err)
	}
	has := func(want []int) bool {
		for _, o := range orders {
			match := true
			for i := range want {
				if o[i] != want[i] {
					match = false
					break
				}
			}
			if match {
				return true
			}
		}
		return false
	}
	if !has([]int{0, 2, 1}) || !has([]int{1, 2, 0}) {
		t.Errorf("optimal orders %v missing the catalogue entries", orders)
	}
}

func TestRandomUnitDeltasRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	deltas := RandomUnitDeltas(50, 16, rng.Intn)
	half := big.NewRat(1, 2)
	one := big.NewRat(1, 1)
	for _, d := range deltas {
		if d.Cmp(half) < 0 || d.Cmp(one) > 0 {
			t.Errorf("delta %v out of range", d)
		}
	}
	// Degenerate denominator is clamped.
	if d := RandomUnitDeltas(1, 0, rng.Intn); d[0].Cmp(half) < 0 {
		t.Errorf("clamped denominator produced %v", d[0])
	}
}

// Property (paper Section V-A): the best greedy schedule matches the exact
// optimum on small random instances (Conjecture 12). The paper reports that
// on 10,000 random instances per size the two were numerically
// indistinguishable; a smaller sample is checked here, the full-scale run
// lives in the experiment driver.
func TestQuickConjecture12BestGreedyIsOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, 2+rng.Intn(3), float64(1+rng.Intn(3)))
		opt, err := Optimal(inst, Options{})
		if err != nil {
			return false
		}
		best, err := core.BestGreedy(inst, rng, 0)
		if err != nil {
			return false
		}
		return numeric.ApproxEqualTol(best.Objective, opt.Objective, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
