package exact

import (
	"fmt"
	"math/big"

	"github.com/malleable-sched/malleable/internal/numeric"
)

// UnitClassGreedy evaluates, in exact rational arithmetic, the greedy
// schedule of the restricted instance class of Section V-B (P = 1, V_i = 1,
// w_i = 1, δ_i >= 1/2) for the order sigma, using the closed-form recurrence
// given in the paper:
//
//	C_σ(1) = 1/δ_σ(1)
//	C_σ(i) = C_σ(i-1) + (1 - (1-δ_σ(i-1))·(C_σ(i-1) - C_σ(i-2))) / δ_σ(i)
//
// It returns the completion times in schedule order and their sum. The δ
// values must lie in [1/2, 1]; the recurrence (and the greedy structure it
// encodes) is only valid on that class.
func UnitClassGreedy(deltas []*big.Rat, sigma []int) (completions []*big.Rat, sum *big.Rat, err error) {
	n := len(deltas)
	if len(sigma) != n || !numeric.IsPermutation(sigma) {
		return nil, nil, fmt.Errorf("exact: sigma %v is not a permutation of %d tasks", sigma, n)
	}
	half := big.NewRat(1, 2)
	one := big.NewRat(1, 1)
	for i, d := range deltas {
		if d.Cmp(half) < 0 || d.Cmp(one) > 0 {
			return nil, nil, fmt.Errorf("exact: δ_%d = %v outside [1/2, 1]", i, d)
		}
	}
	completions = make([]*big.Rat, n)
	sum = new(big.Rat)
	cPrev := new(big.Rat)  // C_σ(i-1)
	cPrev2 := new(big.Rat) // C_σ(i-2)
	for i, task := range sigma {
		c := new(big.Rat)
		if i == 0 {
			c.Inv(deltas[task])
		} else {
			dPrev := deltas[sigma[i-1]]
			// numerator = 1 - (1-dPrev)*(cPrev - cPrev2)
			oneMinus := new(big.Rat).Sub(one, dPrev)
			span := new(big.Rat).Sub(cPrev, cPrev2)
			num := new(big.Rat).Sub(one, oneMinus.Mul(oneMinus, span))
			c.Add(cPrev, num.Quo(num, deltas[task]))
		}
		completions[i] = c
		sum.Add(sum, c)
		cPrev2 = cPrev
		cPrev = c
	}
	return completions, sum, nil
}

// Conjecture13Holds checks, in exact rational arithmetic, whether the sum of
// completion times of the greedy schedule for sigma equals the sum for the
// reversed order (Conjecture 13 of the paper). It returns the two exact sums
// along with the verdict.
func Conjecture13Holds(deltas []*big.Rat, sigma []int) (holds bool, forward, backward *big.Rat, err error) {
	_, forward, err = UnitClassGreedy(deltas, sigma)
	if err != nil {
		return false, nil, nil, err
	}
	_, backward, err = UnitClassGreedy(deltas, numeric.ReversePermutation(sigma))
	if err != nil {
		return false, nil, nil, err
	}
	return forward.Cmp(backward) == 0, forward, backward, nil
}

// Conjecture13Exhaustive checks Conjecture 13 for every one of the n! orders
// of the given δ values and returns the first violating order, or nil if the
// conjecture holds for the whole instance.
func Conjecture13Exhaustive(deltas []*big.Rat) (violation []int, err error) {
	n := len(deltas)
	var firstErr error
	numeric.Permutations(n, func(perm []int) bool {
		holds, _, _, e := Conjecture13Holds(deltas, perm)
		if e != nil {
			firstErr = e
			return false
		}
		if !holds {
			violation = append([]int(nil), perm...)
			return false
		}
		return true
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return violation, nil
}

// BestUnitClassOrder enumerates all orders of the unit-class instance and
// returns one order minimizing the exact sum of completion times, together
// with that sum. It is the exact-arithmetic ground truth behind the
// optimal-order catalogue of Section V-B (experiment E5).
func BestUnitClassOrder(deltas []*big.Rat) (best []int, bestSum *big.Rat, err error) {
	n := len(deltas)
	var firstErr error
	numeric.Permutations(n, func(perm []int) bool {
		_, sum, e := UnitClassGreedy(deltas, perm)
		if e != nil {
			firstErr = e
			return false
		}
		if bestSum == nil || sum.Cmp(bestSum) < 0 {
			bestSum = sum
			best = append([]int(nil), perm...)
		}
		return true
	})
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return best, bestSum, nil
}

// OptimalUnitClassOrders returns every order achieving the exact minimum sum
// of completion times on the unit-class instance.
func OptimalUnitClassOrders(deltas []*big.Rat) ([][]int, *big.Rat, error) {
	_, bestSum, err := BestUnitClassOrder(deltas)
	if err != nil {
		return nil, nil, err
	}
	var optimal [][]int
	var firstErr error
	numeric.Permutations(len(deltas), func(perm []int) bool {
		_, sum, e := UnitClassGreedy(deltas, perm)
		if e != nil {
			firstErr = e
			return false
		}
		if sum.Cmp(bestSum) == 0 {
			optimal = append(optimal, append([]int(nil), perm...))
		}
		return true
	})
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return optimal, bestSum, nil
}

// RandomUnitDeltas draws n rational δ values uniformly (with the given
// denominator resolution) from [1/2, 1], using the provided integer source.
// Keeping the values rational makes the Conjecture-13 verification exact.
func RandomUnitDeltas(n, denominator int, intn func(int) int) []*big.Rat {
	if denominator < 2 {
		denominator = 2
	}
	out := make([]*big.Rat, n)
	for i := range out {
		// numerator in [denominator/2, denominator].
		lo := denominator / 2
		num := lo + intn(denominator-lo+1)
		out[i] = big.NewRat(int64(num), int64(denominator))
	}
	return out
}
