package exact

import (
	"fmt"
	"math"

	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
)

// EnumerationLimit is the largest task count for which the optimal solvers
// enumerate completion orders (n! LP solves). The paper's experiments use
// n <= 5; the limit leaves comfortable headroom while protecting callers from
// accidental factorial blow-ups.
const EnumerationLimit = 9

// Options configures the optimal solvers.
type Options struct {
	// ExactArithmetic selects the rational simplex backend for every LP.
	ExactArithmetic bool
	// BuildSchedule reconstructs the optimal schedule (via water filling) in
	// addition to the optimal objective.
	BuildSchedule bool
}

// Optimal computes the optimal weighted completion time by enumerating every
// completion order and solving the LP of Corollary 1 for each (the procedure
// used by the paper for its Section V-A study). It fails for instances larger
// than EnumerationLimit.
func Optimal(inst *schedule.Instance, opts Options) (*OrderSolution, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	n := inst.N()
	if n > EnumerationLimit {
		return nil, fmt.Errorf("exact: %d tasks exceed the enumeration limit of %d", n, EnumerationLimit)
	}
	var best *OrderSolution
	var firstErr error
	numeric.Permutations(n, func(perm []int) bool {
		sol, err := SolveOrder(inst, perm, opts.ExactArithmetic, false)
		if err != nil {
			firstErr = err
			return false
		}
		if best == nil || sol.Objective < best.Objective {
			best = sol
		}
		return true
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if opts.BuildSchedule && best != nil {
		s, err := core.WaterFill(inst, best.Completions)
		if err != nil {
			return nil, err
		}
		best.Schedule = s
	}
	return best, nil
}

// BranchAndBound computes the same optimum as Optimal but explores the
// completion orders as a search tree, pruning a partial order as soon as a
// lower bound on its best possible objective exceeds the incumbent. The lower
// bound combines (i) per-position completion-time bounds for the fixed prefix
// (squashed volume and task height) and (ii) the squashed-area bound of the
// unassigned task subset. It is used by the ablation benchmark comparing
// plain enumeration with pruned search, and allows slightly larger instances.
func BranchAndBound(inst *schedule.Instance, opts Options) (*OrderSolution, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	n := inst.N()
	if n > EnumerationLimit+3 {
		return nil, fmt.Errorf("exact: %d tasks exceed the branch-and-bound limit of %d", n, EnumerationLimit+3)
	}

	// Initial incumbent: the best greedy schedule (cheap and usually optimal,
	// per Conjecture 12), which makes pruning effective from the start.
	incumbent := math.Inf(1)
	var best *OrderSolution
	if g, err := core.BestGreedy(inst, nil, 0); err == nil && g != nil {
		incumbent = g.Objective
		best = &OrderSolution{
			Order:       g.Schedule.Order,
			Objective:   g.Objective,
			Completions: g.Schedule.CompletionTimes(),
		}
	}

	prefix := make([]int, 0, n)
	used := make([]bool, n)
	var rec func() error
	rec = func() error {
		if len(prefix) == n {
			sol, err := SolveOrder(inst, prefix, opts.ExactArithmetic, false)
			if err != nil {
				return err
			}
			if sol.Objective < incumbent-1e-12 {
				incumbent = sol.Objective
				best = sol
			}
			return nil
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			prefix = append(prefix, i)
			used[i] = true
			if lb := partialLowerBound(inst, prefix, used); lb < incumbent-1e-9 {
				if err := rec(); err != nil {
					return err
				}
			}
			used[i] = false
			prefix = prefix[:len(prefix)-1]
		}
		return nil
	}
	if err := rec(); err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("exact: branch and bound found no solution")
	}
	if opts.BuildSchedule && best.Schedule == nil {
		s, err := core.WaterFill(inst, best.Completions)
		if err != nil {
			return nil, err
		}
		best.Schedule = s
	}
	return best, nil
}

// partialLowerBound bounds from below the objective of any schedule whose
// completion order starts with the given prefix.
func partialLowerBound(inst *schedule.Instance, prefix []int, used []bool) float64 {
	partial, lastC, _ := prefixLowerBound(inst, prefix)

	// Remaining tasks: two valid bounds, take the larger.
	// (a) each remaining task completes no earlier than max(lastC, V_i/δ_i);
	// (b) the remaining sub-instance alone costs at least its squashed-area bound.
	var remTasks []schedule.Task
	boundA := 0.0
	for i, t := range inst.Tasks {
		if used[i] {
			continue
		}
		remTasks = append(remTasks, t)
		boundA += t.Weight * math.Max(lastC, t.Volume/inst.EffectiveDelta(i))
	}
	boundB := 0.0
	if len(remTasks) > 0 {
		sub := &schedule.Instance{P: inst.P, Tasks: remTasks}
		boundB = core.SquashedAreaBound(sub)
	}
	return partial + math.Max(boundA, boundB)
}

// OptimalObjective is a convenience wrapper returning only the optimal
// objective value with the float backend.
func OptimalObjective(inst *schedule.Instance) (float64, error) {
	sol, err := Optimal(inst, Options{})
	if err != nil {
		return 0, err
	}
	return sol.Objective, nil
}
