// Package exact computes optimal malleable schedules for small instances.
// Corollary 1 of the paper shows that once the order of completion times is
// fixed, the optimal schedule is given by a small linear program; the package
// therefore finds the optimum by enumerating completion orders (optionally
// with branch-and-bound pruning) and solving the LP of each order, using
// either the fast float64 simplex or the exact rational simplex of
// internal/lp. It also contains the exact-rational greedy recurrence for the
// homogeneous instance class of Section V-B, used to verify Conjecture 13.
package exact

import (
	"fmt"
	"math"

	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/lp"
	"github.com/malleable-sched/malleable/internal/numeric"
	"github.com/malleable-sched/malleable/internal/schedule"
)

// OrderSolution is the optimal schedule for one fixed completion order.
type OrderSolution struct {
	// Order lists task indices in completion order.
	Order []int
	// Objective is Σ w_i C_i for the optimal schedule with this order.
	Objective float64
	// Completions holds the optimal completion times, indexed by task.
	Completions []float64
	// Schedule is the corresponding column-based schedule (reconstructed with
	// the water-filling algorithm from the optimal completion times). It is
	// nil when the caller asked only for the objective.
	Schedule *schedule.ColumnSchedule
}

// buildOrderModel builds the LP of Corollary 1 for the given completion
// order. Variables: the column lengths l_1..l_n and, for every task i and
// every column j not later than the task's completion column, the work area
// x_{i,j} processed by task i in column j.
//
// minimize   Σ_j (Σ_{k >= j} w_{order[k]}) · l_j
// subject to Σ_i x_{i,j} <= P·l_j                 for every column j
//
//	x_{i,j} <= δ_i·l_j                   for every i, j <= pos(i)
//	Σ_{j <= pos(i)} x_{i,j} = V_i        for every task i
//	l_j, x_{i,j} >= 0
func buildOrderModel(inst *schedule.Instance, order []int) (*lp.Model, []int, map[[2]int]int) {
	n := inst.N()
	pos := make([]int, n) // pos[task] = completion column of task
	for j, task := range order {
		pos[task] = j
	}

	model := lp.NewModel(lp.Minimize)

	// Column length variables with their objective coefficients
	// (suffix sums of the weights in completion order).
	lVars := make([]int, n)
	for j := 0; j < n; j++ {
		wSuffix := 0.0
		for k := j; k < n; k++ {
			wSuffix += inst.Tasks[order[k]].Weight
		}
		lVars[j] = model.AddVariable(fmt.Sprintf("l%d", j), wSuffix)
	}

	// Work-area variables.
	xVars := make(map[[2]int]int)
	for i := 0; i < n; i++ {
		for j := 0; j <= pos[i]; j++ {
			xVars[[2]int{i, j}] = model.AddVariable(fmt.Sprintf("x%d_%d", i, j), 0)
		}
	}

	// Capacity per column.
	for j := 0; j < n; j++ {
		row := map[int]float64{lVars[j]: -inst.P}
		for i := 0; i < n; i++ {
			if j <= pos[i] {
				row[xVars[[2]int{i, j}]] = 1
			}
		}
		model.AddConstraint(fmt.Sprintf("cap%d", j), row, lp.LE, 0)
	}

	// Degree bound per task and column.
	for i := 0; i < n; i++ {
		delta := inst.EffectiveDelta(i)
		for j := 0; j <= pos[i]; j++ {
			model.AddConstraint(fmt.Sprintf("deg%d_%d", i, j),
				map[int]float64{xVars[[2]int{i, j}]: 1, lVars[j]: -delta}, lp.LE, 0)
		}
	}

	// Volume per task.
	for i := 0; i < n; i++ {
		row := map[int]float64{}
		for j := 0; j <= pos[i]; j++ {
			row[xVars[[2]int{i, j}]] = 1
		}
		model.AddConstraint(fmt.Sprintf("vol%d", i), row, lp.EQ, inst.Tasks[i].Volume)
	}
	return model, lVars, xVars
}

// SolveOrder computes the optimal schedule whose completion order is the
// given permutation of task indices, by solving the LP of Corollary 1. When
// exactArithmetic is true the rational simplex is used, removing any
// numerical ambiguity (at a significant cost in speed). When buildSchedule is
// true the optimal completion times are turned into a full schedule with the
// water-filling algorithm.
func SolveOrder(inst *schedule.Instance, order []int, exactArithmetic, buildSchedule bool) (*OrderSolution, error) {
	n := inst.N()
	if len(order) != n || !numeric.IsPermutation(order) {
		return nil, fmt.Errorf("exact: order %v is not a permutation of the %d tasks", order, n)
	}
	model, lVars, _ := buildOrderModel(inst, order)

	var objective float64
	var lengths []float64
	if exactArithmetic {
		sol, err := model.SolveExact()
		if err != nil {
			return nil, fmt.Errorf("exact: order %v: %w", order, err)
		}
		objective = sol.ObjectiveFloat()
		lengths = make([]float64, n)
		for j := 0; j < n; j++ {
			lengths[j] = sol.Value(lVars[j])
		}
	} else {
		sol, err := model.Solve()
		if err != nil {
			return nil, fmt.Errorf("exact: order %v: %w", order, err)
		}
		objective = sol.Objective
		lengths = make([]float64, n)
		for j := 0; j < n; j++ {
			lengths[j] = sol.Value(lVars[j])
		}
	}

	completions := make([]float64, n)
	elapsed := 0.0
	for j, task := range order {
		elapsed += lengths[j]
		completions[task] = elapsed
	}
	out := &OrderSolution{
		Order:       append([]int(nil), order...),
		Objective:   objective,
		Completions: completions,
	}
	if buildSchedule {
		s, err := core.WaterFill(inst, completions)
		if err != nil {
			return nil, fmt.Errorf("exact: reconstructing schedule for order %v: %w", order, err)
		}
		out.Schedule = s
	}
	return out, nil
}

// prefixLowerBound returns a quick lower bound on the objective of
// any schedule whose first k completions (in order) are the tasks of prefix:
// the j-th completion time is at least the larger of the squashed volume of
// the first j tasks and the height of the j-th task, and completion times are
// non-decreasing.
func prefixLowerBound(inst *schedule.Instance, prefix []int) (partialObjective, lastCompletionLB, volumeSoFar float64) {
	var obj numeric.KahanSum
	cLB := 0.0
	vol := 0.0
	for _, task := range prefix {
		vol += inst.Tasks[task].Volume
		c := math.Max(vol/inst.P, inst.Tasks[task].Volume/inst.EffectiveDelta(task))
		if c < cLB {
			c = cLB
		}
		cLB = c
		obj.Add(inst.Tasks[task].Weight * c)
	}
	return obj.Value(), cLB, vol
}
