package stepfunc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/malleable-sched/malleable/internal/numeric"
)

func mustFromSteps(t *testing.T, times, values []float64) *StepFunc {
	t.Helper()
	f, err := FromSteps(times, values)
	if err != nil {
		t.Fatalf("FromSteps: %v", err)
	}
	return f
}

func TestConstantAndValue(t *testing.T) {
	f := Constant(4)
	for _, x := range []float64{0, 0.5, 1e6} {
		if f.Value(x) != 4 {
			t.Errorf("Constant(4)(%g) = %g", x, f.Value(x))
		}
	}
}

func TestFromStepsValidation(t *testing.T) {
	if _, err := FromSteps(nil, nil); err == nil {
		t.Errorf("empty accepted")
	}
	if _, err := FromSteps([]float64{1, 2}, []float64{1, 1}); err == nil {
		t.Errorf("non-zero start accepted")
	}
	if _, err := FromSteps([]float64{0, 2, 2}, []float64{1, 1, 1}); err == nil {
		t.Errorf("non-increasing accepted")
	}
	if _, err := FromSteps([]float64{0, 1}, []float64{1}); err == nil {
		t.Errorf("length mismatch accepted")
	}
}

func TestValueAtBreakpoints(t *testing.T) {
	f := mustFromSteps(t, []float64{0, 1, 3}, []float64{5, 2, 0})
	cases := []struct{ t, want float64 }{
		{0, 5}, {0.999, 5}, {1, 2}, {2.5, 2}, {3, 0}, {100, 0},
	}
	for _, c := range cases {
		if got := f.Value(c.t); got != c.want {
			t.Errorf("f(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestAddOnAndSetOn(t *testing.T) {
	f := Constant(10)
	f.AddOn(1, 3, -4)
	if f.Value(0) != 10 || f.Value(1) != 6 || f.Value(2.9) != 6 || f.Value(3) != 10 {
		t.Errorf("AddOn wrong: %v", f)
	}
	f.SetOn(2, 4, 1)
	if f.Value(1.5) != 6 || f.Value(2) != 1 || f.Value(3.9) != 1 || f.Value(4) != 10 {
		t.Errorf("SetOn wrong: %v", f)
	}
	// Add on a tail interval.
	g := Constant(2)
	g.AddOn(5, math.Inf(1), 3)
	if g.Value(4.9) != 2 || g.Value(5) != 5 || g.Value(1e9) != 5 {
		t.Errorf("AddOn to infinity wrong: %v", g)
	}
}

func TestAddOnNoOpAndPanics(t *testing.T) {
	f := Constant(1)
	f.AddOn(2, 2, 5) // empty interval is a no-op
	if f.NumPieces() != 1 {
		t.Errorf("empty AddOn changed pieces")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for to < from")
		}
	}()
	f.AddOn(3, 2, 1)
}

func TestCompact(t *testing.T) {
	f := Constant(1)
	f.AddOn(1, 2, 0) // creates breakpoints without changing values
	f.ensureBreakpoint(5)
	f.Compact()
	if f.NumPieces() != 1 {
		t.Errorf("Compact left %d pieces: %v", f.NumPieces(), f)
	}
}

func TestIntegrate(t *testing.T) {
	f := mustFromSteps(t, []float64{0, 2, 5}, []float64{3, 1, 0})
	cases := []struct{ a, b, want float64 }{
		{0, 2, 6},
		{0, 5, 9},
		{1, 3, 4},
		{4, 10, 1},
		{5, 100, 0},
		{0, math.Inf(1), 9},
		{2.5, 2.5, 0},
	}
	for _, c := range cases {
		if got := f.Integrate(c.a, c.b); !numeric.ApproxEqual(got, c.want) {
			t.Errorf("Integrate(%g,%g) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestIntegrateDivergesPanics(t *testing.T) {
	f := Constant(1)
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for divergent integral")
		}
	}()
	f.Integrate(0, math.Inf(1))
}

func TestIntegrateMin(t *testing.T) {
	f := mustFromSteps(t, []float64{0, 2, 5}, []float64{3, 1, 0})
	if got := f.IntegrateMin(0, 5, 2); !numeric.ApproxEqual(got, 2*2+1*3) {
		t.Errorf("IntegrateMin cap=2 = %g, want 7", got)
	}
	if got := f.IntegrateMin(0, 5, 10); !numeric.ApproxEqual(got, 9) {
		t.Errorf("IntegrateMin cap=10 = %g, want 9", got)
	}
	// Negative availability counts as zero.
	g := mustFromSteps(t, []float64{0, 1}, []float64{-2, 4})
	if got := g.IntegrateMin(0, 2, 3); !numeric.ApproxEqual(got, 3) {
		t.Errorf("IntegrateMin with negative piece = %g, want 3", got)
	}
}

func TestTimeToProcess(t *testing.T) {
	f := mustFromSteps(t, []float64{0, 2, 5}, []float64{3, 1, 0})
	// cap 2: rate 2 on [0,2), rate 1 on [2,5): volume 5 reached at t=3.
	got, ok := f.TimeToProcess(0, 2, 5)
	if !ok || !numeric.ApproxEqual(got, 3) {
		t.Errorf("TimeToProcess = %g, %v; want 3, true", got, ok)
	}
	// volume bigger than the whole area with zero tail: impossible.
	if _, ok := f.TimeToProcess(0, 10, 100); ok {
		t.Errorf("TimeToProcess should be impossible")
	}
	// zero volume returns the start time.
	got, ok = f.TimeToProcess(1.5, 2, 0)
	if !ok || got != 1.5 {
		t.Errorf("zero volume: got %g, %v", got, ok)
	}
	// positive tail always succeeds.
	g := Constant(2)
	got, ok = g.TimeToProcess(1, 1, 4)
	if !ok || !numeric.ApproxEqual(got, 5) {
		t.Errorf("tail processing: got %g, %v; want 5", got, ok)
	}
}

func TestConsumeMin(t *testing.T) {
	f := Constant(4)
	consumed := f.ConsumeMin(0, 3, 3)
	if !numeric.ApproxEqual(consumed, 9) {
		t.Errorf("consumed = %g, want 9", consumed)
	}
	if f.Value(0) != 1 || f.Value(2.9) != 1 || f.Value(3) != 4 {
		t.Errorf("profile after consume wrong: %v", f)
	}
	// Consuming from an exhausted interval yields zero.
	g := Constant(0)
	if c := g.ConsumeMin(0, 5, 2); c != 0 {
		t.Errorf("consumed from empty = %g", c)
	}
}

func TestMinMaxAddSub(t *testing.T) {
	f := mustFromSteps(t, []float64{0, 2}, []float64{1, 5})
	g := mustFromSteps(t, []float64{0, 3}, []float64{4, 0})
	mn := Min(f, g)
	mx := Max(f, g)
	sum := Add(f, g)
	diff := Sub(f, g)
	points := []float64{0, 1, 2, 2.5, 3, 10}
	for _, p := range points {
		if mn.Value(p) != math.Min(f.Value(p), g.Value(p)) {
			t.Errorf("Min wrong at %g", p)
		}
		if mx.Value(p) != math.Max(f.Value(p), g.Value(p)) {
			t.Errorf("Max wrong at %g", p)
		}
		if sum.Value(p) != f.Value(p)+g.Value(p) {
			t.Errorf("Add wrong at %g", p)
		}
		if diff.Value(p) != f.Value(p)-g.Value(p) {
			t.Errorf("Sub wrong at %g", p)
		}
	}
}

func TestMinMaxValueOn(t *testing.T) {
	f := mustFromSteps(t, []float64{0, 1, 2}, []float64{3, 7, 1})
	if f.MaxValueOn(0, 2) != 7 || f.MaxValueOn(0, 1) != 3 {
		t.Errorf("MaxValueOn wrong")
	}
	if f.MinValueOn(0, 3) != 1 || f.MinValueOn(0.5, 2) != 3 {
		t.Errorf("MinValueOn wrong")
	}
}

func TestEqualAndString(t *testing.T) {
	f := Constant(2)
	g := Constant(2)
	g.AddOn(1, 2, 0)
	if !Equal(f, g) {
		t.Errorf("Equal failed for equivalent functions")
	}
	g.AddOn(1, 2, 1)
	if Equal(f, g) {
		t.Errorf("Equal failed to detect difference")
	}
	want := "[0,1):2 [1,2):3 [2,inf):2"
	if g.String() != want {
		t.Errorf("String = %q, want %q", g.String(), want)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	f := Constant(1)
	g := f.Clone()
	g.AddOn(0, 1, 5)
	if f.Value(0.5) != 1 {
		t.Errorf("Clone not independent")
	}
}

// randomProfile builds a random availability-like profile with small integer
// values and breakpoints, which keeps float arithmetic exact enough for
// property tests.
func randomProfile(rng *rand.Rand) *StepFunc {
	f := Constant(float64(rng.Intn(8)))
	n := rng.Intn(6)
	for i := 0; i < n; i++ {
		from := float64(rng.Intn(10))
		to := from + float64(1+rng.Intn(5))
		f.AddOn(from, to, float64(rng.Intn(7)-3))
	}
	return f
}

// Property: integrating over adjacent intervals is additive.
func TestQuickIntegralAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProfile(rng)
		a := rng.Float64() * 5
		b := a + rng.Float64()*5
		c := b + rng.Float64()*5
		whole := p.Integrate(a, c)
		parts := p.Integrate(a, b) + p.Integrate(b, c)
		return numeric.ApproxEqual(whole, parts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: TimeToProcess is consistent with IntegrateMin — the volume
// processed up to the returned completion time equals the requested volume.
func TestQuickTimeToProcessConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProfile(rng)
		// Keep the profile nonnegative and give it a positive tail so the
		// processing always terminates.
		p = Max(p, Constant(0))
		p.AddOn(p.LastBreakpoint(), math.Inf(1), 1)
		capacity := 1 + rng.Float64()*4
		V := rng.Float64() * 20
		from := rng.Float64() * 3
		c, ok := p.TimeToProcess(from, capacity, V)
		if !ok {
			return false
		}
		got := p.IntegrateMin(from, c, capacity)
		return numeric.ApproxEqualTol(got, V, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ConsumeMin removes exactly the volume it reports, i.e. the
// integral of the profile decreases by the consumed amount.
func TestQuickConsumeMinConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Max(randomProfile(rng), Constant(0))
		capacity := rng.Float64() * 5
		from := rng.Float64() * 3
		to := from + rng.Float64()*5
		horizon := math.Max(p.LastBreakpoint(), to) + 1
		before := p.Integrate(0, horizon)
		consumed := p.ConsumeMin(from, to, capacity)
		after := p.Integrate(0, horizon)
		return numeric.ApproxEqualTol(before-after, consumed, 1e-6) && consumed >= -numeric.Eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNextBreakpointAfter(t *testing.T) {
	f, err := FromSteps([]float64{0, 2, 5}, []float64{1, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{0, 2}, {1.5, 2}, {2, 5}, {4.99, 5},
	}
	for _, c := range cases {
		if got := f.NextBreakpointAfter(c.t); got != c.want {
			t.Errorf("NextBreakpointAfter(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if got := f.NextBreakpointAfter(5); !math.IsInf(got, 1) {
		t.Errorf("NextBreakpointAfter(5) = %g, want +Inf", got)
	}
	if got := f.NextBreakpointAfter(100); !math.IsInf(got, 1) {
		t.Errorf("NextBreakpointAfter(100) = %g, want +Inf", got)
	}
}
